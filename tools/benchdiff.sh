#!/bin/sh
# benchdiff.sh OLD.json NEW.json [threshold]
#
# Compares two BENCH_*.json files produced by check.sh and fails (exit 1)
# if any timing field regressed by more than the threshold (default 10%).
#
# Compared fields are the flat numeric keys ending in "_ns_per_op" (lower
# is better) and "_jobs_per_sec" (higher is better); ratio/metadata fields
# (speedups, cycle counts, host_cpus, configs) are ignored. A key present
# in only one file is reported but never fails the diff, so adding a new
# benchmark row doesn't break the comparison against an old baseline.
#
# check.sh wires this in as an advisory step against the committed numbers;
# run it by hand to gate a change on a fresh A/B measurement:
#
#   git show HEAD:BENCH_parallel.json > /tmp/old.json
#   PARALLEL_BENCHTIME=5x tools/check.sh
#   tools/benchdiff.sh /tmp/old.json BENCH_parallel.json
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold-fraction]" >&2
    exit 2
fi
OLD=$1
NEW=$2
THRESH=${3:-0.10}

awk -v thresh="$THRESH" -v oldf="$OLD" -v newf="$NEW" '
    # Flat "key": number pairs only; nested structure never appears in the
    # BENCH files.
    match($0, /"[A-Za-z0-9_]+":[ \t]*-?[0-9][0-9.eE+-]*[,}]?[ \t]*$/) {
        line = $0
        gsub(/[",:]/, " ", line)
        split(line, f, /[ \t]+/)
        key = f[1] != "" ? f[1] : f[2]
        val = f[1] != "" ? f[2] : f[3]
        if (FILENAME == oldf) old[key] = val
        else                  new[key] = val
    }
    END {
        fails = 0
        seen = 0
        for (key in old) {
            if (key ~ /_ns_per_op$/)        better = "lower"
            else if (key ~ /_jobs_per_sec$/) better = "higher"
            else continue
            if (!(key in new)) { printf "benchdiff: %-32s only in %s\n", key, oldf; continue }
            seen++
            if (better == "lower") ratio = new[key] / old[key]
            else                   ratio = old[key] / new[key]
            delta = (ratio - 1) * 100
            verdict = "ok"
            if (ratio > 1 + thresh) { verdict = "REGRESSION"; fails++ }
            printf "benchdiff: %-32s old %-14s new %-14s %+6.1f%% %s\n", key, old[key], new[key], delta, verdict
        }
        for (key in new)
            if (!(key in old) && (key ~ /_ns_per_op$/ || key ~ /_jobs_per_sec$/))
                printf "benchdiff: %-32s only in %s\n", key, newf
        if (seen == 0) { print "benchdiff: no comparable timing fields found" > "/dev/stderr"; exit 2 }
        if (fails > 0) { printf "benchdiff: %d field(s) regressed beyond %.0f%%\n", fails, thresh * 100 > "/dev/stderr"; exit 1 }
    }
' "$OLD" "$NEW"
