#!/bin/sh
# Repository check: build, vet, race-enabled tests, fuzz smoke passes over
# the trace-file and fault-spec parsers, a race-enabled fault-injection
# smoke (drop-plan recovery per engine + watchdog dump), and a race-enabled
# metrics-instrumented experiment run. CI runs exactly this script
# (.github/workflows/ci.yml) so local and CI results agree.
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Fuzz smoke: a short randomized session over the trace-file parser on top
# of the committed regression corpus (testdata/fuzz/FuzzRead).
go test ./internal/trace -fuzz '^FuzzRead$' -fuzztime 10s

# Fault-spec fuzz smoke: parse/canonicalize round-trip and plan determinism
# over the committed corpus (internal/fault/testdata/fuzz/FuzzParseSpec).
go test ./internal/fault -fuzz '^FuzzParseSpec$' -fuzztime 5s

# Fault smoke under the race detector: one seeded drop plan per engine must
# recover to a coherent end state, and a watchdog trip must produce the
# flight-recorder dump (TestWatchdogTripDumpsFlightRecorder asserts the
# dump file on disk).
go test -race ./internal/fault \
    -run '^(TestDropPlanCompletesCoherently|TestWatchdogTripDumpsFlightRecorder)$' -v
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 \
    -faults drop=2000,timeout=200000,retries=6,backoff=64 -retries 1 >/dev/null

# Observability smoke under the race detector: one metrics-instrumented
# experiment across parallel workers, with CSV export and flight dumping.
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 -metrics \
    -metrics-out "$(mktemp -d)/metrics.csv" -flight-dump >/dev/null

# Sharded-engine smoke under the race detector: a small mesh split across 2
# worker shards must complete the fig5 rows with results identical to serial
# (the differential test asserts identity; this exercises the full CLI path
# with real goroutines under race).
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 2 -shards 2 >/dev/null

# Parallel benchmark smoke: the 16x16 sharded-mesh series, recorded with the
# host CPU count as BENCH_parallel.json so shard-engine regressions show up
# in review diffs. One iteration by default (a smoke, not a measurement);
# set PARALLEL_BENCHTIME (e.g. 5x) to refresh the committed numbers. On a
# single-core host the parallel rows measure scheduling overhead, not
# speedup — the recorded cpus field says which regime produced the numbers.
: "${PARALLEL_BENCHTIME:=1x}"
go test -run '^$' -bench 'ParallelMesh' -benchtime "$PARALLEL_BENCHTIME" . |
    awk -v ncpu="$(nproc)" '
        $1 ~ /^BenchmarkParallelMesh\// {
            name = $1; sub(/-[0-9]+$/, "", name); sub(/^.*shards=/, "", name)
            ns[name] = $3; cycles = $5; order[n++] = name
        }
        END {
            if (n == 0) { print "bench output missing" > "/dev/stderr"; exit 1 }
            printf "{\n"
            printf "  \"benchmark\": \"ParallelMesh\",\n"
            printf "  \"config\": \"16x16 mesh, tree engine, bar profile, 40 accesses/node\",\n"
            printf "  \"host_cpus\": %d,\n", ncpu
            printf "  \"sim_cycles\": %s,\n", cycles
            for (i = 0; i < n; i++)
                printf "  \"shards_%s_ns_per_op\": %s,\n", order[i], ns[order[i]]
            printf "  \"speedup_4_shards\": %.2f\n", ns["1"] / ns["4"]
            printf "}\n"
        }' > BENCH_parallel.json
cat BENCH_parallel.json

# Kernel benchmark smoke: the active-set kernel against its always-tick
# control on the 64-node low-injection mesh, recorded as BENCH_kernel.json
# so regressions in the idle-skip machinery show up in review diffs. One
# iteration by default (a smoke, not a measurement); set KERNEL_BENCHTIME
# (e.g. 5x) to refresh the committed numbers.
: "${KERNEL_BENCHTIME:=1x}"
go test -run '^$' -bench 'KernelIdleMesh' -benchtime "$KERNEL_BENCHTIME" . |
    awk '
        $1 ~ /^BenchmarkKernelIdleMesh/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns[name] = $3; cycles[name] = $5
        }
        END {
            a = ns["BenchmarkKernelIdleMesh"]
            t = ns["BenchmarkKernelIdleMeshAlwaysTick"]
            if (a == "" || t == "") { print "bench output missing" > "/dev/stderr"; exit 1 }
            printf "{\n"
            printf "  \"benchmark\": \"KernelIdleMesh\",\n"
            printf "  \"config\": \"8x8 mesh, tree engine, bar profile, think=200, 120 accesses/node\",\n"
            printf "  \"active_set_ns_per_op\": %s,\n", a
            printf "  \"always_tick_ns_per_op\": %s,\n", t
            printf "  \"sim_cycles\": %s,\n", cycles["BenchmarkKernelIdleMesh"]
            printf "  \"speedup\": %.2f\n", t / a
            printf "}\n"
        }' > BENCH_kernel.json
cat BENCH_kernel.json
