#!/bin/sh
# Repository check: build, vet, race-enabled tests. CI runs exactly this
# script (.github/workflows/ci.yml) so local and CI results agree.
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...
