#!/bin/sh
# Repository check: build, vet, race-enabled tests, fuzz smoke passes over
# the trace-file and fault-spec parsers, a race-enabled fault-injection
# smoke (drop-plan recovery per engine + watchdog dump), a race-enabled
# metrics-instrumented experiment run, and a race-enabled cluster chaos
# campaign (coordinator + workers with seeded kills; results byte-compared
# against direct runs). CI runs exactly this script
# (.github/workflows/ci.yml) so local and CI results agree.
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Fuzz smoke: a short randomized session over the trace-file parser on top
# of the committed regression corpus (testdata/fuzz/FuzzRead).
go test ./internal/trace -fuzz '^FuzzRead$' -fuzztime 10s

# Fault-spec fuzz smoke: parse/canonicalize round-trip and plan determinism
# over the committed corpus (internal/fault/testdata/fuzz/FuzzParseSpec).
go test ./internal/fault -fuzz '^FuzzParseSpec$' -fuzztime 5s

# Litmus smoke under the race detector: a fixed-seed campaign of generated
# conflict programs on both engines, clean and under a drop plan with
# recovery armed (the command exits non-zero on any oracle failure), then a
# mutation campaign that MUST fail — the pipeline has to catch a seeded
# protocol defect, shrink it, and write a reproducer that replays.
go run -race ./cmd/innetcc -litmus 25 -jobs 2 >/dev/null
go run -race ./cmd/innetcc -litmus 25 -jobs 2 \
    -faults 'drop=5000,timeout=4000,retries=8,backoff=32,probe=100' >/dev/null
LITMUS_OUT=$(mktemp -d)
if go run -race ./cmd/innetcc -litmus 4 -litmus-engine tree \
    -litmus-bug skip-invalidate -litmus-out "$LITMUS_OUT" >/dev/null 2>&1; then
    echo "litmus mutation campaign failed to detect the seeded defect" >&2
    exit 1
fi
REPRO=$(ls "$LITMUS_OUT"/litmus-*.json | head -1)
go run -race ./cmd/innetcc -litmus-replay "$REPRO" | grep -q '^reproduced:'

# Litmus-program fuzz smoke: coverage-guided conflict programs through the
# full simulator's oracle battery on both engines (internal/litmus).
go test -race ./internal/litmus -fuzz '^FuzzLitmusProgram$' -fuzztime 10s

# Fault smoke under the race detector: one seeded drop plan per engine must
# recover to a coherent end state, and a watchdog trip must produce the
# flight-recorder dump (TestWatchdogTripDumpsFlightRecorder asserts the
# dump file on disk).
go test -race ./internal/fault \
    -run '^(TestDropPlanCompletesCoherently|TestWatchdogTripDumpsFlightRecorder)$' -v
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 \
    -faults drop=2000,timeout=200000,retries=6,backoff=64 -retries 1 >/dev/null

# Observability smoke under the race detector: one metrics-instrumented
# experiment across parallel workers, with CSV export and flight dumping.
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 -metrics \
    -metrics-out "$(mktemp -d)/metrics.csv" -flight-dump >/dev/null

# Sharded-engine smoke under the race detector: a small mesh split across 2
# worker shards must complete the fig5 rows with results identical to serial
# (the differential test asserts identity; this exercises the full CLI path
# with real goroutines under race), then again with -shards 0 so the
# auto-tuned path — AutoShards sizing plus the live occupancy width tuner —
# runs its sense-reversing barrier and bitmap walks under race too.
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 2 -shards 2 >/dev/null
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 2 -shards 0 >/dev/null

# Topology smoke under the race detector: the fig5 sweep on a torus with
# hardware multicast and on a ring, exercising the non-mesh routing and the
# in-fabric invalidation forking through the full CLI path.
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 \
    -topology torus:4x4 -multicast >/dev/null
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 \
    -topology ring:16 >/dev/null

# Parallel benchmark smoke: the 16x16 sharded-mesh series (including the
# -shards 0 auto row) plus the barrier microbenchmarks, recorded with the
# host CPU count as BENCH_parallel.json so shard-engine regressions show up
# in review diffs. Each shard row carries three unit-tagged metrics — ns/op
# (simulation only; protocol.Build is excluded from the timer), occ-tickers
# (mean active routers per busy cycle), and barrier-wait-ns (coordinator
# time parked at the completion barrier per op) — so a slowdown is
# attributable to routing work, occupancy, or synchronization. One iteration
# by default (a smoke, not a measurement); set PARALLEL_BENCHTIME (e.g. 5x)
# to refresh the committed numbers. On a single-core host the parallel rows
# measure scheduling overhead, not speedup — the recorded cpus field says
# which regime produced the numbers (see EXPERIMENTS.md).
: "${PARALLEL_BENCHTIME:=1x}"
OLD_PARALLEL=$(mktemp)
cp BENCH_parallel.json "$OLD_PARALLEL" 2>/dev/null || OLD_PARALLEL=
{
    go test -run '^$' -bench 'ParallelMesh' -benchtime "$PARALLEL_BENCHTIME" .
    go test -run '^$' -bench 'Barrier' -benchtime "$PARALLEL_BENCHTIME" ./internal/sim
} | awk -v ncpu="$(nproc)" '
        $1 ~ /^BenchmarkParallelMesh\// {
            name = $1; sub(/-[0-9]+$/, "", name); sub(/^.*shards=/, "", name)
            order[n++] = name
            for (i = 2; i <= NF; i++) {
                if ($(i+1) == "ns/op")          ns[name] = $i
                if ($(i+1) == "occ-tickers")    occ[name] = $i
                if ($(i+1) == "barrier-wait-ns") bw[name] = $i
                if ($(i+1) == "sim-cycles")     cycles = $i
            }
        }
        $1 ~ /^BenchmarkBarrier(Channel|Sense)/ {
            name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkBarrier/, "", name)
            for (i = 2; i <= NF; i++) if ($(i+1) == "ns/op") bar[name] = $i
        }
        END {
            if (n == 0 || bar["Channel"] == "" || bar["Sense"] == "") {
                print "bench output missing" > "/dev/stderr"; exit 1
            }
            printf "{\n"
            printf "  \"benchmark\": \"ParallelMesh\",\n"
            printf "  \"config\": \"16x16 mesh, tree engine, bar profile, 40 accesses/node; ns/op excludes protocol.Build\",\n"
            printf "  \"host_cpus\": %d,\n", ncpu
            printf "  \"sim_cycles\": %s,\n", cycles
            for (i = 0; i < n; i++) {
                s = order[i]
                printf "  \"shards_%s_ns_per_op\": %s,\n", s, ns[s]
                printf "  \"shards_%s_occ_tickers\": %s,\n", s, occ[s]
                printf "  \"shards_%s_barrier_wait_ns\": %s,\n", s, bw[s]
            }
            printf "  \"barrier_channel_ns_per_op\": %s,\n", bar["Channel"]
            printf "  \"barrier_sense_ns_per_op\": %s,\n", bar["Sense"]
            printf "  \"speedup_4_shards\": %.2f\n", ns["1"] / ns["4"]
            printf "}\n"
        }' > BENCH_parallel.json
cat BENCH_parallel.json

# Advisory benchmark diff against the previously committed numbers: a >10%
# timing regression prints loudly but does not fail the check, because the
# default 1x smoke is too noisy to gate on. To gate for real, refresh with
# PARALLEL_BENCHTIME=5x and run tools/benchdiff.sh by hand (it exits 1 on
# regression).
if [ -n "$OLD_PARALLEL" ]; then
    tools/benchdiff.sh "$OLD_PARALLEL" BENCH_parallel.json ||
        echo "benchdiff: ADVISORY — smoke-run numbers regressed vs committed; rerun with PARALLEL_BENCHTIME=5x before trusting this" >&2
fi

# SoA serial record: the structure-of-arrays router refactor's serial win,
# recorded as BENCH_soa.json. The pre-SoA reference is a fixed constant
# (run-only ns/op, interleaved A/B median measured on the 1-cpu CI host when
# the refactor landed) because the pre-SoA code no longer exists to re-run;
# the current number is this run's shards=1 row. Cross-host comparisons of
# the speedup field are only meaningful when host_cpus matches the
# reference_host_cpus recorded beside it. Override SOA_BASELINE_NS to re-A/B
# on new hardware (measure the old code via git worktree at the pre-SoA
# commit with the same StopTimer methodology).
: "${SOA_BASELINE_NS:=278778224}"
awk -v base="$SOA_BASELINE_NS" -v ncpu="$(nproc)" '
    /"shards_1_ns_per_op"/       { gsub(/[",]/, ""); ns = $2 }
    /"barrier_channel_ns_per_op"/ { gsub(/[",]/, ""); ch = $2 }
    /"barrier_sense_ns_per_op"/   { gsub(/[",]/, ""); se = $2 }
    END {
        if (ns == "") { print "BENCH_parallel.json missing serial row" > "/dev/stderr"; exit 1 }
        printf "{\n"
        printf "  \"benchmark\": \"SoARouter\",\n"
        printf "  \"config\": \"16x16 mesh, tree engine, bar profile, 40 accesses/node, serial; run-only ns/op (Build excluded)\",\n"
        printf "  \"host_cpus\": %d,\n", ncpu
        printf "  \"reference_host_cpus\": 1,\n"
        printf "  \"pre_soa_serial_ns_per_op\": %s,\n", base
        printf "  \"soa_serial_ns_per_op\": %s,\n", ns
        printf "  \"barrier_channel_ns_per_op\": %s,\n", ch
        printf "  \"barrier_sense_ns_per_op\": %s,\n", se
        printf "  \"serial_speedup\": %.2f\n", base / ns
        printf "}\n"
    }' BENCH_parallel.json > BENCH_soa.json
cat BENCH_soa.json

# Serving-layer smoke under the race detector: start the job server on a
# loopback port, submit a job over HTTP, stream its progress to completion,
# fetch the result, then SIGTERM the server and require a clean drain.
SERVE_DATA=$(mktemp -d)
SERVE_ADDR=127.0.0.1:18931
go build -race -o "$SERVE_DATA/innetcc" ./cmd/innetcc
"$SERVE_DATA/innetcc" -serve "$SERVE_ADDR" -serve-data "$SERVE_DATA/data" \
    -tenants 'ci=2:8' -serve-workers 2 > "$SERVE_DATA/server.log" 2>&1 &
SERVE_PID=$!
for i in $(seq 1 50); do
    if "$SERVE_DATA/innetcc" -client "http://$SERVE_ADDR" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
"$SERVE_DATA/innetcc" -client "http://$SERVE_ADDR" -submit -profile fft \
    -engine tree -accesses 120 -tenant ci -watch yes >/dev/null
"$SERVE_DATA/innetcc" -client "http://$SERVE_ADDR" -stats >/dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q 'drained' "$SERVE_DATA/server.log"

# Serving-layer benchmark smoke: the 8-profile x 2-engine sweep through the
# job server with a cold and a warm result cache, recorded as
# BENCH_serve.json so scheduling/caching regressions show up in review
# diffs. One iteration by default; set SERVE_BENCHTIME (e.g. 5x) to refresh
# the committed numbers.
: "${SERVE_BENCHTIME:=1x}"
go test -run '^$' -bench 'ServeSweep' -benchtime "$SERVE_BENCHTIME" ./internal/serve |
    awk '
        $1 ~ /^BenchmarkServeSweep/ {
            name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkServeSweep/, "", name)
            for (i = 2; i <= NF; i++) if ($(i+1) == "jobs/sec") jps[name] = $i
        }
        END {
            if (jps["Cold"] == "" || jps["Warm"] == "") { print "bench output missing" > "/dev/stderr"; exit 1 }
            printf "{\n"
            printf "  \"benchmark\": \"ServeSweep\",\n"
            printf "  \"config\": \"8 profiles x 2 engines, 60 accesses/node, 4 workers\",\n"
            printf "  \"cold_jobs_per_sec\": %s,\n", jps["Cold"]
            printf "  \"warm_jobs_per_sec\": %s,\n", jps["Warm"]
            printf "  \"warm_speedup\": %.2f\n", jps["Warm"] / jps["Cold"]
            printf "}\n"
        }' > BENCH_serve.json
cat BENCH_serve.json

# Kernel benchmark smoke: the active-set kernel against its always-tick
# control on the 64-node low-injection mesh, recorded as BENCH_kernel.json
# so regressions in the idle-skip machinery show up in review diffs. One
# iteration by default (a smoke, not a measurement); set KERNEL_BENCHTIME
# (e.g. 5x) to refresh the committed numbers.
: "${KERNEL_BENCHTIME:=1x}"
go test -run '^$' -bench 'KernelIdleMesh' -benchtime "$KERNEL_BENCHTIME" . |
    awk '
        $1 ~ /^BenchmarkKernelIdleMesh/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns[name] = $3; cycles[name] = $5
        }
        END {
            a = ns["BenchmarkKernelIdleMesh"]
            t = ns["BenchmarkKernelIdleMeshAlwaysTick"]
            if (a == "" || t == "") { print "bench output missing" > "/dev/stderr"; exit 1 }
            printf "{\n"
            printf "  \"benchmark\": \"KernelIdleMesh\",\n"
            printf "  \"config\": \"8x8 mesh, tree engine, bar profile, think=200, 120 accesses/node\",\n"
            printf "  \"active_set_ns_per_op\": %s,\n", a
            printf "  \"always_tick_ns_per_op\": %s,\n", t
            printf "  \"sim_cycles\": %s,\n", cycles["BenchmarkKernelIdleMesh"]
            printf "  \"speedup\": %.2f\n", t / a
            printf "}\n"
        }' > BENCH_kernel.json
cat BENCH_kernel.json

# Topology benchmark smoke: hardware-multicast invalidation traffic against
# its unicast control on the 8x8 torus, recorded as BENCH_topology.json so
# regressions in the fabric's packet forking show up in review diffs. One
# iteration by default (the packet counts are deterministic per run); set
# TOPOLOGY_BENCHTIME (e.g. 5x) to refresh the committed timings too.
: "${TOPOLOGY_BENCHTIME:=1x}"
go test -run '^$' -bench 'TopologyMulticast' -benchtime "$TOPOLOGY_BENCHTIME" . |
    awk '
        $1 ~ /^BenchmarkTopologyMulticast\// {
            name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkTopologyMulticast\//, "", name)
            for (i = 2; i <= NF; i++) if ($(i+1) == "inv-packets") pk[name] = $i
        }
        END {
            if (pk["Unicast"] == "" || pk["Multicast"] == "") { print "bench output missing" > "/dev/stderr"; exit 1 }
            printf "{\n"
            printf "  \"benchmark\": \"TopologyMulticast\",\n"
            printf "  \"config\": \"8x8 torus, directory engine, wsp profile, 150 accesses/node\",\n"
            printf "  \"unicast_inv_packets\": %s,\n", pk["Unicast"]
            printf "  \"multicast_inv_packets\": %s,\n", pk["Multicast"]
            printf "  \"packet_reduction\": %.2f\n", 1 - pk["Multicast"] / pk["Unicast"]
            printf "}\n"
        }' > BENCH_topology.json
cat BENCH_topology.json

# Cluster smoke under the race detector: coordinator plus three workers in
# process, a seeded kill/restart campaign driven by -chaos. The command
# byte-compares every completed job against a direct in-process run and
# exits non-zero on any lost or corrupted result, so this line alone
# asserts the fan-out survives worker death.
go run -race ./cmd/innetcc -chaos 'kill=40000,restart=10,window=2:0' \
    -chaos-workers 3 -chaos-jobs 8 -chaos-ticks 40 -accesses 800 -seed 3 >/dev/null

# Cluster benchmark smoke: the same campaign fault-free (the clean-cluster
# baseline) and with the kill schedule, recorded as BENCH_cluster.json so
# fan-out throughput and recovery-path regressions show up in review diffs.
# The chaos CLI already emits JSON; the awk pass just merges the two runs.
CLUSTER_TMP=$(mktemp -d)
go build -o "$CLUSTER_TMP/innetcc" ./cmd/innetcc
"$CLUSTER_TMP/innetcc" -chaos none -chaos-workers 3 -chaos-jobs 8 \
    -chaos-ticks 40 -accesses 1200 -seed 3 > "$CLUSTER_TMP/clean.json"
"$CLUSTER_TMP/innetcc" -chaos 'kill=40000,restart=10,window=2:0' -chaos-workers 3 \
    -chaos-jobs 8 -chaos-ticks 40 -accesses 1200 -seed 3 > "$CLUSTER_TMP/chaos.json"
awk '
    FNR == 1 { f++ }
    /"jobs_per_sec"/ { gsub(/[",]/, ""); jps[f] = $2 }
    /"reassigns"/    { gsub(/[",]/, ""); re[f] = $2 }
    /"resumes"/      { gsub(/[",]/, ""); rs[f] = $2 }
    /"w[0-9]+"/      { gsub(/[",:]/, ""); kills[f] += $2 }
    END {
        if (jps[1] == "" || jps[2] == "") { print "chaos output missing" > "/dev/stderr"; exit 1 }
        printf "{\n"
        printf "  \"benchmark\": \"ClusterChaos\",\n"
        printf "  \"config\": \"3 workers, 8 jobs (8 profiles, alternating engines, 1200 accesses), kill=4%% per worker-tick over 40 ticks\",\n"
        printf "  \"clean_jobs_per_sec\": %s,\n", jps[1]
        printf "  \"chaos_jobs_per_sec\": %s,\n", jps[2]
        printf "  \"chaos_kills\": %d,\n", kills[2]
        printf "  \"chaos_reassigns\": %s,\n", re[2]
        printf "  \"chaos_resumes\": %s,\n", rs[2]
        printf "  \"chaos_slowdown\": %.2f\n", jps[1] / jps[2]
        printf "}\n"
    }' "$CLUSTER_TMP/clean.json" "$CLUSTER_TMP/chaos.json" > BENCH_cluster.json
cat BENCH_cluster.json
