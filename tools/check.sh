#!/bin/sh
# Repository check: build, vet, race-enabled tests, a fuzz smoke pass over
# the trace-file parser, and a race-enabled metrics-instrumented experiment
# run. CI runs exactly this script (.github/workflows/ci.yml) so local and
# CI results agree.
set -eux

cd "$(dirname "$0")/.."

gofmt_out=$(gofmt -l .)
if [ -n "$gofmt_out" ]; then
    echo "gofmt needed on:" "$gofmt_out" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Fuzz smoke: a short randomized session over the trace-file parser on top
# of the committed regression corpus (testdata/fuzz/FuzzRead).
go test ./internal/trace -fuzz '^FuzzRead$' -fuzztime 10s

# Observability smoke under the race detector: one metrics-instrumented
# experiment across parallel workers, with CSV export and flight dumping.
go run -race ./cmd/innetcc -exp fig5 -accesses 80 -jobs 4 -metrics \
    -metrics-out "$(mktemp -d)/metrics.csv" -flight-dump >/dev/null
