// Package stats provides the statistics accumulators used by the simulator:
// latency recorders per access class, counters for protocol events, and the
// distribution helpers (mean, max, RMS skew) the paper's evaluation section
// reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Accumulator tracks count, sum, min and max of a stream of samples.
type Accumulator struct {
	N        int64
	Sum      float64
	MinV     float64
	MaxV     float64
	hasFirst bool
}

// Add records one sample.
func (a *Accumulator) Add(v float64) {
	if !a.hasFirst {
		a.MinV, a.MaxV = v, v
		a.hasFirst = true
	} else {
		if v < a.MinV {
			a.MinV = v
		}
		if v > a.MaxV {
			a.MaxV = v
		}
	}
	a.N++
	a.Sum += v
}

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// Merge folds other into a.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.N == 0 {
		return
	}
	if !a.hasFirst {
		*a = *other
		return
	}
	a.N += other.N
	a.Sum += other.Sum
	if other.MinV < a.MinV {
		a.MinV = other.MinV
	}
	if other.MaxV > a.MaxV {
		a.MaxV = other.MaxV
	}
}

func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.0f max=%.0f", a.N, a.Mean(), a.MinV, a.MaxV)
}

// LatencyStats separates read and write access latencies, matching how the
// paper reports every experiment.
type LatencyStats struct {
	Read  Accumulator
	Write Accumulator
	// DeadlockRead/DeadlockWrite accumulate only the cycles spent in
	// deadlock detection and recovery (timeout plus backoff), feeding
	// Table 4.
	DeadlockRead  Accumulator
	DeadlockWrite Accumulator
}

// Record adds one completed access of the given kind.
func (l *LatencyStats) Record(isWrite bool, latency int64) {
	if isWrite {
		l.Write.Add(float64(latency))
	} else {
		l.Read.Add(float64(latency))
	}
}

// RecordDeadlock adds deadlock-recovery cycles attributed to one access.
func (l *LatencyStats) RecordDeadlock(isWrite bool, cycles int64) {
	if isWrite {
		l.DeadlockWrite.Add(float64(cycles))
	} else {
		l.DeadlockRead.Add(float64(cycles))
	}
}

// DeadlockShare returns the fraction of total read and write latency that is
// attributable to deadlock recovery, as percentages (Table 4's metric).
func (l *LatencyStats) DeadlockShare() (readPct, writePct float64) {
	if l.Read.Sum > 0 {
		readPct = 100 * l.DeadlockRead.Sum / l.Read.Sum
	}
	if l.Write.Sum > 0 {
		writePct = 100 * l.DeadlockWrite.Sum / l.Write.Sum
	}
	return readPct, writePct
}

// Reduction returns the percentage reduction of measured versus baseline:
// 100*(base-measured)/base. A negative value means a slowdown.
func Reduction(base, measured float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - measured) / base
}

// Sampler retains all samples for distribution queries (percentiles); the
// simulator attaches one per access class when detailed reporting is on.
// A running sum makes Mean O(1), and the sorted flag makes a Summarize (or
// any burst of Percentile calls) sort at most once until the next Add.
type Sampler struct {
	vals   []float64
	sum    float64
	sorted bool
}

// Add records one sample.
func (s *Sampler) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// N returns the number of samples.
func (s *Sampler) N() int { return len(s.vals) }

// ensureSorted sorts the sample vector if an Add invalidated it. It is the
// single sort site: Percentile and Summarize both go through it, so a
// summary costs one sort, not one per percentile.
func (s *Sampler) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// rank returns the nearest-rank index value for percentile p on the sorted
// vector; callers guarantee at least one sample.
func (s *Sampler) rank(p float64) float64 {
	if p <= 0 {
		return s.vals[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.vals) {
		rank = len(s.vals)
	}
	return s.vals[rank-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 with no samples.
func (s *Sampler) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.rank(p)
}

// Mean returns the sample mean, or 0 with no samples.
func (s *Sampler) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Summary is the standard latency report: the mean the paper's tables use
// plus the tail percentiles (p50/p95/p99) that characterize the
// distribution's body and tail.
type Summary struct {
	N             int64
	Mean          float64
	P50, P95, P99 float64
}

// Summarize computes the sampler's summary (zero value with no samples).
// It sorts at most once per Add burst and reads every statistic off the
// sorted vector and the running sum, so repeated summaries allocate
// nothing and do no re-sorting.
func (s *Sampler) Summarize() Summary {
	if len(s.vals) == 0 {
		return Summary{}
	}
	s.ensureSorted()
	return Summary{
		N:    int64(len(s.vals)),
		Mean: s.sum / float64(len(s.vals)),
		P50:  s.rank(50),
		P95:  s.rank(95),
		P99:  s.rank(99),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f",
		s.N, s.Mean, s.P50, s.P95, s.P99)
}

// Counters is a string-keyed event counter set for protocol bookkeeping
// (teardowns spawned, deadlocks recovered, victim hits, ...). Inc is called
// from the sharded route phase, so the map is mutex-guarded; counter totals
// are order-independent, which keeps results byte-identical across shard
// counts.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// Inc adds delta to counter name.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns counter name (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// RMSSkew measures how far a discrete distribution deviates from uniform:
// the root-mean-squared difference between each bucket's share and the
// uniform share 1/len(counts). The paper uses this to explain per-benchmark
// write-latency variation (Section 3.1).
func RMSSkew(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	uniform := 1.0 / float64(len(counts))
	var ss float64
	for _, c := range counts {
		d := float64(c)/float64(total) - uniform
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(counts)))
}

// Mean returns the mean of a float64 slice (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
