package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 {
		t.Fatal("empty accumulator mean should be 0")
	}
	a.Add(10)
	a.Add(20)
	a.Add(30)
	if a.N != 3 || a.Sum != 60 {
		t.Fatalf("N=%d Sum=%v, want 3/60", a.N, a.Sum)
	}
	if a.Mean() != 20 {
		t.Fatalf("Mean=%v, want 20", a.Mean())
	}
	if a.MinV != 10 || a.MaxV != 30 {
		t.Fatalf("min/max %v/%v, want 10/30", a.MinV, a.MaxV)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(5)
	b.Add(10)
	a.Merge(&b)
	if a.N != 3 || a.MaxV != 10 || a.MinV != 1 {
		t.Fatalf("merged accumulator %+v wrong", a)
	}
	var empty Accumulator
	a.Merge(&empty)
	if a.N != 3 {
		t.Fatal("merging empty changed count")
	}
	var c Accumulator
	c.Merge(&a)
	if c.N != 3 || c.Mean() != a.Mean() {
		t.Fatal("merge into empty lost data")
	}
}

func TestAccumulatorMergeMatchesSequentialAdds(t *testing.T) {
	err := quick.Check(func(xs, ys []int16) bool {
		var all, a, b Accumulator
		for _, x := range xs {
			all.Add(float64(x))
			a.Add(float64(x))
		}
		for _, y := range ys {
			all.Add(float64(y))
			b.Add(float64(y))
		}
		a.Merge(&b)
		return a.N == all.N && a.Sum == all.Sum && a.MinV == all.MinV && a.MaxV == all.MaxV
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyStatsSplitsClasses(t *testing.T) {
	var l LatencyStats
	l.Record(false, 100)
	l.Record(false, 200)
	l.Record(true, 50)
	if l.Read.N != 2 || l.Write.N != 1 {
		t.Fatalf("read/write counts %d/%d, want 2/1", l.Read.N, l.Write.N)
	}
	if l.Read.Mean() != 150 || l.Write.Mean() != 50 {
		t.Fatalf("means %v/%v", l.Read.Mean(), l.Write.Mean())
	}
}

func TestDeadlockShare(t *testing.T) {
	var l LatencyStats
	l.Record(false, 1000)
	l.RecordDeadlock(false, 2)
	l.Record(true, 500)
	l.RecordDeadlock(true, 5)
	r, w := l.DeadlockShare()
	if math.Abs(r-0.2) > 1e-9 {
		t.Fatalf("read deadlock share %v, want 0.2", r)
	}
	if math.Abs(w-1.0) > 1e-9 {
		t.Fatalf("write deadlock share %v, want 1.0", w)
	}
	var empty LatencyStats
	r, w = empty.DeadlockShare()
	if r != 0 || w != 0 {
		t.Fatal("empty stats should report zero deadlock share")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(200, 100); got != 50 {
		t.Fatalf("Reduction(200,100)=%v, want 50", got)
	}
	if got := Reduction(100, 150); got != -50 {
		t.Fatalf("Reduction(100,150)=%v, want -50", got)
	}
	if got := Reduction(0, 10); got != 0 {
		t.Fatalf("Reduction with zero base = %v, want 0", got)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("unset counter should be 0")
	}
	c.Inc("teardowns", 3)
	c.Inc("teardowns", 2)
	c.Inc("acks", 1)
	if c.Get("teardowns") != 5 || c.Get("acks") != 1 {
		t.Fatalf("counter values wrong: %d %d", c.Get("teardowns"), c.Get("acks"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "acks" || names[1] != "teardowns" {
		t.Fatalf("Names()=%v", names)
	}
}

func TestRMSSkewUniformIsZero(t *testing.T) {
	if s := RMSSkew([]int64{5, 5, 5, 5}); s != 0 {
		t.Fatalf("uniform skew %v, want 0", s)
	}
}

func TestRMSSkewExtreme(t *testing.T) {
	// All mass in one of four buckets: deviations are 3/4 and three of
	// -1/4; RMS = sqrt((9+1+1+1)/16/4) = sqrt(12/64).
	want := math.Sqrt(12.0 / 64.0)
	if s := RMSSkew([]int64{8, 0, 0, 0}); math.Abs(s-want) > 1e-12 {
		t.Fatalf("skew %v, want %v", s, want)
	}
}

func TestRMSSkewDegenerate(t *testing.T) {
	if RMSSkew(nil) != 0 {
		t.Fatal("nil counts should give 0")
	}
	if RMSSkew([]int64{0, 0}) != 0 {
		t.Fatal("all-zero counts should give 0")
	}
}

func TestRMSSkewMonotoneUnderConcentration(t *testing.T) {
	// Moving mass into fewer buckets must not decrease skew.
	a := RMSSkew([]int64{4, 4, 4, 4})
	b := RMSSkew([]int64{8, 4, 2, 2})
	c := RMSSkew([]int64{14, 1, 1, 0})
	if !(a <= b && b <= c) {
		t.Fatalf("skew not monotone: %v %v %v", a, b, c)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1 2 3]) should be 2")
	}
}

func TestSamplerPercentiles(t *testing.T) {
	var s Sampler
	if s.Percentile(50) != 0 {
		t.Fatal("empty sampler percentile should be 0")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.N() != 100 {
		t.Fatalf("N=%d", s.N())
	}
	cases := map[float64]float64{50: 50, 90: 90, 99: 99, 100: 100, 1: 1, 0: 1}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
	// Adding after a query re-sorts correctly.
	s.Add(0.5)
	if got := s.Percentile(0); got != 0.5 {
		t.Fatalf("min after re-add = %v", got)
	}
}

func TestSummarizeUniform(t *testing.T) {
	// Uniform 1..1000: every statistic is known exactly (nearest-rank).
	var s Sampler
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 1000 || sum.Mean != 500.5 {
		t.Fatalf("n/mean = %d/%v, want 1000/500.5", sum.N, sum.Mean)
	}
	if sum.P50 != 500 || sum.P95 != 950 || sum.P99 != 990 {
		t.Fatalf("percentiles %v/%v/%v, want 500/950/990", sum.P50, sum.P95, sum.P99)
	}
}

func TestSummarizeHeavyTail(t *testing.T) {
	// Two-point distribution: 90 samples at 1, 10 at 100. The median sits
	// in the body, the tail percentiles in the spike.
	var s Sampler
	for i := 0; i < 90; i++ {
		s.Add(1)
	}
	for i := 0; i < 10; i++ {
		s.Add(100)
	}
	sum := s.Summarize()
	if sum.P50 != 1 || sum.P95 != 100 || sum.P99 != 100 {
		t.Fatalf("percentiles %v/%v/%v, want 1/100/100", sum.P50, sum.P95, sum.P99)
	}
	if math.Abs(sum.Mean-10.9) > 1e-9 {
		t.Fatalf("mean %v, want 10.9", sum.Mean)
	}
}

func TestSummarizeConstantAndEmpty(t *testing.T) {
	var empty Sampler
	if got := empty.Summarize(); got != (Summary{}) {
		t.Fatalf("empty summary %+v, want zero", got)
	}
	var s Sampler
	for i := 0; i < 7; i++ {
		s.Add(42)
	}
	sum := s.Summarize()
	if sum.Mean != 42 || sum.P50 != 42 || sum.P95 != 42 || sum.P99 != 42 {
		t.Fatalf("constant summary %+v", sum)
	}
	if sum.String() != "n=7 mean=42.0 p50=42 p95=42 p99=42" {
		t.Fatalf("String() = %q", sum.String())
	}
}

func TestSummarizeMatchesPercentileAPI(t *testing.T) {
	// The one-pass summary must agree with the public Percentile calls it
	// replaced, across add/query interleavings that flip the sorted flag.
	err := quick.Check(func(xs, ys []int16) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sampler
		for _, x := range xs {
			s.Add(float64(x))
		}
		_ = s.Summarize() // sorts
		for _, y := range ys {
			s.Add(float64(y)) // invalidates
		}
		sum := s.Summarize()
		return sum.P50 == s.Percentile(50) &&
			sum.P95 == s.Percentile(95) &&
			sum.P99 == s.Percentile(99) &&
			math.Abs(sum.Mean-s.Mean()) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotAllocate(t *testing.T) {
	var s Sampler
	for i := 0; i < 4096; i++ {
		s.Add(float64((i * 2654435761) % 10000))
	}
	s.Summarize() // pay the one sort up front
	if allocs := testing.AllocsPerRun(100, func() { s.Summarize() }); allocs != 0 {
		t.Fatalf("Summarize allocated %v times per run, want 0", allocs)
	}
}

func TestCountersConcurrent(t *testing.T) {
	// Inc is called from the sharded route phase; hammer it from several
	// goroutines and check totals (run under -race to catch unguarded maps).
	var c Counters
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Inc("shared", 1)
				c.Inc("other", 2)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := c.Get("shared"); got != 4000 {
		t.Fatalf("shared=%d, want 4000", got)
	}
	if got := c.Get("other"); got != 8000 {
		t.Fatalf("other=%d, want 8000", got)
	}
}

func BenchmarkSummarize(b *testing.B) {
	// The per-summary hot path: after the first sort, Summarize must be
	// allocation-free and O(1) (run with -benchmem to see 0 allocs/op).
	var s Sampler
	for i := 0; i < 1<<16; i++ {
		s.Add(float64((i * 2654435761) % 100000))
	}
	s.Summarize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sum := s.Summarize(); sum.N == 0 {
			b.Fatal("empty summary")
		}
	}
}

func BenchmarkSamplerAdd(b *testing.B) {
	// Steady-state Add is an append plus a sum update; amortized it must
	// stay well under one allocation per sample.
	b.ReportAllocs()
	var s Sampler
	for i := 0; i < b.N; i++ {
		s.Add(float64(i & 1023))
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// Table-driven edge cases for the nearest-rank percentile: the empty
	// sampler, a single sample (every percentile is that sample), an
	// all-equal vector, negative values, and the p boundaries (p<=0 clamps
	// to the minimum, p=100 and the tiniest positive p stay in range).
	cases := []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty p0", nil, 0, 0},
		{"empty p100", nil, 100, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"single tiny p", []float64{7}, 0.001, 7},
		{"two p50", []float64{10, 20}, 50, 10},
		{"two p51", []float64{10, 20}, 51, 20},
		{"all equal p99", []float64{3, 3, 3, 3}, 99, 3},
		{"negative values p0", []float64{-5, -1, 4}, 0, -5},
		{"negative values p100", []float64{-5, -1, 4}, 100, 4},
		{"unsorted input p50", []float64{9, 1, 5}, 50, 5},
		{"p above 100 clamps", []float64{1, 2, 3}, 250, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var s Sampler
			for _, v := range tc.vals {
				s.Add(v)
			}
			if got := s.Percentile(tc.p); got != tc.want {
				t.Fatalf("Percentile(%v) over %v = %v, want %v", tc.p, tc.vals, got, tc.want)
			}
			sum := s.Summarize()
			for _, v := range []float64{sum.Mean, sum.P50, sum.P95, sum.P99} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("summary has non-finite statistic: %+v", sum)
				}
			}
		})
	}
}

func TestDeadlockShareNaNFreeUnderFaultCounters(t *testing.T) {
	// Fault injection can produce degenerate latency ledgers: accesses that
	// never completed (deadlock cycles charged against a zero base), one
	// empty class, or huge retry-inflated values. The Table 4 metric must
	// stay finite in every combination.
	type rec struct {
		write    bool
		latency  int64
		deadlock int64
	}
	cases := []struct {
		name           string
		recs           []rec
		wantR, wantW   float64
		exactR, exactW bool
	}{
		{name: "all empty", wantR: 0, wantW: 0, exactR: true, exactW: true},
		{
			// Deadlock cycles with no completed access of that class:
			// share is defined as 0, not Inf/NaN.
			name:  "deadlock without base latency",
			recs:  []rec{{write: false, latency: 0, deadlock: 40}},
			wantR: 0, exactR: true, wantW: 0, exactW: true,
		},
		{
			name:  "reads only",
			recs:  []rec{{write: false, latency: 200, deadlock: 50}},
			wantR: 25, exactR: true, wantW: 0, exactW: true,
		},
		{
			name:  "writes only",
			recs:  []rec{{write: true, latency: 1000, deadlock: 10}},
			wantR: 0, exactR: true, wantW: 1, exactW: true,
		},
		{
			name: "retry-inflated tail",
			recs: []rec{
				{write: false, latency: 1 << 40, deadlock: 1 << 39},
				{write: true, latency: 3, deadlock: 1 << 41},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var l LatencyStats
			for _, r := range tc.recs {
				if r.latency > 0 {
					l.Record(r.write, r.latency)
				}
				if r.deadlock > 0 {
					l.RecordDeadlock(r.write, r.deadlock)
				}
			}
			rp, wp := l.DeadlockShare()
			if math.IsNaN(rp) || math.IsInf(rp, 0) || math.IsNaN(wp) || math.IsInf(wp, 0) {
				t.Fatalf("non-finite deadlock share: read %v write %v", rp, wp)
			}
			if tc.exactR && rp != tc.wantR {
				t.Fatalf("read share %v, want %v", rp, tc.wantR)
			}
			if tc.exactW && wp != tc.wantW {
				t.Fatalf("write share %v, want %v", wp, tc.wantW)
			}
		})
	}
}

func TestSamplerPercentileMonotoneProperty(t *testing.T) {
	err := quick.Check(func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sampler
		for _, x := range xs {
			s.Add(float64(x))
		}
		return s.Percentile(25) <= s.Percentile(50) &&
			s.Percentile(50) <= s.Percentile(75) &&
			s.Percentile(75) <= s.Percentile(100)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
