package litmus

import (
	"testing"

	"innetcc/internal/protocol"
)

// FuzzLitmusProgram feeds coverage-guided byte strings through
// DecodeProgram and replays the resulting conflict program on both engines,
// clean and with the invariant probe armed: the unmodified protocols must
// pass every oracle on every program the decoder can express. Any crasher
// the fuzzer saves is a real protocol or oracle defect.
func FuzzLitmusProgram(f *testing.F) {
	// Seed corpus: one op, a 2-node conflict, a hot-line write storm, and
	// a multi-line mix on the 3x3 mesh.
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 1})
	f.Add([]byte{0, 1, 0, 1, 3, 0, 1, 2, 0, 1, 0, 0, 1})
	f.Add([]byte{2, 8, 0, 0, 1, 3, 1, 4, 0, 1, 7, 5, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		prog := DecodeProgram(raw)
		if err := prog.Validate(); err != nil {
			t.Fatalf("DecodeProgram produced invalid program: %v", err)
		}
		for _, eng := range []protocol.EngineKind{protocol.KindDirectory, protocol.KindTree} {
			rs := RunSpec{Engine: eng, Seed: 1, Faults: "probe=25", Program: prog}
			fails, err := Run(rs)
			if err != nil {
				t.Fatal(err)
			}
			if len(fails) > 0 {
				t.Errorf("%s: clean protocol failed oracle on %v: %v", eng, prog.Ops, fails[0])
			}
		}
	})
}
