package litmus

import (
	"innetcc/internal/network"
	"innetcc/internal/sim"
)

// Generate draws a random conflict program from seed: a small fabric
// (mostly meshes, with torus and ring draws mixed in so wraparound routing
// stays under continuous differential fire), one to three line addresses
// (few lines shared by many nodes is what makes a litmus test a conflict
// test), and 4–12 accesses dealt across random nodes. The draw is a pure
// function of the seed — the same RNG discipline as the rest of the
// repository — so a campaign is fully described by its base seed and count.
func Generate(seed uint64) Program {
	rng := sim.NewRNG(seed)
	topos := []string{"mesh:2x2", "mesh:2x2", "mesh:2x3", "mesh:3x3", "torus:2x2", "torus:3x3", "ring:4", "ring:6"}
	topo := topos[rng.Intn(len(topos))]
	ts, _ := network.ParseTopoSpec(topo)
	nodes := ts.Nodes()
	addrs := make([]uint64, 1+rng.Intn(3))
	for i := range addrs {
		// Spread homes across the mesh (home = addr % nodes) and let two
		// draws collide into the same line now and then.
		addrs[i] = uint64(rng.Intn(2 * nodes))
	}
	ops := make([]Op, 4+rng.Intn(9))
	for i := range ops {
		ops[i] = Op{
			Node:  rng.Intn(nodes),
			Addr:  addrs[rng.Intn(len(addrs))],
			Write: rng.Intn(2) == 0,
		}
	}
	return Program{Topology: topo, Ops: ops}
}

// DecodeProgram builds a program from raw fuzzer bytes: three bytes per
// op (node, address, kind) on a fabric picked by the first byte. Unlike
// Generate it gives a coverage-guided fuzzer direct structural control
// over every op. The result is always valid (Validate passes).
func DecodeProgram(raw []byte) Program {
	topos := []string{"mesh:2x2", "mesh:2x3", "mesh:3x3", "torus:2x2", "torus:3x3", "ring:4", "ring:6"}
	topo := topos[0]
	if len(raw) > 0 {
		topo = topos[int(raw[0])%len(topos)]
		raw = raw[1:]
	}
	ts, _ := network.ParseTopoSpec(topo)
	nodes := ts.Nodes()
	var ops []Op
	for i := 0; i+3 <= len(raw) && len(ops) < 32; i += 3 {
		ops = append(ops, Op{
			Node:  int(raw[i]) % nodes,
			Addr:  uint64(raw[i+1]) % uint64(2*nodes),
			Write: raw[i+2]&1 == 1,
		})
	}
	if len(ops) == 0 {
		ops = []Op{{Node: 0, Addr: 0}}
	}
	return Program{Topology: topo, Ops: ops}
}
