// Package litmus is the simulator-level half of the two-layer verification
// net (the model checker in internal/mcheck is the other half). It
// generates small randomized conflict programs — concurrent reads and
// writes to a handful of lines from many nodes, on deliberately tiny cache
// geometries so eviction and conflict paths fire — replays each through
// the full simulator, clean and under deterministic fault plans, and
// checks a battery of oracles:
//
//   - the runtime verifier (SWMR on write commit, read-vs-memory sampling,
//     per-node monotonicity), surfaced through the run error;
//   - teardown liveness: the run must quiesce with every access complete
//     (a dropped acknowledgment or lost completion hangs the run, which
//     the watchdog converts into a typed failure);
//   - the end-state self-check (verify.EndState): nothing committed is
//     lost, no copy or memory version beyond the committed bound, at most
//     one Modified copy;
//   - the linearization witness (verify.CheckWitness): the retained
//     commit-point order must be a legal sequential MSI history;
//   - completeness: every issued access commits (writes exactly once;
//     reads exactly once on clean runs, at least once under fault plans,
//     where a late reply's serve may legitimately be re-sampled).
//
// A failing spec is shrunk (Shrink) to a minimal reproducer and written as
// a replayable JSON spec file; Load + Run reproduces the failure
// deterministically, because every input — program, config, fault plan —
// is a pure function of the spec.
package litmus

import (
	"encoding/json"
	"fmt"
	"os"

	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// Op is one access of a litmus program.
type Op struct {
	Node  int    `json:"node"`
	Addr  uint64 `json:"addr"`
	Write bool   `json:"write,omitempty"`
}

func (o Op) String() string {
	k := "R"
	if o.Write {
		k = "W"
	}
	return fmt.Sprintf("n%d:%s@%#x", o.Node, k, o.Addr)
}

// Program is a litmus test: an interconnect topology and an op list. Ops
// are dealt to per-node streams in list order; each node issues its ops in
// program order (one outstanding at a time), and cross-node interleaving is
// whatever the simulated timing produces.
type Program struct {
	// Topology is the canonical fabric string ("mesh:2x2", "torus:3x3",
	// "ring:6"); network.ParseTopoSpec parses it.
	Topology string `json:"topology"`
	Ops      []Op   `json:"ops"`
}

// Topo parses the program's topology spec.
func (p Program) Topo() (network.TopoSpec, error) {
	return network.ParseTopoSpec(p.Topology)
}

// Nodes returns the program's node count (0 when the topology is invalid).
func (p Program) Nodes() int {
	ts, err := p.Topo()
	if err != nil {
		return 0
	}
	return ts.Nodes()
}

// Validate reports structural errors a run cannot proceed past.
func (p Program) Validate() error {
	ts, err := p.Topo()
	if err != nil {
		return err
	}
	nodes := ts.Nodes()
	if nodes < 4 || nodes > 64 {
		return fmt.Errorf("litmus: topology %s has %d nodes, want [4,64]", p.Topology, nodes)
	}
	if len(p.Ops) == 0 || len(p.Ops) > 256 {
		return fmt.Errorf("litmus: %d ops out of range [1,256]", len(p.Ops))
	}
	for i, op := range p.Ops {
		if op.Node < 0 || op.Node >= nodes {
			return fmt.Errorf("litmus: op %d node %d outside %d-node fabric", i, op.Node, nodes)
		}
	}
	return nil
}

// Trace deals the ops to per-node access streams.
func (p Program) Trace() *trace.Trace {
	per := make([][]trace.Access, p.Nodes())
	for _, op := range p.Ops {
		per[op.Node] = append(per[op.Node], trace.Access{Addr: op.Addr, Write: op.Write})
	}
	return &trace.Trace{Name: "litmus", PerNode: per}
}

// RunSpec is the complete, self-contained description of one litmus run —
// the replayable reproducer format. Every field feeds a pure function, so
// two Runs of the same spec are identical down to the cycle.
type RunSpec struct {
	// Version is the spec-file format version (specVersion).
	Version int `json:"version"`
	// Engine selects the coherence engine under test.
	Engine protocol.EngineKind `json:"engine"`
	// Seed drives the simulation's randomness (think times) and, xored
	// through faultSeed, the fault plan's schedule.
	Seed uint64 `json:"seed"`
	// Bug, when non-empty, names a seeded protocol defect
	// (treecc.ParseBug) armed on the engine under test.
	Bug string `json:"bug,omitempty"`
	// Faults, when non-empty, is a fault.ParseSpec string arming
	// injection and the retry/watchdog recovery knobs.
	Faults string `json:"faults,omitempty"`
	// Program is the litmus test itself.
	Program Program `json:"program"`
}

// specVersion is bumped whenever RunSpec's semantics change incompatibly
// (v2: Program carries a topology string instead of mesh_w/mesh_h).
const specVersion = 2

// String is a compact human-readable one-liner for logs.
func (rs RunSpec) String() string {
	s := fmt.Sprintf("%s seed=%d %s %v", rs.Engine, rs.Seed,
		rs.Program.Topology, rs.Program.Ops)
	if rs.Bug != "" {
		s += " bug=" + rs.Bug
	}
	if rs.Faults != "" {
		s += " faults=" + rs.Faults
	}
	return s
}

// Save writes the spec as an indented JSON reproducer file.
func (rs RunSpec) Save(path string) error {
	rs.Version = specVersion
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a reproducer file written by Save.
func Load(path string) (RunSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return RunSpec{}, err
	}
	var rs RunSpec
	if err := json.Unmarshal(b, &rs); err != nil {
		return RunSpec{}, fmt.Errorf("litmus: %s: %v", path, err)
	}
	if rs.Version != specVersion {
		return RunSpec{}, fmt.Errorf("litmus: %s: spec version %d, want %d", path, rs.Version, specVersion)
	}
	return rs, nil
}
