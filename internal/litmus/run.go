package litmus

import (
	"errors"
	"fmt"

	_ "innetcc/internal/directory" // register the directory engine
	"innetcc/internal/fault"
	"innetcc/internal/protocol"
	"innetcc/internal/treecc"
	"innetcc/internal/verify"
)

// maxCycles bounds one litmus run; programs are tiny (a clean run quiesces
// in a few thousand cycles), so a run that needs more than this has wedged
// even if the watchdog missed it — retry churn keeps packets moving, which
// defeats progress-based watchdogs, and the bound is what converts such a
// spin into a liveness failure. Kept tight so shrinking a hang-based
// reproducer (every shrink candidate re-runs to the bound) stays fast.
const maxCycles = 300_000

// Failure is one oracle trip. Oracle is a stable category name — "crash",
// "liveness", "verify", "witness", "completeness", "endstate" — and Detail
// the human-readable specifics.
type Failure struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (f Failure) String() string { return f.Oracle + ": " + f.Detail }

// config builds the litmus machine configuration: the paper's nominal
// latencies on the program's mesh, with deliberately tiny tree and L2
// geometries so conflict evictions, victim-cache churn and teardown storms
// happen within a handful of accesses, and the watchdog armed so a
// liveness bug becomes a typed failure instead of a spun-out run.
func (rs RunSpec) config() protocol.Config {
	cfg := protocol.DefaultConfig()
	ts, _ := rs.Program.Topo() // Run validates the program first
	cfg.Topology = ts
	cfg.TreeEntries, cfg.TreeWays = 4, 2
	cfg.DirEntries, cfg.DirWays = 4, 2
	cfg.L2Entries, cfg.L2Ways = 8, 2
	cfg.MemLatency = 50
	cfg.WatchdogCycles = 100_000
	cfg.Seed = rs.Seed
	return cfg
}

// faultSeed derives the fault plan's schedule seed from the run seed, the
// same splitmix mixing the experiment layer uses, so plan and simulation
// randomness decorrelate without a second spec field.
func faultSeed(seed uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Run executes one litmus spec and returns the oracle failures (empty
// means the run passed every check). The error return is reserved for
// invalid specs — an unparseable fault string, a malformed program, an
// unknown bug name — never for protocol misbehavior, which is always
// reported as failures so shrinking can minimize it.
func Run(rs RunSpec) ([]Failure, error) {
	if err := rs.Program.Validate(); err != nil {
		return nil, err
	}
	cfg := rs.config()
	var plan *fault.Plan
	if rs.Faults != "" {
		fspec, err := fault.ParseSpec(rs.Faults)
		if err != nil {
			return nil, err
		}
		cfg.RetryTimeout = fspec.Timeout
		cfg.RetryBudget = fspec.Budget
		cfg.RetryBackoff = fspec.Backoff
		cfg.ProbeInterval = fspec.Probe
		if fspec.Injecting() {
			p := fspec.Plan(faultSeed(rs.Seed))
			plan = &p
		}
	}
	bugs, err := treecc.ParseBug(rs.Bug)
	if err != nil {
		return nil, err
	}
	if bugs != 0 && rs.Engine != protocol.KindTree {
		return nil, fmt.Errorf("litmus: bug %q requires the tree engine, spec has %s", rs.Bug, rs.Engine)
	}
	m, err := protocol.Build(protocol.Spec{
		Config:    cfg,
		Trace:     rs.Program.Trace(),
		Think:     4,
		Engine:    rs.Engine,
		Faults:    plan,
		KeepOrder: true,
	})
	if err != nil {
		return nil, err
	}
	if bugs != 0 {
		m.Engine().(*treecc.Engine).Bugs = bugs
	}

	runErr, panicked := runGuarded(m)

	var fails []Failure
	add := func(oracle, format string, args ...interface{}) {
		if len(fails) < 32 {
			fails = append(fails, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
		}
	}
	if panicked != "" {
		add("crash", "%s", panicked)
		return fails, nil
	}
	var hang *fault.HangError
	switch {
	case errors.As(runErr, &hang):
		add("liveness", "run did not quiesce: %s", hang.Error())
	case runErr != nil:
		add("verify", "%s", runErr.Error())
	}
	// The witness validates the commit-point prefix even of a hung run;
	// the end-state and completeness oracles only make sense at clean
	// quiescence (a hung run trivially has in-flight versions and
	// unfinished accesses, which the liveness failure already reports).
	for _, w := range verify.CheckWitness(m.Check.Order()) {
		add("witness", "%s", w)
	}
	if runErr == nil {
		for _, s := range m.EndState(rs.Engine.String() + "/litmus").SelfCheck() {
			add("endstate", "%s", s)
		}
		checkCompleteness(rs, m, add)
	}
	return fails, nil
}

// runGuarded runs the machine, converting a panic — a crashed protocol is
// a finding, not a harness failure — into a returned description.
func runGuarded(m *protocol.Machine) (err error, panicked string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = fmt.Sprint(r)
		}
	}()
	return m.Run(maxCycles), ""
}

// checkCompleteness compares the witness's per-node committed-access
// counts against the issued program. Writes serialize exactly once under
// any legal execution, retried or not — a write reply from an abandoned
// epoch is dropped before it can commit, so a count shift means a lost or
// duplicated completion. Reads must commit at least once; exactly-once
// cannot be demanded because the paper's own deadlock recovery (and the
// fault layer's retry) legitimately re-serves a read whose reply was
// aborted, leaving a second harmless sample at the data source.
func checkCompleteness(rs RunSpec, m *protocol.Machine, add func(string, string, ...interface{})) {
	wantReads := map[int]int{}
	wantWrites := map[int]int{}
	for _, op := range rs.Program.Ops {
		if op.Write {
			wantWrites[op.Node]++
		} else {
			wantReads[op.Node]++
		}
	}
	gotReads := map[int]int{}
	gotWrites := map[int]int{}
	for _, r := range m.Check.Order() {
		if r.Write {
			gotWrites[r.Node]++
		} else {
			gotReads[r.Node]++
		}
	}
	nodes := rs.Program.Nodes()
	for n := 0; n < nodes; n++ {
		if gotWrites[n] != wantWrites[n] {
			add("completeness", "node %d committed %d writes, program issued %d", n, gotWrites[n], wantWrites[n])
		}
		if gotReads[n] < wantReads[n] {
			add("completeness", "node %d committed %d reads, program issued %d", n, gotReads[n], wantReads[n])
		}
	}
}
