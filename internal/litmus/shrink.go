package litmus

import (
	"innetcc/internal/fault"
	"innetcc/internal/network"
)

// Fails reports whether the spec still trips at least one oracle. The
// shrinker preserves this predicate rather than the exact failure text:
// a minimal reproducer may surface the same defect through a different
// oracle (a witness violation collapsing into a liveness hang, say), and
// any surviving failure is the defect's signature, because every oracle
// passes on the clean protocol.
func Fails(rs RunSpec) bool {
	fails, err := Run(rs)
	return err == nil && len(fails) > 0
}

// Shrink greedily minimizes a failing spec while Fails keeps holding:
// drop ops one at a time to a fixed point, move the program to a smaller
// mesh, simplify the fault plan (remove it outright, else strip it to
// drops only), then drop ops again on the reduced configuration. Every
// candidate order is fixed and Run is a pure function of the spec, so the
// shrink is deterministic: the same failing spec always minimizes to the
// same reproducer. The input spec is returned unchanged if it does not
// fail in the first place.
func Shrink(rs RunSpec) RunSpec {
	if !Fails(rs) {
		return rs
	}
	rs = shrinkOps(rs)
	rs = shrinkMesh(rs)
	rs = shrinkFaults(rs)
	rs = shrinkOps(rs)
	return rs
}

// shrinkOps removes single ops, last to first so candidate indices stay
// stable, repeating until a full pass removes nothing.
func shrinkOps(rs RunSpec) RunSpec {
	for changed := true; changed; {
		changed = false
		for i := len(rs.Program.Ops) - 1; i >= 0; i-- {
			if len(rs.Program.Ops) == 1 {
				break
			}
			cand := rs
			cand.Program.Ops = make([]Op, 0, len(rs.Program.Ops)-1)
			cand.Program.Ops = append(cand.Program.Ops, rs.Program.Ops[:i]...)
			cand.Program.Ops = append(cand.Program.Ops, rs.Program.Ops[i+1:]...)
			if Fails(cand) {
				rs = cand
				changed = true
			}
		}
	}
	return rs
}

// shrinkMesh tries to move the program to a smaller fabric, folding node
// ids modulo the smaller node count. Small meshes are tried first — a
// reproducer on the simplest open fabric is the easiest to reason about —
// so a torus or ring failure that survives the move also loses its
// wraparound dependence. Smallest first; the first candidate that still
// fails wins.
func shrinkMesh(rs RunSpec) RunSpec {
	for _, topo := range []string{"mesh:2x2", "mesh:2x3"} {
		ts, _ := network.ParseTopoSpec(topo)
		// A candidate must not grow the system; an equal-sized mesh is
		// still a simplification of a torus or ring of the same node
		// count.
		if topo == rs.Program.Topology || ts.Nodes() > rs.Program.Nodes() {
			continue
		}
		cand := rs
		cand.Program.Topology = topo
		cand.Program.Ops = make([]Op, len(rs.Program.Ops))
		for i, op := range rs.Program.Ops {
			op.Node %= ts.Nodes()
			cand.Program.Ops[i] = op
		}
		if Fails(cand) {
			return cand
		}
	}
	return rs
}

// shrinkFaults first tries removing the fault plan entirely, then — for
// failures that need injection to manifest — stripping it to its drop
// component with the recovery knobs kept.
func shrinkFaults(rs RunSpec) RunSpec {
	if rs.Faults == "" {
		return rs
	}
	cand := rs
	cand.Faults = ""
	if Fails(cand) {
		return cand
	}
	fspec, err := fault.ParseSpec(rs.Faults)
	if err != nil {
		return rs
	}
	simple := fspec
	simple.CorruptPPM, simple.StallPPM = 0, 0
	if s := simple.String(); s != rs.Faults {
		cand = rs
		cand.Faults = s
		if Fails(cand) {
			return cand
		}
	}
	return rs
}
