package litmus

import (
	"path/filepath"
	"reflect"
	"testing"

	"innetcc/internal/protocol"
)

// Line addresses used by the directed programs: addr n has home node n.
const (
	aA = 0 // home 0
	aB = 1 // home 1
	aC = 2 // home 2
)

// engines under test; litmus replays every program on both.
var engines = []protocol.EngineKind{protocol.KindDirectory, protocol.KindTree}

// TestCleanCampaignPasses is the no-false-positives half of the oracle
// story: randomly generated conflict programs on the unmodified protocols
// must pass every oracle, clean and with the invariant probe armed.
func TestCleanCampaignPasses(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		prog := Generate(seed)
		for _, eng := range engines {
			for _, faults := range []string{"", "probe=50"} {
				rs := RunSpec{Engine: eng, Seed: seed, Faults: faults, Program: prog}
				fails, err := Run(rs)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, eng, err)
				}
				if len(fails) > 0 {
					t.Errorf("seed %d %s faults=%q: clean run failed: %v\nprogram: %v",
						seed, eng, faults, fails[0], prog.Ops)
				}
			}
		}
	}
}

// TestCleanFaultCampaignPasses replays generated programs under a drop
// plan with retry recovery armed: the fault layer must mask every injected
// loss, and no oracle may misread recovery traffic as a violation.
func TestCleanFaultCampaignPasses(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 6
	}
	const faults = "drop=5000,timeout=4000,retries=8,backoff=32,probe=100"
	for seed := uint64(1); seed <= uint64(n); seed++ {
		prog := Generate(seed)
		for _, eng := range engines {
			rs := RunSpec{Engine: eng, Seed: seed, Faults: faults, Program: prog}
			fails, err := Run(rs)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, eng, err)
			}
			if len(fails) > 0 {
				t.Errorf("seed %d %s: fault run failed: %v\nprogram: %v", seed, eng, fails[0], prog.Ops)
			}
		}
	}
}

// bugCases is the litmus half of the seeded-mutation suite: the same seven
// defects internal/mcheck's mutation table proves the model checker
// catches, here proven caught by the full-simulator oracles. Each case
// carries directed conflict programs (prelude reads on other lines stagger
// issue times so the conflict lands in the vulnerable window) and the
// fault string its defect needs (stale replies need retry armed; several
// need only the invariant probe; drop-td-ack needs nothing at all).
var bugCases = []struct {
	bug      string
	faults   string
	programs []Program
}{
	{
		bug:    "drop-td-ack",
		faults: "",
		programs: []Program{
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA}, {Node: 2, Addr: aB}, {Node: 2, Addr: aA, Write: true}}},
		},
	},
	{
		bug:    "skip-invalidate",
		faults: "",
		programs: []Program{
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA}, {Node: 2, Addr: aB}, {Node: 2, Addr: aA, Write: true}}},
		},
	},
	{
		bug:    "lost-writeback",
		faults: "",
		programs: []Program{
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA, Write: true}, {Node: 2, Addr: aB}, {Node: 2, Addr: aA}}},
		},
	},
	{
		bug: "early-home-release",
		// The defect leaves outer sharers holding registered copies after
		// the home declared the tree gone; a hot line churned by every
		// node keeps teardowns overlapping grants until the invariant
		// probe observes a stale copy outliving a commit.
		faults: "probe=10",
		programs: []Program{
			// All four nodes churning one line whose home is n2.
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 2, Addr: 6, Write: true}, {Node: 3, Addr: 6}, {Node: 1, Addr: 6},
				{Node: 0, Addr: 6, Write: true}, {Node: 3, Addr: 6, Write: true},
				{Node: 2, Addr: 6, Write: true}, {Node: 0, Addr: 6}, {Node: 2, Addr: 6, Write: true},
				{Node: 2, Addr: 6, Write: true}, {Node: 3, Addr: 6, Write: true},
				{Node: 1, Addr: 6}, {Node: 1, Addr: 6, Write: true}}},
			{Topology: "mesh:3x3", Ops: []Op{
				{Node: 8, Addr: aA},
				{Node: 1, Addr: aB}, {Node: 1, Addr: aC}, {Node: 1, Addr: aA, Write: true}}},
		},
	},
	{
		bug:    "double-grant",
		faults: "probe=10",
		programs: []Program{
			// A write slips into the home's pending window while a
			// memory read is being served.
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA}, {Node: 3, Addr: aA, Write: true},
				{Node: 2, Addr: aB}, {Node: 2, Addr: aA}}},
			// Two concurrent writes.
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA, Write: true}, {Node: 3, Addr: aA, Write: true},
				{Node: 2, Addr: aB}, {Node: 2, Addr: aA}}},
		},
	},
	{
		bug: "drop-ack-hold",
		// The held ack protects the ~6-cycle window between a reply
		// anchoring at the requester and its completion; to land a
		// teardown inside it, stalls scramble message timing while
		// spurious timeouts (120 < a stalled round trip) keep reissues
		// and their abandoned replies churning through hot-line teardown
		// storms. Seed-dependent, hence the scan.
		faults: "stall=300000,stalllen=24,timeout=120,retries=30,backoff=8,probe=10",
		programs: []Program{
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA, Write: true}, {Node: 2, Addr: aA, Write: true},
				{Node: 3, Addr: aA, Write: true}, {Node: 0, Addr: aA, Write: true},
				{Node: 1, Addr: aA, Write: true}, {Node: 2, Addr: aA, Write: true},
				{Node: 3, Addr: aA}, {Node: 1, Addr: aA}}},
			{Topology: "mesh:3x3", Ops: []Op{
				{Node: 8, Addr: aA}, {Node: 1, Addr: aA, Write: true}, {Node: 8, Addr: aA, Write: true},
				{Node: 4, Addr: aA}, {Node: 0, Addr: aA, Write: true}, {Node: 8, Addr: aA},
				{Node: 2, Addr: aA, Write: true}, {Node: 6, Addr: aA, Write: true}}},
		},
	},
	{
		bug: "accept-stale-reply",
		// Drops cannot produce stale replies (a dropped reply no longer
		// exists, and the drop NACKs an immediate reissue); a timeout
		// shorter than the memory round trip can — the access reissues
		// while the original reply is still in flight, and the defect
		// then accepts that abandoned reply, double-completing.
		faults: "timeout=60,retries=20,backoff=8,probe=25",
		programs: []Program{
			{Topology: "mesh:2x2", Ops: []Op{
				{Node: 1, Addr: aA}, {Node: 2, Addr: aA, Write: true},
				{Node: 3, Addr: aA}, {Node: 1, Addr: aA, Write: true},
				{Node: 2, Addr: aA}, {Node: 3, Addr: aA, Write: true}}},
		},
	},
}

// findFailing scans seeds (in fixed order, so the result is deterministic)
// until one of the case's programs trips an oracle under the seeded bug
// while passing with the bug disarmed — the second condition discards
// fault-plan artifacts (e.g. a plan harsh enough to exhaust retries on the
// correct protocol) so every returned spec blames the defect.
func findFailing(t *testing.T, bug, faults string, programs []Program, maxSeed uint64) (RunSpec, bool) {
	t.Helper()
	for seed := uint64(1); seed <= maxSeed; seed++ {
		for _, prog := range programs {
			rs := RunSpec{Engine: protocol.KindTree, Seed: seed, Bug: bug, Faults: faults, Program: prog}
			if !Fails(rs) {
				continue
			}
			clean := rs
			clean.Bug = ""
			if Fails(clean) {
				continue
			}
			return rs, true
		}
	}
	return RunSpec{}, false
}

// TestSeededBugsCaughtAndShrunk is the acceptance loop: every seeded
// engine defect must (1) trip a litmus oracle, (2) shrink to a reproducer
// of at most 8 ops, and (3) replay the identical failure deterministically
// from its saved spec file. It also pins that the same specs pass with the
// bug disarmed — the oracles react to the defect, not to the program.
func TestSeededBugsCaughtAndShrunk(t *testing.T) {
	const maxSeed = 64
	dir := t.TempDir()
	for _, tc := range bugCases {
		tc := tc
		t.Run(tc.bug, func(t *testing.T) {
			rs, found := findFailing(t, tc.bug, tc.faults, tc.programs, maxSeed)
			if !found {
				t.Fatalf("bug %s: no failing seed in 1..%d", tc.bug, maxSeed)
			}

			small := Shrink(rs)
			if n := len(small.Program.Ops); n > 8 {
				t.Fatalf("bug %s: shrunk reproducer has %d ops, want <= 8: %s", tc.bug, n, small)
			}
			if !Fails(small) {
				t.Fatalf("bug %s: shrunk spec no longer fails: %s", tc.bug, small)
			}

			// The reproducer must replay the identical failure from disk.
			path := filepath.Join(dir, tc.bug+".json")
			if err := small.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(small)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 || !reflect.DeepEqual(want, got) {
				t.Fatalf("bug %s: replay from spec file diverged:\nwant %v\ngot  %v", tc.bug, want, got)
			}
			t.Logf("bug %s: %d ops, oracle %s (%s)", tc.bug, len(small.Program.Ops), got[0].Oracle, small)
		})
	}
}

// TestShrinkDeterministic pins that shrinking is a pure function of the
// failing spec: two shrinks of the same input yield the same reproducer.
func TestShrinkDeterministic(t *testing.T) {
	tc := bugCases[0] // drop-td-ack: cheap, no faults
	rs, found := findFailing(t, tc.bug, tc.faults, tc.programs, 8)
	if !found {
		t.Skip("no failing seed in quick scan")
	}
	a, b := Shrink(rs), Shrink(rs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shrink not deterministic:\n%s\n%s", a, b)
	}
}
