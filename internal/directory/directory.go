// Package directory implements the baseline MSI directory cache coherence
// protocol the paper compares against: a full-map directory cache at every
// node's network interface, three-hop reads (requester -> home -> sharer ->
// requester), home-serialized writes with invalidation/acknowledgment
// collection, and the same victim-caching optimization at the home node's
// L2 that the in-network protocol gets (Section 2.1 gives it to the
// baseline "to ensure a fair comparison").
//
// The network is a pure communication medium here: every packet follows the
// fabric's deterministic minimal route to its destination (X-Y on the mesh),
// and all protocol work happens above the network at the NICs, paying the
// directory-access and ejection/re-injection costs the paper charges the
// baseline (Section 3.1). With Config.Multicast armed, invalidation rounds
// ride single destination-set packets the routers fork in-network instead
// of one unicast packet per target.
package directory

import (
	"innetcc/internal/cache"
	"innetcc/internal/metrics"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
)

// dirEntry is one directory cache entry: a full-map sharer vector plus the
// transient state of an in-flight transaction.
type dirEntry struct {
	sharers  uint64 // bitset of nodes holding (or about to hold) the line
	owner    int
	modified bool

	busy        bool // a read forward or write invalidation is in flight
	evicting    bool // entry being torn down to free the way
	pendingAcks int
	pendingWr   *protocol.Msg   // write awaiting invalidation acks
	queue       []*protocol.Msg // requests serialized behind busy/evicting
}

func bit(n int) uint64 { return 1 << uint(n) }

// Engine is the baseline protocol engine.
type Engine struct {
	m    *protocol.Machine
	dirs []*cache.Cache[dirEntry]

	// pendingInval marks (node, addr) pairs where an invalidation
	// arrived while the node's read for that line was still in flight;
	// the reply data is then used once and not cached.
	pendingInval []map[uint64]bool

	// parked holds requests waiting for an allocatable directory way at
	// each home; they retry whenever an entry is removed.
	parked [][]*protocol.Msg

	queued int // queued + parked requests, for Quiesced

	// HopRecorder, when set, receives the baseline and oracle-ideal hop
	// counts of every coherence access at issue time (the Section 1
	// hop-count study).
	HopRecorder func(write bool, baseHops, idealHops int)
}

func init() {
	protocol.RegisterEngineBuilder(protocol.KindDirectory,
		func(m *protocol.Machine) protocol.Engine { return New(m) })
}

// New builds the baseline engine on machine m, constructing the fabric from
// the configured topology with the baseline pipeline depth and plain
// destination routing.
func New(m *protocol.Machine) *Engine {
	cfg := m.Cfg
	e := &Engine{m: m}
	for i := 0; i < cfg.Nodes(); i++ {
		e.dirs = append(e.dirs, cache.New[dirEntry](cfg.DirEntries, cfg.DirWays))
		e.pendingInval = append(e.pendingInval, make(map[uint64]bool))
	}
	e.parked = make([][]*protocol.Msg, cfg.Nodes())
	mesh := network.Build(m.Kernel, network.Config{
		Topo:     cfg.Topology.Build(),
		Pipeline: cfg.BasePipeline,
		Policy:   network.DestPolicy{},
		Clone:    protocol.CloneMsg,
	})
	m.AttachEngine(e, mesh)
	return e
}

// Dir exposes a node's directory cache for tests and the hop study.
func (e *Engine) Dir(node int) *cache.Cache[dirEntry] { return e.dirs[node] }

func (e *Engine) send(src, dst int, msg *protocol.Msg, now int64) {
	e.m.Mesh.Inject(src, e.m.NewPacket(src, dst, msg), now)
}

// StartMiss implements protocol.Engine.
func (e *Engine) StartMiss(node int, addr uint64, write bool, now int64) {
	if e.HopRecorder != nil {
		e.recordHops(node, addr, write)
	}
	t := protocol.RdReq
	if write {
		t = protocol.WrReq
	}
	msg := &protocol.Msg{Type: t, Addr: addr, Requester: node, IssuedAt: now,
		Attempt: e.m.CurrentAttempt(node)}
	e.send(node, e.m.Cfg.Home(addr), msg, now)
}

// Eject implements protocol.Engine: protocol handling at the NICs, with the
// directory-access and L2-access service times of Table 2.
func (e *Engine) Eject(node int, p *network.Packet, now int64) {
	msg := p.Payload.(*protocol.Msg)
	src := p.Src
	cfg := e.m.Cfg
	switch msg.Type {
	case protocol.RdReq, protocol.WrReq:
		e.m.NICSchedule(node, cfg.DirLatency, func() { e.handleReq(node, msg) })
	case protocol.Fwd:
		e.m.NICSchedule(node, cfg.L2Latency, func() { e.handleFwd(node, msg) })
	case protocol.Inv:
		e.m.NICSchedule(node, cfg.L2Latency, func() { e.handleInv(node, msg) })
	case protocol.InvAck:
		e.handleInvAck(node, msg)
	case protocol.FwdDone:
		e.handleFwdDone(node, msg, src)
	case protocol.FwdMiss:
		e.handleFwdMiss(node, msg, src)
	case protocol.WbNotice:
		e.handleWbNotice(node, msg)
	case protocol.RdReply:
		e.m.NICSchedule(node, cfg.L2Latency, func() { e.handleRdReply(node, msg) })
	case protocol.WrReply:
		e.m.NICSchedule(node, cfg.L2Latency, func() { e.handleWrReply(node, msg) })
	default:
		panic("directory: unexpected message " + msg.Type.String())
	}
}

// handleReq runs at the home node after the directory access latency.
func (e *Engine) handleReq(home int, msg *protocol.Msg) {
	d := e.dirs[home]
	now := e.m.Kernel.Now()
	ep, ok := d.Lookup(msg.Addr)
	if ok && (ep.busy || ep.evicting) {
		ep.queue = append(ep.queue, msg)
		e.queued++
		return
	}
	if msg.Type == protocol.RdReq {
		switch {
		case ok && ep.modified:
			ep.busy = true
			e.m.Counters.Inc("dir.fwds", 1)
			e.m.Metrics.Add(metrics.CDirFwd, 1)
			e.m.Metrics.Event(now, metrics.EvDirFwd, int16(home), msg.Addr, int64(ep.owner))
			e.send(home, ep.owner, &protocol.Msg{Type: protocol.Fwd, Addr: msg.Addr, Requester: msg.Requester, Attempt: msg.Attempt}, now)
		case ok && ep.sharers != 0:
			ep.busy = true
			e.m.Counters.Inc("dir.fwds", 1)
			e.m.Metrics.Add(metrics.CDirFwd, 1)
			e.m.Metrics.Event(now, metrics.EvDirFwd, int16(home), msg.Addr, int64(firstSharer(ep.sharers)))
			e.send(home, firstSharer(ep.sharers), &protocol.Msg{Type: protocol.Fwd, Addr: msg.Addr, Requester: msg.Requester, Attempt: msg.Attempt}, now)
		default:
			if !ok {
				if ep = e.allocEntry(home, msg); ep == nil {
					return // parked
				}
			}
			e.serveFromHomeOrMemory(home, msg, ep)
		}
		return
	}
	// Write request.
	if !ok {
		if ep = e.allocEntry(home, msg); ep == nil {
			return
		}
	}
	targets := ep.sharers &^ bit(msg.Requester)
	if ep.modified && ep.owner != msg.Requester {
		targets |= bit(ep.owner)
	}
	if targets == 0 {
		e.grantWrite(home, msg, ep)
		return
	}
	ep.busy = true
	ep.pendingWr = msg
	ep.pendingAcks = popcount(targets)
	e.sendInvs(home, targets, msg.Addr, msg.Requester, now)
}

// sendInvs delivers an invalidation to every node in the targets bitset.
// Per-target invalidation metrics (CDirInval, the per-node events) are
// recorded identically on both paths — the protocol work is the same — but
// the network traffic differs: without multicast each target costs one
// unicast Inv packet; with Config.Multicast armed the whole round rides ONE
// destination-set packet the routers fork at fan-out points. The
// "dir.inv_packets" counter records injected invalidation packets, which is
// the quantity hardware multicast shrinks.
func (e *Engine) sendInvs(home int, targets uint64, addr uint64, requester int, now int64) {
	var set network.NodeSet
	for n := 0; n < e.m.Cfg.Nodes(); n++ {
		if targets&bit(n) != 0 {
			e.m.Metrics.Add(metrics.CDirInval, 1)
			e.m.Metrics.Event(now, metrics.EvDirInval, int16(home), addr, int64(n))
			set = set.Add(n)
		}
	}
	count := set.Count()
	if count == 0 {
		return
	}
	e.m.Counters.Inc("dir.invals", int64(count))
	if e.m.Cfg.Multicast && count > 1 {
		e.m.Counters.Inc("dir.inv_packets", 1)
		p := e.m.NewPacket(home, set.Min(), &protocol.Msg{Type: protocol.Inv, Addr: addr, Requester: requester})
		p.DstSet = set
		e.m.Mesh.Inject(home, p, now)
		return
	}
	e.m.Counters.Inc("dir.inv_packets", int64(count))
	set.ForEach(func(n int) {
		e.send(home, n, &protocol.Msg{Type: protocol.Inv, Addr: addr, Requester: requester}, now)
	})
}

// serveFromHomeOrMemory answers a read for a line with no cached copies:
// from the home node's L2 victim copy if present (invalidating it per
// sequential-consistency Requirement 2), else from main memory.
func (e *Engine) serveFromHomeOrMemory(home int, msg *protocol.Msg, ep *dirEntry) {
	cfg := e.m.Cfg
	ep.busy = true
	if cfg.VictimCaching {
		if _, present := e.m.PeekLine(home, msg.Addr); present {
			e.m.Counters.Inc("dir.victim_hits", 1)
			e.m.Kernel.Schedule(cfg.L2Latency, func() {
				now := e.m.Kernel.Now()
				line, ok := e.m.InvalidateLine(home, msg.Addr, now)
				if ok {
					e.m.Check.SampleRead(msg.Addr, line.Version, e.m.Mem.Peek(msg.Addr), msg.Requester, now)
					e.finishRead(home, msg, line.Version)
					return
				}
				// The victim vanished between peek and access
				// (concurrent eviction); fall back to memory.
				e.serveFromMemory(home, msg)
			})
			return
		}
	}
	e.serveFromMemory(home, msg)
}

func (e *Engine) serveFromMemory(home int, msg *protocol.Msg) {
	e.m.Counters.Inc("dir.mem_reads", 1)
	e.m.Kernel.Schedule(e.m.Cfg.MemLatency, func() {
		now := e.m.Kernel.Now()
		v := e.m.Mem.Read(msg.Addr)
		e.m.Check.SampleRead(msg.Addr, v, v, msg.Requester, now)
		e.finishRead(home, msg, v)
	})
}

// finishRead completes home-side read handling: record the requester as a
// sharer, release the entry and send the data.
func (e *Engine) finishRead(home int, msg *protocol.Msg, version uint64) {
	now := e.m.Kernel.Now()
	ep, ok := e.dirs[home].Lookup(msg.Addr)
	if !ok {
		// The entry was evicted while the data access was in flight;
		// reallocate (or retry later if the set is saturated).
		if ep = e.allocEntry(home, msg); ep == nil {
			return
		}
	}
	ep.sharers |= bit(msg.Requester)
	ep.busy = false
	reply := &protocol.Msg{Type: protocol.RdReply, Addr: msg.Addr, Requester: msg.Requester,
		Version: version, IssuedAt: msg.IssuedAt, DeadlockCycles: msg.DeadlockCycles,
		Attempt: msg.Attempt}
	e.send(home, msg.Requester, reply, now)
	e.drainQueue(home, msg.Addr, ep)
}

// grantWrite gives msg.Requester exclusive ownership. Requirement 3: any
// valid copy in the home's local L2 (the victim cache) is invalidated.
func (e *Engine) grantWrite(home int, msg *protocol.Msg, ep *dirEntry) {
	now := e.m.Kernel.Now()
	if home != msg.Requester {
		e.m.InvalidateLine(home, msg.Addr, now)
	}
	ep.sharers = bit(msg.Requester)
	ep.owner = msg.Requester
	ep.modified = true
	ep.busy = false
	ep.pendingWr = nil
	reply := &protocol.Msg{Type: protocol.WrReply, Addr: msg.Addr, Requester: msg.Requester,
		IssuedAt: msg.IssuedAt, DeadlockCycles: msg.DeadlockCycles, Attempt: msg.Attempt}
	e.send(home, msg.Requester, reply, now)
	e.drainQueue(home, msg.Addr, ep)
}

// handleFwd runs at a sharer/owner asked to supply data to msg.Requester.
func (e *Engine) handleFwd(node int, msg *protocol.Msg) {
	now := e.m.Kernel.Now()
	home := e.m.Cfg.Home(msg.Addr)
	line, ok := e.m.PeekLine(node, msg.Addr)
	if !ok {
		e.send(node, home, &protocol.Msg{Type: protocol.FwdMiss, Addr: msg.Addr, Requester: msg.Requester, Attempt: msg.Attempt}, now)
		return
	}
	if line.State == protocol.Modified {
		// Read of a dirty line writes it back (MSI M->S on read).
		e.m.Mem.Writeback(msg.Addr, line.Version)
		line.State = protocol.Shared
	}
	e.m.Check.SampleRead(msg.Addr, line.Version, e.m.Mem.Peek(msg.Addr), msg.Requester, now)
	e.send(node, msg.Requester, &protocol.Msg{Type: protocol.RdReply, Addr: msg.Addr,
		Requester: msg.Requester, Version: line.Version, IssuedAt: msg.IssuedAt,
		Attempt: msg.Attempt}, now)
	e.send(node, home, &protocol.Msg{Type: protocol.FwdDone, Addr: msg.Addr, Requester: msg.Requester}, now)
}

// handleFwdDone runs at home when a forwarded read was served by src.
func (e *Engine) handleFwdDone(home int, msg *protocol.Msg, src int) {
	ep, ok := e.dirs[home].Lookup(msg.Addr)
	if !ok {
		return
	}
	if ep.modified && ep.owner == src {
		ep.modified = false
	}
	ep.sharers |= bit(src) | bit(msg.Requester)
	ep.busy = false
	e.drainQueue(home, msg.Addr, ep)
}

// handleFwdMiss runs at home when the forwarded-to node had silently
// evicted the line: drop the stale sharer and retry the read.
func (e *Engine) handleFwdMiss(home int, msg *protocol.Msg, src int) {
	e.m.Counters.Inc("dir.fwd_misses", 1)
	ep, ok := e.dirs[home].Lookup(msg.Addr)
	if ok {
		ep.sharers &^= bit(src)
		if ep.modified && ep.owner == src {
			ep.modified = false
		}
		ep.busy = false
	}
	retry := &protocol.Msg{Type: protocol.RdReq, Addr: msg.Addr, Requester: msg.Requester, IssuedAt: msg.IssuedAt, DeadlockCycles: msg.DeadlockCycles, Attempt: msg.Attempt}
	e.handleReq(home, retry)
}

// handleInv runs at a sharer told to invalidate.
func (e *Engine) handleInv(node int, msg *protocol.Msg) {
	now := e.m.Kernel.Now()
	home := e.m.Cfg.Home(msg.Addr)
	ack := &protocol.Msg{Type: protocol.InvAck, Addr: msg.Addr, Requester: msg.Requester}
	if line, ok := e.m.InvalidateLine(node, msg.Addr, now); ok {
		ack.Version = line.Version
		ack.HasData = true
	} else if a, w, pend := e.m.OutstandingAddr(node); pend && a == msg.Addr && !w {
		// Invalidation raced the node's own in-flight read: use the
		// returning data once, do not cache it.
		e.pendingInval[node][msg.Addr] = true
	}
	e.send(node, home, ack, now)
}

// handleInvAck runs at home collecting invalidation acknowledgments for a
// write grant or a directory-entry eviction.
func (e *Engine) handleInvAck(home int, msg *protocol.Msg) {
	ep, ok := e.dirs[home].Lookup(msg.Addr)
	if !ok {
		return
	}
	if ep.pendingAcks > 0 {
		ep.pendingAcks--
	}
	if ep.evicting && msg.HasData && e.m.Cfg.VictimCaching {
		// Victim-cache the displaced data at the home node.
		e.m.InstallLine(home, msg.Addr, protocol.Shared, msg.Version, e.m.Kernel.Now())
	}
	if ep.pendingAcks > 0 {
		return
	}
	if ep.evicting {
		e.removeEntry(home, msg.Addr, ep)
		return
	}
	if ep.pendingWr != nil {
		e.grantWrite(home, ep.pendingWr, ep)
	}
}

// handleWbNotice runs at home when an owner evicted its dirty line.
func (e *Engine) handleWbNotice(home int, msg *protocol.Msg) {
	ep, ok := e.dirs[home].Lookup(msg.Addr)
	if !ok {
		return
	}
	if ep.modified && ep.owner == msg.Requester {
		ep.modified = false
		ep.sharers &^= bit(msg.Requester)
		if e.m.Cfg.VictimCaching && !ep.busy && !ep.evicting {
			e.m.InstallLine(home, msg.Addr, protocol.Shared, msg.Version, e.m.Kernel.Now())
		}
	}
}

// handleRdReply completes a read at the requester.
func (e *Engine) handleRdReply(node int, msg *protocol.Msg) {
	if e.m.DropStaleReply(node, msg) {
		return // reply of an abandoned reissue epoch; the live one completes
	}
	now := e.m.Kernel.Now()
	if e.pendingInval[node][msg.Addr] {
		delete(e.pendingInval[node], msg.Addr)
		e.m.Check.ObserveRead(msg.Addr, msg.Version, node, now, false)
	} else {
		e.m.InstallLine(node, msg.Addr, protocol.Shared, msg.Version, now)
		e.m.Check.ObserveRead(msg.Addr, msg.Version, node, now, false)
	}
	e.m.CompleteAccess(node, false, now, msg.DeadlockCycles)
}

// handleWrReply completes a write at the requester: the write serializes
// here, after all invalidations were acknowledged.
func (e *Engine) handleWrReply(node int, msg *protocol.Msg) {
	if e.m.DropStaleReply(node, msg) {
		return // must not CommitWrite twice: each access commits exactly once
	}
	now := e.m.Kernel.Now()
	delete(e.pendingInval[node], msg.Addr)
	v := e.m.Check.CommitWrite(msg.Addr, node, now)
	e.m.InstallLine(node, msg.Addr, protocol.Modified, v, now)
	e.m.CompleteAccess(node, true, now, msg.DeadlockCycles)
}

// allocEntry allocates a directory entry for msg.Addr at home, evicting the
// LRU non-busy entry of the set if necessary (invalidating its sharers
// first). It returns nil if msg had to be parked until a way frees.
func (e *Engine) allocEntry(home int, msg *protocol.Msg) *dirEntry {
	d := e.dirs[home]
	if ep, ok := d.InsertNoEvict(msg.Addr); ok {
		return ep
	}
	now := e.m.Kernel.Now()
	vaddr, vep, ok := d.LRUVictim(msg.Addr, func(_ uint64, v *dirEntry) bool {
		return !v.busy && !v.evicting
	})
	if !ok {
		// Every way is mid-transaction; transactions always settle, so
		// poll again shortly.
		e.queued++
		e.m.Kernel.Schedule(8, func() {
			e.queued--
			e.handleReq(home, msg)
		})
		return nil
	}
	e.m.Counters.Inc("dir.evictions", 1)
	vep.evicting = true
	targets := vep.sharers
	if vep.modified {
		targets |= bit(vep.owner)
	}
	if targets == 0 {
		e.removeEntry(home, vaddr, vep)
		if ep, ok := d.InsertNoEvict(msg.Addr); ok {
			return ep
		}
		// Defensive: the freed way was taken out from under us; retry.
		e.queued++
		e.m.Kernel.Schedule(2, func() {
			e.queued--
			e.handleReq(home, msg)
		})
		return nil
	}
	vep.pendingAcks = popcount(targets)
	e.sendInvs(home, targets, vaddr, 0, now)
	e.parked[home] = append(e.parked[home], msg)
	e.queued++
	return nil
}

// removeEntry deletes a directory entry, re-dispatches requests serialized
// on it and retries parked allocations.
func (e *Engine) removeEntry(home int, addr uint64, ep *dirEntry) {
	waiters := ep.queue
	ep.queue = nil
	e.dirs[home].Invalidate(addr)
	for _, w := range waiters {
		w := w
		e.queued--
		e.m.Kernel.Schedule(1, func() { e.handleReq(home, w) })
	}
	if len(e.parked[home]) > 0 {
		parked := e.parked[home]
		e.parked[home] = nil
		for _, pmsg := range parked {
			pmsg := pmsg
			e.queued--
			e.m.Kernel.Schedule(1, func() { e.handleReq(home, pmsg) })
		}
	}
}

// drainQueue re-dispatches requests that serialized behind a busy entry.
func (e *Engine) drainQueue(home int, addr uint64, ep *dirEntry) {
	if len(ep.queue) == 0 {
		return
	}
	waiters := ep.queue
	ep.queue = nil
	for _, w := range waiters {
		w := w
		e.queued--
		e.m.Kernel.Schedule(1, func() { e.handleReq(home, w) })
	}
}

// OnL2Evict implements protocol.Engine: dirty owners notify home (the
// machine already wrote the data back); Shared lines evict silently.
func (e *Engine) OnL2Evict(node int, addr uint64, line protocol.DataLine, now int64) {
	if line.State != protocol.Modified {
		return
	}
	home := e.m.Cfg.Home(addr)
	e.send(node, home, &protocol.Msg{Type: protocol.WbNotice, Addr: addr, Requester: node, Version: line.Version}, now)
}

// Quiesced implements protocol.Engine.
func (e *Engine) Quiesced() bool { return e.queued == 0 }

// MetricsGauges implements metrics.GaugeSource: total live directory entries
// across all homes, and the queued/parked request backlog.
func (e *Engine) MetricsGauges() (occupancy, queueDepth int) {
	for _, d := range e.dirs {
		occupancy += d.Len()
	}
	return occupancy, e.queued
}

func firstSharer(set uint64) int {
	for n := 0; n < 64; n++ {
		if set&bit(n) != 0 {
			return n
		}
	}
	return -1
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
