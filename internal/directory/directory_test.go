package directory

import (
	"testing"

	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// runTrace builds a machine + baseline engine for tr and runs to
// quiescence, failing the test on stuck state or verification violations.
func runTrace(t *testing.T, cfg protocol.Config, tr *trace.Trace, think int64) (*protocol.Machine, *Engine) {
	t.Helper()
	m, err := protocol.NewMachine(cfg, tr, think)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	return m, e
}

func smallConfig() protocol.Config {
	cfg := protocol.DefaultConfig()
	cfg.Topology = network.MeshSpec(4, 4)
	return cfg
}

// handTrace builds a trace with the given per-node access scripts on a
// 16-node system.
func handTrace(scripts map[int][]trace.Access) *trace.Trace {
	tr := &trace.Trace{Name: "hand", PerNode: make([][]trace.Access, 16)}
	for n, s := range scripts {
		tr.PerNode[n] = s
	}
	return tr
}

func TestSingleReadFromMemory(t *testing.T) {
	tr := handTrace(map[int][]trace.Access{3: {{Addr: 0x40, Write: false}}})
	m, _ := runTrace(t, smallConfig(), tr, 5)
	if m.Lat.Read.N != 1 {
		t.Fatalf("read count %d, want 1", m.Lat.Read.N)
	}
	// The read must pay at least the 200-cycle memory latency.
	if m.Lat.Read.Mean() < 200 {
		t.Fatalf("memory read latency %.0f < 200", m.Lat.Read.Mean())
	}
	if line, ok := m.PeekLine(3, 0x40); !ok || line.State != protocol.Shared {
		t.Fatal("read did not install a Shared line")
	}
}

func TestSingleWriteGrant(t *testing.T) {
	tr := handTrace(map[int][]trace.Access{2: {{Addr: 0x41, Write: true}}})
	m, _ := runTrace(t, smallConfig(), tr, 5)
	if m.Lat.Write.N != 1 {
		t.Fatalf("write count %d, want 1", m.Lat.Write.N)
	}
	// Writes never touch memory in this protocol: far cheaper than 200.
	if m.Lat.Write.Mean() >= 200 {
		t.Fatalf("write latency %.0f paid a memory access", m.Lat.Write.Mean())
	}
	if line, ok := m.PeekLine(2, 0x41); !ok || line.State != protocol.Modified {
		t.Fatal("write did not install a Modified line")
	}
	if m.Check.CurrentVersion(0x41) != 1 {
		t.Fatal("write did not commit version 1")
	}
}

func TestReadAfterRemoteWriteSeesNewVersion(t *testing.T) {
	// Node 1 writes, then node 2 reads the same line. The trace driver
	// interleaves them; whichever order the home serializes, the final
	// state must be coherent and the verifier quiet (runTrace checks).
	tr := handTrace(map[int][]trace.Access{
		1: {{Addr: 0x80, Write: true}},
		2: {{Addr: 0x80, Write: false}, {Addr: 0x80, Write: false}},
	})
	m, _ := runTrace(t, smallConfig(), tr, 3)
	if m.Check.CurrentVersion(0x80) != 1 {
		t.Fatalf("version %d, want 1", m.Check.CurrentVersion(0x80))
	}
	// The second read by node 2 must have been a local hit.
	if m.LocalHits < 1 {
		t.Fatal("repeat read did not hit locally")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	// Several nodes read a line; then one writes it. After quiescence
	// only the writer holds a copy.
	tr := handTrace(map[int][]trace.Access{
		4: {{Addr: 0x100, Write: false}, {Addr: 0x200, Write: false}, {Addr: 0x100, Write: true}},
		5: {{Addr: 0x100, Write: false}},
		6: {{Addr: 0x100, Write: false}},
	})
	m, _ := runTrace(t, smallConfig(), tr, 3)
	copies := m.Check.Copies(0x100)
	if len(copies) != 1 || copies[0] != 4 {
		t.Fatalf("copies after write: %v, want [4]", copies)
	}
	if line, ok := m.PeekLine(4, 0x100); !ok || line.State != protocol.Modified {
		t.Fatal("writer does not hold Modified line")
	}
}

func TestThreeHopReadFromOwner(t *testing.T) {
	// Node 0 writes a line (becomes owner); node 15 then reads it and
	// must receive the owner's version; the owner downgrades to Shared
	// and memory receives the writeback.
	tr := handTrace(map[int][]trace.Access{
		0:  {{Addr: 0x300, Write: true}},
		15: {{Addr: 0x300, Write: false}, {Addr: 0x300, Write: false}, {Addr: 0x300, Write: false}},
	})
	m, _ := runTrace(t, smallConfig(), tr, 2)
	if v := m.Mem.Peek(0x300); v != 1 {
		t.Fatalf("memory version %d after M->S read, want 1", v)
	}
	if line, ok := m.PeekLine(0, 0x300); ok && line.State == protocol.Modified {
		t.Fatal("owner still Modified after remote read")
	}
}

func TestDirectoryEvictionInvalidatesSharers(t *testing.T) {
	// A tiny directory forces entry evictions, which must invalidate
	// the displaced line's sharers before the way is reused.
	cfg := smallConfig()
	cfg.DirEntries, cfg.DirWays = 16, 1
	var accs []trace.Access
	for a := 0; a < 200; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a * 16), Write: a%4 == 0})
	}
	tr := handTrace(map[int][]trace.Access{7: accs, 9: accs})
	m, e := runTrace(t, cfg, tr, 2)
	if m.Counters.Get("dir.evictions") == 0 {
		t.Fatal("tiny directory produced no evictions")
	}
	_ = e
}

func TestVictimCacheServesSecondRead(t *testing.T) {
	// With victim caching, after a directory eviction the home's L2 can
	// serve a re-read without paying the 200-cycle memory latency.
	cfg := smallConfig()
	cfg.DirEntries, cfg.DirWays = 16, 1
	var accs []trace.Access
	for a := 0; a < 100; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a * 16), Write: true})
	}
	// Revisit the early lines.
	for a := 0; a < 20; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a * 16), Write: false})
	}
	tr := handTrace(map[int][]trace.Access{1: accs})
	m, _ := runTrace(t, cfg, tr, 2)
	if m.Counters.Get("dir.victim_hits") == 0 {
		t.Fatal("victim cache never hit")
	}
}

func TestVictimCachingOffGoesToMemory(t *testing.T) {
	cfg := smallConfig()
	cfg.DirEntries, cfg.DirWays = 16, 1
	cfg.VictimCaching = false
	var accs []trace.Access
	for a := 0; a < 100; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a * 16), Write: true})
	}
	for a := 0; a < 20; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a * 16), Write: false})
	}
	tr := handTrace(map[int][]trace.Access{1: accs})
	m, _ := runTrace(t, cfg, tr, 2)
	if m.Counters.Get("dir.victim_hits") != 0 {
		t.Fatal("victim cache hit while disabled")
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	// All 16 nodes hammer the same line with writes; the verifier's
	// single-writer check (inside runTrace) must stay quiet and all
	// versions must be distinct: final version == total writes.
	scripts := map[int][]trace.Access{}
	for n := 0; n < 16; n++ {
		scripts[n] = []trace.Access{
			{Addr: 0x500, Write: true},
			{Addr: 0x500, Write: true},
		}
	}
	tr := handTrace(scripts)
	m, _ := runTrace(t, smallConfig(), tr, 2)
	// Local write hits (writer still owns the line on its second write)
	// also commit, so total committed writes is exactly 32.
	if got := m.Check.CurrentVersion(0x500); got != 32 {
		t.Fatalf("final version %d, want 32", got)
	}
}

func TestMixedSyntheticBenchmarkRunsClean(t *testing.T) {
	p, _ := trace.ProfileByName("fft")
	tr := trace.Generate(p, 16, 300, 7)
	m, _ := runTrace(t, smallConfig(), tr, p.Think)
	if m.Lat.Read.N == 0 || m.Lat.Write.N == 0 {
		t.Fatalf("expected both reads and writes, got %d/%d", m.Lat.Read.N, m.Lat.Write.N)
	}
}

func TestSmallL2CausesEvictions(t *testing.T) {
	cfg := smallConfig()
	cfg.L2Entries, cfg.L2Ways = 64, 2
	p, _ := trace.ProfileByName("rad")
	tr := trace.Generate(p, 16, 400, 11)
	m, _ := runTrace(t, cfg, tr, p.Think)
	if m.Counters.Get("l2.evictions") == 0 {
		t.Fatal("tiny L2 produced no evictions")
	}
}

func TestHopRecorderIdealNeverExceedsBase(t *testing.T) {
	p, _ := trace.ProfileByName("wsp")
	tr := trace.Generate(p, 16, 200, 13)
	cfg := smallConfig()
	m, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	n := 0
	e.HopRecorder = func(write bool, base, ideal int) {
		n++
		if ideal > base {
			t.Fatalf("ideal hops %d exceed baseline %d (write=%v)", ideal, base, write)
		}
		if base < 0 || ideal < 0 {
			t.Fatalf("negative hop count %d/%d", base, ideal)
		}
	}
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("hop recorder never invoked")
	}
}

func TestQuiescedAfterRun(t *testing.T) {
	p, _ := trace.ProfileByName("lu")
	tr := trace.Generate(p, 16, 100, 17)
	m, e := runTrace(t, smallConfig(), tr, p.Think)
	if !e.Quiesced() || m.Mesh.InFlight != 0 {
		t.Fatal("engine not quiesced after Run")
	}
}

func Test64NodeRunsClean(t *testing.T) {
	cfg := smallConfig()
	cfg.Topology = network.MeshSpec(8, 8)
	p, _ := trace.ProfileByName("bar")
	tr := trace.Generate(p, 64, 80, 19)
	m, _ := runTrace(t, cfg, tr, p.Think)
	if m.Lat.Read.N == 0 {
		t.Fatal("no reads completed on 64 nodes")
	}
}
