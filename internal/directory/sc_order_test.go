package directory

import (
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/verify"
)

// TestSequentialConsistencyTotalOrder mirrors the in-network protocol's
// end-to-end SC total-order validation for the baseline directory protocol.
func TestSequentialConsistencyTotalOrder(t *testing.T) {
	p, _ := trace.ProfileByName("wsp")
	tr := trace.Generate(p, 16, 400, 23)
	cfg := protocol.DefaultConfig()
	cfg.DirEntries, cfg.DirWays = 256, 2
	m, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		t.Fatal(err)
	}
	m.Check = verify.New(true)
	New(m)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if errs := m.Check.CheckOrderSC(); len(errs) > 0 {
		t.Fatalf("%d total-order violations, first: %s", len(errs), errs[0])
	}
	t.Logf("total order validated over %d accesses", len(m.Check.Order()))
}
