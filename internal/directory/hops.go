package directory

// recordHops feeds the Section 1 hop-count characterization: for each
// coherence access at issue time it computes the baseline protocol's hop
// count and the oracle-ideal hop count given perfect knowledge of where the
// closest valid copy lives.
//
// Baseline reads: requester -> home -> first sharer (if any) -> requester;
// otherwise a requester/home round trip. Ideal reads: a round trip to the
// closest node holding a valid copy at issue time, or the baseline count
// when no copy exists.
//
// Baseline writes: a requester/home round trip plus a home/furthest-sharer
// invalidation round trip. Ideal writes assume the furthest sharer's
// invalidation starts at issue: if that sharer is farther from home than
// the requester, the grant waits for its acknowledgment
// (furthest->home then home->requester); otherwise just the
// requester/home round trip.
func (e *Engine) recordHops(node int, addr uint64, write bool) {
	topo := e.m.Mesh.Topo
	home := e.m.Cfg.Home(addr)
	dReqHome := topo.Dist(node, home)
	ep, ok := e.dirs[home].Peek(addr)

	if !write {
		base := 2 * dReqHome
		if ok {
			holder := -1
			if ep.modified {
				holder = ep.owner
			} else if ep.sharers != 0 {
				holder = firstSharer(ep.sharers)
			}
			if holder >= 0 {
				base = dReqHome + topo.Dist(home, holder) + topo.Dist(holder, node)
			}
		}
		ideal := base
		if copies := e.m.Check.Copies(addr); len(copies) > 0 {
			best := -1
			for _, c := range copies {
				if c == node {
					continue
				}
				if d := topo.Dist(node, c); best < 0 || d < best {
					best = d
				}
			}
			if best >= 0 && 2*best < ideal {
				ideal = 2 * best
			}
		}
		e.HopRecorder(false, base, ideal)
		return
	}

	furthest := 0
	if ok {
		set := ep.sharers
		if ep.modified {
			set |= bit(ep.owner)
		}
		set &^= bit(node)
		for n := 0; n < e.m.Cfg.Nodes(); n++ {
			if set&bit(n) != 0 {
				if d := topo.Dist(home, n); d > furthest {
					furthest = d
				}
			}
		}
	}
	base := 2*dReqHome + 2*furthest
	ideal := 2 * dReqHome
	if furthest > dReqHome {
		ideal = furthest + dReqHome
	}
	e.HopRecorder(true, base, ideal)
}
