package directory

import (
	"sort"

	"innetcc/internal/protocol"
	"innetcc/internal/sim"
)

// DigestState implements protocol.StateDigester: it folds every home node's
// directory cache contents, pending-invalidation marks and parked request
// queues into the machine state digest. Maps are folded in sorted key order
// so the digest is independent of Go's map iteration order.
func (e *Engine) DigestState(d *sim.Digest) {
	d.Int(e.queued)
	for node, dir := range e.dirs {
		d.Int(dir.Len())
		dir.ScanAll(func(addr uint64, en *dirEntry) bool {
			d.U64(addr)
			d.U64(en.sharers)
			d.Int(en.owner)
			d.Bool(en.modified)
			d.Bool(en.busy)
			d.Bool(en.evicting)
			d.Int(en.pendingAcks)
			d.Bool(en.pendingWr != nil)
			if en.pendingWr != nil {
				protocol.DigestMsg(d, en.pendingWr)
			}
			d.Int(len(en.queue))
			for _, msg := range en.queue {
				protocol.DigestMsg(d, msg)
			}
			return true
		})

		pi := e.pendingInval[node]
		addrs := make([]uint64, 0, len(pi))
		for a, on := range pi {
			if on {
				addrs = append(addrs, a)
			}
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		d.Int(len(addrs))
		for _, a := range addrs {
			d.U64(a)
		}

		d.Int(len(e.parked[node]))
		for _, msg := range e.parked[node] {
			protocol.DigestMsg(d, msg)
		}
	}
}
