// Package verify implements the paper's runtime verification (Section 2.4):
// every simulation run is continuously checked for coherence and the
// conditions that imply sequential consistency under the protocols'
// one-outstanding-request rule.
//
// The simulator moves version numbers instead of data: each system-wide
// write to a line produces the next version, so "the value read" is the
// version the reply carried. Three checks run:
//
//  1. Read sampling (the paper's "check the value being written to the data
//     cache against the value held in main memory"): at the moment a read
//     reply is generated from a data source, the sampled version must equal
//     main memory's current version for the line.
//  2. Single-writer invariant: when a write commits, no node other than the
//     writer may hold a valid cached copy. This is the MSI invariant whose
//     violation produces stale (orphaned) copies.
//  3. Per-node observation monotonicity (the paper's program-order /
//     total-order embedding): once a node has observed version v of a line,
//     it must never observe an older version of that line.
package verify

import (
	"fmt"
	"sync"
)

// Checker accumulates protocol-visible events and records violations.
// Engines are required to report every data-cache line validation and
// invalidation so the copy registry is exact.
//
// The mutex guards every map and list: checks fire from the sharded route
// phase (sharer-serve read sampling, teardown copy invalidation) as well as
// from the serial event phase. Each check is keyed by line address and the
// protocol serializes conflicting accesses to a line, so same-cycle checks
// from different shards touch different lines and locking order never
// affects results.
type Checker struct {
	mu        sync.Mutex
	version   map[uint64]uint64       // committed version per line
	copies    map[uint64]map[int]bool // valid cached copies per line
	seen      map[nodeAddr]uint64     // last version observed per (node,line)
	order     []AccessRecord          // total order of committed accesses
	keepOrder bool

	violations []string

	// Reads and Writes count committed accesses (guarded by mu).
	Reads, Writes int64
}

type nodeAddr struct {
	node int
	addr uint64
}

// AccessRecord is one entry of the runtime total order.
type AccessRecord struct {
	Node    int
	Addr    uint64
	Write   bool
	Version uint64
	At      int64
}

// New returns an empty checker. If keepOrder is true the full total order
// is retained (tests inspect it); experiment runs pass false to bound
// memory.
func New(keepOrder bool) *Checker {
	return &Checker{
		version:   make(map[uint64]uint64),
		copies:    make(map[uint64]map[int]bool),
		seen:      make(map[nodeAddr]uint64),
		keepOrder: keepOrder,
	}
}

func (c *Checker) fail(format string, args ...interface{}) {
	if len(c.violations) < 100 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns all recorded violations.
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violations
}

// Order returns the retained total order (empty unless keepOrder).
func (c *Checker) Order() []AccessRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order
}

// CurrentVersion returns the last committed version of addr.
func (c *Checker) CurrentVersion(addr uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version[addr]
}

// VersionSnapshot returns a copy of the committed-version map: every line
// ever written, with its final committed version. Because each write access
// commits exactly once, the snapshot is a pure function of the access trace
// and must be identical across coherence engines run over the same trace.
func (c *Checker) VersionSnapshot() map[uint64]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]uint64, len(c.version))
	for a, v := range c.version {
		out[a] = v
	}
	return out
}

// RegisterCopy records that node now holds a valid cached copy of addr.
func (c *Checker) RegisterCopy(addr uint64, node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.copies[addr]
	if m == nil {
		m = make(map[int]bool)
		c.copies[addr] = m
	}
	m[node] = true
}

// UnregisterCopy records that node's cached copy of addr is gone.
func (c *Checker) UnregisterCopy(addr uint64, node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.copies[addr]; m != nil {
		delete(m, node)
	}
}

// Copies returns the nodes currently holding valid copies of addr.
func (c *Checker) Copies(addr uint64) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for n := range c.copies[addr] {
		out = append(out, n)
	}
	return out
}

// CommitWrite serializes a write by node to addr at cycle now, checks the
// single-writer invariant, and returns the new version the writer's line
// must carry.
func (c *Checker) CommitWrite(addr uint64, node int, now int64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for other := range c.copies[addr] {
		if other != node {
			c.fail("write commit to %#x by node %d while node %d holds a valid copy (cycle %d)", addr, node, other, now)
		}
	}
	c.version[addr]++
	v := c.version[addr]
	c.Writes++
	kv := nodeAddr{node, addr}
	c.seen[kv] = v
	if c.keepOrder {
		c.order = append(c.order, AccessRecord{Node: node, Addr: addr, Write: true, Version: v, At: now})
	}
	return v
}

// SampleRead serializes a read at the moment its reply is generated from a
// data source — the paper defines a read access "as occurring when a value
// is read from main memory or from an existing tree". It checks the sampled
// version against main memory's version at that moment (the paper's runtime
// coherence check) and appends the read to the total order. sampled is the
// version the reply will carry, memVersion main memory's current value.
func (c *Checker) SampleRead(addr uint64, sampled, memVersion uint64, node int, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sampled != memVersion {
		c.fail("read of %#x for node %d sampled version %d but memory holds %d (cycle %d)", addr, node, sampled, memVersion, now)
	}
	c.Reads++
	if c.keepOrder {
		c.order = append(c.order, AccessRecord{Node: node, Addr: addr, Write: false, Version: sampled, At: now})
	}
}

// ObserveRead records that node's read of addr returned version v, either
// at reply delivery or on a local cache hit, and checks per-node
// monotonicity: a node must never observe an older version after a newer
// one. When local is true the read was served by the node's own valid
// cached copy, which under the MSI invariant must hold the globally current
// version, so staleness is checked strictly.
func (c *Checker) ObserveRead(addr uint64, v uint64, node int, now int64, local bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kv := nodeAddr{node, addr}
	if last, ok := c.seen[kv]; ok && v < last {
		c.fail("node %d observed version %d of %#x after having observed %d (cycle %d)", node, v, addr, last, now)
	}
	c.seen[kv] = v
	if local {
		if cur := c.version[addr]; v != cur {
			c.fail("node %d local copy of %#x holds version %d but committed version is %d (cycle %d)", node, addr, v, cur, now)
		}
		c.Reads++
		if c.keepOrder {
			c.order = append(c.order, AccessRecord{Node: node, Addr: addr, Write: false, Version: v, At: now})
		}
	}
}

// CheckOrderSC validates the retained total order: for every line, read
// versions must be non-decreasing between consecutive writes and every read
// must return the version of the most recent preceding write in the order.
// It returns the violations found (the order must have been retained).
func (c *Checker) CheckOrderSC() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	cur := map[uint64]uint64{}
	for i, r := range c.order {
		if r.Write {
			if r.Version != cur[r.Addr]+1 {
				out = append(out, fmt.Sprintf("order[%d]: write version %d of %#x does not follow %d", i, r.Version, r.Addr, cur[r.Addr]))
			}
			cur[r.Addr] = r.Version
		} else if r.Version != cur[r.Addr] {
			out = append(out, fmt.Sprintf("order[%d]: read of %#x returned %d, current is %d", i, r.Addr, r.Version, cur[r.Addr]))
		}
	}
	return out
}
