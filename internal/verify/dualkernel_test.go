package verify_test

import (
	"reflect"
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
	"innetcc/internal/verify"
)

// runKernelMode runs one engine over one profile with the active-set
// kernel optimization on (alwaysTick=false) or off, returning the machine
// for result comparison.
func runKernelMode(t *testing.T, kind protocol.EngineKind, p trace.Profile, alwaysTick bool) *protocol.Machine {
	t.Helper()
	cfg := protocol.DefaultConfig()
	cfg.Seed = 42
	m, err := protocol.Build(protocol.Spec{
		Config:     cfg,
		Trace:      trace.Generate(p, cfg.Nodes(), 120, cfg.Seed),
		Think:      p.Think,
		Engine:     kind,
		AlwaysTick: alwaysTick,
	})
	if err != nil {
		t.Fatalf("%s/%s: Build: %v", kind, p.Name, err)
	}
	m.ReadSamples = &stats.Sampler{}
	m.WriteSamples = &stats.Sampler{}
	if err := m.Run(20_000_000); err != nil {
		t.Fatalf("%s/%s: run: %v", kind, p.Name, err)
	}
	return m
}

// TestActiveSetKernelByteIdentical is the dual-kernel equivalence proof:
// the same spec run under the exhaustive always-tick kernel and under the
// active-set (park/wake + idle fast-forward) kernel must agree exactly —
// same quiescence cycle, same per-access latency sequences, same counters,
// same coherence end state. Parking is only legal for a component whose
// tick would have been a no-op, so any divergence here is a park/wake bug.
func TestActiveSetKernelByteIdentical(t *testing.T) {
	profiles := []string{"bar", "wsp", "fft"}
	for _, kind := range protocol.EngineKinds() {
		for _, name := range profiles {
			kind, name := kind, name
			t.Run(kind.String()+"/"+name, func(t *testing.T) {
				t.Parallel()
				p, err := trace.ProfileByName(name)
				if err != nil {
					t.Fatal(err)
				}
				active := runKernelMode(t, kind, p, false)
				exhaustive := runKernelMode(t, kind, p, true)

				if a, e := active.Kernel.Now(), exhaustive.Kernel.Now(); a != e {
					t.Errorf("quiescence cycle diverged: active-set %d, always-tick %d", a, e)
				}
				if !reflect.DeepEqual(active.Lat, exhaustive.Lat) {
					t.Errorf("latency accumulators diverged:\n active-set: %+v\n always-tick: %+v",
						active.Lat, exhaustive.Lat)
				}
				if !reflect.DeepEqual(active.ReadSamples, exhaustive.ReadSamples) {
					t.Error("read latency distributions diverged")
				}
				if !reflect.DeepEqual(active.WriteSamples, exhaustive.WriteSamples) {
					t.Error("write latency distributions diverged")
				}
				if a, e := active.LocalHits, exhaustive.LocalHits; a != e {
					t.Errorf("local hits diverged: %d vs %d", a, e)
				}
				if !reflect.DeepEqual(active.HomeCounts, exhaustive.HomeCounts) {
					t.Error("home-node access counts diverged")
				}
				for _, n := range exhaustive.Counters.Names() {
					if a, e := active.Counters.Get(n), exhaustive.Counters.Get(n); a != e {
						t.Errorf("counter %s diverged: %d vs %d", n, a, e)
					}
				}
				label := kind.String() + "/" + name
				as, es := active.EndState(label), exhaustive.EndState(label)
				for _, d := range verify.Equivalent(as, es) {
					t.Error(d)
				}
				if !reflect.DeepEqual(as, es) {
					t.Error("end states not deep-equal (copy sets diverged)")
				}
			})
		}
	}
}
