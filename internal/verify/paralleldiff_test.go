package verify_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"innetcc/internal/fault"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/sim"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
	"innetcc/internal/verify"

	_ "innetcc/internal/directory"
	_ "innetcc/internal/treecc"
)

// runSharded runs one engine over one profile with the given shard count,
// optionally under a seeded drop-fault plan with retry recovery armed, and
// returns the machine for exact result comparison.
func runSharded(t *testing.T, kind protocol.EngineKind, p trace.Profile, shards int, faulty bool) *protocol.Machine {
	t.Helper()
	const accesses, seed = 100, 42
	cfg := protocol.DefaultConfig()
	cfg.Seed = seed
	spec := protocol.Spec{
		Think:  p.Think,
		Engine: kind,
		Shards: shards,
	}
	if faulty {
		fs, err := fault.ParseSpec("drop=2500,timeout=200000,retries=6,backoff=64,probe=2000")
		if err != nil {
			t.Fatal(err)
		}
		cfg.RetryTimeout = fs.Timeout
		cfg.RetryBudget = fs.Budget
		cfg.RetryBackoff = fs.Backoff
		cfg.ProbeInterval = fs.Probe
		spec.Faults = &fault.Plan{Spec: fs, Seed: seed + uint64(kind)}
	}
	spec.Config = cfg
	spec.Trace = trace.Generate(p, cfg.Nodes(), accesses, seed)
	m, err := protocol.Build(spec)
	if err != nil {
		t.Fatalf("%s/%s shards=%d: Build: %v", kind, p.Name, shards, err)
	}
	m.ReadSamples = &stats.Sampler{}
	m.WriteSamples = &stats.Sampler{}
	if err := m.Run(40_000_000); err != nil {
		t.Fatalf("%s/%s shards=%d: run: %v", kind, p.Name, shards, err)
	}
	if v := m.Check.Violations(); len(v) > 0 {
		t.Fatalf("%s/%s shards=%d: runtime violations: %v", kind, p.Name, shards, v)
	}
	return m
}

// requireIdentical asserts that a sharded run reproduced the serial run's
// results exactly: same quiescence cycle, same per-access latency sequences,
// same counters, same coherence end state.
func requireIdentical(t *testing.T, label string, serial, sharded *protocol.Machine) {
	t.Helper()
	if a, e := sharded.Kernel.Now(), serial.Kernel.Now(); a != e {
		t.Errorf("%s: quiescence cycle diverged: sharded %d, serial %d", label, a, e)
	}
	if !reflect.DeepEqual(sharded.Lat, serial.Lat) {
		t.Errorf("%s: latency accumulators diverged:\n sharded: %+v\n serial: %+v",
			label, sharded.Lat, serial.Lat)
	}
	if !reflect.DeepEqual(sharded.ReadSamples, serial.ReadSamples) {
		t.Errorf("%s: read latency distributions diverged", label)
	}
	if !reflect.DeepEqual(sharded.WriteSamples, serial.WriteSamples) {
		t.Errorf("%s: write latency distributions diverged", label)
	}
	if a, e := sharded.LocalHits, serial.LocalHits; a != e {
		t.Errorf("%s: local hits diverged: %d vs %d", label, a, e)
	}
	if !reflect.DeepEqual(sharded.HomeCounts, serial.HomeCounts) {
		t.Errorf("%s: home-node access counts diverged", label)
	}
	for _, n := range serial.Counters.Names() {
		if a, e := sharded.Counters.Get(n), serial.Counters.Get(n); a != e {
			t.Errorf("%s: counter %s diverged: %d vs %d", label, n, a, e)
		}
	}
	ss, es := sharded.EndState(label+"/sharded"), serial.EndState(label+"/serial")
	for _, d := range verify.Equivalent(ss, es) {
		t.Error(d)
	}
	if a, e := len(ss.Copies), len(es.Copies); a != e {
		t.Errorf("%s: copy-set sizes diverged: %d vs %d", label, a, e)
	}
}

// shardVariants returns the non-serial shard counts to test: 2 (the minimal
// parallel split), 4 and 8 (interior splits, 8 exceeding the default mesh's
// row count), the host's CPU count, and 0 (automatic selection — AutoShards
// plus the occupancy-driven width tuner), deduplicated.
func shardVariants() []int {
	variants := []int{2, 4, 8, runtime.NumCPU()}
	seen := map[int]bool{1: true}
	out := []int{0} // auto: exercises the tuner's width changes mid-run
	for _, s := range variants {
		if s > 1 && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// runAutoTopo is runSharded on a 64-node mesh — large enough that
// sim.AutoShards picks a parallel split when cores allow — returning the
// finished machine.
func runAutoTopo(t *testing.T, shards int) *protocol.Machine {
	t.Helper()
	const accesses, seed = 60, 42
	cfg := protocol.DefaultConfig()
	cfg.Seed = seed
	cfg.Topology = network.MeshSpec(8, 8)
	p := trace.Benchmarks()[0]
	spec := protocol.Spec{
		Think:  p.Think,
		Engine: protocol.KindTree,
		Shards: shards,
		Config: cfg,
	}
	spec.Trace = trace.Generate(p, cfg.Nodes(), accesses, seed)
	m, err := protocol.Build(spec)
	if err != nil {
		t.Fatalf("shards=%d: Build: %v", shards, err)
	}
	m.ReadSamples = &stats.Sampler{}
	m.WriteSamples = &stats.Sampler{}
	if err := m.Run(40_000_000); err != nil {
		t.Fatalf("shards=%d: run: %v", shards, err)
	}
	return m
}

// TestAutoShardsDeterministic pins the Shards:0 contract: automatic shard
// selection — including the occupancy tuner changing the parallelism width
// mid-run — produces results and a state digest byte-identical to both the
// explicit best shard count and the serial run. GOMAXPROCS is raised so
// AutoShards picks a parallel split even on single-core hosts.
func TestAutoShardsDeterministic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	serial := runAutoTopo(t, 1)
	if serial.Lat.Read.N+serial.Lat.Write.N == 0 {
		t.Fatal("serial run completed no accesses; differential is vacuous")
	}
	auto := runAutoTopo(t, 0)
	best := runAutoTopo(t, sim.AutoShards(serial.Cfg.Nodes()))
	requireIdentical(t, "auto-vs-serial", serial, auto)
	requireIdentical(t, "auto-vs-explicit", best, auto)
	if a, e := auto.StateDigest(), serial.StateDigest(); a != e {
		t.Errorf("state digest diverged: auto %#x, serial %#x", a, e)
	}
	if a, e := auto.StateDigest(), best.StateDigest(); a != e {
		t.Errorf("state digest diverged: auto %#x, explicit %#x", a, e)
	}
}

// TestParallelByteIdenticalToSerial is the sharded-engine equivalence
// proof: for every trace profile and both coherence engines, with and
// without an injected drop-fault plan, a simulation split across N worker
// shards must produce results byte-identical to the serial run. Cross-shard
// effects are staged in per-shard queues and applied in shard order at the
// cycle barrier, so any divergence here is a shard hand-off or ordering bug.
func TestParallelByteIdenticalToSerial(t *testing.T) {
	variants := shardVariants()
	for _, kind := range protocol.EngineKinds() {
		for _, p := range trace.Benchmarks() {
			for _, faulty := range []bool{false, true} {
				kind, p, faulty := kind, p, faulty
				mode := "clean"
				if faulty {
					mode = "drops"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", kind, p.Name, mode), func(t *testing.T) {
					t.Parallel()
					serial := runSharded(t, kind, p, 1, faulty)
					if serial.Lat.Read.N+serial.Lat.Write.N == 0 {
						t.Fatal("serial run completed no accesses; differential is vacuous")
					}
					for _, s := range variants {
						sharded := runSharded(t, kind, p, s, faulty)
						requireIdentical(t, fmt.Sprintf("%s/%s/%s/shards=%d", kind, p.Name, mode, s), serial, sharded)
					}
				})
			}
		}
	}
}
