package verify

import (
	"fmt"
	"sort"
)

// EndState captures a machine's coherence state at quiescence — committed
// versions, main-memory contents and every valid cached copy — in a form
// two engines can be differentially compared in: the committed-version map
// is a pure function of the access trace, so a directory run and a tree run
// over the same trace must agree on it exactly, while memory contents and
// copy placement may legitimately differ (they depend on timing).
type EndState struct {
	// Name labels the run in failure messages ("dir/bar", "tree/bar").
	Name string

	// Committed is the final committed version per line (from the
	// checker's write serialization).
	Committed map[uint64]uint64

	// Memory is main memory's version per line (lines never written back
	// are absent and read as zero).
	Memory map[uint64]uint64

	// Copies lists the valid cached copies per line.
	Copies map[uint64][]Copy
}

// Copy is one valid cached line copy.
type Copy struct {
	Node     int
	Version  uint64
	Modified bool
}

// NewEndState returns an empty end state.
func NewEndState(name string) *EndState {
	return &EndState{
		Name:      name,
		Committed: make(map[uint64]uint64),
		Memory:    make(map[uint64]uint64),
		Copies:    make(map[uint64][]Copy),
	}
}

// SetCommitted records a line's final committed version (zero versions,
// i.e. never-written lines, are skipped).
func (s *EndState) SetCommitted(addr, v uint64) {
	if v != 0 {
		s.Committed[addr] = v
	}
}

// SetMemory records main memory's version for a line (zero skipped: it is
// the implicit initial state of all of memory).
func (s *EndState) SetMemory(addr, v uint64) {
	if v != 0 {
		s.Memory[addr] = v
	}
}

// AddCopy records a valid cached copy.
func (s *EndState) AddCopy(addr uint64, c Copy) {
	s.Copies[addr] = append(s.Copies[addr], c)
}

// SelfCheck validates the single-run invariants every engine must satisfy
// at quiescence, returning one message per violation:
//
//   - no line's memory version exceeds its committed version;
//   - no cached copy's version exceeds its committed version;
//   - a Modified copy holds exactly the committed version, and at most one
//     Modified copy exists per line;
//   - the committed version of every written line is resident somewhere —
//     in main memory or in some valid copy (nothing committed is lost).
func (s *EndState) SelfCheck() []string {
	var out []string
	f := func(format string, args ...interface{}) {
		out = append(out, s.Name+": "+fmt.Sprintf(format, args...))
	}
	for addr, v := range s.Memory {
		if v > s.Committed[addr] {
			f("memory holds %#x version %d beyond committed %d", addr, v, s.Committed[addr])
		}
	}
	for addr, copies := range s.Copies {
		modified := 0
		for _, c := range copies {
			if c.Version > s.Committed[addr] {
				f("node %d copy of %#x holds version %d beyond committed %d", c.Node, addr, c.Version, s.Committed[addr])
			}
			if c.Modified {
				modified++
				if c.Version != s.Committed[addr] {
					f("node %d Modified copy of %#x holds version %d, committed is %d", c.Node, addr, c.Version, s.Committed[addr])
				}
			}
		}
		if modified > 1 {
			f("%d Modified copies of %#x", modified, addr)
		}
	}
	for addr, v := range s.Committed {
		resident := s.Memory[addr] == v
		for _, c := range s.Copies[addr] {
			resident = resident || c.Version == v
		}
		if !resident {
			f("committed version %d of %#x resident nowhere (memory %d)", v, addr, s.Memory[addr])
		}
	}
	sort.Strings(out)
	return out
}

// Equivalent differentially compares two runs over the same trace: both
// must pass SelfCheck, and their committed-version maps must be identical —
// same set of written lines, same final version per line. It returns one
// message per discrepancy (empty means equivalent).
func Equivalent(a, b *EndState) []string {
	out := append(a.SelfCheck(), b.SelfCheck()...)
	for addr, av := range a.Committed {
		if bv, ok := b.Committed[addr]; !ok {
			out = append(out, fmt.Sprintf("%s committed %#x (version %d); %s never wrote it", a.Name, addr, av, b.Name))
		} else if av != bv {
			out = append(out, fmt.Sprintf("line %#x committed version %d in %s but %d in %s", addr, av, a.Name, bv, b.Name))
		}
	}
	for addr, bv := range b.Committed {
		if _, ok := a.Committed[addr]; !ok {
			out = append(out, fmt.Sprintf("%s committed %#x (version %d); %s never wrote it", b.Name, addr, bv, a.Name))
		}
	}
	return out
}
