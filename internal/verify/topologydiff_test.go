package verify_test

import (
	"testing"

	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/verify"
)

// runEngineOn is runEngine with the fabric (and optionally multicast) as a
// parameter: one engine, one profile, to quiescence, end state captured.
func runEngineOn(t *testing.T, kind protocol.EngineKind, ts network.TopoSpec, multicast bool,
	p trace.Profile, accesses int, seed uint64) (*verify.EndState, *protocol.Machine) {
	t.Helper()
	cfg := protocol.DefaultConfig()
	cfg.Topology = ts
	cfg.Multicast = multicast
	cfg.Seed = seed
	m, err := protocol.Build(protocol.Spec{
		Config: cfg,
		Trace:  trace.Generate(p, cfg.Nodes(), accesses, seed),
		Think:  p.Think,
		Engine: kind,
	})
	if err != nil {
		t.Fatalf("%s/%s/%s: Build: %v", kind, ts, p.Name, err)
	}
	if err := m.Run(20_000_000); err != nil {
		t.Fatalf("%s/%s/%s: run: %v", kind, ts, p.Name, err)
	}
	if v := m.Check.Violations(); len(v) > 0 {
		t.Fatalf("%s/%s/%s: runtime violations: %v", kind, ts, p.Name, v)
	}
	return m.EndState(kind.String() + "/" + ts.String() + "/" + p.Name), m
}

// TestEnginesEquivalentOnTorusAndRing extends the engine differential to
// the new fabrics: on a 4x4 torus and a 16-node ring, every trace profile
// must drive both engines to self-consistent, mutually equivalent end
// states — the protocol's correctness argument is topology-independent,
// and this is the test that keeps it so.
func TestEnginesEquivalentOnTorusAndRing(t *testing.T) {
	const accesses, seed = 120, 42
	fabrics := []network.TopoSpec{
		network.TorusSpec(4, 4),
		network.RingSpec(16),
	}
	for _, ts := range fabrics {
		for _, p := range trace.Benchmarks() {
			ts, p := ts, p
			t.Run(ts.String()+"/"+p.Name, func(t *testing.T) {
				t.Parallel()
				dir, _ := runEngineOn(t, protocol.KindDirectory, ts, false, p, accesses, seed)
				tree, _ := runEngineOn(t, protocol.KindTree, ts, false, p, accesses, seed)
				if len(dir.Committed) == 0 {
					t.Fatalf("dir/%s/%s committed nothing; differential is vacuous", ts, p.Name)
				}
				for _, d := range verify.Equivalent(dir, tree) {
					t.Error(d)
				}
			})
		}
	}
}

// TestMulticastEndStateEquivalent: hardware multicast is a transport
// optimization — forking invalidations and teardowns in the fabric must
// not change what any run computes. Both engines, multicast on versus
// off, same trace: equivalent end states.
func TestMulticastEndStateEquivalent(t *testing.T) {
	const accesses, seed = 120, 42
	fabrics := []network.TopoSpec{
		network.MeshSpec(4, 4),
		network.TorusSpec(4, 4),
		network.RingSpec(16),
	}
	for _, ts := range fabrics {
		for _, kind := range protocol.EngineKinds() {
			ts, kind := ts, kind
			t.Run(ts.String()+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				p := trace.Benchmarks()[0]
				off, _ := runEngineOn(t, kind, ts, false, p, accesses, seed)
				on, _ := runEngineOn(t, kind, ts, true, p, accesses, seed)
				if len(off.Committed) == 0 {
					t.Fatal("multicast-off run committed nothing; test is vacuous")
				}
				for _, d := range verify.Equivalent(off, on) {
					t.Error(d)
				}
			})
		}
	}
}

// TestMulticastReducesInvalidationPackets is the acceptance check for
// hardware multicast on the directory protocol: on an 8x8 torus, the same
// trace must invalidate the same sharers (dir.invals) while injecting
// measurably fewer invalidation packets (dir.inv_packets), because
// multi-sharer rounds ride one router-forked packet.
func TestMulticastReducesInvalidationPackets(t *testing.T) {
	const accesses, seed = 150, 42
	ts := network.TorusSpec(8, 8)
	var offPkts, onPkts, offInv, onInv int64
	for _, p := range trace.Benchmarks()[:2] {
		_, moff := runEngineOn(t, protocol.KindDirectory, ts, false, p, accesses, seed)
		_, mon := runEngineOn(t, protocol.KindDirectory, ts, true, p, accesses, seed)
		offPkts += moff.Counters.Get("dir.inv_packets")
		onPkts += mon.Counters.Get("dir.inv_packets")
		offInv += moff.Counters.Get("dir.invals")
		onInv += mon.Counters.Get("dir.invals")
	}
	if offInv == 0 {
		t.Fatal("no invalidations at all; test is vacuous")
	}
	// Unicast injects exactly one packet per target; multicast must inject
	// strictly fewer packets than it has targets (the timing shift means
	// the two runs' target totals differ slightly, so compare each run's
	// packets against its own targets, not run against run).
	if offPkts != offInv {
		t.Fatalf("unicast baseline inconsistent: %d packets for %d targets", offPkts, offInv)
	}
	if onPkts >= onInv {
		t.Fatalf("multicast did not batch targets: %d packets for %d targets", onPkts, onInv)
	}
	// And the raw count must drop measurably too — every round still
	// completes (the writes collected all their acks), which with fewer
	// injected packets is only possible if the fabric forked them.
	if onPkts >= offPkts {
		t.Fatalf("multicast did not reduce injected invalidation packets: %d on >= %d off", onPkts, offPkts)
	}
	t.Logf("torus:8x8 dir invalidations: packets/targets %d/%d off -> %d/%d on (%.1f%% packets per target)",
		offPkts, offInv, onPkts, onInv, 100*float64(onPkts)/float64(onInv))
}
