package verify_test

import (
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/verify"

	// Engine builder registration for protocol.Build.
	_ "innetcc/internal/directory"
	_ "innetcc/internal/treecc"
)

// runEngine drives one coherence engine over a deterministic trace to
// quiescence and captures its end state. Both engines of a differential
// pair are handed the same config, profile and seed, so they execute the
// identical access stream.
func runEngine(t *testing.T, kind protocol.EngineKind, p trace.Profile, accesses int, seed uint64) *verify.EndState {
	t.Helper()
	cfg := protocol.DefaultConfig()
	cfg.Seed = seed
	m, err := protocol.Build(protocol.Spec{
		Config: cfg,
		Trace:  trace.Generate(p, cfg.Nodes(), accesses, seed),
		Think:  p.Think,
		Engine: kind,
	})
	if err != nil {
		t.Fatalf("%s/%s: Build: %v", kind, p.Name, err)
	}
	if err := m.Run(20_000_000); err != nil {
		t.Fatalf("%s/%s: run: %v", kind, p.Name, err)
	}
	if v := m.Check.Violations(); len(v) > 0 {
		t.Fatalf("%s/%s: runtime violations: %v", kind, p.Name, v)
	}
	return m.EndState(kind.String() + "/" + p.Name)
}

// TestEnginesReachEquivalentEndState differentially verifies the two
// coherence engines over every trace profile: run to quiescence on the
// identical access stream, both must pass the end-state self-checks and
// agree exactly on the committed-version map (the part of the end state
// that is a pure function of the trace).
func TestEnginesReachEquivalentEndState(t *testing.T) {
	const accesses, seed = 120, 42
	for _, p := range trace.Benchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			dir := runEngine(t, protocol.KindDirectory, p, accesses, seed)
			tree := runEngine(t, protocol.KindTree, p, accesses, seed)
			if dir.Committed == nil || len(dir.Committed) == 0 {
				t.Fatalf("dir/%s committed nothing; differential test is vacuous", p.Name)
			}
			for _, d := range verify.Equivalent(dir, tree) {
				t.Error(d)
			}
		})
	}
}

// TestEndStateSelfCheckCatches proves the harness detects each class of
// corruption it claims to: lost committed versions, stale Modified copies,
// duplicate writers, and versions beyond the committed bound.
func TestEndStateSelfCheckCatches(t *testing.T) {
	clean := func() *verify.EndState {
		s := verify.NewEndState("x")
		s.SetCommitted(8, 3)
		s.SetMemory(8, 2)
		s.AddCopy(8, verify.Copy{Node: 1, Version: 3, Modified: true})
		return s
	}
	if errs := clean().SelfCheck(); len(errs) != 0 {
		t.Fatalf("clean state flagged: %v", errs)
	}

	cases := []struct {
		name    string
		corrupt func(*verify.EndState)
	}{
		{"memory beyond committed", func(s *verify.EndState) { s.SetMemory(8, 9) }},
		{"copy beyond committed", func(s *verify.EndState) { s.AddCopy(8, verify.Copy{Node: 2, Version: 7}) }},
		{"stale modified copy", func(s *verify.EndState) {
			s.Copies[8] = []verify.Copy{{Node: 1, Version: 2, Modified: true}}
			s.SetMemory(8, 3)
		}},
		{"two modified copies", func(s *verify.EndState) {
			s.AddCopy(8, verify.Copy{Node: 2, Version: 3, Modified: true})
		}},
		{"committed version lost", func(s *verify.EndState) {
			s.Copies[8] = nil // memory holds 2, committed 3 is nowhere
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clean()
			tc.corrupt(s)
			if errs := s.SelfCheck(); len(errs) == 0 {
				t.Fatal("corruption not flagged")
			}
		})
	}
}

// TestEquivalentFlagsCommitDivergence proves the differential comparison
// detects engines that disagree on what the trace committed.
func TestEquivalentFlagsCommitDivergence(t *testing.T) {
	a := verify.NewEndState("a")
	a.SetCommitted(8, 3)
	a.SetMemory(8, 3)
	b := verify.NewEndState("b")
	b.SetCommitted(8, 2)
	b.SetMemory(8, 2)
	b.SetCommitted(16, 1)
	b.SetMemory(16, 1)
	errs := verify.Equivalent(a, b)
	if len(errs) != 2 {
		t.Fatalf("want 2 discrepancies (version mismatch + missing line), got %d: %v", len(errs), errs)
	}
}
