package verify

import "testing"

func TestWitnessAcceptsLegalHistory(t *testing.T) {
	order := []AccessRecord{
		{Node: 0, Addr: 0x40, Write: true, Version: 1, At: 10},
		{Node: 1, Addr: 0x40, Version: 1, At: 12},
		{Node: 2, Addr: 0x80, Version: 0, At: 12},
		{Node: 1, Addr: 0x40, Write: true, Version: 2, At: 20},
		{Node: 0, Addr: 0x40, Version: 2, At: 25},
	}
	if v := CheckWitness(order); len(v) != 0 {
		t.Fatalf("legal history rejected: %v", v)
	}
	counts := WitnessCounts(order)
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("bad counts: %v", counts)
	}
}

func TestWitnessRejectsIllegalHistories(t *testing.T) {
	cases := []struct {
		name  string
		order []AccessRecord
	}{
		{"skipped write version", []AccessRecord{
			{Node: 0, Addr: 1, Write: true, Version: 1, At: 1},
			{Node: 1, Addr: 1, Write: true, Version: 3, At: 2},
		}},
		{"duplicated write version", []AccessRecord{
			{Node: 0, Addr: 1, Write: true, Version: 1, At: 1},
			{Node: 1, Addr: 1, Write: true, Version: 1, At: 2},
		}},
		{"stale read", []AccessRecord{
			{Node: 0, Addr: 1, Write: true, Version: 1, At: 1},
			{Node: 1, Addr: 1, Version: 0, At: 2},
		}},
		{"future read", []AccessRecord{
			{Node: 1, Addr: 1, Version: 1, At: 1},
			{Node: 0, Addr: 1, Write: true, Version: 1, At: 2},
		}},
		{"time regression", []AccessRecord{
			{Node: 0, Addr: 1, Write: true, Version: 1, At: 5},
			{Node: 1, Addr: 1, Version: 1, At: 3},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v := CheckWitness(tc.order); len(v) == 0 {
				t.Fatalf("illegal history accepted")
			}
		})
	}
}
