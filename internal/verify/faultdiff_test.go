package verify_test

import (
	"testing"

	"innetcc/internal/fault"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/verify"

	_ "innetcc/internal/directory"
	_ "innetcc/internal/treecc"
)

// runEngineFaulty drives one engine over a deterministic trace under a
// drop-only fault plan with retry recovery armed, and returns the end state
// plus the number of packets the plan actually removed.
func runEngineFaulty(t *testing.T, kind protocol.EngineKind, p trace.Profile, accesses int,
	seed uint64, spec fault.Spec) (*verify.EndState, int64) {
	t.Helper()
	cfg := protocol.DefaultConfig()
	cfg.Seed = seed
	cfg.RetryTimeout = spec.Timeout
	cfg.RetryBudget = spec.Budget
	cfg.RetryBackoff = spec.Backoff
	cfg.ProbeInterval = spec.Probe
	m, err := protocol.Build(protocol.Spec{
		Config: cfg,
		Trace:  trace.Generate(p, cfg.Nodes(), accesses, seed),
		Think:  p.Think,
		Engine: kind,
		Faults: &fault.Plan{Spec: spec, Seed: seed + uint64(kind)},
	})
	if err != nil {
		t.Fatalf("%s/%s: Build: %v", kind, p.Name, err)
	}
	if err := m.Run(40_000_000); err != nil {
		t.Fatalf("%s/%s: run under faults: %v", kind, p.Name, err)
	}
	if v := m.Check.Violations(); len(v) > 0 {
		t.Fatalf("%s/%s: runtime violations under faults: %v", kind, p.Name, v)
	}
	return m.EndState(kind.String() + "/" + p.Name), m.Counters.Get("fault.drops")
}

// TestEnginesConvergeUnderDrops is the fault differential: on every trace
// profile, both engines run under a seeded drop-only plan (retryable scope)
// with bounded retries, and must still commit the exact same version map an
// uninjected run commits — packet loss may cost latency, never coherence.
// Profiles run serially so the test can assert the plans injected real
// loss in aggregate (any single profile may sample zero drops).
func TestEnginesConvergeUnderDrops(t *testing.T) {
	const accesses, seed = 120, 42
	spec, err := fault.ParseSpec("drop=2500,timeout=200000,retries=6,backoff=64,probe=2000")
	if err != nil {
		t.Fatal(err)
	}
	var totalDrops int64
	for _, p := range trace.Benchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			dir, dirDrops := runEngineFaulty(t, protocol.KindDirectory, p, accesses, seed, spec)
			tree, treeDrops := runEngineFaulty(t, protocol.KindTree, p, accesses, seed, spec)
			totalDrops += dirDrops + treeDrops
			if len(dir.Committed) == 0 {
				t.Fatalf("dir/%s committed nothing; differential is vacuous", p.Name)
			}
			for _, d := range verify.Equivalent(dir, tree) {
				t.Error(d)
			}
			clean := runEngine(t, protocol.KindDirectory, p, accesses, seed)
			for _, d := range verify.Equivalent(clean, dir) {
				t.Errorf("faulty dir run diverged from clean run: %v", d)
			}
		})
	}
	if totalDrops == 0 {
		t.Fatal("no profile sampled a single drop; raise the rate, the test is vacuous")
	}
	t.Logf("aggregate injected drops across profiles: %d", totalDrops)
}
