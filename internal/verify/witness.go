package verify

import "fmt"

// The linearization witness. A run executed with KeepOrder retains the
// commit-point sequence of every access (the order writes serialized at
// the home / tree root, and the order read replies sampled their data).
// CheckWitness validates that sequence as a legal sequential MSI history —
// the certificate that the concurrent execution linearizes:
//
//  1. Writes to a line carry versions 1,2,3,… in order: every write is
//     serialized exactly once and none is lost or duplicated.
//  2. Every read returns the version of the latest write that precedes it
//     in the witness: no read observes the future or a dropped past.
//  3. Per node and line, observed versions never decrease: the witness
//     embeds each node's program order (one outstanding access per node).
//  4. Commit timestamps never decrease, globally: the witness order is
//     the temporal order, so conditions 1–3 speak about real time.
//
// The model checker proves these properties exhaustively on the reduced
// protocol; the witness checks the same properties on single executions
// of the full simulator, which is what makes litmus fuzzing an oracle
// rather than a crash test.
func CheckWitness(order []AccessRecord) []string {
	var out []string
	bad := func(format string, args ...interface{}) {
		if len(out) < 32 {
			out = append(out, fmt.Sprintf(format, args...))
		}
	}
	cur := map[uint64]uint64{}
	lastSeen := map[nodeAddr]uint64{}
	var lastAt int64
	for i, r := range order {
		if r.At < lastAt {
			bad("witness[%d]: commit at cycle %d after cycle %d", i, r.At, lastAt)
		}
		lastAt = r.At
		if r.Write {
			if r.Version != cur[r.Addr]+1 {
				bad("witness[%d]: node %d write of %#x carries version %d, expected %d",
					i, r.Node, r.Addr, r.Version, cur[r.Addr]+1)
			}
			cur[r.Addr] = r.Version
		} else if r.Version != cur[r.Addr] {
			bad("witness[%d]: node %d read of %#x returned version %d, latest write is %d",
				i, r.Node, r.Addr, r.Version, cur[r.Addr])
		}
		k := nodeAddr{r.Node, r.Addr}
		if last, ok := lastSeen[k]; ok && r.Version < last {
			bad("witness[%d]: node %d sees version %d of %#x after version %d",
				i, r.Node, r.Addr, r.Version, last)
		}
		lastSeen[k] = r.Version
	}
	return out
}

// WitnessCounts tallies committed accesses per node from a witness, so a
// harness that knows the issued program can assert completeness: every op
// committed exactly once (a dropped or doubly-completed access shifts a
// count even when the surviving history happens to linearize).
func WitnessCounts(order []AccessRecord) map[int]int {
	out := make(map[int]int)
	for _, r := range order {
		out[r.Node]++
	}
	return out
}
