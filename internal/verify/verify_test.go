package verify

import (
	"testing"
	"testing/quick"
)

func TestCleanRunHasNoViolations(t *testing.T) {
	c := New(true)
	c.RegisterCopy(1, 0)
	v := c.CommitWrite(1, 0, 10)
	if v != 1 {
		t.Fatalf("first commit version %d, want 1", v)
	}
	c.SampleRead(1, 1, 1, 2, 20)
	c.RegisterCopy(1, 2)
	c.ObserveRead(1, 1, 2, 25, false)
	c.ObserveRead(1, 1, 2, 30, true)
	if len(c.Violations()) != 0 {
		t.Fatalf("clean run reported violations: %v", c.Violations())
	}
	if errs := c.CheckOrderSC(); len(errs) != 0 {
		t.Fatalf("clean order flagged: %v", errs)
	}
}

func TestSingleWriterViolationDetected(t *testing.T) {
	c := New(false)
	c.RegisterCopy(5, 1)
	c.RegisterCopy(5, 2)
	c.CommitWrite(5, 1, 100)
	if len(c.Violations()) == 0 {
		t.Fatal("write with a foreign valid copy not flagged")
	}
}

func TestUnregisterClearsCopy(t *testing.T) {
	c := New(false)
	c.RegisterCopy(5, 2)
	c.UnregisterCopy(5, 2)
	c.CommitWrite(5, 1, 100)
	if len(c.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}
	if n := len(c.Copies(5)); n != 0 {
		// CommitWrite does not register the writer's copy itself.
		t.Fatalf("Copies after unregister = %d entries", n)
	}
}

func TestSampleMismatchDetected(t *testing.T) {
	c := New(false)
	c.SampleRead(9, 3, 4, 0, 50)
	if len(c.Violations()) == 0 {
		t.Fatal("sample/memory mismatch not flagged")
	}
}

func TestObserveMonotonicityViolation(t *testing.T) {
	c := New(false)
	c.ObserveRead(7, 5, 3, 10, false)
	c.ObserveRead(7, 4, 3, 20, false)
	if len(c.Violations()) == 0 {
		t.Fatal("backwards observation not flagged")
	}
}

func TestLocalStaleCopyDetected(t *testing.T) {
	c := New(false)
	c.CommitWrite(7, 0, 5)
	c.CommitWrite(7, 0, 6)
	// Node 3 holds a stale local copy of version 1.
	c.ObserveRead(7, 1, 3, 30, true)
	if len(c.Violations()) == 0 {
		t.Fatal("stale local copy not flagged")
	}
}

func TestDeliveryStaleObservationIsAllowed(t *testing.T) {
	// A reply delivered after a conflicting write committed is SC-legal
	// (the read serialized earlier); only local copies are strict.
	c := New(false)
	c.CommitWrite(7, 0, 5)
	c.CommitWrite(7, 0, 6)
	c.ObserveRead(7, 1, 3, 30, false)
	if len(c.Violations()) != 0 {
		t.Fatalf("legal stale delivery flagged: %v", c.Violations())
	}
}

func TestVersionsAdvancePerLine(t *testing.T) {
	c := New(false)
	c.CommitWrite(1, 0, 1)
	c.CommitWrite(2, 0, 2)
	c.CommitWrite(1, 0, 3)
	if c.CurrentVersion(1) != 2 || c.CurrentVersion(2) != 1 {
		t.Fatalf("versions %d/%d, want 2/1", c.CurrentVersion(1), c.CurrentVersion(2))
	}
}

func TestCheckOrderSCCatchesStaleRead(t *testing.T) {
	c := New(true)
	c.CommitWrite(3, 0, 1)
	c.CommitWrite(3, 0, 2)
	// Fabricate a read of version 1 sampled when memory held 1 — memory
	// agreement passes, but the total order says version 2 is current.
	c.SampleRead(3, 1, 1, 4, 30)
	if errs := c.CheckOrderSC(); len(errs) == 0 {
		t.Fatal("stale read in total order not flagged")
	}
}

func TestCheckOrderSCCatchesSkippedWriteVersion(t *testing.T) {
	c := New(true)
	c.order = append(c.order, AccessRecord{Node: 0, Addr: 1, Write: true, Version: 2, At: 1})
	if errs := c.CheckOrderSC(); len(errs) == 0 {
		t.Fatal("version skip not flagged")
	}
}

func TestViolationListIsBounded(t *testing.T) {
	c := New(false)
	for i := 0; i < 500; i++ {
		c.SampleRead(1, 1, 2, 0, int64(i))
	}
	if len(c.Violations()) > 100 {
		t.Fatalf("violation list unbounded: %d entries", len(c.Violations()))
	}
}

// Property: any serially executed sequence of writes and current-version
// reads is violation-free and passes the order check.
func TestSerialExecutionAlwaysClean(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		c := New(true)
		now := int64(0)
		holder := map[uint64]int{}
		for _, op := range ops {
			now++
			addr := uint64(op % 4)
			node := int(op>>4) % 4
			if op%2 == 0 { // write
				if h, ok := holder[addr]; ok {
					c.UnregisterCopy(addr, h)
				}
				v := c.CommitWrite(addr, node, now)
				_ = v
				c.RegisterCopy(addr, node)
				holder[addr] = node
			} else { // read current version from memory
				cur := c.CurrentVersion(addr)
				c.SampleRead(addr, cur, cur, node, now)
				c.ObserveRead(addr, cur, node, now, false)
			}
		}
		return len(c.Violations()) == 0 && len(c.CheckOrderSC()) == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
