package exec

import (
	"fmt"
	"runtime"
	"sync"

	"innetcc/internal/directory"
	"innetcc/internal/fault"
	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"

	// Registers the tree engine's builder with protocol.Build. The
	// directory package (imported above for the hop-study wiring) does the
	// same for the baseline engine.
	_ "innetcc/internal/treecc"
)

// Pool runs batches of jobs across worker goroutines. The zero value is
// usable: all cores, no cache.
type Pool struct {
	// Workers is the parallelism level; <= 0 means GOMAXPROCS.
	Workers int

	// Cache, when non-nil, serves and stores results on disk keyed by
	// Job.Hash.
	Cache *Cache
}

// Run executes all jobs and returns their results in submission order.
// Each job is isolated: a simulation error, an exceeded cycle bound, or a
// panic fails only that job's Result (Err set), never the batch. Because
// every job is a pure function of its spec and results are collected by
// index, the returned slice — and anything printed from it in order — is
// identical at every parallelism level.
//
// When Workers <= 0 the pool defaults to one worker per core, divided by
// the largest per-job shard count so batch parallelism and intra-simulation
// sharding together use roughly GOMAXPROCS cores instead of oversubscribing.
func (p *Pool) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		maxShards := 1
		for _, j := range jobs {
			if j.Shards > maxShards {
				maxShards = j.Shards
			}
		}
		if workers /= maxShards; workers < 1 {
			workers = 1
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = p.runOne(j)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = p.runOne(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single job: cache lookup, simulation behind a panic
// barrier (with transient-failure retries), cache fill.
func (p *Pool) runOne(job Job) (res Result) {
	var hash string
	if p.Cache != nil {
		hash = job.Hash()
		if r, ok := p.Cache.Get(hash); ok {
			r.Key = job.Key
			r.Cached = true
			return r
		}
	}
	// Transient failures — a tripped hang watchdog or an exhausted
	// protocol retry budget — are re-run with a derived sub-seed up to
	// job.Retries times. Each attempt is itself fully deterministic, so
	// the whole sequence (and the attempt count recorded in the result)
	// replays identically; deterministic failures surface immediately.
	for attempt := 0; ; attempt++ {
		res = simulate(job, attempt)
		res.Attempts = attempt + 1
		if !res.Failed() || !res.Transient || attempt >= job.Retries {
			break
		}
	}
	res.Key = job.Key
	if p.Cache != nil {
		p.Cache.Put(hash, res)
	}
	return res
}

// simulate runs one attempt of the job's simulation to quiescence. Panics
// anywhere in the protocol or network stack are recovered into the job's
// Result so one diverging configuration cannot take down the batch.
// Attempt 0 uses the job seed; retry attempts derive a sub-seed from it, so
// every attempt is reproducible in isolation.
func simulate(job Job, attempt int) (res Result) {
	col := collectorFor(job.Metrics)
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Sprintf("panic: %v", r), Metrics: metricsOut(col, true)}
		}
	}()

	seed := job.Seed()
	if attempt > 0 {
		seed = DeriveSeed(seed, fmt.Sprintf("retry/%d", attempt))
	}
	cfg := job.Config
	cfg.Seed = seed
	var plan *fault.Plan
	if job.Faults != "" {
		fspec, err := fault.ParseSpec(job.Faults)
		if err != nil {
			return Result{Err: "exec: bad fault spec: " + err.Error()}
		}
		cfg.RetryTimeout = fspec.Timeout
		cfg.RetryBudget = fspec.Budget
		cfg.RetryBackoff = fspec.Backoff
		cfg.ProbeInterval = fspec.Probe
		plan = &fault.Plan{Spec: fspec, Seed: DeriveSeed(seed, "fault")}
	}
	m, err := protocol.Build(protocol.Spec{
		Config:  cfg,
		Trace:   trace.Generate(job.Profile, cfg.Nodes(), job.Accesses, seed),
		Think:   job.Profile.Think,
		Engine:  job.Engine,
		Metrics: col,
		Faults:  plan,
		Shards:  job.Shards,
	})
	if err != nil {
		return Result{Err: err.Error(), Metrics: metricsOut(col, true)}
	}
	m.ReadSamples = &stats.Sampler{}
	m.WriteSamples = &stats.Sampler{}

	var hops *HopAgg
	if job.CollectHops {
		e, ok := m.Engine().(*directory.Engine)
		if !ok {
			return Result{Err: fmt.Sprintf("exec: CollectHops requires the directory engine, got %s", job.Engine)}
		}
		hops = &HopAgg{}
		e.HopRecorder = func(write bool, base, ideal int) {
			if base == 0 {
				return
			}
			if write {
				hops.WriteBase += float64(base)
				hops.WriteIdeal += float64(ideal)
				hops.Writes++
			} else {
				hops.ReadBase += float64(base)
				hops.ReadIdeal += float64(ideal)
				hops.Reads++
			}
		}
	}

	if err := m.Run(job.maxCycles()); err != nil {
		return Result{
			Err:       fmt.Sprintf("%s %s: %v", job.Profile.Name, job.Engine, err),
			Transient: fault.Transient(err),
			Metrics:   metricsOut(col, true),
		}
	}

	res = Result{
		Cycles:        m.Kernel.Now(),
		LocalHits:     m.LocalHits,
		Read:          dist(&m.Lat.Read, m.ReadSamples),
		Write:         dist(&m.Lat.Write, m.WriteSamples),
		DeadlockRead:  dist(&m.Lat.DeadlockRead, nil),
		DeadlockWrite: dist(&m.Lat.DeadlockWrite, nil),
		Hops:          hops,
		Metrics:       metricsOut(col, job.Metrics.FlightDump),
	}
	if names := m.Counters.Names(); len(names) > 0 {
		res.Counters = make(map[string]int64, len(names))
		for _, n := range names {
			res.Counters[n] = m.Counters.Get(n)
		}
	}
	return res
}

// dist folds an accumulator (and, when available, its sample set for
// percentiles) into the serializable Dist form. Summarize extracts all
// three percentiles off one sort of the sample vector.
func dist(a *stats.Accumulator, s *stats.Sampler) Dist {
	d := Dist{N: a.N, Sum: a.Sum, Min: a.MinV, Max: a.MaxV}
	if s != nil && s.N() > 0 {
		sum := s.Summarize()
		d.P50, d.P95, d.P99 = sum.P50, sum.P95, sum.P99
	}
	return d
}
