package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	// Registers the tree engine's builder with protocol.Build. The
	// directory package (imported by the runner for the hop-study wiring)
	// does the same for the baseline engine.
	_ "innetcc/internal/treecc"
)

// Pool runs batches of jobs across worker goroutines. The zero value is
// usable: all cores, no cache.
//
// Concurrent submissions of the same spec (equal Job.Hash) are deduplicated
// in-process: one worker simulates, everyone else waits and shares the
// result. Combined with the on-disk cache this gives exactly-once
// simulation per spec no matter how many callers race.
type Pool struct {
	// Workers is the parallelism level; <= 0 means GOMAXPROCS.
	Workers int

	// Cache, when non-nil, serves and stores results on disk keyed by
	// Job.Hash.
	Cache *Cache

	flightMu sync.Mutex
	flights  map[string]*flightCall

	sims atomic.Int64
}

// flightCall is one in-progress simulation shared by concurrent submitters
// of the same job hash.
type flightCall struct {
	done chan struct{}
	res  Result
}

// Simulations reports how many jobs this pool actually simulated (cache
// hits and deduplicated followers excluded).
func (p *Pool) Simulations() int64 { return p.sims.Load() }

// Run executes all jobs and returns their results in submission order.
// Each job is isolated: a simulation error, an exceeded cycle bound, or a
// panic fails only that job's Result (Err set), never the batch. Because
// every job is a pure function of its spec and results are collected by
// index, the returned slice — and anything printed from it in order — is
// identical at every parallelism level.
//
// When Workers <= 0 the pool defaults to one worker per core, divided by
// the largest per-job shard count so batch parallelism and intra-simulation
// sharding together use roughly GOMAXPROCS cores instead of oversubscribing.
func (p *Pool) Run(jobs []Job) []Result {
	return p.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: when ctx is canceled, in-flight
// simulations stop at the next segment boundary and come back with
// Canceled set (never cached), and queued jobs are returned canceled
// without simulating at all.
func (p *Pool) RunContext(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		maxShards := 1
		for _, j := range jobs {
			if j.Shards > maxShards {
				maxShards = j.Shards
			}
		}
		if workers /= maxShards; workers < 1 {
			workers = 1
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = p.runOne(ctx, j)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = p.runOne(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single job: cache lookup, in-process deduplication,
// simulation via the segmented runner, cache fill.
func (p *Pool) runOne(ctx context.Context, job Job) Result {
	if err := ctx.Err(); err != nil {
		return Result{Err: "exec: canceled: " + err.Error(), Canceled: true, Key: job.Key}
	}
	hash := job.Hash()
	if p.Cache != nil {
		if r, ok := p.Cache.Get(hash); ok {
			r.Key = job.Key
			r.Cached = true
			return r
		}
	}

	p.flightMu.Lock()
	if p.flights == nil {
		p.flights = make(map[string]*flightCall)
	}
	if fc, ok := p.flights[hash]; ok {
		p.flightMu.Unlock()
		<-fc.done
		res := fc.res
		res.Key = job.Key
		res.Cached = true
		return res
	}
	fc := &flightCall{done: make(chan struct{})}
	p.flights[hash] = fc
	p.flightMu.Unlock()

	p.sims.Add(1)
	res := RunJob(job, RunOptions{Ctx: ctx})
	if p.Cache != nil && !res.Canceled && !res.Cached {
		p.Cache.Put(hash, res)
	}

	fc.res = res
	p.flightMu.Lock()
	delete(p.flights, hash)
	p.flightMu.Unlock()
	close(fc.done)
	return res
}
