package exec

import (
	"testing"

	"innetcc/internal/metrics"
	"innetcc/internal/protocol"
)

// TestFlightRecorderCapturesDeadlockRecovery forces the tree protocol's
// timeout/teardown/backoff recovery path — a direct-mapped, nearly
// entryless tree cache under write-heavy sharing deadlocks reliably — and
// checks the flight recorder tells the story in order: an abort event,
// a later home-node backoff for the same line, and the teardown events the
// recovery rode on, all with non-decreasing cycle stamps.
func TestFlightRecorderCapturesDeadlockRecovery(t *testing.T) {
	job := testJob("wsp", protocol.KindTree, 150)
	job.Config.TreeEntries, job.Config.TreeWays = 4, 1
	job.Config.TimeoutCycles = 15
	job.Metrics = MetricsSpec{Enabled: true, FlightDump: true, FlightSize: 1 << 17}

	var res Result
	found := false
	for seed := uint64(42); seed < 52; seed++ {
		job.SuiteSeed = seed
		res = simulate(job, 0)
		if res.Failed() {
			t.Fatalf("seed %d: %s", seed, res.Err)
		}
		if res.Counter("tree.deadlock_aborts") > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed produced a deadlock abort; tighten the config")
	}
	m := res.Metrics
	if m == nil || len(m.Flight) == 0 {
		t.Fatal("flight ring empty on a FlightDump job")
	}
	if m.FlightTotal < uint64(len(m.Flight)) {
		t.Fatalf("FlightTotal %d < retained %d", m.FlightTotal, len(m.Flight))
	}

	last := int64(-1)
	counts := map[metrics.EventKind]int{}
	recovered := false
	for i, ev := range m.Flight {
		if ev.Cycle < last {
			t.Fatalf("flight[%d] cycle %d precedes flight[%d-1] cycle %d", i, ev.Cycle, i, last)
		}
		last = ev.Cycle
		counts[ev.Kind]++
		// The recovery sequence: after this abort, the aborted request
		// must reach its home node's backoff queue for the same line.
		if ev.Kind == metrics.EvDeadlockAbort && !recovered {
			for _, later := range m.Flight[i+1:] {
				if later.Kind == metrics.EvBackoff && later.Addr == ev.Addr {
					recovered = true
					break
				}
			}
		}
	}
	if counts[metrics.EvDeadlockAbort] == 0 {
		t.Error("deadlock aborts counted but no EvDeadlockAbort in the flight ring")
	}
	if !recovered {
		t.Error("no EvDeadlockAbort was followed by an EvBackoff for the same line")
	}
	for _, kind := range []metrics.EventKind{metrics.EvTeardown, metrics.EvTeardownComplete} {
		if counts[kind] == 0 {
			t.Errorf("recovery ran but the ring holds no %v events", kind)
		}
	}
	if counts[metrics.EvInject] == 0 || counts[metrics.EvComplete] == 0 {
		t.Error("ring is missing the baseline inject/complete traffic")
	}
}
