package exec

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Snapshot is a logical checkpoint of a running job: everything needed to
// continue the simulation after a process restart. The simulator's event
// queue holds closures, which cannot be serialized, so a snapshot does not
// carry raw machine state; it carries the job spec (the state's generator),
// the cycle the simulation had reached, the attempt epoch, and a 64-bit
// digest of the live machine state at that cycle. Restore rebuilds the
// machine from the spec, replays deterministically to Cycle, and verifies
// the recomputed digest against Digest — so a restore on a binary whose
// simulation semantics drifted fails loudly instead of silently computing
// a different result. See DESIGN.md's checkpoint section for the design
// argument.
type Snapshot struct {
	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle int64
	// Attempt is the transient-retry epoch the snapshot belongs to;
	// restore replays that attempt's seed derivation.
	Attempt int
	// Digest is protocol.(*Machine).StateDigest() at Cycle.
	Digest uint64
	// Job is the full job spec the state derives from.
	Job Job
}

// Snapshot file format: little-endian binary, versioned, self-checking.
//
//	magic   [8]byte  "INCCKPT\x01"
//	version uint32   snapshotVersion
//	cycle   int64
//	attempt uint32
//	digest  uint64
//	jobLen  uint32
//	job     [jobLen]byte (canonical JSON of the Job spec)
//	check   uint64   FNV-1a over every preceding byte
//
// The trailer checksum makes truncated or bit-damaged files detectable:
// ReadSnapshot returns ErrBadSnapshot and callers fall back to a fresh run
// (a checkpoint is an optimization, never a correctness dependency).
const snapshotMagic = "INCCKPT\x01"

// snapshotVersion invalidates old checkpoint files when the snapshot
// semantics change. Restores additionally verify the job's content hash and
// the state digest, so version bumps are only needed for format changes.
const snapshotVersion = 1

// ErrBadSnapshot reports an unreadable, truncated, corrupt or
// incompatible-version snapshot file.
var ErrBadSnapshot = errors.New("exec: bad snapshot")

func fnv1a(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Encode serializes the snapshot in the versioned binary format.
func (s Snapshot) Encode() ([]byte, error) {
	jb, err := json.Marshal(s.Job)
	if err != nil {
		return nil, fmt.Errorf("exec: snapshot job spec: %w", err)
	}
	buf := make([]byte, 0, len(snapshotMagic)+4+8+4+8+4+len(jb)+8)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Cycle))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Attempt))
	buf = binary.LittleEndian.AppendUint64(buf, s.Digest)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(jb)))
	buf = append(buf, jb...)
	buf = binary.LittleEndian.AppendUint64(buf, fnv1a(buf))
	return buf, nil
}

// DecodeSnapshot parses and verifies a snapshot encoding. Any structural
// problem — short file, wrong magic or version, checksum mismatch,
// undecodable spec — is reported as ErrBadSnapshot.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	bad := func(why string) (Snapshot, error) {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrBadSnapshot, why)
	}
	head := len(snapshotMagic) + 4 + 8 + 4 + 8 + 4
	if len(b) < head+8 {
		return bad("truncated header")
	}
	if string(b[:len(snapshotMagic)]) != snapshotMagic {
		return bad("wrong magic")
	}
	if tail := b[len(b)-8:]; binary.LittleEndian.Uint64(tail) != fnv1a(b[:len(b)-8]) {
		return bad("checksum mismatch")
	}
	off := len(snapshotMagic)
	if v := binary.LittleEndian.Uint32(b[off:]); v != snapshotVersion {
		return bad(fmt.Sprintf("version %d, want %d", v, snapshotVersion))
	}
	off += 4
	var s Snapshot
	s.Cycle = int64(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	s.Attempt = int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	s.Digest = binary.LittleEndian.Uint64(b[off:])
	off += 8
	jobLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+jobLen != len(b)-8 {
		return bad("spec length mismatch")
	}
	if err := json.Unmarshal(b[off:off+jobLen], &s.Job); err != nil {
		return bad("spec: " + err.Error())
	}
	return s, nil
}

// WriteSnapshot stores the snapshot at path atomically (temp file +
// rename), so a crash mid-write leaves either the previous checkpoint or
// none — never a torn file a restore could half-trust.
func WriteSnapshot(path string, s Snapshot) error {
	b, err := s.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt*")
	if err != nil {
		return fmt.Errorf("exec: snapshot: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exec: snapshot write: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exec: snapshot: %w", err)
	}
	return nil
}

// CompatibleWith reports whether the snapshot can resume the given job:
// it must have been taken from a run of the identical spec (content hash
// equality) at a retry epoch the job's budget still covers. Callers that
// find a snapshot incompatible fall back to a fresh run — a checkpoint is
// an optimization, never a correctness dependency.
func (s Snapshot) CompatibleWith(j Job) bool {
	return s.Job.Hash() == j.Hash() && s.Attempt <= j.Retries
}

// HandoffSnapshot decodes a snapshot that arrived from another host (the
// serving layer's snapshot-export endpoint ships the raw encoded bytes) and
// verifies it belongs to the job it is supposed to resume. The snapshot
// format is host-independent — spec, replay-target cycle and state digest —
// so a checkpoint taken on one machine resumes on any other running the
// same simulation semantics; the digest check at replay time catches the
// rest.
func HandoffSnapshot(b []byte, j Job) (*Snapshot, error) {
	snap, err := DecodeSnapshot(b)
	if err != nil {
		return nil, err
	}
	if !snap.CompatibleWith(j) {
		return nil, fmt.Errorf("%w: snapshot is for a different job spec", ErrBadSnapshot)
	}
	return &snap, nil
}

// ReadSnapshot loads and verifies the snapshot at path.
func ReadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return DecodeSnapshot(b)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
