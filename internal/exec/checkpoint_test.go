package exec

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// resultBytes canonicalizes a Result for byte-identity comparison (Key and
// Cached are presentation-only and excluded by their json tags).
func resultBytes(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// TestCheckpointRestoreByteIdentical is the checkpoint differential of the
// acceptance criteria: for every trace profile and both engines, run to a
// mid-run cycle C, snapshot, restore from the snapshot in a fresh runner,
// run to completion — and require the result to be byte-identical to an
// uninterrupted run of the same spec.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	for _, p := range trace.Benchmarks() {
		for _, kind := range []protocol.EngineKind{protocol.KindDirectory, protocol.KindTree} {
			p, kind := p, kind
			t.Run(p.Name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				job := testJob(p.Name, kind, 40)
				straight := RunJob(job, RunOptions{})
				if straight.Failed() {
					t.Fatalf("uninterrupted run failed: %s", straight.Err)
				}

				// Tiny segments force many pause points; keep the last
				// snapshot taken before the run finished.
				var snap *Snapshot
				segmented := RunJob(job, RunOptions{
					SegmentCycles:   256,
					CheckpointEvery: 1024,
					Checkpoint:      func(s Snapshot) { snap = &s },
				})
				if !reflect.DeepEqual(resultBytes(t, straight), resultBytes(t, segmented)) {
					t.Fatalf("segmented run diverged from uninterrupted run")
				}
				if snap == nil {
					t.Fatalf("no checkpoint was taken (run finished before %d cycles?)", 1024)
				}
				if snap.Cycle <= 0 || snap.Cycle >= straight.Cycles {
					t.Fatalf("snapshot at cycle %d outside run (0, %d)", snap.Cycle, straight.Cycles)
				}

				// Round-trip the snapshot through its binary encoding, as a
				// restart would.
				path := filepath.Join(t.TempDir(), "job.ckpt")
				if err := WriteSnapshot(path, *snap); err != nil {
					t.Fatalf("write snapshot: %v", err)
				}
				loaded, err := ReadSnapshot(path)
				if err != nil {
					t.Fatalf("read snapshot: %v", err)
				}
				restored := RunJob(job, RunOptions{Resume: &loaded})
				if !reflect.DeepEqual(resultBytes(t, straight), resultBytes(t, restored)) {
					t.Fatalf("restored run diverged from uninterrupted run\n straight: %s\n restored: %s",
						resultBytes(t, straight), resultBytes(t, restored))
				}
			})
		}
	}
}

// TestCheckpointRestoreUnderFaultPlan repeats the restore differential with
// an armed fault plan and retry budget: dropped packets, protocol retries
// and the transient-retry attempt counter must all replay identically
// through a snapshot boundary.
func TestCheckpointRestoreUnderFaultPlan(t *testing.T) {
	job := testJob("fft", protocol.KindTree, 60)
	job.Faults = "drop=3000,timeout=200000,retries=6,backoff=64"
	job.Retries = 2

	straight := RunJob(job, RunOptions{})
	if straight.Failed() {
		t.Fatalf("uninterrupted faulty run failed: %s", straight.Err)
	}
	var snap *Snapshot
	RunJob(job, RunOptions{
		SegmentCycles:   256,
		CheckpointEvery: 2048,
		Checkpoint:      func(s Snapshot) { snap = &s },
	})
	if snap == nil {
		t.Fatalf("no checkpoint taken")
	}
	restored := RunJob(job, RunOptions{Resume: snap})
	if !reflect.DeepEqual(resultBytes(t, straight), resultBytes(t, restored)) {
		t.Fatalf("faulty restored run diverged\n straight: %s\n restored: %s",
			resultBytes(t, straight), resultBytes(t, restored))
	}
	if restored.Attempts != straight.Attempts {
		t.Fatalf("attempts diverged: %d vs %d", restored.Attempts, straight.Attempts)
	}
}

// TestSnapshotRejectsCorruption exercises the snapshot file format's
// self-checks: truncation and bit flips must surface as ErrBadSnapshot, and
// a resume from a snapshot of a different spec must be ignored (fresh run)
// rather than trusted.
func TestSnapshotRejectsCorruption(t *testing.T) {
	snap := Snapshot{Cycle: 12345, Attempt: 1, Digest: 0xdeadbeef, Job: testJob("lu", protocol.KindDirectory, 40)}
	b, err := snap.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode round-trip: %v", err)
	}
	if back.Cycle != snap.Cycle || back.Attempt != snap.Attempt || back.Digest != snap.Digest ||
		back.Job.Hash() != snap.Job.Hash() {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, snap)
	}

	for name, mut := range map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"empty":      func(b []byte) []byte { return nil },
		"bit-flip":   func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 1; return c },
		"bad-magic":  func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"short-tail": func(b []byte) []byte { return b[:len(b)-3] },
	} {
		if _, err := DecodeSnapshot(mut(b)); err == nil {
			t.Errorf("%s snapshot decoded without error", name)
		}
	}
}

// TestResumeIgnoresForeignSnapshot: a snapshot whose job spec hashes
// differently must not influence the run.
func TestResumeIgnoresForeignSnapshot(t *testing.T) {
	job := testJob("bar", protocol.KindDirectory, 40)
	foreign := testJob("fft", protocol.KindTree, 40)
	var snap *Snapshot
	RunJob(foreign, RunOptions{SegmentCycles: 256, CheckpointEvery: 1024,
		Checkpoint: func(s Snapshot) { snap = &s }})
	if snap == nil {
		t.Fatalf("no checkpoint taken for foreign job")
	}
	straight := RunJob(job, RunOptions{})
	crossed := RunJob(job, RunOptions{Resume: snap})
	if !reflect.DeepEqual(resultBytes(t, straight), resultBytes(t, crossed)) {
		t.Fatalf("foreign snapshot changed the result")
	}
}

// TestResumeRecoversFromDigestMismatch: a snapshot with a wrong digest (as
// after simulation-semantics drift between binaries) must fall back to a
// fresh, correct run instead of continuing from unverified state.
func TestResumeRecoversFromDigestMismatch(t *testing.T) {
	job := testJob("rad", protocol.KindTree, 40)
	var snap *Snapshot
	RunJob(job, RunOptions{SegmentCycles: 256, CheckpointEvery: 1024,
		Checkpoint: func(s Snapshot) { snap = &s }})
	if snap == nil {
		t.Fatalf("no checkpoint taken")
	}
	snap.Digest ^= 0x1 // simulate drift
	straight := RunJob(job, RunOptions{})
	recovered := RunJob(job, RunOptions{Resume: snap})
	if !reflect.DeepEqual(resultBytes(t, straight), resultBytes(t, recovered)) {
		t.Fatalf("digest-mismatch fallback produced a different result")
	}
}

// TestRunJobCancellationStopsPromptly: a canceled context stops the
// simulation at the next segment boundary, marks the result canceled, and
// writes a final checkpoint for later resumption.
func TestRunJobCancellationStopsPromptly(t *testing.T) {
	job := testJob("ocn", protocol.KindDirectory, 400)
	ctx, cancel := context.WithCancel(context.Background())
	var final *Snapshot
	segments := 0
	res := RunJob(job, RunOptions{
		Ctx:           ctx,
		SegmentCycles: 256,
		Progress: func(Progress) {
			if segments++; segments == 3 {
				cancel()
			}
		},
		CheckpointEvery: 1 << 40, // periodic never fires; only the cancel checkpoint
		Checkpoint:      func(s Snapshot) { final = &s },
	})
	if !res.Canceled {
		t.Fatalf("result not marked canceled: %+v", res)
	}
	if !res.Failed() {
		t.Fatalf("canceled result should carry an error")
	}
	if final == nil {
		t.Fatalf("no final checkpoint on cancel")
	}

	// The cancel-time checkpoint resumes to the full, correct result.
	straight := RunJob(job, RunOptions{})
	resumed := RunJob(job, RunOptions{Resume: final})
	if !reflect.DeepEqual(resultBytes(t, straight), resultBytes(t, resumed)) {
		t.Fatalf("resume from cancel checkpoint diverged")
	}
}

// TestCacheTreatsTruncatedEntryAsMiss is the corrupt-cache regression test:
// a deliberately truncated result file must read as a miss and be repaired
// by the next Put, never poison callers.
func TestCacheTreatsTruncatedEntryAsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	job := testJob("wns", protocol.KindDirectory, 40)
	hash := job.Hash()

	pool := &Pool{Workers: 1, Cache: cache}
	first := pool.Run([]Job{job})[0]
	if first.Failed() || first.Cached {
		t.Fatalf("priming run: %+v", first)
	}

	// Truncate the stored entry mid-file.
	matches, err := filepath.Glob(filepath.Join(dir, "*"+hash[:16]+"*"))
	if err != nil || len(matches) == 0 {
		// Entry layout may nest or rename; find any regular file instead.
		matches = nil
		filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
			if err == nil && info.Mode().IsRegular() {
				matches = append(matches, p)
			}
			return nil
		})
	}
	if len(matches) == 0 {
		t.Fatalf("no cache entry file found under %s", dir)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatalf("read entry: %v", err)
		}
		if err := os.WriteFile(m, b[:len(b)/3], 0o644); err != nil {
			t.Fatalf("truncate entry: %v", err)
		}
	}

	if _, ok := cache.Get(hash); ok {
		t.Fatalf("truncated entry served as a hit")
	}
	again := pool.Run([]Job{job})[0]
	if again.Failed() {
		t.Fatalf("re-run after truncation failed: %s", again.Err)
	}
	if again.Cached {
		t.Fatalf("truncated entry was served from cache")
	}
	if !reflect.DeepEqual(resultBytes(t, first), resultBytes(t, again)) {
		t.Fatalf("post-truncation re-run differs from original")
	}
	// And the re-run repaired the entry.
	if _, ok := cache.Get(hash); !ok {
		t.Fatalf("cache not repaired after re-run")
	}
}

// TestConcurrentIdenticalJobsSimulateOnce: many goroutines submitting the
// same spec concurrently must trigger exactly one simulation, and every
// caller must receive a byte-identical result.
func TestConcurrentIdenticalJobsSimulateOnce(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	pool := &Pool{Workers: 8, Cache: cache}
	job := testJob("ray", protocol.KindTree, 60)

	const callers = 16
	results := make([]Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := job
			j.Key = fmt.Sprintf("caller/%d", i)
			results[i] = pool.Run([]Job{j})[0]
		}(i)
	}
	wg.Wait()

	if n := pool.Simulations(); n != 1 {
		t.Fatalf("expected exactly 1 simulation, got %d", n)
	}
	want := resultBytes(t, results[0])
	for i, r := range results {
		if r.Failed() {
			t.Fatalf("caller %d failed: %s", i, r.Err)
		}
		if r.Key != fmt.Sprintf("caller/%d", i) {
			t.Fatalf("caller %d got key %q", i, r.Key)
		}
		if got := resultBytes(t, r); !reflect.DeepEqual(want, got) {
			t.Fatalf("caller %d result differs:\n want %s\n got  %s", i, want, got)
		}
	}
}
