package exec

import (
	"encoding/json"
	"reflect"
	"testing"

	"innetcc/internal/protocol"
)

// TestMetricsDoNotPerturbResults is the observational-purity guarantee:
// a job run with the observability layer attached computes exactly the
// same simulation result as the same job without it — only the Metrics
// payload differs.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	for _, base := range testBatch() {
		plain := simulate(base, 0)
		instr := base
		instr.Metrics = MetricsSpec{Enabled: true, FlightDump: true}
		traced := simulate(instr, 0)

		if traced.Metrics == nil {
			t.Fatalf("%s: no metrics payload on instrumented run", base.Key)
		}
		got := traced
		got.Metrics = nil
		plain.Metrics = nil
		if !reflect.DeepEqual(plain, got) {
			t.Errorf("%s: instrumented run diverged from plain run\nplain: %+v\ninstr: %+v", base.Key, plain, got)
		}
	}
}

// TestMetricsIdenticalAcrossParallelism checks that metrics-enabled
// batches — payloads included — are byte-identical at every worker count.
func TestMetricsIdenticalAcrossParallelism(t *testing.T) {
	jobs := testBatch()
	for i := range jobs {
		jobs[i].Metrics = MetricsSpec{Enabled: true, FlightDump: true}
	}
	marshal := func(workers int) []byte {
		p := &Pool{Workers: workers}
		b, err := json.Marshal(p.Run(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := marshal(1)
	for _, workers := range []int{2, 4} {
		if par := marshal(workers); string(par) != string(serial) {
			t.Fatalf("metrics output differs between 1 and %d workers", workers)
		}
	}
}

// TestBreakdownSumsToReportedLatency ties the latency decomposition to the
// headline numbers: for each access class, the breakdown's component sum
// equals its Total, its Total equals the reported latency-distribution sum,
// and the sample counts match.
func TestBreakdownSumsToReportedLatency(t *testing.T) {
	for _, job := range testBatch() {
		job.Metrics = MetricsSpec{Enabled: true}
		res := simulate(job, 0)
		if res.Failed() {
			t.Fatalf("%s: %s", job.Key, res.Err)
		}
		m := res.Metrics
		for _, cl := range []struct {
			name  string
			b     interface{ Sum() int64 }
			n     int64
			total int64
			dist  Dist
		}{
			{"read", m.Read, m.Read.N, m.Read.Total, res.Read},
			{"write", m.Write, m.Write.N, m.Write.Total, res.Write},
		} {
			if cl.b.Sum() != cl.total {
				t.Errorf("%s %s: components sum to %d, total is %d", job.Key, cl.name, cl.b.Sum(), cl.total)
			}
			if cl.total != int64(cl.dist.Sum) {
				t.Errorf("%s %s: breakdown total %d != reported latency sum %.0f", job.Key, cl.name, cl.total, cl.dist.Sum)
			}
			if cl.n != cl.dist.N {
				t.Errorf("%s %s: breakdown counted %d accesses, distribution %d", job.Key, cl.name, cl.n, cl.dist.N)
			}
		}
	}
}

// TestMetricsSpecChangesCacheIdentity: a metrics-enabled job must not be
// served a cached metrics-free result (and vice versa), since the payloads
// differ.
func TestMetricsSpecChangesCacheIdentity(t *testing.T) {
	a := testJob("fft", protocol.KindTree, 60)
	b := a
	b.Metrics = MetricsSpec{Enabled: true}
	if a.Hash() == b.Hash() {
		t.Fatal("metrics spec does not enter the job hash")
	}
	c := b
	c.Metrics.FlightDump = true
	if b.Hash() == c.Hash() {
		t.Fatal("flight-dump flag does not enter the job hash")
	}
}
