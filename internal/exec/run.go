package exec

import (
	"context"
	"fmt"

	"innetcc/internal/directory"
	"innetcc/internal/fault"
	"innetcc/internal/metrics"
	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
)

// DefaultSegmentCycles is the pause granularity of segmented runs: how many
// simulated cycles pass between cancellation checks, progress callbacks and
// checkpoint opportunities. Pausing is free in terms of determinism (the
// step sequence is identical to an uninterrupted run; see
// protocol.RunSegment), so the value only trades callback overhead against
// responsiveness.
const DefaultSegmentCycles = 1 << 20

// Progress is one mid-run observation of a job, delivered between
// simulation segments. The series points are present only when the job's
// MetricsSpec enabled collection.
type Progress struct {
	// Cycle is the simulated cycle reached so far.
	Cycle int64 `json:"cycle"`
	// Attempt is the current transient-retry epoch (0-based).
	Attempt int `json:"attempt"`

	// Latest non-empty bucket of each collector time series.
	InFlight   *metrics.SeriesPoint `json:"inFlight,omitempty"`
	Occupancy  *metrics.SeriesPoint `json:"occupancy,omitempty"`
	QueueDepth *metrics.SeriesPoint `json:"queueDepth,omitempty"`
}

// RunOptions controls a segmented RunJob execution. The zero value runs the
// job to completion exactly like the worker pool always has: no
// cancellation, no progress, no checkpoints.
type RunOptions struct {
	// Ctx, when non-nil, is checked between segments; once canceled the
	// run stops promptly, a final checkpoint is written (when Checkpoint
	// is set) and the Result comes back with Canceled set.
	Ctx context.Context

	// SegmentCycles is the pause granularity (DefaultSegmentCycles when
	// <= 0).
	SegmentCycles int64

	// Progress, when set, is called after every paused segment.
	Progress func(Progress)

	// Checkpoint, when set together with a positive CheckpointEvery, is
	// called with a verified-replay snapshot roughly every
	// CheckpointEvery simulated cycles, and once more on cancellation.
	CheckpointEvery int64
	Checkpoint      func(Snapshot)

	// Resume, when non-nil, restores the run from a snapshot: the
	// matching attempt is replayed deterministically to Snapshot.Cycle
	// and the recomputed state digest is verified against the snapshot
	// before the run continues. A snapshot for a different job spec, or
	// one whose digest no longer matches (the binary's simulation
	// semantics drifted), is discarded and the job runs from scratch — a
	// checkpoint is an optimization, never a correctness dependency.
	Resume *Snapshot
}

// RunJob executes one job — cacheless, poolless — with segmented execution:
// the transient-retry loop of the worker pool, plus cancellation, progress
// streaming, periodic checkpoints and snapshot resume per RunOptions.
// Results are byte-identical to Pool.Run for the same spec at every segment
// size, because pausing never changes the kernel's step sequence.
func RunJob(job Job, opt RunOptions) Result {
	if opt.Ctx == nil {
		opt.Ctx = context.Background()
	}
	resume := opt.Resume
	start := 0
	if resume != nil {
		if !resume.CompatibleWith(job) {
			resume = nil // snapshot of some other job, or stale retry budget
		} else {
			// Attempts 0..Attempt-1 already failed transiently before the
			// snapshot was taken; resume skips re-running them.
			start = resume.Attempt
		}
	}
	var res Result
	for attempt := start; ; attempt++ {
		res = runAttempt(job, attempt, opt, resume)
		resume = nil
		res.Attempts = attempt + 1
		if res.Canceled || !res.Failed() || !res.Transient || attempt >= job.Retries {
			break
		}
	}
	res.Key = job.Key
	return res
}

// simulate runs one attempt of the job uninterrupted — the pre-segmentation
// entry point, kept for the attempt-level determinism tests.
func simulate(job Job, attempt int) Result {
	return runAttempt(job, attempt, RunOptions{Ctx: context.Background()}, nil)
}

// runAttempt runs a single attempt of the job in segments. Panics anywhere
// in the protocol or network stack are recovered into the Result so one
// diverging configuration cannot take down a batch or the serving layer.
func runAttempt(job Job, attempt int, opt RunOptions, resume *Snapshot) (res Result) {
	col := collectorFor(job.Metrics)
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Sprintf("panic: %v", r), Metrics: metricsOut(col, true)}
		}
	}()

	m, hops, errRes := buildAttempt(job, attempt, col)
	if errRes != nil {
		return *errRes
	}
	defer m.Kernel.ReleaseWorkers()

	limit := m.Kernel.Now() + job.maxCycles()

	// Snapshot resume: replay deterministically to the checkpoint cycle,
	// then prove we arrived at the checkpointed state by recomputing the
	// digest. The replay target is always a paused (non-terminal) cycle,
	// so reaching a terminal state early is itself a verification failure.
	if resume != nil && resume.Attempt == attempt && resume.Cycle > m.Kernel.Now() {
		done, _ := m.RunSegment(resume.Cycle, limit)
		if done || m.Kernel.Now() != resume.Cycle || m.StateDigest() != resume.Digest {
			m.Kernel.ReleaseWorkers()
			return runAttempt(job, attempt, opt, nil)
		}
	}

	seg := opt.SegmentCycles
	if seg <= 0 {
		seg = DefaultSegmentCycles
	}
	nextCkpt := int64(-1)
	if opt.Checkpoint != nil && opt.CheckpointEvery > 0 {
		nextCkpt = m.Kernel.Now() + opt.CheckpointEvery
	}
	snap := func() Snapshot {
		return Snapshot{Cycle: m.Kernel.Now(), Attempt: attempt, Digest: m.StateDigest(), Job: job}
	}

	var runErr error
	for {
		if err := opt.Ctx.Err(); err != nil {
			if opt.Checkpoint != nil {
				opt.Checkpoint(snap())
			}
			return Result{
				Err:      "exec: canceled: " + err.Error(),
				Canceled: true,
				Cycles:   m.Kernel.Now(),
				Metrics:  metricsOut(col, false),
			}
		}
		stopAt := m.Kernel.Now() + seg
		if nextCkpt >= 0 && nextCkpt < stopAt {
			stopAt = nextCkpt
		}
		done, err := m.RunSegment(stopAt, limit)
		if done {
			runErr = err
			break
		}
		if opt.Progress != nil {
			opt.Progress(progressOf(m, col, attempt))
		}
		if nextCkpt >= 0 && m.Kernel.Now() >= nextCkpt {
			opt.Checkpoint(snap())
			nextCkpt = m.Kernel.Now() + opt.CheckpointEvery
		}
	}
	if runErr != nil {
		return Result{
			Err:       fmt.Sprintf("%s %s: %v", job.Profile.Name, job.Engine, runErr),
			Transient: fault.Transient(runErr),
			Metrics:   metricsOut(col, true),
		}
	}
	if opt.Progress != nil {
		opt.Progress(progressOf(m, col, attempt))
	}

	res = Result{
		Cycles:        m.Kernel.Now(),
		LocalHits:     m.LocalHits,
		Read:          dist(&m.Lat.Read, m.ReadSamples),
		Write:         dist(&m.Lat.Write, m.WriteSamples),
		DeadlockRead:  dist(&m.Lat.DeadlockRead, nil),
		DeadlockWrite: dist(&m.Lat.DeadlockWrite, nil),
		Hops:          hops,
		Metrics:       metricsOut(col, job.Metrics.FlightDump),
	}
	if names := m.Counters.Names(); len(names) > 0 {
		res.Counters = make(map[string]int64, len(names))
		for _, n := range names {
			res.Counters[n] = m.Counters.Get(n)
		}
	}
	return res
}

// buildAttempt constructs the machine for one attempt of the job: seed
// derivation, fault plan, trace generation, engine wiring and the optional
// hop-study recorder. Attempt 0 uses the job seed; retry attempts derive a
// sub-seed from it, so every attempt is reproducible in isolation. A non-nil
// error Result means the job cannot run.
func buildAttempt(job Job, attempt int, col *metrics.Collector) (*protocol.Machine, *HopAgg, *Result) {
	seed := job.Seed()
	if attempt > 0 {
		seed = DeriveSeed(seed, fmt.Sprintf("retry/%d", attempt))
	}
	cfg := job.Config
	cfg.Seed = seed
	var plan *fault.Plan
	if job.Faults != "" {
		fspec, err := fault.ParseSpec(job.Faults)
		if err != nil {
			return nil, nil, &Result{Err: "exec: bad fault spec: " + err.Error()}
		}
		cfg.RetryTimeout = fspec.Timeout
		cfg.RetryBudget = fspec.Budget
		cfg.RetryBackoff = fspec.Backoff
		cfg.ProbeInterval = fspec.Probe
		plan = &fault.Plan{Spec: fspec, Seed: DeriveSeed(seed, "fault")}
	}
	m, err := protocol.Build(protocol.Spec{
		Config:  cfg,
		Trace:   trace.Generate(job.Profile, cfg.Nodes(), job.Accesses, seed),
		Think:   job.Profile.Think,
		Engine:  job.Engine,
		Metrics: col,
		Faults:  plan,
		Shards:  job.Shards,
	})
	if err != nil {
		return nil, nil, &Result{Err: err.Error(), Metrics: metricsOut(col, true)}
	}
	m.ReadSamples = &stats.Sampler{}
	m.WriteSamples = &stats.Sampler{}

	var hops *HopAgg
	if job.CollectHops {
		e, ok := m.Engine().(*directory.Engine)
		if !ok {
			return nil, nil, &Result{Err: fmt.Sprintf("exec: CollectHops requires the directory engine, got %s", job.Engine)}
		}
		hops = &HopAgg{}
		e.HopRecorder = func(write bool, base, ideal int) {
			if base == 0 {
				return
			}
			if write {
				hops.WriteBase += float64(base)
				hops.WriteIdeal += float64(ideal)
				hops.Writes++
			} else {
				hops.ReadBase += float64(base)
				hops.ReadIdeal += float64(ideal)
				hops.Reads++
			}
		}
	}
	return m, hops, nil
}

func progressOf(m *protocol.Machine, col *metrics.Collector, attempt int) Progress {
	pr := Progress{Cycle: m.Kernel.Now(), Attempt: attempt}
	if col != nil {
		if p, ok := col.InFlight.Last(); ok {
			pr.InFlight = &p
		}
		if p, ok := col.Occupancy.Last(); ok {
			pr.Occupancy = &p
		}
		if p, ok := col.QueueDepth.Last(); ok {
			pr.QueueDepth = &p
		}
	}
	return pr
}

// dist folds an accumulator (and, when available, its sample set for
// percentiles) into the serializable Dist form. Summarize extracts all
// three percentiles off one sort of the sample vector.
func dist(a *stats.Accumulator, s *stats.Sampler) Dist {
	d := Dist{N: a.N, Sum: a.Sum, Min: a.MinV, Max: a.MaxV}
	if s != nil && s.N() > 0 {
		sum := s.Summarize()
		d.P50, d.P95, d.P99 = sum.P50, sum.P95, sum.P99
	}
	return d
}
