package exec

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

func testJob(bench string, kind protocol.EngineKind, accesses int) Job {
	p, err := trace.ProfileByName(bench)
	if err != nil {
		panic(err)
	}
	return Job{
		Key:       bench + "/" + kind.String(),
		Engine:    kind,
		Config:    protocol.DefaultConfig(),
		Profile:   p,
		Accesses:  accesses,
		SuiteSeed: 42,
	}
}

func testBatch() []Job {
	return []Job{
		testJob("fft", protocol.KindDirectory, 60),
		testJob("fft", protocol.KindTree, 60),
		testJob("bar", protocol.KindDirectory, 60),
		testJob("bar", protocol.KindTree, 60),
		testJob("wsp", protocol.KindTree, 60),
	}
}

func TestDeriveSeedPureAndDistinct(t *testing.T) {
	a := DeriveSeed(42, "fft/16n/400a")
	if a != DeriveSeed(42, "fft/16n/400a") {
		t.Fatal("derivation not a pure function")
	}
	seen := map[uint64]string{42: "suite seed itself"}
	for _, key := range []string{"fft/16n/400a", "fft/16n/401a", "fft/64n/400a", "lu/16n/400a", ""} {
		s := DeriveSeed(42, key)
		if s == 0 {
			t.Errorf("zero seed for key %q", key)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %q and %q", prev, key)
		}
		seen[s] = key
	}
	if DeriveSeed(43, "fft/16n/400a") == a {
		t.Error("suite seed does not influence derivation")
	}
}

func TestJobSeedIgnoresWorkerIrrelevantFields(t *testing.T) {
	dir := testJob("fft", protocol.KindDirectory, 60)
	tree := testJob("fft", protocol.KindTree, 60)
	tree.Key = "another-label"
	tree.Config.TreeEntries = 512 // config knobs must not reseed the trace
	if dir.Seed() != tree.Seed() {
		t.Fatal("paired jobs over the same trace must share a seed")
	}
	other := testJob("bar", protocol.KindDirectory, 60)
	if dir.Seed() == other.Seed() {
		t.Fatal("different benchmarks must not share a seed")
	}
}

func TestHashCoversSpecNotLabel(t *testing.T) {
	a := testJob("fft", protocol.KindTree, 60)
	b := a
	b.Key = "renamed"
	if a.Hash() != b.Hash() {
		t.Error("display label must not change the cache identity")
	}
	c := a
	c.Config.TreeEntries = 512
	d := a
	d.SuiteSeed = 7
	e := a
	e.Engine = protocol.KindDirectory
	for i, other := range []Job{c, d, e} {
		if other.Hash() == a.Hash() {
			t.Errorf("variant %d shares a hash with the original", i)
		}
	}
}

// The batch result must be identical at every parallelism level: same
// values, same order.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	jobs := testBatch()
	serial := (&Pool{Workers: 1}).Run(jobs)
	parallel := (&Pool{Workers: 8}).Run(jobs)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\n serial: %+v\n parallel: %+v", serial, parallel)
	}
	for i, r := range serial {
		if r.Failed() {
			t.Errorf("job %d (%s) failed: %s", i, r.Key, r.Err)
		}
		if r.Read.N == 0 || r.Write.N == 0 {
			t.Errorf("job %d (%s) recorded no latencies", i, r.Key)
		}
		if r.Read.P50 == 0 || r.Read.P99 < r.Read.P50 {
			t.Errorf("job %d (%s) percentiles inconsistent: p50=%g p99=%g",
				i, r.Key, r.Read.P50, r.Read.P99)
		}
	}
}

// One failing job — bad config, exceeded cycle bound, or a panic inside
// the simulation — must fail only its own row.
func TestFailureIsolation(t *testing.T) {
	bad := testJob("fft", protocol.KindTree, 60)
	bad.Config.TreeEntries = 0 // rejected by Config.Validate
	slow := testJob("bar", protocol.KindTree, 60)
	slow.MaxCycles = 10 // guaranteed to exceed the cycle bound
	panicky := testJob("wsp", protocol.KindTree, 60)
	panicky.Accesses = -1 // panics inside trace generation
	jobs := []Job{testJob("fft", protocol.KindDirectory, 60), bad, slow, panicky, testJob("bar", protocol.KindDirectory, 60)}

	rs := (&Pool{Workers: 4}).Run(jobs)
	if rs[0].Failed() || rs[4].Failed() {
		t.Fatalf("healthy jobs failed: %q / %q", rs[0].Err, rs[4].Err)
	}
	if !rs[1].Failed() {
		t.Error("invalid config job did not fail")
	}
	if !rs[2].Failed() || !strings.Contains(rs[2].Err, "stuck") {
		t.Errorf("cycle-bound job error = %q, want stuck report", rs[2].Err)
	}
	if !rs[3].Failed() || !strings.Contains(rs[3].Err, "panic") {
		t.Errorf("panicking job error = %q, want recovered panic", rs[3].Err)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testBatch()
	cold := (&Pool{Workers: 2, Cache: cache}).Run(jobs)
	if hits, misses := cache.Stats(); hits != 0 || misses != int64(len(jobs)) {
		t.Fatalf("cold run: %d hits, %d misses", hits, misses)
	}

	cache2, err := OpenCache(dir) // fresh handle, as a new process would open
	if err != nil {
		t.Fatal(err)
	}
	warm := (&Pool{Workers: 2, Cache: cache2}).Run(jobs)
	if hits, misses := cache2.Stats(); hits != int64(len(jobs)) || misses != 0 {
		t.Fatalf("warm run: %d hits, %d misses", hits, misses)
	}
	for i := range cold {
		if !warm[i].Cached {
			t.Errorf("job %d not served from cache", i)
		}
		cold[i].Cached, warm[i].Cached = false, false
		if !reflect.DeepEqual(cold[i], warm[i]) {
			t.Errorf("job %d cached result differs:\n cold: %+v\n warm: %+v", i, cold[i], warm[i])
		}
	}
}

func TestCacheSurvivesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := testJob("fft", protocol.KindTree, 40)
	first := (&Pool{Workers: 1, Cache: cache}).Run([]Job{job})
	if err := os.WriteFile(filepath.Join(dir, job.Hash()+".json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	again := (&Pool{Workers: 1, Cache: cache}).Run([]Job{job})
	if again[0].Cached {
		t.Fatal("corrupt entry served as a hit")
	}
	first[0].Cached, again[0].Cached = false, false
	if !reflect.DeepEqual(first[0], again[0]) {
		t.Fatal("recomputed result differs from original")
	}
	// The recompute must have repaired the entry.
	final := (&Pool{Workers: 1, Cache: cache}).Run([]Job{job})
	if !final[0].Cached {
		t.Fatal("repaired entry not served from cache")
	}
}

// Failed jobs are cached too: their failures are as deterministic as any
// other result.
func TestCacheStoresFailures(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	slow := testJob("fft", protocol.KindTree, 40)
	slow.MaxCycles = 10
	(&Pool{Workers: 1, Cache: cache}).Run([]Job{slow})
	rs := (&Pool{Workers: 1, Cache: cache}).Run([]Job{slow})
	if !rs[0].Cached || !rs[0].Failed() {
		t.Fatalf("cached failure not replayed: cached=%v err=%q", rs[0].Cached, rs[0].Err)
	}
}
