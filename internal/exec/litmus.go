package exec

import (
	"context"
	"runtime"
	"sync"

	"innetcc/internal/litmus"
)

// LitmusResult is one litmus run's outcome in a batch: the spec that ran,
// the oracle failures it tripped (empty = passed), and Err for specs that
// could not run at all (malformed program, bad fault string).
type LitmusResult struct {
	Spec     litmus.RunSpec   `json:"spec"`
	Failures []litmus.Failure `json:"failures,omitempty"`
	Err      string           `json:"err,omitempty"`
}

// Failed reports whether the run found anything.
func (r LitmusResult) Failed() bool { return r.Err != "" || len(r.Failures) > 0 }

// RunLitmusBatch fans a litmus campaign across worker goroutines, the same
// index-channel discipline as Pool.Run: results come back in submission
// order regardless of parallelism, so campaign output is identical at
// every worker count. workers <= 0 means GOMAXPROCS. A canceled context
// marks the remaining specs with Err and returns without running them;
// litmus runs are short, so in-flight ones simply finish.
func RunLitmusBatch(ctx context.Context, workers int, specs []litmus.RunSpec) []LitmusResult {
	results := make([]LitmusResult, len(specs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	runOne := func(i int) {
		results[i].Spec = specs[i]
		if err := ctx.Err(); err != nil {
			results[i].Err = "exec: canceled: " + err.Error()
			return
		}
		fails, err := litmus.Run(specs[i])
		if err != nil {
			results[i].Err = err.Error()
			return
		}
		results[i].Failures = fails
	}
	if workers <= 1 {
		for i := range specs {
			runOne(i)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
