// Package exec is the experiment orchestration subsystem: it runs batches
// of independent simulations across worker goroutines with deterministic
// seeding, ordered result collection, per-job failure isolation and an
// optional on-disk result cache.
//
// A Job is a fully declarative simulation spec — protocol kind,
// configuration, trace profile, access count and suite seed — so that two
// properties hold by construction:
//
//   - Determinism: a job's random stream is derived (splitmix64) from the
//     suite seed and the job's trace identity, never from worker order or
//     scheduling, and results are collected by submission index, so a batch
//     produces byte-identical output at any parallelism level.
//   - Cacheability: a job's result is a pure function of its spec, so
//     results can be keyed by a content hash of the spec and replayed from
//     disk across processes and binary rebuilds.
package exec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// DefaultMaxCycles bounds every simulation; a run hitting it indicates a
// protocol bug (or a diverging configuration) and fails that job's row.
const DefaultMaxCycles = 200_000_000

// specVersion invalidates cached results when the result schema or the
// simulation semantics change incompatibly. Bump it on any change that
// alters what a given spec computes.
const specVersion = 6 // v6: topology-abstract interconnect; Config serializes a topology string (and the Multicast switch) instead of mesh dimensions

// Job describes one hermetic simulation: which engine to run, on which
// configuration, over which synthetic trace. Everything the simulation
// observes is derived from these fields.
type Job struct {
	// Key is a display label for reporting ("fig5/bar/tree"); it does not
	// influence the simulation, its seed, or its cache identity.
	Key string

	// Engine selects the coherence engine.
	Engine protocol.EngineKind

	// Config is the machine configuration. Its Seed field is ignored: the
	// run seed is always derived from SuiteSeed and the trace identity.
	Config protocol.Config

	// Profile and Accesses define the synthetic trace.
	Profile  trace.Profile
	Accesses int

	// SuiteSeed is the experiment-level seed all per-job seeds derive
	// from.
	SuiteSeed uint64

	// MaxCycles bounds the simulation (DefaultMaxCycles if zero).
	MaxCycles int64

	// CollectHops records the Section 1 oracle hop comparison (directory
	// protocol only).
	CollectHops bool

	// Metrics requests the cycle-level observability payload
	// (Result.Metrics). Purely observational: enabling it never changes
	// the simulation outcome, only what the result carries.
	Metrics MetricsSpec

	// Faults, when non-empty, is a fault.ParseSpec string arming
	// deterministic fault injection and the protocol's retry knobs. The
	// plan seed derives from the job seed, so a faulty run is as
	// reproducible as a clean one. Empty means no injection.
	Faults string

	// Retries is how many times a transiently failed attempt (hang
	// watchdog, retry budget exhausted) is re-run with a derived sub-seed
	// before the failure is reported. Deterministic failures (panics,
	// validation errors, coherence violations) are never retried.
	Retries int

	// Shards is the number of worker shards one simulation is split
	// across: 0 picks automatically (sim.AutoShards plus the kernel's
	// occupancy-driven width tuner, which keeps small or idle simulations
	// effectively serial), 1 forces serial, higher counts are explicit.
	// The sharded engine is byte-identical to serial execution at every
	// shard count, so Shards is a pure throughput knob: it is
	// deliberately excluded from the cache hash, and a result computed at
	// any shard count serves every other.
	Shards int
}

// SeedKey identifies the job's random stream: jobs over the same trace
// (same benchmark, node count and length) share a seed, so paired runs —
// baseline versus tree on one benchmark, or sweep variants of one
// configuration knob — see the identical trace and think-time draws.
func (j Job) SeedKey() string {
	return fmt.Sprintf("%s/%dn/%da", j.Profile.Name, j.Config.Nodes(), j.Accesses)
}

// Seed returns the derived per-job seed.
func (j Job) Seed() uint64 {
	return DeriveSeed(j.SuiteSeed, j.SeedKey())
}

// DeriveSeed mixes the suite seed with a job key through splitmix64. The
// derivation is a pure function of its inputs — worker identity, scheduling
// and submission order never enter — which is what makes parallel runs
// reproduce serial ones exactly.
func DeriveSeed(suite uint64, key string) uint64 {
	// FNV-1a over the key, then two splitmix64 rounds over the sum.
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := suite + h
	x = splitmix(x + 0x9E3779B97F4A7C15)
	x = splitmix(x + 0x9E3779B97F4A7C15)
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return x
}

func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashSpec is the canonical cache identity of a job: every field the
// simulation result depends on, and nothing else (Key and Shards are
// excluded — the label never enters the simulation and the sharded engine
// computes shard-count-independent results; the config's Seed field is
// zeroed because the run seed derives from SuiteSeed).
type hashSpec struct {
	Version     int
	Engine      protocol.EngineKind
	Config      protocol.Config
	Profile     trace.Profile
	Accesses    int
	SuiteSeed   uint64
	MaxCycles   int64
	CollectHops bool
	Metrics     MetricsSpec
	Faults      string
	Retries     int
}

// Hash returns the content hash of the job spec, used as the cache key.
// Two jobs with equal hashes compute identical results.
func (j Job) Hash() string {
	spec := hashSpec{
		Version:     specVersion,
		Engine:      j.Engine,
		Config:      j.Config,
		Profile:     j.Profile,
		Accesses:    j.Accesses,
		SuiteSeed:   j.SuiteSeed,
		MaxCycles:   j.maxCycles(),
		CollectHops: j.CollectHops,
		Metrics:     j.Metrics,
		Faults:      j.Faults,
		Retries:     j.Retries,
	}
	spec.Config.Seed = 0
	b, err := json.Marshal(spec) // struct marshal: deterministic field order
	if err != nil {
		panic("exec: unmarshalable job spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func (j Job) maxCycles() int64 {
	if j.MaxCycles > 0 {
		return j.MaxCycles
	}
	return DefaultMaxCycles
}

// Dist is a serializable latency distribution: the accumulator moments plus
// the tail percentiles the evaluation reports.
type Dist struct {
	N             int64
	Sum, Min, Max float64
	P50, P95, P99 float64
}

// Mean returns the distribution mean (0 when empty).
func (d Dist) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return d.Sum / float64(d.N)
}

// HopAgg aggregates the Section 1 oracle hop study: total baseline and
// ideal hop counts over reads and writes.
type HopAgg struct {
	ReadBase, ReadIdeal   float64
	WriteBase, WriteIdeal float64
	Reads, Writes         int64
}

// Result is the outcome of one job. It is what the on-disk cache stores,
// so it must carry everything any experiment driver reads from a run.
type Result struct {
	// Err is non-empty when the job failed (simulation error, cycle-bound
	// exceeded, or a recovered panic); all other fields are then zero
	// except Metrics, which carries the partial capture for post-mortem.
	Err string `json:",omitempty"`

	Cycles    int64 // simulated cycles at quiescence
	LocalHits int64

	Read, Write   Dist
	DeadlockRead  Dist `json:",omitempty"`
	DeadlockWrite Dist `json:",omitempty"`

	Counters map[string]int64 `json:",omitempty"`
	Hops     *HopAgg          `json:",omitempty"`

	// Metrics is the observability payload (present when the job's
	// MetricsSpec enabled it). On failure it still carries whatever the
	// collector captured up to the fault, including the flight ring.
	Metrics *MetricsOut `json:",omitempty"`

	// Attempts is how many times the job was simulated (1 for a clean
	// first run; >1 when transient failures were retried). Transient
	// reports whether the final error was a transient fault-layer failure
	// — a hang or an exhausted retry budget — rather than a deterministic
	// one; it is false on success.
	Attempts  int  `json:",omitempty"`
	Transient bool `json:",omitempty"`

	// Key mirrors the job's display label; Cached reports whether the
	// result was served from the on-disk cache (or shared from a
	// concurrent identical run). Canceled reports that the run was stopped
	// by context cancellation before finishing — a canceled Result is
	// partial and must never be cached. None of these are persisted.
	Key      string `json:"-"`
	Cached   bool   `json:"-"`
	Canceled bool   `json:"-"`
}

// Failed reports whether the job failed.
func (r Result) Failed() bool { return r.Err != "" }

// DeadlockShare returns the percentage of read and write latency spent in
// deadlock detection and recovery (Table 4's metric).
func (r Result) DeadlockShare() (readPct, writePct float64) {
	if r.Read.Sum > 0 {
		readPct = 100 * r.DeadlockRead.Sum / r.Read.Sum
	}
	if r.Write.Sum > 0 {
		writePct = 100 * r.DeadlockWrite.Sum / r.Write.Sum
	}
	return readPct, writePct
}

// Counter returns the named protocol counter (0 if absent).
func (r Result) Counter(name string) int64 { return r.Counters[name] }
