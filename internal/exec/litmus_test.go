package exec

import (
	"context"
	"reflect"
	"testing"

	"innetcc/internal/litmus"
	"innetcc/internal/protocol"
)

// TestRunLitmusBatchDeterministic pins the campaign contract: results come
// back in submission order with identical content at every worker count,
// and a run with a seeded defect surfaces its failures in the batch.
func TestRunLitmusBatchDeterministic(t *testing.T) {
	var specs []litmus.RunSpec
	for seed := uint64(1); seed <= 6; seed++ {
		for _, eng := range []protocol.EngineKind{protocol.KindDirectory, protocol.KindTree} {
			specs = append(specs, litmus.RunSpec{Engine: eng, Seed: seed, Program: litmus.Generate(seed)})
		}
	}
	// One seeded-defect spec and one malformed spec mixed in.
	specs = append(specs, litmus.RunSpec{
		Engine: protocol.KindTree, Seed: 1, Bug: "skip-invalidate",
		Program: litmus.Program{Topology: "mesh:2x2", Ops: []litmus.Op{
			{Node: 1, Addr: 0}, {Node: 2, Addr: 1}, {Node: 2, Addr: 0, Write: true}}},
	})
	specs = append(specs, litmus.RunSpec{Engine: protocol.KindTree, Seed: 1, Faults: "bogus=1",
		Program: litmus.Program{Topology: "mesh:2x2", Ops: []litmus.Op{{Node: 0, Addr: 0}}}})

	serial := RunLitmusBatch(context.Background(), 1, specs)
	if n := len(serial); n != len(specs) {
		t.Fatalf("got %d results for %d specs", n, len(specs))
	}
	for i, r := range serial[:len(serial)-2] {
		if r.Failed() {
			t.Errorf("clean spec %d failed: %+v", i, r)
		}
	}
	if bug := serial[len(serial)-2]; !bug.Failed() || len(bug.Failures) == 0 {
		t.Errorf("seeded-defect spec did not fail: %+v", bug)
	}
	if bad := serial[len(serial)-1]; bad.Err == "" {
		t.Errorf("malformed spec did not error: %+v", bad)
	}
	for _, workers := range []int{0, 3, 16} {
		par := RunLitmusBatch(context.Background(), workers, specs)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: batch results diverge from serial", workers)
		}
	}
}

// TestRunLitmusBatchCancel pins that a canceled context marks the
// remaining specs instead of running them.
func TestRunLitmusBatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []litmus.RunSpec{
		{Engine: protocol.KindTree, Seed: 1, Program: litmus.Generate(1)},
		{Engine: protocol.KindTree, Seed: 2, Program: litmus.Generate(2)},
	}
	for i, r := range RunLitmusBatch(ctx, 2, specs) {
		if r.Err == "" {
			t.Errorf("result %d: want cancellation error, got %+v", i, r)
		}
	}
}
