package exec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Cache is an on-disk result store keyed by Job.Hash. Layout: one
// <hash>.json file per result under the cache directory, written
// atomically (temp file + rename), so concurrent workers — and concurrent
// processes sharing a cache directory — never observe partial entries.
// Entries never go stale by mutation: a job's hash covers every input its
// result depends on (including a schema version), so any semantic change
// keys new files and old ones are simply never read again.
type Cache struct {
	dir            string
	hits, misses   atomic.Int64
	writeFailures  atomic.Int64
	decodeFailures atomic.Int64
}

// OpenCache opens (creating if necessary) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exec: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// Get returns the cached result for hash, if present and decodable.
func (c *Cache) Get(hash string) (Result, bool) {
	b, err := os.ReadFile(c.path(hash))
	if err != nil {
		c.misses.Add(1)
		return Result{}, false
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		// A corrupt entry (interrupted writer predating atomic rename,
		// disk damage) is treated as a miss and overwritten by Put.
		c.decodeFailures.Add(1)
		c.misses.Add(1)
		return Result{}, false
	}
	c.hits.Add(1)
	return r, true
}

// Put stores the result under hash. Storage failures are recorded but not
// surfaced: the caller already holds the computed result, and a cold cache
// next run is strictly a performance matter.
func (c *Cache) Put(hash string, r Result) {
	b, err := json.Marshal(r)
	if err != nil {
		c.writeFailures.Add(1)
		return
	}
	tmp, err := os.CreateTemp(c.dir, hash+".tmp*")
	if err != nil {
		c.writeFailures.Add(1)
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.writeFailures.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
		c.writeFailures.Add(1)
	}
}

// Stats reports cache traffic since Open.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
