package exec

import (
	"context"
	"strings"
	"testing"

	"innetcc/internal/protocol"
)

// faultJob arms a job with a fault spec the simulate layer parses into the
// plan and recovery knobs.
func faultJob(spec string, retries int) Job {
	j := testJob("fft", protocol.KindTree, 60)
	j.Faults = spec
	j.Retries = retries
	return j
}

func TestFaultyJobCompletesWithRecovery(t *testing.T) {
	j := faultJob("drop=3000,timeout=200000,retries=6,backoff=64", 0)
	res := (&Pool{}).runOne(context.Background(), j)
	if res.Failed() {
		t.Fatalf("drop-plan job failed: %s", res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (completed on first attempt)", res.Attempts)
	}
	if res.Transient {
		t.Fatal("successful run marked transient")
	}
}

func TestTransientFailureClassifiedAndRetried(t *testing.T) {
	// Full-rate drop with a zero in-run retry budget: every attempt fails
	// fast with RetryExhaustedError, which must classify transient and be
	// re-run with derived sub-seeds until the job-level budget is spent.
	j := faultJob("drop=1000000,timeout=1000,retries=0,backoff=16", 2)
	res := (&Pool{}).runOne(context.Background(), j)
	if !res.Failed() {
		t.Fatal("all-drop job succeeded")
	}
	if !res.Transient {
		t.Fatalf("retry exhaustion not classified transient: %s", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (1 + 2 retries)", res.Attempts)
	}
	if !strings.Contains(res.Err, "retry budget exhausted") {
		t.Fatalf("Err = %q, want a typed retry-exhaustion message", res.Err)
	}
}

func TestDeterministicFailureNotRetried(t *testing.T) {
	j := testJob("fft", protocol.KindTree, 60)
	j.Config.TreeEntries = 0 // rejected by Config.Validate on every attempt
	j.Retries = 3
	res := (&Pool{}).runOne(context.Background(), j)
	if !res.Failed() {
		t.Fatal("invalid config job succeeded")
	}
	if res.Transient {
		t.Fatalf("validation failure classified transient: %s", res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (deterministic failures never retry)", res.Attempts)
	}
}

func TestBadFaultSpecFailsJob(t *testing.T) {
	res := (&Pool{}).runOne(context.Background(), faultJob("drop=banana", 0))
	if !res.Failed() || !strings.Contains(res.Err, "bad fault spec") {
		t.Fatalf("Err = %q, want fault-spec parse error", res.Err)
	}
	if res.Transient {
		t.Fatal("spec parse error classified transient")
	}
}

func TestHashCoversFaultFields(t *testing.T) {
	base := testJob("fft", protocol.KindTree, 60)
	withFaults := base
	withFaults.Faults = "drop=500"
	withRetries := base
	withRetries.Retries = 2
	if base.Hash() == withFaults.Hash() {
		t.Error("fault spec not part of the cache identity")
	}
	if base.Hash() == withRetries.Hash() {
		t.Error("retry budget not part of the cache identity")
	}
}

// TestFaultRunsAreDeterministic: the same faulty job computes the identical
// result twice — the fault schedule and the retry sequence both derive from
// the job seed.
func TestFaultRunsAreDeterministic(t *testing.T) {
	j := faultJob("drop=3000,timeout=200000,retries=6,backoff=64", 1)
	a := (&Pool{}).runOne(context.Background(), j)
	b := (&Pool{}).runOne(context.Background(), j)
	if a.Err != b.Err || a.Cycles != b.Cycles || a.Attempts != b.Attempts {
		t.Fatalf("faulty runs diverged: %+v vs %+v", a, b)
	}
	if a.Counter("fault.drops") != b.Counter("fault.drops") ||
		a.Counter("retry.reissues") != b.Counter("retry.reissues") {
		t.Fatalf("fault counters diverged: drops %d vs %d, reissues %d vs %d",
			a.Counter("fault.drops"), b.Counter("fault.drops"),
			a.Counter("retry.reissues"), b.Counter("retry.reissues"))
	}
}
