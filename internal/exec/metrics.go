package exec

import (
	"innetcc/internal/metrics"
	"innetcc/internal/network"
)

// MetricsSpec is a job's observability request. It is part of the job's
// cache identity (enabling metrics changes what the Result carries, never
// what the simulation computes: all probes are purely observational, so
// latency tables and counters are byte-identical with metrics on or off).
type MetricsSpec struct {
	// Enabled attaches a metrics.Collector to the run and fills
	// Result.Metrics.
	Enabled bool

	// FlightDump includes the flight-recorder event ring in the result
	// even when the job succeeds. Failed jobs always carry the ring: the
	// recorded tail is exactly the post-mortem one wants.
	FlightDump bool

	// FlightSize and SeriesBucket override the collector defaults
	// (metrics.Options) when positive.
	FlightSize   int
	SeriesBucket int64
}

// LinkMetrics is one router output port's aggregate NoC counters.
type LinkMetrics struct {
	// Dir names the port (N/S/E/W/L for the ejection port).
	Dir string

	// BusyCycles is the number of cycles the link spent serializing flits;
	// divided by MetricsOut.Cycles it is the link utilization.
	BusyCycles int64

	// Grants counts switch-allocation wins on this port.
	Grants int64

	// SerialWait is the total head-packet cycles spent waiting for an
	// in-progress serialization on this port to finish.
	SerialWait int64
}

// RouterMetrics is one router's aggregate NoC counters.
type RouterMetrics struct {
	Node int

	// PolicyStalls counts protocol-engine Stall decisions taken at this
	// router (tree-cache busy lines, home-node conflicts).
	PolicyStalls int64

	// Links holds per-output-port counters, indexed by network.Dir.
	Links []LinkMetrics

	// QueueSum is the per-input-port occupancy integral (queue length
	// summed over every cycle and virtual channel); divided by
	// MetricsOut.Cycles it is the mean queue depth. Input ports 0-3 are
	// the mesh directions, 4 the injection port, 5 the protocol-spawn
	// port.
	QueueSum []int64
}

// Util returns the port's link utilization over the run (0 when the run
// recorded no cycles).
func (l LinkMetrics) Util(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(l.BusyCycles) / float64(cycles)
}

// MetricsOut is the serializable observability payload of one job: the
// latency breakdown, protocol event counters, per-router NoC aggregates,
// cycle-bucketed time series, and (for failed or FlightDump jobs) the
// flight-recorder tail.
type MetricsOut struct {
	// Cycles is the simulated cycle count the NoC aggregates cover.
	Cycles int64

	// Read and Write decompose completed-access latency into queueing,
	// serialization, traversal and controller-service cycle sums; each
	// class's components sum exactly to its Total.
	Read, Write metrics.BreakdownClass

	// Counters holds the named protocol event totals (tree_hit,
	// tree_miss, hops_saved, dir_fwd, ...); zero counters are omitted.
	Counters map[string]int64 `json:",omitempty"`

	// Routers holds per-router NoC aggregates, indexed by node ID.
	Routers []RouterMetrics `json:",omitempty"`

	// Cycle-bucketed time series: packets in flight, engine-specific
	// occupancy (directory entries / tree-cache lines) and request queue
	// depth.
	InFlight   []metrics.SeriesPoint `json:",omitempty"`
	Occupancy  []metrics.SeriesPoint `json:",omitempty"`
	QueueDepth []metrics.SeriesPoint `json:",omitempty"`

	// Flight is the flight-recorder ring, oldest first; FlightTotal is
	// the number of events recorded over the whole run (>= len(Flight)
	// when the ring wrapped).
	Flight      []metrics.Event `json:",omitempty"`
	FlightTotal uint64          `json:",omitempty"`
}

// collectorFor builds the job's collector, or nil when metrics are off.
func collectorFor(spec MetricsSpec) *metrics.Collector {
	if !spec.Enabled {
		return nil
	}
	return metrics.New(metrics.Options{
		FlightSize:   spec.FlightSize,
		SeriesBucket: spec.SeriesBucket,
	})
}

// metricsOut folds a collector into the serializable result payload.
// includeFlight attaches the event ring (FlightDump jobs and failures).
func metricsOut(c *metrics.Collector, includeFlight bool) *MetricsOut {
	if c == nil {
		return nil
	}
	out := &MetricsOut{
		Read:       c.Breakdown.Read,
		Write:      c.Breakdown.Write,
		InFlight:   c.InFlight.Points(),
		Occupancy:  c.Occupancy.Points(),
		QueueDepth: c.QueueDepth.Points(),
	}
	for k := metrics.Counter(0); k < metrics.NumCounters; k++ {
		if v := c.Get(k); v != 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64, int(metrics.NumCounters))
			}
			out.Counters[k.String()] = v
		}
	}
	if n := c.NoC; n != nil {
		out.Cycles = n.Cycles
		out.Routers = make([]RouterMetrics, n.Routers)
		for r := 0; r < n.Routers; r++ {
			rm := RouterMetrics{
				Node:         r,
				PolicyStalls: n.PolicyStalls[r],
				Links:        make([]LinkMetrics, n.OutPorts),
				QueueSum:     make([]int64, n.InPorts),
			}
			for p := 0; p < n.OutPorts; p++ {
				oi := n.OutIdx(r, p)
				rm.Links[p] = LinkMetrics{
					Dir:        network.Dir(p).String(),
					BusyCycles: n.LinkBusy[oi],
					Grants:     n.Grants[oi],
					SerialWait: n.SerialWait[oi],
				}
			}
			for p := 0; p < n.InPorts; p++ {
				for vc := 0; vc < n.VCs; vc++ {
					rm.QueueSum[p] += n.QueueSum[n.InIdx(r, p, vc)]
				}
			}
			out.Routers[r] = rm
		}
	}
	if includeFlight {
		out.Flight = c.Flight.Events()
		out.FlightTotal = c.Flight.Total()
	}
	return out
}
