// Package trace generates the synthetic memory-access traces that stand in
// for the paper's Bochs-captured SPLASH-2 traces (see DESIGN.md,
// "Substitutions").
//
// The coherence protocols only observe a per-node stream of (address,
// read/write) pairs, so a trace is characterized by the statistics the paper
// itself uses to explain its results (Sections 3.1 and 3.4):
//
//   - working-set size (drives capacity behaviour and off-chip traffic),
//   - read/write mix and injection rate,
//   - the dynamic sharing degree: how many valid copies a line has when it
//     is re-referenced (the paper reports >90% of trees span 1-2 copies,
//     with per-benchmark averages from 1.07 (lu, radix) to 1.33
//     (water-spatial)),
//   - the home-node distribution skew (RMS deviation from uniform, which
//     the paper uses to explain write-latency variation), and
//   - temporal locality (a working window of hot lines).
//
// Shared-memory benchmarks exercise coherence through migratory and
// producer-consumer patterns: one thread writes a line, nearby threads read
// it while it is still cached, then ownership migrates. The generator
// produces exactly these episodes — a write by one group member followed by
// reads from others — interleaved over a working window of lines, so that
// reads which miss locally usually find the data cached at another node
// (the regime in which directory indirection, and the paper's in-transit
// optimization of it, matters).
package trace

import (
	"fmt"

	"innetcc/internal/sim"
)

// Access is one memory reference. Addr is a line address (block offset
// already stripped).
type Access struct {
	Addr  uint64
	Write bool
}

// Trace is a complete multi-threaded access trace: one in-order stream per
// node.
type Trace struct {
	Name    string
	PerNode [][]Access
}

// TotalAccesses returns the number of accesses summed over all nodes.
func (t *Trace) TotalAccesses() int {
	n := 0
	for _, s := range t.PerNode {
		n += len(s)
	}
	return n
}

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string

	// Lines is the shared working-set size in cache lines. The paper
	// re-parallelizes the same benchmark inputs when scaling from 16 to
	// 64 nodes, so the working set stays constant and per-line sharing
	// grows with the node count.
	Lines int

	// PrivateFrac is the fraction of lines touched by only one node.
	PrivateFrac float64

	// AvgReaders is the mean number of reader episodes that follow each
	// write to a shared line; it controls the dynamic copies-per-tree
	// statistic the paper correlates with read savings (lu/rad lowest,
	// bar/wsp highest).
	AvgReaders float64

	// GroupSize is the mean sharer-group size of shared lines; groups
	// are spatially clustered on the mesh as SPLASH-2's block
	// decompositions produce.
	GroupSize int

	// WriteFrac is the approximate fraction of accesses that are writes.
	WriteFrac float64

	// RMW is the probability that a reader in a shared-line episode
	// immediately writes the line after reading it (migratory
	// read-modify-write). High values create chains of ownership
	// transfers and same-line write contention at the home node, the
	// effect the paper links to home-distribution skew (Section 3.1).
	RMW float64

	// ReadOnlyFrac is the fraction of lines that are only ever read
	// (code, lookup tables, frozen data). Their virtual trees persist
	// until capacity-evicted, so they populate the tree caches and
	// create the capacity pressure the paper's Figure 6 sweeps.
	ReadOnlyFrac float64

	// HomeSkew in [0,1) biases which home node a line maps to: 0 is
	// uniform; larger values concentrate lines on a few home nodes,
	// raising the RMS deviation the paper reports.
	HomeSkew float64

	// Window is the number of simultaneously hot lines (temporal
	// locality); larger windows scatter accesses more widely.
	Window int

	// Think is the mean number of idle cycles a node waits between the
	// completion of one access and the issue of the next; lower values
	// raise the injection rate (radix and ocean are the paper's
	// high-rate benchmarks).
	Think int64
}

// Benchmarks returns the eight SPLASH-2 profiles in the paper's order:
// fft, lu, barnes, radix, water-nsquared, water-spatial, ocean, raytrace.
//
// Calibration sources, all from the paper: average active copies per tree
// (lu, rad lowest at 1.07; bar 1.16 and wsp 1.33 highest — Section 3.1);
// home-node RMS skew (wsp greatest, fft and lu least — Section 3.1); memory
// footprints (rad, ray, ocn largest — Section 3.3); injection rates (rad
// highest read rate; lu and ocn high write rates at 64 nodes — Section 3.4).
func Benchmarks() []Profile {
	return []Profile{
		{Name: "fft", Lines: 9000, PrivateFrac: 0.45, AvgReaders: 1.3, GroupSize: 3, WriteFrac: 0.32, RMW: 0.05, ReadOnlyFrac: 0.30, HomeSkew: 0.02, Window: 260, Think: 16},
		{Name: "lu", Lines: 8000, PrivateFrac: 0.55, AvgReaders: 1.1, GroupSize: 2, WriteFrac: 0.36, RMW: 0.05, ReadOnlyFrac: 0.25, HomeSkew: 0.03, Window: 220, Think: 8},
		{Name: "bar", Lines: 7000, PrivateFrac: 0.30, AvgReaders: 1.8, GroupSize: 4, WriteFrac: 0.28, RMW: 0.25, ReadOnlyFrac: 0.30, HomeSkew: 0.12, Window: 280, Think: 14},
		{Name: "rad", Lines: 22000, PrivateFrac: 0.55, AvgReaders: 1.1, GroupSize: 2, WriteFrac: 0.26, RMW: 0.10, ReadOnlyFrac: 0.35, HomeSkew: 0.10, Window: 420, Think: 4},
		{Name: "wns", Lines: 6500, PrivateFrac: 0.38, AvgReaders: 1.5, GroupSize: 3, WriteFrac: 0.30, RMW: 0.20, ReadOnlyFrac: 0.30, HomeSkew: 0.10, Window: 260, Think: 12},
		{Name: "wsp", Lines: 6500, PrivateFrac: 0.25, AvgReaders: 2.2, GroupSize: 4, WriteFrac: 0.30, RMW: 0.35, ReadOnlyFrac: 0.28, HomeSkew: 0.24, Window: 280, Think: 12},
		{Name: "ocn", Lines: 19000, PrivateFrac: 0.40, AvgReaders: 1.4, GroupSize: 3, WriteFrac: 0.40, RMW: 0.25, ReadOnlyFrac: 0.30, HomeSkew: 0.08, Window: 400, Think: 5},
		{Name: "ray", Lines: 21000, PrivateFrac: 0.42, AvgReaders: 1.5, GroupSize: 3, WriteFrac: 0.20, RMW: 0.10, ReadOnlyFrac: 0.40, HomeSkew: 0.09, Window: 420, Think: 10},
	}
}

// ProfileByName returns the named benchmark profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// lineInfo is the generator's per-line metadata.
type lineInfo struct {
	addr     uint64
	group    []int // nodes that access this line (len 1 = private)
	readOnly bool
}

// Generate builds a trace for the given profile on a nodes-node system,
// accessesPerNode references per node, deterministically from seed.
func Generate(p Profile, nodes, accessesPerNode int, seed uint64) *Trace {
	rng := sim.NewRNG(seed ^ hashName(p.Name))
	lines := p.Lines
	if lines < 64 {
		lines = 64
	}
	window := p.Window
	if window < 8 {
		window = 8
	}

	// With the working set constant, re-parallelizing on more nodes
	// spreads each line across more threads (the paper's 64-way runs).
	groupSize := p.GroupSize
	radius := 1
	if nodes > 16 {
		groupSize *= 2
		radius = 2
	}
	pop := make([]lineInfo, lines)
	for i := range pop {
		home := skewedHome(rng, nodes, p.HomeSkew)
		addr := uint64(i)*uint64(nodes) + uint64(home)
		anchor := rng.Intn(nodes)
		group := []int{anchor}
		if rng.Float64() >= p.PrivateFrac {
			g := 2 + rng.Intn(maxInt(1, 2*groupSize-3)) // mean ~= groupSize
			for len(group) < g {
				cand := clusterNeighbor(rng, nodes, anchor, radius)
				dup := false
				for _, x := range group {
					if x == cand {
						dup = true
					}
				}
				if !dup {
					group = append(group, cand)
				} else if rng.Float64() < 0.3 {
					break // small groups stay small
				}
			}
		}
		pop[i] = lineInfo{addr: addr, group: group, readOnly: rng.Float64() < p.ReadOnlyFrac}
	}

	tr := &Trace{Name: p.Name, PerNode: make([][]Access, nodes)}
	for n := range tr.PerNode {
		tr.PerNode[n] = make([]Access, 0, accessesPerNode)
	}
	need := nodes * accessesPerNode
	emitted := 0
	emit := func(node int, addr uint64, write bool) {
		if len(tr.PerNode[node]) >= accessesPerNode {
			return
		}
		tr.PerNode[node] = append(tr.PerNode[node], Access{Addr: addr, Write: write})
		emitted++
	}

	// The working window of hot lines; episodes run over window members
	// and slots are gradually replaced, giving temporal locality.
	win := make([]int, window)
	for i := range win {
		win[i] = rng.Intn(lines)
	}
	for guard := 0; emitted < need && guard < 50*need; guard++ {
		slot := rng.Intn(window)
		if rng.Float64() < 0.02 {
			win[slot] = rng.Intn(lines) // refresh slot
		}
		li := &pop[win[slot]]
		if li.readOnly {
			// Read-only episode: group members (or the owner) read;
			// the tree persists until capacity-evicted.
			readers := 1 + poissonish(rng, p.AvgReaders)
			for k := 0; k < readers; k++ {
				r := li.group[rng.Intn(len(li.group))]
				emit(r, li.addr, false)
			}
			continue
		}
		if len(li.group) == 1 {
			// Private line: a short run of accesses by its owner.
			owner := li.group[0]
			runLen := 1 + rng.Intn(3)
			for k := 0; k < runLen; k++ {
				emit(owner, li.addr, rng.Float64() < p.WriteFrac)
			}
			continue
		}
		// Shared line: migratory episode — one writer, then reads by
		// other group members while the line is still cached.
		writer := li.group[rng.Intn(len(li.group))]
		doWrite := rng.Float64() < p.WriteFrac*(1.0+p.AvgReaders)
		if doWrite {
			emit(writer, li.addr, true)
		} else {
			emit(writer, li.addr, false)
		}
		readers := poissonish(rng, p.AvgReaders)
		for k := 0; k < readers; k++ {
			r := li.group[rng.Intn(len(li.group))]
			emit(r, li.addr, false)
			if rng.Float64() < p.RMW {
				// Migratory read-modify-write: the reader takes
				// ownership right after reading.
				emit(r, li.addr, true)
			}
		}
	}
	// Top up any still-short streams with private filler so every node
	// has exactly accessesPerNode accesses.
	for n := range tr.PerNode {
		for len(tr.PerNode[n]) < accessesPerNode {
			li := &pop[rng.Intn(lines)]
			tr.PerNode[n] = append(tr.PerNode[n], Access{Addr: li.addr, Write: rng.Float64() < p.WriteFrac})
		}
	}
	return tr
}

// poissonish draws a small non-negative integer with the given mean.
func poissonish(rng *sim.RNG, mean float64) int {
	n := 0
	for rem := mean; rem > 0; rem -= 1.0 {
		pr := rem
		if pr > 1 {
			pr = 1
		}
		if rng.Float64() < pr {
			n++
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// skewedHome draws a home node: with probability skew it concentrates on a
// small hot set of nodes, otherwise uniform.
func skewedHome(rng *sim.RNG, nodes int, skew float64) int {
	if rng.Float64() < skew {
		hot := nodes / 4
		if hot < 1 {
			hot = 1
		}
		return rng.Intn(hot)
	}
	return rng.Intn(nodes)
}

// clusterNeighbor picks a node within radius of anchor on the mesh
// (assumed square), falling back to uniform for odd shapes.
func clusterNeighbor(rng *sim.RNG, nodes, anchor, radius int) int {
	w := meshSide(nodes)
	if w == 0 {
		return rng.Intn(nodes)
	}
	span := 2*radius + 1
	dx, dy := rng.Intn(span)-radius, rng.Intn(span)-radius
	x, y := anchor%w+dx, anchor/w+dy
	if x < 0 || x >= w || y < 0 || y >= nodes/w {
		return rng.Intn(nodes)
	}
	return y*w + x
}

func meshSide(nodes int) int {
	for w := 1; w*w <= nodes; w++ {
		if w*w == nodes {
			return w
		}
	}
	return 0
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Stats summarizes the sharing characteristics of a trace for calibration
// reporting: the mean number of distinct nodes that touch each line, and
// the per-home access counts (for RMS skew).
func (t *Trace) Stats(nodes int) (meanSharers float64, homeCounts []int64) {
	touched := map[uint64]map[int]bool{}
	homeCounts = make([]int64, nodes)
	for n, stream := range t.PerNode {
		for _, a := range stream {
			m, ok := touched[a.Addr]
			if !ok {
				m = map[int]bool{}
				touched[a.Addr] = m
			}
			m[n] = true
			homeCounts[int(a.Addr%uint64(nodes))]++
		}
	}
	if len(touched) == 0 {
		return 0, homeCounts
	}
	var sum int
	for _, m := range touched {
		sum += len(m)
	}
	return float64(sum) / float64(len(touched)), homeCounts
}
