package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead fuzzes the trace-file parser. Two properties are enforced on
// every input:
//
//  1. Read never panics and never allocates proportionally to unvalidated
//     header fields (the MaxFileNodes bound; the committed corpus includes
//     a "trace x 99999999999999" allocation-bomb header).
//  2. Round-trip stability: any input Read accepts must survive
//     Write→Read with an identical structure (same node count, same
//     per-node access streams; the name may differ only by sanitization).
func FuzzRead(f *testing.F) {
	seeds := []string{
		// Valid minimal trace.
		"trace t 2\n0 R 10\n1 W ff\n",
		// Comments, blank lines, lowercase ops.
		"# header comment\n\ntrace bench 4\n0 r 0\n3 w deadbeef\n# tail\n",
		// Allocation bomb: huge declared node count, no records.
		"trace x 99999999999999\n",
		"trace x 1000000000\n0 R 1\n",
		// Corrupt headers.
		"trace\n",
		"race t 2\n0 R 10\n",
		"trace t -3\n",
		"trace t 0\n",
		// Record defects: out-of-range node, bad op, bad address, short line.
		"trace t 2\n7 R 10\n",
		"trace t 2\n0 X 10\n",
		"trace t 2\n0 R zz\n",
		"trace t 2\n0 R\n",
		// Empty and comment-only inputs.
		"",
		"# nothing\n\n",
		// Name requiring sanitization survives a round trip.
		"trace a 1\n0 W 8\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if tr == nil {
			t.Fatal("Read returned nil trace without error")
		}
		if len(tr.PerNode) == 0 || len(tr.PerNode) > MaxFileNodes {
			t.Fatalf("accepted trace with %d nodes", len(tr.PerNode))
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write of accepted trace failed: %v", err)
		}
		rt, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip Read failed: %v\ninput: %q\nwritten: %q", err, data, buf.Bytes())
		}
		if got, want := len(rt.PerNode), len(tr.PerNode); got != want {
			t.Fatalf("round-trip node count %d, want %d", got, want)
		}
		if got, want := rt.Name, sanitizeName(tr.Name); got != want &&
			// Write sanitizes spaces; a name containing other whitespace
			// already cannot appear: Fields-split parsing forbids it.
			!strings.EqualFold(got, want) {
			t.Fatalf("round-trip name %q, want %q", got, want)
		}
		for n := range tr.PerNode {
			a, b := tr.PerNode[n], rt.PerNode[n]
			if len(a) != len(b) {
				t.Fatalf("node %d: round-trip stream length %d, want %d", n, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d access %d: round-trip %+v, want %+v", n, i, b[i], a[i])
				}
			}
		}
	})
}
