package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace file format. The paper's methodology is trace-driven (memory access
// traces gathered from Bochs); this repository's synthetic generator is one
// producer, but users can bring their own traces in a simple line-oriented
// text format:
//
//	# comment
//	trace <name> <nodes>
//	<node> R <hex-line-address>
//	<node> W <hex-line-address>
//	...
//
// Per-node order is the node's program order; interleaving between nodes is
// decided by the simulator (Requirement 4 serializes each node anyway).

// Write serializes the trace to w in the text format above. Accesses are
// emitted node by node; cross-node interleaving carries no meaning in the
// format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "trace %s %d\n", sanitizeName(t.Name), len(t.PerNode)); err != nil {
		return err
	}
	for n, stream := range t.PerNode {
		for _, a := range stream {
			op := "R"
			if a.Write {
				op = "W"
			}
			if _, err := fmt.Fprintf(bw, "%d %s %x\n", n, op, a.Addr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// MaxFileNodes bounds the node count a trace file may declare. Without it a
// corrupt or hostile header ("trace x 999999999999") would size the per-node
// slice table before a single record is parsed.
const MaxFileNodes = 1 << 16

// Read parses a trace from r. It validates node indices and access
// operations and returns a descriptive error with the offending line
// number.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	var tr *Trace
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if tr == nil {
			if len(fields) != 3 || fields[0] != "trace" {
				return nil, fmt.Errorf("trace: line %d: expected header \"trace <name> <nodes>\"", lineNo)
			}
			nodes, err := strconv.Atoi(fields[2])
			if err != nil || nodes <= 0 || nodes > MaxFileNodes {
				return nil, fmt.Errorf("trace: line %d: bad node count %q", lineNo, fields[2])
			}
			tr = &Trace{Name: fields[1], PerNode: make([][]Access, nodes)}
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: expected \"<node> R|W <addr>\"", lineNo)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil || node < 0 || node >= len(tr.PerNode) {
			return nil, fmt.Errorf("trace: line %d: bad node %q", lineNo, fields[0])
		}
		var write bool
		switch fields[1] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[2])
		}
		tr.PerNode[node] = append(tr.PerNode[node], Access{Addr: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("trace: empty input")
	}
	return tr, nil
}
