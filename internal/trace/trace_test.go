package trace

import (
	"testing"

	"innetcc/internal/stats"
)

func TestBenchmarksCoverPaperSet(t *testing.T) {
	want := []string{"fft", "lu", "bar", "rad", "wns", "wsp", "ocn", "ray"}
	bs := Benchmarks()
	if len(bs) != len(want) {
		t.Fatalf("%d benchmarks, want %d", len(bs), len(want))
	}
	for i, w := range want {
		if bs[i].Name != w {
			t.Fatalf("benchmark %d is %q, want %q", i, bs[i].Name, w)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("wsp")
	if err != nil || p.Name != "wsp" {
		t.Fatalf("ProfileByName(wsp) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestGenerateShape(t *testing.T) {
	p, _ := ProfileByName("fft")
	tr := Generate(p, 16, 100, 1)
	if len(tr.PerNode) != 16 {
		t.Fatalf("%d node streams, want 16", len(tr.PerNode))
	}
	for n, s := range tr.PerNode {
		if len(s) != 100 {
			t.Fatalf("node %d has %d accesses, want 100", n, len(s))
		}
	}
	if tr.TotalAccesses() != 1600 {
		t.Fatalf("TotalAccesses=%d", tr.TotalAccesses())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("bar")
	a := Generate(p, 16, 200, 42)
	b := Generate(p, 16, 200, 42)
	for n := range a.PerNode {
		for i := range a.PerNode[n] {
			if a.PerNode[n][i] != b.PerNode[n][i] {
				t.Fatal("same-seed traces differ")
			}
		}
	}
	c := Generate(p, 16, 200, 43)
	same := true
	for n := range a.PerNode {
		for i := range a.PerNode[n] {
			if a.PerNode[n][i] != c.PerNode[n][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestWriteFractionRoughlyMatchesProfile(t *testing.T) {
	p, _ := ProfileByName("ocn")
	tr := Generate(p, 16, 2000, 7)
	writes := 0
	for _, s := range tr.PerNode {
		for _, a := range s {
			if a.Write {
				writes++
			}
		}
	}
	frac := float64(writes) / float64(tr.TotalAccesses())
	// Read-only lines dilute writes below WriteFrac while RMW episodes
	// add writes above it; assert the broad envelope.
	lo := p.WriteFrac*(1-p.ReadOnlyFrac) - 0.08
	hi := p.WriteFrac + p.RMW*0.6 + 0.08
	if frac < lo || frac > hi {
		t.Fatalf("write fraction %.3f outside [%.3f, %.3f]", frac, lo, hi)
	}
}

// The paper's key per-benchmark orderings must be visible in the generated
// traces: lu and rad have the lowest sharing; wsp the highest sharing and
// the highest home-node skew; fft and lu the lowest skew.
func TestCalibrationOrderings(t *testing.T) {
	shar := map[string]float64{}
	skew := map[string]float64{}
	for _, p := range Benchmarks() {
		tr := Generate(p, 16, 1500, 99)
		s, homes := tr.Stats(16)
		shar[p.Name] = s
		skew[p.Name] = stats.RMSSkew(homes)
	}
	if !(shar["wsp"] > shar["lu"] && shar["wsp"] > shar["rad"]) {
		t.Fatalf("wsp sharing %.3f not above lu %.3f / rad %.3f", shar["wsp"], shar["lu"], shar["rad"])
	}
	if !(shar["bar"] > shar["lu"]) {
		t.Fatalf("bar sharing %.3f not above lu %.3f", shar["bar"], shar["lu"])
	}
	if !(skew["wsp"] > skew["fft"] && skew["wsp"] > skew["lu"]) {
		t.Fatalf("wsp skew %.4f not above fft %.4f / lu %.4f", skew["wsp"], skew["fft"], skew["lu"])
	}
}

func TestHomeAddressMapping(t *testing.T) {
	// Generated addresses must distribute across all homes (addr % nodes).
	p, _ := ProfileByName("fft")
	tr := Generate(p, 16, 1000, 3)
	_, homes := tr.Stats(16)
	zero := 0
	for _, c := range homes {
		if c == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Fatalf("%d home nodes receive no accesses", zero)
	}
}

func TestWorkingSetConstantAcrossNodeCounts(t *testing.T) {
	// The paper re-parallelizes the same inputs at 64 nodes: the working
	// set must not scale with the node count, so per-line sharing grows.
	p, _ := ProfileByName("fft")
	t16 := Generate(p, 16, 500, 5)
	t64 := Generate(p, 64, 500, 5)
	s16, _ := t16.Stats(16)
	s64, _ := t64.Stats(64)
	if !(s64 > s16) {
		t.Fatalf("64-node sharing (%.2f) not above 16-node (%.2f)", s64, s16)
	}
}

func TestWindowCreatesLocality(t *testing.T) {
	narrow := Profile{Name: "hi", Lines: 10000, WriteFrac: 0.3, GroupSize: 2, AvgReaders: 1, Window: 16, Think: 5}
	wide := Profile{Name: "lo", Lines: 10000, WriteFrac: 0.3, GroupSize: 2, AvgReaders: 1, Window: 4000, Think: 5}
	d := func(p Profile) int {
		tr := Generate(p, 16, 500, 11)
		m := map[uint64]bool{}
		for _, a := range tr.PerNode[0] {
			m[a.Addr] = true
		}
		return len(m)
	}
	if !(d(narrow) < d(wide)) {
		t.Fatal("narrow working window did not shrink per-node footprint")
	}
}
