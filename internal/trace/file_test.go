package trace

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	p, _ := ProfileByName("bar")
	orig := Generate(p, 16, 120, 3)
	var b strings.Builder
	if err := orig.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.PerNode) != len(orig.PerNode) {
		t.Fatalf("header mismatch: %q/%d", got.Name, len(got.PerNode))
	}
	for n := range orig.PerNode {
		if len(got.PerNode[n]) != len(orig.PerNode[n]) {
			t.Fatalf("node %d stream length %d, want %d", n, len(got.PerNode[n]), len(orig.PerNode[n]))
		}
		for i := range orig.PerNode[n] {
			if got.PerNode[n][i] != orig.PerNode[n][i] {
				t.Fatalf("node %d access %d differs", n, i)
			}
		}
	}
}

// An empty trace (header only, zero accesses) must survive the round trip
// as a deep-equal structure: same name, same node count, all streams empty.
func TestRoundTripEmptyTrace(t *testing.T) {
	orig := &Trace{Name: "empty", PerNode: make([][]Access, 4)}
	var b strings.Builder
	if err := orig.Write(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "trace empty 4\n" {
		t.Fatalf("serialized empty trace = %q", b.String())
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.PerNode) != 4 || got.TotalAccesses() != 0 {
		t.Fatalf("round-tripped empty trace wrong: %+v", got)
	}
	for n := range got.PerNode {
		if len(got.PerNode[n]) != 0 {
			t.Fatalf("node %d stream not empty", n)
		}
	}
}

// A file truncated mid-record (as a cut-off download or partial write
// produces) must fail with a line-numbered error, not parse silently.
func TestReadRejectsTruncatedFile(t *testing.T) {
	full := "trace demo 2\n0 R 10\n1 W ff\n0 R 2a\n"
	// Cut inside the final record: "0 R 2a\n" -> "0 R".
	truncated := full[:len(full)-4]
	_, err := Read(strings.NewReader(truncated))
	if err == nil {
		t.Fatal("truncated file accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q does not name the offending line", err)
	}
	// Truncating at a record boundary is indistinguishable from a short
	// trace and must still parse (fewer accesses, no error).
	tr, err := Read(strings.NewReader(full[:len(full)-7]))
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalAccesses() != 2 {
		t.Fatalf("boundary-truncated trace has %d accesses, want 2", tr.TotalAccesses())
	}
}

// Deep round trip over a generated trace: write -> read -> reflect.DeepEqual
// (modulo nil-versus-empty stream representation for idle nodes).
func TestRoundTripDeepEqual(t *testing.T) {
	p, _ := ProfileByName("wsp")
	orig := Generate(p, 16, 80, 11)
	var b strings.Builder
	if err := orig.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Normalize empty streams: the reader leaves untouched nodes nil.
	for n := range got.PerNode {
		if got.PerNode[n] == nil {
			got.PerNode[n] = []Access{}
		}
		if orig.PerNode[n] == nil {
			orig.PerNode[n] = []Access{}
		}
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip not deep-equal:\n orig: %+v\n got: %+v", orig, got)
	}
}

func TestReadAcceptsCommentsAndBlankLines(t *testing.T) {
	in := `
# a hand-written trace
trace demo 4

0 R 10
# interleaved comment
1 W ff
0 r 10
3 w Abc
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.PerNode[0]) != 2 || len(tr.PerNode[1]) != 1 || len(tr.PerNode[3]) != 1 {
		t.Fatalf("stream lengths wrong: %d/%d/%d", len(tr.PerNode[0]), len(tr.PerNode[1]), len(tr.PerNode[3]))
	}
	if tr.PerNode[3][0].Addr != 0xabc || !tr.PerNode[3][0].Write {
		t.Fatalf("parsed access wrong: %+v", tr.PerNode[3][0])
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []string{
		"",                    // empty
		"0 R 10\n",            // missing header
		"trace x zero\n",      // bad node count
		"trace x 2\n5 R 10\n", // node out of range
		"trace x 2\n0 X 10\n", // bad op
		"trace x 2\n0 R zz\n", // bad address
		"trace x 2\n0 R\n",    // missing field
		"trace x -1\n",        // negative nodes
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

// Property: any generated trace survives a write/read round trip bitwise.
func TestRoundTripProperty(t *testing.T) {
	benches := Benchmarks()
	err := quick.Check(func(seed uint16, pick uint8) bool {
		p := benches[int(pick)%len(benches)]
		orig := Generate(p, 16, 40, uint64(seed))
		var b strings.Builder
		if err := orig.Write(&b); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		for n := range orig.PerNode {
			if len(got.PerNode[n]) != len(orig.PerNode[n]) {
				return false
			}
			for i := range orig.PerNode[n] {
				if got.PerNode[n][i] != orig.PerNode[n][i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
