package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	p, _ := ProfileByName("bar")
	orig := Generate(p, 16, 120, 3)
	var b strings.Builder
	if err := orig.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.PerNode) != len(orig.PerNode) {
		t.Fatalf("header mismatch: %q/%d", got.Name, len(got.PerNode))
	}
	for n := range orig.PerNode {
		if len(got.PerNode[n]) != len(orig.PerNode[n]) {
			t.Fatalf("node %d stream length %d, want %d", n, len(got.PerNode[n]), len(orig.PerNode[n]))
		}
		for i := range orig.PerNode[n] {
			if got.PerNode[n][i] != orig.PerNode[n][i] {
				t.Fatalf("node %d access %d differs", n, i)
			}
		}
	}
}

func TestReadAcceptsCommentsAndBlankLines(t *testing.T) {
	in := `
# a hand-written trace
trace demo 4

0 R 10
# interleaved comment
1 W ff
0 r 10
3 w Abc
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.PerNode[0]) != 2 || len(tr.PerNode[1]) != 1 || len(tr.PerNode[3]) != 1 {
		t.Fatalf("stream lengths wrong: %d/%d/%d", len(tr.PerNode[0]), len(tr.PerNode[1]), len(tr.PerNode[3]))
	}
	if tr.PerNode[3][0].Addr != 0xabc || !tr.PerNode[3][0].Write {
		t.Fatalf("parsed access wrong: %+v", tr.PerNode[3][0])
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []string{
		"",                    // empty
		"0 R 10\n",            // missing header
		"trace x zero\n",      // bad node count
		"trace x 2\n5 R 10\n", // node out of range
		"trace x 2\n0 X 10\n", // bad op
		"trace x 2\n0 R zz\n", // bad address
		"trace x 2\n0 R\n",    // missing field
		"trace x -1\n",        // negative nodes
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

// Property: any generated trace survives a write/read round trip bitwise.
func TestRoundTripProperty(t *testing.T) {
	benches := Benchmarks()
	err := quick.Check(func(seed uint16, pick uint8) bool {
		p := benches[int(pick)%len(benches)]
		orig := Generate(p, 16, 40, uint64(seed))
		var b strings.Builder
		if err := orig.Write(&b); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		for n := range orig.PerNode {
			if len(got.PerNode[n]) != len(orig.PerNode[n]) {
				return false
			}
			for i := range orig.PerNode[n] {
				if got.PerNode[n][i] != orig.PerNode[n][i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
