package network

// DestPolicy routes every packet toward its destination along the
// topology's deterministic minimal route (X-Y dimension order on the mesh
// and torus, shorter-way on the ring), ejecting it locally on arrival. It
// holds no state and spawns nothing for unicast traffic; a packet carrying
// a destination set (DstSet) is forked at fan-out routers, which is the
// hardware-multicast path the directory engine's invalidations use.
type DestPolicy struct{}

// Route implements Policy.
func (DestPolicy) Route(r *Router, p *Packet, _ int64) Steer {
	if p.DstSet != nil {
		return routeMulticast(r, p)
	}
	return Steer{Out: r.mesh.Topo.NextHop(r.NodeID, p.Dst)}
}

// routeMulticast steers a multicast packet one hop: partition the
// destination set by next-hop port, keep one subset on this packet and
// fork a clone per additional subset. The local-member subset (this router
// is a destination) always stays on the original packet so ejection
// recycles it here; otherwise the lowest-numbered port keeps the original.
// Clones enter the generation queue expedited — a hardware multicast
// router replicates the flit at the crossbar, paying no second pipeline
// traversal. A subset of one collapses to a plain unicast packet.
func routeMulticast(r *Router, p *Packet) Steer {
	m := r.mesh
	var groups [MaxDegree + 1]NodeSet
	local := m.deg
	p.DstSet.ForEach(func(n int) {
		s := m.outSlotOf(m.Topo.NextHop(r.NodeID, n))
		groups[s] = groups[s].Add(n)
	})
	primary := -1
	if groups[local] != nil {
		primary = local
	} else {
		for s := 0; s < local; s++ {
			if groups[s] != nil {
				primary = s
				break
			}
		}
	}
	if primary < 0 {
		// Empty set: degenerate caller input; fall back to unicast.
		p.DstSet = nil
		return Steer{Out: m.Topo.NextHop(r.NodeID, p.Dst)}
	}
	var spawns []*Packet
	for s := 0; s <= local; s++ {
		if s == primary || groups[s] == nil {
			continue
		}
		spawns = append(spawns, m.cloneForSet(r, p, groups[s]))
	}
	retarget(p, groups[primary])
	if m.Faults != nil {
		// Dst changed; the word was verified before Route ran, so
		// restamping here keeps the next router's check honest.
		p.Checksum = ChecksumOf(p)
	}
	return Steer{Out: m.slotDir(primary), Spawn: spawns}
}

// cloneForSet builds the fork copy of p that carries subset set. The clone
// keeps the original's hop and injection accounting (it has traversed the
// same links) and is expedited so the fork costs no extra pipeline pass.
func (m *Mesh) cloneForSet(r *Router, p *Packet, set NodeSet) *Packet {
	c := m.AllocPacketFor(r.NodeID)
	c.ID = m.NextIDFor(r.NodeID)
	c.Src = p.Src
	c.Class = p.Class
	c.Flits = p.Flits
	c.Retryable = p.Retryable
	c.Expedited = true
	c.Hops = p.Hops
	c.InjectedAt = p.InjectedAt
	if m.CloneFn != nil {
		c.Payload = m.CloneFn(p.Payload)
	} else {
		c.Payload = p.Payload
	}
	retarget(c, set)
	return c
}

// retarget points p at subset set: a single survivor collapses to plain
// unicast, a larger subset keeps the set with Dst tracking its minimum.
func retarget(p *Packet, set NodeSet) {
	if set.Count() == 1 {
		p.Dst = set.Min()
		p.DstSet = nil
		return
	}
	p.Dst = set.Min()
	p.DstSet = set
}
