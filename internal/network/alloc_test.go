package network

import (
	"testing"

	"innetcc/internal/sim"
)

// pingPongPolicy bounces a packet between the two routers of a 2x1 mesh
// forever: the packet never ejects, so the measurement below exercises the
// full route/arbitrate/hand-off cycle with no delivery path.
type pingPongPolicy struct{}

func (pingPongPolicy) Route(r *Router, p *Packet, _ int64) Steer {
	if _, ok := r.Topo().Neighbor(r.NodeID, East); ok {
		return Steer{Out: East}
	}
	return Steer{Out: West}
}

// TestRouterTickZeroAllocsSteadyState is the hot-path allocation proof the
// active-set kernel pairs with: once the ring FIFOs have warmed up, a
// ticking router allocates nothing — not for routing, arbitration,
// neighbor hand-off, or the kernel's own event/park bookkeeping.
func TestRouterTickZeroAllocsSteadyState(t *testing.T) {
	k := sim.NewKernel(1)
	m := testMesh(k, 2, 1, 2, 1, pingPongPolicy{})
	m.EjectFn = func(int, *Packet, int64) {}
	p := m.AllocPacketFor(0)
	p.ID = m.NextIDFor(0)
	p.Flits = 1
	m.Inject(0, p, k.Now())
	k.Run(100) // warm the rings and reach steady state
	allocs := testing.AllocsPerRun(1000, func() { k.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state kernel step allocated %.2f per run, want 0", allocs)
	}
}

// TestIdleRouterTickZeroAllocs pins the idle cost: a router with drained
// FIFOs allocates nothing when ticked (and under the active-set kernel it
// is not ticked at all).
func TestIdleRouterTickZeroAllocs(t *testing.T) {
	k := sim.NewKernel(1)
	m := testMesh(k, 4, 4, 2, 1, DestPolicy{})
	m.EjectFn = func(int, *Packet, int64) {}
	r := m.Routers[5]
	allocs := testing.AllocsPerRun(1000, func() { r.Tick(10) })
	if allocs != 0 {
		t.Fatalf("idle router tick allocated %.2f per run, want 0", allocs)
	}
}

// TestSoAHotPathZeroAllocsMultiRouter is the structure-of-arrays regression
// guard: with several packets in flight across a row of routers — FIFO ring
// reuse, busyTill credit updates, arbitration stamps and barrier mailbox
// hand-offs all live in the mesh's flat arrays — a steady-state kernel step
// must still allocate nothing. A refactor that reintroduces per-tick heap
// state (boxing, slice growth, map lookups) fails here before it shows up
// in profiles.
func TestSoAHotPathZeroAllocsMultiRouter(t *testing.T) {
	k := sim.NewKernel(1)
	m := testMesh(k, 4, 1, 2, 2, pingPongPolicy{})
	m.EjectFn = func(int, *Packet, int64) {}
	for i := 0; i < 3; i++ {
		p := m.AllocPacketFor(i)
		p.ID = m.NextIDFor(i)
		p.Flits = 1 + i
		m.Inject(i, p, k.Now())
	}
	k.Run(200) // warm every ring and mailbox on the packets' orbit
	allocs := testing.AllocsPerRun(1000, func() { k.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state multi-router step allocated %.2f per run, want 0", allocs)
	}
}

// TestPacketFreeListRecycles verifies pool packets return to the free-list
// after delivery while literal-built packets (whose references a test
// harness may retain) are never recycled.
func TestPacketFreeListRecycles(t *testing.T) {
	k := sim.NewKernel(1)
	m := testMesh(k, 2, 1, 1, 1, DestPolicy{})
	delivered := 0
	m.EjectFn = func(int, *Packet, int64) { delivered++ }

	pooled := m.AllocPacketFor(0)
	pooled.ID = m.NextIDFor(0)
	pooled.Dst = 1
	pooled.Flits = 1
	pooled.Payload = "payload"
	m.Inject(0, pooled, k.Now())
	k.Run(50)
	if delivered != 1 {
		t.Fatalf("pooled packet not delivered (delivered=%d)", delivered)
	}
	// Packets recycle at the router where they die — the destination.
	if got := m.AllocPacketFor(1); got != pooled {
		t.Error("delivered pool packet was not recycled to the free-list")
	} else if got.Payload != nil || got.Dst != 0 || !got.pooled {
		t.Errorf("recycled packet not reset: %+v", got)
	}

	literal := &Packet{ID: m.NextIDFor(0), Dst: 1, Flits: 1}
	m.Inject(0, literal, k.Now())
	k.Run(k.Now() + 50)
	if delivered != 2 {
		t.Fatalf("literal packet not delivered (delivered=%d)", delivered)
	}
	if got := m.AllocPacketFor(1); got == literal {
		t.Error("literal-built packet was recycled; external references would be corrupted")
	}
}

// TestRoutersParkWhenDrained checks the mesh side of the active-set
// contract: after traffic drains, every router reports quiescence, and an
// injection wakes exactly the routers the packet traverses.
func TestRoutersParkWhenDrained(t *testing.T) {
	k := sim.NewKernel(1)
	m := testMesh(k, 4, 4, 2, 1, DestPolicy{})
	m.EjectFn = func(int, *Packet, int64) {}
	p := m.AllocPacketFor(0)
	p.ID = m.NextIDFor(0)
	p.Dst = 15
	p.Flits = 3
	m.Inject(0, p, k.Now())
	k.Run(200)
	if m.InFlight != 0 {
		t.Fatalf("traffic did not drain: %d in flight", m.InFlight)
	}
	for _, r := range m.Routers {
		if !r.Quiescent() {
			t.Errorf("router %d not quiescent after drain (queued=%d)", r.NodeID, r.QueuedPackets())
		}
	}
}
