package network

import (
	"testing"

	"innetcc/internal/fault"
	"innetcc/internal/sim"
)

// faultSetup builds a mesh with an armed injector and records ejections and
// drop notifications.
func faultSetup(t *testing.T, spec fault.Spec, seed uint64) (*sim.Kernel, *Mesh, *map[uint64]int64, *[]fault.DropReason) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("bad spec: %v", err)
	}
	k := sim.NewKernel(1)
	m := testMesh(k, 4, 4, 2, 1, DestPolicy{})
	delivered := make(map[uint64]int64)
	m.EjectFn = func(node int, p *Packet, now int64) { delivered[p.ID] = now }
	var reasons []fault.DropReason
	m.Faults = &fault.Injector{Plan: spec.Plan(seed)}
	m.DropFn = func(p *Packet, reason fault.DropReason, now int64) { reasons = append(reasons, reason) }
	return k, m, &delivered, &reasons
}

func TestInjectedDropRemovesPacket(t *testing.T) {
	spec := fault.DefaultSpec()
	spec.DropPPM = 1_000_000
	spec.Scope = fault.ScopeAll
	k, m, delivered, reasons := faultSetup(t, spec, 7)
	p := m.AllocPacketFor(0)
	p.ID, p.Src, p.Dst, p.Flits = m.NextIDFor(0), 0, 3, 1
	m.Inject(0, p, k.Now())
	k.Run(200)
	if len(*delivered) != 0 {
		t.Fatalf("packet delivered despite a full-rate drop plan")
	}
	if m.InFlight != 0 {
		t.Fatalf("InFlight = %d after drop, want 0 (leak)", m.InFlight)
	}
	if m.Faults.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", m.Faults.Drops)
	}
	if len(*reasons) != 1 || (*reasons)[0] != fault.DropInjected {
		t.Fatalf("DropFn reasons = %v, want [injected]", *reasons)
	}
}

func TestScopeRetryableSparesNonRetryablePackets(t *testing.T) {
	spec := fault.DefaultSpec()
	spec.DropPPM = 1_000_000 // drop every opportunity...
	spec.Scope = fault.ScopeRetryable
	k, m, delivered, _ := faultSetup(t, spec, 7)
	p := m.AllocPacketFor(0)
	p.ID, p.Src, p.Dst, p.Flits = m.NextIDFor(0), 0, 3, 1
	// ...but the packet is not retryable, so the request scope spares it.
	m.Inject(0, p, k.Now())
	k.Run(200)
	if len(*delivered) != 1 {
		t.Fatal("non-retryable packet dropped under scope=req")
	}
	if m.Faults.Drops != 0 {
		t.Fatalf("Drops = %d, want 0", m.Faults.Drops)
	}
}

func TestScopeRetryableDropsMarkedPackets(t *testing.T) {
	spec := fault.DefaultSpec()
	spec.DropPPM = 1_000_000
	spec.Scope = fault.ScopeRetryable
	k, m, delivered, reasons := faultSetup(t, spec, 7)
	p := m.AllocPacketFor(0)
	p.ID, p.Src, p.Dst, p.Flits, p.Retryable = m.NextIDFor(0), 0, 3, 1, true
	m.Inject(0, p, k.Now())
	k.Run(200)
	if len(*delivered) != 0 || len(*reasons) != 1 {
		t.Fatalf("retryable packet survived a full-rate drop plan (delivered=%d reasons=%v)",
			len(*delivered), *reasons)
	}
}

func TestCorruptionCaughtByChecksum(t *testing.T) {
	spec := fault.DefaultSpec()
	spec.CorruptPPM = 1_000_000
	k, m, delivered, reasons := faultSetup(t, spec, 7)
	p := m.AllocPacketFor(0)
	p.ID, p.Src, p.Dst, p.Flits = m.NextIDFor(0), 0, 3, 1
	m.Inject(0, p, k.Now())
	k.Run(500)
	if len(*delivered) != 0 {
		t.Fatal("corrupted packet was delivered; checksum verification missed it")
	}
	if m.InFlight != 0 {
		t.Fatalf("InFlight = %d after checksum drop, want 0", m.InFlight)
	}
	if m.Faults.Corruptions == 0 || m.Faults.ChecksumDrops == 0 {
		t.Fatalf("corruptions=%d checksum_drops=%d, want both > 0",
			m.Faults.Corruptions, m.Faults.ChecksumDrops)
	}
	if len(*reasons) != 1 || (*reasons)[0] != fault.DropChecksum {
		t.Fatalf("DropFn reasons = %v, want [checksum]", *reasons)
	}
}

func TestLocalEjectionNeverFaulted(t *testing.T) {
	// Drops, stalls and corruption only touch inter-router links: a packet
	// already at its destination router must eject even under a full-rate
	// chaos plan, or home-node bookkeeping would wedge unrecoverably.
	spec := fault.DefaultSpec()
	spec.DropPPM, spec.CorruptPPM, spec.StallPPM = 1_000_000, 1_000_000, 1_000_000
	spec.Scope = fault.ScopeAll
	k, m, delivered, _ := faultSetup(t, spec, 7)
	p := m.AllocPacketFor(0)
	p.ID, p.Src, p.Dst, p.Flits = m.NextIDFor(0), 6, 6, 1
	m.Inject(6, p, k.Now())
	k.Run(200)
	if len(*delivered) != 1 {
		t.Fatal("self-addressed packet did not eject under a chaos plan")
	}
}

func TestStallDelaysDelivery(t *testing.T) {
	run := func(spec fault.Spec) int64 {
		k := sim.NewKernel(1)
		m := testMesh(k, 4, 4, 2, 1, DestPolicy{})
		var at int64 = -1
		m.EjectFn = func(node int, p *Packet, now int64) { at = now }
		if spec.Injecting() {
			m.Faults = &fault.Injector{Plan: spec.Plan(7)}
		}
		p := m.AllocPacketFor(0)
		p.ID, p.Src, p.Dst, p.Flits = m.NextIDFor(0), 0, 3, 1
		m.Inject(0, p, k.Now())
		k.Run(2000)
		return at
	}
	clean := run(fault.DefaultSpec())
	stalled := fault.DefaultSpec()
	stalled.StallPPM = 1_000_000
	stalled.StallLen = 8
	stalled.End = 64 // freeze every link for the first 64 cycles, then heal
	faulty := run(stalled)
	if clean < 0 || faulty < 0 {
		t.Fatalf("delivery missing: clean=%d faulty=%d", clean, faulty)
	}
	if faulty <= clean {
		t.Fatalf("stalled delivery at %d not later than clean %d", faulty, clean)
	}
}

// TestFaultScheduleDeterministicAcrossRuns: two identically-seeded meshes
// under the same plan drop the same packets at the same cycles.
func TestFaultScheduleDeterministicAcrossRuns(t *testing.T) {
	spec := fault.DefaultSpec()
	spec.DropPPM = 300_000
	spec.Scope = fault.ScopeAll
	run := func() (map[uint64]int64, int64) {
		k := sim.NewKernel(1)
		m := testMesh(k, 4, 4, 2, 1, DestPolicy{})
		delivered := make(map[uint64]int64)
		m.EjectFn = func(node int, p *Packet, now int64) { delivered[p.ID] = now }
		m.Faults = &fault.Injector{Plan: spec.Plan(99)}
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s == d {
					continue
				}
				p := m.AllocPacketFor(0)
				p.ID, p.Src, p.Dst, p.Flits = m.NextIDFor(0), s, d, 1
				m.Inject(s, p, k.Now())
			}
		}
		k.Run(5000)
		return delivered, m.Faults.Drops
	}
	d1, drops1 := run()
	d2, drops2 := run()
	if drops1 == 0 {
		t.Fatal("30% drop plan dropped nothing; test is vacuous")
	}
	if drops1 != drops2 || len(d1) != len(d2) {
		t.Fatalf("runs diverged: drops %d vs %d, delivered %d vs %d", drops1, drops2, len(d1), len(d2))
	}
	for id, at := range d1 {
		if d2[id] != at {
			t.Fatalf("packet %d delivered at %d vs %d", id, at, d2[id])
		}
	}
}

// TestChecksumCoversRoutingHeader: the integrity word is computed over the
// immutable routing header only, so legitimate in-flight mutation (hop
// counts, timestamps) never trips verification.
func TestChecksumCoversRoutingHeader(t *testing.T) {
	p := &Packet{ID: 12, Src: 1, Dst: 14, Class: 2, Flits: 3}
	sum := ChecksumOf(p)
	p.Hops = 5
	p.InjectedAt = 77
	if ChecksumOf(p) != sum {
		t.Fatal("checksum changed under legitimate in-flight mutation")
	}
	p.Dst = 2
	if ChecksumOf(p) == sum {
		t.Fatal("checksum blind to header corruption")
	}
}
