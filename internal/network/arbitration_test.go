package network

import (
	"testing"

	"innetcc/internal/sim"
)

// spawnOnSight forwards packets X-Y; at a chosen router it spawns one
// expedited follower packet (simulating a teardown chasing a reply).
type spawnOnSight struct {
	at        int
	spawned   bool
	expedited bool
}

func (s *spawnOnSight) Route(r *Router, p *Packet, now int64) Steer {
	st := Steer{Out: r.Topo().NextHop(r.NodeID, p.Dst)}
	if r.NodeID == s.at && !s.spawned && p.Payload == "lead" {
		s.spawned = true
		st.Spawn = []*Packet{{
			ID: r.mesh.NextIDFor(r.NodeID), Src: s.at, Dst: p.Dst, Flits: 1,
			Payload: "chaser", Expedited: s.expedited,
		}}
	}
	return st
}

// TestChaserNeverOvertakesLead is the ordering property the in-network
// protocol's teardown-chase argument depends on: a packet spawned in
// reaction to a routed packet must reach the next router after it, even
// when expedited (age-based arbitration orders them by routing time).
func TestChaserNeverOvertakesLead(t *testing.T) {
	for _, expedited := range []bool{false, true} {
		k := sim.NewKernel(1)
		pol := &spawnOnSight{at: 1, expedited: expedited}
		m := testMesh(k, 4, 1, 3, 1, pol)
		var order []string
		m.EjectFn = func(node int, p *Packet, now int64) {
			order = append(order, p.Payload.(string))
		}
		lead := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 1, Payload: "lead"}
		m.Inject(0, lead, k.Now())
		if !k.RunUntil(func() bool { return len(order) == 2 }, 1000) {
			t.Fatalf("expedited=%v: packets not delivered (%v)", expedited, order)
		}
		if order[0] != "lead" {
			t.Fatalf("expedited=%v: chaser overtook lead: %v", expedited, order)
		}
	}
}

func TestExpeditedSpawnSkipsPipeline(t *testing.T) {
	// An expedited spawn must depart earlier than a non-expedited one.
	depart := func(expedited bool) int64 {
		k := sim.NewKernel(1)
		pol := &spawnOnSight{at: 0, expedited: expedited}
		m := testMesh(k, 2, 1, 5, 1, pol)
		var chaserAt int64
		m.EjectFn = func(node int, p *Packet, now int64) {
			if p.Payload == "chaser" {
				chaserAt = now
			}
		}
		m.Inject(0, &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 1, Flits: 1, Payload: "lead"}, k.Now())
		if !k.RunUntil(func() bool { return chaserAt != 0 }, 1000) {
			t.Fatal("chaser never delivered")
		}
		return chaserAt
	}
	fast := depart(true)
	slow := depart(false)
	if fast >= slow {
		t.Fatalf("expedited spawn (%d) not faster than normal (%d)", fast, slow)
	}
}

func TestMultipleVCsIsolateClasses(t *testing.T) {
	// With two VCs, a stalled packet in class 0 must not block a class-1
	// packet in the same physical port.
	k := sim.NewKernel(1)
	pol := &classStall{}
	m := testMesh(k, 3, 1, 2, 2, pol)
	var got []VC
	m.EjectFn = func(node int, p *Packet, now int64) { got = append(got, p.Class) }
	// Class 0 stalls forever at node 1; class 1 passes through.
	m.Inject(0, &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 2, Flits: 1, Class: 0}, k.Now())
	m.Inject(0, &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 2, Flits: 1, Class: 1}, k.Now())
	if !k.RunUntil(func() bool { return len(got) == 1 }, 1000) {
		t.Fatal("class-1 packet blocked behind stalled class-0 packet")
	}
	if got[0] != 1 {
		t.Fatalf("delivered class %d, want 1", got[0])
	}
}

type classStall struct{}

func (classStall) Route(r *Router, p *Packet, now int64) Steer {
	if r.NodeID == 1 && p.Class == 0 {
		return Steer{Stall: true}
	}
	return Steer{Out: r.Topo().NextHop(r.NodeID, p.Dst)}
}

func TestInFlightAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	m := testMesh(k, 2, 2, 2, 1, DestPolicy{})
	delivered := 0
	m.EjectFn = func(int, *Packet, int64) { delivered++ }
	for i := 0; i < 6; i++ {
		m.Inject(i%4, &Packet{ID: m.NextIDFor(0), Src: i % 4, Dst: (i + 1) % 4, Flits: 2}, k.Now())
	}
	if m.InFlight != 6 {
		t.Fatalf("InFlight=%d after 6 injections", m.InFlight)
	}
	if !k.RunUntil(func() bool { return delivered == 6 }, 1000) {
		t.Fatal("not all delivered")
	}
	if m.InFlight != 0 {
		t.Fatalf("InFlight=%d after drain", m.InFlight)
	}
	if m.DeliveredPackets != 6 {
		t.Fatalf("DeliveredPackets=%d", m.DeliveredPackets)
	}
}
