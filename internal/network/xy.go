package network

// XYPolicy routes every packet toward its destination with dimension-ordered
// routing and ejects it there. It is the policy of the baseline directory
// protocol, whose network is purely a communication medium, and of network
// unit tests.
type XYPolicy struct{}

// Route implements Policy.
func (XYPolicy) Route(r *Router, p *Packet, _ int64) Steer {
	return Steer{Out: XYTo(r.mesh.W, r.NodeID, p.Dst)}
}

// Mesh returns the mesh a router belongs to, for policies that need
// topology information.
func (r *Router) Mesh() *Mesh { return r.mesh }
