package network

import (
	"fmt"
	"sync/atomic"

	"innetcc/internal/fault"
	"innetcc/internal/metrics"
	"innetcc/internal/sim"
)

// Router port slots. A router on a degree-d topology has d inter-router
// ports (slots 0..d-1, identified by Dir values), then the local port
// (slot d: NIC injection in, ejection out), then the generation port
// (slot d+1, input only: protocol-spawned packets). On the 4-port mesh
// this reproduces the historical fixed layout N,S,E,W,Local,Gen exactly,
// so scan order, arbitration order, fault-site numbering and digests are
// unchanged there.
//
// Router state lives in structure-of-arrays form on the Mesh — flat slices
// indexed by router id (and port/VC within a router) rather than fields on
// per-Router heap objects. Shards are contiguous router-id bands, so a
// shard worker streaming through its routers walks contiguous memory:
// FIFO headers, busy counters and arbitration stamps for neighboring
// routers of the same band share cache lines instead of being scattered
// across individually allocated objects. The Router type remains as a thin
// per-node handle carrying only identity and per-node configuration.

type fifoEntry struct {
	pkt     *Packet
	readyAt int64 // cycle the head flit clears this router's pipeline
}

// Router is one fabric router's handle: identity plus per-node
// configuration. The mutable hot state (FIFOs, credit counters,
// arbitration stamps, free-lists) lives in the Mesh's flat arrays, indexed
// by NodeID.
type Router struct {
	// NodeID is the router's position, equal to the attached node's id.
	NodeID int
	mesh   *Mesh
	shard  int // owning shard; routers only touch their own shard's state mid-tick

	// ExtraHopDelay is added to every packet's per-hop pipeline time at
	// this router. The Figure 10 experiment uses it to model an
	// above-network tree-cache implementation where each lookup must
	// leave and re-enter the router.
	ExtraHopDelay int64
}

// Topo returns the fabric the router is wired into: the narrow accessor
// routing policies use for next-hop, distance and neighbor queries.
func (r *Router) Topo() Topology { return r.mesh.Topo }

// fifoQueue is a growable ring buffer of fifoEntries. Unlike the obvious
// `q = q[1:]` slice queue, a ring never strands capacity behind the read
// point, so a router in steady state pushes and pops with zero allocations.
type fifoQueue struct {
	buf     []fifoEntry
	head, n int
}

func (f *fifoQueue) push(e fifoEntry) {
	if f.n == len(f.buf) {
		grown := make([]fifoEntry, max(4, 2*len(f.buf)))
		for i := 0; i < f.n; i++ {
			grown[i] = f.buf[(f.head+i)%len(f.buf)]
		}
		f.buf, f.head = grown, 0
	}
	f.buf[(f.head+f.n)%len(f.buf)] = e
	f.n++
}

func (f *fifoQueue) head0() *fifoEntry {
	if f.n == 0 {
		return nil
	}
	return &f.buf[f.head]
}

func (f *fifoQueue) pop() fifoEntry {
	e := f.buf[f.head]
	f.buf[f.head] = fifoEntry{}
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return e
}

// Mesh is a fabric of routers sharing one routing Policy; the name is
// historical — the wiring is whatever Topo says.
type Mesh struct {
	Topo     Topology
	Pipeline int64
	VCCount  int
	Routers  []*Router
	Policy   Policy

	kernel *sim.Kernel

	// deg is Topo.Degree(); numIn/numOut the derived port-slot counts
	// (deg inter-router + local + gen in, deg inter-router + local out).
	deg, numIn, numOut int

	// Structure-of-arrays router state. fifos holds every router's input
	// FIFOs flattened as [(node*numIn + port)*VCCount + vc] — a router's
	// slots are contiguous, port-major then VC, matching the historical
	// per-router scan order. busyTill is the per-output-link credit state
	// at [node*numOut + out]; queued counts packets across a router's
	// FIFOs (its park/wake signal); routeSeq stamps routing decisions for
	// age-based arbitration and idSeq allocates packet ids — both
	// per-router so sharded ticking needs no shared counters (arbitration
	// only ever compares stamps issued by the same router, so per-router
	// stamping grants identically to a global counter). freePkts is the
	// per-router packet free-list — packets recycle at the router where
	// they die — and tids the kernel ticker ids for wakes.
	fifos    []fifoQueue
	busyTill []int64
	queued   []int32
	routeSeq []uint64
	idSeq    []uint64
	freePkts [][]*Packet
	tids     []sim.TickerID

	// shards is the spatial decomposition: router i belongs to shard
	// i*shards/Nodes(), a contiguous band of router ids. sh holds each
	// shard's cycle-local staging state, applied at the kernel barrier in
	// shard order (= router-id order, the serial order).
	shards int
	sh     []meshShard

	// EjectFn is invoked (one cycle after the grant) when a packet
	// leaves through a router's local ejection port. It must be set
	// before traffic flows.
	EjectFn func(node int, p *Packet, now int64)

	// CloneFn, when non-nil, deep-copies a packet payload for multicast
	// forks (DestPolicy cloning a packet at a fan-out router). Without it
	// forks share the payload pointer, which is only safe for payloads
	// the receiving protocol treats as immutable.
	CloneFn func(payload interface{}) interface{}

	// InFlight is the number of packets currently inside the network.
	InFlight int

	// Metrics, when non-nil, receives per-router instrumentation (link
	// occupancy, grants, arbitration stalls, queue integrals). It is
	// purely observational: routing, arbitration and timing are identical
	// with it on or off.
	Metrics *metrics.NoC

	// DeliverFn, when non-nil, observes every packet leaving the network
	// — ejections through a local port (consumed=false) and in-network
	// consumptions by the policy (consumed=true) — before the protocol
	// handler runs. Observational only.
	DeliverFn func(p *Packet, consumed bool, now int64)

	// Faults, when non-nil, arms deterministic fault injection: packets
	// are checksummed at injection and verified before every routing
	// decision, and the injector's plan is consulted at each inter-router
	// link grant for drops, corruptions and stalls. Local ejection ports
	// are never faulted — drops model link failures, and losing a packet
	// inside a node's NIC hand-off would wedge protocol serialization
	// state no retry can release.
	Faults *fault.Injector

	// DropFn, when non-nil, is invoked for every packet the fault layer
	// removes (injected drops and checksum discards), before the packet is
	// recycled. Drops detected during a router tick are reported at that
	// cycle's barrier, in router-id order. The protocol layer uses DropFn
	// as a NACK source: a dropped request chain triggers an immediate
	// backoff-and-reissue instead of waiting out the reply timeout.
	DropFn func(p *Packet, reason fault.DropReason, now int64)

	// TotalHops and DeliveredPackets accumulate across the run.
	TotalHops        int64
	DeliveredPackets int64
}

// Config describes a fabric to Build: the topology it is wired into, the
// per-router pipeline depth, the virtual-channel count and the routing
// policy. Zero Pipeline defaults to 1 cycle and zero VCs to one channel;
// Topo and Policy are required.
type Config struct {
	Topo     Topology
	Pipeline int64
	VCs      int
	Policy   Policy

	// Clone, when set, becomes the mesh's CloneFn (payload deep-copy for
	// multicast forks).
	Clone func(payload interface{}) interface{}
}

// Validate normalizes defaults in place and reports structural errors
// Build would panic on.
func (c *Config) Validate() error {
	if c.Pipeline == 0 {
		c.Pipeline = 1
	}
	if c.VCs == 0 {
		c.VCs = 1
	}
	switch {
	case c.Topo == nil:
		return fmt.Errorf("network: Config.Topo is required")
	case c.Topo.Nodes() < 1 || c.Topo.Degree() < 1 || c.Topo.Degree() > MaxDegree:
		return fmt.Errorf("network: topology %s has %d nodes, degree %d", c.Topo.Spec(), c.Topo.Nodes(), c.Topo.Degree())
	case c.Pipeline < 1:
		return fmt.Errorf("network: pipeline depth %d < 1", c.Pipeline)
	case c.VCs < 1:
		return fmt.Errorf("network: VC count %d < 1", c.VCs)
	case c.Policy == nil:
		return fmt.Errorf("network: Config.Policy is required")
	}
	return nil
}

// Build constructs the fabric described by cfg, registers every router
// with the kernel, and wires the policy in. Routers park themselves
// whenever their FIFOs drain and are woken by injection, protocol spawning
// and neighbor hand-off, so an idle router costs the kernel nothing beyond
// a cleared bit in its shard's active bitmap. Panics on an invalid Config —
// construction errors are programming errors, exactly as the old
// positional constructor treated them.
func Build(k *sim.Kernel, cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nodes := cfg.Topo.Nodes()
	m := &Mesh{
		Topo:     cfg.Topo,
		Pipeline: cfg.Pipeline,
		VCCount:  cfg.VCs,
		Policy:   cfg.Policy,
		CloneFn:  cfg.Clone,
		kernel:   k,
		deg:      cfg.Topo.Degree(),
	}
	m.numIn = m.deg + 2  // inter-router + local + gen
	m.numOut = m.deg + 1 // inter-router + local
	m.shards = k.Shards()
	if m.shards > nodes {
		m.shards = nodes
	}
	m.sh = make([]meshShard, m.shards)
	m.fifos = make([]fifoQueue, nodes*m.numIn*cfg.VCs)
	m.busyTill = make([]int64, nodes*m.numOut)
	m.queued = make([]int32, nodes)
	m.routeSeq = make([]uint64, nodes)
	m.idSeq = make([]uint64, nodes)
	m.freePkts = make([][]*Packet, nodes)
	m.tids = make([]sim.TickerID, nodes)
	for i := 0; i < nodes; i++ {
		r := &Router{NodeID: i, mesh: m, shard: i * m.shards / nodes}
		m.Routers = append(m.Routers, r)
		m.tids[i] = k.Register(r)
		k.AssignShard(m.tids[i], r.shard)
	}
	k.OnBarrier(m.flush)
	return m
}

// localSlot and genSlot are the port slots of the local and generation
// ports; slotDir maps an output slot back to its Dir (inter-router ports
// by number, the local slot to Local).
func (m *Mesh) localSlot() int { return m.deg }
func (m *Mesh) genSlot() int   { return m.deg + 1 }

func (m *Mesh) slotDir(s int) Dir {
	if s == m.deg {
		return Local
	}
	return Dir(s)
}

// outSlotOf maps a policy's Steer.Out direction to an output slot, or -1
// if the direction is not a port on this fabric.
func (m *Mesh) outSlotOf(d Dir) int {
	if d == Local {
		return m.deg
	}
	if int(d) < m.deg {
		return int(d)
	}
	return -1
}

// fifoAt returns the FIFO of (node, port slot, vc) in the flat array.
func (m *Mesh) fifoAt(node, port, vc int) *fifoQueue {
	return &m.fifos[(node*m.numIn+port)*m.VCCount+vc]
}

// ShardOf returns the shard owning node's router (and with it all
// controller work pinned to that node).
func (m *Mesh) ShardOf(node int) int { return node * m.shards / len(m.Routers) }

// Shards returns the number of spatial shards the mesh is split into
// (1 when the simulation runs serially).
func (m *Mesh) Shards() int { return m.shards }

// meshShard is one shard's cycle-local staging state. Routers append to
// their own shard's records during the tick segment; the barrier flush
// applies them in shard order, which — shards being contiguous router-id
// bands processed in ascending order — is router-id order, the exact order
// serial execution produces.
type meshShard struct {
	xfers    []xferRec
	drops    []dropRec
	delivers []deliverRec

	// Cycle deltas for the mesh-global accounting fields, folded into
	// InFlight / DeliveredPackets / TotalHops at the barrier.
	inFlight  int64
	delivered int64
	hops      int64

	_ [64]byte // keep adjacent shards off one cache line
}

// xferRec is a flit hand-off crossing a router boundary: the link mailbox.
// Applying it at the barrier instead of mid-tick is safe because the entry
// only becomes routable at readyAt, at least two cycles out.
type xferRec struct {
	to   int // receiving router id
	port int // input port slot at the receiver
	vc   int
	e    fifoEntry
}

// dropRec defers a fault-layer removal's DropFn callback (and the recycle
// that must follow it) to the barrier.
type dropRec struct {
	node   int // router the packet died at
	p      *Packet
	reason fault.DropReason
}

// deliverRec defers an in-network consumption's DeliverFn callback (and
// recycle) to the barrier. Only staged when DeliverFn is armed.
type deliverRec struct {
	node int
	p    *Packet
}

// flush is the mesh's kernel barrier hook: apply every shard's staged
// cross-router effects in shard order.
func (m *Mesh) flush() {
	now := m.kernel.Now()
	for s := range m.sh {
		sh := &m.sh[s]
		for i := range sh.xfers {
			x := &sh.xfers[i]
			m.enqueueAt(x.to, x.port, x.vc, x.e)
			sh.xfers[i] = xferRec{}
		}
		sh.xfers = sh.xfers[:0]
		for i := range sh.drops {
			d := sh.drops[i]
			m.DropFn(d.p, d.reason, now)
			m.recycleAt(d.node, d.p)
			sh.drops[i] = dropRec{}
		}
		sh.drops = sh.drops[:0]
		for i := range sh.delivers {
			d := sh.delivers[i]
			m.DeliverFn(d.p, true, now)
			m.recycleAt(d.node, d.p)
			sh.delivers[i] = deliverRec{}
		}
		sh.delivers = sh.delivers[:0]
		m.InFlight += int(sh.inFlight)
		m.DeliveredPackets += sh.delivered
		m.TotalHops += sh.hops
		sh.inFlight, sh.delivered, sh.hops = 0, 0, 0
	}
}

// Nodes returns the number of routers in the fabric.
func (m *Mesh) Nodes() int { return len(m.Routers) }

// InPorts and OutPorts export the router port-slot counts for
// instrumentation sizing (metrics.NewNoC).
func (m *Mesh) InPorts() int  { return m.numIn }
func (m *Mesh) OutPorts() int { return m.numOut }

// NextIDFor allocates a fresh packet id from node's router-local sequence.
// The node id is folded into the high bits so per-router sequences never
// collide; nothing in routing or arbitration compares ids, so the numbering
// scheme is unobservable beyond uniqueness.
func (m *Mesh) NextIDFor(node int) uint64 {
	m.idSeq[node]++
	return uint64(node)<<40 | m.idSeq[node]
}

// AllocPacketFor returns a zeroed packet from node's router-local free-list
// (or a fresh one). The mesh recycles it automatically when it leaves the
// network — through a local ejection port, after EjectFn returns, or when
// the policy consumes it in-network — so callers must not retain pool
// packets past those points. Protocol engines build all their traffic
// through this; during a sharded tick they may only allocate at the node
// being ticked, which is the only caller the engines have.
func (m *Mesh) AllocPacketFor(node int) *Packet {
	free := m.freePkts[node]
	if n := len(free); n > 0 {
		p := free[n-1]
		m.freePkts[node] = free[:n-1]
		*p = Packet{pooled: true}
		return p
	}
	return &Packet{pooled: true}
}

// recycleAt returns a dead pool packet to the free-list of the router it
// died at. Literal-built packets pass through untouched.
func (m *Mesh) recycleAt(node int, p *Packet) {
	if p.pooled {
		p.Payload = nil
		p.DstSet = nil
		m.freePkts[node] = append(m.freePkts[node], p)
	}
}

// enqueueAt appends e to node's [port][vc] FIFO and wakes the router: it
// now has work and must tick until it drains again.
func (m *Mesh) enqueueAt(node, port, vc int, e fifoEntry) {
	m.fifoAt(node, port, vc).push(e)
	m.queued[node]++
	m.kernel.Wake(m.tids[node])
}

// Quiescent implements sim.Parker: a router with empty FIFOs has nothing to
// route or arbitrate (busyTill holds an absolute cycle, so an in-flight
// serialization tail needs no ticking to expire), and every path that hands
// the router a packet wakes it.
func (r *Router) Quiescent() bool { return r.mesh.queued[r.NodeID] == 0 }

// Inject places a packet into node's router through the local injection
// port. The packet becomes routable after the router pipeline.
func (m *Mesh) Inject(node int, p *Packet, now int64) {
	p.ArrivalDir = Local
	p.InjectedAt = now
	p.routed = false
	p.stallStart = 0
	p.serialWait = 0
	if m.Faults != nil {
		p.Checksum = ChecksumOf(p)
	}
	m.InFlight++
	m.enqueueAt(node, m.localSlot(), int(p.Class)%m.VCCount,
		fifoEntry{pkt: p, readyAt: now + m.Pipeline + m.Routers[node].ExtraHopDelay})
}

// spawn places a protocol-generated packet into node's generation port.
// Expedited packets are ready immediately (their routing work happened in
// the pipeline pass that spawned them); others pay the router pipeline.
func (m *Mesh) spawn(node int, p *Packet, now int64) {
	r := m.Routers[node]
	p.ArrivalDir = Local
	if p.InjectedAt == 0 {
		p.InjectedAt = now
	}
	p.routed = false
	p.stallStart = 0
	p.serialWait = 0
	if m.Faults != nil {
		p.Checksum = ChecksumOf(p)
	}
	// During a sharded tick, spawn only ever targets the router being
	// ticked (policies spawn at their own node), so the direct enqueue is
	// shard-local; the InFlight delta is staged so the mesh-global counter
	// is only touched by the coordinator.
	if m.kernel.InTick() {
		m.sh[r.shard].inFlight++
	} else {
		m.InFlight++
	}
	delay := m.Pipeline + r.ExtraHopDelay
	if p.Expedited {
		delay = 0
	}
	m.enqueueAt(node, m.genSlot(), int(p.Class)%m.VCCount, fifoEntry{pkt: p, readyAt: now + delay})
}

// Spawn is the exported form of spawn for protocol engines that generate
// packets outside a Route call (e.g. releasing a queued request).
func (m *Mesh) Spawn(node int, p *Packet, now int64) { m.spawn(node, p, now) }

// Tick advances one router by one cycle: consult the policy for newly ready
// packets, then arbitrate each output port. Tick only mutates the router's
// own band of the mesh arrays and its shard's staging records — never
// another router's band or a mesh-global field — which is what lets shards
// tick concurrently. The fifos/busy locals below are the router's
// contiguous array bands; every FIFO scan in both phases walks them
// linearly (port-major, VC-minor — the flat layout's element order).
func (r *Router) Tick(now int64) {
	m := r.mesh
	node := r.NodeID
	sh := &m.sh[r.shard]
	nm := m.Metrics
	nSlots := m.numIn * m.VCCount
	fifos := m.fifos[node*nSlots : (node+1)*nSlots]
	busy := m.busyTill[node*m.numOut : (node+1)*m.numOut]
	if nm != nil {
		// Integrate input-FIFO occupancy (packet-cycles) per port/VC.
		base := nm.InIdx(node, 0, 0)
		for slot := 0; slot < nSlots; slot++ {
			nm.QueueSum[base+slot] += int64(fifos[slot].n)
		}
	}
	// Phase 1: routing decisions for FIFO heads that cleared the pipeline.
	for slot := 0; slot < nSlots; slot++ {
		h := fifos[slot].head0()
		if h == nil || h.readyAt > now || h.pkt.routed {
			continue
		}
		p := h.pkt
		if inj := m.Faults; inj != nil && p.Checksum != ChecksumOf(p) {
			// Corruption detected: discard before the policy (and
			// its tree-cache side effects) ever sees the packet.
			atomic.AddInt64(&inj.ChecksumDrops, 1)
			fifos[slot].pop()
			m.queued[node]--
			sh.inFlight--
			if m.DropFn != nil {
				sh.drops = append(sh.drops, dropRec{node: node, p: p, reason: fault.DropChecksum})
			} else {
				m.recycleAt(node, p)
			}
			continue
		}
		st := m.Policy.Route(r, p, now)
		for _, sp := range st.Spawn {
			m.spawn(node, sp, now)
		}
		switch {
		case st.Consume:
			fifos[slot].pop()
			m.queued[node]--
			sh.inFlight--
			sh.delivered++
			sh.hops += int64(p.Hops)
			if m.DeliverFn != nil {
				sh.delivers = append(sh.delivers, deliverRec{node: node, p: p})
			} else {
				m.recycleAt(node, p)
			}
		case st.Stall:
			if p.stallStart == 0 {
				p.stallStart = now
			}
			if nm != nil {
				nm.PolicyStalls[node]++
			}
		default:
			outSlot := m.outSlotOf(st.Out)
			if outSlot < 0 {
				panic(fmt.Sprintf("network: policy steered packet %d to invalid port %v on %s", p.ID, st.Out, m.Topo.Spec()))
			}
			p.routed = true
			p.outSlot = outSlot
			p.stallStart = 0
			m.routeSeq[node]++
			p.routeSeq = m.routeSeq[node]
		}
	}
	// Phase 2: output arbitration, one grant per output port per cycle.
	// Arbitration is age-based (oldest routing decision wins): a message
	// spawned by the protocol in reaction to a routed packet (e.g. a
	// teardown chasing the reply that just built a virtual link) can
	// then never overtake that packet onto the link, which the
	// in-network protocol's correctness argument requires.
	local := m.localSlot()
	for out := 0; out < m.numOut; out++ {
		if inj := m.Faults; inj != nil && out != local &&
			inj.StallAt(now, node, out) {
			// The link is frozen by a stall fault this cycle: no grant,
			// exactly as if it were still serializing.
			continue
		}
		if busy[out] > now {
			if nm != nil {
				// The link is still serializing a previous packet's
				// flits: charge routed heads waiting for it.
				for slot := 0; slot < nSlots; slot++ {
					h := fifos[slot].head0()
					if h != nil && h.pkt.routed && h.pkt.outSlot == out {
						h.pkt.serialWait++
						nm.SerialWait[nm.OutIdx(node, out)]++
					}
				}
			}
			continue
		}
		granted := -1
		var bestSeq uint64
		for slot := 0; slot < nSlots; slot++ {
			h := fifos[slot].head0()
			if h == nil || !h.pkt.routed || h.pkt.outSlot != out {
				continue
			}
			if granted < 0 || h.pkt.routeSeq < bestSeq {
				granted = slot
				bestSeq = h.pkt.routeSeq
			}
		}
		if granted < 0 {
			continue
		}
		e := fifos[granted].pop()
		m.queued[node]--
		p := e.pkt
		p.routed = false
		if inj := m.Faults; inj != nil && out != local &&
			(inj.Plan.Spec.Scope == fault.ScopeAll || p.Retryable) &&
			inj.DropAt(now, node, out) {
			// The packet is lost on the link: it leaves the network
			// without being delivered (no hop/delivery accounting, no
			// link occupancy) and the protocol is notified so it can
			// reissue. The grant slot is consumed — a drop does not
			// free the cycle for the next-oldest packet.
			sh.inFlight--
			if m.DropFn != nil {
				sh.drops = append(sh.drops, dropRec{node: node, p: p, reason: fault.DropInjected})
			} else {
				m.recycleAt(node, p)
			}
			continue
		}
		busy[out] = now + int64(p.Flits)
		if nm != nil {
			oi := nm.OutIdx(node, out)
			nm.Grants[oi]++
			nm.LinkBusy[oi] += int64(p.Flits)
		}
		if out == local {
			// Ejection is protocol work (EjectFn reaches into controller
			// state); it is deferred through the owning shard's queue and
			// lands on the event heap one cycle out, exactly as the old
			// direct Schedule(1, ...) did.
			m.kernel.Defer(r.shard, 1, func() {
				m.InFlight--
				m.DeliveredPackets++
				m.TotalHops += int64(p.Hops)
				if m.DeliverFn != nil {
					m.DeliverFn(p, false, m.kernelNow())
				}
				m.EjectFn(node, p, m.kernelNow())
				m.recycleAt(node, p)
			})
			continue
		}
		nb, ok := m.Topo.Neighbor(node, Dir(out))
		if !ok {
			panic(fmt.Sprintf("network: packet %d routed off-fabric %v from node %d on %s", p.ID, Dir(out), node, m.Topo.Spec()))
		}
		if inj := m.Faults; inj != nil && inj.CorruptAt(now, node, out) {
			// Flip the integrity word on the wire; the neighbor's
			// verification discards the packet before routing it.
			p.Checksum = ^p.Checksum
		}
		p.ArrivalDir = m.Topo.Arrival(Dir(out))
		p.Hops++
		// Hand-off goes through the shard mailbox and lands on the
		// neighbor's FIFO at the cycle barrier — even for a same-shard
		// neighbor, so queue-occupancy metrics are identical at every
		// shard count. Timing is unchanged: the entry only becomes
		// routable at readyAt, which is at least two cycles out.
		sh.xfers = append(sh.xfers, xferRec{
			to:   nb,
			port: int(p.ArrivalDir),
			vc:   granted % m.VCCount,
			e:    fifoEntry{pkt: p, readyAt: now + 1 + m.Pipeline + m.Routers[nb].ExtraHopDelay},
		})
	}
}

func (m *Mesh) kernelNow() int64 { return m.kernel.Now() }

// QueuedPackets returns the number of packets waiting in this router's
// FIFOs, for drain checks and tests.
func (r *Router) QueuedPackets() int { return int(r.mesh.queued[r.NodeID]) }
