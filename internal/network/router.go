package network

import (
	"fmt"

	"innetcc/internal/fault"
	"innetcc/internal/metrics"
	"innetcc/internal/sim"
)

// numInPorts: N, S, E, W, Local (NIC injection), Gen (protocol-spawned).
const (
	portGen     = 5
	numInPorts  = 6
	numOutPorts = 5 // N, S, E, W, Local (ejection)
)

type fifoEntry struct {
	pkt     *Packet
	readyAt int64 // cycle the head flit clears this router's pipeline
}

// Router is one mesh router. It owns per-input-port, per-VC FIFOs, a k-cycle
// pipeline, and round-robin arbitration per output port.
type Router struct {
	// NodeID is the router's position, equal to the attached node's id.
	NodeID int
	mesh   *Mesh
	tid    sim.TickerID

	in       [numInPorts][]fifoQueue // indexed [port][vc]
	busyTill [numOutPorts]int64
	queued   int // packets across all FIFOs, for park/wake

	// ExtraHopDelay is added to every packet's per-hop pipeline time at
	// this router. The Figure 10 experiment uses it to model an
	// above-network tree-cache implementation where each lookup must
	// leave and re-enter the router.
	ExtraHopDelay int64
}

// fifoQueue is a growable ring buffer of fifoEntries. Unlike the obvious
// `q = q[1:]` slice queue, a ring never strands capacity behind the read
// point, so a router in steady state pushes and pops with zero allocations.
type fifoQueue struct {
	buf     []fifoEntry
	head, n int
}

func (f *fifoQueue) push(e fifoEntry) {
	if f.n == len(f.buf) {
		grown := make([]fifoEntry, max(4, 2*len(f.buf)))
		for i := 0; i < f.n; i++ {
			grown[i] = f.buf[(f.head+i)%len(f.buf)]
		}
		f.buf, f.head = grown, 0
	}
	f.buf[(f.head+f.n)%len(f.buf)] = e
	f.n++
}

func (f *fifoQueue) head0() *fifoEntry {
	if f.n == 0 {
		return nil
	}
	return &f.buf[f.head]
}

func (f *fifoQueue) pop() fifoEntry {
	e := f.buf[f.head]
	f.buf[f.head] = fifoEntry{}
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return e
}

// Mesh is a w-by-h grid of routers sharing one routing Policy. Node i sits
// at (i%w, i/w).
type Mesh struct {
	W, H     int
	Pipeline int64
	VCCount  int
	Routers  []*Router
	Policy   Policy

	kernel   *sim.Kernel
	nextID   uint64
	routeSeq uint64

	// freePkts is the packet free-list: packets the mesh handed out with
	// AllocPacket come back here when they leave the network, so the
	// protocol hot path allocates no packets in steady state.
	freePkts []*Packet

	// EjectFn is invoked (one cycle after the grant) when a packet
	// leaves through a router's local ejection port. It must be set
	// before traffic flows.
	EjectFn func(node int, p *Packet, now int64)

	// InFlight is the number of packets currently inside the network.
	InFlight int

	// Metrics, when non-nil, receives per-router instrumentation (link
	// occupancy, grants, arbitration stalls, queue integrals). It is
	// purely observational: routing, arbitration and timing are identical
	// with it on or off.
	Metrics *metrics.NoC

	// DeliverFn, when non-nil, observes every packet leaving the network
	// — ejections through a local port (consumed=false) and in-network
	// consumptions by the policy (consumed=true) — before the protocol
	// handler runs. Observational only.
	DeliverFn func(p *Packet, consumed bool, now int64)

	// Faults, when non-nil, arms deterministic fault injection: packets
	// are checksummed at injection and verified before every routing
	// decision, and the injector's plan is consulted at each inter-router
	// link grant for drops, corruptions and stalls. Local ejection ports
	// are never faulted — drops model link failures, and losing a packet
	// inside a node's NIC hand-off would wedge protocol serialization
	// state no retry can release.
	Faults *fault.Injector

	// DropFn, when non-nil, is invoked synchronously for every packet
	// the fault layer removes (injected drops and checksum discards),
	// before the packet is recycled. The protocol layer uses it as a
	// NACK source: a dropped request chain triggers an immediate
	// backoff-and-reissue instead of waiting out the reply timeout.
	DropFn func(p *Packet, reason fault.DropReason, now int64)

	// TotalHops and DeliveredPackets accumulate across the run.
	TotalHops        int64
	DeliveredPackets int64
}

// NewMesh builds a w-by-h mesh with the given router pipeline depth and
// virtual-channel count, registers every router with the kernel, and wires
// the policy in. Routers park themselves whenever their FIFOs drain and are
// woken by injection, protocol spawning and neighbor hand-off, so an idle
// router costs the kernel nothing but a flag check per cycle.
func NewMesh(k *sim.Kernel, w, h int, pipeline int64, vcCount int, policy Policy) *Mesh {
	if w <= 0 || h <= 0 || pipeline < 1 || vcCount < 1 {
		panic("network: invalid mesh shape")
	}
	m := &Mesh{W: w, H: h, Pipeline: pipeline, VCCount: vcCount, Policy: policy, kernel: k}
	for i := 0; i < w*h; i++ {
		r := &Router{NodeID: i, mesh: m}
		for p := 0; p < numInPorts; p++ {
			r.in[p] = make([]fifoQueue, vcCount)
		}
		m.Routers = append(m.Routers, r)
		r.tid = k.Register(r)
	}
	return m
}

// Nodes returns the number of routers in the mesh.
func (m *Mesh) Nodes() int { return m.W * m.H }

// InPorts and OutPorts export the router port counts for instrumentation
// sizing (metrics.NewNoC).
func (m *Mesh) InPorts() int  { return numInPorts }
func (m *Mesh) OutPorts() int { return numOutPorts }

// NextID allocates a fresh packet id.
func (m *Mesh) NextID() uint64 {
	m.nextID++
	return m.nextID
}

// AllocPacket returns a zeroed packet from the mesh free-list (or a fresh
// one). The mesh recycles it automatically when it leaves the network —
// through a local ejection port, after EjectFn returns, or when the policy
// consumes it in-network — so callers must not retain pool packets past
// those points. Protocol engines build all their traffic through this.
func (m *Mesh) AllocPacket() *Packet {
	if n := len(m.freePkts); n > 0 {
		p := m.freePkts[n-1]
		m.freePkts = m.freePkts[:n-1]
		*p = Packet{pooled: true}
		return p
	}
	return &Packet{pooled: true}
}

// recycle returns a dead pool packet to the free-list. Literal-built
// packets pass through untouched.
func (m *Mesh) recycle(p *Packet) {
	if p.pooled {
		p.Payload = nil
		m.freePkts = append(m.freePkts, p)
	}
}

// enqueue appends e to the router's [port][vc] FIFO and wakes the router:
// it now has work and must tick until it drains again.
func (r *Router) enqueue(port Dir, vc int, e fifoEntry) {
	r.in[port][vc].push(e)
	r.queued++
	r.mesh.kernel.Wake(r.tid)
}

// Quiescent implements sim.Parker: a router with empty FIFOs has nothing to
// route or arbitrate (busyTill holds an absolute cycle, so an in-flight
// serialization tail needs no ticking to expire), and every path that hands
// the router a packet wakes it.
func (r *Router) Quiescent() bool { return r.queued == 0 }

// Inject places a packet into node's router through the local injection
// port. The packet becomes routable after the router pipeline.
func (m *Mesh) Inject(node int, p *Packet, now int64) {
	r := m.Routers[node]
	p.ArrivalDir = Local
	p.InjectedAt = now
	p.routed = false
	p.stallStart = 0
	p.serialWait = 0
	if m.Faults != nil {
		p.Checksum = ChecksumOf(p)
	}
	m.InFlight++
	r.enqueue(Local, int(p.Class)%m.VCCount, fifoEntry{pkt: p, readyAt: now + m.Pipeline + r.ExtraHopDelay})
}

// spawn places a protocol-generated packet into node's generation port.
// Expedited packets are ready immediately (their routing work happened in
// the pipeline pass that spawned them); others pay the router pipeline.
func (m *Mesh) spawn(node int, p *Packet, now int64) {
	r := m.Routers[node]
	p.ArrivalDir = Local
	if p.InjectedAt == 0 {
		p.InjectedAt = now
	}
	p.routed = false
	p.stallStart = 0
	p.serialWait = 0
	if m.Faults != nil {
		p.Checksum = ChecksumOf(p)
	}
	m.InFlight++
	delay := m.Pipeline + r.ExtraHopDelay
	if p.Expedited {
		delay = 0
	}
	r.enqueue(portGen, int(p.Class)%m.VCCount, fifoEntry{pkt: p, readyAt: now + delay})
}

// Spawn is the exported form of spawn for protocol engines that generate
// packets outside a Route call (e.g. releasing a queued request).
func (m *Mesh) Spawn(node int, p *Packet, now int64) { m.spawn(node, p, now) }

// Tick advances one router by one cycle: consult the policy for newly ready
// packets, then arbitrate each output port.
func (r *Router) Tick(now int64) {
	m := r.mesh
	nm := m.Metrics
	if nm != nil {
		// Integrate input-FIFO occupancy (packet-cycles) per port/VC.
		for port := 0; port < numInPorts; port++ {
			for vc := 0; vc < m.VCCount; vc++ {
				nm.QueueSum[nm.InIdx(r.NodeID, port, vc)] += int64(r.in[port][vc].n)
			}
		}
	}
	// Phase 1: routing decisions for FIFO heads that cleared the pipeline.
	for port := 0; port < numInPorts; port++ {
		for vc := 0; vc < m.VCCount; vc++ {
			h := r.in[port][vc].head0()
			if h == nil || h.readyAt > now || h.pkt.routed {
				continue
			}
			p := h.pkt
			if inj := m.Faults; inj != nil && p.Checksum != ChecksumOf(p) {
				// Corruption detected: discard before the policy (and
				// its tree-cache side effects) ever sees the packet.
				inj.ChecksumDrops++
				r.in[port][vc].pop()
				r.queued--
				m.InFlight--
				if m.DropFn != nil {
					m.DropFn(p, fault.DropChecksum, now)
				}
				m.recycle(p)
				continue
			}
			st := m.Policy.Route(r, p, now)
			for _, sp := range st.Spawn {
				m.spawn(r.NodeID, sp, now)
			}
			switch {
			case st.Consume:
				r.in[port][vc].pop()
				r.queued--
				m.InFlight--
				m.DeliveredPackets++
				m.TotalHops += int64(p.Hops)
				if m.DeliverFn != nil {
					m.DeliverFn(p, true, now)
				}
				m.recycle(p)
			case st.Stall:
				if p.stallStart == 0 {
					p.stallStart = now
				}
				if nm != nil {
					nm.PolicyStalls[r.NodeID]++
				}
			default:
				if st.Out >= numOutPorts {
					panic(fmt.Sprintf("network: policy steered packet %d to invalid port %v", p.ID, st.Out))
				}
				p.routed = true
				p.outPort = st.Out
				p.stallStart = 0
				m.routeSeq++
				p.routeSeq = m.routeSeq
			}
		}
	}
	// Phase 2: output arbitration, one grant per output port per cycle.
	// Arbitration is age-based (oldest routing decision wins): a message
	// spawned by the protocol in reaction to a routed packet (e.g. a
	// teardown chasing the reply that just built a virtual link) can
	// then never overtake that packet onto the link, which the
	// in-network protocol's correctness argument requires.
	nSlots := numInPorts * m.VCCount
	for out := 0; out < numOutPorts; out++ {
		if inj := m.Faults; inj != nil && Dir(out) != Local &&
			inj.StallAt(now, r.NodeID, out) {
			// The link is frozen by a stall fault this cycle: no grant,
			// exactly as if it were still serializing.
			continue
		}
		if r.busyTill[out] > now {
			if nm != nil {
				// The link is still serializing a previous packet's
				// flits: charge routed heads waiting for it.
				for slot := 0; slot < nSlots; slot++ {
					h := r.in[slot/m.VCCount][slot%m.VCCount].head0()
					if h != nil && h.pkt.routed && h.pkt.outPort == Dir(out) {
						h.pkt.serialWait++
						nm.SerialWait[nm.OutIdx(r.NodeID, out)]++
					}
				}
			}
			continue
		}
		granted := -1
		var bestSeq uint64
		for slot := 0; slot < nSlots; slot++ {
			port, vc := slot/m.VCCount, slot%m.VCCount
			h := r.in[port][vc].head0()
			if h == nil || !h.pkt.routed || h.pkt.outPort != Dir(out) {
				continue
			}
			if granted < 0 || h.pkt.routeSeq < bestSeq {
				granted = slot
				bestSeq = h.pkt.routeSeq
			}
		}
		if granted < 0 {
			continue
		}
		port, vc := granted/m.VCCount, granted%m.VCCount
		e := r.in[port][vc].pop()
		r.queued--
		p := e.pkt
		p.routed = false
		if inj := m.Faults; inj != nil && Dir(out) != Local &&
			(inj.Plan.Spec.Scope == fault.ScopeAll || p.Retryable) &&
			inj.DropAt(now, r.NodeID, out) {
			// The packet is lost on the link: it leaves the network
			// without being delivered (no hop/delivery accounting, no
			// link occupancy) and the protocol is notified so it can
			// reissue. The grant slot is consumed — a drop does not
			// free the cycle for the next-oldest packet.
			m.InFlight--
			if m.DropFn != nil {
				m.DropFn(p, fault.DropInjected, now)
			}
			m.recycle(p)
			continue
		}
		r.busyTill[out] = now + int64(p.Flits)
		if nm != nil {
			oi := nm.OutIdx(r.NodeID, out)
			nm.Grants[oi]++
			nm.LinkBusy[oi] += int64(p.Flits)
		}
		if Dir(out) == Local {
			m.kernel.Schedule(1, func() {
				m.InFlight--
				m.DeliveredPackets++
				m.TotalHops += int64(p.Hops)
				if m.DeliverFn != nil {
					m.DeliverFn(p, false, m.kernelNow())
				}
				m.EjectFn(r.NodeID, p, m.kernelNow())
				m.recycle(p)
			})
			continue
		}
		nb, ok := NeighborOf(m.W, m.H, r.NodeID, Dir(out))
		if !ok {
			panic(fmt.Sprintf("network: packet %d routed off-mesh %v from node %d", p.ID, Dir(out), r.NodeID))
		}
		next := m.Routers[nb]
		if inj := m.Faults; inj != nil && inj.CorruptAt(now, r.NodeID, out) {
			// Flip the integrity word on the wire; the neighbor's
			// verification discards the packet before routing it.
			p.Checksum = ^p.Checksum
		}
		p.ArrivalDir = Dir(out).Opposite()
		p.Hops++
		next.enqueue(p.ArrivalDir, vc, fifoEntry{pkt: p, readyAt: now + 1 + m.Pipeline + next.ExtraHopDelay})
	}
}

func (m *Mesh) kernelNow() int64 { return m.kernel.Now() }

// QueuedPackets returns the number of packets waiting in this router's
// FIFOs, for drain checks and tests.
func (r *Router) QueuedPackets() int { return r.queued }
