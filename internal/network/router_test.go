package network

import (
	"testing"
	"testing/quick"

	"innetcc/internal/sim"
)

func TestDirOpposite(t *testing.T) {
	cases := map[Dir]Dir{North: South, South: North, East: West, West: East}
	for d, want := range cases {
		if d.Opposite() != want {
			t.Fatalf("%v.Opposite() = %v, want %v", d, d.Opposite(), want)
		}
	}
	if Local.Opposite() != DirNone || DirNone.Opposite() != DirNone {
		t.Fatal("Local/DirNone opposite should be DirNone")
	}
}

func TestDirString(t *testing.T) {
	for d, want := range map[Dir]string{North: "N", South: "S", East: "E", West: "W", Local: "L", DirNone: "-"} {
		if d.String() != want {
			t.Fatalf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}

// testMesh is the test shorthand for the old positional constructor: an
// open W-by-H mesh under the destination policy (or any policy).
func testMesh(k *sim.Kernel, w, h int, pipeline int64, vcs int, policy Policy) *Mesh {
	return Build(k, Config{Topo: Mesh2D{W: w, H: h}, Pipeline: pipeline, VCs: vcs, Policy: policy})
}

func TestXYToResolvesXFirst(t *testing.T) {
	m := Mesh2D{W: 4, H: 4}
	// From node 0 (0,0) to node 5 (1,1): X first -> East.
	if d := m.NextHop(0, 5); d != East {
		t.Fatalf("NextHop(0->5) = %v, want East", d)
	}
	// Same column: Y only.
	if d := m.NextHop(0, 4); d != South {
		t.Fatalf("NextHop(0->4) = %v, want South", d)
	}
	if d := m.NextHop(5, 4); d != West {
		t.Fatalf("NextHop(5->4) = %v, want West", d)
	}
	if d := m.NextHop(4, 0); d != North {
		t.Fatalf("NextHop(4->0) = %v, want North", d)
	}
	if d := m.NextHop(7, 7); d != Local {
		t.Fatalf("NextHop(self) = %v, want Local", d)
	}
}

func TestHopDist(t *testing.T) {
	m := Mesh2D{W: 4, H: 4}
	if d := m.Dist(0, 15); d != 6 {
		t.Fatalf("Dist(0,15) = %d, want 6", d)
	}
	if d := m.Dist(5, 5); d != 0 {
		t.Fatalf("Dist(self) = %d, want 0", d)
	}
	if m.Dist(3, 12) != m.Dist(12, 3) {
		t.Fatal("Dist not symmetric")
	}
}

func TestNeighborOf(t *testing.T) {
	// 4x4 mesh. Node 5 = (1,1).
	m := Mesh2D{W: 4, H: 4}
	cases := []struct {
		d    Dir
		want int
		ok   bool
	}{{North, 1, true}, {South, 9, true}, {East, 6, true}, {West, 4, true}}
	for _, c := range cases {
		got, ok := m.Neighbor(5, c.d)
		if got != c.want || ok != c.ok {
			t.Fatalf("Neighbor(5,%v) = %d,%v want %d,%v", c.d, got, ok, c.want, c.ok)
		}
	}
	// Edges.
	if _, ok := m.Neighbor(0, North); ok {
		t.Fatal("node 0 should have no north neighbor")
	}
	if _, ok := m.Neighbor(3, East); ok {
		t.Fatal("node 3 should have no east neighbor")
	}
	if _, ok := m.Neighbor(5, Local); ok {
		t.Fatal("Local is not a mesh neighbor")
	}
}

// Property: following NextHop step by step always reaches the destination
// in exactly Dist hops.
func TestXYRoutingConvergesProperty(t *testing.T) {
	topo := Mesh2D{W: 8, H: 8}
	err := quick.Check(func(a, b uint8) bool {
		from, to := int(a)%topo.Nodes(), int(b)%topo.Nodes()
		cur := from
		steps := 0
		for cur != to {
			d := topo.NextHop(cur, to)
			nb, ok := topo.Neighbor(cur, d)
			if !ok {
				return false
			}
			cur = nb
			steps++
			if steps > topo.W+topo.H {
				return false
			}
		}
		return steps == topo.Dist(from, to)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func deliverySetup(t *testing.T, w, h int, pipeline int64) (*sim.Kernel, *Mesh, map[uint64]int64) {
	t.Helper()
	k := sim.NewKernel(1)
	m := testMesh(k, w, h, pipeline, 1, DestPolicy{})
	delivered := make(map[uint64]int64)
	m.EjectFn = func(node int, p *Packet, now int64) {
		if node != p.Dst {
			t.Errorf("packet %d ejected at %d, want %d", p.ID, node, p.Dst)
		}
		delivered[p.ID] = now
	}
	return k, m, delivered
}

func TestSinglePacketLatency(t *testing.T) {
	// 1-flit packet, pipeline P, distance D hops: inject pipeline (P),
	// then per hop: 1 cycle link + P pipeline, then 1 cycle ejection.
	// Total = P + D*(1+P) + 1.
	const pipeline = 5
	k, m, delivered := deliverySetup(t, 4, 4, pipeline)
	p := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 1}
	k.Step() // move off cycle 0
	start := k.Now()
	m.Inject(0, p, start)
	if !k.RunUntil(func() bool { return len(delivered) == 1 }, 1000) {
		t.Fatal("packet never delivered")
	}
	d := Mesh2D{W: 4, H: 4}.Dist(0, 3)
	want := start + pipeline + int64(d)*(1+pipeline) + 1
	if delivered[p.ID] != want {
		t.Fatalf("delivered at %d, want %d", delivered[p.ID], want)
	}
	if p.Hops != d {
		t.Fatalf("hops %d, want %d", p.Hops, d)
	}
}

func TestLocalDeliveryNoHops(t *testing.T) {
	k, m, delivered := deliverySetup(t, 4, 4, 5)
	p := &Packet{ID: m.NextIDFor(0), Src: 6, Dst: 6, Flits: 1}
	m.Inject(6, p, k.Now())
	if !k.RunUntil(func() bool { return len(delivered) == 1 }, 100) {
		t.Fatal("self packet never delivered")
	}
	if p.Hops != 0 {
		t.Fatalf("self delivery took %d hops", p.Hops)
	}
}

func TestMultiFlitSerialization(t *testing.T) {
	// Two 5-flit packets from the same source to the same destination:
	// the second must wait for the first to release each link, so their
	// delivery times differ by at least flits cycles.
	k, m, delivered := deliverySetup(t, 4, 1, 2)
	p1 := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 5}
	p2 := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 5}
	m.Inject(0, p1, k.Now())
	m.Inject(0, p2, k.Now())
	if !k.RunUntil(func() bool { return len(delivered) == 2 }, 1000) {
		t.Fatal("packets not delivered")
	}
	gap := delivered[p2.ID] - delivered[p1.ID]
	if gap < 5 {
		t.Fatalf("second packet only %d cycles behind; links not serializing flits", gap)
	}
}

func TestContentionDelaysCrossTraffic(t *testing.T) {
	// Many packets from distinct sources all target node 15 of a 4x4
	// mesh; the shared links near the destination force serialization,
	// so total delivery time must exceed a single packet's latency.
	k, m, delivered := deliverySetup(t, 4, 4, 2)
	const n = 8
	for i := 0; i < n; i++ {
		p := &Packet{ID: m.NextIDFor(0), Src: i, Dst: 15, Flits: 5}
		m.Inject(i, p, k.Now())
	}
	if !k.RunUntil(func() bool { return len(delivered) == n }, 5000) {
		t.Fatal("packets not delivered under contention")
	}
	var last int64
	for _, at := range delivered {
		if at > last {
			last = at
		}
	}
	// The ejection port at node 15 alone needs n*5 cycles of link time.
	if last < int64(n*5) {
		t.Fatalf("all delivered by %d, too fast for %d 5-flit packets through one ejection port", last, n)
	}
	if m.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", m.InFlight)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	k, m, delivered := deliverySetup(t, 4, 4, 3)
	want := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			p := &Packet{ID: m.NextIDFor(0), Src: s, Dst: d, Flits: 1}
			m.Inject(s, p, k.Now())
			want++
		}
	}
	if !k.RunUntil(func() bool { return len(delivered) == want }, 20000) {
		t.Fatalf("delivered %d of %d", len(delivered), want)
	}
	if m.DeliveredPackets != int64(want) {
		t.Fatalf("DeliveredPackets=%d, want %d", m.DeliveredPackets, want)
	}
}

// consumePolicy consumes everything at a chosen node and forwards otherwise,
// exercising Steer.Consume and Steer.Spawn.
type consumePolicy struct {
	at       int
	consumed int
	spawned  bool
}

func (c *consumePolicy) Route(r *Router, p *Packet, now int64) Steer {
	if r.NodeID == c.at && p.Dst == c.at {
		st := Steer{Consume: true}
		if !c.spawned {
			c.spawned = true
			st.Spawn = []*Packet{{ID: r.mesh.NextIDFor(r.NodeID), Src: c.at, Dst: p.Src, Flits: 1}}
		}
		c.consumed++
		return st
	}
	return Steer{Out: r.Topo().NextHop(r.NodeID, p.Dst)}
}

func TestConsumeAndSpawn(t *testing.T) {
	k := sim.NewKernel(1)
	pol := &consumePolicy{at: 5}
	m := testMesh(k, 4, 4, 2, 1, pol)
	got := 0
	m.EjectFn = func(node int, p *Packet, now int64) {
		if node != 0 {
			t.Errorf("spawned packet ejected at %d, want 0", node)
		}
		got++
	}
	m.Inject(0, &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 5, Flits: 1}, k.Now())
	if !k.RunUntil(func() bool { return got == 1 }, 1000) {
		t.Fatal("spawned reply never returned")
	}
	if pol.consumed != 1 {
		t.Fatalf("consumed %d packets, want 1", pol.consumed)
	}
	if m.InFlight != 0 {
		t.Fatalf("InFlight=%d after consume+spawn round trip", m.InFlight)
	}
}

// stallPolicy stalls one packet for a fixed number of cycles at a mid-path
// router, then releases it.
type stallPolicy struct {
	at     int
	nCalls int
	stalls int64
}

func (s *stallPolicy) Route(r *Router, p *Packet, now int64) Steer {
	if r.NodeID == s.at {
		s.nCalls++
		if p.StallCycles(now) < s.stalls {
			return Steer{Stall: true}
		}
	}
	return Steer{Out: r.Topo().NextHop(r.NodeID, p.Dst)}
}

func TestStallHoldsPacketAndRecalls(t *testing.T) {
	k := sim.NewKernel(1)
	pol := &stallPolicy{at: 1, stalls: 10}
	m := testMesh(k, 4, 1, 2, 1, pol)
	var deliveredAt int64
	m.EjectFn = func(node int, p *Packet, now int64) { deliveredAt = now }
	m.Inject(0, &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 1}, k.Now())
	if !k.RunUntil(func() bool { return deliveredAt != 0 }, 1000) {
		t.Fatal("stalled packet never delivered")
	}
	if pol.nCalls < 10 {
		t.Fatalf("policy consulted %d times during stall, want >= 10", pol.nCalls)
	}
	// Without the stall the trip is 2 + 3*(1+2) + 1 = 12 cycles; with a
	// 10-cycle stall it must take at least 22.
	if deliveredAt < 22 {
		t.Fatalf("delivered at %d despite 10-cycle stall", deliveredAt)
	}
}

func TestStallBlocksFIFOBehind(t *testing.T) {
	k := sim.NewKernel(1)
	pol := &stallPolicy{at: 1, stalls: 20}
	m := testMesh(k, 4, 1, 2, 1, pol)
	order := []uint64{}
	m.EjectFn = func(node int, p *Packet, now int64) { order = append(order, p.ID) }
	p1 := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 1}
	p2 := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 2, Flits: 1}
	m.Inject(0, p1, k.Now())
	m.Inject(0, p2, k.Now())
	if !k.RunUntil(func() bool { return len(order) == 2 }, 1000) {
		t.Fatal("packets not delivered")
	}
	// p2 entered the same FIFO behind p1 and must be head-of-line
	// blocked: p1 (stalled 20 cycles but 1 hop farther) still ejects
	// before p2 can have gotten far.
	if order[0] != p2.ID && order[0] != p1.ID {
		t.Fatalf("unexpected order %v", order)
	}
	if m.InFlight != 0 {
		t.Fatal("packets leaked")
	}
}

func TestExtraHopDelay(t *testing.T) {
	const pipeline = 2
	k, m, delivered := deliverySetup(t, 4, 1, pipeline)
	for _, r := range m.Routers {
		r.ExtraHopDelay = 4
	}
	p := &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 3, Flits: 1}
	m.Inject(0, p, k.Now())
	if !k.RunUntil(func() bool { return len(delivered) == 1 }, 1000) {
		t.Fatal("not delivered")
	}
	// Base: P + 3*(1+P) + 1 = 12. Extra 4 per router visit (4 visits).
	want := int64(12 + 4*4)
	if delivered[p.ID] != want {
		t.Fatalf("delivered at %d, want %d", delivered[p.ID], want)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two input ports feed one output continuously; neither may starve.
	k := sim.NewKernel(1)
	m := testMesh(k, 3, 1, 1, 1, DestPolicy{})
	perSrc := map[int]int{}
	m.EjectFn = func(node int, p *Packet, now int64) { perSrc[p.Src]++ }
	// Nodes 0 and 2 both flood node 1.
	for i := 0; i < 20; i++ {
		m.Inject(0, &Packet{ID: m.NextIDFor(0), Src: 0, Dst: 1, Flits: 2}, k.Now())
		m.Inject(2, &Packet{ID: m.NextIDFor(0), Src: 2, Dst: 1, Flits: 2}, k.Now())
	}
	if !k.RunUntil(func() bool { return perSrc[0]+perSrc[2] == 40 }, 5000) {
		t.Fatalf("delivered %v", perSrc)
	}
	if perSrc[0] != 20 || perSrc[2] != 20 {
		t.Fatalf("unfair arbitration: %v", perSrc)
	}
}

func TestMeshPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with zero-width mesh did not panic")
		}
	}()
	testMesh(sim.NewKernel(1), 0, 4, 5, 1, DestPolicy{})
}

func TestBuildDefaultsAndValidation(t *testing.T) {
	cfg := Config{Topo: Mesh2D{W: 2, H: 2}, Policy: DestPolicy{}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("minimal config invalid: %v", err)
	}
	if cfg.Pipeline != 1 || cfg.VCs != 1 {
		t.Fatalf("defaults not applied: pipeline=%d vcs=%d", cfg.Pipeline, cfg.VCs)
	}
	if err := (&Config{Policy: DestPolicy{}}).Validate(); err == nil {
		t.Fatal("nil Topo accepted")
	}
	if err := (&Config{Topo: Mesh2D{W: 2, H: 2}}).Validate(); err == nil {
		t.Fatal("nil Policy accepted")
	}
	if err := (&Config{Topo: Mesh2D{W: 2, H: 2}, Policy: DestPolicy{}, Pipeline: -1}).Validate(); err == nil {
		t.Fatal("negative pipeline accepted")
	}
}
