package network

import (
	"testing"
)

// conformanceFabrics is every topology shape the conformance suite runs
// over: square and rectangular meshes and tori, small and large rings,
// including the degenerate cases routing tie-breaks are most likely to get
// wrong (1-wide meshes, even-sized rings and tori where the two ways
// around are equal length).
func conformanceFabrics() []Topology {
	return []Topology{
		Mesh2D{W: 1, H: 1},
		Mesh2D{W: 4, H: 1},
		Mesh2D{W: 1, H: 4},
		Mesh2D{W: 2, H: 2},
		Mesh2D{W: 4, H: 4},
		Mesh2D{W: 3, H: 5},
		Mesh2D{W: 8, H: 8},
		Torus2D{W: 2, H: 2},
		Torus2D{W: 3, H: 3},
		Torus2D{W: 4, H: 4},
		Torus2D{W: 3, H: 5},
		Torus2D{W: 8, H: 8},
		Ring{N: 2},
		Ring{N: 3},
		Ring{N: 5},
		Ring{N: 8},
		Ring{N: 64},
	}
}

// TestTopologyConformance is the contract suite every Topology
// implementation must pass: minimal deterministic routing that delivers
// every src→dst pair in exactly Dist hops, neighbor/arrival symmetry, a
// bounded degree, and a Links enumeration consistent with Neighbor.
func TestTopologyConformance(t *testing.T) {
	for _, topo := range conformanceFabrics() {
		topo := topo
		t.Run(topo.Spec(), func(t *testing.T) {
			n := topo.Nodes()
			deg := topo.Degree()
			if n < 1 {
				t.Fatalf("Nodes() = %d", n)
			}
			if deg < 1 || deg > MaxDegree {
				t.Fatalf("Degree() = %d, want 1..%d", deg, MaxDegree)
			}

			// Arrival must be an involution onto valid ports, and every
			// link must be reversible: leaving n through d and coming
			// straight back through Arrival(d) returns to n.
			for d := 0; d < deg; d++ {
				a := topo.Arrival(Dir(d))
				if int(a) < 0 || int(a) >= deg {
					t.Fatalf("Arrival(%d) = %d outside 0..%d", d, a, deg-1)
				}
				if back := topo.Arrival(a); back != Dir(d) {
					t.Fatalf("Arrival not an involution: %d -> %d -> %d", d, a, back)
				}
			}
			for node := 0; node < n; node++ {
				for d := 0; d < deg; d++ {
					nb, ok := topo.Neighbor(node, Dir(d))
					if !ok {
						continue
					}
					if nb < 0 || nb >= n {
						t.Fatalf("Neighbor(%d, %d) = %d outside fabric", node, d, nb)
					}
					if back, ok := topo.Neighbor(nb, topo.Arrival(Dir(d))); !ok || back != node {
						t.Fatalf("link %d -%d-> %d has no reverse via Arrival", node, d, nb)
					}
				}
			}

			// Minimal deterministic routing: walking NextHop from any
			// src reaches dst in exactly Dist(src, dst) hops, each hop
			// strictly decreasing Dist; NextHop returns Local exactly at
			// the destination, and twice in a row agrees (pure value).
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					want := topo.Dist(src, dst)
					if (src == dst) != (want == 0) {
						t.Fatalf("Dist(%d,%d) = %d", src, dst, want)
					}
					cur, hops := src, 0
					for cur != dst {
						out := topo.NextHop(cur, dst)
						if out == Local {
							t.Fatalf("NextHop(%d,%d) = Local before arrival (walking %d->%d)", cur, dst, src, dst)
						}
						if out != topo.NextHop(cur, dst) {
							t.Fatalf("NextHop(%d,%d) not deterministic", cur, dst)
						}
						if int(out) >= deg {
							t.Fatalf("NextHop(%d,%d) = %d outside degree %d", cur, dst, out, deg)
						}
						next, ok := topo.Neighbor(cur, out)
						if !ok {
							t.Fatalf("NextHop(%d,%d) = %d names a missing link", cur, dst, out)
						}
						if topo.Dist(next, dst) != topo.Dist(cur, dst)-1 {
							t.Fatalf("hop %d->%d does not approach %d (Dist %d -> %d)",
								cur, next, dst, topo.Dist(cur, dst), topo.Dist(next, dst))
						}
						cur = next
						if hops++; hops > n {
							t.Fatalf("route %d->%d did not terminate", src, dst)
						}
					}
					if hops != want {
						t.Fatalf("route %d->%d took %d hops, Dist says %d", src, dst, hops, want)
					}
					if out := topo.NextHop(dst, dst); out != Local {
						t.Fatalf("NextHop(%d,%d) = %d, want Local", dst, dst, out)
					}
				}
			}

			// Links must enumerate exactly the Neighbor relation, ordered
			// by (From, Port).
			links := topo.Links()
			i := 0
			for node := 0; node < n; node++ {
				for d := 0; d < deg; d++ {
					nb, ok := topo.Neighbor(node, Dir(d))
					if !ok {
						continue
					}
					if i >= len(links) {
						t.Fatalf("Links() short: missing %d -%d-> %d", node, d, nb)
					}
					want := Link{From: node, Port: Dir(d), To: nb}
					if links[i] != want {
						t.Fatalf("Links()[%d] = %v, want %v", i, links[i], want)
					}
					i++
				}
			}
			if i != len(links) {
				t.Fatalf("Links() has %d extra entries", len(links)-i)
			}

			// The spec string round-trips to an identical fabric.
			ts, err := ParseTopoSpec(topo.Spec())
			if err != nil {
				t.Fatalf("ParseTopoSpec(%q): %v", topo.Spec(), err)
			}
			if got := ts.Build().Spec(); got != topo.Spec() {
				t.Fatalf("spec round-trip: %q -> %q", topo.Spec(), got)
			}
		})
	}
}

// TestTopoSpecParsing pins the accepted and rejected spec forms.
func TestTopoSpecParsing(t *testing.T) {
	good := map[string]string{
		"mesh:4x4":  "mesh:4x4",
		"torus:8x8": "torus:8x8",
		"ring:64":   "ring:64",
		"2x3":       "mesh:2x3", // bare WxH is a mesh (old -mcheck-mesh form)
	}
	for in, want := range good {
		ts, err := ParseTopoSpec(in)
		if err != nil {
			t.Errorf("ParseTopoSpec(%q): %v", in, err)
			continue
		}
		if ts.String() != want {
			t.Errorf("ParseTopoSpec(%q) = %q, want %q", in, ts.String(), want)
		}
	}
	bad := []string{"", "hypercube:8", "mesh:0x4", "mesh:4", "torus:1x4", "ring:1", "ring:x", "mesh:axb"}
	for _, in := range bad {
		if _, err := ParseTopoSpec(in); err == nil {
			t.Errorf("ParseTopoSpec(%q) accepted", in)
		}
	}
}
