// Package network implements the on-chip interconnect: a fabric of wormhole
// routers with configurable pipeline depth, per-port virtual channel FIFOs,
// age-based output arbitration and deterministic minimal routing, following
// the canonical router organization the paper assumes (Section 2.3,
// Figure 4). The fabric's shape lives behind the Topology interface: the
// paper's open 2D mesh with X-Y routing (Mesh2D), its wraparound variant
// (Torus2D) and a bidirectional ring (Ring) all drive the same router; a
// router has Topology.Degree() inter-router ports plus the local
// injection/ejection port and a generation port for protocol-spawned
// traffic.
//
// Packets are modeled at packet granularity with flit-accurate link
// occupancy: a packet's head flit spends the router's pipeline depth in each
// router and one cycle per link, and the packet holds its output link for as
// many cycles as it has flits, so multi-flit data packets serialize and
// contend exactly as wormhole flows do.
//
// Protocol logic is injected via the Policy interface, the package's
// rendering of the paper's central idea: the in-network protocol supplies a
// Policy whose routing decision consults the router's virtual tree cache and
// may consume packets, spawn new ones (teardowns, replies) or stall a packet
// in place; the baseline protocol supplies a plain X-Y destination-routing
// Policy.
package network

import (
	"fmt"
	"math/bits"
)

// Dir identifies a router port. Inter-router ports are 0..Degree()-1 on
// every topology; on the mesh and torus the four carry their compass names
// and double as virtual tree link identifiers in the in-network protocol's
// tree cache lines. Local is the node's injection/ejection port on every
// topology regardless of degree (the router maps it to its own port slot).
type Dir uint8

// Port directions. Local is the node's injection/ejection port.
const (
	North Dir = iota
	South
	East
	West
	Local
	DirNone // sentinel: no direction
)

func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	case West:
		return "W"
	case Local:
		return "L"
	case DirNone:
		return "-"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Opposite returns the port a packet sent out d arrives on at the neighbor.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return DirNone
}

// VC is a virtual-channel class. The mesh is built with a configurable
// number of classes; the coherence protocols in this repository use a single
// class for all message types because the in-network protocol depends on
// same-path FIFO ordering between replies and the teardowns that chase them
// (Section 2.4's "the teardown message will simply propagate out the new
// link as if it had been a part of the tree from the start" relies on a
// teardown never overtaking the reply that built the link).
type VC uint8

// Packet is one network packet. Payload carries the protocol message and is
// opaque to the network layer.
type Packet struct {
	ID      uint64
	Src     int // injecting node
	Dst     int // destination node for destination-routed packets
	Class   VC
	Flits   int
	Payload interface{}

	// DstSet, when non-nil, makes this a hardware-multicast packet: one
	// packet carrying a destination set. DestPolicy routes it toward the
	// set and forks clones at fan-out routers where members part ways;
	// each copy collapses to a plain unicast (DstSet nil) once it carries
	// a single destination. Dst tracks the lowest member for debugging
	// and checksum stability; the routing authority is the set.
	DstSet NodeSet

	// ArrivalDir is the port this packet entered the current router on:
	// Local for freshly injected or protocol-spawned packets. The
	// in-network protocol uses it to orient new virtual tree links.
	ArrivalDir Dir

	// Checksum is the packet's header integrity word. When fault
	// injection is armed, Inject/spawn stamp it (Checksum over the
	// immutable header fields) and every router verifies it before
	// routing; a corruption fault flips it on a link and the next
	// router's mismatch check discards the packet. Zero and unchecked
	// when the mesh has no fault injector.
	Checksum uint64

	// Retryable marks packets the protocol layer can reissue from
	// scratch (coherence requests); default-scope fault plans drop only
	// these, keeping every run recoverable within the retry budget.
	Retryable bool

	// Expedited marks protocol-spawned continuation packets (teardowns
	// and acks percolating along tree links) whose routing work was
	// already performed by the pipeline stage that spawned them: they
	// enter arbitration immediately instead of re-paying the router
	// pipeline.
	Expedited bool

	// Hops counts link traversals, for the hop-count studies.
	Hops int
	// InjectedAt is the cycle the packet first entered a router.
	InjectedAt int64

	// routed caches the policy decision so Route runs once per hop
	// unless the policy stalls the packet. outSlot is the granted output
	// port slot (inter-router ports by number, then the local port).
	// routeSeq is the global age stamp used by oldest-first output
	// arbitration.
	routed   bool
	outSlot  int
	routeSeq uint64
	// pooled marks packets allocated from the mesh free-list
	// (Mesh.AllocPacket): the mesh recycles them when they leave the
	// network. Packets built as plain literals (tests, external drivers)
	// have it false and are never recycled, so references a test harness
	// retains past delivery stay valid.
	pooled bool
	// stallStart is the cycle the packet first stalled at this router,
	// for the protocol's timeout-based deadlock recovery.
	stallStart int64
	// serialWait accumulates cycles this packet's head spent routed but
	// waiting for its output link to finish serializing a previous
	// packet's flits. Only charged when mesh metrics are enabled.
	serialWait int64
}

// SerialWait returns the accumulated link-serialization wait, for the
// metrics latency decomposition. Zero unless mesh metrics are enabled.
func (p *Packet) SerialWait() int64 { return p.serialWait }

// ChecksumOf computes p's header integrity word: a splitmix64 mix over the
// header fields (ID, Src, Dst, Class, Flits). The payload is excluded
// deliberately — it is a protocol message the engines mutate hop by hop —
// so the word is stable from injection to ejection unless a fault flips
// it. The one legitimate in-flight mutation is a multicast fork or
// collapse rewriting Dst, and DestPolicy restamps the word there, after
// the router's own verification has already accepted the packet.
func ChecksumOf(p *Packet) uint64 {
	x := p.ID*0x9E3779B97F4A7C15 ^
		uint64(p.Src)<<1 ^ uint64(p.Dst)<<17 ^
		uint64(p.Class)<<33 ^ uint64(p.Flits)<<41
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// StallCycles returns how long the packet has been stalled at the current
// router, or 0 if it is not stalled.
func (p *Packet) StallCycles(now int64) int64 {
	if p.stallStart == 0 {
		return 0
	}
	return now - p.stallStart
}

// Steer is a Policy's routing decision for one packet at one router.
type Steer struct {
	// Out is the output port to request. Local ejects the packet to the
	// node's network interface. Ignored if Consume or Stall is set.
	Out Dir
	// Consume removes the packet from the network without ejecting it
	// through the local port; protocol engines use this for messages
	// they absorb in-network (e.g. acknowledgments terminating at the
	// home node, or requests queued at the home router).
	Consume bool
	// Stall leaves the packet at the head of its input FIFO; the policy
	// is consulted again next cycle. Packets behind it in the same FIFO
	// are blocked (head-of-line), which is what the paper's timeout
	// mechanism exists to bound.
	Stall bool
	// Spawn lists packets the protocol generates at this router (e.g.
	// teardowns). They enter the router's generation queue and arbitrate
	// for outputs like any other traffic.
	Spawn []*Packet
}

// Policy decides, for each packet reaching the end of a router's pipeline,
// where it goes next. Implementations hold all protocol state (tree caches,
// home-node queues). Route is called when the packet first becomes ready
// and, if it stalls, once per cycle thereafter.
type Policy interface {
	Route(r *Router, p *Packet, now int64) Steer
}

// NodeSet is a bitset of node ids, the destination set of a multicast
// packet. The zero value is the empty set; Add grows it as needed.
type NodeSet []uint64

// Add returns the set with node n included, growing the backing words if
// needed (append semantics: use the return value).
func (s NodeSet) Add(n int) NodeSet {
	for len(s) <= n/64 {
		s = append(s, 0)
	}
	s[n/64] |= 1 << (uint(n) % 64)
	return s
}

// Has reports whether node n is in the set.
func (s NodeSet) Has(n int) bool {
	return n/64 < len(s) && s[n/64]&(1<<(uint(n)%64)) != 0
}

// Count returns the number of members.
func (s NodeSet) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Min returns the lowest member, or -1 if the set is empty.
func (s NodeSet) Min() int {
	for i, w := range s {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every member in ascending order.
func (s NodeSet) ForEach(fn func(n int)) {
	for i, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(i*64 + b)
			w &^= 1 << uint(b)
		}
	}
}
