package network

import "innetcc/internal/sim"

// DigestState folds the mesh's live state into d for checkpoint
// verification: global in-flight/delivery accounting, then every router's
// FIFO contents in port/VC/queue order with each queued packet's header and
// routing coordinates. Payloads are protocol messages owned by the engines
// (which fold their own state); here a packet contributes the fields the
// network itself steers by. Folding is observation-only: no FIFO is popped,
// no LRU or metric moves.
func (m *Mesh) DigestState(d *sim.Digest) {
	d.Int(m.InFlight)
	d.I64(m.DeliveredPackets)
	d.I64(m.TotalHops)
	nSlots := m.numIn * m.VCCount
	for node := range m.Routers {
		d.Int(int(m.queued[node]))
		d.U64(m.routeSeq[node])
		d.U64(m.idSeq[node])
		for out := 0; out < m.numOut; out++ {
			d.I64(m.busyTill[node*m.numOut+out])
		}
		// The flat slice's element order is port-major, VC-minor — the
		// exact nesting the digest has always folded in.
		for slot := 0; slot < nSlots; slot++ {
			{
				q := &m.fifos[node*nSlots+slot]
				d.Int(q.n)
				for i := 0; i < q.n; i++ {
					e := &q.buf[(q.head+i)%len(q.buf)]
					p := e.pkt
					d.I64(e.readyAt)
					d.U64(p.ID)
					d.Int(p.Src)
					d.Int(p.Dst)
					d.Int(p.Flits)
					d.Int(p.Hops)
					d.I64(p.InjectedAt)
					d.Int(int(p.ArrivalDir))
					d.Bool(p.routed)
					d.Int(p.outSlot)
					d.U64(p.routeSeq)
					d.I64(p.stallStart)
					// Multicast destination sets fold only when present,
					// so unicast-only runs digest exactly as before.
					if p.DstSet != nil {
						d.Int(len(p.DstSet))
						for _, w := range p.DstSet {
							d.U64(w)
						}
					}
				}
			}
		}
	}
}
