package network

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// MaxDegree is the largest inter-router port count any topology in this
// package uses. Protocol state that records per-port link bits (the tree
// engine's virtual tree lines, the model checker's link vectors) sizes its
// arrays with this so a line's footprint is independent of the fabric it
// runs on.
const MaxDegree = 4

// Link is one directed inter-router link: the packet leaves From through
// output port Port and arrives at To. Topology.Links enumerates these for
// fault-site naming, conformance tests and digests.
type Link struct {
	From int
	Port Dir
	To   int
}

func (l Link) String() string { return fmt.Sprintf("%d-%v->%d", l.From, l.Port, l.To) }

// Topology abstracts the fabric the routers are wired into. Implementations
// must be pure values: every method is a deterministic function of the
// receiver and its arguments, so routing, fault schedules and digests are
// reproducible across runs and processes.
//
// Ports are identified by Dir values 0..Degree()-1; Local is the node's
// injection/ejection port on every topology. A topology's NextHop must be
// minimal (each hop strictly decreases Dist) and deterministic, returning
// Local exactly when from == to.
type Topology interface {
	// Spec returns the canonical parseable name, e.g. "mesh:4x4".
	Spec() string
	// Nodes returns the number of routers.
	Nodes() int
	// Degree returns the number of inter-router ports per router. Ports
	// 0..Degree()-1 exist on every router; on open fabrics (the mesh)
	// some have no neighbor.
	Degree() int
	// Neighbor returns the node reached by leaving node through port d,
	// and whether that link exists.
	Neighbor(node int, d Dir) (int, bool)
	// Arrival returns the input port a packet sent out d arrives on at
	// the neighbor.
	Arrival(d Dir) Dir
	// NextHop returns the output port for the next hop of a minimal
	// deterministic route from -> to, or Local when from == to.
	NextHop(from, to int) Dir
	// Dist returns the minimal hop count from -> to.
	Dist(from, to int) int
	// Links enumerates every directed inter-router link, ordered by
	// (From, Port).
	Links() []Link
}

// enumLinks is the shared Links implementation: walk every node and port,
// keep the ones with a neighbor.
func enumLinks(t Topology) []Link {
	var ls []Link
	for n := 0; n < t.Nodes(); n++ {
		for d := 0; d < t.Degree(); d++ {
			if nb, ok := t.Neighbor(n, Dir(d)); ok {
				ls = append(ls, Link{From: n, Port: Dir(d), To: nb})
			}
		}
	}
	return ls
}

// Mesh2D is the paper's fabric: a W-by-H grid with open edges and
// dimension-ordered (X-Y) routing. Node i sits at (i%W, i/W); ports are
// North, South, East, West. X-Y routing resolves the X offset first, then
// Y, and is deadlock-free on a mesh.
type Mesh2D struct {
	W, H int
}

func (t Mesh2D) Spec() string      { return fmt.Sprintf("mesh:%dx%d", t.W, t.H) }
func (t Mesh2D) Nodes() int        { return t.W * t.H }
func (t Mesh2D) Degree() int       { return 4 }
func (t Mesh2D) Arrival(d Dir) Dir { return d.Opposite() }
func (t Mesh2D) Links() []Link     { return enumLinks(t) }

func (t Mesh2D) Neighbor(node int, d Dir) (int, bool) {
	x, y := node%t.W, node/t.W
	switch d {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	default:
		return 0, false
	}
	if x < 0 || x >= t.W || y < 0 || y >= t.H {
		return 0, false
	}
	return y*t.W + x, true
}

func (t Mesh2D) NextHop(from, to int) Dir {
	fx, fy := from%t.W, from/t.W
	tx, ty := to%t.W, to/t.W
	switch {
	case tx > fx:
		return East
	case tx < fx:
		return West
	case ty > fy:
		return South
	case ty < fy:
		return North
	}
	return Local
}

func (t Mesh2D) Dist(from, to int) int {
	dx := from%t.W - to%t.W
	if dx < 0 {
		dx = -dx
	}
	dy := from/t.W - to/t.W
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Torus2D is the mesh with wraparound links: every router has all four
// neighbors, edge nodes wrapping to the opposite edge. Routing is
// dimension-ordered like the mesh but takes the shorter way around each
// dimension, breaking exact ties toward East/South so the route stays a
// pure function of (from, to). Wormhole tori need VC-based escape paths to
// stay deadlock-free under bounded buffering; this simulator's input FIFOs
// are unbounded, so wraparound routes cannot buffer-deadlock (only policy
// stalls block, and those are bounded by the protocol's timeout recovery).
type Torus2D struct {
	W, H int
}

func (t Torus2D) Spec() string      { return fmt.Sprintf("torus:%dx%d", t.W, t.H) }
func (t Torus2D) Nodes() int        { return t.W * t.H }
func (t Torus2D) Degree() int       { return 4 }
func (t Torus2D) Arrival(d Dir) Dir { return d.Opposite() }
func (t Torus2D) Links() []Link     { return enumLinks(t) }

func (t Torus2D) Neighbor(node int, d Dir) (int, bool) {
	x, y := node%t.W, node/t.W
	switch d {
	case North:
		y = (y - 1 + t.H) % t.H
	case South:
		y = (y + 1) % t.H
	case East:
		x = (x + 1) % t.W
	case West:
		x = (x - 1 + t.W) % t.W
	default:
		return 0, false
	}
	return y*t.W + x, true
}

func (t Torus2D) NextHop(from, to int) Dir {
	fx, fy := from%t.W, from/t.W
	tx, ty := to%t.W, to/t.W
	if fx != tx {
		if fwd := (tx - fx + t.W) % t.W; fwd <= t.W-fwd {
			return East
		}
		return West
	}
	if fy != ty {
		if fwd := (ty - fy + t.H) % t.H; fwd <= t.H-fwd {
			return South
		}
		return North
	}
	return Local
}

func (t Torus2D) Dist(from, to int) int {
	dx := (to%t.W - from%t.W + t.W) % t.W
	if t.W-dx < dx {
		dx = t.W - dx
	}
	dy := (to/t.W - from/t.W + t.H) % t.H
	if t.H-dy < dy {
		dy = t.H - dy
	}
	return dx + dy
}

// Ring is N routers on a bidirectional cycle. Port 0 steps clockwise
// (node+1 mod N), port 1 counter-clockwise; routing takes the shorter way
// around, breaking exact ties clockwise. Same unbounded-FIFO argument as
// the torus for deadlock freedom.
type Ring struct {
	N int
}

// Ring port names, aliases of the first two Dir values.
const (
	CW  = Dir(0)
	CCW = Dir(1)
)

func (t Ring) Spec() string  { return fmt.Sprintf("ring:%d", t.N) }
func (t Ring) Nodes() int    { return t.N }
func (t Ring) Degree() int   { return 2 }
func (t Ring) Links() []Link { return enumLinks(t) }

func (t Ring) Arrival(d Dir) Dir {
	if d == CW {
		return CCW
	}
	return CW
}

func (t Ring) Neighbor(node int, d Dir) (int, bool) {
	switch d {
	case CW:
		return (node + 1) % t.N, true
	case CCW:
		return (node - 1 + t.N) % t.N, true
	}
	return 0, false
}

func (t Ring) NextHop(from, to int) Dir {
	if from == to {
		return Local
	}
	if fwd := (to - from + t.N) % t.N; fwd <= t.N-fwd {
		return CW
	}
	return CCW
}

func (t Ring) Dist(from, to int) int {
	fwd := (to - from + t.N) % t.N
	if t.N-fwd < fwd {
		return t.N - fwd
	}
	return fwd
}

// TopoSpec is the declarative, serializable description of a topology —
// what configs, job specs and the CLI carry. The canonical string forms
// are "mesh:WxH", "torus:WxH" and "ring:N"; TopoSpec marshals to exactly
// that string in JSON, so spec hashes and server submissions stay
// human-readable.
type TopoSpec struct {
	Kind string // "mesh", "torus" or "ring"
	W, H int    // grid shape; rings store the node count in W with H == 1
}

// MeshSpec, TorusSpec and RingSpec build the three concrete specs.
func MeshSpec(w, h int) TopoSpec  { return TopoSpec{Kind: "mesh", W: w, H: h} }
func TorusSpec(w, h int) TopoSpec { return TopoSpec{Kind: "torus", W: w, H: h} }
func RingSpec(n int) TopoSpec     { return TopoSpec{Kind: "ring", W: n, H: 1} }

// ParseTopoSpec parses the canonical string form: "mesh:8x8", "torus:8x8",
// "ring:64". A bare "WxH" is accepted as a mesh for compatibility with the
// old -mcheck-mesh style arguments.
func ParseTopoSpec(s string) (TopoSpec, error) {
	kind, rest := "mesh", s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind, rest = s[:i], s[i+1:]
	}
	switch kind {
	case "mesh", "torus":
		w, h, ok := strings.Cut(rest, "x")
		wi, err1 := strconv.Atoi(w)
		var hi int
		var err2 error
		if ok {
			hi, err2 = strconv.Atoi(h)
		}
		if !ok || err1 != nil || err2 != nil {
			return TopoSpec{}, fmt.Errorf("network: topology %q: want %s:WxH", s, kind)
		}
		t := TopoSpec{Kind: kind, W: wi, H: hi}
		return t, t.Validate()
	case "ring":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return TopoSpec{}, fmt.Errorf("network: topology %q: want ring:N", s)
		}
		t := RingSpec(n)
		return t, t.Validate()
	}
	return TopoSpec{}, fmt.Errorf("network: unknown topology kind %q (want mesh, torus or ring)", kind)
}

func (t TopoSpec) String() string {
	if t.Kind == "ring" {
		return fmt.Sprintf("ring:%d", t.W)
	}
	return fmt.Sprintf("%s:%dx%d", t.Kind, t.W, t.H)
}

// Nodes returns the router count. Kept branch-cheap: protocol home lookup
// calls it per access.
func (t TopoSpec) Nodes() int {
	if t.Kind == "ring" {
		return t.W
	}
	return t.W * t.H
}

// Validate reports structural errors Build would panic on.
func (t TopoSpec) Validate() error {
	switch t.Kind {
	case "mesh":
		if t.W < 1 || t.H < 1 {
			return fmt.Errorf("network: bad mesh %dx%d", t.W, t.H)
		}
	case "torus":
		if t.W < 2 || t.H < 2 {
			return fmt.Errorf("network: bad torus %dx%d (wraparound needs W,H >= 2)", t.W, t.H)
		}
	case "ring":
		if t.W < 2 {
			return fmt.Errorf("network: bad ring size %d", t.W)
		}
	default:
		return fmt.Errorf("network: unknown topology kind %q", t.Kind)
	}
	return nil
}

// Build instantiates the topology. Panics on an invalid spec; call
// Validate first on untrusted input.
func (t TopoSpec) Build() Topology {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	switch t.Kind {
	case "torus":
		return Torus2D{W: t.W, H: t.H}
	case "ring":
		return Ring{N: t.W}
	}
	return Mesh2D{W: t.W, H: t.H}
}

// MarshalJSON writes the canonical string form.
func (t TopoSpec) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON accepts the canonical string form.
func (t *TopoSpec) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	ts, err := ParseTopoSpec(s)
	if err != nil {
		return err
	}
	*t = ts
	return nil
}
