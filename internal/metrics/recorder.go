package metrics

import "fmt"

// EventKind identifies a flight-recorder protocol event.
type EventKind uint8

// Protocol events. Tree events carry the line address; Aux is event-specific
// (see each constant).
const (
	// EvInject: a CPU issued a coherence request (Aux: 1 for writes).
	EvInject EventKind = iota
	// EvComplete: a reply completed a node's outstanding access
	// (Aux: total latency in cycles).
	EvComplete
	// EvTreeHit / EvTreeMiss: a request's per-router tree-cache lookup
	// (Aux: requester node).
	EvTreeHit
	EvTreeMiss
	// EvBump: a request was steered along a tree link toward the root
	// instead of the home node (Aux: requester node).
	EvBump
	// EvSharerServe: a tree node's data cache served a read in place
	// (Aux: hops saved vs routing to the home node; may be negative).
	EvSharerServe
	// EvTeardown: a teardown touched a node's tree line (Aux: remaining
	// link count).
	EvTeardown
	// EvTeardownComplete: the home node's last link cleared; the tree is
	// gone (Aux: requests that had queued behind the teardown).
	EvTeardownComplete
	// EvHomeQueued: a request was queued at the home node behind a
	// teardown in progress (Aux: requester node).
	EvHomeQueued
	// EvHomeDrained: a queued request was re-released after teardown
	// completion (Aux: requester node).
	EvHomeDrained
	// EvDeadlockAbort: a stalled reply hit the timeout and reverted to a
	// backoff-flagged request (Aux: requester node).
	EvDeadlockAbort
	// EvBackoff: a recovered request was held at the home node for its
	// random backoff delay (Aux: the delay in cycles).
	EvBackoff
	// EvConflictEvict: a stalled reply initiated teardown of the blocked
	// set's LRU tree (Aux: requester node).
	EvConflictEvict
	// EvProactiveEvict: a write request tore down a conflicting LRU tree
	// on its way to the home node (Aux: requester node).
	EvProactiveEvict
	// EvDirFwd: the baseline directory forwarded a read to a sharer/owner
	// (Aux: target node).
	EvDirFwd
	// EvDirInval: the baseline directory sent an invalidation
	// (Aux: target node).
	EvDirInval
	// EvFaultDrop: the fault layer removed a packet from the network
	// (Aux: the fault.DropReason). Node is the requester the packet was
	// serving, -1 for non-protocol payloads.
	EvFaultDrop
	// EvRetry: a node reissued its outstanding access after a drop NACK
	// or reply timeout (Aux: the new attempt number).
	EvRetry

	numEventKinds
)

// String returns the event kind's export name.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvComplete:
		return "complete"
	case EvTreeHit:
		return "tree_hit"
	case EvTreeMiss:
		return "tree_miss"
	case EvBump:
		return "bump"
	case EvSharerServe:
		return "sharer_serve"
	case EvTeardown:
		return "teardown"
	case EvTeardownComplete:
		return "teardown_complete"
	case EvHomeQueued:
		return "home_queued"
	case EvHomeDrained:
		return "home_drained"
	case EvDeadlockAbort:
		return "deadlock_abort"
	case EvBackoff:
		return "backoff"
	case EvConflictEvict:
		return "conflict_evict"
	case EvProactiveEvict:
		return "proactive_evict"
	case EvDirFwd:
		return "dir_fwd"
	case EvDirInval:
		return "dir_inval"
	case EvFaultDrop:
		return "fault_drop"
	case EvRetry:
		return "retry"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one flight-recorder entry. Fields are ordered for compactness;
// the struct is plain data and serializes with encoding/json.
type Event struct {
	Cycle int64
	Addr  uint64
	Aux   int64
	Kind  EventKind
	Node  int16
}

// String renders the event for flight dumps.
func (e Event) String() string {
	return fmt.Sprintf("[%10d] %-17s n%-3d addr=%#x aux=%d", e.Cycle, e.Kind, e.Node, e.Addr, e.Aux)
}

// Recorder is a bounded ring buffer of protocol events: the flight recorder.
// When full it overwrites the oldest entries, so after a failure it holds
// the most recent window of protocol activity. Record never allocates.
type Recorder struct {
	buf   []Event
	next  int
	total uint64
}

// NewRecorder builds a recorder holding up to capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Recorder) Record(cycle int64, kind EventKind, node int16, addr uint64, aux int64) {
	e := Event{Cycle: cycle, Kind: kind, Node: node, Addr: addr, Aux: aux}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.total++
}

// Total returns how many events were ever recorded (including overwritten
// ones).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r.total <= uint64(cap(r.buf)) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
