package metrics

// SeriesPoint is one exported bucket of a time series.
type SeriesPoint struct {
	Cycle int64   // bucket start cycle
	Mean  float64 // mean of the observations in the bucket
	N     int64   // observation count
}

// Series is a cycle-bucketed time series: observations are folded into
// fixed-width buckets of simulated time, so a series' memory footprint is
// proportional to simulated cycles / Bucket regardless of observation rate.
// Growth is amortized append; observations themselves never allocate once a
// bucket exists.
type Series struct {
	// Bucket is the bucket width in cycles (a power of two).
	Bucket int64

	sum []float64
	cnt []int64
}

// Observe folds one observation at the given cycle into its bucket.
func (s *Series) Observe(cycle int64, v float64) {
	if s.Bucket <= 0 {
		s.Bucket = 4096
	}
	idx := int(cycle / s.Bucket)
	for idx >= len(s.sum) {
		s.sum = append(s.sum, 0)
		s.cnt = append(s.cnt, 0)
	}
	s.sum[idx] += v
	s.cnt[idx]++
}

// Last returns the most recent non-empty bucket, if any. Streaming
// progress consumers (the serving layer's SSE feed) poll it between
// simulation segments instead of exporting the whole series.
func (s *Series) Last() (SeriesPoint, bool) {
	for i := len(s.cnt) - 1; i >= 0; i-- {
		if s.cnt[i] > 0 {
			return SeriesPoint{
				Cycle: int64(i) * s.Bucket,
				Mean:  s.sum[i] / float64(s.cnt[i]),
				N:     s.cnt[i],
			}, true
		}
	}
	return SeriesPoint{}, false
}

// Points exports the non-empty buckets in cycle order.
func (s *Series) Points() []SeriesPoint {
	var out []SeriesPoint
	for i, n := range s.cnt {
		if n == 0 {
			continue
		}
		out = append(out, SeriesPoint{
			Cycle: int64(i) * s.Bucket,
			Mean:  s.sum[i] / float64(n),
			N:     n,
		})
	}
	return out
}
