package metrics

// NoC holds per-router network instrumentation in flattened arrays indexed
// by (router, port[, vc]). The router hot loop updates the slices directly
// behind a single nil check on the mesh's Metrics field, so the disabled
// path costs one comparison per router tick and the enabled path never
// allocates.
type NoC struct {
	Routers  int
	InPorts  int
	OutPorts int
	VCs      int

	// LinkBusy[OutIdx(r,p)] accumulates flit-cycles each output link was
	// held by granted packets; divided by Cycles it is link utilization.
	LinkBusy []int64
	// Grants[OutIdx(r,p)] counts output-arbitration grants.
	Grants []int64
	// SerialWait[OutIdx(r,p)] accumulates head-packet cycles spent
	// waiting for the output link to finish serializing a previous
	// packet's flits (arbitration stalls).
	SerialWait []int64
	// QueueSum[InIdx(r,p,vc)] integrates input FIFO occupancy over time
	// (packet-cycles); divided by Cycles it is mean queue depth.
	QueueSum []int64
	// PolicyStalls[r] counts head-packet cycles the routing policy held a
	// packet in place (the in-network protocol's allocation stalls).
	PolicyStalls []int64

	// Cycles is the simulated-cycle denominator for the integrals above;
	// the machine sets it when the run ends.
	Cycles int64
}

// NewNoC sizes the arrays for a mesh of the given shape.
func NewNoC(routers, inPorts, outPorts, vcs int) *NoC {
	return &NoC{
		Routers:      routers,
		InPorts:      inPorts,
		OutPorts:     outPorts,
		VCs:          vcs,
		LinkBusy:     make([]int64, routers*outPorts),
		Grants:       make([]int64, routers*outPorts),
		SerialWait:   make([]int64, routers*outPorts),
		QueueSum:     make([]int64, routers*inPorts*vcs),
		PolicyStalls: make([]int64, routers),
	}
}

// OutIdx flattens (router, output port).
func (n *NoC) OutIdx(r, p int) int { return r*n.OutPorts + p }

// InIdx flattens (router, input port, vc).
func (n *NoC) InIdx(r, p, vc int) int { return (r*n.InPorts+p)*n.VCs + vc }

// Util returns output link (r,p)'s utilization in [0,1].
func (n *NoC) Util(r, p int) float64 {
	if n.Cycles == 0 {
		return 0
	}
	return float64(n.LinkBusy[n.OutIdx(r, p)]) / float64(n.Cycles)
}

// MeanQueue returns input port (r,p,vc)'s mean FIFO occupancy in packets.
func (n *NoC) MeanQueue(r, p, vc int) float64 {
	if n.Cycles == 0 {
		return 0
	}
	return float64(n.QueueSum[n.InIdx(r, p, vc)]) / float64(n.Cycles)
}
