// Package metrics is the cycle-level observability layer: named hot-path
// counters, cycle-bucketed time series, per-router NoC instrumentation, a
// per-access latency decomposition and a bounded flight recorder of protocol
// events. It exposes the internal quantities the paper explains its results
// with — per-hop latency contributions, tree-cache hit/miss behavior,
// teardown backpressure, link utilization — that the simulator otherwise
// computes and throws away.
//
// The package is built around a nil-sink fast path: every probe is either a
// method on a possibly-nil *Collector or a nil check on an instrumentation
// field (network.Mesh.Metrics, protocol.Machine.Metrics), so a simulation
// run without metrics pays one pointer comparison per probe and allocates
// nothing. Probes are purely observational — they never influence routing,
// scheduling or random draws — so enabling metrics leaves simulation results
// byte-identical.
//
// Hot-path operations (counter adds, flight-recorder appends, NoC updates)
// write into preallocated fixed-size arrays and are allocation-free in the
// enabled path too; only the cycle-bucketed series grow, amortized, as
// simulated time advances.
package metrics

// Counter identifies a hot-path metric counter. Counters are array slots
// rather than map keys so a per-hop increment is one indexed add.
type Counter uint8

// Hot-path counters. Tree counters are request-side (RdReq/WrReq lookups in
// the per-router virtual tree caches), matching the paper's narrative of
// requests bumping into trees; reply-side lookups are construction work and
// are not counted here.
const (
	// CTreeHit counts request lookups that found a live (untouched) tree
	// line at a router.
	CTreeHit Counter = iota
	// CTreeMiss counts request lookups that found no usable tree line.
	CTreeMiss
	// CTreeBump counts requests steered along a tree link toward the
	// root/data instead of continuing to the home node.
	CTreeBump
	// CHopsSaved accumulates, over sharer serves, the hop distance saved
	// versus routing the request all the way to the home node. Negative
	// contributions (a serve farther than home) subtract.
	CHopsSaved
	// CDirFwd counts baseline-directory read forwards to a sharer/owner.
	CDirFwd
	// CDirInval counts baseline-directory invalidation messages sent.
	CDirInval

	// NumCounters sizes counter arrays; keep it last.
	NumCounters
)

// String returns the counter's export name.
func (c Counter) String() string {
	switch c {
	case CTreeHit:
		return "tree_hit"
	case CTreeMiss:
		return "tree_miss"
	case CTreeBump:
		return "tree_bump"
	case CHopsSaved:
		return "hops_saved"
	case CDirFwd:
		return "dir_fwd"
	case CDirInval:
		return "dir_inval"
	}
	return "unknown"
}

// GaugeSource is implemented by coherence engines that can report sampled
// gauges: the total occupancy of their per-node metadata structures (tree
// cache lines or directory entries) and the depth of their queued-request
// backlog (teardown/home queues, parked allocations).
type GaugeSource interface {
	MetricsGauges() (occupancy, queueDepth int)
}

// Options sizes a Collector.
type Options struct {
	// FlightSize is the flight-recorder ring capacity in events
	// (default 4096 when <= 0).
	FlightSize int
	// SeriesBucket is the time-series bucket width in cycles, rounded up
	// to a power of two (default 4096 when <= 0). It is also the sampling
	// period for gauges.
	SeriesBucket int64
}

// Collector is the per-simulation metrics sink. A nil *Collector is the
// disabled state: every method is safe to call on nil and is a no-op.
type Collector struct {
	// Flight is the bounded ring of protocol events.
	Flight *Recorder
	// NoC holds per-router, per-port network instrumentation. It is
	// attached by the machine once the mesh shape is known.
	NoC *NoC
	// Breakdown accumulates the per-access latency decomposition.
	Breakdown Breakdown
	// InFlight samples the number of packets inside the network;
	// Occupancy and QueueDepth sample the engine's GaugeSource.
	InFlight   Series
	Occupancy  Series
	QueueDepth Series

	sampleMask int64
	counters   [NumCounters]int64
}

// New builds an enabled Collector.
func New(o Options) *Collector {
	fs := o.FlightSize
	if fs <= 0 {
		fs = 4096
	}
	b := int64(1)
	for b < o.SeriesBucket {
		b <<= 1
	}
	if o.SeriesBucket <= 0 {
		b = 4096
	}
	return &Collector{
		Flight:     NewRecorder(fs),
		InFlight:   Series{Bucket: b},
		Occupancy:  Series{Bucket: b},
		QueueDepth: Series{Bucket: b},
		sampleMask: b - 1,
	}
}

// Enabled reports whether the collector is live.
func (c *Collector) Enabled() bool { return c != nil }

// Add increments counter k by d. No-op on a nil collector.
func (c *Collector) Add(k Counter, d int64) {
	if c == nil {
		return
	}
	c.counters[k] += d
}

// Get returns counter k (0 on a nil collector).
func (c *Collector) Get(k Counter) int64 {
	if c == nil {
		return 0
	}
	return c.counters[k]
}

// Event appends a protocol event to the flight recorder. No-op on a nil
// collector. All arguments are scalars so the disabled path allocates
// nothing at the call site.
func (c *Collector) Event(cycle int64, kind EventKind, node int16, addr uint64, aux int64) {
	if c == nil {
		return
	}
	c.Flight.Record(cycle, kind, node, addr, aux)
}

// SampleDue reports whether gauges should be sampled this cycle (once per
// series bucket). Callers must have checked the collector is non-nil.
func (c *Collector) SampleDue(now int64) bool { return now&c.sampleMask == 0 }
