// Package metrics is the cycle-level observability layer: named hot-path
// counters, cycle-bucketed time series, per-router NoC instrumentation, a
// per-access latency decomposition and a bounded flight recorder of protocol
// events. It exposes the internal quantities the paper explains its results
// with — per-hop latency contributions, tree-cache hit/miss behavior,
// teardown backpressure, link utilization — that the simulator otherwise
// computes and throws away.
//
// The package is built around a nil-sink fast path: every probe is either a
// method on a possibly-nil *Collector or a nil check on an instrumentation
// field (network.Mesh.Metrics, protocol.Machine.Metrics), so a simulation
// run without metrics pays one pointer comparison per probe and allocates
// nothing. Probes are purely observational — they never influence routing,
// scheduling or random draws — so enabling metrics leaves simulation results
// byte-identical.
//
// Hot-path operations (counter adds, flight-recorder appends, NoC updates)
// write into preallocated fixed-size arrays and are allocation-free in the
// enabled path too; only the cycle-bucketed series grow, amortized, as
// simulated time advances.
package metrics

import "sync/atomic"

// Counter identifies a hot-path metric counter. Counters are array slots
// rather than map keys so a per-hop increment is one indexed add.
type Counter uint8

// Hot-path counters. Tree counters are request-side (RdReq/WrReq lookups in
// the per-router virtual tree caches), matching the paper's narrative of
// requests bumping into trees; reply-side lookups are construction work and
// are not counted here.
const (
	// CTreeHit counts request lookups that found a live (untouched) tree
	// line at a router.
	CTreeHit Counter = iota
	// CTreeMiss counts request lookups that found no usable tree line.
	CTreeMiss
	// CTreeBump counts requests steered along a tree link toward the
	// root/data instead of continuing to the home node.
	CTreeBump
	// CHopsSaved accumulates, over sharer serves, the hop distance saved
	// versus routing the request all the way to the home node. Negative
	// contributions (a serve farther than home) subtract.
	CHopsSaved
	// CDirFwd counts baseline-directory read forwards to a sharer/owner.
	CDirFwd
	// CDirInval counts baseline-directory invalidation messages sent.
	CDirInval

	// NumCounters sizes counter arrays; keep it last.
	NumCounters
)

// String returns the counter's export name.
func (c Counter) String() string {
	switch c {
	case CTreeHit:
		return "tree_hit"
	case CTreeMiss:
		return "tree_miss"
	case CTreeBump:
		return "tree_bump"
	case CHopsSaved:
		return "hops_saved"
	case CDirFwd:
		return "dir_fwd"
	case CDirInval:
		return "dir_inval"
	}
	return "unknown"
}

// GaugeSource is implemented by coherence engines that can report sampled
// gauges: the total occupancy of their per-node metadata structures (tree
// cache lines or directory entries) and the depth of their queued-request
// backlog (teardown/home queues, parked allocations).
type GaugeSource interface {
	MetricsGauges() (occupancy, queueDepth int)
}

// Options sizes a Collector.
type Options struct {
	// FlightSize is the flight-recorder ring capacity in events
	// (default 4096 when <= 0).
	FlightSize int
	// SeriesBucket is the time-series bucket width in cycles, rounded up
	// to a power of two (default 4096 when <= 0). It is also the sampling
	// period for gauges.
	SeriesBucket int64
}

// Collector is the per-simulation metrics sink. A nil *Collector is the
// disabled state: every method is safe to call on nil and is a no-op.
type Collector struct {
	// Flight is the bounded ring of protocol events.
	Flight *Recorder
	// NoC holds per-router, per-port network instrumentation. It is
	// attached by the machine once the mesh shape is known.
	NoC *NoC
	// Breakdown accumulates the per-access latency decomposition.
	Breakdown Breakdown
	// InFlight samples the number of packets inside the network;
	// Occupancy and QueueDepth sample the engine's GaugeSource.
	InFlight   Series
	Occupancy  Series
	QueueDepth Series

	sampleMask int64
	counters   [NumCounters]int64

	// Route-phase sharding support: when a hook is installed, events
	// recorded inside the parallel tick segment are staged per shard and
	// flushed in shard order at the cycle barrier, so the flight-recorder
	// sequence is identical at every shard count.
	hook   ShardHook
	stages []eventStage
}

// ShardHook connects a Collector to the sharded tick engine. InTick reports
// whether the caller is inside the parallel route phase; ShardOf maps a node
// to the shard ticking it.
type ShardHook interface {
	InTick() bool
	ShardOf(node int) int
}

// eventStage is one shard's cycle-local event staging buffer; the padding
// keeps adjacent shards' append bookkeeping off one cache line.
type eventStage struct {
	evs []Event
	_   [64]byte
}

// New builds an enabled Collector.
func New(o Options) *Collector {
	fs := o.FlightSize
	if fs <= 0 {
		fs = 4096
	}
	b := int64(1)
	for b < o.SeriesBucket {
		b <<= 1
	}
	if o.SeriesBucket <= 0 {
		b = 4096
	}
	return &Collector{
		Flight:     NewRecorder(fs),
		InFlight:   Series{Bucket: b},
		Occupancy:  Series{Bucket: b},
		QueueDepth: Series{Bucket: b},
		sampleMask: b - 1,
	}
}

// Enabled reports whether the collector is live.
func (c *Collector) Enabled() bool { return c != nil }

// Add increments counter k by d. No-op on a nil collector. The add is
// atomic: counter probes fire from the sharded route phase, and a sum is
// order-independent, so totals stay byte-identical across shard counts.
func (c *Collector) Add(k Counter, d int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.counters[k], d)
}

// Get returns counter k (0 on a nil collector).
func (c *Collector) Get(k Counter) int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.counters[k])
}

// SetSharding installs the route-phase staging hook with one stage per
// shard. The machine calls this when it wires metrics into a sharded
// simulation; it must be paired with a barrier hook running FlushEvents.
func (c *Collector) SetSharding(numShards int, h ShardHook) {
	if c == nil || numShards < 1 || h == nil {
		return
	}
	c.hook = h
	c.stages = make([]eventStage, numShards)
}

// FlushEvents drains staged route-phase events into the flight recorder in
// shard order. Shards are contiguous ascending router-id bands and each
// router appends its events in tick order, so the concatenation reproduces
// the single-threaded recording order exactly.
func (c *Collector) FlushEvents() {
	for i := range c.stages {
		st := &c.stages[i]
		for _, e := range st.evs {
			c.Flight.Record(e.Cycle, e.Kind, e.Node, e.Addr, e.Aux)
		}
		st.evs = st.evs[:0]
	}
}

// Event appends a protocol event to the flight recorder. No-op on a nil
// collector. All arguments are scalars so the disabled path allocates
// nothing at the call site. During the parallel route phase the event is
// staged on the recording node's shard (amortized-allocation append) and
// reaches the recorder at the cycle barrier via FlushEvents.
func (c *Collector) Event(cycle int64, kind EventKind, node int16, addr uint64, aux int64) {
	if c == nil {
		return
	}
	if h := c.hook; h != nil && node >= 0 && h.InTick() {
		st := &c.stages[h.ShardOf(int(node))]
		st.evs = append(st.evs, Event{Cycle: cycle, Kind: kind, Node: node, Addr: addr, Aux: aux})
		return
	}
	c.Flight.Record(cycle, kind, node, addr, aux)
}

// SampleDue reports whether gauges should be sampled this cycle (once per
// series bucket). Callers must have checked the collector is non-nil.
func (c *Collector) SampleDue(now int64) bool { return now&c.sampleMask == 0 }
