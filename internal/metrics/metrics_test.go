package metrics

import "testing"

func TestRecorderWrapsAndOrders(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(int64(i), EvTeardown, int16(i), uint64(i), 0)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		want := int64(6 + i) // oldest retained is event 6
		if e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(5, EvInject, 1, 0x40, 0)
	r.Record(9, EvComplete, 1, 0x40, 4)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != EvInject || evs[1].Kind != EvComplete {
		t.Fatalf("unexpected events %v", evs)
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := Series{Bucket: 8}
	s.Observe(0, 2)
	s.Observe(7, 4)
	s.Observe(16, 10)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Cycle != 0 || pts[0].Mean != 3 || pts[0].N != 2 {
		t.Errorf("bucket 0 = %+v", pts[0])
	}
	if pts[1].Cycle != 16 || pts[1].Mean != 10 || pts[1].N != 1 {
		t.Errorf("bucket 2 = %+v", pts[1])
	}
}

func TestBreakdownSumsExactly(t *testing.T) {
	var b Breakdown
	cases := []struct {
		write                    bool
		total, net, trav, serial int64
	}{
		{false, 100, 60, 30, 10},
		{false, 50, 50, 50, 0},   // all traversal
		{true, 80, 90, 30, 10},   // net overcount: clamped to total
		{true, 40, 30, 45, 0},    // trav overcount: clamped to net
		{false, 40, 30, 20, 500}, // serial overcount: clamped to residual
	}
	for _, c := range cases {
		b.Record(c.write, c.total, c.net, c.trav, c.serial)
	}
	if got := b.Read.Sum(); got != b.Read.Total {
		t.Errorf("read components sum %d != total %d", got, b.Read.Total)
	}
	if got := b.Write.Sum(); got != b.Write.Total {
		t.Errorf("write components sum %d != total %d", got, b.Write.Total)
	}
	if b.Read.N != 3 || b.Write.N != 2 {
		t.Errorf("counts = %d/%d, want 3/2", b.Read.N, b.Write.N)
	}
	if b.Read.Queue < 0 || b.Read.Serial < 0 || b.Read.Traversal < 0 || b.Read.Controller < 0 {
		t.Errorf("negative read component: %+v", b.Read)
	}
	if b.Write.Queue < 0 || b.Write.Serial < 0 || b.Write.Traversal < 0 || b.Write.Controller < 0 {
		t.Errorf("negative write component: %+v", b.Write)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Add(CTreeHit, 1)
	c.Event(10, EvTeardown, 3, 0xbeef, 0)
	if c.Get(CTreeHit) != 0 {
		t.Fatal("nil collector returned nonzero counter")
	}
}

// TestDisabledPathZeroAllocs is the satellite guarantee: the full probe
// surface on a nil (disabled) collector performs zero allocations, so a
// metrics-off simulation tick pays only nil checks.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(CTreeHit, 1)
		c.Add(CHopsSaved, -2)
		c.Event(10, EvTeardown, 3, 0xbeef, 0)
		c.Event(11, EvDeadlockAbort, 4, 0xbeef, 1)
		_ = c.Get(CTreeMiss)
		_ = c.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f per run, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAllocs: counter adds, flight-recorder appends and
// NoC updates are allocation-free in the enabled path as well (only series
// growth amortizes allocations).
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	c := New(Options{FlightSize: 16})
	c.NoC = NewNoC(4, 6, 5, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(CTreeHit, 1)
		c.Event(10, EvTreeHit, 2, 0x80, 0)
		c.NoC.LinkBusy[c.NoC.OutIdx(1, 2)] += 5
		c.NoC.QueueSum[c.NoC.InIdx(1, 2, 0)]++
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated %.1f per run, want 0", allocs)
	}
}

func TestCollectorDefaults(t *testing.T) {
	c := New(Options{})
	if c.Flight == nil || cap(c.Flight.buf) != 4096 {
		t.Fatalf("default flight size wrong")
	}
	if c.InFlight.Bucket != 4096 {
		t.Fatalf("default bucket = %d, want 4096", c.InFlight.Bucket)
	}
	if !c.SampleDue(0) || !c.SampleDue(8192) || c.SampleDue(5) {
		t.Fatal("SampleDue mask wrong")
	}
	c2 := New(Options{SeriesBucket: 1000})
	if c2.InFlight.Bucket != 1024 {
		t.Fatalf("bucket rounding = %d, want 1024", c2.InFlight.Bucket)
	}
}

func TestNoCIndexing(t *testing.T) {
	n := NewNoC(16, 6, 5, 2)
	seen := map[int]bool{}
	for r := 0; r < 16; r++ {
		for p := 0; p < 5; p++ {
			i := n.OutIdx(r, p)
			if i < 0 || i >= len(n.LinkBusy) || seen[i] {
				t.Fatalf("OutIdx(%d,%d) = %d invalid or duplicate", r, p, i)
			}
			seen[i] = true
		}
	}
	seen = map[int]bool{}
	for r := 0; r < 16; r++ {
		for p := 0; p < 6; p++ {
			for vc := 0; vc < 2; vc++ {
				i := n.InIdx(r, p, vc)
				if i < 0 || i >= len(n.QueueSum) || seen[i] {
					t.Fatalf("InIdx(%d,%d,%d) = %d invalid or duplicate", r, p, vc, i)
				}
				seen[i] = true
			}
		}
	}
	n.Cycles = 100
	n.LinkBusy[n.OutIdx(3, 1)] = 50
	if u := n.Util(3, 1); u != 0.5 {
		t.Fatalf("Util = %v, want 0.5", u)
	}
}
