package metrics

// Breakdown decomposes every completed coherence access's latency into four
// exhaustive components:
//
//	queueing      — cycles waiting in router FIFOs behind other traffic
//	                (plus NIC serialization at the controllers)
//	serialization — cycles the packet's head waited for an output link
//	                still transmitting a previous packet's flits
//	traversal     — the contention-free minimum network time: pipeline
//	                stages and link cycles along the path actually taken
//	controller    — cycles above the network: data-cache, directory and
//	                memory service at the endpoints
//
// The decomposition is exact by construction: traversal is computed
// analytically from hop counts, serialization is measured per packet,
// queueing is the remaining in-network residual and controller time is the
// out-of-network residual, so the four components always sum to the measured
// end-to-end latency.
type Breakdown struct {
	Read  BreakdownClass
	Write BreakdownClass
}

// BreakdownClass accumulates one access class. Fields are cycle sums over N
// accesses; means are Sum/N.
type BreakdownClass struct {
	N          int64
	Total      int64
	Queue      int64
	Serial     int64
	Traversal  int64
	Controller int64
}

// Record folds one completed access: total is the end-to-end latency, net
// the cycles its packets spent inside the network, trav the analytic
// contention-free network minimum and serial the measured link-serialization
// wait. Components are clamped pairwise so that queue+serial+trav+controller
// always equals total even for degenerate measurements (e.g. message types
// excluded from attribution make net an undercount, which lands in the
// controller residual by design).
func (b *Breakdown) Record(write bool, total, net, trav, serial int64) {
	cl := &b.Read
	if write {
		cl = &b.Write
	}
	if net > total {
		net = total
	}
	if trav > net {
		trav = net
	}
	if serial > net-trav {
		serial = net - trav
	}
	queue := net - trav - serial
	controller := total - net
	cl.N++
	cl.Total += total
	cl.Queue += queue
	cl.Serial += serial
	cl.Traversal += trav
	cl.Controller += controller
}

// Sum returns the class's component sum; it equals Total by construction.
func (c BreakdownClass) Sum() int64 { return c.Queue + c.Serial + c.Traversal + c.Controller }

// Mean returns the mean total latency.
func (c BreakdownClass) Mean() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Total) / float64(c.N)
}
