package sim

import (
	"reflect"
	"testing"
)

// deferTicker appends its id to a shared log through its shard's barrier
// queue every cycle; the log order is the determinism signature the tests
// compare across shard counts.
type deferTicker struct {
	k     *Kernel
	id    int
	shard int
	log   *[]int
}

func (t *deferTicker) Tick(now int64) {
	if !t.k.InTick() {
		panic("sharded ticker ran outside the tick segment")
	}
	t.k.Defer(t.shard, 0, func() { *t.log = append(*t.log, t.id) })
}

// buildSharded registers n deferTickers split into the given number of
// shards with the contiguous-band layout NewMesh uses.
func buildSharded(n, shards int) (*Kernel, *[]int) {
	k := NewKernel(1)
	k.SetShards(shards)
	var log []int
	for i := 0; i < n; i++ {
		st := &deferTicker{k: k, id: i, shard: i * shards / n, log: &log}
		k.AssignShard(k.Register(st), st.shard)
	}
	return k, &log
}

// TestDeferDrainOrderIndependentOfShardCount is the kernel-level
// determinism contract: per-shard Defer queues drained in shard order must
// reproduce the serial (shards=1) order at every shard count, because
// shards are contiguous ascending-ID bands each ticked in ascending order.
func TestDeferDrainOrderIndependentOfShardCount(t *testing.T) {
	const n, cycles = 12, 5
	k, base := buildSharded(n, 1)
	k.Run(cycles)
	if len(*base) != n*cycles {
		t.Fatalf("serial log has %d entries, want %d", len(*base), n*cycles)
	}
	for _, s := range []int{2, 3, 4, n} {
		k, log := buildSharded(n, s)
		k.Run(cycles)
		k.ReleaseWorkers()
		if !reflect.DeepEqual(*log, *base) {
			t.Errorf("shards=%d drain order %v != serial %v", s, *log, *base)
		}
	}
}

// TestDeferDelayedMatchesSchedule checks the two Defer regimes: delay <= 0
// runs at the deferring cycle's barrier (Now unchanged), delay >= 1 lands
// on the event heap exactly as Schedule(delay, fn) from the barrier would.
func TestDeferDelayedMatchesSchedule(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(2)
	var barrierAt, delayedAt int64 = -1, -1
	deferred := false
	tick := func(tk *deferTicker, now int64) {
		if now == 2 && tk.id == 1 && !deferred {
			deferred = true
			tk.k.Defer(tk.shard, 0, func() {
				if tk.k.InTick() {
					t.Error("barrier drain ran with InTick true")
				}
				barrierAt = tk.k.Now()
			})
			tk.k.Defer(tk.shard, 3, func() { delayedAt = tk.k.Now() })
		}
	}
	for i := 0; i < 2; i++ {
		st := &deferTicker{k: k, id: i, shard: i}
		var log []int
		st.log = &log
		tid := k.Register(tickFunc(func(now int64) { tick(st, now) }))
		k.AssignShard(tid, st.shard)
	}
	k.Run(10)
	k.ReleaseWorkers()
	if barrierAt != 2 {
		t.Errorf("barrier-drained call ran at cycle %d, want 2", barrierAt)
	}
	if delayedAt != 5 {
		t.Errorf("delayed Defer fired at cycle %d, want 5 (2 + delay 3)", delayedAt)
	}
}

// tickFunc adapts a function to the Ticker interface.
type tickFunc func(now int64)

func (f tickFunc) Tick(now int64) { f(now) }

// TestOnBarrierHooksRunBeforeDrainInOrder checks the barrier sequence:
// after the sharded ticks join, flush hooks run in registration order,
// then the Defer queues drain.
func TestOnBarrierHooksRunBeforeDrainInOrder(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(2)
	var seq []string
	for i := 0; i < 2; i++ {
		i := i
		tid := k.Register(tickFunc(func(now int64) {
			if now == 1 {
				k.Defer(i, 0, func() { seq = append(seq, "drain") })
			}
		}))
		k.AssignShard(tid, i)
	}
	k.OnBarrier(func() { seq = append(seq, "hook-a") })
	k.OnBarrier(func() { seq = append(seq, "hook-b") })
	k.Run(1)
	k.ReleaseWorkers()
	want := []string{"hook-a", "hook-b", "drain", "drain"}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("barrier sequence %v, want %v", seq, want)
	}
}

// TestReleaseWorkersRestart checks that worker goroutines can be released
// mid-run and restart transparently on the next Step, without disturbing
// the drain order.
func TestReleaseWorkersRestart(t *testing.T) {
	const n, cycles = 8, 6
	k, base := buildSharded(n, 1)
	k.Run(cycles)

	k2, log := buildSharded(n, 4)
	k2.Run(3)
	k2.ReleaseWorkers()
	k2.Run(cycles) // restarts workers on demand
	k2.ReleaseWorkers()
	if !reflect.DeepEqual(*log, *base) {
		t.Errorf("split run drain order %v != serial %v", *log, *base)
	}
	// Releasing with no workers started (or twice) is a no-op.
	k2.ReleaseWorkers()
}

// TestSetShardsAfterAssignPanics pins the construction contract: the shard
// count must be fixed before tickers are placed.
func TestSetShardsAfterAssignPanics(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(2)
	k.AssignShard(k.Register(tickFunc(func(int64) {})), 0)
	defer func() {
		if recover() == nil {
			t.Error("SetShards after AssignShard did not panic")
		}
	}()
	k.SetShards(4)
}
