package sim

// This file is the sharded tick segment: the spatial-decomposition layer
// that lets one simulation tick its routers on multiple cores while staying
// byte-identical to serial execution.
//
// The model is bulk-synchronous: within a cycle, every sharded ticker ticks
// against the state frozen at the cycle's start (its own FIFOs, its own
// node's controller state), and every effect that crosses a shard boundary
// — a flit handed to a neighboring router, a callback scheduled on the
// global event heap — is deferred and applied at the cycle barrier by the
// coordinator. Determinism does not come from locks but from ordering: each
// shard owns a contiguous range of ticker IDs and processes them in
// ascending order, so concatenating the per-shard deferral queues in shard
// order reproduces the single global ascending-ID order regardless of the
// shard count (including 1). Serial mode is not a separate code path; it is
// shards=1 of the same machinery.
//
// # Barrier mechanics
//
// Dispatching a cycle to the workers used to cost two channel hops per
// shard (send on workCh, receive on doneCh) — around a microsecond per
// shard per cycle, which on fine-grained cycles dwarfed the tick work
// itself. The current barrier is sense-reversing on atomic counters: the
// coordinator publishes the cycle's busy-shard work list and releases each
// participating worker by bumping its private (cache-line-padded) release
// counter; workers pull shard indexes from a shared atomic cursor, tick
// them, and decrement a joint outstanding count the coordinator spins on.
// Both sides spin briefly, then yield, then park on a sync.Cond (the
// futex-style fallback), so an uncontended barrier costs tens of
// nanoseconds of atomic traffic while an oversubscribed host degrades to
// scheduler blocking instead of burning cycles. Which worker ticks which
// shard is intentionally unspecified — shard state is exclusively owned for
// the duration of the segment and the barrier drain order is fixed by shard
// numbering, so work stealing cannot perturb output.
//
// # Intra-cycle idle-router skipping
//
// Within a busy cycle most sharded tickers are idle (a mesh carrying a few
// packets has a few busy routers). Each shard therefore keeps a dense
// active bitmap over its contiguous ID band, maintained edge-triggered at
// wake and park — Wake sets the ticker's bit, a quiescent park clears it —
// so ticking a shard walks only the set bits (ascending, preserving the
// serial order) instead of scanning every slot's active flag. The bitmap
// words are re-read as the walk advances, so a ticker woken mid-segment by
// an earlier same-shard ticker still ticks in the same cycle, exactly as
// the flag scan behaved.
//
// # Auto-tuned parallelism width
//
// With SetAutoTune (protocol.Spec.Shards == 0), the kernel re-decides every
// tuneWindow busy cycles how many shard workers to actually release, from
// the measured active-ticker occupancy: width grows only while the load
// offers at least tunePerWorker active tickers per worker and shrinks when
// it no longer does, with a dead band between the two thresholds so the
// width doesn't oscillate. The rule is a pure function of the simulation's
// own (deterministic) occupancy sequence, and width only chooses which
// goroutine ticks a shard — never what is ticked or in what barrier order —
// so output stays byte-identical at every width, including across hosts
// with different GOMAXPROCS.

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// deferredCall is one entry of a shard's barrier queue: run fn at the
// barrier (delay <= 0) or push it onto the event heap with the given delay
// (delay >= 1, same clamp as Schedule).
type deferredCall struct {
	delay int64
	fn    func()
}

// Auto-tune and barrier constants.
const (
	// minTickersPerShard is AutoShards' floor: a shard below this many
	// tickers cannot amortize even the cheap barrier.
	minTickersPerShard = 32
	// tuneWindow is how many busy cycles the width tuner averages over.
	tuneWindow = 1024
	// tunePerWorker is the active-ticker load that justifies one worker.
	// The dead band between (width+1)*tunePerWorker (grow) and
	// (width-1)*tunePerWorker (shrink) is the hysteresis.
	tunePerWorker = 32
	// barrierSpin / barrierYield bound the spin-then-park ladder: pure
	// atomic re-reads, then runtime.Gosched rounds, then a sync.Cond park.
	barrierSpin  = 128
	barrierYield = 32
)

// AutoShards picks a shard count for a simulation with n sharded tickers:
// one shard per minTickersPerShard tickers, capped at GOMAXPROCS, never
// below 1. It is the resolution rule behind protocol.Spec.Shards == 0.
func AutoShards(n int) int {
	s := runtime.GOMAXPROCS(0)
	if per := n / minTickersPerShard; s > per {
		s = per
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ShardStats is the sharded tick engine's performance accounting, exposed
// so benchmarks can attribute regressions (BENCH_parallel.json records the
// occupancy and barrier-wait columns). All quantities are observational.
type ShardStats struct {
	// BusyCycles counts cycles in which at least one shard had an active
	// ticker; ActiveSum accumulates the active sharded-ticker count over
	// those cycles (ActiveSum/BusyCycles is mean occupancy).
	BusyCycles int64
	ActiveSum  int64
	// ParallelCycles counts cycles actually dispatched to worker
	// goroutines (two or more busy shards and width > 1).
	ParallelCycles int64
	// BarrierWaitNs is coordinator nanoseconds spent waiting at the cycle
	// barrier for workers to finish, measured only on dispatched cycles.
	BarrierWaitNs int64
	// PerShardActiveSum is ActiveSum split by shard: shard s's active
	// tickers summed over busy cycles.
	PerShardActiveSum []int64
	// Width is the current parallelism width (== shard count unless
	// auto-tuning is on).
	Width int
}

// ShardStats returns a snapshot of the engine's accounting. The per-shard
// slice is copied; callers may retain it.
func (k *Kernel) ShardStats() ShardStats {
	s := k.stats
	s.PerShardActiveSum = append([]int64(nil), k.occSum...)
	s.Width = k.parWidth
	return s
}

// initShards (re)initializes the shard tables for n shards.
func (k *Kernel) initShards(n int) {
	k.shards = n
	k.parWidth = n
	k.shardActive = make([]int, n)
	k.shardSlots = make([][]TickerID, n)
	k.shardBits = make([][]uint64, n)
	k.shardLo = make([]int, n)
	for s := range k.shardLo {
		k.shardLo[s] = -1
	}
	k.deferred = make([][]deferredCall, n)
	k.occSum = make([]int64, n)
	k.workBuf = make([]int32, 0, n)
}

// SetShards declares the shard count for the sharded tick segment (clamped
// to at least 1). It must be called before any AssignShard; NewKernel
// starts at 1 shard. The count caps worker parallelism — it does not by
// itself create goroutines, which start lazily on the first cycle where two
// or more shards have active tickers.
func (k *Kernel) SetShards(n int) {
	if k.nSharded > 0 {
		panic("sim: SetShards after AssignShard")
	}
	if n < 1 {
		n = 1
	}
	k.initShards(n)
}

// Shards returns the configured shard count.
func (k *Kernel) Shards() int { return k.shards }

// SetAutoTune enables (or disables) occupancy-driven width tuning. With it
// on, the kernel starts at width 1 — every busy shard ticks inline on the
// coordinator — and widens only once the measured active-ticker load
// justifies workers; see the package comment's auto-tune section. Output is
// byte-identical at every width, so this is a pure scheduling knob.
func (k *Kernel) SetAutoTune(on bool) {
	k.autoTune = on
	if on {
		k.parWidth = 1
	} else {
		k.parWidth = k.shards
	}
	k.tuneBusy, k.tuneActive = 0, 0
}

// AssignShard moves a registered ticker from the coordinator segment into
// shard s. Tickers must be assigned at most once, in ascending TickerID
// order per shard, with all of a shard's IDs contiguous and below the next
// shard's — the layout network.Build produces — because barrier determinism
// rests on per-shard queues concatenating into ascending-ID order, and the
// shard's active bitmap indexes by offset from its lowest ID.
func (k *Kernel) AssignShard(id TickerID, s int) {
	if s < 0 || s >= k.shards {
		panic("sim: AssignShard out of range")
	}
	if k.slotShard[id] != -1 {
		panic("sim: ticker assigned to a shard twice")
	}
	if k.shardLo[s] == -1 {
		k.shardLo[s] = int(id)
	} else if last := k.shardSlots[s][len(k.shardSlots[s])-1]; id <= last {
		panic("sim: AssignShard out of ascending order")
	}
	off := int(id) - k.shardLo[s]
	for off>>6 >= len(k.shardBits[s]) {
		k.shardBits[s] = append(k.shardBits[s], 0)
	}
	if k.slots[id].active {
		k.coordActive--
		k.shardActive[s]++
		k.shardBits[s][off>>6] |= 1 << (uint(off) & 63)
	}
	k.slotShard[id] = s
	k.shardSlots[s] = append(k.shardSlots[s], id)
	k.nSharded++
	k.coordDirty = true
}

// InTick reports whether the kernel is inside the sharded tick segment of
// the current cycle. Code that can run both from event handlers and from
// sharded ticks (the protocol layer's controller helpers) uses it to decide
// between a direct Schedule and a Defer.
func (k *Kernel) InTick() bool { return k.inTick }

// Defer queues fn on shard s's barrier queue: with delay >= 1 the barrier
// pushes it onto the event heap exactly as Schedule(delay, fn) would; with
// delay <= 0 the barrier runs it immediately (still this cycle, after all
// ticks). Callers inside the tick segment must pass the shard that owns the
// state fn originates from — for node-pinned work, the node's shard — so
// the drain order is the same at every shard count.
func (k *Kernel) Defer(s int, delay int64, fn func()) {
	k.deferred[s] = append(k.deferred[s], deferredCall{delay: delay, fn: fn})
}

// OnBarrier registers a flush hook run at every cycle barrier, after the
// sharded ticks join and before the Defer queues drain. Hooks run in
// registration order on the coordinator; the network layer uses one to move
// mailboxed flits onto their destination routers' input FIFOs.
func (k *Kernel) OnBarrier(fn func()) {
	k.barrierFns = append(k.barrierFns, fn)
}

// activeTotal returns the active-ticker count across the coordinator and
// all shards. Only called from coordinator contexts.
func (k *Kernel) activeTotal() int {
	n := k.coordActive
	for _, a := range k.shardActive {
		n += a
	}
	return n
}

// tickShard ticks every active slot of shard s in ascending ID order,
// parking quiescent Parkers. It runs on the coordinator or on a worker; all
// state it touches (the shard's slots, bitmap and active count) is owned by
// that goroutine for the duration of the tick segment.
//
// The walk follows the shard's active bitmap word by word, re-reading each
// word as bits are consumed: a wake of a later-ID ticker in the same shard
// during the walk (the self-wake a router performs when spawning into its
// own queues, or a producer ticker feeding a consumer registered after it)
// is picked up in this same cycle, exactly as the full flag scan used to.
// Wakes to already-passed IDs take effect next cycle, also as before.
func (k *Kernel) tickShard(s int, now int64) {
	if k.alwaysTick {
		for _, id := range k.shardSlots[s] {
			sl := &k.slots[id]
			if !sl.active {
				continue
			}
			sl.t.Tick(now)
		}
		return
	}
	bm := k.shardBits[s]
	lo := k.shardLo[s]
	for w := range bm {
		var done uint64
		for {
			word := bm[w] &^ done
			if word == 0 {
				break
			}
			b := bits.TrailingZeros64(word)
			// Mark every position up to b consumed, not just b: the scan
			// point has passed them, so a wake landing on an earlier ID
			// after this (from a later same-shard ticker) waits for the
			// next cycle — exactly where the old full scan's index would
			// have left it.
			done |= ^uint64(0) >> uint(63-b)
			id := TickerID(lo + w<<6 + b)
			sl := &k.slots[id]
			sl.t.Tick(now)
			if sl.parker != nil && sl.parker.Quiescent() {
				sl.active = false
				bm[w] &^= 1 << uint(b)
				k.shardActive[s]--
			}
		}
	}
}

// tickShards runs the sharded segment for one cycle. Shards with no active
// tickers are skipped entirely; with zero or one busy shard — or a tuned
// width of 1 — everything runs inline on the coordinator, so idle-heavy
// phases pay no dispatch cost at all.
func (k *Kernel) tickShards() {
	if k.shards == 1 {
		if a := k.shardActive[0]; k.alwaysTick || a > 0 {
			k.stats.BusyCycles++
			k.stats.ActiveSum += int64(a)
			k.occSum[0] += int64(a)
			k.tickShard(0, k.now)
		}
		return
	}
	work := k.workBuf[:0]
	total := 0
	for s := 0; s < k.shards; s++ {
		a := k.shardActive[s]
		if k.alwaysTick || a > 0 {
			work = append(work, int32(s))
			total += a
			k.occSum[s] += int64(a)
		}
	}
	k.workBuf = work
	if len(work) == 0 {
		return
	}
	k.stats.BusyCycles++
	k.stats.ActiveSum += int64(total)
	if k.autoTune {
		k.retune(total)
	}
	if len(work) == 1 || k.parWidth == 1 {
		for _, s := range work {
			k.tickShard(int(s), k.now)
		}
		return
	}
	k.stats.ParallelCycles++
	k.dispatch(work)
}

// retune is the width tuner's per-busy-cycle accounting and, every
// tuneWindow busy cycles, its deterministic hysteresis step.
func (k *Kernel) retune(active int) {
	k.tuneBusy++
	k.tuneActive += int64(active)
	if k.tuneBusy < tuneWindow {
		return
	}
	avg := k.tuneActive / k.tuneBusy
	if avg >= int64(k.parWidth+1)*tunePerWorker && k.parWidth < k.shards {
		k.parWidth++
	} else if k.parWidth > 1 && avg <= int64(k.parWidth-1)*tunePerWorker {
		k.parWidth--
	}
	k.tuneBusy, k.tuneActive = 0, 0
}

// workerRelease is one worker's private release counter, padded so two
// workers' barrier traffic never shares a cache line.
type workerRelease struct {
	n atomic.Int64
	_ [56]byte
}

// workBench is the barrier state shared between the coordinator and the
// shard worker goroutines of one worker generation. ReleaseWorkers drops
// the kernel's reference and flags stop; a later Step builds a fresh bench,
// so a stale worker can never touch live dispatch state.
type workBench struct {
	// Published by the coordinator before the release counters are bumped
	// (the bump is the synchronizing edge).
	workList []int32
	nWork    int32
	now      int64

	nextWork  atomic.Int64 // shared work cursor
	_         [48]byte
	remaining atomic.Int64 // participants still ticking this cycle
	_         [48]byte

	release []workerRelease
	stop    atomic.Bool

	// Worker parking (spin-then-park fallback).
	parked atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond

	// Coordinator parking for the completion side of the barrier.
	coordParked atomic.Bool
	doneMu      sync.Mutex
	doneCond    *sync.Cond
}

// ensureWorkers lazily builds the work bench and starts one goroutine per
// non-coordinator worker slot. Workers spin-then-park between cycles and
// exit when ReleaseWorkers flags their bench stopped.
func (k *Kernel) ensureWorkers() {
	if k.wb != nil {
		return
	}
	wb := &workBench{
		workList: make([]int32, k.shards),
		release:  make([]workerRelease, k.shards-1),
	}
	wb.cond = sync.NewCond(&wb.mu)
	wb.doneCond = sync.NewCond(&wb.doneMu)
	k.wb = wb
	for w := 0; w < k.shards-1; w++ {
		go k.worker(wb, w)
	}
}

// dispatch runs one parallel cycle: publish the work list, release
// min(width, len(work)) participants (the coordinator is one of them), tick
// alongside the workers, then wait for the joint outstanding count to drain.
func (k *Kernel) dispatch(work []int32) {
	k.ensureWorkers()
	wb := k.wb
	par := k.parWidth
	if par > len(work) {
		par = len(work)
	}
	copy(wb.workList, work)
	wb.nWork = int32(len(work))
	wb.now = k.now
	wb.nextWork.Store(0)
	wb.remaining.Store(int64(par))
	for w := 0; w < par-1; w++ {
		wb.release[w].n.Add(1)
	}
	if wb.parked.Load() != 0 {
		wb.mu.Lock()
		wb.cond.Broadcast()
		wb.mu.Unlock()
	}
	k.runWork(wb)
	if wb.remaining.Add(-1) == 0 {
		return
	}
	start := time.Now()
	for spins := 0; wb.remaining.Load() != 0; spins++ {
		if spins < barrierSpin {
			continue
		}
		if spins < barrierSpin+barrierYield {
			runtime.Gosched()
			continue
		}
		wb.coordParked.Store(true)
		wb.doneMu.Lock()
		for wb.remaining.Load() != 0 {
			wb.doneCond.Wait()
		}
		wb.doneMu.Unlock()
		wb.coordParked.Store(false)
		break
	}
	k.stats.BarrierWaitNs += time.Since(start).Nanoseconds()
}

// runWork pulls shard indexes off the shared cursor until the cycle's work
// list is exhausted. Shards are claimed whole; the claim order is
// irrelevant to output (see the package comment).
func (k *Kernel) runWork(wb *workBench) {
	for {
		i := wb.nextWork.Add(1) - 1
		if i >= int64(wb.nWork) {
			return
		}
		k.tickShard(int(wb.workList[i]), wb.now)
	}
}

// worker is one shard worker goroutine: wait (spin, yield, park) for its
// release counter to advance, tick claimed shards, join the barrier.
func (k *Kernel) worker(wb *workBench, w int) {
	rel := &wb.release[w].n
	seen := int64(0)
	for {
		for spins := 0; rel.Load() == seen; spins++ {
			if wb.stop.Load() {
				return
			}
			if spins < barrierSpin {
				continue
			}
			if spins < barrierSpin+barrierYield {
				runtime.Gosched()
				continue
			}
			wb.parked.Add(1)
			wb.mu.Lock()
			for rel.Load() == seen && !wb.stop.Load() {
				wb.cond.Wait()
			}
			wb.mu.Unlock()
			wb.parked.Add(-1)
		}
		if wb.stop.Load() {
			return
		}
		seen++
		k.runWork(wb)
		if wb.remaining.Add(-1) == 0 && wb.coordParked.Load() {
			wb.doneMu.Lock()
			wb.doneCond.Signal()
			wb.doneMu.Unlock()
		}
	}
}

// ReleaseWorkers stops the shard worker goroutines, if any were started.
// Safe to call at any point between Steps; a later Step restarts a fresh
// worker generation on demand. Long-lived processes that build many
// machines (test suites, the experiment pool) call this when a run finishes
// so workers don't accumulate.
func (k *Kernel) ReleaseWorkers() {
	wb := k.wb
	if wb == nil {
		return
	}
	k.wb = nil
	wb.stop.Store(true)
	wb.mu.Lock()
	wb.cond.Broadcast()
	wb.mu.Unlock()
}

// drainDeferred applies the per-shard barrier queues in shard order. Within
// a queue, entries apply in append order; across queues, shard order equals
// ascending ticker-ID order by the AssignShard contiguity contract — so the
// global drain order is independent of the shard count.
func (k *Kernel) drainDeferred() {
	for s := range k.deferred {
		q := k.deferred[s]
		for i := range q {
			d := q[i]
			if d.delay <= 0 {
				d.fn()
			} else {
				k.Schedule(d.delay, d.fn)
			}
			q[i] = deferredCall{} // drop the closure reference
		}
		k.deferred[s] = q[:0]
	}
}
