package sim

// This file is the sharded tick segment: the spatial-decomposition layer
// that lets one simulation tick its routers on multiple cores while staying
// byte-identical to serial execution.
//
// The model is bulk-synchronous: within a cycle, every sharded ticker ticks
// against the state frozen at the cycle's start (its own FIFOs, its own
// node's controller state), and every effect that crosses a shard boundary
// — a flit handed to a neighboring router, a callback scheduled on the
// global event heap — is deferred and applied at the cycle barrier by the
// coordinator. Determinism does not come from locks but from ordering: each
// shard owns a contiguous range of ticker IDs and processes them in
// ascending order, so concatenating the per-shard deferral queues in shard
// order reproduces the single global ascending-ID order regardless of the
// shard count (including 1). Serial mode is not a separate code path; it is
// shards=1 of the same machinery.

// deferredCall is one entry of a shard's barrier queue: run fn at the
// barrier (delay <= 0) or push it onto the event heap with the given delay
// (delay >= 1, same clamp as Schedule).
type deferredCall struct {
	delay int64
	fn    func()
}

// initShards (re)initializes the shard tables for n shards.
func (k *Kernel) initShards(n int) {
	k.shards = n
	k.shardActive = make([]int, n)
	k.shardSlots = make([][]TickerID, n)
	k.deferred = make([][]deferredCall, n)
	k.workBuf = make([]int, 0, n)
}

// SetShards declares the shard count for the sharded tick segment (clamped
// to at least 1). It must be called before any AssignShard; NewKernel
// starts at 1 shard. The count caps worker parallelism — it does not by
// itself create goroutines, which start lazily on the first cycle where two
// or more shards have active tickers.
func (k *Kernel) SetShards(n int) {
	if k.nSharded > 0 {
		panic("sim: SetShards after AssignShard")
	}
	if n < 1 {
		n = 1
	}
	k.initShards(n)
}

// Shards returns the configured shard count.
func (k *Kernel) Shards() int { return k.shards }

// AssignShard moves a registered ticker from the coordinator segment into
// shard s. Tickers must be assigned at most once, in ascending TickerID
// order per shard, with all of a shard's IDs contiguous and below the next
// shard's — the layout NewMesh produces — because barrier determinism rests
// on per-shard queues concatenating into ascending-ID order.
func (k *Kernel) AssignShard(id TickerID, s int) {
	if s < 0 || s >= k.shards {
		panic("sim: AssignShard out of range")
	}
	if k.slotShard[id] != -1 {
		panic("sim: ticker assigned to a shard twice")
	}
	if k.slots[id].active {
		k.coordActive--
		k.shardActive[s]++
	}
	k.slotShard[id] = s
	k.shardSlots[s] = append(k.shardSlots[s], id)
	k.nSharded++
}

// InTick reports whether the kernel is inside the sharded tick segment of
// the current cycle. Code that can run both from event handlers and from
// sharded ticks (the protocol layer's controller helpers) uses it to decide
// between a direct Schedule and a Defer.
func (k *Kernel) InTick() bool { return k.inTick }

// Defer queues fn on shard s's barrier queue: with delay >= 1 the barrier
// pushes it onto the event heap exactly as Schedule(delay, fn) would; with
// delay <= 0 the barrier runs it immediately (still this cycle, after all
// ticks). Callers inside the tick segment must pass the shard that owns the
// state fn originates from — for node-pinned work, the node's shard — so
// the drain order is the same at every shard count.
func (k *Kernel) Defer(s int, delay int64, fn func()) {
	k.deferred[s] = append(k.deferred[s], deferredCall{delay: delay, fn: fn})
}

// OnBarrier registers a flush hook run at every cycle barrier, after the
// sharded ticks join and before the Defer queues drain. Hooks run in
// registration order on the coordinator; the network layer uses one to move
// mailboxed flits onto their destination routers' input FIFOs.
func (k *Kernel) OnBarrier(fn func()) {
	k.barrierFns = append(k.barrierFns, fn)
}

// activeTotal returns the active-ticker count across the coordinator and
// all shards. Only called from coordinator contexts.
func (k *Kernel) activeTotal() int {
	n := k.coordActive
	for _, a := range k.shardActive {
		n += a
	}
	return n
}

// tickShard ticks every active slot of shard s in ascending ID order,
// parking quiescent Parkers. It runs on the coordinator or on shard s's
// worker; all state it touches (the slots, the shard's active count) is
// owned by that context for the duration of the tick segment.
func (k *Kernel) tickShard(s int, now int64) {
	for _, id := range k.shardSlots[s] {
		sl := &k.slots[id]
		if !sl.active {
			continue
		}
		sl.t.Tick(now)
		if !k.alwaysTick && sl.parker != nil && sl.parker.Quiescent() {
			sl.active = false
			k.shardActive[s]--
		}
	}
}

// tickShards runs the sharded segment for one cycle. Shards with no active
// tickers are skipped entirely; with zero or one busy shard everything runs
// inline on the coordinator, so idle-heavy phases pay no dispatch cost.
func (k *Kernel) tickShards() {
	if k.shards == 1 {
		k.tickShard(0, k.now)
		return
	}
	work := k.workBuf[:0]
	for s := 0; s < k.shards; s++ {
		if k.alwaysTick || k.shardActive[s] > 0 {
			work = append(work, s)
		}
	}
	k.workBuf = work
	if len(work) <= 1 {
		if len(work) == 1 {
			k.tickShard(work[0], k.now)
		}
		return
	}
	k.ensureWorkers()
	for _, s := range work[1:] {
		k.workCh[s] <- k.now
	}
	k.tickShard(work[0], k.now)
	for _, s := range work[1:] {
		<-k.doneCh[s]
	}
}

// ensureWorkers lazily starts one goroutine per shard. Workers block on
// their work channel between cycles and exit when ReleaseWorkers closes it.
func (k *Kernel) ensureWorkers() {
	if k.workCh != nil {
		return
	}
	k.workCh = make([]chan int64, k.shards)
	k.doneCh = make([]chan struct{}, k.shards)
	for s := 0; s < k.shards; s++ {
		work := make(chan int64, 1)
		done := make(chan struct{}, 1)
		k.workCh[s] = work
		k.doneCh[s] = done
		go func(s int) {
			for now := range work {
				k.tickShard(s, now)
				done <- struct{}{}
			}
		}(s)
	}
}

// ReleaseWorkers stops the shard worker goroutines, if any were started.
// Safe to call at any point between Steps; a later Step restarts them on
// demand. Long-lived processes that build many machines (test suites, the
// experiment pool) call this when a run finishes so workers don't
// accumulate.
func (k *Kernel) ReleaseWorkers() {
	if k.workCh == nil {
		return
	}
	for _, ch := range k.workCh {
		close(ch)
	}
	k.workCh = nil
	k.doneCh = nil
}

// drainDeferred applies the per-shard barrier queues in shard order. Within
// a queue, entries apply in append order; across queues, shard order equals
// ascending ticker-ID order by the AssignShard contiguity contract — so the
// global drain order is independent of the shard count.
func (k *Kernel) drainDeferred() {
	for s := range k.deferred {
		q := k.deferred[s]
		for i := range q {
			d := q[i]
			if d.delay <= 0 {
				d.fn()
			} else {
				k.Schedule(d.delay, d.fn)
			}
			q[i] = deferredCall{} // drop the closure reference
		}
		k.deferred[s] = q[:0]
	}
}
