package sim

import "sort"

// Digest is a streaming 64-bit state hasher (FNV-1a core, splitmix64
// finalizer) that components fold their simulation state into. It backs
// checkpoint verification: a snapshot records the digest of the live state
// at the snapshot cycle, and a restore — which rebuilds that state by
// deterministic replay — recomputes the digest and refuses to continue on a
// mismatch, so a binary whose semantics drifted since the snapshot was
// taken fails loudly instead of silently computing a different result.
//
// Folding must be observation-only: a component's DigestState method may
// not mutate any state the simulation reads (no LRU touches, no counter
// bumps), so that a run that checkpoints is byte-identical to one that
// does not.
type Digest struct {
	h uint64
}

// NewDigest returns a digest in its initial state.
func NewDigest() *Digest {
	return &Digest{h: 1469598103934665603}
}

func (d *Digest) byte(b byte) {
	d.h ^= uint64(b)
	d.h *= 1099511628211
}

// U64 folds a 64-bit word.
func (d *Digest) U64(v uint64) {
	for i := 0; i < 64; i += 8 {
		d.byte(byte(v >> i))
	}
}

// I64 folds a signed 64-bit word.
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// Int folds an int.
func (d *Digest) Int(v int) { d.U64(uint64(int64(v))) }

// Bool folds a boolean.
func (d *Digest) Bool(b bool) {
	if b {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

// Str folds a length-prefixed string.
func (d *Digest) Str(s string) {
	d.Int(len(s))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

// Sum returns the finalized digest. It does not consume the digest:
// further folds may follow and Sum may be called again.
func (d *Digest) Sum() uint64 {
	x := d.h
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// State exposes the RNG's internal word for state digests. Together with
// NewRNG-from-state semantics it makes the generator's position part of a
// checkpoint's identity.
func (r *RNG) State() uint64 { return r.state }

// DigestState folds the kernel's core state into d: the clock, the
// scheduling sequence, the RNG position, per-ticker activation flags and
// the pending event timeline. Event callbacks are closures and cannot be
// serialized, so the timeline is represented by each event's observable
// coordinates — fire cycle, schedule order, and whether it is a callback or
// a wake timer (with its target) — which, under deterministic replay,
// identify the closure population exactly. The heap's internal element
// order is an implementation detail, so events are folded in (at, seq)
// order.
func (k *Kernel) DigestState(d *Digest) {
	d.I64(k.now)
	d.U64(k.seq)
	d.Int(k.pending)
	d.U64(k.rng.State())
	d.Int(len(k.slots))
	for i := range k.slots {
		d.Bool(k.slots[i].active)
	}
	evs := make([]event, len(k.events))
	copy(evs, k.events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].before(evs[j]) })
	d.Int(len(evs))
	for _, e := range evs {
		d.I64(e.at)
		d.U64(e.seq)
		if e.fn != nil {
			d.Bool(true)
		} else {
			d.Bool(false)
			d.Int(int(e.wake))
		}
	}
}
