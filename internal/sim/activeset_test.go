package sim

import "testing"

// parkingTicker is a Parker that ticks while it has work units queued and
// reports quiescence when drained. Work is handed to it via give(), which
// mimics a producer: enqueue plus Kernel.Wake.
type parkingTicker struct {
	k     *Kernel
	id    TickerID
	work  int
	ticks []int64
}

func (p *parkingTicker) Tick(now int64) {
	p.ticks = append(p.ticks, now)
	if p.work > 0 {
		p.work--
	}
}

func (p *parkingTicker) Quiescent() bool { return p.work == 0 }

func (p *parkingTicker) give(n int) {
	p.work += n
	p.k.Wake(p.id)
}

func TestParkerParksWhenQuiescent(t *testing.T) {
	k := NewKernel(1)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	p.work = 2
	k.Run(10)
	// The cycle-1 tick leaves one unit, the cycle-2 tick drains the last
	// and reports quiescence, so the kernel parks it then and there. No
	// ticks after that.
	want := []int64{1, 2}
	if len(p.ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", p.ticks, want)
	}
	for i, w := range want {
		if p.ticks[i] != w {
			t.Fatalf("ticks %v, want %v", p.ticks, want)
		}
	}
}

func TestWakeReactivatesParkedTicker(t *testing.T) {
	k := NewKernel(1)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	k.Run(5) // parks after the first tick (no work)
	if got := len(p.ticks); got != 1 {
		t.Fatalf("%d ticks while idle, want 1", got)
	}
	p.give(1)
	k.Run(10)
	// Woken at cycle 5: the cycle-6 tick drains the unit and the ticker
	// parks again in the same cycle.
	if got := len(p.ticks); got != 2 {
		t.Fatalf("%d ticks after wake, want 2 (got %v)", got, p.ticks)
	}
	if p.ticks[1] != 6 {
		t.Fatalf("post-wake ticks %v, want second tick at cycle 6", p.ticks)
	}
}

func TestWakeIsIdempotent(t *testing.T) {
	k := NewKernel(1)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	k.Wake(p.id) // waking an active ticker must not corrupt the active count
	k.Wake(p.id)
	k.Run(3)
	if len(p.ticks) == 0 {
		t.Fatal("ticker never ticked")
	}
}

// TestEventBeforeTickerAcrossParkWake pins the intra-cycle ordering
// guarantee across a park/wake boundary: an event scheduled to fire in the
// cycle a parked ticker is woken runs before the woken ticker's tick — the
// same events-then-tickers order an always-active ticker sees.
func TestEventBeforeTickerAcrossParkWake(t *testing.T) {
	k := NewKernel(1)
	var log []string
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	k.Register(&funcTicker{func(now int64) {
		if now >= 5 && len(p.ticks) > 0 && p.ticks[len(p.ticks)-1] == now {
			log = append(log, "parker-ticked")
		}
	}})
	k.Run(3) // parker parks at cycle 1 (no work)
	if len(p.ticks) != 1 {
		t.Fatalf("parker ticks %v, want exactly one before parking", p.ticks)
	}
	k.Schedule(2, func() {
		log = append(log, "event")
		p.give(1) // wake from the event phase of cycle 5
	})
	k.Run(8)
	// The event fires at cycle 5 and wakes the parker; the parker must
	// tick in that same cycle, after the event.
	if p.ticks[1] != 5 {
		t.Fatalf("woken parker first ticked at %d, want 5 (same cycle as the waking event)", p.ticks[1])
	}
	if len(log) != 2 || log[0] != "event" || log[1] != "parker-ticked" {
		t.Fatalf("ordering %v, want [event parker-ticked]", log)
	}
}

// TestWakeAtFiresAtRequestedCycle covers self-scheduled wake timers: the
// ticker parks and is reactivated exactly at the requested cycle, and the
// timer never counts as a pending event.
func TestWakeAtFiresAtRequestedCycle(t *testing.T) {
	k := NewKernel(1)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	k.Run(2) // parks at cycle 1
	if at := k.WakeAt(5, p.id); at != 7 {
		t.Fatalf("WakeAt returned fire cycle %d, want 7", at)
	}
	if k.Pending() != 0 {
		t.Fatalf("wake timer counted as pending event: %d", k.Pending())
	}
	k.Run(10)
	if len(p.ticks) != 2 || p.ticks[1] != 7 {
		t.Fatalf("ticks %v, want exactly one wake tick, at cycle 7", p.ticks)
	}
}

func TestScheduleReturnsEffectiveFireCycle(t *testing.T) {
	k := NewKernel(1)
	k.Run(4)
	if at := k.Schedule(3, func() {}); at != 7 {
		t.Fatalf("Schedule(3) at cycle 4 returned %d, want 7", at)
	}
	// The silent clamp is now observable: delays below one report the
	// next cycle, which is when the callback actually runs.
	for _, d := range []int64{0, -5} {
		var fired int64 = -1
		at := k.Schedule(d, func() { fired = k.Now() })
		if at != k.Now()+1 {
			t.Fatalf("Schedule(%d) returned %d, want next cycle %d", d, at, k.Now()+1)
		}
		k.Step()
		if fired != at {
			t.Fatalf("Schedule(%d) fired at %d, returned %d", d, fired, at)
		}
	}
}

// TestRunFastForwardsIdleStretches proves the all-parked fast-forward: the
// clock jumps over dead cycles instead of stepping them, without changing
// when events fire.
func TestRunFastForwardsIdleStretches(t *testing.T) {
	k := NewKernel(1)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	var firedAt int64
	k.Schedule(1000, func() { firedAt = k.Now() })
	k.Run(5000)
	if firedAt != 1000 {
		t.Fatalf("event fired at %d, want 1000", firedAt)
	}
	if k.Now() != 5000 {
		t.Fatalf("clock at %d, want 5000", k.Now())
	}
	// The parker ticked once before parking, once when the cycle-1000
	// event phase ran (it stays parked: no wake), and never in between.
	if len(p.ticks) != 1 {
		t.Fatalf("parked ticker ticked %d times across idle stretch, want 1 (%v)", len(p.ticks), p.ticks)
	}
}

func TestSetAlwaysTickDisablesParking(t *testing.T) {
	k := NewKernel(1)
	k.SetAlwaysTick(true)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	k.Run(6)
	if len(p.ticks) != 6 {
		t.Fatalf("always-tick ticked %d cycles, want 6", len(p.ticks))
	}
}

// TestRunUntilFastForwardStopsAtLimit guards the loop bound: fast-forward
// must never push the clock past the caller's cycle budget.
func TestRunUntilFastForwardStopsAtLimit(t *testing.T) {
	k := NewKernel(1)
	p := &parkingTicker{k: k}
	p.id = k.Register(p)
	if ok := k.RunUntil(func() bool { return false }, 100); ok {
		t.Fatal("unreachable condition reported reached")
	}
	if k.Now() != 100 {
		t.Fatalf("clock at %d after RunUntil(…, 100), want exactly 100", k.Now())
	}
}
