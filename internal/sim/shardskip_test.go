package sim

import (
	"reflect"
	"testing"
)

// parkTicker is a sharded Parker that records the cycle of every tick and
// parks whenever its work counter is zero.
type parkTicker struct {
	k      *Kernel
	tid    TickerID
	shard  int
	work   int
	ticks  []int64
	onTick func(now int64)
}

func (p *parkTicker) Tick(now int64) {
	p.ticks = append(p.ticks, now)
	if p.work > 0 {
		p.work--
	}
	if p.onTick != nil {
		p.onTick(now)
	}
}

func (p *parkTicker) Quiescent() bool { return p.work == 0 }

// TestShardedWakeTimerHonoredWhileParked mirrors the coordinator-segment
// wake-timer-vs-park tests for the sharded segment with intra-cycle
// skipping: a router-like ticker that parks (its active bit cleared from
// the shard bitmap) must still see a Defer(delay>=1) it issued on its last
// tick fire on schedule, and a WakeAt timer must pull it out of the bitmap
// and tick it at exactly the requested cycle — even though the cycles in
// between are fast-forwarded.
func TestShardedWakeTimerHonoredWhileParked(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(2)
	ps := make([]*parkTicker, 4)
	for i := range ps {
		ps[i] = &parkTicker{k: k, shard: i * 2 / 4}
		ps[i].tid = k.Register(ps[i])
		k.AssignShard(ps[i].tid, ps[i].shard)
	}
	var deferFired int64 = -1
	ps[3].work = 1
	ps[3].onTick = func(now int64) {
		if now != 1 {
			return
		}
		// Issued mid-tick, lands on the event heap at the barrier; the
		// issuer parks this same cycle.
		k.Defer(ps[3].shard, 5, func() {
			deferFired = k.Now()
			k.Wake(ps[3].tid)
		})
		k.WakeAt(9, ps[3].tid)
	}
	k.Run(20)
	k.ReleaseWorkers()
	if deferFired != 6 {
		t.Errorf("deferred call fired at cycle %d, want 6 (1 + delay 5)", deferFired)
	}
	// Cycle 1: every ticker's first tick (then all park). Cycle 6: the
	// deferred callback's Wake. Cycle 10: the WakeAt(9) timer from cycle 1.
	if want := []int64{1, 6, 10}; !reflect.DeepEqual(ps[3].ticks, want) {
		t.Errorf("parked ticker ticked at %v, want %v", ps[3].ticks, want)
	}
}

// TestIntraCycleWakeSemantics pins the bitmap walk's ordering contract,
// which must match the historical full scan exactly: a wake to a
// later-registered ticker of the same shard lands in the current cycle
// (the scan has not reached it yet), while a wake to an earlier-registered
// ticker — whose position the scan already passed — waits for the next
// cycle.
func TestIntraCycleWakeSemantics(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(2)
	// Shard 0: a filler parker. Shard 1: parked target t1, waker, parked
	// target t2 — so the waker sits between its two targets in ID order.
	filler := &parkTicker{k: k, shard: 0}
	filler.tid = k.Register(filler)
	k.AssignShard(filler.tid, 0)

	early := &parkTicker{k: k, shard: 1}
	early.tid = k.Register(early)
	k.AssignShard(early.tid, 1)

	waker := &parkTicker{k: k, shard: 1, work: 1 << 20}
	waker.tid = k.Register(waker)
	k.AssignShard(waker.tid, 1)

	late := &parkTicker{k: k, shard: 1}
	late.tid = k.Register(late)
	k.AssignShard(late.tid, 1)

	waker.onTick = func(now int64) {
		if now == 3 {
			k.Wake(late.tid)  // ahead of the scan: ticks this cycle
			k.Wake(early.tid) // behind the scan: ticks next cycle
		}
	}

	k.Run(5)
	k.ReleaseWorkers()
	if want := []int64{1, 3}; !reflect.DeepEqual(late.ticks, want) {
		t.Errorf("later-ID wake target ticked at %v, want %v (same-cycle wake)", late.ticks, want)
	}
	if want := []int64{1, 4}; !reflect.DeepEqual(early.ticks, want) {
		t.Errorf("earlier-ID wake target ticked at %v, want %v (next-cycle wake)", early.ticks, want)
	}
}

// TestAutoTuneWidthChangesAreInvisible drives enough always-busy tickers
// through an auto-tuned kernel that the occupancy tuner actually widens the
// parallelism mid-run, and asserts the Defer drain order still matches the
// serial baseline — width is scheduling only.
func TestAutoTuneWidthChangesAreInvisible(t *testing.T) {
	const n, cycles = 128, 3 * tuneWindow
	k, base := buildSharded(n, 1)
	k.Run(cycles)

	k2, log := buildSharded(n, 4)
	k2.SetAutoTune(true)
	if w := k2.ShardStats().Width; w != 1 {
		t.Fatalf("auto-tuned kernel started at width %d, want 1", w)
	}
	k2.Run(cycles)
	k2.ReleaseWorkers()
	// 128 always-active tickers >> tunePerWorker thresholds: the tuner
	// must have widened past its starting width.
	if w := k2.ShardStats().Width; w <= 1 {
		t.Errorf("width tuner never widened under full load (width %d)", w)
	}
	if !reflect.DeepEqual(*log, *base) {
		t.Error("auto-tuned drain order diverged from serial")
	}
	st := k2.ShardStats()
	if st.BusyCycles != cycles {
		t.Errorf("BusyCycles = %d, want %d", st.BusyCycles, cycles)
	}
	if st.ActiveSum != int64(n)*cycles {
		t.Errorf("ActiveSum = %d, want %d", st.ActiveSum, int64(n)*cycles)
	}
}
