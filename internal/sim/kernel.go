// Package sim provides the cycle-driven simulation kernel used by every
// component in the repository: a global clock, an ordered event queue for
// delayed callbacks (memory accesses, controller service times), and a
// deterministic pseudo-random number generator so that every experiment is
// exactly reproducible from its seed.
//
// The kernel advances in whole cycles. Within a cycle, due events fire first
// (in schedule order), then every active registered Ticker ticks once in
// registration order. Components that need sub-cycle ordering encode it by
// scheduling events rather than relying on ticker order.
//
// # Scheduling guarantee
//
// Schedule never fires a callback within the cycle that scheduled it: a
// delay of zero or less is clamped so the callback runs at the start of the
// next cycle. This next-cycle guarantee is what keeps component
// interactions race-free — a handler can never observe a half-updated peer
// in its own cycle. Schedule returns the effective fire cycle so callers
// that care (tests, schedulers layering their own timelines) can see the
// clamp instead of silently mispredicting it.
//
// # Active-set ticking
//
// Most tickers in a large simulation are idle in any given cycle: a 64-node
// mesh at low injection has a handful of routers carrying flits while the
// rest have empty FIFOs. Tickers that additionally implement Parker are
// therefore parked as soon as they report quiescence after a tick, and skip
// the per-cycle virtual call until woken with Wake (or WakeAt for a
// self-scheduled future wake). Waking is edge-triggered and idempotent:
// components wake a ticker whenever they hand it new work (packet enqueue,
// access completion), and a wake during the cycle's event phase — or from an
// earlier ticker in the same cycle — means the woken ticker still ticks in
// that same cycle, exactly as it would have under always-tick semantics. A
// parked ticker is, by its own contract, one whose Tick would have been a
// no-op, so simulation output is byte-identical to ticking everything every
// cycle; SetAlwaysTick(true) restores the exhaustive behavior for
// differential testing.
//
// When every ticker is parked, Run and RunUntil fast-forward the clock to
// the next scheduled event instead of stepping through cycles in which
// nothing can happen.
//
// # Sharded parallel ticking
//
// Tickers assigned to spatial shards (SetShards + AssignShard) form a second
// tick segment that can execute on worker goroutines within a cycle,
// synchronized by a sense-reversing barrier on atomic counters (see
// shard.go). Unassigned tickers stay in the serial coordinator segment and
// tick first, in registration order. Sharded tickers must not touch state
// owned by another shard during their Tick; cross-shard effects are instead
// deferred — either through Defer, whose queues the kernel drains at the
// cycle barrier in shard order, or through caller-registered OnBarrier
// flush hooks (the network's link mailboxes). Because shards hold
// contiguous ticker ranges and each shard processes its tickers in
// ascending order, the barrier drain order equals the serial registration
// order for every shard count — which is what makes parallel output
// byte-identical to shards=1. Within a busy cycle each shard walks a dense
// active bitmap over its ID band, so idle routers inside a busy cycle cost
// nothing — the intra-cycle generalization of the park/fast-forward idea
// above. SetShards(0 is not a value here; protocol specs use Shards: 0 to
// request AutoShards) and SetAutoTune cover shard-count selection. See
// DESIGN.md's shard/barrier section for the full determinism argument.
package sim

// Ticker is implemented by components that need to perform work every cycle,
// such as routers and network interfaces.
type Ticker interface {
	Tick(now int64)
}

// Parker is optionally implemented by tickers that can report quiescence.
// After ticking a Parker that reports Quiescent, the kernel parks it: the
// ticker is skipped every cycle until Kernel.Wake (or a WakeAt timer)
// reactivates it. A Parker must only report quiescence when its Tick would
// be a no-op for every cycle until one of its wake sources fires, so that
// parking never changes simulation output. Quiescent may have benign side
// effects (e.g. scheduling its own future wake with WakeAt).
type Parker interface {
	Ticker
	Quiescent() bool
}

// TickerID identifies a registered ticker; Register returns it and Wake and
// WakeAt take it. IDs are dense indexes in registration order.
type TickerID int

// event is a delayed callback (fn != nil) or a parked-ticker wake timer
// managed by the kernel's event heap.
type event struct {
	at   int64
	seq  uint64
	fn   func()
	wake TickerID // valid when fn == nil
}

// before reports heap ordering: by fire cycle, then schedule order. seq is
// unique, so (at, seq) is a total order and the pop sequence is independent
// of heap implementation details.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled binary min-heap. container/heap would box every
// pushed and popped event in an interface{}, allocating on the simulation's
// hottest non-tick path; the explicit version keeps Schedule/fire
// allocation-free outside slice growth.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the callback reference
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s[l].before(s[smallest]) {
			smallest = l
		}
		if r < n && s[r].before(s[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// tickerSlot is one registered ticker plus its activation state.
type tickerSlot struct {
	t      Ticker
	parker Parker // non-nil when t implements Parker
	active bool
}

// Kernel is the cycle-driven simulation engine. The zero value is not ready
// for use; construct with NewKernel.
type Kernel struct {
	now        int64
	seq        uint64
	slots      []tickerSlot
	slotShard  []int // per slot: owning shard, or -1 for the coordinator
	events     eventHeap
	pending    int // scheduled callbacks (fn events) not yet fired
	rng        *RNG
	alwaysTick bool

	// Sharded tick segment (see shard.go). coordActive counts active
	// coordinator slots; shardActive[s] counts active slots of shard s and
	// is only touched by the coordinator or by shard s's own worker, so no
	// counter is ever written concurrently. The same ownership rule covers
	// shardBits[s], shard s's active bitmap: bit (id - shardLo[s]) is set
	// exactly when sharded slot id is active, so a busy cycle walks set
	// bits instead of scanning every slot. coordSlots caches the
	// coordinator-segment IDs (rebuilt when coordDirty) so Step's serial
	// segment doesn't re-scan slotShard every cycle.
	shards      int
	nSharded    int
	coordActive int
	coordSlots  []TickerID
	coordDirty  bool
	shardActive []int
	shardSlots  [][]TickerID
	shardBits   [][]uint64
	shardLo     []int
	inTick      bool
	deferred    [][]deferredCall
	barrierFns  []func()
	workBuf     []int32
	wb          *workBench

	// Width auto-tuning (SetAutoTune) and performance accounting
	// (ShardStats); stats' per-shard slice lives in occSum.
	autoTune   bool
	parWidth   int
	tuneBusy   int64
	tuneActive int64
	stats      ShardStats
	occSum     []int64

	// Hang watchdog (SetWatchdog). fired counts events ever fired — the
	// kernel's own progress signal — and watchFn adds the caller's
	// domain progress (e.g. packets delivered). When the combined count
	// is unchanged across a watchW-cycle window while tickers are still
	// active, the system is livelocked and hung latches.
	watchW    int64
	watchFn   func() int64
	watchLast int64
	watchAt   int64
	fired     int64
	hung      bool
}

// NewKernel returns a kernel whose random number generator is seeded with
// seed. Two kernels built with the same seed and the same component
// registration order produce bit-identical simulations.
func NewKernel(seed uint64) *Kernel {
	k := &Kernel{rng: NewRNG(seed)}
	k.initShards(1)
	return k
}

// Now returns the current cycle.
func (k *Kernel) Now() int64 { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// Register adds t to the set of components ticked every cycle and returns
// its TickerID for Wake/WakeAt. Tickers start active and must all be
// registered before the first Step.
func (k *Kernel) Register(t Ticker) TickerID {
	s := tickerSlot{t: t, active: true}
	if p, ok := t.(Parker); ok {
		s.parker = p
	}
	k.slots = append(k.slots, s)
	k.slotShard = append(k.slotShard, -1)
	k.coordActive++
	k.coordDirty = true
	return TickerID(len(k.slots) - 1)
}

// Wake reactivates a parked ticker. Waking an active ticker is a no-op, so
// producers call it unconditionally when handing a component new work. A
// ticker woken during the current cycle's event phase, or by an
// earlier-registered ticker in the same cycle, ticks in that same cycle.
// Wake may be called from a shard worker only for tickers of that worker's
// own shard (the self-wake a router performs when spawning into its own
// queues); every other caller runs on the coordinator.
func (k *Kernel) Wake(id TickerID) {
	s := &k.slots[id]
	if !s.active {
		s.active = true
		if sh := k.slotShard[id]; sh >= 0 {
			k.shardActive[sh]++
			off := int(id) - k.shardLo[sh]
			k.shardBits[sh][off>>6] |= 1 << (uint(off) & 63)
		} else {
			k.coordActive++
		}
	}
}

// WakeAt arranges for the ticker to be woken at the start of the cycle
// delay cycles from now (clamped to the next cycle, like Schedule) and
// returns the effective wake cycle. Unlike Schedule it allocates no
// closure, and the timer does not count as a pending event: a wake timer
// carries no work of its own, so drain checks (Pending) ignore it.
func (k *Kernel) WakeAt(delay int64, id TickerID) int64 {
	if delay < 1 {
		delay = 1
	}
	k.seq++
	k.events.push(event{at: k.now + delay, seq: k.seq, wake: id})
	return k.now + delay
}

// SetAlwaysTick toggles the active-set optimization off (true) or on
// (false). With always-tick on, every registered ticker ticks every cycle —
// the exhaustive semantics the active-set mode must be byte-identical to —
// and Quiescent is never consulted. Enabling it also wakes every parked
// ticker.
func (k *Kernel) SetAlwaysTick(on bool) {
	k.alwaysTick = on
	if on {
		for i := range k.slots {
			if !k.slots[i].active {
				k.Wake(TickerID(i))
			}
		}
	}
}

// Schedule arranges for fn to run at the start of the cycle delay cycles
// from now and returns the effective fire cycle. A delay of zero or less is
// clamped to one — fn runs at the start of the next cycle — because events
// can never fire within the cycle that scheduled them (see the package
// comment's next-cycle guarantee); the returned cycle makes the clamp
// observable to callers instead of silent.
func (k *Kernel) Schedule(delay int64, fn func()) int64 {
	if delay < 1 {
		delay = 1
	}
	k.seq++
	k.events.push(event{at: k.now + delay, seq: k.seq, fn: fn})
	k.pending++
	return k.now + delay
}

// Step advances the clock one cycle: the cycle counter increments, due
// events fire in schedule order (wake timers reactivate their tickers),
// then active coordinator tickers tick in registration order, then the
// sharded segment ticks (in parallel when multiple shards have work),
// followed by the cycle barrier: OnBarrier flush hooks run in registration
// order and the per-shard Defer queues drain in shard order. Active Parkers
// reporting quiescence are parked as they tick.
func (k *Kernel) Step() {
	k.now++
	for len(k.events) > 0 && k.events[0].at <= k.now {
		e := k.events.pop()
		if e.fn != nil {
			k.pending--
			k.fired++
			e.fn()
		} else {
			k.Wake(e.wake)
		}
	}
	if k.coordDirty {
		k.coordSlots = k.coordSlots[:0]
		for i := range k.slots {
			if k.slotShard[i] < 0 {
				k.coordSlots = append(k.coordSlots, TickerID(i))
			}
		}
		k.coordDirty = false
	}
	for _, id := range k.coordSlots {
		s := &k.slots[id]
		if !s.active {
			continue
		}
		s.t.Tick(k.now)
		if !k.alwaysTick && s.parker != nil && s.parker.Quiescent() {
			s.active = false
			k.coordActive--
		}
	}
	if k.nSharded > 0 {
		k.inTick = true
		k.tickShards()
		k.inTick = false
		for _, fn := range k.barrierFns {
			fn()
		}
		k.drainDeferred()
	}
	if k.watchW > 0 && k.now >= k.watchAt {
		p := k.fired
		if k.watchFn != nil {
			p += k.watchFn()
		}
		if p == k.watchLast && k.activeTotal() > 0 {
			k.hung = true
		}
		k.watchLast = p
		k.watchAt = k.now + k.watchW
	}
}

// SetWatchdog arms the hang watchdog: if, over any window cycles, no event
// fires and the caller-supplied progress counter does not advance while at
// least one ticker remains active, the kernel declares the simulation hung
// — Run and RunUntil stop stepping and Hung reports true. Active tickers
// making no progress is the livelock signature; a fully parked system is
// legitimately idle (it fast-forwards) and never trips. progress may be
// nil; window <= 0 disarms. The watchdog is pure observation: it never
// changes scheduling, so an armed run that does not hang is byte-identical
// to an unarmed one.
func (k *Kernel) SetWatchdog(window int64, progress func() int64) {
	k.watchW = window
	k.watchFn = progress
	k.watchLast = -1
	k.watchAt = k.now + window
	k.hung = false
}

// Hung reports whether the watchdog has tripped.
func (k *Kernel) Hung() bool { return k.hung }

// skipIdle fast-forwards the clock when every ticker is parked: nothing can
// change state until the next scheduled event (or timer), so jump to the
// cycle before it and let Step fire it. The clock never passes limit-1, so
// callers' loop bounds hold exactly. Returns whether a skip happened.
func (k *Kernel) skipIdle(limit int64) bool {
	if k.activeTotal() != 0 || k.alwaysTick {
		return false
	}
	target := limit - 1
	if len(k.events) > 0 && k.events[0].at-1 < target {
		target = k.events[0].at - 1
	}
	if target <= k.now {
		return false
	}
	k.now = target
	return true
}

// Run steps the kernel until the clock reaches cycle end (or the watchdog
// trips), fast-forwarding through stretches where every ticker is parked.
func (k *Kernel) Run(end int64) {
	for k.now < end && !k.hung {
		k.skipIdle(end)
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or maxCycles cycles have
// elapsed, and returns whether done was reached. Stretches where every
// ticker is parked are fast-forwarded: done is re-evaluated only when
// something could have changed it. A watchdog trip stops stepping early —
// by the watchdog's own criterion no further progress was coming.
func (k *Kernel) RunUntil(done func() bool, maxCycles int64) bool {
	limit := k.now + maxCycles
	for k.now < limit {
		if done() {
			return true
		}
		if k.hung {
			return false
		}
		k.skipIdle(limit)
		k.Step()
	}
	return done()
}

// Pending reports the number of unfired scheduled callbacks, used by drain
// checks at the end of a simulation. Parked-ticker wake timers are not
// counted: they carry no work.
func (k *Kernel) Pending() int { return k.pending }
