// Package sim provides the cycle-driven simulation kernel used by every
// component in the repository: a global clock, an ordered event queue for
// delayed callbacks (memory accesses, controller service times), and a
// deterministic pseudo-random number generator so that every experiment is
// exactly reproducible from its seed.
//
// The kernel advances in whole cycles. Within a cycle, due events fire first
// (in schedule order), then every registered Ticker ticks once in
// registration order. Components that need sub-cycle ordering encode it by
// scheduling events rather than relying on ticker order.
package sim

import "container/heap"

// Ticker is implemented by components that need to perform work every cycle,
// such as routers and network interfaces.
type Ticker interface {
	Tick(now int64)
}

// event is a delayed callback managed by the kernel's event heap.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the cycle-driven simulation engine. The zero value is not ready
// for use; construct with NewKernel.
type Kernel struct {
	now     int64
	seq     uint64
	tickers []Ticker
	events  eventHeap
	rng     *RNG
}

// NewKernel returns a kernel whose random number generator is seeded with
// seed. Two kernels built with the same seed and the same component
// registration order produce bit-identical simulations.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current cycle.
func (k *Kernel) Now() int64 { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// Register adds t to the set of components ticked every cycle.
func (k *Kernel) Register(t Ticker) { k.tickers = append(k.tickers, t) }

// Schedule arranges for fn to run at the start of the cycle delay cycles
// from now. A delay of zero or less runs fn at the start of the next cycle:
// events can never fire within the cycle that scheduled them, which keeps
// component interactions race-free.
func (k *Kernel) Schedule(delay int64, fn func()) {
	if delay < 1 {
		delay = 1
	}
	k.seq++
	heap.Push(&k.events, event{at: k.now + delay, seq: k.seq, fn: fn})
}

// Step advances the clock one cycle: the cycle counter increments, due
// events fire in schedule order, then all tickers tick.
func (k *Kernel) Step() {
	k.now++
	for len(k.events) > 0 && k.events[0].at <= k.now {
		e := heap.Pop(&k.events).(event)
		e.fn()
	}
	for _, t := range k.tickers {
		t.Tick(k.now)
	}
}

// Run steps the kernel until the clock reaches cycle end.
func (k *Kernel) Run(end int64) {
	for k.now < end {
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or maxCycles cycles have
// elapsed, and returns whether done was reached.
func (k *Kernel) RunUntil(done func() bool, maxCycles int64) bool {
	limit := k.now + maxCycles
	for k.now < limit {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}

// Pending reports the number of unfired scheduled events, used by drain
// checks at the end of a simulation.
func (k *Kernel) Pending() int { return len(k.events) }
