package sim

import (
	"testing"
	"testing/quick"
)

type countingTicker struct {
	ticks []int64
}

func (c *countingTicker) Tick(now int64) { c.ticks = append(c.ticks, now) }

func TestKernelStepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("new kernel at cycle %d, want 0", k.Now())
	}
	k.Step()
	if k.Now() != 1 {
		t.Fatalf("after one step at cycle %d, want 1", k.Now())
	}
	k.Run(10)
	if k.Now() != 10 {
		t.Fatalf("after Run(10) at cycle %d, want 10", k.Now())
	}
}

func TestKernelTickersSeeEveryCycle(t *testing.T) {
	k := NewKernel(1)
	c := &countingTicker{}
	k.Register(c)
	k.Run(5)
	want := []int64{1, 2, 3, 4, 5}
	if len(c.ticks) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(c.ticks), len(want))
	}
	for i, w := range want {
		if c.ticks[i] != w {
			t.Fatalf("tick %d at cycle %d, want %d", i, c.ticks[i], w)
		}
	}
}

func TestScheduleFiresAtRequestedCycle(t *testing.T) {
	k := NewKernel(1)
	var firedAt int64 = -1
	k.Schedule(7, func() { firedAt = k.Now() })
	k.Run(20)
	if firedAt != 7 {
		t.Fatalf("event fired at %d, want 7", firedAt)
	}
}

func TestScheduleZeroDelayFiresNextCycle(t *testing.T) {
	k := NewKernel(1)
	k.Run(3)
	var firedAt int64 = -1
	k.Schedule(0, func() { firedAt = k.Now() })
	k.Step()
	if firedAt != 4 {
		t.Fatalf("zero-delay event fired at %d, want 4", firedAt)
	}
}

func TestScheduleOrderIsStableWithinCycle(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(3, func() { order = append(order, i) })
	}
	k.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("event order %v not FIFO within a cycle", order)
		}
	}
}

func TestEventsFireBeforeTickers(t *testing.T) {
	k := NewKernel(1)
	var log []string
	k.Register(&funcTicker{func(now int64) {
		if now == 2 {
			log = append(log, "tick")
		}
	}})
	k.Schedule(2, func() { log = append(log, "event") })
	k.Run(3)
	if len(log) != 2 || log[0] != "event" || log[1] != "tick" {
		t.Fatalf("ordering %v, want [event tick]", log)
	}
}

type funcTicker struct{ fn func(int64) }

func (f *funcTicker) Tick(now int64) { f.fn(now) }

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.Register(&funcTicker{func(int64) { n++ }})
	ok := k.RunUntil(func() bool { return n >= 5 }, 100)
	if !ok {
		t.Fatal("RunUntil did not reach condition")
	}
	if k.Now() != 5 {
		t.Fatalf("stopped at cycle %d, want 5", k.Now())
	}
	ok = k.RunUntil(func() bool { return false }, 10)
	if ok {
		t.Fatal("RunUntil reported success for unreachable condition")
	}
}

func TestPending(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(100, func() {})
	k.Schedule(200, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.Run(150)
	if k.Pending() != 1 {
		t.Fatalf("Pending after partial run = %d, want 1", k.Pending())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGInt64RangeBounds(t *testing.T) {
	r := NewRNG(7)
	err := quick.Check(func(a, b int32) bool {
		lo, hi := int64(a), int64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.Int64Range(lo, hi)
		return v >= lo && v <= hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("split streams appear identical")
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
