package sim

import (
	"testing"
)

// The barrier microbenchmarks isolate the per-cycle synchronization cost
// the sharded engine pays: BenchmarkBarrierChannel reproduces the engine's
// historical channel protocol (one workCh send plus one doneCh receive per
// shard per cycle, against a goroutine per shard), and BenchmarkBarrierSense
// measures the sense-reversing replacement through the real kernel — a Step
// over always-busy shards whose tickers do no work, so dispatch + barrier
// dominate. check.sh records both in BENCH_parallel.json (barrier_*_ns_per_op)
// so a synchronization regression is attributable separately from routing
// or protocol cost.

const benchBarrierShards = 4

// BenchmarkBarrierChannel is the old protocol in isolation: the
// coordinator releases each worker over its own unbuffered channel and
// collects each completion over another, every cycle.
func BenchmarkBarrierChannel(b *testing.B) {
	workCh := make([]chan int64, benchBarrierShards)
	doneCh := make([]chan struct{}, benchBarrierShards)
	for s := range workCh {
		workCh[s] = make(chan int64)
		doneCh[s] = make(chan struct{})
		go func(s int) {
			for range workCh[s] {
				doneCh[s] <- struct{}{}
			}
		}(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < benchBarrierShards; s++ {
			workCh[s] <- int64(i)
		}
		for s := 0; s < benchBarrierShards; s++ {
			<-doneCh[s]
		}
	}
	b.StopTimer()
	for s := range workCh {
		close(workCh[s])
	}
}

// BenchmarkBarrierSense is one kernel Step per iteration over
// benchBarrierShards always-busy shards of no-op tickers: the measured cost
// is the sense-reversing dispatch, the bitmap walks, and the completion
// barrier.
func BenchmarkBarrierSense(b *testing.B) {
	k := NewKernel(1)
	k.SetShards(benchBarrierShards)
	for i := 0; i < benchBarrierShards; i++ {
		k.AssignShard(k.Register(tickFunc(func(int64) {})), i)
	}
	defer k.ReleaseWorkers()
	k.Step() // start the workers outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}
