package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64* variant). The simulator cannot use math/rand's global source
// because experiment reproducibility requires every random draw to be a pure
// function of the experiment seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64Range returns a pseudo-random int64 in [lo, hi]. It panics if hi < lo.
func (r *RNG) Int64Range(lo, hi int64) int64 {
	if hi < lo {
		panic("sim: Int64Range with hi < lo")
	}
	return lo + int64(r.Uint64()%uint64(hi-lo+1))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator from this one, used to give each
// node its own stream without coupling draw order across nodes.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}
