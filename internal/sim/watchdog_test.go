package sim

import "testing"

// busyTicker is always active (no Parker implementation) and makes no
// progress: the livelock signature the watchdog exists to catch.
type busyTicker struct{ ticks int64 }

func (b *busyTicker) Tick(now int64) { b.ticks++ }

// idleParker parks immediately after every tick.
type idleParker struct{ ticks []int64 }

func (p *idleParker) Tick(now int64)  { p.ticks = append(p.ticks, now) }
func (p *idleParker) Quiescent() bool { return true }

func TestWatchdogTripsOnLivelock(t *testing.T) {
	k := NewKernel(1)
	k.Register(&busyTicker{})
	k.SetWatchdog(10, nil)
	k.Run(1000)
	if !k.Hung() {
		t.Fatal("watchdog did not trip on an active ticker making no progress")
	}
	if k.Now() >= 1000 {
		t.Fatalf("run burned its full bound (now=%d) despite the trip", k.Now())
	}
	if k.Now() < 10 {
		t.Fatalf("tripped at cycle %d, before a full window elapsed", k.Now())
	}
}

func TestWatchdogSeesEventProgress(t *testing.T) {
	k := NewKernel(1)
	k.Register(&busyTicker{})
	k.SetWatchdog(10, nil)
	// A live event chain counts as progress: fired events advance the
	// kernel's own counter every window.
	var chain func()
	chain = func() {
		if k.Now() < 100 {
			k.Schedule(5, chain)
		}
	}
	k.Schedule(5, chain)
	k.Run(100)
	if k.Hung() {
		t.Fatal("watchdog tripped while events were still firing")
	}
	// Chain over, ticker still active and idle: now it must trip.
	k.Run(300)
	if !k.Hung() {
		t.Fatal("watchdog did not trip after the event chain drained")
	}
}

func TestWatchdogProgressFn(t *testing.T) {
	k := NewKernel(1)
	var delivered int64
	k.Register(&busyTicker{})
	k.SetWatchdog(10, func() int64 { return delivered })
	// Simulate domain progress for 50 cycles, then a livelock.
	stop := int64(50)
	k.Schedule(1, func() {})
	for k.Now() < 400 && !k.Hung() {
		k.Step()
		if k.Now() < stop {
			delivered++
		}
	}
	if !k.Hung() {
		t.Fatal("watchdog did not trip when the progress counter froze")
	}
	if k.Now() < stop {
		t.Fatalf("tripped at cycle %d while progress was still advancing", k.Now())
	}
}

func TestWatchdogIgnoresParkedIdleSystem(t *testing.T) {
	k := NewKernel(1)
	k.Register(&idleParker{})
	k.SetWatchdog(5, nil)
	k.Run(100)
	if k.Hung() {
		t.Fatal("watchdog tripped on a fully parked (legitimately idle) system")
	}
	if k.Now() != 100 {
		t.Fatalf("run stopped at %d, want 100", k.Now())
	}
}

func TestWatchdogDisarm(t *testing.T) {
	k := NewKernel(1)
	k.Register(&busyTicker{})
	k.SetWatchdog(10, nil)
	k.SetWatchdog(0, nil)
	k.Run(100)
	if k.Hung() {
		t.Fatal("disarmed watchdog tripped")
	}
}

func TestRunUntilReturnsFalseOnHang(t *testing.T) {
	k := NewKernel(1)
	k.Register(&busyTicker{})
	k.SetWatchdog(10, nil)
	if k.RunUntil(func() bool { return false }, 100_000) {
		t.Fatal("RunUntil reported done")
	}
	if !k.Hung() {
		t.Fatal("RunUntil returned without the watchdog tripping")
	}
	if k.Now() >= 100_000 {
		t.Fatalf("RunUntil burned the full bound (now=%d) despite the trip", k.Now())
	}
}

// TestParkedWakeTimerBlocksFastForward is the wake-timer vs park race
// regression: with every ticker parked and a wake timer due at the very
// next cycle, the idle fast-forward must stop at the timer — skipping past
// it would silently swallow the ticker's scheduled work.
func TestParkedWakeTimerBlocksFastForward(t *testing.T) {
	k := NewKernel(1)
	p := &idleParker{}
	id := k.Register(p)
	k.Step() // ticks at cycle 1, parks
	if len(p.ticks) != 1 || p.ticks[0] != 1 {
		t.Fatalf("setup: ticks = %v, want [1]", p.ticks)
	}
	wakeAt := k.WakeAt(1, id) // due at cycle 2, the immediately next cycle
	if wakeAt != 2 {
		t.Fatalf("WakeAt effective cycle %d, want 2", wakeAt)
	}
	k.Run(100)
	if len(p.ticks) != 2 || p.ticks[1] != wakeAt {
		t.Fatalf("ticks = %v, want a tick exactly at wake cycle %d", p.ticks, wakeAt)
	}
}

// Same race through Schedule: a zero-work callback due next cycle that
// wakes the parked ticker must not be fast-forwarded past.
func TestParkedScheduleWakeBlocksFastForward(t *testing.T) {
	k := NewKernel(1)
	p := &idleParker{}
	id := k.Register(p)
	k.Step() // parks at cycle 1
	fire := k.Schedule(1, func() { k.Wake(id) })
	if fire != 2 {
		t.Fatalf("Schedule effective cycle %d, want 2", fire)
	}
	k.Run(100)
	if len(p.ticks) != 2 || p.ticks[1] != fire {
		t.Fatalf("ticks = %v, want a tick exactly at event cycle %d", p.ticks, fire)
	}
	if k.Now() != 100 {
		t.Fatalf("run ended at %d, want 100", k.Now())
	}
}
