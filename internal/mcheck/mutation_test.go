package mcheck

import "testing"

// Mutation tests: injecting each deliberate protocol bug must make the
// checker find a violation or deadlock — evidence that the exhaustive
// search has the power to catch the races the protections close (the same
// role the paper's Murφ model played during its protocol design). Each
// Mut bit pairs with the engine-side treecc Bug bit of the same name; the
// litmus suite (internal/litmus) asserts the full-simulator net catches
// the same seeded bugs, so both verification layers are proven against
// live faults, not just clean runs.

// mutationTable is shared with checker_scale_test.go; each entry names the
// program that exposes the bug fastest.
var mutationTable = []struct {
	name string
	mut  Mutation
	home int
	ops  []Op
	// wantDeadlock marks bugs whose signature is a wedged protocol
	// (caught as a deadlock / liveness failure) rather than a safety
	// violation; either detection channel is accepted, the flag is
	// documentation.
	wantDeadlock bool
}{
	{
		name: "drop-ack-hold",
		mut:  MutDropAckHold,
		home: 0,
		ops:  []Op{{Node: 1, Write: true}, {Node: 2, Write: true}},
	},
	{
		name: "accept-stale-reply",
		mut:  MutAcceptStaleReply,
		home: 0,
		ops:  []Op{{Node: 0, Write: true}, {Node: 3, Write: true}},
	},
	{
		name:         "drop-td-ack",
		mut:          MutDropTdAck,
		home:         0,
		ops:          []Op{{Node: 1, Write: false}, {Node: 2, Write: true}},
		wantDeadlock: true,
	},
	{
		name: "early-home-release",
		mut:  MutEarlyHomeRelease,
		home: 0,
		ops:  []Op{{Node: 1, Write: false}, {Node: 2, Write: true}, {Node: 3, Write: true}},
	},
	{
		name: "skip-invalidate",
		mut:  MutSkipInvalidate,
		home: 0,
		ops:  []Op{{Node: 1, Write: false}, {Node: 2, Write: true}},
	},
	{
		name: "lost-writeback",
		mut:  MutLostWriteback,
		home: 0,
		ops:  []Op{{Node: 1, Write: true}, {Node: 2, Write: false}},
	},
	{
		name: "double-grant",
		mut:  MutDoubleGrant,
		home: 0,
		ops:  []Op{{Node: 1, Write: true}, {Node: 2, Write: true}},
	},
}

func TestCheckerCatchesSeededMutations(t *testing.T) {
	for _, tc := range mutationTable {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.home, tc.ops)
			c.Mut = tc.mut
			res := c.Run()
			if res.Truncated {
				t.Fatalf("state space truncated at %d states", res.States)
			}
			if len(res.Violations)+len(res.Deadlocks) == 0 {
				t.Fatalf("mutation %s went undetected: %v", tc.name, res)
			}
			t.Logf("detected (%d violations, %d deadlocks): %v", len(res.Violations), len(res.Deadlocks), res)
			if len(res.Violations) > 0 {
				t.Logf("first violation: %s", res.Violations[0])
			}
			if len(res.Deadlocks) > 0 {
				t.Logf("first deadlock: %s", res.Deadlocks[0])
			}
		})
	}
}

// TestCleanModelRejectsNoMutation pins the other half of the mutation
// argument: the exact programs that expose each bug pass cleanly when the
// bug is absent, so detection is attributable to the mutation alone.
func TestCleanModelPassesMutationPrograms(t *testing.T) {
	for _, tc := range mutationTable {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.home, tc.ops)
			res := c.Run()
			if len(res.Violations)+len(res.Deadlocks) > 0 {
				t.Fatalf("clean run of %s program failed: %v\n%v\n%v", tc.name, res, res.Violations, res.Deadlocks)
			}
			if res.Terminals == 0 {
				t.Fatal("no terminal state")
			}
		})
	}
}

// The two legacy toggle fields keep working (they predate Mut).
func TestCheckerCatchesMissingAckHold(t *testing.T) {
	c := New(0, []Op{{Node: 1, Write: true}, {Node: 2, Write: true}})
	c.DisableAckHold = true
	res := c.Run()
	if len(res.Violations)+len(res.Deadlocks) == 0 {
		t.Fatal("removing the acknowledgment hold went undetected")
	}
	t.Logf("detected: %v", res)
}

func TestCheckerCatchesMissingAnchorAndHold(t *testing.T) {
	// The anchor (generation check at install) and the acknowledgment
	// hold protect the same completion window from different sides;
	// with the hold present the anchor alone is redundant, so the
	// mutation removes both.
	c := New(0, []Op{{Node: 0, Write: true}, {Node: 3, Write: true}})
	c.DisableAnchor = true
	c.DisableAckHold = true
	res := c.Run()
	if len(res.Violations)+len(res.Deadlocks) == 0 {
		t.Fatal("removing anchor + hold went undetected")
	}
	t.Logf("detected: %v", res)
}

func TestThreeWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	c := New(1, []Op{{Node: 0, Write: true}, {Node: 2, Write: true}, {Node: 3, Write: true}})
	res := c.Run()
	t.Logf("%v", res)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, d := range res.Deadlocks {
		t.Errorf("deadlock: %s", d)
	}
	if res.Terminals == 0 {
		t.Error("no terminal state")
	}
}

func TestMixedFourOpsEveryHome(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	n := 4
	for home := 0; home < n; home++ {
		c := New(home, []Op{
			{Node: (home + 1) % n, Write: false},
			{Node: (home + 2) % n, Write: true},
			{Node: (home + 3) % n, Write: false},
		})
		res := c.Run()
		if len(res.Violations)+len(res.Deadlocks) > 0 {
			t.Fatalf("home=%d: %v\n%v\n%v", home, res, res.Violations, res.Deadlocks)
		}
	}
}
