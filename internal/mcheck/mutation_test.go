package mcheck

import "testing"

// Mutation tests: disabling each protocol protection must make the checker
// find a violation or deadlock — evidence that the exhaustive search has
// the power to catch the races the protections close (the same role the
// paper's Murφ model played during its protocol design).

func TestCheckerCatchesMissingAckHold(t *testing.T) {
	c := New(0, []Op{{Node: 1, Write: true}, {Node: 2, Write: true}})
	c.DisableAckHold = true
	res := c.Run()
	if len(res.Violations)+len(res.Deadlocks) == 0 {
		t.Fatal("removing the acknowledgment hold went undetected")
	}
	t.Logf("detected: %v", res)
}

func TestCheckerCatchesMissingAnchorAndHold(t *testing.T) {
	// The anchor (generation check at install) and the acknowledgment
	// hold protect the same completion window from different sides;
	// with the hold present the anchor alone is redundant, so the
	// mutation removes both.
	c := New(0, []Op{{Node: 0, Write: true}, {Node: 3, Write: true}})
	c.DisableAnchor = true
	c.DisableAckHold = true
	res := c.Run()
	if len(res.Violations)+len(res.Deadlocks) == 0 {
		t.Fatal("removing anchor + hold went undetected")
	}
	t.Logf("detected: %v", res)
}

func TestThreeWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	c := New(1, []Op{{Node: 0, Write: true}, {Node: 2, Write: true}, {Node: 3, Write: true}})
	res := c.Run()
	t.Logf("%v", res)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, d := range res.Deadlocks {
		t.Errorf("deadlock: %s", d)
	}
	if res.Terminals == 0 {
		t.Error("no terminal state")
	}
}

func TestMixedFourOpsEveryHome(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	for home := 0; home < nodes; home++ {
		c := New(home, []Op{
			{Node: (home + 1) % nodes, Write: false},
			{Node: (home + 2) % nodes, Write: true},
			{Node: (home + 3) % nodes, Write: false},
		})
		res := c.Run()
		if len(res.Violations)+len(res.Deadlocks) > 0 {
			t.Fatalf("home=%d: %v\n%v\n%v", home, res, res.Violations, res.Deadlocks)
		}
	}
}
