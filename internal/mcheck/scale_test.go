package mcheck

import (
	"runtime"
	"testing"
)

// The production-scale runs: exhaustive exploration of a 3×3 mesh — a
// configuration the paper's Murφ spec never checked and the pre-rewrite
// checker could not express (the 2×2 geometry was compiled in, and the
// string-keyed visited set allocated a copy of every state).

// TestExhaustive3x3 fully explores three writers racing two readers on a
// 3×3 mesh (131k canonical states) on every test run. The home sits at
// the mesh center so the axis-flip group applies when the program allows
// it; this particular program pins the group to the identity, making the
// counts comparable with the unreduced search.
func TestExhaustive3x3(t *testing.T) {
	c := NewMesh(3, 3, 4, []Op{
		{Node: 1}, {Node: 7},
		{Node: 3, Write: true}, {Node: 5, Write: true}, {Node: 0, Write: true},
	})
	c.TraceEdges = false
	c.Workers = runtime.NumCPU()
	c.MaxStates = 10_000_000
	res := c.Run()
	t.Logf("%v", res)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, d := range res.Deadlocks {
		t.Errorf("deadlock: %s", d)
	}
	if res.Truncated {
		t.Fatal("exploration truncated")
	}
	if res.Terminals == 0 {
		t.Error("no terminal state reached")
	}
	if res.States < 100_000 {
		t.Errorf("state space unexpectedly small: %d", res.States)
	}
	if res.Canonical != res.States || res.PeakFrontier == 0 || res.Explored != res.States {
		t.Errorf("inconsistent bookkeeping: %+v", res)
	}
}

// TestScale3x3SixOps explores four readers and two writers on the 3×3
// mesh: 2.5M raw states, folded to 1.27M canonical classes by the
// 180°-rotation automorphism (flip-both fixing the center home). Skipped
// under -short and under the race detector, where the ~20s exploration
// balloons past CI budgets; the clean-build tier-1 run still covers it.
func TestScale3x3SixOps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-state exploration")
	}
	if raceEnabled {
		t.Skip("too large under the race detector")
	}
	c := NewMesh(3, 3, 4, []Op{
		{Node: 1}, {Node: 7}, {Node: 3}, {Node: 5},
		{Node: 0, Write: true}, {Node: 8, Write: true},
	})
	c.TraceEdges = false
	c.Workers = runtime.NumCPU()
	c.MaxStates = 20_000_000
	res := c.Run()
	t.Logf("%v", res)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, d := range res.Deadlocks {
		t.Errorf("deadlock: %s", d)
	}
	if res.Truncated {
		t.Fatal("exploration truncated")
	}
	if res.States < 1_000_000 {
		t.Errorf("expected >1M canonical states, got %d", res.States)
	}
}

// TestSymmetryReduction pins the automorphism group's effect: a program
// symmetric under both axis flips (readers at 1/7, writers at 3/5, home
// at the center) folds the state space by nearly the full group order 4.
func TestSymmetryReduction(t *testing.T) {
	ops := []Op{{Node: 1}, {Node: 7}, {Node: 3, Write: true}, {Node: 5, Write: true}}
	run := func(sym bool) Result {
		c := NewMesh(3, 3, 4, ops)
		c.Symmetry = sym
		c.TraceEdges = false
		res := c.Run()
		if len(res.Violations)+len(res.Deadlocks) > 0 {
			t.Fatalf("sym=%v: %v %v", sym, res.Violations, res.Deadlocks)
		}
		if res.Terminals == 0 || res.Truncated {
			t.Fatalf("sym=%v: bad run %v", sym, res)
		}
		return res
	}
	full := run(false)
	reduced := run(true)
	t.Logf("full=%v", full)
	t.Logf("reduced=%v", reduced)
	if reduced.States*3 >= full.States {
		t.Errorf("symmetry reduction too weak: %d canonical vs %d raw states", reduced.States, full.States)
	}
}

// TestParallelBFSDeterministic pins that the level-synchronous merge makes
// every count independent of the worker fan-out, and that the rewritten
// checker reproduces the string-keyed implementation's exact counts on
// the paper's program (3397 states / 6958 transitions, measured before
// the rewrite).
func TestParallelBFSDeterministic(t *testing.T) {
	home, ops := DefaultProgram()
	var base Result
	for i, workers := range []int{1, 2, 8} {
		c := New(home, ops)
		c.Workers = workers
		c.TraceEdges = false
		res := c.Run()
		if len(res.Violations)+len(res.Deadlocks) > 0 {
			t.Fatalf("workers=%d: %v %v", workers, res.Violations, res.Deadlocks)
		}
		if i == 0 {
			base = res
			if res.States != 3397 || res.Transitions != 6958 {
				t.Errorf("counts drifted from the pre-rewrite checker: %v", res)
			}
			continue
		}
		if res.States != base.States || res.Transitions != base.Transitions ||
			res.Explored != base.Explored || res.Terminals != base.Terminals ||
			res.PeakFrontier != base.PeakFrontier {
			t.Errorf("workers=%d diverged: %v vs %v", workers, res, base)
		}
	}
}

// TestMutationsDetectedWithSymmetryAndWorkers re-runs the seeded-bug table
// with symmetry reduction and parallel workers engaged at once — the
// reduction must never canonicalize a counterexample away.
func TestMutationsDetectedWithSymmetryAndWorkers(t *testing.T) {
	for _, tc := range mutationTable {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.home, tc.ops)
			c.Mut = tc.mut
			c.Workers = 4
			res := c.Run()
			if len(res.Violations)+len(res.Deadlocks) == 0 {
				t.Fatalf("mutation %s went undetected: %v", tc.name, res)
			}
		})
	}
}
