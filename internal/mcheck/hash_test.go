package mcheck

import (
	"runtime"
	"testing"
)

// The old visited set keyed states by a freshly built string — one
// allocation plus a full state copy per *generated* state, i.e. per
// transition. The canonical hash replaces that with an allocation-free
// fold; the only per-state allocations left in the BFS are the successor
// clone itself, which these tests pin.

// midState builds a state with live traffic so the hash walks non-empty
// queues.
func midState(c *Checker) *state {
	s := &state{
		lines: make([]treeLine, c.nodes),
		data:  make([]int8, c.nodes),
		dver:  make([]int8, c.nodes),
		ops:   make([]opState, len(c.Ops)),
		chans: make([][]msg, c.nodes*4),
		nicq:  make([][]msg, c.nodes),
	}
	for n := 0; n < c.nodes; n++ {
		s.lines[n].RootDir = dirNone
	}
	s.lines[c.Home] = treeLine{Valid: true, IsRoot: true, RootDir: dirNone, LocalV: true}
	s.data[c.Home] = dShared
	send(s, c.Home, dirS, msg{Type: mRdReply, Op: 0, Ver: 1})
	send(s, 1, dirW, msg{Type: mWrReq, Op: 1})
	s.nicq[c.Home] = append(s.nicq[c.Home], msg{Type: mWrReq, Op: 2})
	s.homeq = append(s.homeq, msg{Type: mRdReq, Op: 0})
	s.pend = true
	return s
}

func TestCanonicalHashZeroAlloc(t *testing.T) {
	c := NewMesh(3, 3, 4, []Op{{Node: 1}, {Node: 7}, {Node: 3, Write: true}})
	c.nodes = 9
	c.buildGroup()
	if len(c.group) < 2 {
		t.Fatalf("expected a non-trivial group, got %d elements", len(c.group))
	}
	s := midState(c)
	if a := testing.AllocsPerRun(100, func() { c.canonicalHash(s) }); a != 0 {
		t.Errorf("canonicalHash allocates %.1f times per state", a)
	}
}

func TestCanonicalHashDistinguishesStates(t *testing.T) {
	c := New(0, []Op{{Node: 1}, {Node: 2, Write: true}, {Node: 3, Write: true}})
	c.nodes = 4
	c.buildGroup()
	s := midState(c)
	h1 := c.canonicalHash(s)
	s2 := s.clone()
	s2.dver[0] = 3
	if c.canonicalHash(s2) == h1 {
		t.Error("version change did not change the hash")
	}
	s3 := s.clone()
	s3.chans[0*4+dirS][0].Ver = 2
	if c.canonicalHash(s3) == h1 {
		t.Error("in-flight message change did not change the hash")
	}
}

// TestCanonicalHashFoldsSymmetricStates applies a mesh flip + op swap by
// hand and checks both states land on the same canonical hash.
func TestCanonicalHashFoldsSymmetricStates(t *testing.T) {
	// 3×3, home center; ops: reads at 1 and 7 (swapped by the Y flip),
	// write at 3 (fixed by it).
	c := NewMesh(3, 3, 4, []Op{{Node: 1}, {Node: 7}, {Node: 3, Write: true}})
	c.nodes = 9
	c.buildGroup()
	empty := func() *state {
		s := &state{
			lines: make([]treeLine, c.nodes),
			data:  make([]int8, c.nodes),
			dver:  make([]int8, c.nodes),
			ops:   make([]opState, len(c.Ops)),
			chans: make([][]msg, c.nodes*4),
			nicq:  make([][]msg, c.nodes),
		}
		for n := 0; n < c.nodes; n++ {
			s.lines[n].RootDir = dirNone
		}
		return s
	}
	// State a: op 1 (the read at node 7) has its request in flight
	// northward. Its Y-flip image is op 0 (the read at node 1) heading
	// south — exactly state b.
	a := empty()
	a.ops[1].Phase = opInFlight
	send(a, 7, dirN, msg{Type: mRdReq, Op: 1})
	b := empty()
	b.ops[0].Phase = opInFlight
	send(b, 1, dirS, msg{Type: mRdReq, Op: 0})
	if c.canonicalHash(a) != c.canonicalHash(b) {
		t.Error("flip-symmetric states hash differently")
	}
	// And the pair must differ from the state with neither request.
	if c.canonicalHash(a) == c.canonicalHash(empty()) {
		t.Error("distinct states collided")
	}
}

// BenchmarkCanonicalHash measures the visited-set fold on a 3×3 state
// with live queues; b.ReportAllocs pins the O(1)-per-state property (it
// reports exactly 0 allocs/op, versus one string build per state before).
func BenchmarkCanonicalHash(b *testing.B) {
	c := NewMesh(3, 3, 4, []Op{{Node: 1}, {Node: 7}, {Node: 3, Write: true}})
	c.nodes = 9
	c.buildGroup()
	s := midState(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.canonicalHash(s)
	}
}

// BenchmarkBFSPerState runs a full exploration and reports allocations per
// generated state. The bound is a small constant (the successor clone's
// slice headers) independent of queue depth and mesh size — the property
// the string-keyed implementation lacked.
func BenchmarkBFSPerState(b *testing.B) {
	var states int
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		home, ops := DefaultProgram()
		c := New(home, ops)
		c.TraceEdges = false
		res := c.Run()
		states += res.Transitions
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if states > 0 {
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(states), "allocs/state")
	}
}
