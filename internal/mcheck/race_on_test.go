//go:build race

package mcheck

// raceEnabled lets tests skip explorations whose state counts are sized
// for the plain build; the race detector multiplies their cost ~10x.
const raceEnabled = true
