package mcheck

import "testing"

func check(t *testing.T, home int, ops []Op) Result {
	t.Helper()
	c := New(home, ops)
	res := c.Run()
	t.Logf("%v", res)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, d := range res.Deadlocks {
		t.Errorf("deadlock: %s", d)
	}
	if res.Terminals == 0 {
		t.Error("no terminal state reached")
	}
	return res
}

func TestSingleRead(t *testing.T) {
	check(t, 0, []Op{{Node: 3, Write: false}})
}

func TestSingleWrite(t *testing.T) {
	check(t, 0, []Op{{Node: 3, Write: true}})
}

func TestTwoConcurrentReads(t *testing.T) {
	check(t, 0, []Op{{Node: 1, Write: false}, {Node: 2, Write: false}})
}

func TestReadThenWriteSameNode(t *testing.T) {
	check(t, 0, []Op{{Node: 3, Write: false}, {Node: 3, Write: true}})
}

func TestConcurrentReadAndWrite(t *testing.T) {
	check(t, 0, []Op{{Node: 1, Write: false}, {Node: 2, Write: true}})
}

func TestTwoConcurrentWrites(t *testing.T) {
	check(t, 0, []Op{{Node: 1, Write: true}, {Node: 2, Write: true}})
}

func TestWritesToHomeLine(t *testing.T) {
	// The home node itself writes, racing a remote writer.
	check(t, 0, []Op{{Node: 0, Write: true}, {Node: 3, Write: true}})
}

func TestPaperBound(t *testing.T) {
	// The paper's Murφ run: multiple concurrent reads, two concurrent
	// writes; ~100k states there, same order of magnitude here.
	if testing.Short() {
		t.Skip("full exploration is slow")
	}
	home, ops := DefaultProgram()
	res := check(t, home, ops)
	if res.States < 10_000 {
		t.Logf("note: state space smaller than expected (%d states)", res.States)
	}
}

func TestReadersAcrossAllNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full exploration is slow")
	}
	check(t, 2, []Op{
		{Node: 0, Write: false},
		{Node: 1, Write: false},
		{Node: 3, Write: false},
		{Node: 0, Write: true},
	})
}
