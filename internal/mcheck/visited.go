package mcheck

// hashSet is an open-addressing set of 64-bit state hashes, sized for tens
// of millions of entries: 8 bytes per slot at ≤75% load, no per-entry
// boxing, no rehash of keys (the stored value is the hash). Zero is the
// empty-slot sentinel; a genuine zero hash is remapped to a fixed odd
// constant, which folds it into that constant's class — indistinguishable
// from any other 64-bit collision the scheme already accepts.
type hashSet struct {
	slots []uint64
	n     int
	mask  uint64
}

const zeroHashStandin = 0x9e3779b97f4a7c15

func newHashSet(capacity int) *hashSet {
	size := 16
	for size < capacity*2 {
		size <<= 1
	}
	return &hashSet{slots: make([]uint64, size), mask: uint64(size - 1)}
}

func (h *hashSet) Len() int { return h.n }

// Contains reports membership. Safe for concurrent readers as long as no
// writer runs (the BFS only calls Add between levels).
func (h *hashSet) Contains(v uint64) bool {
	if v == 0 {
		v = zeroHashStandin
	}
	for i := v & h.mask; ; i = (i + 1) & h.mask {
		s := h.slots[i]
		if s == 0 {
			return false
		}
		if s == v {
			return true
		}
	}
}

// Add inserts v and reports whether it was absent.
func (h *hashSet) Add(v uint64) bool {
	if v == 0 {
		v = zeroHashStandin
	}
	for i := v & h.mask; ; i = (i + 1) & h.mask {
		s := h.slots[i]
		if s == v {
			return false
		}
		if s == 0 {
			h.slots[i] = v
			h.n++
			if uint64(h.n)*4 > uint64(len(h.slots))*3 {
				h.grow()
			}
			return true
		}
	}
}

func (h *hashSet) grow() {
	old := h.slots
	h.slots = make([]uint64, len(old)*2)
	h.mask = uint64(len(h.slots) - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		for i := v & h.mask; ; i = (i + 1) & h.mask {
			if h.slots[i] == 0 {
				h.slots[i] = v
				break
			}
		}
	}
}
