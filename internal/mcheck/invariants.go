package mcheck

import "fmt"

// Invariants checked in every reachable state, following the paper's Murφ
// rules ("write operations to the same memory address must be observed in
// the same order by all the processor nodes", plus MSI coherence):
//
//  1. at most one Modified copy exists;
//  2. a Modified copy excludes every other valid copy (single-writer);
//  3. with no Modified copy in the system, every Shared copy holds the
//     memory-current version (no stale survivors);
//  4. version counters are sane (no copy newer than the commit counter).
//
// All conditions are invariant under the symmetry group of symmetry.go
// (they never name a specific non-home node), so checking them on each
// concrete successor while deduplicating canonically is sound.
func (c *Checker) checkInvariants(s *state) {
	mCount, mNode := 0, -1
	for n := 0; n < c.nodes; n++ {
		if s.data[n] == dModified {
			mCount++
			mNode = n
		}
		if s.dver[n] > s.wrote {
			c.fail("node %d holds version %d beyond commit counter %d", n, s.dver[n], s.wrote)
		}
	}
	if mCount > 1 {
		c.fail("%d Modified copies coexist", mCount)
	}
	if mCount == 1 {
		for n := 0; n < c.nodes; n++ {
			if n != mNode && s.data[n] != dInvalid {
				c.fail("node %d holds a copy while node %d is Modified: %s", n, mNode, c.describe(s))
			}
		}
	} else {
		for n := 0; n < c.nodes; n++ {
			if s.data[n] == dShared && s.dver[n] != s.memV {
				c.fail("node %d Shared copy v%d is stale (memory v%d): %s", n, s.dver[n], s.memV, c.describe(s))
			}
		}
	}
	if s.memV > s.wrote {
		c.fail("memory version %d beyond commit counter %d", s.memV, s.wrote)
	}
}

// checkSoleCopy runs at a write commit: Requirement of MSI — no other node
// may hold a valid copy at the serialization point.
func (c *Checker) checkSoleCopy(s *state, writer int) {
	for n := 0; n < c.nodes; n++ {
		if n != writer && s.data[n] != dInvalid {
			c.fail("write commit at n%d while n%d holds a copy: %s", writer, n, c.describe(s))
		}
	}
}

// checkLocalRead runs at a local cache hit: the copy must be current.
func (c *Checker) checkLocalRead(s *state, node int) {
	if s.data[node] == dShared && s.dver[node] != s.memV {
		// With an M copy elsewhere the M-excludes-S invariant already
		// fired; here memory is the reference.
		c.fail("local read at n%d observed stale v%d (memory v%d)", node, s.dver[node], s.memV)
	}
}

// checkTerminal validates fully drained end states: the surviving virtual
// tree (if any) must be structurally sound, all data copies anchored, and
// the latest committed write must survive in memory or a cache (the
// data-value oracle — a lost writeback leaves every structural invariant
// intact but silently rolls the line back).
func (c *Checker) checkTerminal(s *state) {
	roots := 0
	members := 0
	for n := 0; n < c.nodes; n++ {
		t := &s.lines[n]
		if !t.Valid {
			if s.data[n] != dInvalid && n != c.Home {
				c.fail("terminal: n%d holds data with no tree line: %s", n, c.describe(s))
			}
			continue
		}
		members++
		if t.Touched {
			c.fail("terminal: n%d line left touched", n)
		}
		if t.IsRoot {
			roots++
		} else if t.RootDir == dirNone || !t.Links[t.RootDir] {
			c.fail("terminal: n%d RootDir not a live link: %s", n, c.describe(s))
		}
		for d := 0; d < 4; d++ {
			if !t.Links[d] {
				continue
			}
			nb := c.neighbor(n, d)
			if nb < 0 || !s.lines[nb].Valid {
				c.fail("terminal: n%d link %d dangles", n, d)
			} else if !s.lines[nb].Links[c.arrival(d)] {
				// One-way tails are cleaned by unlink acks before
				// quiescence; none may survive.
				c.fail("terminal: asymmetric edge %d->%d: %s", n, nb, c.describe(s))
			}
		}
		if t.LocalV != (s.data[n] != dInvalid) {
			c.fail("terminal: n%d LocalV=%v but data state %d", n, t.LocalV, s.data[n])
		}
	}
	if members > 0 {
		if roots != 1 {
			c.fail("terminal: %d roots among %d tree members: %s", roots, members, c.describe(s))
		}
		if !s.lines[c.Home].Valid {
			c.fail("terminal: home not part of surviving tree: %s", c.describe(s))
		}
	}
	// Data-value oracle: the newest committed version must be resident in
	// memory or some cache once everything drains.
	maxv := s.memV
	for n := 0; n < c.nodes; n++ {
		if s.data[n] != dInvalid && s.dver[n] > maxv {
			maxv = s.dver[n]
		}
	}
	if maxv != s.wrote {
		c.fail("terminal: committed version %d lost (newest surviving v%d): %s", s.wrote, maxv, c.describe(s))
	}
	// Every read must have sampled some committed version (0 = initial
	// memory is also legal).
	for i, o := range s.ops {
		if !c.Ops[i].Write && o.Sampled > s.wrote {
			c.fail("terminal: read %d sampled impossible version %d", i, o.Sampled)
		}
	}
}

// String renders a result for logs.
func (r Result) String() string {
	return fmt.Sprintf("states=%d transitions=%d explored=%d peak_frontier=%d terminals=%d violations=%d deadlocks=%d truncated=%v",
		r.States, r.Transitions, r.Explored, r.PeakFrontier, r.Terminals, len(r.Violations), len(r.Deadlocks), r.Truncated)
}
