package mcheck

import "innetcc/internal/network"

// Symmetry reduction. Two states that differ only by a mesh automorphism
// (composed with a matching permutation of interchangeable ops) have
// isomorphic futures, so the visited set stores a canonical 64-bit hash:
// the minimum, over the model's automorphism group, of an FNV-1a hash of
// the permuted state encoding. Canonicalization happens only at the
// visited-set boundary — invariants always run against the concrete
// successor state — so a hash collision can at worst re-merge two classes,
// never corrupt a state.
//
// The group is deliberately smaller than the full dihedral group of the
// mesh. X-Y routing orders the X hop before the Y hop, so the transpose
// reflections are *not* automorphisms of the transition relation; the axis
// flips are (they swap E↔W or N↔S wholesale, which commutes with "route X
// first"), provided they fix the home node, since Checker.Home names a
// concrete node. The closer() tie-break (N,S before E,W) is also
// flip-invariant: a strictly-closer candidate set holds at most one
// vertical and one horizontal direction, and flips preserve the classes.
// On top of each valid flip σ, every op-index permutation π with
// Ops[π(i)] = (σ(Ops[i].Node), Ops[i].Write) is an automorphism; the set
// of all such (σ, π) pairs is closed under composition, so min-hashing
// over it is a sound canonicalization.

// symElem is one automorphism, stored inverted for the encoder: position n
// of the permuted state reads original node node[n]; direction slot d
// reads original direction dir[d] (axis flips are involutions, so the map
// is its own inverse); op slot i reads original op opInv[i], and an op
// index o appearing inside a message encodes as opEnc[o].
type symElem struct {
	node  []int32
	dir   [5]int8
	opInv []int8
	opEnc []int8
}

// groupCap bounds the automorphism group actually used. Min-hashing over a
// subSET is only sound when the subset is a subGROUP, so when the full
// group would exceed the cap we fall back to the op-permutation subgroup
// (σ = identity), and to the trivial group after that.
const groupCap = 256

func (c *Checker) buildGroup() {
	c.resolve()
	identityOnly := func() []symElem {
		g := c.newElem()
		for n := range g.node {
			g.node[n] = int32(n)
		}
		for d := range g.dir {
			g.dir[d] = int8(d)
		}
		for i := range g.opInv {
			g.opInv[i] = int8(i)
			g.opEnc[i] = int8(i)
		}
		return []symElem{g}
	}
	if !c.Symmetry {
		c.group = identityOnly()
		return
	}

	// Axis flips are automorphisms of X-Y routing on the open mesh only:
	// the torus tie-break (exact half-way distances route East/South) and
	// the ring tie-break (clockwise) both pick a handedness a flip would
	// reverse. Other fabrics keep the op-permutation subgroup.
	_, isMesh := c.Topo.(network.Mesh2D)
	full := c.enumerate(isMesh)
	if len(full) <= groupCap {
		c.group = full
		return
	}
	opsOnly := c.enumerate(false)
	if len(opsOnly) <= groupCap {
		c.group = opsOnly
		return
	}
	c.group = identityOnly()
}

func (c *Checker) newElem() symElem {
	return symElem{
		node:  make([]int32, c.nodes),
		opInv: make([]int8, len(c.Ops)),
		opEnc: make([]int8, len(c.Ops)),
	}
}

// enumerate builds every (flip, op-permutation) automorphism; withFlips
// false restricts to the identity flip (the op-permutation subgroup).
func (c *Checker) enumerate(withFlips bool) []symElem {
	var out []symElem
	hx, hy := c.Home%c.MeshW, c.Home/c.MeshW
	for _, f := range [4][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		fx, fy := f[0], f[1]
		if (fx || fy) && !withFlips {
			continue
		}
		// The flip must fix the home node.
		if fx && 2*hx != c.MeshW-1 {
			continue
		}
		if fy && 2*hy != c.MeshH-1 {
			continue
		}
		sigma := func(n int) int {
			x, y := n%c.MeshW, n/c.MeshW
			if fx {
				x = c.MeshW - 1 - x
			}
			if fy {
				y = c.MeshH - 1 - y
			}
			return y*c.MeshW + x
		}
		// Image of each op under σ; π must map op i to an identical op at
		// the image node.
		target := make([]Op, len(c.Ops))
		for i, op := range c.Ops {
			target[i] = Op{Node: sigma(op.Node), Write: op.Write}
		}
		perm := make([]int8, len(c.Ops))
		used := make([]bool, len(c.Ops))
		var rec func(i int)
		rec = func(i int) {
			if len(out) > groupCap {
				return
			}
			if i == len(c.Ops) {
				out = append(out, c.makeElem(sigma, fx, fy, perm))
				return
			}
			for j := range c.Ops {
				if used[j] || c.Ops[j] != target[i] {
					continue
				}
				used[j] = true
				perm[i] = int8(j)
				rec(i + 1)
				used[j] = false
			}
		}
		rec(0)
		if len(out) > groupCap {
			// Overflowed: hand the decision back to buildGroup.
			return out
		}
	}
	return out
}

// makeElem freezes one automorphism into encoder tables. perm is π
// (original op index → image op index); sigma maps nodes forward.
func (c *Checker) makeElem(sigma func(int) int, fx, fy bool, perm []int8) symElem {
	g := c.newElem()
	for n := 0; n < c.nodes; n++ {
		g.node[sigma(n)] = int32(n) // node[σ(u)] = u
	}
	for d := 0; d < 5; d++ {
		g.dir[d] = int8(d)
	}
	if fy {
		g.dir[dirN], g.dir[dirS] = dirS, dirN
	}
	if fx {
		g.dir[dirE], g.dir[dirW] = dirW, dirE
	}
	for i := range perm {
		g.opEnc[i] = perm[i]
		g.opInv[perm[i]] = int8(i)
	}
	return g
}

// FNV-1a, finalized with the splitmix64 mixer so the visited set can use
// the hash bits directly as open-addressing probe bits.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 struct{ h uint64 }

func (f *fnv64) b(x byte) { f.h = (f.h ^ uint64(x)) * fnvPrime }

func (f *fnv64) sum() uint64 {
	z := f.h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// canonicalHash is the state's visited-set identity: the minimum hash of
// its encoding over the automorphism group. Allocation-free.
func (c *Checker) canonicalHash(s *state) uint64 {
	best := ^uint64(0)
	for gi := range c.group {
		if h := c.hashUnder(s, &c.group[gi]); h < best {
			best = h
		}
	}
	return best
}

// hashUnder hashes the encoding of s permuted by g. The encoding is the
// same canonical byte layout the old string key used, read through g's
// inverse tables instead of materializing the permuted state.
func (c *Checker) hashUnder(s *state, g *symElem) uint64 {
	f := fnv64{fnvOffset}
	encOp := func(o int8) byte {
		if o < 0 {
			return 0xff
		}
		return byte(g.opEnc[o])
	}
	for n := 0; n < c.nodes; n++ {
		u := g.node[n]
		t := &s.lines[u]
		var flags byte
		if t.Valid {
			flags |= 1
		}
		if t.Touched {
			flags |= 2
		}
		if t.IsRoot {
			flags |= 4
		}
		if t.LocalV {
			flags |= 8
		}
		if t.Anchored {
			flags |= 16
		}
		f.b(flags)
		f.b(byte(g.dir[t.RootDir]))
		var lb byte
		for d := 0; d < 4; d++ {
			if t.Links[g.dir[d]] {
				lb |= 1 << d
			}
		}
		f.b(lb)
		f.b(byte(s.data[u]))
		f.b(byte(s.dver[u]))
	}
	f.b(byte(s.memV))
	f.b(byte(s.wrote))
	for i := range s.ops {
		o := s.ops[g.opInv[i]]
		f.b(byte(o.Phase))
		f.b(byte(o.Sampled))
	}
	encQ := func(q []msg) {
		f.b(byte(len(q)))
		for _, m := range q {
			var fl byte
			if m.Root {
				fl |= 1
			}
			if m.Built {
				fl |= 2
			}
			if m.HomeServe {
				fl |= 4
			}
			f.b(byte(m.Type))
			f.b(encOp(m.Op))
			f.b(byte(m.Ver))
			f.b(fl)
		}
	}
	for n := 0; n < c.nodes; n++ {
		u := g.node[n]
		for d := 0; d < 4; d++ {
			encQ(s.chans[int(u)*4+int(g.dir[d])])
		}
		encQ(s.nicq[u])
	}
	encQ(s.homeq)
	encQ(s.pendq)
	if s.pend {
		f.b(1)
	} else {
		f.b(0)
	}
	return f.sum()
}
