//go:build !race

package mcheck

const raceEnabled = false
