package mcheck

import "fmt"

// The transition relation of the reduced protocol. Each successor applies
// exactly one atomic event to a clone of the state:
//
//   - an idle processor issues its next operation (its request is routed at
//     the local router immediately);
//   - a channel delivers its head message to the neighboring router, which
//     runs the Table 1 kernel for it;
//   - a NIC serves the head of its service queue (data access, memory
//     access, grant, or completion — atomic, since latencies are irrelevant
//     to reachability).
//
// Router processing is a faithful port of internal/treecc's Route /
// processTeardown / processAck logic minus the capacity machinery (no
// conflict evictions, so no stalls and no timeout recovery), which matches
// the backbone the paper verified in Murφ. The Mut hooks inject the
// deliberate bugs of the mutation suite; with Mut == 0 the relation is the
// clean protocol.

// succ is one labeled transition.
type succ struct {
	s     *state
	label string
}

func (c *Checker) successors(s *state) []succ {
	var out []succ

	// 1. Operation issue: one outstanding operation per node
	// (sequential-consistency Requirement 4).
	for i := range s.ops {
		if s.ops[i].Phase != opNotIssued {
			continue
		}
		busy := false
		for j := range s.ops {
			if j != i && c.Ops[j].Node == c.Ops[i].Node && s.ops[j].Phase == opInFlight {
				busy = true
			}
		}
		if busy {
			continue
		}
		ns := s.clone()
		ns.ops[i].Phase = opInFlight
		op := c.Ops[i]
		// Local hit? Reads hit Shared/Modified; writes hit Modified.
		if ns.data[op.Node] != dInvalid && (!op.Write || ns.data[op.Node] == dModified) {
			if op.Write {
				ns.wrote++
				ns.dver[op.Node] = ns.wrote
				c.checkSoleCopy(ns, op.Node)
			} else {
				ns.ops[i].Sampled = ns.dver[op.Node]
				c.checkLocalRead(ns, op.Node)
			}
			ns.ops[i].Phase = opDone
			out = append(out, succ{ns, fmt.Sprintf("localhit op%d", i)})
			continue
		}
		t := int8(mRdReq)
		if op.Write {
			t = mWrReq
		}
		c.route(ns, op.Node, msg{Type: t, Op: int8(i)}, dirNone)
		out = append(out, succ{ns, fmt.Sprintf("issue op%d@n%d", i, op.Node)})
	}

	// 2. Channel deliveries.
	for n := 0; n < c.nodes; n++ {
		for d := 0; d < 4; d++ {
			if len(s.chans[n*4+d]) == 0 {
				continue
			}
			nb := c.neighbor(n, d)
			ns := s.clone()
			m := ns.chans[n*4+d][0]
			ns.chans[n*4+d] = ns.chans[n*4+d][1:]
			c.route(ns, nb, m, c.arrival(d))
			out = append(out, succ{ns, fmt.Sprintf("dlv %s %d->%d", msgNames[m.Type], n, nb)})
		}
	}

	// 3. NIC services.
	for n := 0; n < c.nodes; n++ {
		if len(s.nicq[n]) == 0 {
			continue
		}
		ns := s.clone()
		m := ns.nicq[n][0]
		ns.nicq[n] = ns.nicq[n][1:]
		c.nicServe(ns, n, m)
		out = append(out, succ{ns, fmt.Sprintf("nic %s@n%d", msgNames[m.Type], n)})
	}
	return out
}

func send(s *state, node, dir int, m msg) {
	s.chans[node*4+dir] = append(s.chans[node*4+dir], m)
}

// route runs the router kernel for m at node; arrival is the inbound link
// (dirNone for locally issued or NIC-spawned messages).
func (c *Checker) route(s *state, node int, m msg, arrival int) {
	switch m.Type {
	case mRdReq:
		c.routeRead(s, node, m)
	case mWrReq:
		c.routeWrite(s, node, m)
	case mRdReply, mWrReply:
		c.routeReply(s, node, m, arrival)
	case mTeardown:
		c.teardown(s, node, arrival, false)
	case mTdAck:
		c.ack(s, node, arrival, m)
	}
}

func (c *Checker) routeRead(s *state, node int, m msg) {
	t := &s.lines[node]
	if t.Valid && !t.Touched {
		if t.LocalV {
			s.nicq[node] = append(s.nicq[node], m)
			return
		}
		if !t.IsRoot && t.RootDir != dirNone && t.Links[t.RootDir] {
			send(s, node, int(t.RootDir), m)
			return
		}
	}
	if node == c.Home {
		if s.pend && !c.has(MutDoubleGrant) {
			s.pendq = append(s.pendq, m)
			return
		}
		if t.Valid && t.Touched {
			s.homeq = append(s.homeq, m)
			return
		}
		if t.Valid {
			// Degenerate home line; the simulator drops and
			// serves fresh.
			*t = treeLine{RootDir: dirNone}
		}
		s.pend = true
		m.HomeServe = true
		s.nicq[node] = append(s.nicq[node], m)
		return
	}
	send(s, node, c.routeTo(node, c.Home), m)
}

func (c *Checker) routeWrite(s *state, node int, m msg) {
	t := &s.lines[node]
	if node == c.Home {
		if s.pend && !c.has(MutDoubleGrant) {
			s.pendq = append(s.pendq, m)
			return
		}
		if t.Valid && t.Touched {
			s.homeq = append(s.homeq, m)
			return
		}
		if t.Valid {
			c.teardown(s, node, dirNone, false)
			if s.lines[node].Valid {
				s.homeq = append(s.homeq, m)
			} else {
				// Single-node tree tore down instantly.
				s.pend = true
				m.HomeServe = true
				s.nicq[node] = append(s.nicq[node], m)
			}
			return
		}
		s.pend = true
		m.HomeServe = true
		s.nicq[node] = append(s.nicq[node], m)
		return
	}
	if t.Valid && !t.Touched {
		c.teardown(s, node, dirNone, false)
	}
	send(s, node, c.routeTo(node, c.Home), m)
}

// revert turns a reply back into a request at node, releasing the
// home-serve window if the reply owned it (it was fresh and had not yet
// anchored the home line).
func (c *Checker) revert(s *state, node int, m msg, arrival int) {
	if m.Root && arrival == dirNone {
		c.releasePend(s)
	}
	t := int8(mRdReq)
	if m.Type == mWrReply {
		t = mWrReq
	}
	c.route(s, node, msg{Type: t, Op: m.Op}, dirNone)
}

func (c *Checker) routeReply(s *state, node int, m msg, arrival int) {
	t := &s.lines[node]
	req := c.Ops[m.Op].Node
	// Origin guard for grafting replies (the serve raced a teardown).
	if arrival == dirNone && !m.Root {
		if !t.Valid || t.Touched {
			c.route(s, node, msg{Type: mRdReq, Op: m.Op}, dirNone)
			return
		}
	}
	if node == req {
		if t.Valid && !t.Touched {
			if m.Root {
				if t.LocalV {
					c.invalidateData(s, node)
					t.LocalV = false
				}
				t.IsRoot = true
				t.RootDir = dirNone
				t.Links = [4]bool{}
				if arrival != dirNone {
					t.Links[arrival] = true
				}
			} else if m.Built && arrival != dirNone && !t.Links[arrival] {
				// Graft re-entry at the requester: unlink the
				// sender's dangling bit.
				send(s, node, arrival, msg{Type: mTdAck, Op: -1, Built: true /* unlink */})
			}
			t.Anchored = true
			if s.pend && m.Root && arrival == dirNone {
				c.releasePend(s)
			}
			s.nicq[node] = append(s.nicq[node], m)
			return
		}
		if !t.Valid {
			*t = treeLine{Valid: true, RootDir: dirNone, Anchored: true}
			if arrival != dirNone {
				t.Links[arrival] = true
			}
			if m.Root {
				t.IsRoot = true
			} else {
				t.RootDir = int8(arrival)
			}
			if s.pend && m.Root && arrival == dirNone {
				c.releasePend(s)
			}
			s.nicq[node] = append(s.nicq[node], m)
			return
		}
		// Touched line at the requester: if its acknowledgment is held
		// for this reply, eject for an uncached completion (releasing
		// the collapse); otherwise revert.
		if t.Anchored {
			if s.pend && m.Root && arrival == dirNone {
				c.releasePend(s)
			}
			s.nicq[node] = append(s.nicq[node], m)
			return
		}
		c.revert(s, node, m, arrival)
		return
	}
	out := c.routeTo(node, req)
	if t.Valid && !t.Touched {
		if !m.Root {
			if m.Built && arrival != dirNone && !t.Links[arrival] {
				send(s, node, arrival, msg{Type: mTdAck, Op: -1, Built: true})
			}
			if d, ok := c.closer(s, node, req); ok {
				m.Built = false
				send(s, node, d, m)
				return
			}
			t.Links[out] = true
			m.Built = true
			send(s, node, out, m)
			return
		}
		// Fresh-tree reply absorbing a remnant.
		if t.LocalV {
			c.invalidateData(s, node)
			t.LocalV = false
		}
		t.Links = [4]bool{}
		if arrival != dirNone {
			t.Links[arrival] = true
		}
		t.Links[out] = true
		t.RootDir = int8(out)
		t.IsRoot = false
		t.Anchored = false
		m.Built = true
		// The reply must enter the channel before the pending queue
		// re-routes (a released write's teardown chases it in FIFO
		// order, mirroring the simulator's age-based arbitration).
		send(s, node, out, m)
		if s.pend && arrival == dirNone && node == c.Home {
			c.releasePend(s)
		}
		return
	}
	if !t.Valid {
		if !m.Root && !m.Built && arrival != dirNone {
			// Followed a tree edge into a collapsed node: revert.
			c.revert(s, node, m, arrival)
			return
		}
		*t = treeLine{Valid: true, RootDir: dirNone}
		if arrival != dirNone {
			t.Links[arrival] = true
		}
		t.Links[out] = true
		if m.Root {
			t.RootDir = int8(out)
		} else {
			t.RootDir = int8(arrival)
		}
		m.Built = true
		send(s, node, out, m)
		if s.pend && m.Root && arrival == dirNone && node == c.Home {
			c.releasePend(s)
		}
		return
	}
	// Touched: revert to a request (the simulator stalls then times out).
	c.revert(s, node, m, arrival)
}

func (c *Checker) closer(s *state, node, target int) (int, bool) {
	t := &s.lines[node]
	cur := c.dist(node, target)
	for d := 0; d < 4; d++ {
		if !t.Links[d] {
			continue
		}
		nb := c.neighbor(node, d)
		if nb >= 0 && c.dist(nb, target) < cur {
			return d, true
		}
	}
	return dirNone, false
}

// releasePend lifts the home-serve marker and re-routes the queued
// requests at the home node.
func (c *Checker) releasePend(s *state) {
	s.pend = false
	q := s.pendq
	s.pendq = nil
	for _, w := range q {
		c.route(s, c.Home, w, dirNone)
	}
}

func (c *Checker) invalidateData(s *state, node int) {
	if s.data[node] == dModified && s.dver[node] > s.memV && !c.has(MutLostWriteback) {
		s.memV = s.dver[node]
	}
	s.data[node] = dInvalid
}

// teardown ports processTeardown (no ClearArrival: no timeout aborts in
// the reduced model).
func (c *Checker) teardown(s *state, node, arrival int, _ bool) {
	t := &s.lines[node]
	if !t.Valid || t.Touched {
		return
	}
	t.Touched = true
	if t.LocalV && !c.has(MutSkipInvalidate) {
		c.invalidateData(s, node)
		t.LocalV = false
	}
	for d := 0; d < 4; d++ {
		if t.Links[d] && d != arrival {
			send(s, node, d, msg{Type: mTeardown, Op: -1})
		}
	}
	if node == c.Home && c.has(MutEarlyHomeRelease) {
		// Wrong teardown order: the home declares the teardown done the
		// moment its own line is touched, without waiting for the
		// subtree to collapse and acknowledge.
		*t = treeLine{RootDir: dirNone}
		c.teardownComplete(s)
		return
	}
	if t.Anchored && !c.ackHoldOff() {
		// Hold the acknowledgment until the pending completion lands
		// (outstanding-request bit).
		return
	}
	switch n := t.linkCount(); {
	case n == 0:
		*t = treeLine{RootDir: dirNone}
		if node == c.Home {
			c.teardownComplete(s)
		}
	case n == 1 && node != c.Home:
		d := t.onlyLink()
		if !c.has(MutDropTdAck) {
			send(s, node, d, msg{Type: mTdAck, Op: -1})
		}
		*t = treeLine{RootDir: dirNone}
	}
}

// ack ports processAck; m.Built doubles as the unlink flag for acks.
func (c *Checker) ack(s *state, node, arrival int, m msg) {
	t := &s.lines[node]
	if !t.Valid {
		return
	}
	if !t.Touched {
		if m.Built && arrival != dirNone {
			t.Links[arrival] = false
		}
		return
	}
	if arrival != dirNone {
		if !t.Links[arrival] {
			return
		}
		t.Links[arrival] = false
	}
	if t.Anchored && !c.ackHoldOff() {
		return
	}
	c.collapse(s, node)
}

func (c *Checker) collapse(s *state, node int) {
	t := &s.lines[node]
	if node == c.Home {
		if t.linkCount() == 0 {
			*t = treeLine{RootDir: dirNone}
			c.teardownComplete(s)
		}
		return
	}
	switch t.linkCount() {
	case 0:
		*t = treeLine{RootDir: dirNone}
	case 1:
		d := t.onlyLink()
		if !c.has(MutDropTdAck) {
			send(s, node, d, msg{Type: mTdAck, Op: -1})
		}
		*t = treeLine{RootDir: dirNone}
	}
}

// teardownComplete releases the home queue. Victim caching is modeled by
// memory (writebacks are immediate), so the home L2 copy step is folded
// into memV.
func (c *Checker) teardownComplete(s *state) {
	q := s.homeq
	s.homeq = nil
	for _, w := range q {
		c.route(s, c.Home, w, dirNone)
	}
}

// nicServe is the above-network work: data sampling, memory access, grant,
// completion. Atomic.
func (c *Checker) nicServe(s *state, node int, m msg) {
	t := &s.lines[node]
	switch m.Type {
	case mRdReq:
		if t.Valid && !t.Touched && t.LocalV {
			// Sharer serve: a dirty line writes back (M -> S).
			if s.data[node] == dModified {
				if !c.has(MutLostWriteback) {
					s.memV = s.dver[node]
				}
				s.data[node] = dShared
			}
			v := s.dver[node]
			if v != s.memV {
				c.fail("read sampled v%d at n%d but memory holds v%d", v, node, s.memV)
			}
			c.Opsampled(s, m.Op, v)
			c.route(s, node, msg{Type: mRdReply, Op: m.Op, Ver: v}, dirNone)
			return
		}
		if !m.HomeServe {
			// Raced serve: retry toward home.
			c.route(s, node, msg{Type: mRdReq, Op: m.Op}, dirNone)
			return
		}
		// Home serve from memory (victim caching folded into memV).
		v := s.memV
		c.Opsampled(s, m.Op, v)
		c.route(s, node, msg{Type: mRdReply, Op: m.Op, Ver: v, Root: true}, dirNone)
	case mWrReq:
		// Grant (Requirement 3: home data copy invalidated).
		if s.data[node] != dInvalid && node == c.Home {
			c.invalidateData(s, node)
		}
		c.route(s, node, msg{Type: mWrReply, Op: m.Op, Root: true}, dirNone)
	case mRdReply:
		if t.Valid && !t.Touched && (t.Anchored || c.anchorOff()) {
			s.data[node] = dShared
			s.dver[node] = m.Ver
			t.LocalV = true
			t.Anchored = false
		} else {
			c.releaseHeld(s, node)
		}
		s.ops[m.Op].Phase = opDone
		s.ops[m.Op].Sampled = m.Ver
	case mWrReply:
		s.wrote++
		v := s.wrote
		c.checkSoleCopy(s, node)
		if t.Valid && !t.Touched && (t.Anchored || c.anchorOff()) {
			s.data[node] = dModified
			s.dver[node] = v
			t.LocalV = true
			t.Anchored = false
		} else {
			// Tree being torn down: write through; the held
			// acknowledgment guaranteed this commit serialized
			// before the next grant.
			if v > s.memV {
				s.memV = v
			}
			c.releaseHeld(s, node)
		}
		s.ops[m.Op].Phase = opDone
	}
}

// releaseHeld resumes a collapse held at node by the outstanding-request
// bit.
func (c *Checker) releaseHeld(s *state, node int) {
	t := &s.lines[node]
	if !t.Valid || !t.Touched || !t.Anchored {
		return
	}
	t.Anchored = false
	if t.linkCount() == 0 {
		*t = treeLine{RootDir: dirNone}
		if node == c.Home {
			c.teardownComplete(s)
		}
		return
	}
	c.collapse(s, node)
}

// Opsampled records the version a read sampled.
func (c *Checker) Opsampled(s *state, op int8, v int8) {
	s.ops[op].Sampled = v
}
