package mcheck

import (
	"testing"

	"innetcc/internal/network"
)

func checkTopo(t *testing.T, topo network.Topology, home int, ops []Op) Result {
	t.Helper()
	c := NewTopology(topo, home, ops)
	res := c.Run()
	t.Logf("%s: %v", topo.Spec(), res)
	for _, v := range res.Violations {
		t.Errorf("%s violation: %s", topo.Spec(), v)
	}
	for _, d := range res.Deadlocks {
		t.Errorf("%s deadlock: %s", topo.Spec(), d)
	}
	if res.Terminals == 0 {
		t.Errorf("%s: no terminal state reached", topo.Spec())
	}
	return res
}

// TestFabricsCleanProtocol runs the read/write race programs over every
// fabric kind: wraparound routes (torus) and two-port routers (ring)
// exercise link patterns the open mesh cannot produce.
func TestFabricsCleanProtocol(t *testing.T) {
	fabrics := []network.Topology{
		network.Torus2D{W: 2, H: 2},
		network.Torus2D{W: 3, H: 2},
		network.Ring{N: 4},
		network.Ring{N: 5},
	}
	for _, topo := range fabrics {
		checkTopo(t, topo, 0, []Op{{Node: 1, Write: false}, {Node: 2, Write: true}})
		checkTopo(t, topo, 1, []Op{{Node: 0, Write: true}, {Node: 3, Write: true}})
	}
}

// TestFabricsPaperProgram explores the paper's Murφ bound (two reads, two
// writes) on a 4-node ring and torus.
func TestFabricsPaperProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("full exploration is slow")
	}
	_, ops := DefaultProgram()
	checkTopo(t, network.Ring{N: 4}, 0, ops)
	checkTopo(t, network.Torus2D{W: 2, H: 2}, 0, ops)
}

// TestFabricsCatchMutations proves the checker still detects seeded
// protocol bugs when routing over non-mesh fabrics (so the fabric port is
// not silently weakening the invariants).
func TestFabricsCatchMutations(t *testing.T) {
	ops := []Op{{Node: 1, Write: false}, {Node: 2, Write: true}, {Node: 3, Write: true}}
	for _, topo := range []network.Topology{network.Ring{N: 4}, network.Torus2D{W: 2, H: 2}} {
		for _, mut := range []Mutation{MutDropTdAck, MutSkipInvalidate, MutLostWriteback, MutDoubleGrant} {
			c := NewTopology(topo, 0, ops)
			c.Mut = mut
			res := c.Run()
			if len(res.Violations) == 0 && len(res.Deadlocks) == 0 {
				t.Errorf("%s: mutation %#x went undetected (%d states)", topo.Spec(), mut, res.States)
			}
		}
	}
}

// TestFabricSymmetryFallback pins the graceful degradation: a ring has no
// usable axis flip, so the group is the op-permutation subgroup, and
// enabling symmetry must not change what is explored.
func TestFabricSymmetryFallback(t *testing.T) {
	ops := []Op{{Node: 1, Write: false}, {Node: 3, Write: false}, {Node: 2, Write: true}}
	run := func(sym bool) Result {
		c := NewTopology(network.Ring{N: 4}, 0, ops)
		c.Symmetry = sym
		return c.Run()
	}
	a, b := run(true), run(false)
	if len(a.Violations)+len(a.Deadlocks)+len(b.Violations)+len(b.Deadlocks) > 0 {
		t.Fatalf("clean program failed: %v %v", a.Violations, b.Violations)
	}
	// The two interchangeable reads give a 2-element op group: symmetry on
	// must not *grow* the canonical state count, and both runs must agree
	// on the transition structure they explored.
	if a.States > b.States {
		t.Errorf("symmetry on explored more states (%d) than off (%d)", a.States, b.States)
	}
	if a.Terminals == 0 || b.Terminals == 0 {
		t.Error("no terminal states")
	}
}
