// Package mcheck is the repository's stand-in for the paper's Murφ
// verification (Section 2.4): an explicit-state model checker that
// exhaustively explores a reduced model of the in-network MSI protocol and
// checks coherence and sequential-consistency invariants in every reachable
// state.
//
// The reduced model mirrors the paper's: a small fabric, a single cache
// line, a bounded set of concurrent operations ("multiple concurrent reads
// and up to two concurrent writes"), message-type-accurate protocol
// transitions (RD_REQ, RD_REPLY, WR_REQ, WR_REPLY, TEARDOWN, TD_ACK), FIFO
// channels between adjacent routers, and atomic above-network data
// accesses. Tree cache capacity conflicts, evictions and the timeout
// recovery they require are outside the backbone being checked, exactly as
// in the paper's Murφ spec.
//
// Unlike the paper's fixed 2×2 run, the fabric (any network.Topology —
// mesh, torus or ring) and the concurrent op program are parameters of
// Checker, states are deduplicated through a 64-bit canonical hash taken
// as the minimum over the model's symmetry group (mesh axis flips that fix
// the home node, composed with permutations of interchangeable ops; on
// fabrics without a usable flip the group gracefully shrinks to the
// op-permutation subgroup), and the BFS can fan a level out across worker
// goroutines. Together these push exhaustive exploration from the paper's
// 2×2 bound to 3×3 meshes with several concurrent ops.
package mcheck

import (
	"fmt"
	"sort"
	"sync"

	"innetcc/internal/network"
)

// Directions, matching the full simulator's encoding: dirN..dirW are the
// numeric values of network.North..West (a ring only uses the first two,
// its CW/CCW ports), and dirNone equals int(network.Local).
const (
	dirN = iota
	dirS
	dirE
	dirW
	dirNone
)

// neighbor, arrival, routeTo and dist are the model's view of the fabric,
// all answered by the Topology. dirNone (== int(network.Local)) flows
// through unchanged: NextHop returns Local exactly at the destination.

func (c *Checker) neighbor(n, d int) int {
	nb, ok := c.Topo.Neighbor(n, network.Dir(d))
	if !ok {
		return -1
	}
	return nb
}

func (c *Checker) arrival(d int) int { return int(c.Topo.Arrival(network.Dir(d))) }

func (c *Checker) routeTo(from, to int) int { return int(c.Topo.NextHop(from, to)) }

func (c *Checker) dist(a, b int) int { return c.Topo.Dist(a, b) }

// Message types.
const (
	mRdReq = iota
	mRdReply
	mWrReq
	mWrReply
	mTeardown
	mTdAck
)

var msgNames = [...]string{"RD_REQ", "RD_REPLY", "WR_REQ", "WR_REPLY", "TEARDOWN", "TD_ACK"}

// msg is a protocol message in flight. Op identifies the operation it
// serves (-1 for teardowns/acks). Ver is the data version carried by read
// replies. Root marks fresh-tree replies. Built mirrors the simulator's
// BuiltLast.
type msg struct {
	Type  int8
	Op    int8
	Ver   int8
	Root  bool
	Built bool
	// HomeServe marks a request that owns the home-serve window (the
	// model's rendering of the simulator's Msg.HomeServe).
	HomeServe bool
}

// treeLine is the reduced virtual tree cache line.
type treeLine struct {
	Valid    bool
	Touched  bool
	IsRoot   bool
	RootDir  int8
	Links    [4]bool
	LocalV   bool // local data copy valid
	Anchored bool // outstanding-request bit: a reply anchored this line
}

func (t *treeLine) linkCount() int {
	c := 0
	for _, b := range t.Links {
		if b {
			c++
		}
	}
	return c
}

func (t *treeLine) onlyLink() int {
	for d, b := range t.Links {
		if b {
			return d
		}
	}
	return dirNone
}

// Data cache states.
const (
	dInvalid = iota
	dShared
	dModified
)

// Op phases.
const (
	opNotIssued = iota
	opInFlight
	opDone
)

// Op is one memory operation of the model's concurrent program.
type Op struct {
	Node  int
	Write bool
}

// opState tracks an operation's progress and, for reads, the version it
// sampled.
type opState struct {
	Phase   int8
	Sampled int8
}

// state is one global protocol state. Channels are FIFO per directed mesh
// edge (flattened node*4+dir); nicq are the above-network service queues;
// homeq holds requests queued at the home during teardown; pend marks the
// home-serve serialization window.
type state struct {
	lines []treeLine
	data  []int8 // dInvalid/dShared/dModified
	dver  []int8
	memV  int8
	wrote int8 // committed writes so far
	ops   []opState
	chans [][]msg // outgoing FIFO, indexed node*4+dir
	nicq  [][]msg
	homeq []msg // queued while the tree is being torn down
	pendq []msg // queued while a home serve is in flight
	pend  bool
}

func (s *state) clone() *state {
	c := &state{
		lines: append([]treeLine(nil), s.lines...),
		data:  append([]int8(nil), s.data...),
		dver:  append([]int8(nil), s.dver...),
		memV:  s.memV,
		wrote: s.wrote,
		ops:   append([]opState(nil), s.ops...),
		chans: make([][]msg, len(s.chans)),
		nicq:  make([][]msg, len(s.nicq)),
		homeq: append([]msg(nil), s.homeq...),
		pendq: append([]msg(nil), s.pendq...),
		pend:  s.pend,
	}
	for i, q := range s.chans {
		if len(q) > 0 {
			c.chans[i] = append([]msg(nil), q...)
		}
	}
	for i, q := range s.nicq {
		if len(q) > 0 {
			c.nicq[i] = append([]msg(nil), q...)
		}
	}
	return c
}

// Mutation is a bitmask of deliberate protocol bugs the checker can inject
// into the model. Each one removes a protection the real protocol relies
// on; the mutation test suite proves the exhaustive search detects every
// one of them (the same role the paper's Murφ model played during protocol
// design). The names pair 1:1 with internal/treecc's engine-side Bug bits
// so the litmus fuzzer can assert the full simulator catches the same
// seeded bugs.
type Mutation uint32

const (
	// MutDropAckHold removes the outstanding-request acknowledgment hold:
	// a touched line with a pending completion collapses immediately.
	MutDropAckHold Mutation = 1 << iota
	// MutAcceptStaleReply installs data from replies that arrive into a
	// torn-down completion window (the model's rendering of accepting a
	// reply from an abandoned reissue epoch). It removes both the anchor
	// generation check and the acknowledgment hold that together close
	// that window.
	MutAcceptStaleReply
	// MutDropTdAck silently drops TD_ACK messages at tree collapse.
	MutDropTdAck
	// MutEarlyHomeRelease completes the home's teardown — releasing the
	// queued requests — before the subtree acknowledgments arrive (wrong
	// teardown order).
	MutEarlyHomeRelease
	// MutSkipInvalidate leaves the local data copy valid when a teardown
	// passes through a sharer.
	MutSkipInvalidate
	// MutLostWriteback drops the dirty version instead of folding it into
	// memory when a Modified copy is invalidated.
	MutLostWriteback
	// MutDoubleGrant ignores the home-serve serialization window, letting
	// the home serve a second request while one is already in flight.
	MutDoubleGrant
)

// Result summarizes a model-checking run.
type Result struct {
	// States counts distinct canonical states discovered (after symmetry
	// reduction); Canonical is an alias kept explicit for reports.
	States    int
	Canonical int
	// Explored counts states actually expanded (dequeued and given to the
	// transition relation); it trails States only when the run stops early.
	Explored int
	// Transitions counts generated successor states, including those that
	// fold into an already-visited canonical class.
	Transitions int
	// PeakFrontier is the largest BFS level encountered.
	PeakFrontier int
	// Truncated reports that MaxStates stopped the search before the
	// frontier drained; the verdict is then only partial.
	Truncated bool
	// Violations lists invariant failures (empty on success).
	Violations []string
	// Deadlocks lists non-terminal states with no enabled transition.
	Deadlocks []string
	// Terminals counts fully drained end states.
	Terminals int
}

// Checker runs the exploration.
type Checker struct {
	// Topo is the fabric the model routes over. When nil, Run builds a
	// MeshW×MeshH mesh (the historical configuration surface); setting
	// Topo directly (or using NewTopology) checks the protocol over any
	// fabric — torus wraparound routes, ring two-port routers — with the
	// same transition relation.
	Topo         network.Topology
	MeshW, MeshH int
	Home         int
	Ops          []Op
	MaxStates    int

	// Workers fans each BFS level out across this many goroutines
	// (<=1 explores serially). Results are merged in deterministic
	// frontier order, so state/transition counts are identical at any
	// worker count.
	Workers int
	// Symmetry canonicalizes states under the model's automorphism group
	// before visited-set lookup. Safe to leave on: the group is the
	// identity when the configuration has no usable symmetry.
	Symmetry bool
	// TraceEdges keeps a parent edge per canonical state so violations
	// and deadlocks carry counterexample traces. Costs memory
	// proportional to the state count; switch off for large runs.
	TraceEdges bool

	// DisableAckHold and DisableAnchor switch off two protocol
	// protections (the outstanding-request acknowledgment hold and the
	// completion anchor). They predate Mut and remain for compatibility;
	// MutDropAckHold / MutAcceptStaleReply are the table-driven forms.
	DisableAckHold bool
	DisableAnchor  bool
	// Mut injects the selected protocol bugs into the model.
	Mut Mutation

	nodes      int
	group      []symElem
	violations []string
	deadlocks  []string
}

func (c *Checker) has(m Mutation) bool { return c.Mut&m != 0 }

func (c *Checker) ackHoldOff() bool {
	return c.DisableAckHold || c.has(MutDropAckHold) || c.has(MutAcceptStaleReply)
}

func (c *Checker) anchorOff() bool {
	return c.DisableAnchor || c.has(MutAcceptStaleReply)
}

// New returns a checker for the given concurrent program on the paper's
// 2×2 mesh. home is the line's home node.
func New(home int, ops []Op) *Checker {
	return NewMesh(2, 2, home, ops)
}

// NewMesh returns a checker for a w×h mesh. Symmetry reduction and
// counterexample traces are on by default; Workers defaults to serial.
func NewMesh(w, h, home int, ops []Op) *Checker {
	return &Checker{
		MeshW:      w,
		MeshH:      h,
		Home:       home,
		Ops:        ops,
		MaxStates:  2_000_000,
		Workers:    1,
		Symmetry:   true,
		TraceEdges: true,
	}
}

// NewTopology returns a checker over an arbitrary fabric, with the same
// defaults as NewMesh. Symmetry reduction degrades gracefully: axis flips
// apply only to meshes, so other fabrics canonicalize under op
// permutations alone.
func NewTopology(t network.Topology, home int, ops []Op) *Checker {
	c := NewMesh(1, 1, home, ops)
	c.Topo = t
	return c
}

// DefaultProgram mirrors the paper's Murφ bound: concurrent reads on two
// nodes and two concurrent writes.
func DefaultProgram() (home int, ops []Op) {
	return 0, []Op{
		{Node: 1, Write: false},
		{Node: 2, Write: false},
		{Node: 3, Write: true},
		{Node: 1, Write: true},
	}
}

// resolve materializes the fabric: a nil Topo becomes the MeshW×MeshH
// mesh, and the mesh shape fields are re-derived from the topology for the
// symmetry enumeration (a placeholder N×1 for non-mesh fabrics, whose axis
// flips are disabled anyway). Idempotent; Run and buildGroup both call it.
func (c *Checker) resolve() {
	if c.Topo == nil {
		if c.MeshW < 1 || c.MeshH < 1 {
			panic("mcheck: empty mesh")
		}
		c.Topo = network.Mesh2D{W: c.MeshW, H: c.MeshH}
	}
	if m, ok := c.Topo.(network.Mesh2D); ok {
		c.MeshW, c.MeshH = m.W, m.H
	} else {
		c.MeshW, c.MeshH = c.Topo.Nodes(), 1
	}
	c.nodes = c.Topo.Nodes()
}

// fstate is a frontier entry: the state plus its canonical hash (the
// visited-set identity, reused for trace parent edges).
type fstate struct {
	s *state
	h uint64
}

// edge is one parent link of the exploration DAG, kept when TraceEdges is
// on so counterexamples can be replayed as a label sequence.
type edge struct {
	parent uint64
	label  string
}

// candidate is a successor produced by a worker, pending the global
// visited-set merge.
type candidate struct {
	s      *state
	h      uint64
	parent uint64
	label  string
}

// workerOut collects one worker's share of a BFS level.
type workerOut struct {
	cand        []candidate
	transitions int
	explored    int
	terminals   int
	violations  []string
	deadlocks   []string
}

const (
	maxViolations = 10
	maxDeadlocks  = 2
)

func (c *Checker) fail(format string, args ...interface{}) {
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Run explores the full state space with a level-synchronous BFS and
// returns the result. With Workers > 1 each level is expanded in
// parallel; the merge into the visited set happens serially in frontier
// order, so the result is independent of the worker count.
func (c *Checker) Run() Result {
	c.resolve()
	if c.nodes < 1 {
		panic("mcheck: empty fabric")
	}
	if c.Home < 0 || c.Home >= c.nodes {
		panic("mcheck: home outside fabric")
	}
	for _, op := range c.Ops {
		if op.Node < 0 || op.Node >= c.nodes {
			panic("mcheck: op node outside fabric")
		}
	}
	c.buildGroup()

	// Channel arrays stay network.MaxDegree wide on every fabric; ports a
	// topology does not wire (a ring's slots 2 and 3) simply never carry
	// messages, so the hash layout is degree-independent.
	init := &state{
		lines: make([]treeLine, c.nodes),
		data:  make([]int8, c.nodes),
		dver:  make([]int8, c.nodes),
		ops:   make([]opState, len(c.Ops)),
		chans: make([][]msg, c.nodes*4),
		nicq:  make([][]msg, c.nodes),
	}
	for n := 0; n < c.nodes; n++ {
		init.lines[n].RootDir = dirNone
	}

	visited := newHashSet(1 << 14)
	h0 := c.canonicalHash(init)
	visited.Add(h0)
	var parents map[uint64]edge
	if c.TraceEdges {
		parents = map[uint64]edge{}
	}

	workers := c.Workers
	if workers < 1 {
		workers = 1
	}

	res := Result{States: 1}
	frontier := []fstate{{init, h0}}
	for len(frontier) > 0 && len(c.violations) == 0 && !res.Truncated {
		if len(frontier) > res.PeakFrontier {
			res.PeakFrontier = len(frontier)
		}
		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		outs := make([]workerOut, w)
		if w == 1 {
			outs[0] = c.expandChunk(frontier, visited, parents)
		} else {
			var wg sync.WaitGroup
			per := (len(frontier) + w - 1) / w
			for i := 0; i < w; i++ {
				lo := i * per
				hi := lo + per
				if lo > len(frontier) {
					lo = len(frontier)
				}
				if hi > len(frontier) {
					hi = len(frontier)
				}
				wg.Add(1)
				go func(i, lo, hi int) {
					defer wg.Done()
					outs[i] = c.expandChunk(frontier[lo:hi], visited, parents)
				}(i, lo, hi)
			}
			wg.Wait()
		}

		var next []fstate
		for i := range outs {
			o := &outs[i]
			res.Transitions += o.transitions
			res.Explored += o.explored
			res.Terminals += o.terminals
			for _, v := range o.violations {
				if len(c.violations) < maxViolations {
					c.violations = append(c.violations, v)
				}
			}
			for _, d := range o.deadlocks {
				if len(c.deadlocks) < maxDeadlocks {
					c.deadlocks = append(c.deadlocks, d)
				}
			}
			for _, cd := range o.cand {
				if res.Truncated || !visited.Add(cd.h) {
					continue
				}
				res.States++
				if parents != nil {
					parents[cd.h] = edge{parent: cd.parent, label: cd.label}
				}
				next = append(next, fstate{cd.s, cd.h})
				if res.States >= c.MaxStates {
					res.Truncated = true
				}
			}
		}
		frontier = next
	}
	res.Canonical = res.States
	res.Violations = c.violations
	res.Deadlocks = c.deadlocks
	return res
}

// expandChunk runs the transition relation over one slice of the frontier.
// It works on a shallow copy of the Checker so invariant failures collect
// into a worker-local slice; visited and parents are only read (the merge
// phase is the sole writer, between levels).
func (c *Checker) expandChunk(chunk []fstate, visited *hashSet, parents map[uint64]edge) workerOut {
	wc := *c
	wc.violations = nil
	wc.deadlocks = nil
	var out workerOut
	trace := func(h uint64) string {
		if parents == nil {
			return "(traces disabled)"
		}
		var labels []string
		for {
			e, ok := parents[h]
			if !ok {
				break
			}
			labels = append(labels, e.label)
			h = e.parent
		}
		s := ""
		for i := len(labels) - 1; i >= 0; i-- {
			s += labels[i] + "; "
		}
		return s
	}
	for _, f := range chunk {
		out.explored++
		vpre := len(wc.violations)
		succs := wc.successors(f.s)
		for i := vpre; i < len(wc.violations); i++ {
			wc.violations[i] += "\n  trace: " + trace(f.h)
		}
		if len(succs) == 0 {
			if wc.isTerminal(f.s) {
				out.terminals++
				tpre := len(wc.violations)
				wc.checkTerminal(f.s)
				for i := tpre; i < len(wc.violations); i++ {
					wc.violations[i] += "\n  trace: " + trace(f.h)
				}
			} else if len(wc.deadlocks) < maxDeadlocks {
				wc.deadlocks = append(wc.deadlocks, wc.describe(f.s)+"\n  trace: "+trace(f.h))
			}
			continue
		}
		for _, ns := range succs {
			out.transitions++
			pre := len(wc.violations)
			wc.checkInvariants(ns.s)
			if len(wc.violations) > pre {
				wc.violations[len(wc.violations)-1] += "\n  trace: " + trace(f.h) + ns.label
			}
			h := wc.canonicalHash(ns.s)
			if visited.Contains(h) {
				continue
			}
			out.cand = append(out.cand, candidate{s: ns.s, h: h, parent: f.h, label: ns.label})
		}
	}
	out.violations = wc.violations
	out.deadlocks = wc.deadlocks
	return out
}

func (c *Checker) isTerminal(s *state) bool {
	for _, o := range s.ops {
		if o.Phase != opDone {
			return false
		}
	}
	for _, q := range s.chans {
		if len(q) > 0 {
			return false
		}
	}
	for _, q := range s.nicq {
		if len(q) > 0 {
			return false
		}
	}
	return len(s.homeq) == 0 && len(s.pendq) == 0 && !s.pend
}

func (c *Checker) describe(s *state) string {
	out := ""
	for n := 0; n < c.nodes; n++ {
		t := &s.lines[n]
		if t.Valid {
			out += fmt.Sprintf("n%d{links=%v root=%d isRoot=%v touched=%v lv=%v} ", n, t.Links, t.RootDir, t.IsRoot, t.Touched, t.LocalV)
		}
	}
	var msgs []string
	for n := 0; n < c.nodes; n++ {
		for d := 0; d < 4; d++ {
			for _, m := range s.chans[n*4+d] {
				msgs = append(msgs, fmt.Sprintf("%s@%d->%d", msgNames[m.Type], n, d))
			}
		}
		for _, m := range s.nicq[n] {
			msgs = append(msgs, fmt.Sprintf("nic%d:%s", n, msgNames[m.Type]))
		}
	}
	sort.Strings(msgs)
	return out + fmt.Sprint(msgs, " homeq=", len(s.homeq), " pend=", s.pend)
}
