// Package mcheck is the repository's stand-in for the paper's Murφ
// verification (Section 2.4): an explicit-state model checker that
// exhaustively explores a reduced model of the in-network MSI protocol and
// checks coherence and sequential-consistency invariants in every reachable
// state.
//
// The reduced model mirrors the paper's: a small mesh, a single cache line,
// a bounded set of concurrent operations ("multiple concurrent reads and up
// to two concurrent writes"), message-type-accurate protocol transitions
// (RD_REQ, RD_REPLY, WR_REQ, WR_REPLY, TEARDOWN, TD_ACK), FIFO channels
// between adjacent routers, and atomic above-network data accesses. Tree
// cache capacity conflicts, evictions and the timeout recovery they require
// are outside the backbone being checked, exactly as in the paper's Murφ
// spec.
package mcheck

import (
	"fmt"
	"sort"
)

// Mesh geometry of the reduced model.
const (
	meshW = 2
	meshH = 2
	nodes = meshW * meshH
)

// Directions, matching the full simulator's encoding.
const (
	dirN = iota
	dirS
	dirE
	dirW
	dirNone
)

func opposite(d int) int {
	switch d {
	case dirN:
		return dirS
	case dirS:
		return dirN
	case dirE:
		return dirW
	case dirW:
		return dirE
	}
	return dirNone
}

func neighbor(n, d int) int {
	x, y := n%meshW, n/meshW
	switch d {
	case dirN:
		y--
	case dirS:
		y++
	case dirE:
		x++
	case dirW:
		x--
	}
	if x < 0 || x >= meshW || y < 0 || y >= meshH {
		return -1
	}
	return y*meshW + x
}

func xyTo(from, to int) int {
	fx, fy := from%meshW, from/meshW
	tx, ty := to%meshW, to/meshW
	switch {
	case tx > fx:
		return dirE
	case tx < fx:
		return dirW
	case ty > fy:
		return dirS
	case ty < fy:
		return dirN
	}
	return dirNone
}

// Message types.
const (
	mRdReq = iota
	mRdReply
	mWrReq
	mWrReply
	mTeardown
	mTdAck
)

var msgNames = [...]string{"RD_REQ", "RD_REPLY", "WR_REQ", "WR_REPLY", "TEARDOWN", "TD_ACK"}

// msg is a protocol message in flight. Op identifies the operation it
// serves (-1 for teardowns/acks). Ver is the data version carried by read
// replies. Root marks fresh-tree replies. Built mirrors the simulator's
// BuiltLast.
type msg struct {
	Type  int8
	Op    int8
	Ver   int8
	Root  bool
	Built bool
	// HomeServe marks a request that owns the home-serve window (the
	// model's rendering of the simulator's Msg.HomeServe).
	HomeServe bool
}

// treeLine is the reduced virtual tree cache line.
type treeLine struct {
	Valid    bool
	Touched  bool
	IsRoot   bool
	RootDir  int8
	Links    [4]bool
	LocalV   bool // local data copy valid
	Anchored bool // outstanding-request bit: a reply anchored this line
}

func (t *treeLine) linkCount() int {
	c := 0
	for _, b := range t.Links {
		if b {
			c++
		}
	}
	return c
}

func (t *treeLine) onlyLink() int {
	for d, b := range t.Links {
		if b {
			return d
		}
	}
	return dirNone
}

// Data cache states.
const (
	dInvalid = iota
	dShared
	dModified
)

// Op phases.
const (
	opNotIssued = iota
	opInFlight
	opDone
)

// Op is one memory operation of the model's concurrent program.
type Op struct {
	Node  int
	Write bool
}

// opState tracks an operation's progress and, for reads, the version it
// sampled.
type opState struct {
	Phase   int8
	Sampled int8
}

// state is one global protocol state. Channels are FIFO per directed mesh
// edge; nicq are the above-network service queues; homeq holds requests
// queued at the home during teardown; pending marks the home-serve
// serialization window.
type state struct {
	lines [nodes]treeLine
	data  [nodes]int8 // dInvalid/dShared/dModified
	dver  [nodes]int8
	memV  int8
	wrote int8 // committed writes so far
	ops   []opState
	chans [nodes][4][]msg // outgoing FIFO per direction
	nicq  [nodes][]msg
	homeq []msg // queued while the tree is being torn down
	pendq []msg // queued while a home serve is in flight
	pend  bool
}

func (s *state) clone() *state {
	c := *s
	c.ops = append([]opState(nil), s.ops...)
	for n := 0; n < nodes; n++ {
		for d := 0; d < 4; d++ {
			c.chans[n][d] = append([]msg(nil), s.chans[n][d]...)
		}
		c.nicq[n] = append([]msg(nil), s.nicq[n]...)
	}
	c.homeq = append([]msg(nil), s.homeq...)
	c.pendq = append([]msg(nil), s.pendq...)
	return &c
}

// key builds a canonical encoding for the visited set.
func (s *state) key() string {
	b := make([]byte, 0, 128)
	for n := 0; n < nodes; n++ {
		t := &s.lines[n]
		var flags byte
		if t.Valid {
			flags |= 1
		}
		if t.Touched {
			flags |= 2
		}
		if t.IsRoot {
			flags |= 4
		}
		if t.LocalV {
			flags |= 8
		}
		if t.Anchored {
			flags |= 16
		}
		b = append(b, flags, byte(t.RootDir))
		var lb byte
		for d := 0; d < 4; d++ {
			if t.Links[d] {
				lb |= 1 << d
			}
		}
		b = append(b, lb, byte(s.data[n]), byte(s.dver[n]))
	}
	b = append(b, byte(s.memV), byte(s.wrote))
	for _, o := range s.ops {
		b = append(b, byte(o.Phase), byte(o.Sampled))
	}
	enc := func(q []msg) {
		b = append(b, byte(len(q)))
		for _, m := range q {
			var f byte
			if m.Root {
				f |= 1
			}
			if m.Built {
				f |= 2
			}
			if m.HomeServe {
				f |= 4
			}
			b = append(b, byte(m.Type), byte(m.Op), byte(m.Ver), f)
		}
	}
	for n := 0; n < nodes; n++ {
		for d := 0; d < 4; d++ {
			enc(s.chans[n][d])
		}
		enc(s.nicq[n])
	}
	enc(s.homeq)
	enc(s.pendq)
	if s.pend {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(b)
}

// Result summarizes a model-checking run.
type Result struct {
	States      int
	Transitions int
	// Violations lists invariant failures (empty on success).
	Violations []string
	// Deadlocks lists non-terminal states with no enabled transition.
	Deadlocks []string
	// Terminals counts fully drained end states.
	Terminals int
}

// Checker runs the exploration.
type Checker struct {
	Home      int
	Ops       []Op
	MaxStates int

	// DisableAckHold and DisableAnchor switch off two protocol
	// protections (the outstanding-request acknowledgment hold and the
	// completion anchor). They exist for mutation tests that prove the
	// checker detects the races those protections close.
	DisableAckHold bool
	DisableAnchor  bool

	violations []string
	deadlocks  []string
}

// New returns a checker for the given concurrent program. home is the
// line's home node.
func New(home int, ops []Op) *Checker {
	return &Checker{Home: home, Ops: ops, MaxStates: 2_000_000}
}

// DefaultProgram mirrors the paper's Murφ bound: concurrent reads on two
// nodes and two concurrent writes.
func DefaultProgram() (home int, ops []Op) {
	return 0, []Op{
		{Node: 1, Write: false},
		{Node: 2, Write: false},
		{Node: 3, Write: true},
		{Node: 1, Write: true},
	}
}

// Run explores the full state space with BFS and returns the result.
func (c *Checker) Run() Result {
	init := &state{}
	init.ops = make([]opState, len(c.Ops))
	for n := 0; n < nodes; n++ {
		init.data[n] = dInvalid
		init.lines[n].RootDir = dirNone
	}
	type edge struct {
		parent string
		label  string
	}
	parents := map[string]edge{}
	visited := map[string]bool{init.key(): true}
	frontier := []*state{init}
	res := Result{States: 1}
	trace := func(k string) string {
		var labels []string
		for {
			e, ok := parents[k]
			if !ok {
				break
			}
			labels = append(labels, e.label)
			k = e.parent
		}
		out := ""
		for i := len(labels) - 1; i >= 0; i-- {
			out += labels[i] + "; "
		}
		return out
	}
	for len(frontier) > 0 && res.States < c.MaxStates && len(c.violations) == 0 {
		s := frontier[0]
		frontier = frontier[1:]
		sk := s.key()
		vpre := len(c.violations)
		succs := c.successors(s)
		for i := vpre; i < len(c.violations); i++ {
			c.violations[i] += "\n  trace: " + trace(sk)
		}
		if len(succs) == 0 {
			if c.isTerminal(s) {
				res.Terminals++
				c.checkTerminal(s)
			} else if len(c.deadlocks) < 2 {
				c.deadlocks = append(c.deadlocks, c.describe(s)+"\n  trace: "+trace(sk))
			}
			continue
		}
		for _, ns := range succs {
			res.Transitions++
			pre := len(c.violations)
			c.checkInvariants(ns.s)
			k := ns.s.key()
			if len(c.violations) > pre {
				c.violations[len(c.violations)-1] += "\n  trace: " + trace(sk) + ns.label
			}
			if !visited[k] {
				visited[k] = true
				parents[k] = edge{parent: sk, label: ns.label}
				res.States++
				frontier = append(frontier, ns.s)
			}
		}
	}
	res.Violations = c.violations
	res.Deadlocks = c.deadlocks
	return res
}

func (c *Checker) isTerminal(s *state) bool {
	for _, o := range s.ops {
		if o.Phase != opDone {
			return false
		}
	}
	for n := 0; n < nodes; n++ {
		for d := 0; d < 4; d++ {
			if len(s.chans[n][d]) > 0 {
				return false
			}
		}
		if len(s.nicq[n]) > 0 {
			return false
		}
	}
	return len(s.homeq) == 0 && len(s.pendq) == 0 && !s.pend
}

func (c *Checker) fail(format string, args ...interface{}) {
	if len(c.violations) < 10 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func (c *Checker) describe(s *state) string {
	out := ""
	for n := 0; n < nodes; n++ {
		t := &s.lines[n]
		if t.Valid {
			out += fmt.Sprintf("n%d{links=%v root=%d isRoot=%v touched=%v lv=%v} ", n, t.Links, t.RootDir, t.IsRoot, t.Touched, t.LocalV)
		}
	}
	var msgs []string
	for n := 0; n < nodes; n++ {
		for d := 0; d < 4; d++ {
			for _, m := range s.chans[n][d] {
				msgs = append(msgs, fmt.Sprintf("%s@%d->%d", msgNames[m.Type], n, d))
			}
		}
		for _, m := range s.nicq[n] {
			msgs = append(msgs, fmt.Sprintf("nic%d:%s", n, msgNames[m.Type]))
		}
	}
	sort.Strings(msgs)
	return out + fmt.Sprint(msgs, " homeq=", len(s.homeq), " pend=", s.pend)
}
