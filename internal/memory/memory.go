// Package memory models the off-chip main memory: a flat, fixed-latency
// (nominally 200-cycle) backing store, exactly as the paper's Table 2
// configures it.
//
// For verification, the simulator does not move real data. Every cache line
// carries a version number: a line's version is incremented by each
// system-wide write, and the value a read returns is the version it observed.
// Main memory stores the last version written back per line, so the paper's
// runtime coherence check ("the value being written to the data cache
// [matches] the value held in main memory", Section 2.4) becomes a version
// comparison.
package memory

import "sync"

// Memory is the off-chip backing store. The mutex guards the version map
// and access counters: home-node memory reads and teardown writebacks fire
// from the sharded route phase. Per-line version monotonicity makes the
// writeback result independent of same-cycle lock order, and same-cycle
// accesses to one line are serialized by the protocol itself.
type Memory struct {
	mu       sync.Mutex
	latency  int64
	versions map[uint64]uint64

	// Reads and Writebacks count accesses for reporting (guarded by mu).
	Reads      int64
	Writebacks int64
}

// New returns a memory with the given access latency in cycles.
func New(latency int64) *Memory {
	return &Memory{latency: latency, versions: make(map[uint64]uint64)}
}

// Latency returns the access latency in cycles. Callers model the delay by
// scheduling their continuation this many cycles in the future.
func (m *Memory) Latency() int64 { return m.latency }

// Read returns the version currently stored for line addr. Lines never
// written back read as version zero, the initial state of all of memory.
func (m *Memory) Read(addr uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Reads++
	return m.versions[addr]
}

// Peek is Read without access accounting, for verifiers.
func (m *Memory) Peek(addr uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.versions[addr]
}

// Writeback records that version v of line addr has been written back.
// Writebacks carry monotonically increasing versions per line; an
// out-of-order (stale) writeback is ignored rather than allowed to roll the
// line backward, mirroring how real memory controllers squash a stale
// writeback that races a later owner's.
func (m *Memory) Writeback(addr uint64, v uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Writebacks++
	if v > m.versions[addr] {
		m.versions[addr] = v
	}
}

// Lines returns how many distinct lines have ever been written back.
func (m *Memory) Lines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.versions)
}

// Snapshot returns a copy of the per-line version map, for end-state
// verification.
func (m *Memory) Snapshot() map[uint64]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]uint64, len(m.versions))
	for a, v := range m.versions {
		out[a] = v
	}
	return out
}
