package memory

import (
	"testing"
	"testing/quick"
)

func TestFreshMemoryReadsZero(t *testing.T) {
	m := New(200)
	if v := m.Read(42); v != 0 {
		t.Fatalf("fresh memory read %d, want 0", v)
	}
	if m.Latency() != 200 {
		t.Fatalf("latency %d, want 200", m.Latency())
	}
}

func TestWritebackThenRead(t *testing.T) {
	m := New(200)
	m.Writeback(7, 3)
	if v := m.Read(7); v != 3 {
		t.Fatalf("read %d, want 3", v)
	}
	if v := m.Read(8); v != 0 {
		t.Fatalf("unwritten line read %d, want 0", v)
	}
}

func TestStaleWritebackIgnored(t *testing.T) {
	m := New(200)
	m.Writeback(1, 5)
	m.Writeback(1, 3) // stale
	if v := m.Peek(1); v != 5 {
		t.Fatalf("stale writeback rolled memory back to %d", v)
	}
	m.Writeback(1, 6)
	if v := m.Peek(1); v != 6 {
		t.Fatalf("newer writeback not applied: %d", v)
	}
}

func TestAccounting(t *testing.T) {
	m := New(200)
	m.Read(1)
	m.Read(2)
	m.Writeback(1, 1)
	if m.Reads != 2 || m.Writebacks != 1 {
		t.Fatalf("accounting %d/%d, want 2/1", m.Reads, m.Writebacks)
	}
	if m.Peek(1); m.Reads != 2 {
		t.Fatal("Peek affected accounting")
	}
	if m.Lines() != 1 {
		t.Fatalf("Lines=%d, want 1", m.Lines())
	}
}

// Property: memory versions are monotone non-decreasing per line no matter
// the writeback order.
func TestVersionMonotoneProperty(t *testing.T) {
	err := quick.Check(func(writes []uint8) bool {
		m := New(1)
		last := uint64(0)
		for _, w := range writes {
			m.Writeback(0, uint64(w))
			v := m.Peek(0)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
