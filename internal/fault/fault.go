// Package fault is the deterministic fault-injection and recovery
// subsystem: it decides, as a pure function of a seed, where and when the
// network loses, corrupts or stalls packets, and it defines the typed
// errors the rest of the stack uses to report recovery failures loudly.
//
// A Spec is the human-written description of a fault campaign (rates,
// window, scope, recovery knobs), parsed from the compact key=value form
// the CLI's -faults flag takes. Spec.Plan binds a spec to a seed,
// producing a Plan whose per-(cycle, router, port) decisions are stateless
// hash lookups: two runs with the same plan see the identical fault
// schedule regardless of worker parallelism, wall-clock order or how often
// a site is queried, and a plan occupies no memory beyond its seed. Seeds
// are expected to come from the experiment layer's splitmix64 derivation
// chain, so fault schedules inherit the repository-wide byte-identical
// reproducibility guarantee.
//
// The package deliberately knows nothing about routers, packets or
// protocol messages — it answers "does site X fail at cycle T" and names
// failure outcomes. The network layer consults the plan at its link-grant
// and pipeline-exit points; the protocol layer implements the recovery
// (timeout, bounded retry with exponential backoff, hang watchdog) and
// wraps unrecoverable outcomes in this package's error types.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// ppmScale is the rate denominator: rates are parts-per-million, so a rate
// of 1_000_000 fires at every opportunity.
const ppmScale = 1_000_000

// Scope selects which packets injected drops may remove.
type Scope uint8

const (
	// ScopeRetryable drops only packets the protocol can reissue from
	// scratch (coherence requests). Runs under this scope must complete
	// coherently as long as the retry budget holds.
	ScopeRetryable Scope = iota
	// ScopeAll drops any packet on an inter-router link, including
	// replies, invalidations and teardowns the protocol cannot replay.
	// Chaos runs under this scope are expected to wedge; the watchdog
	// turns the wedge into a typed, reproducible failure.
	ScopeAll
)

func (s Scope) String() string {
	if s == ScopeAll {
		return "all"
	}
	return "req"
}

// Spec describes one fault campaign plus the recovery configuration that
// accompanies it. The zero value injects nothing; DefaultSpec fills in the
// recovery defaults ParseSpec starts from.
type Spec struct {
	// DropPPM, CorruptPPM and StallPPM are per-opportunity fault rates in
	// parts per million. Drops remove a packet at an inter-router link
	// grant; corruptions flip the packet's integrity word on a link so
	// the next router's checksum verification discards it; stalls freeze
	// an output link for whole windows of StallLen cycles.
	DropPPM    uint32
	CorruptPPM uint32
	StallPPM   uint32

	// StallLen is the stall window length in cycles: stall sampling is
	// per window, so a sampled window freezes its link for StallLen
	// consecutive cycles.
	StallLen int64

	// Start and End bound the injection window in cycles; End == 0 leaves
	// it open-ended. Faults fire only at cycles in [Start, End).
	Start, End int64

	// Scope selects which packets drops may remove (see Scope).
	Scope Scope

	// Timeout is the protocol-level per-request reply timeout in cycles;
	// 0 disables timeout/retry recovery entirely. Budget bounds reissues
	// per access (exceeding it fails the run with RetryExhaustedError)
	// and Backoff is the base reissue delay, doubled every attempt.
	Timeout int64
	Budget  int
	Backoff int64

	// Probe is the runtime coherence-invariant probe interval in cycles
	// (0 disables probing).
	Probe int64

	// LinkTargeted restricts injection to the one directed inter-router
	// link (LinkRouter, LinkPort), spec key "link=router:port"
	// ("link=*", the default, targets every link). The namespace is the
	// active topology's: port p on router r is exactly the Link{From: r,
	// Port: p} entry that Topology.Links enumerates, so a torus
	// wraparound link or a ring port is as targetable as a mesh edge.
	// The zero value (untargeted) leaves every link eligible.
	LinkTargeted         bool
	LinkRouter, LinkPort int
}

// DefaultSpec returns the spec ParseSpec starts from: no injection, and
// recovery defaults sized so a retried request comfortably outlives the
// worst-case tree walk (timeout 25000 cycles, 3 reissues, base backoff 64).
func DefaultSpec() Spec {
	return Spec{StallLen: 8, Timeout: 25_000, Budget: 3, Backoff: 64}
}

// Injecting reports whether the spec schedules any faults at all.
func (s Spec) Injecting() bool {
	return s.DropPPM != 0 || s.CorruptPPM != 0 || s.StallPPM != 0
}

// String renders the spec in the canonical full form ParseSpec accepts.
// Every field is emitted in a fixed order, so ParseSpec(s.String()) == s
// for any valid spec (the fuzz target holds this as an invariant).
func (s Spec) String() string {
	link := "*"
	if s.LinkTargeted {
		link = fmt.Sprintf("%d:%d", s.LinkRouter, s.LinkPort)
	}
	return fmt.Sprintf("drop=%d,corrupt=%d,stall=%d,stalllen=%d,window=%d:%d,scope=%s,link=%s,timeout=%d,retries=%d,backoff=%d,probe=%d",
		s.DropPPM, s.CorruptPPM, s.StallPPM, s.StallLen, s.Start, s.End, s.Scope, link, s.Timeout, s.Budget, s.Backoff, s.Probe)
}

// Validate reports spec field combinations no run can honor.
func (s Spec) Validate() error {
	switch {
	case s.DropPPM > ppmScale || s.CorruptPPM > ppmScale || s.StallPPM > ppmScale:
		return fmt.Errorf("fault: rates are parts per million, max %d (got drop=%d corrupt=%d stall=%d)",
			ppmScale, s.DropPPM, s.CorruptPPM, s.StallPPM)
	case s.StallLen < 1:
		return fmt.Errorf("fault: stalllen %d < 1", s.StallLen)
	case s.Start < 0 || s.End < 0:
		return fmt.Errorf("fault: negative window [%d,%d)", s.Start, s.End)
	case s.End != 0 && s.End <= s.Start:
		return fmt.Errorf("fault: empty window [%d,%d)", s.Start, s.End)
	case s.Scope > ScopeAll:
		return fmt.Errorf("fault: unknown scope %d", s.Scope)
	case s.Timeout < 0 || s.Budget < 0 || s.Backoff < 0 || s.Probe < 0:
		return fmt.Errorf("fault: negative recovery knob (timeout=%d retries=%d backoff=%d probe=%d)",
			s.Timeout, s.Budget, s.Backoff, s.Probe)
	case s.LinkTargeted && (s.LinkRouter < 0 || s.LinkPort < 0):
		return fmt.Errorf("fault: bad link target %d:%d", s.LinkRouter, s.LinkPort)
	case !s.LinkTargeted && (s.LinkRouter != 0 || s.LinkPort != 0):
		return fmt.Errorf("fault: link coordinates set without a target (use LinkTargeted)")
	}
	return nil
}

// ParseSpec parses the compact key=value,... fault spec the CLI takes,
// e.g. "drop=500,retries=5" or "stall=1000000,scope=all,timeout=0".
// Unset keys keep their DefaultSpec values; an empty string is the default
// spec (recovery armed, nothing injected). Keys:
//
//	drop, corrupt, stall   fault rates in parts per million (0..1000000)
//	stalllen               stall window length in cycles (default 8)
//	window                 injection window "start:end" (end empty or 0 = open)
//	scope                  "req" (retryable requests only, default) or "all"
//	link                   target one directed link "router:port" ("*" = all,
//	                       default); ports follow the active topology's
//	                       namespace (see network.Topology.Links)
//	timeout                per-request reply timeout in cycles (0 = no retry)
//	retries                retry budget per access (default 3)
//	backoff                base reissue backoff in cycles (default 64)
//	probe                  invariant probe interval in cycles (0 = off)
func ParseSpec(text string) (Spec, error) {
	s := DefaultSpec()
	if strings.TrimSpace(text) == "" {
		return s, nil
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			s.DropPPM, err = parsePPM(val)
		case "corrupt":
			s.CorruptPPM, err = parsePPM(val)
		case "stall":
			s.StallPPM, err = parsePPM(val)
		case "stalllen":
			s.StallLen, err = parseInt(val)
		case "window":
			err = parseWindow(val, &s.Start, &s.End)
		case "scope":
			switch val {
			case "req":
				s.Scope = ScopeRetryable
			case "all":
				s.Scope = ScopeAll
			default:
				err = fmt.Errorf("want req or all, got %q", val)
			}
		case "link":
			if val == "*" {
				s.LinkTargeted, s.LinkRouter, s.LinkPort = false, 0, 0
				break
			}
			r, p, ok := strings.Cut(val, ":")
			var ri, pi int64
			var err2 error
			if ok {
				ri, err = parseInt(r)
				pi, err2 = parseInt(p)
			}
			if !ok || err != nil || err2 != nil {
				err = fmt.Errorf("want router:port or *, got %q", val)
				break
			}
			s.LinkTargeted, s.LinkRouter, s.LinkPort = true, int(ri), int(pi)
		case "timeout":
			s.Timeout, err = parseInt(val)
		case "retries":
			var n int64
			n, err = parseInt(val)
			s.Budget = int(n)
		case "backoff":
			s.Backoff, err = parseInt(val)
		case "probe":
			s.Probe, err = parseInt(val)
		default:
			return Spec{}, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad %s: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parsePPM(val string) (uint32, error) {
	n, err := strconv.ParseUint(val, 10, 32)
	if err != nil {
		return 0, err
	}
	if n > ppmScale {
		return 0, fmt.Errorf("rate %d exceeds %d ppm", n, ppmScale)
	}
	return uint32(n), nil
}

func parseInt(val string) (int64, error) {
	return strconv.ParseInt(val, 10, 64)
}

func parseWindow(val string, start, end *int64) error {
	lo, hi, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want start:end, got %q", val)
	}
	var err error
	if *start, err = parseInt(lo); err != nil {
		return err
	}
	if hi == "" {
		*end = 0
		return nil
	}
	*end, err = parseInt(hi)
	return err
}

// Plan binds a Spec to a seed: a complete, self-contained fault schedule.
// Every query is a pure hash of (seed, site, cycle) — a plan never
// pre-generates or remembers anything, so schedules over billions of
// cycles cost nothing and identical plans always agree.
type Plan struct {
	Spec Spec
	Seed uint64
}

// Plan binds the spec to a seed.
func (s Spec) Plan(seed uint64) Plan { return Plan{Spec: s, Seed: seed} }

// Domain separators for the three sampling streams, spread across the high
// byte so the streams decorrelate even before mixing.
const (
	kindDrop uint64 = iota + 1
	kindCorrupt
	kindStall
)

// active reports whether cycle falls inside the injection window.
func (p Plan) active(cycle int64) bool {
	return cycle >= p.Spec.Start && (p.Spec.End == 0 || cycle < p.Spec.End)
}

// onLink reports whether the (router, port) site is inside the spec's link
// namespace: every link, or the one targeted directed link.
func (p Plan) onLink(router, port int) bool {
	return !p.Spec.LinkTargeted || (router == p.Spec.LinkRouter && port == p.Spec.LinkPort)
}

// sample hashes one (stream, cycle, router, port) site into [0, ppmScale).
// Same mixing discipline as the experiment layer's seed derivation: fold
// the coordinates into the seed, then two splitmix64 rounds.
func (p Plan) sample(kind uint64, cycle int64, router, port int) uint64 {
	x := p.Seed ^ uint64(cycle)*0x9E3779B97F4A7C15
	x ^= kind<<56 ^ uint64(router)<<8 ^ uint64(port)
	x = splitmix(x + 0x9E3779B97F4A7C15)
	x = splitmix(x + 0x9E3779B97F4A7C15)
	return x % ppmScale
}

// DropAt reports whether the plan drops a packet granted the (router,
// port) output link at cycle.
func (p Plan) DropAt(cycle int64, router, port int) bool {
	return p.Spec.DropPPM != 0 && p.active(cycle) && p.onLink(router, port) &&
		p.sample(kindDrop, cycle, router, port) < uint64(p.Spec.DropPPM)
}

// CorruptAt reports whether the plan corrupts a packet crossing the
// (router, port) link at cycle.
func (p Plan) CorruptAt(cycle int64, router, port int) bool {
	return p.Spec.CorruptPPM != 0 && p.active(cycle) && p.onLink(router, port) &&
		p.sample(kindCorrupt, cycle, router, port) < uint64(p.Spec.CorruptPPM)
}

// StallAt reports whether the (router, port) output link is frozen at
// cycle. Stalls are sampled per StallLen-cycle window so a fault freezes
// the link for a contiguous stretch, as a transient electrical or
// backpressure fault would.
func (p Plan) StallAt(cycle int64, router, port int) bool {
	if p.Spec.StallPPM == 0 || !p.active(cycle) || !p.onLink(router, port) {
		return false
	}
	return p.sample(kindStall, cycle/p.Spec.StallLen, router, port) < uint64(p.Spec.StallPPM)
}

// splitmix is splitmix64's output function, the same mixer the experiment
// layer derives job seeds with.
func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DropReason distinguishes the two ways the fault layer removes a packet.
type DropReason uint8

const (
	// DropInjected: the plan dropped the packet at a link grant.
	DropInjected DropReason = iota
	// DropChecksum: a router's integrity check caught an in-flight
	// corruption and discarded the packet.
	DropChecksum
)

func (r DropReason) String() string {
	if r == DropChecksum {
		return "checksum"
	}
	return "injected"
}

// Injector is the live per-run fault state the mesh consults: the plan
// plus fault-occurrence counters. Counting lives here (not in the network
// metrics) so fault totals exist even in metrics-free runs and can be
// folded into the protocol counter map at the end of a run.
type Injector struct {
	Plan Plan

	// Drops counts plan-injected drops, ChecksumDrops packets discarded
	// by corruption detection, Corruptions in-flight corruptions
	// injected, and StallCycles link-grant cycles lost to stalls.
	// Routers on different shards bump these concurrently mid-tick, so
	// all updates go through sync/atomic; readers load them between
	// cycles, where plain reads are already ordered by the barrier.
	Drops         int64
	ChecksumDrops int64
	Corruptions   int64
	StallCycles   int64
}

// DropAt, CorruptAt and StallAt wrap the plan queries with occurrence
// counting; the network calls these on its hot path.
func (i *Injector) DropAt(cycle int64, router, port int) bool {
	if !i.Plan.DropAt(cycle, router, port) {
		return false
	}
	atomic.AddInt64(&i.Drops, 1)
	return true
}

func (i *Injector) CorruptAt(cycle int64, router, port int) bool {
	if !i.Plan.CorruptAt(cycle, router, port) {
		return false
	}
	atomic.AddInt64(&i.Corruptions, 1)
	return true
}

func (i *Injector) StallAt(cycle int64, router, port int) bool {
	if !i.Plan.StallAt(cycle, router, port) {
		return false
	}
	atomic.AddInt64(&i.StallCycles, 1)
	return true
}
