package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestParseSpecEmptyIsDefault(t *testing.T) {
	for _, text := range []string{"", "  ", ",", " , "} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if s != DefaultSpec() {
			t.Fatalf("ParseSpec(%q) = %+v, want DefaultSpec %+v", text, s, DefaultSpec())
		}
	}
	if DefaultSpec().Injecting() {
		t.Fatal("DefaultSpec must not inject anything")
	}
}

func TestParseSpecFields(t *testing.T) {
	s, err := ParseSpec("drop=500,corrupt=20,stall=1000,stalllen=16,window=100:900,scope=all,timeout=4000,retries=7,backoff=32,probe=250")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{DropPPM: 500, CorruptPPM: 20, StallPPM: 1000, StallLen: 16,
		Start: 100, End: 900, Scope: ScopeAll, Timeout: 4000, Budget: 7, Backoff: 32, Probe: 250}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
	if !s.Injecting() {
		t.Fatal("spec with non-zero rates must report Injecting")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, text := range []string{
		"",
		"drop=1",
		"drop=1000000,scope=all",
		"corrupt=333,window=5:0",
		"stall=250000,stalllen=64,timeout=0,retries=0,backoff=1,probe=100",
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if back != s {
			t.Fatalf("round trip of %q: %+v != %+v", text, back, s)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, text := range []string{
		"drop",         // not key=value
		"frob=1",       // unknown key
		"drop=x",       // not a number
		"drop=1000001", // above ppm scale
		"drop=-1",      // negative rate
		"scope=maybe",  // unknown scope
		"window=9",     // not start:end
		"window=10:5",  // empty window
		"window=-1:5",  // negative start
		"stalllen=0",   // sub-cycle stall window
		"timeout=-5",   // negative recovery knob
		"retries=-1",   // negative budget
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", text)
		}
	}
}

// TestPlanDeterminism: a plan is a pure function of (seed, site, cycle) —
// re-querying in any order reproduces the identical schedule, and a
// different seed produces a different one.
func TestPlanDeterminism(t *testing.T) {
	spec, err := ParseSpec("drop=100000,corrupt=100000,stall=100000")
	if err != nil {
		t.Fatal(err)
	}
	schedule := func(seed uint64) []bool {
		p := spec.Plan(seed)
		var out []bool
		for cycle := int64(0); cycle < 200; cycle++ {
			for router := 0; router < 16; router++ {
				for port := 0; port < 5; port++ {
					out = append(out,
						p.DropAt(cycle, router, port),
						p.CorruptAt(cycle, router, port),
						p.StallAt(cycle, router, port))
				}
			}
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at query %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestPlanRateEndpoints(t *testing.T) {
	never := Plan{Spec: DefaultSpec(), Seed: 7}
	always := Plan{Spec: Spec{DropPPM: 1_000_000, CorruptPPM: 1_000_000,
		StallPPM: 1_000_000, StallLen: 8}, Seed: 7}
	for cycle := int64(0); cycle < 500; cycle++ {
		if never.DropAt(cycle, 3, 1) || never.CorruptAt(cycle, 3, 1) || never.StallAt(cycle, 3, 1) {
			t.Fatalf("zero-rate plan fired at cycle %d", cycle)
		}
		if !always.DropAt(cycle, 3, 1) || !always.CorruptAt(cycle, 3, 1) || !always.StallAt(cycle, 3, 1) {
			t.Fatalf("full-rate plan missed cycle %d", cycle)
		}
	}
}

func TestPlanWindow(t *testing.T) {
	spec := Spec{DropPPM: 1_000_000, StallLen: 8, Start: 100, End: 200}
	p := spec.Plan(9)
	for _, tc := range []struct {
		cycle int64
		want  bool
	}{{0, false}, {99, false}, {100, true}, {199, true}, {200, false}, {1 << 40, false}} {
		if got := p.DropAt(tc.cycle, 0, 0); got != tc.want {
			t.Errorf("DropAt(cycle=%d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}
	open := Spec{DropPPM: 1_000_000, StallLen: 8, Start: 50}
	if !open.Plan(9).DropAt(1<<40, 0, 0) {
		t.Error("open-ended window must stay active")
	}
}

// TestStallWindows: stall sampling is per StallLen-cycle window, so the
// verdict is constant across each window.
func TestStallWindows(t *testing.T) {
	spec := Spec{StallPPM: 300_000, StallLen: 16}
	p := spec.Plan(11)
	fired := 0
	for w := int64(0); w < 200; w++ {
		first := p.StallAt(w*16, 2, 3)
		if first {
			fired++
		}
		for c := w * 16; c < (w+1)*16; c++ {
			if p.StallAt(c, 2, 3) != first {
				t.Fatalf("stall verdict changed inside window %d at cycle %d", w, c)
			}
		}
	}
	if fired == 0 || fired == 200 {
		t.Fatalf("30%% stall rate hit %d/200 windows; sampling looks broken", fired)
	}
}

func TestInjectorCounts(t *testing.T) {
	i := &Injector{Plan: Plan{Spec: Spec{DropPPM: 1_000_000, CorruptPPM: 1_000_000,
		StallPPM: 1_000_000, StallLen: 8}, Seed: 1}}
	for c := int64(0); c < 10; c++ {
		i.DropAt(c, 0, 0)
		i.CorruptAt(c, 0, 0)
		i.StallAt(c, 0, 0)
	}
	if i.Drops != 10 || i.Corruptions != 10 || i.StallCycles != 10 {
		t.Fatalf("counters = drops %d corruptions %d stalls %d, want 10 each",
			i.Drops, i.Corruptions, i.StallCycles)
	}
}

func TestTransientClassification(t *testing.T) {
	hang := &HangError{Cycle: 10, Seed: 3}
	exhausted := &RetryExhaustedError{Node: 1, Addr: 0x40, Attempts: 4, Cycle: 9, Seed: 3}
	invariant := &InvariantError{Cycle: 5, Seed: 3, Violations: []string{"x"}}
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{hang, true},
		{exhausted, true},
		{fmt.Errorf("row failed: %w", hang), true},
		{fmt.Errorf("row failed: %w", exhausted), true},
		{invariant, false},
		{errors.New("panic: nil deref"), false},
		{nil, false},
	} {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestErrorMessagesCarrySeed(t *testing.T) {
	hang := &HangError{Cycle: 123, Seed: 0xabcd, Watchdog: true, Report: "r", DumpPath: "/tmp/d"}
	if s := hang.Error(); !strings.Contains(s, "stuck after 123") ||
		!strings.Contains(s, "0xabcd") || !strings.Contains(s, "/tmp/d") {
		t.Errorf("HangError message incomplete: %q", s)
	}
	ex := &RetryExhaustedError{Node: 2, Addr: 0x77, Write: true, Attempts: 4, Cycle: 9, Seed: 0xbeef}
	if s := ex.Error(); !strings.Contains(s, "0x77") || !strings.Contains(s, "0xbeef") ||
		!strings.Contains(s, "node 2") {
		t.Errorf("RetryExhaustedError message incomplete: %q", s)
	}
	inv := &InvariantError{Cycle: 8, Seed: 0xf00d, Violations: []string{"first", "second"}}
	if s := inv.Error(); !strings.Contains(s, "0xf00d") || !strings.Contains(s, "first") {
		t.Errorf("InvariantError message incomplete: %q", s)
	}
}
