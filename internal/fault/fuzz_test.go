package fault

import "testing"

// FuzzParseSpec holds the parser's contract over arbitrary input: it either
// rejects the string or returns a validated spec whose canonical String()
// form parses back to the identical spec, and whose plans are deterministic
// functions of the seed.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("drop=500")
	f.Add("drop=1000000,corrupt=1,stall=999999,stalllen=3,window=0:100,scope=all,timeout=1,retries=9,backoff=2,probe=5")
	f.Add("window=10:,scope=req")
	f.Add("stall=250000,stalllen=64")
	f.Add("drop=1000001")
	f.Add("scope=all,scope=req")
	f.Add("  drop = 5 ")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return // rejected input: nothing else to hold
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) returned invalid spec %+v: %v", text, s, verr)
		}
		canon := s.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", canon, text, err)
		}
		if back != s {
			t.Fatalf("canonical round trip of %q: %+v != %+v", text, back, s)
		}
		// Same seed, same schedule — sampled over a small site grid.
		p1, p2 := s.Plan(0x5eed), s.Plan(0x5eed)
		for cycle := int64(0); cycle < 64; cycle++ {
			for port := 0; port < 3; port++ {
				if p1.DropAt(cycle, 1, port) != p2.DropAt(cycle, 1, port) ||
					p1.CorruptAt(cycle, 1, port) != p2.CorruptAt(cycle, 1, port) ||
					p1.StallAt(cycle, 1, port) != p2.StallAt(cycle, 1, port) {
					t.Fatalf("plan of %q is not deterministic at cycle %d port %d", text, cycle, port)
				}
			}
		}
	})
}
