package fault

import (
	"errors"
	"fmt"
	"strings"
)

// HangError reports a run that failed to quiesce: either the kernel's hang
// watchdog saw a non-empty active set make no progress for a full window,
// or the cycle bound expired first. It replaces the silent formatted error
// the cycle-bound exit used to produce, carries the reproducer seed, and
// embeds the machine's stuck report (blocked nodes, in-flight packets,
// per-router queue occupancy).
type HangError struct {
	// Cycle is the simulation cycle the hang was declared at and Seed the
	// run seed that reproduces it.
	Cycle int64
	Seed  uint64
	// Watchdog is true when the no-progress watchdog tripped, false when
	// the run simply reached its cycle bound without quiescing.
	Watchdog bool
	// Report is the machine's stuck-state diagnosis.
	Report string
	// DumpPath is the hang dump file (flight recorder + queue occupancy)
	// written for this hang, empty when dumping was not configured.
	DumpPath string
}

func (e *HangError) Error() string {
	cause := "cycle bound reached without quiescence"
	if e.Watchdog {
		cause = "watchdog tripped: no progress with work outstanding"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault: hang (%s): stuck after %d cycles (reproducer seed %#x): %s",
		cause, e.Cycle, e.Seed, e.Report)
	if e.DumpPath != "" {
		fmt.Fprintf(&b, " [dump: %s]", e.DumpPath)
	}
	return b.String()
}

// RetryExhaustedError reports an access whose reissue budget ran out: the
// network kept losing the request chain (or replies kept timing out) more
// times than the configured retry budget allows.
type RetryExhaustedError struct {
	// Node, Addr and Write identify the access that could not complete.
	Node  int
	Addr  uint64
	Write bool
	// Attempts is the total number of issues (original plus reissues).
	Attempts int
	// Cycle is when the budget ran out; Seed reproduces the run.
	Cycle int64
	Seed  uint64
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("fault: retry budget exhausted: node %d addr %#x write=%v after %d attempts at cycle %d (reproducer seed %#x)",
		e.Node, e.Addr, e.Write, e.Attempts, e.Cycle, e.Seed)
}

// InvariantError reports a coherence-invariant violation caught by the
// runtime probe at the cycle it occurred — a corruption the end-state diff
// would otherwise only surface after the run.
type InvariantError struct {
	Cycle      int64
	Seed       uint64
	Violations []string
}

func (e *InvariantError) Error() string {
	first := "(none recorded)"
	if len(e.Violations) > 0 {
		first = e.Violations[0]
	}
	return fmt.Sprintf("fault: %d coherence invariant violations at cycle %d (reproducer seed %#x), first: %s",
		len(e.Violations), e.Cycle, e.Seed, first)
}

// Transient reports whether err is a failure a retried run (with a derived
// sub-seed) might not reproduce: hangs and exhausted retry budgets depend
// on the fault schedule, while panics, build errors and invariant
// violations are deterministic bugs that re-running cannot fix.
func Transient(err error) bool {
	var hang *HangError
	var retry *RetryExhaustedError
	return errors.As(err, &hang) || errors.As(err, &retry)
}
