// Integration tests for the fault subsystem: they drive the full protocol
// stack (both coherence engines over the NoC) under fault plans, so they
// live outside package fault and exercise exactly what the CLI's -faults
// flag runs.
package fault_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"innetcc/internal/fault"
	"innetcc/internal/metrics"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"

	// Engine builder registration for protocol.Build.
	_ "innetcc/internal/directory"
	_ "innetcc/internal/treecc"
)

// buildMachine constructs one simulation over profile p with the given
// fault plan and recovery config already applied to cfg.
func buildMachine(t *testing.T, kind protocol.EngineKind, cfg protocol.Config, p trace.Profile,
	accesses int, spec protocol.Spec) *protocol.Machine {
	t.Helper()
	spec.Config = cfg
	spec.Trace = trace.Generate(p, cfg.Nodes(), accesses, cfg.Seed)
	spec.Think = p.Think
	spec.Engine = kind
	m, err := protocol.Build(spec)
	if err != nil {
		t.Fatalf("%s/%s: Build: %v", kind, p.Name, err)
	}
	return m
}

// signature captures everything a run's outcome consists of: final cycle,
// local hits, the full latency book and every named counter. Two runs with
// equal signatures are byte-identical as far as any experiment table can
// observe.
func signature(m *protocol.Machine) string {
	names := m.Counters.Names()
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d localhits=%d lat=%+v", m.Kernel.Now(), m.LocalHits, m.Lat)
	for _, n := range names {
		fmt.Fprintf(&b, " %s=%d", n, m.Counters.Get(n))
	}
	return b.String()
}

// TestEmptyPlanByteIdentical is the acceptance gate for the whole fault
// layer: a zero-rate plan with every recovery knob armed must produce
// byte-identical results to a build with no fault layer at all — on both
// engines and under both kernel modes (active-set and always-tick).
func TestEmptyPlanByteIdentical(t *testing.T) {
	const accesses, seed = 120, 42
	p := trace.Benchmarks()[0]
	for _, kind := range protocol.EngineKinds() {
		for _, alwaysTick := range []bool{false, true} {
			name := fmt.Sprintf("%s/alwaysTick=%v", kind, alwaysTick)
			t.Run(name, func(t *testing.T) {
				base := protocol.DefaultConfig()
				base.Seed = seed
				plain := buildMachine(t, kind, base, p, accesses,
					protocol.Spec{AlwaysTick: alwaysTick})
				if err := plain.Run(20_000_000); err != nil {
					t.Fatalf("plain run: %v", err)
				}

				armed := base
				armed.RetryTimeout = 1_000_000 // armed but far beyond any real latency
				armed.RetryBudget = 3
				armed.RetryBackoff = 64
				armed.WatchdogCycles = 500_000
				zeroRate := fault.DefaultSpec() // Injecting() == false
				faulty := buildMachine(t, kind, armed, p, accesses,
					protocol.Spec{AlwaysTick: alwaysTick, Faults: &fault.Plan{Spec: zeroRate, Seed: 7}})
				if err := faulty.Run(20_000_000); err != nil {
					t.Fatalf("armed run: %v", err)
				}

				if a, b := signature(plain), signature(faulty); a != b {
					t.Errorf("empty fault plan changed the run:\n plain: %s\n armed: %s", a, b)
				}
			})
		}
	}
}

// TestDropPlanCompletesCoherently is the fault smoke test: under a seeded
// drop plan in the default (retryable-only) scope, both engines must absorb
// real packet loss and still quiesce with a coherent end state.
func TestDropPlanCompletesCoherently(t *testing.T) {
	const accesses, seed = 150, 42
	spec, err := fault.ParseSpec("drop=3000,timeout=200000,retries=6,backoff=64,probe=2000")
	if err != nil {
		t.Fatal(err)
	}
	p := trace.Benchmarks()[0]
	for _, kind := range protocol.EngineKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := protocol.DefaultConfig()
			cfg.Seed = seed
			cfg.RetryTimeout = spec.Timeout
			cfg.RetryBudget = spec.Budget
			cfg.RetryBackoff = spec.Backoff
			cfg.ProbeInterval = spec.Probe
			m := buildMachine(t, kind, cfg, p, accesses,
				protocol.Spec{Faults: &fault.Plan{Spec: spec, Seed: seed}})
			if err := m.Run(40_000_000); err != nil {
				t.Fatalf("run under drop plan failed: %v", err)
			}
			if v := m.Check.Violations(); len(v) > 0 {
				t.Fatalf("coherence violations under drop plan: %v", v)
			}
			if errs := m.EndState(kind.String()).SelfCheck(); len(errs) > 0 {
				t.Fatalf("end state corrupt: %v", errs)
			}
			drops := m.Counters.Get("fault.drops")
			if drops == 0 {
				t.Fatal("drop plan dropped nothing; smoke test is vacuous")
			}
			if m.Counters.Get("retry.reissues") == 0 {
				t.Fatalf("%d drops but no reissues; recovery never engaged", drops)
			}
			if m.Counters.Get("fault.probes") == 0 {
				t.Fatal("invariant probe never ran")
			}
			t.Logf("%s: drops=%d reissues=%d stale=%d probes=%d cycles=%d", kind,
				drops, m.Counters.Get("retry.reissues"),
				m.Counters.Get("retry.stale_replies"), m.Counters.Get("fault.probes"),
				m.Kernel.Now())
		})
	}
}

// TestRetryBudgetZeroFailsTyped: with injection on and a zero retry budget,
// the run must fail fast with a typed error naming the reproducer seed.
func TestRetryBudgetZeroFailsTyped(t *testing.T) {
	cfg := protocol.DefaultConfig()
	cfg.Seed = 0xc0ffee
	cfg.RetryTimeout = 1000
	cfg.RetryBudget = 0
	cfg.RetryBackoff = 16
	spec := fault.DefaultSpec()
	spec.DropPPM = 1_000_000 // every retryable packet dies at its first link
	m := buildMachine(t, protocol.KindTree, cfg, trace.Benchmarks()[0], 60,
		protocol.Spec{Faults: &fault.Plan{Spec: spec, Seed: 5}})
	err := m.Run(10_000_000)
	var ex *fault.RetryExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("got %v, want *fault.RetryExhaustedError", err)
	}
	if ex.Seed != cfg.Seed {
		t.Fatalf("error seed %#x, want reproducer %#x", ex.Seed, cfg.Seed)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%#x", cfg.Seed)) {
		t.Fatalf("error %q does not name the reproducer seed", err)
	}
	if !fault.Transient(err) {
		t.Fatal("retry exhaustion must classify as transient")
	}
}

// TestWatchdogTripDumpsFlightRecorder: a chaos plan that freezes every
// inter-router link makes routers spin without progress; the watchdog must
// trip, return a typed hang error, and write the flight-recorder dump.
func TestWatchdogTripDumpsFlightRecorder(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "hang-dump.txt")
	cfg := protocol.DefaultConfig()
	cfg.Seed = 0xdead
	cfg.WatchdogCycles = 5000
	spec := fault.DefaultSpec()
	spec.StallPPM = 1_000_000 // every link frozen, forever
	spec.Scope = fault.ScopeAll
	col := metrics.New(metrics.Options{FlightSize: 256})
	m := buildMachine(t, protocol.KindTree, cfg, trace.Benchmarks()[0], 60,
		protocol.Spec{
			Faults:       &fault.Plan{Spec: spec, Seed: 5},
			Metrics:      col,
			HangDumpPath: dump,
		})
	err := m.Run(2_000_000)
	var hang *fault.HangError
	if !errors.As(err, &hang) {
		t.Fatalf("got %v, want *fault.HangError", err)
	}
	if !hang.Watchdog {
		t.Fatal("hang error not attributed to the watchdog")
	}
	if hang.Seed != cfg.Seed {
		t.Fatalf("hang seed %#x, want reproducer %#x", hang.Seed, cfg.Seed)
	}
	if m.Kernel.Now() >= 2_000_000 {
		t.Fatalf("watchdog let the run burn its whole bound (cycle %d)", m.Kernel.Now())
	}
	if hang.DumpPath != dump {
		t.Fatalf("dump path %q, want %q", hang.DumpPath, dump)
	}
	body, rerr := os.ReadFile(dump)
	if rerr != nil {
		t.Fatalf("hang dump not written: %v", rerr)
	}
	for _, want := range []string{"hang dump:", "stuck:", "router queue occupancy:", "flight recorder"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dump missing %q section:\n%s", want, body)
		}
	}
	if !fault.Transient(err) {
		t.Fatal("hang must classify as transient")
	}
}

// TestCycleBoundHangIsTyped: even without the watchdog, exhausting the
// cycle bound before quiescence must return the same typed hang error
// (Watchdog false) so orchestration can classify and retry it.
func TestCycleBoundHangIsTyped(t *testing.T) {
	cfg := protocol.DefaultConfig()
	cfg.Seed = 0xdead
	spec := fault.DefaultSpec()
	spec.DropPPM = 1_000_000 // drop all requests, no retry armed: wedge
	m := buildMachine(t, protocol.KindTree, cfg, trace.Benchmarks()[0], 60,
		protocol.Spec{Faults: &fault.Plan{Spec: spec, Seed: 5}})
	err := m.Run(100_000)
	var hang *fault.HangError
	if !errors.As(err, &hang) {
		t.Fatalf("got %v, want *fault.HangError", err)
	}
	if hang.Watchdog {
		t.Fatal("cycle-bound hang misattributed to the watchdog")
	}
	if !strings.Contains(err.Error(), "stuck after") {
		t.Fatalf("hang error %q lacks the stuck report", err)
	}
}

// TestProbeAloneIsClean: the invariant probe on a fault-free run must find
// nothing, run at its configured cadence, and not prevent quiescence.
func TestProbeAloneIsClean(t *testing.T) {
	cfg := protocol.DefaultConfig()
	cfg.Seed = 42
	cfg.ProbeInterval = 500
	m := buildMachine(t, protocol.KindDirectory, cfg, trace.Benchmarks()[1], 100, protocol.Spec{})
	if err := m.Run(20_000_000); err != nil {
		t.Fatalf("probed fault-free run failed: %v", err)
	}
	if m.Counters.Get("fault.probes") == 0 {
		t.Fatal("probe never ran")
	}
}

// TestTargetedTorusWrapLinkDrop pins the topology-aware fault namespace:
// a drop plan targeted at one directed torus wraparound link (router 0's
// West port, which wraps to the east edge) must actually lose packets
// there — proving wrap links carry traffic and are addressable fault
// sites — while both engines still recover to a coherent end state.
func TestTargetedTorusWrapLinkDrop(t *testing.T) {
	const accesses, seed = 150, 42
	topo := network.Torus2D{W: 4, H: 4}
	// The targeted site must be a genuine wraparound: leaving node 0
	// westward lands on the opposite edge of the row.
	wrapTo, ok := topo.Neighbor(0, network.West)
	if !ok || wrapTo != 3 {
		t.Fatalf("torus wrap link broken: Neighbor(0, West) = %d, %v", wrapTo, ok)
	}
	spec, err := fault.ParseSpec("drop=200000,link=0:3,timeout=200000,retries=6,backoff=64")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.LinkTargeted || spec.LinkRouter != 0 || spec.LinkPort != int(network.West) {
		t.Fatalf("link target parsed wrong: %+v", spec)
	}
	p := trace.Benchmarks()[0]
	for _, kind := range protocol.EngineKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := protocol.DefaultConfig()
			cfg.Topology = network.TorusSpec(4, 4)
			cfg.Seed = seed
			cfg.RetryTimeout = spec.Timeout
			cfg.RetryBudget = spec.Budget
			cfg.RetryBackoff = spec.Backoff
			m := buildMachine(t, kind, cfg, p, accesses,
				protocol.Spec{Faults: &fault.Plan{Spec: spec, Seed: seed}})
			if err := m.Run(40_000_000); err != nil {
				t.Fatalf("run under wrap-link drop failed: %v", err)
			}
			if v := m.Check.Violations(); len(v) > 0 {
				t.Fatalf("coherence violations: %v", v)
			}
			drops := m.Counters.Get("fault.drops")
			if drops == 0 {
				t.Fatal("targeted wrap link dropped nothing; either no traffic wraps or the target is ignored")
			}
			if m.Counters.Get("retry.reissues") == 0 {
				t.Fatalf("%d drops but no reissues", drops)
			}
			t.Logf("%s: wrap-link drops=%d reissues=%d cycles=%d", kind,
				drops, m.Counters.Get("retry.reissues"), m.Kernel.Now())
		})
	}
	// Control: the same target on the open 4x4 mesh names a port with no
	// link (node 0 has no West neighbor), so no grant ever samples it and
	// nothing can drop. The namespace really is the topology's.
	t.Run("mesh-control", func(t *testing.T) {
		cfg := protocol.DefaultConfig()
		cfg.Seed = seed
		cfg.RetryTimeout = spec.Timeout
		cfg.RetryBudget = spec.Budget
		cfg.RetryBackoff = spec.Backoff
		m := buildMachine(t, protocol.KindTree, cfg, p, accesses,
			protocol.Spec{Faults: &fault.Plan{Spec: spec, Seed: seed}})
		if err := m.Run(40_000_000); err != nil {
			t.Fatalf("mesh control run failed: %v", err)
		}
		if drops := m.Counters.Get("fault.drops"); drops != 0 {
			t.Fatalf("mesh dropped %d packets on a link it does not have", drops)
		}
	})
}
