package treecc

import (
	"innetcc/internal/metrics"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
)

// Teardown and acknowledgment mechanics (paper Section 2.1):
//
// Teardowns percolate outward along virtual links from the initiating node,
// touching each line. A leaf converts the teardown into an acknowledgment
// sent back up its only link. A node forwards an acknowledgment — clearing
// its line — once acknowledgments have removed all but one of its links.
// Every acknowledgment terminates at the home node; when the home node's
// last link clears, the tree is gone and queued requests proceed.
//
// Teardowns and acks are hop-scoped packets: they carry the single link
// direction to traverse (Msg.ForcedDir), are consumed at the next router
// and respawn there as the protocol dictates, so they travel strictly along
// tree links and share FIFO/age order with the replies they may be chasing.
//
// Edges are normally symmetric (both endpoints hold the link bit), but a
// grafting reply that leaves the tree and re-enters it must not record the
// arrival link at the re-entered node: doing so would close a cycle, and
// cycles deadlock the acknowledgment collapse. Instead the re-entered node
// immediately sends an unlink acknowledgment (Msg.Unlink) back over the
// edge, erasing the sender's dangling bit while its line is still live, so
// teardown accounting always runs over a clean tree.

func (e *Engine) hopMsg(node int, t protocol.MsgType, addr uint64, out network.Dir) *network.Packet {
	return e.hopPacket(node, &protocol.Msg{Type: t, Addr: addr, ForcedDir: uint8(out)})
}

// hopPacket builds a hop-scoped packet spawning at node; ids come from the
// node's router-local sequence so route-phase construction needs no shared
// counter.
func (e *Engine) hopPacket(node int, msg *protocol.Msg) *network.Packet {
	return &network.Packet{
		ID:        e.m.Mesh.NextIDFor(node),
		Flits:     e.m.Cfg.CtrlFlits,
		Payload:   msg,
		Expedited: true,
	}
}

// processTeardown touches node's line for addr and propagates teardowns.
// arrival is the link the teardown came in on (DirNone for locally
// initiated teardowns: write requests bumping into the tree, proactive and
// conflict evictions, root-data eviction). clearArrival marks the abort
// teardown of a timed-out reply: the dangling link the reply had built is
// removed before normal processing. The returned packets must be spawned
// at the node's router.
func (e *Engine) processTeardown(node int, addr uint64, arrival network.Dir, clearArrival bool) []*network.Packet {
	line, ok := e.trees[node].Peek(addr)
	if !ok {
		return nil
	}
	if line.Touched {
		if clearArrival && arrival != network.DirNone && line.Links[arrival] {
			// An abort teardown still owns the dangling link it came
			// to remove; clearing it may complete the local collapse.
			line.Links[arrival] = false
			return e.collapse(node, addr, line)
		}
		// Crossing or duplicate teardown on a tree already being torn
		// down: redundant; every edge's ack comes from the collapse.
		return nil
	}
	if arrival != network.DirNone && clearArrival {
		line.Links[arrival] = false
		arrival = network.DirNone
	}
	line.Touched = true
	e.debugf(addr, "teardown touch n%d arrival=%v links=%v lv=%v isRoot=%v", node, arrival, line.Links, line.LocalValid, line.IsRoot)
	e.m.Counters.Inc("tree.teardowns", 1)
	e.m.Metrics.Event(e.m.Kernel.Now(), metrics.EvTeardown, int16(node), addr, int64(line.LinkCount()))
	// Invalidate the local data copy (D$: -> Invalid); the root's data is
	// captured for victim caching at the home node.
	if line.LocalValid && !e.hasBug(BugSkipInvalidate) {
		dl, had := e.m.InvalidateLine(node, addr, e.m.Kernel.Now())
		line.LocalValid = false
		if had && line.IsRoot {
			e.setRootData(addr, dl.Version)
		}
	}
	var spawns []*network.Packet
	var mask uint8
	fanout := 0
	for d := 0; d < e.deg; d++ {
		if line.Links[d] && network.Dir(d) != arrival {
			mask |= 1 << uint(d)
			fanout++
		}
	}
	if e.m.Cfg.Multicast && fanout > 1 {
		// Hardware multicast: one masked continuation; the router forks
		// it into per-link copies at the crossbar (see forkHop).
		e.m.Counters.Inc("tree.td_multicasts", 1)
		spawns = append(spawns, e.hopPacket(node,
			&protocol.Msg{Type: protocol.Teardown, Addr: addr, ForcedMask: mask}))
	} else {
		for d := 0; d < e.deg; d++ {
			if mask&(1<<uint(d)) != 0 {
				spawns = append(spawns, e.hopMsg(node, protocol.Teardown, addr, network.Dir(d)))
			}
		}
	}
	if e.hasBug(BugEarlyHomeRelease) && node == e.home(addr) && line.LinkCount() > 0 {
		// Seeded defect: the home declares the tree gone the moment its
		// teardowns fan out, while outer nodes still hold valid data.
		e.trees[node].Invalidate(addr)
		e.teardownComplete(addr)
		return spawns
	}
	if line.OutstandingReq && !e.hasBug(BugDropAckHold) {
		// The local node's reply is completing above the network
		// (outstanding-request bit, Figure 4): the line participates
		// in the teardown but holds its acknowledgment until the
		// completion lands, so the next grant cannot serialize ahead
		// of the pending access.
		e.m.Counters.Inc("tree.held_acks", 1)
		return spawns
	}
	switch n := line.LinkCount(); {
	case n == 0:
		// Single-node tree.
		e.trees[node].Invalidate(addr)
		if node == e.home(addr) {
			e.teardownComplete(addr)
		}
	case n == 1 && node != e.home(addr):
		// Leaf (the paper's rule), or a single-link initiator whose
		// chasing ack follows the teardown on the same FIFO link.
		d := line.OnlyLink()
		if !e.hasBug(BugDropTdAck) {
			spawns = append(spawns, e.hopMsg(node, protocol.TdAck, addr, d))
		}
		line.Links[d] = false
		e.trees[node].Invalidate(addr)
	}
	return spawns
}

// processAck handles a teardown acknowledgment arriving at node via link
// arrival: remove that link and collapse. unlink acks additionally apply to
// live lines, where they erase a freshly created dangling edge without
// collapsing anything.
func (e *Engine) processAck(node int, addr uint64, arrival network.Dir, unlink bool) []*network.Packet {
	line, ok := e.trees[node].Peek(addr)
	if !ok {
		// The line is already gone (e.g. the ack chased a teardown
		// into a node that collapsed first); nothing to remove.
		e.m.Counters.Inc("tree.stale_acks", 1)
		return nil
	}
	if !line.Touched {
		if unlink && arrival != network.DirNone {
			// Erase the dangling edge on the live line.
			line.Links[arrival] = false
			e.m.Counters.Inc("tree.unlinks", 1)
			return nil
		}
		// A plain ack can only legitimately land on a touched line; a
		// valid line here means a new tree reused the tag after the
		// old one fully collapsed. Leave it alone.
		e.m.Counters.Inc("tree.stale_acks", 1)
		return nil
	}
	if arrival != network.DirNone {
		if !line.Links[arrival] {
			// Stale or duplicate ack on an edge this node does not
			// hold; it must not trigger a collapse step.
			e.m.Counters.Inc("tree.stale_acks", 1)
			return nil
		}
		line.Links[arrival] = false
	}
	e.debugf(addr, "ack at n%d arrival=%v links now %v", node, arrival, line.Links)
	if line.OutstandingReq && !e.hasBug(BugDropAckHold) {
		// Collapse is held until the local completion lands.
		return nil
	}
	return e.collapse(node, addr, line)
}

// collapse applies the post-removal rules at a touched line: the home node
// terminates acknowledgments and completes at zero links; any other node
// forwards the acknowledgment up its last remaining link and invalidates.
func (e *Engine) collapse(node int, addr uint64, line *TreeLine) []*network.Packet {
	if node == e.home(addr) {
		if line.LinkCount() == 0 {
			e.trees[node].Invalidate(addr)
			e.teardownComplete(addr)
		}
		return nil
	}
	switch line.LinkCount() {
	case 0:
		e.trees[node].Invalidate(addr)
		return nil
	case 1:
		d := line.OnlyLink()
		line.Links[d] = false
		e.trees[node].Invalidate(addr)
		if e.hasBug(BugDropTdAck) {
			return nil
		}
		return []*network.Packet{e.hopMsg(node, protocol.TdAck, addr, d)}
	}
	return nil
}
