package treecc

import (
	"fmt"
	"testing"

	"innetcc/internal/network"
	"innetcc/internal/protocol"
)

// checkTreeInvariants validates the structural health of all virtual trees
// at quiescence:
//
//  1. no line is left Touched (every teardown ran to completion);
//  2. links are symmetric: if node u has a virtual link toward v for an
//     address, v has the matching link toward u;
//  3. every address with any tree line has exactly one root, and every
//     non-root line's RootDir link exists;
//  4. following RootDir from any tree node reaches the root;
//  5. the home node of the address is part of its tree;
//  6. every valid data-cache copy is anchored: its node's tree line exists
//     with LocalValid set, and LocalValid lines have the data.
func checkTreeInvariants(t *testing.T, m *protocol.Machine, e *Engine) {
	t.Helper()
	topo := e.topo
	nodes := m.Cfg.Nodes()

	type key struct {
		node int
		addr uint64
	}
	lines := map[key]*TreeLine{}
	addrs := map[uint64][]int{}
	for n := 0; n < nodes; n++ {
		n := n
		e.Tree(n).ScanAll(func(addr uint64, v *TreeLine) bool {
			lines[key{n, addr}] = v
			addrs[addr] = append(addrs[addr], n)
			return true
		})
	}

	for k, v := range lines {
		if v.Touched {
			t.Errorf("node %d addr %#x: line left Touched at quiescence", k.node, k.addr)
		}
		for d := 0; d < topo.Degree(); d++ {
			if !v.Links[d] {
				continue
			}
			nb, ok := topo.Neighbor(k.node, network.Dir(d))
			if !ok {
				t.Errorf("node %d addr %#x: link %v points off-fabric", k.node, k.addr, network.Dir(d))
				continue
			}
			other, ok := lines[key{nb, k.addr}]
			if !ok {
				t.Errorf("node %d addr %#x: link %v dangles (no line at node %d)", k.node, k.addr, network.Dir(d), nb)
				continue
			}
			if !other.Links[topo.Arrival(network.Dir(d))] {
				t.Errorf("addr %#x: asymmetric link %d->%d", k.addr, k.node, nb)
			}
		}
		if !v.IsRoot {
			if int(v.RootDir) >= topo.Degree() || !v.Links[v.RootDir] {
				t.Errorf("node %d addr %#x: RootDir %v is not a live link", k.node, k.addr, v.RootDir)
			}
		}
	}

	for addr, members := range addrs {
		roots := 0
		for _, n := range members {
			if lines[key{n, addr}].IsRoot {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("addr %#x: %d roots among nodes %v", addr, roots, members)
		}
		homeIn := false
		for _, n := range members {
			if n == m.Cfg.Home(addr) {
				homeIn = true
			}
		}
		if !homeIn {
			t.Errorf("addr %#x: home node %d not part of tree %v", addr, m.Cfg.Home(addr), members)
		}
		// Root reachability via RootDir pointers.
		for _, n := range members {
			cur, steps := n, 0
			for !lines[key{cur, addr}].IsRoot {
				d := lines[key{cur, addr}].RootDir
				nb, ok := topo.Neighbor(cur, d)
				if !ok {
					t.Errorf("addr %#x: RootDir walk from %d fell off fabric", addr, n)
					break
				}
				if _, present := lines[key{nb, addr}]; !present {
					t.Errorf("addr %#x: RootDir walk from %d hit lineless node %d", addr, n, nb)
					break
				}
				cur = nb
				steps++
				if steps > nodes {
					t.Errorf("addr %#x: RootDir walk from %d cycles", addr, n)
					break
				}
			}
		}
	}

	// Data copies anchored: every L2 copy is either a tree member with
	// LocalValid set, or a victim copy parked at the line's home node
	// while no tree exists.
	for k, v := range lines {
		_, hasData := m.PeekLine(k.node, k.addr)
		if v.LocalValid && !hasData {
			t.Errorf("node %d addr %#x: LocalValid without data copy", k.node, k.addr)
		}
	}
	for n := 0; n < nodes; n++ {
		n := n
		m.Nodes[n].L2.ScanAll(func(addr uint64, _ *protocol.DataLine) bool {
			if tl, ok := lines[key{n, addr}]; ok && tl.LocalValid {
				return true
			}
			if n == m.Cfg.Home(addr) && len(addrs[addr]) == 0 {
				return true // victim copy
			}
			tl, ok := lines[key{n, addr}]
			t.Errorf("node %d addr %#x: data copy not anchored in a tree (line=%v)", n, addr, describe(tl, ok))
			return false
		})
	}
}

func describe(tl *TreeLine, ok bool) string {
	if !ok {
		return "absent"
	}
	return fmt.Sprintf("%+v", *tl)
}
