package treecc

import (
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

func TestDebugV4(t *testing.T) {
	DebugAddr = 0x52c5
	protocol.DebugAddr = 0x52c5
	defer func() { DebugAddr = 0; protocol.DebugAddr = 0 }()
	p, _ := trace.ProfileByName("fft")
	tr := trace.Generate(p, 16, 500, 42)
	cfg := protocol.DefaultConfig()
	mt, _ := protocol.NewMachine(cfg, tr, p.Think)
	New(mt)
	err := mt.Run(3_000_000)
	t.Log(err)
}
