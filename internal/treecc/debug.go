package treecc

import "fmt"

// DebugAddr, when non-zero, enables an event trace for one line address on
// stdout; used for protocol debugging in tests.
var DebugAddr uint64

func (e *Engine) debugf(addr uint64, format string, args ...interface{}) {
	if DebugAddr == 0 || addr != DebugAddr {
		return
	}
	fmt.Printf("[%8d] %s\n", e.m.Kernel.Now(), fmt.Sprintf(format, args...))
}
