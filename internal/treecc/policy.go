package treecc

import (
	"fmt"
	"sync/atomic"

	"innetcc/internal/metrics"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
)

// Route implements network.Policy: the per-hop protocol kernel of the
// paper's Table 1, executed by the virtual-tree-cache pipeline stage of
// every router a packet visits.
func (e *Engine) Route(r *network.Router, p *network.Packet, now int64) network.Steer {
	msg := p.Payload.(*protocol.Msg)
	if DebugAddr != 0 && msg.Addr == DebugAddr {
		st := e.route(r, p, msg, now)
		line, ok := e.trees[r.NodeID].Peek(msg.Addr)
		e.debugf(msg.Addr, "route %s at n%d arr=%v req=%d -> out=%v consume=%v stall=%v spawns=%d line=%s",
			msg.Type, r.NodeID, p.ArrivalDir, msg.Requester, st.Out, st.Consume, st.Stall, len(st.Spawn), describeLine(line, ok))
		return st
	}
	return e.route(r, p, msg, now)
}

func describeLine(l *TreeLine, ok bool) string {
	if !ok {
		return "absent"
	}
	return fmt.Sprintf("links=%v root=%v isRoot=%v touched=%v lv=%v", l.Links, l.RootDir, l.IsRoot, l.Touched, l.LocalValid)
}

func (e *Engine) route(r *network.Router, p *network.Packet, msg *protocol.Msg, now int64) network.Steer {
	switch msg.Type {
	case protocol.Teardown, protocol.TdAck:
		return e.routeHop(r, p, msg)
	case protocol.RdReq:
		return e.routeReadReq(r, p, msg, now)
	case protocol.WrReq:
		return e.routeWriteReq(r, p, msg, now)
	case protocol.RdReply, protocol.WrReply:
		return e.routeReply(r, p, msg, now)
	}
	panic("treecc: unroutable message " + msg.Type.String())
}

// routeHop moves teardown/ack packets: freshly spawned ones exit on their
// forced link (forking first when they carry a multicast port mask);
// arriving ones are consumed and processed here.
func (e *Engine) routeHop(r *network.Router, p *network.Packet, msg *protocol.Msg) network.Steer {
	if p.ArrivalDir == network.Local {
		if msg.ForcedMask != 0 {
			return e.forkHop(r.NodeID, msg)
		}
		return network.Steer{Out: network.Dir(msg.ForcedDir)}
	}
	var spawns []*network.Packet
	if msg.Type == protocol.Teardown {
		spawns = e.processTeardown(r.NodeID, msg.Addr, p.ArrivalDir, msg.ClearArrival)
	} else {
		spawns = e.processAck(r.NodeID, msg.Addr, p.ArrivalDir, msg.Unlink)
	}
	return network.Steer{Consume: true, Spawn: spawns}
}

// forkHop expands a masked multicast hop message at its spawning router:
// the lowest set port keeps the original packet, every further port gets a
// clone of the payload in its own expedited packet — the router-crossbar
// replication hardware multicast buys. The mask is consumed here; each copy
// travels on as an ordinary forced-direction hop message.
func (e *Engine) forkHop(n int, msg *protocol.Msg) network.Steer {
	mask := msg.ForcedMask
	msg.ForcedMask = 0
	primary := network.DirNone
	var spawns []*network.Packet
	for d := 0; d < e.deg; d++ {
		if mask&(1<<uint(d)) == 0 {
			continue
		}
		if primary == network.DirNone {
			primary = network.Dir(d)
			msg.ForcedDir = uint8(d)
			continue
		}
		c := *msg
		c.ForcedDir = uint8(d)
		spawns = append(spawns, e.hopPacket(n, &c))
	}
	if primary == network.DirNone {
		// Degenerate empty mask after masking to the fabric degree.
		return network.Steer{Consume: true}
	}
	return network.Steer{Out: primary, Spawn: spawns}
}

// consumeToBackoff delays a deadlock-recovered request at the home node for
// the random backoff interval before reprocessing it (Section 2.1).
func (e *Engine) consumeToBackoff(home int, msg *protocol.Msg) network.Steer {
	cfg := e.m.Cfg
	now := e.m.Kernel.Now()
	delay := backoffDelay(uint64(cfg.Seed), msg.Addr, msg.Requester, now, cfg.BackoffMin, cfg.BackoffMax)
	msg.Backoff = false
	msg.DeadlockCycles += delay
	atomic.AddInt64(&e.queued, 1)
	e.m.Counters.Inc("tree.backoffs", 1)
	e.m.Metrics.Event(now, metrics.EvBackoff, int16(home), msg.Addr, delay)
	e.m.Defer(home, delay, func() {
		atomic.AddInt64(&e.queued, -1)
		e.m.Mesh.Spawn(home, e.packet(home, msg), e.m.Kernel.Now())
	})
	return network.Steer{Consume: true}
}

// backoffDelay draws the deadlock-recovery backoff as a pure splitmix64-style
// hash of (seed, addr, requester, cycle), the same stateless scheme the
// fault layer's schedules use. Backoffs are drawn inside the sharded route
// phase, where consuming a shared RNG stream would make the draw order —
// and with it every downstream value — depend on shard interleaving; a
// site-keyed hash is identical at every shard count by construction.
func backoffDelay(seed, addr uint64, requester int, now, lo, hi int64) int64 {
	x := seed ^ addr*0x9e3779b97f4a7c15 ^ uint64(requester)<<40 ^ uint64(now)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if hi <= lo {
		return lo
	}
	return lo + int64(x%uint64(hi-lo+1))
}

// routeReadReq implements Table 1's RD_REQ kernel.
func (e *Engine) routeReadReq(r *network.Router, p *network.Packet, msg *protocol.Msg, now int64) network.Steer {
	n := r.NodeID
	addr := msg.Addr
	home := e.home(addr)
	if msg.Backoff && n == home {
		return e.consumeToBackoff(home, msg)
	}
	line, ok := e.trees[n].Lookup(addr)
	if c := e.m.Metrics; c != nil {
		if ok && !line.Touched {
			c.Add(metrics.CTreeHit, 1)
			c.Event(now, metrics.EvTreeHit, int16(n), addr, int64(msg.Requester))
		} else {
			c.Add(metrics.CTreeMiss, 1)
			c.Event(now, metrics.EvTreeMiss, int16(n), addr, int64(msg.Requester))
		}
	}
	if ok && !line.Touched {
		if line.LocalValid {
			// Valid data here: terminate in-transit, serve above
			// network (data cache access).
			return network.Steer{Out: network.Local}
		}
		if !line.IsRoot && int(line.RootDir) < e.deg && line.Links[line.RootDir] {
			// Part of the tree without data: steer toward the root.
			e.m.Metrics.Add(metrics.CTreeBump, 1)
			e.m.Metrics.Event(now, metrics.EvBump, int16(n), addr, int64(msg.Requester))
			return network.Steer{Out: line.RootDir}
		}
		// Degenerate line (root without data, or dangling root
		// pointer): treat as off-tree and head for the home node;
		// teardown of such lines is already in flight or will come
		// from proactive eviction.
	}
	if n == home {
		if _, pend := e.pending[n][addr]; pend && !e.hasBug(BugDoubleGrant) {
			e.queueOnPending(addr, msg)
			return network.Steer{Consume: true}
		}
		if ok && line.Touched {
			// Requirement 1: wait for the teardown to finish.
			e.queueAtHome(addr, msg)
			return network.Steer{Consume: true}
		}
		if ok && !line.Touched {
			// Home is on the tree but the walk above fell through
			// (degenerate shape): serialize through the home just
			// like a fresh serve.
			e.trees[n].Invalidate(addr)
		}
		// No tree: serve from victim copy or memory above network.
		e.setPending(addr)
		msg.HomeServe = true
		return network.Steer{Out: network.Local}
	}
	return network.Steer{Out: e.topo.NextHop(n, home)}
}

// routeWriteReq implements Table 1's WR_REQ kernel, including the in-transit
// teardown of encountered trees and the proactive eviction of conflicting
// LRU trees on the way to the home node.
func (e *Engine) routeWriteReq(r *network.Router, p *network.Packet, msg *protocol.Msg, now int64) network.Steer {
	n := r.NodeID
	addr := msg.Addr
	home := e.home(addr)
	if msg.Backoff && n == home {
		return e.consumeToBackoff(home, msg)
	}
	line, ok := e.trees[n].Lookup(addr)
	if c := e.m.Metrics; c != nil {
		if ok && !line.Touched {
			c.Add(metrics.CTreeHit, 1)
			c.Event(now, metrics.EvTreeHit, int16(n), addr, int64(msg.Requester))
		} else {
			c.Add(metrics.CTreeMiss, 1)
			c.Event(now, metrics.EvTreeMiss, int16(n), addr, int64(msg.Requester))
		}
	}
	if n == home {
		if _, pend := e.pending[n][addr]; pend && !e.hasBug(BugDoubleGrant) {
			e.queueOnPending(addr, msg)
			return network.Steer{Consume: true}
		}
		if ok && line.Touched {
			e.queueAtHome(addr, msg)
			return network.Steer{Consume: true}
		}
		if ok {
			// A tree exists: tear it down and wait for completion
			// before granting (the home arbitrates writes).
			spawns := e.processTeardown(n, addr, network.DirNone, false)
			// processTeardown may have completed instantly
			// (single-node tree); requeue accordingly.
			if _, stillThere := e.trees[n].Peek(addr); stillThere {
				e.queueAtHome(addr, msg)
				return network.Steer{Consume: true, Spawn: spawns}
			}
			e.setPending(addr)
			msg.HomeServe = true
			return network.Steer{Out: network.Local, Spawn: spawns}
		}
		// No tree: grant above network (Requirement 3 invalidation of
		// the home's victim copy happens there).
		e.setPending(addr)
		msg.HomeServe = true
		return network.Steer{Out: network.Local}
	}
	var spawns []*network.Packet
	if ok && !line.Touched {
		// The write bumped into the line's tree: start invalidating
		// in-transit (the paper's Figure 1(b) optimization).
		spawns = e.processTeardown(n, addr, network.DirNone, false)
		e.m.Counters.Inc("tree.write_bumps", 1)
		e.m.Metrics.Event(now, metrics.EvBump, int16(n), addr, int64(msg.Requester))
	} else if !ok && e.m.Cfg.ProactiveEviction && !e.trees[n].HasFreeWay(addr) {
		// Proactive eviction: the set this line would occupy is full,
		// so tear down its LRU tree now to spare the reply the wait.
		if vaddr, _, found := e.trees[n].LRUVictim(addr, func(_ uint64, v *TreeLine) bool {
			return !v.Touched
		}); found {
			spawns = e.processTeardown(n, vaddr, network.DirNone, false)
			e.m.Counters.Inc("tree.proactive_evictions", 1)
			e.m.Metrics.Event(now, metrics.EvProactiveEvict, int16(n), vaddr, int64(msg.Requester))
		}
	}
	return network.Steer{Out: e.topo.NextHop(n, home), Spawn: spawns}
}

// routeReply implements Table 1's RD_REPLY / WR_REPLY kernels: route toward
// the requester, following tree links that lead closer when grafting onto
// an existing tree, constructing virtual links otherwise, stalling (with
// LRU-tree teardown and the timeout escape) when the matching set has no
// free way.
func (e *Engine) routeReply(r *network.Router, p *network.Packet, msg *protocol.Msg, now int64) network.Steer {
	n := r.NodeID
	addr := msg.Addr

	if p.ArrivalDir == network.Local && !msg.RequesterIsRoot {
		// First router visit of a reply grafting onto an existing
		// tree: the serving node must still be on a live tree. If a
		// teardown swept past while the data access was above the
		// network, any branch we build would be orphaned (no teardown
		// will ever chase it), so revert to a request instead.
		if line, ok := e.trees[n].Lookup(addr); !ok || line.Touched {
			e.m.Counters.Inc("tree.serve_races", 1)
			return e.revertToRequest(n, msg)
		}
	}

	// A fresh-tree reply's first router visit happens at the home node;
	// once it anchors the home's tree line (or aborts), the home-serve
	// serialization marker lifts and queued requests re-dispatch against
	// the new tree.
	freshAtHome := p.ArrivalDir == network.Local && msg.RequesterIsRoot

	if n == msg.Requester {
		return e.replyAtRequester(r, p, msg, now)
	}

	line, ok := e.trees[n].Lookup(addr)
	if ok && !line.Touched {
		out := e.topo.NextHop(n, msg.Requester)
		if !msg.RequesterIsRoot {
			// The reply re-entered the tree over a link it built at
			// the previous node: recording the mirror bit here could
			// close a cycle, so erase the sender's dangling bit
			// instead (see teardown.go).
			var spawns []*network.Packet
			if msg.BuiltLast && p.ArrivalDir != network.Local && !line.Links[p.ArrivalDir] {
				ul := &protocol.Msg{Type: protocol.TdAck, Addr: addr,
					ForcedDir: uint8(p.ArrivalDir), Unlink: true}
				spawns = append(spawns, e.hopPacket(n, ul))
				e.m.Counters.Inc("tree.reentries", 1)
			}
			if e.m.Cfg.Replication && !line.LocalValid && msg.Type == protocol.RdReply {
				e.replicate(n, addr, msg.Version, line.Gen)
			}
			// Grafting onto an existing tree: prefer an existing
			// link that leads one hop closer to the requester.
			if d, found := e.closerLink(n, line, msg.Requester); found {
				msg.BuiltLast = false
				return network.Steer{Out: d, Spawn: spawns}
			}
			// No closer link: extend the tree along X-Y routing.
			line.Links[out] = true
			msg.BuiltLast = true
			return network.Steer{Out: out, Spawn: spawns}
		}
		// A fresh-tree reply normally never meets a valid line for
		// its address; a remnant (e.g. an orphaned branch) can
		// linger. Absorb it: stale local data is invalidated and only
		// the construction path's links are kept, so no dangling link
		// can hang a later ack collapse.
		if line.LocalValid {
			e.m.InvalidateLine(n, addr, now)
			line.LocalValid = false
		}
		for d := 0; d < e.deg; d++ {
			line.Links[d] = false
		}
		if p.ArrivalDir != network.Local {
			line.Links[p.ArrivalDir] = true
		}
		line.Links[out] = true
		line.RootDir = out
		line.IsRoot = false
		line.OutstandingReq = false
		line.Gen = e.nextGen(n)
		msg.BuiltLast = true
		if freshAtHome {
			e.releasePending(addr, n)
		}
		return network.Steer{Out: out}
	}
	if !ok {
		if !msg.RequesterIsRoot && !msg.BuiltLast && p.ArrivalDir != network.Local {
			// The reply followed an existing tree link to get here,
			// yet this node has no line: the tree collapsed across
			// its path and no teardown will chase a branch built
			// from this point. Revert to a request.
			return e.revertToRequest(n, msg)
		}
		if nl, allocated := e.trees[n].InsertNoEvict(addr); allocated {
			out := e.topo.NextHop(n, msg.Requester)
			if p.ArrivalDir != network.Local {
				nl.Links[p.ArrivalDir] = true
			}
			nl.Links[out] = true
			if msg.RequesterIsRoot {
				nl.RootDir = out
			} else {
				nl.RootDir = p.ArrivalDir
			}
			nl.Gen = e.nextGen(n)
			if e.m.Cfg.Replication && msg.Type == protocol.RdReply {
				e.replicate(n, addr, msg.Version, nl.Gen)
			}
			msg.BuiltLast = true
			if freshAtHome {
				e.releasePending(addr, n)
			}
			return network.Steer{Out: out}
		}
	}
	// Stall: either the matching tag is touched (mid-teardown) or the set
	// is full of active trees.
	return e.stallReply(r, p, msg, ok, now)
}

// revertToRequest turns an unanchorable read reply back into a read request
// spawned at node n; the data will be re-fetched along a coherent path.
func (e *Engine) revertToRequest(n int, msg *protocol.Msg) network.Steer {
	e.m.Counters.Inc("tree.reply_reverts", 1)
	req := &protocol.Msg{Type: protocol.RdReq, Addr: msg.Addr,
		Requester: msg.Requester, IssuedAt: msg.IssuedAt,
		DeadlockCycles: msg.DeadlockCycles, Attempt: msg.Attempt}
	return network.Steer{Consume: true, Spawn: []*network.Packet{e.packet(n, req)}}
}

// replyAtRequester anchors the tree at the requesting node and ejects the
// reply for the above-network data installation.
func (e *Engine) replyAtRequester(r *network.Router, p *network.Packet, msg *protocol.Msg, now int64) network.Steer {
	n := r.NodeID
	addr := msg.Addr
	freshAtHome := p.ArrivalDir == network.Local && msg.RequesterIsRoot
	line, ok := e.trees[n].Lookup(addr)
	if ok && line.Touched && line.OutstandingReq {
		// The anchored line is being torn down with its acknowledgment
		// held for this very reply: eject for an uncached completion,
		// which will release the collapse.
		if freshAtHome {
			e.releasePending(addr, n)
		}
		return network.Steer{Out: network.Local}
	}
	if ok && !line.Touched {
		if msg.RequesterIsRoot {
			// The requester becomes the root of the fresh tree; the
			// construction-path edge is completed symmetrically.
			// Remnant links other than the construction path would
			// dangle, and remnant data is stale; scrub both.
			line.IsRoot = true
			line.RootDir = network.DirNone
			if line.LocalValid {
				e.m.InvalidateLine(n, addr, now)
				line.LocalValid = false
			}
			for d := 0; d < e.deg; d++ {
				line.Links[d] = false
			}
			if p.ArrivalDir != network.Local {
				line.Links[p.ArrivalDir] = true
			}
		}
		// Anchor: the outstanding-request bit ties the reply's
		// above-network completion to this specific line generation
		// (Figure 4's Req bit); a line rebuilt by another tree in the
		// completion window will not carry it.
		line.OutstandingReq = true
		if msg.RequesterIsRoot {
			line.Gen = e.nextGen(n)
		}
		// A grafting reply reaching a requester that is already part
		// of the tree adds no link: if the last hop followed a tree
		// edge the link exists, and if it was freshly built, the
		// sender's dangling bit is erased by an unlink ack.
		var spawns []*network.Packet
		if !msg.RequesterIsRoot && msg.BuiltLast && p.ArrivalDir != network.Local && !line.Links[p.ArrivalDir] {
			ul := &protocol.Msg{Type: protocol.TdAck, Addr: addr,
				ForcedDir: uint8(p.ArrivalDir), Unlink: true}
			spawns = append(spawns, e.hopPacket(n, ul))
			e.m.Counters.Inc("tree.reentries", 1)
		}
		if freshAtHome {
			e.releasePending(addr, n)
		}
		return network.Steer{Out: network.Local, Spawn: spawns}
	}
	if !ok {
		if !msg.RequesterIsRoot && !msg.BuiltLast && p.ArrivalDir != network.Local {
			return e.revertToRequest(n, msg)
		}
		if nl, allocated := e.trees[n].InsertNoEvict(addr); allocated {
			if p.ArrivalDir != network.Local {
				nl.Links[p.ArrivalDir] = true
			}
			if msg.RequesterIsRoot {
				nl.IsRoot = true
				nl.RootDir = network.DirNone
			} else {
				nl.RootDir = p.ArrivalDir
			}
			nl.OutstandingReq = true
			nl.Gen = e.nextGen(n)
			if freshAtHome {
				e.releasePending(addr, n)
			}
			return network.Steer{Out: network.Local}
		}
	}
	return e.stallReply(r, p, msg, ok, now)
}

// stallReply holds a reply whose tree-cache allocation cannot proceed. On
// first stall it issues a teardown for the LRU tree of the blocked set; at
// the timeout it gives up: the partially built tree is torn down and the
// reply reverts to a (backoff-flagged) request — the paper's deadlock
// recovery (Section 2.1).
func (e *Engine) stallReply(r *network.Router, p *network.Packet, msg *protocol.Msg, tagTouched bool, now int64) network.Steer {
	n := r.NodeID
	addr := msg.Addr
	if p.StallCycles(now) >= e.m.Cfg.TimeoutCycles {
		return e.abortReply(r.NodeID, p, msg, now)
	}
	var spawns []*network.Packet
	if p.StallCycles(now) == 0 && !tagTouched {
		if vaddr, _, found := e.trees[n].LRUVictim(addr, func(_ uint64, v *TreeLine) bool {
			return !v.Touched
		}); found {
			spawns = e.processTeardown(n, vaddr, network.DirNone, false)
			e.m.Counters.Inc("tree.conflict_evictions", 1)
			e.m.Metrics.Event(now, metrics.EvConflictEvict, int16(n), vaddr, int64(msg.Requester))
		}
	}
	return network.Steer{Stall: true, Spawn: spawns}
}

// abortReply is the timeout path: tear down the partial tree behind the
// reply (clearing the dangling link it created at the previous node) and
// regenerate the original request, to be held at the home node for a random
// backoff.
func (e *Engine) abortReply(n int, p *network.Packet, msg *protocol.Msg, now int64) network.Steer {
	e.m.Counters.Inc("tree.deadlock_aborts", 1)
	e.m.Metrics.Event(now, metrics.EvDeadlockAbort, int16(n), msg.Addr, int64(msg.Requester))
	if p.ArrivalDir == network.Local && msg.RequesterIsRoot {
		// A fresh reply giving up before it ever anchored the home's
		// tree line: lift the home-serve serialization marker so the
		// regenerated request (and any queued ones) can be served.
		e.releasePending(msg.Addr, n)
	}
	var spawns []*network.Packet
	if p.ArrivalDir != network.Local && msg.BuiltLast {
		// The link the reply built at the previous node dangles toward
		// this node; clear it and tear down the partial construction.
		// If the last hop followed an existing tree link instead, a
		// teardown of that tree is already collapsing and will reclaim
		// every link the reply touched — spawning nothing is correct.
		td := &protocol.Msg{Type: protocol.Teardown, Addr: msg.Addr,
			ForcedDir: uint8(p.ArrivalDir), ClearArrival: true}
		spawns = append(spawns, &network.Packet{
			ID: e.m.Mesh.NextIDFor(n), Flits: e.m.Cfg.CtrlFlits, Payload: td, Expedited: true,
		})
	}
	t := protocol.RdReq
	if msg.Type == protocol.WrReply {
		t = protocol.WrReq
	}
	req := &protocol.Msg{Type: t, Addr: msg.Addr, Requester: msg.Requester,
		IssuedAt: msg.IssuedAt, Backoff: true,
		DeadlockCycles: msg.DeadlockCycles + e.m.Cfg.TimeoutCycles,
		Attempt:        msg.Attempt}
	reqPkt := &network.Packet{ID: e.m.Mesh.NextIDFor(n), Flits: e.m.Cfg.CtrlFlits,
		Payload: req, Retryable: true}
	spawns = append(spawns, reqPkt)
	return network.Steer{Consume: true, Spawn: spawns}
}

// closerLink looks for an existing tree link at node n whose neighbor is
// one hop closer to the target node.
func (e *Engine) closerLink(n int, line *TreeLine, target int) (network.Dir, bool) {
	cur := e.topo.Dist(n, target)
	for d := 0; d < e.deg; d++ {
		if !line.Links[d] {
			continue
		}
		nb, valid := e.topo.Neighbor(n, network.Dir(d))
		if valid && e.topo.Dist(nb, target) < cur {
			return network.Dir(d), true
		}
	}
	return network.DirNone, false
}
