package treecc

import (
	"fmt"
	"strings"
)

// Bug is a deliberately seeded protocol defect. The bits mirror
// internal/mcheck's Mutation set one-for-one: each defect exists in both
// the reduced model (where the exhaustive checker must catch it) and the
// full engine (where the litmus fuzzer's oracles must catch it), which is
// what makes the two-layer verification net's mutation suite evidence of
// detection power rather than of clean runs passing.
//
// Bugs are strictly a test facility: nothing in the engine sets them, and
// a zero mask compiles to the unmodified protocol. The litmus harness sets
// Engine.Bugs right after protocol.Build, before the first cycle runs.
type Bug uint32

const (
	// BugDropAckHold forwards teardown acknowledgments even while the
	// line's outstanding-request bit holds a completion above the network,
	// letting the next grant serialize ahead of the pending access.
	BugDropAckHold Bug = 1 << iota
	// BugAcceptStaleReply skips the reissue-epoch check on replies, so a
	// reply from an abandoned retry attempt completes the current access.
	BugAcceptStaleReply
	// BugDropTdAck tears lines down without sending the acknowledgment,
	// so the home node waits forever for the collapse to terminate.
	BugDropTdAck
	// BugEarlyHomeRelease completes a teardown at the home node as soon as
	// the teardowns fan out, releasing queued requests while outer tree
	// nodes still hold valid data.
	BugEarlyHomeRelease
	// BugSkipInvalidate leaves a torn-down node's L2 data copy valid (and
	// skips the root-data capture), orphaning stale copies.
	BugSkipInvalidate
	// BugLostWriteback drops the memory writeback when a dirty line
	// downgrades (sharer serve) or write-through completes uncached.
	BugLostWriteback
	// BugDoubleGrant ignores the home's pending-serialization marker, so
	// two conflicting requests can be granted concurrently.
	BugDoubleGrant

	numBugs = 7
)

// bugNames maps each bit to its canonical name, shared with the model
// checker's mutation table and litmus reproducer spec files.
var bugNames = [numBugs]string{
	"drop-ack-hold",
	"accept-stale-reply",
	"drop-td-ack",
	"early-home-release",
	"skip-invalidate",
	"lost-writeback",
	"double-grant",
}

// AllBugs lists every seeded defect, in bit order.
func AllBugs() []Bug {
	out := make([]Bug, numBugs)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}

// String renders the mask as its canonical names joined by "+" ("none" for
// the zero mask).
func (b Bug) String() string {
	if b == 0 {
		return "none"
	}
	var parts []string
	for i := 0; i < numBugs; i++ {
		if b&(1<<i) != 0 {
			parts = append(parts, bugNames[i])
		}
	}
	if rest := b >> numBugs; rest != 0 {
		parts = append(parts, fmt.Sprintf("Bug(%#x)", uint32(b)))
	}
	return strings.Join(parts, "+")
}

// ParseBug resolves a canonical bug name (or "+"-joined list, or "none").
func ParseBug(s string) (Bug, error) {
	if s == "" || s == "none" {
		return 0, nil
	}
	var mask Bug
next:
	for _, part := range strings.Split(s, "+") {
		for i, name := range bugNames {
			if part == name {
				mask |= 1 << i
				continue next
			}
		}
		return 0, fmt.Errorf("treecc: unknown bug %q (want one of %s)", part, strings.Join(bugNames[:], ", "))
	}
	return mask, nil
}

// hasBug reports whether the seeded-defect mask enables b.
func (e *Engine) hasBug(b Bug) bool { return e.Bugs&b != 0 }
