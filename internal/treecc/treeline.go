// Package treecc implements the paper's contribution: in-network cache
// coherence. Coherence directories move out of the nodes and into the
// routers as virtual trees, one per cached line, stored in per-router
// virtual tree caches. Requests routed toward the home node are steered
// in-transit toward nearby sharers; writes tear trees down in-transit; tree
// construction, teardown, acknowledgment collapse, proactive eviction,
// victim caching and timeout-based deadlock recovery all follow Section 2
// of the paper (protocol kernel in Table 1, state machines in Figure 3).
package treecc

import "innetcc/internal/network"

// TreeLine is one virtual tree cache entry, encoding exactly the fields of
// the paper's Figure 4: four virtual-link bits (N, S, E, W), the direction
// of the link leading to the root, a busy bit (home only, represented by
// Touched at the home node), an outstanding-request bit and a bit recording
// whether the local node holds valid data.
type TreeLine struct {
	// Links marks which physical links are virtual tree links, indexed by
	// output port. Sized for the largest fabric degree so a line's
	// footprint is fabric-independent; ports beyond the running topology's
	// degree stay false.
	Links [network.MaxDegree]bool

	// RootDir is the link leading toward the root node; meaningless at
	// the root itself (IsRoot set). The paper encodes this in two bits
	// plus the implicit root case.
	RootDir network.Dir
	IsRoot  bool

	// Touched marks a line whose tree is being torn down (the paper's
	// third tree-cache state; the home node's touched line is its busy
	// bit).
	Touched bool

	// LocalValid records that the local node's data cache holds a valid
	// copy of the line.
	LocalValid bool

	// OutstandingReq mirrors the paper's outstanding-request bit; the
	// requesting node sets it between request and reply.
	OutstandingReq bool

	// Gen is a monotonically increasing generation stamp assigned each
	// time the line is (re)initialized for a tree; deferred
	// above-network work (replica installs) validates against it so a
	// line recycled by a newer tree is never written with stale data.
	Gen uint64
}

// LinkCount returns the number of virtual links at this node.
func (t *TreeLine) LinkCount() int {
	n := 0
	for _, b := range t.Links {
		if b {
			n++
		}
	}
	return n
}

// OnlyLink returns the single remaining link direction; it must only be
// called when LinkCount() == 1.
func (t *TreeLine) OnlyLink() network.Dir {
	for d, b := range t.Links {
		if b {
			return network.Dir(d)
		}
	}
	return network.DirNone
}
