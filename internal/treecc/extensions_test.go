package treecc

import (
	"testing"
	"testing/quick"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

func TestReplicationStaysCoherent(t *testing.T) {
	// The Section 4 replication extension must preserve every invariant
	// under sharing-heavy traffic (runTrace fails on violations and
	// checks the structural tree invariants).
	cfg := smallConfig()
	cfg.Replication = true
	p, _ := trace.ProfileByName("wsp")
	tr := trace.Generate(p, 16, 300, 5)
	m, _ := runTrace(t, cfg, tr, p.Think)
	if m.Counters.Get("tree.replicas") == 0 {
		t.Fatal("replication enabled but no replicas were installed")
	}
}

func TestReplicationProducesExtraServePoints(t *testing.T) {
	// Hand-built scenario: node 0 writes (root at 0), node 3 reads —
	// the reply crosses nodes 1 and 2 and should leave copies there, so
	// a later read by node 2's neighbour can be served midway.
	scripts := map[int][]trace.Access{
		0: {{Addr: 0x30, Write: true}},
		3: {{Addr: 0x30}, {Addr: 0x30}},
		2: {{Addr: 0x30}},
	}
	cfg := smallConfig()
	cfg.Replication = true
	m, e := runTrace(t, cfg, handTrace(scripts), 12)
	replicas := m.Counters.Get("tree.replicas")
	if replicas == 0 {
		t.Skip("timing did not produce a replica in this interleaving")
	}
	// Every replica node must hold data anchored in the tree.
	for n := 0; n < 16; n++ {
		if line, ok := e.Tree(n).Peek(0x30); ok && line.LocalValid {
			if _, has := m.PeekLine(n, 0x30); !has {
				t.Fatalf("node %d LocalValid without data", n)
			}
		}
	}
}

func TestProactiveEvictionSwitch(t *testing.T) {
	cfg := smallConfig()
	cfg.TreeEntries, cfg.TreeWays = 32, 1
	cfg.ProactiveEviction = false
	var accs []trace.Access
	for a := 0; a < 300; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a*16 + 2), Write: a%3 == 0})
	}
	tr := handTrace(map[int][]trace.Access{8: accs, 2: accs})
	m, _ := runTrace(t, cfg, tr, 2)
	if m.Counters.Get("tree.proactive_evictions") != 0 {
		t.Fatal("proactive evictions fired while disabled")
	}
}

// Property: random small traces on random pressured configurations always
// quiesce coherently and leave structurally sound trees. This is the
// simulation-level analogue of the model checker's exhaustive sweep.
func TestRandomizedStressProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("stress property is slow")
	}
	err := quick.Check(func(seed uint16, shape uint8, repl bool) bool {
		cfg := protocol.DefaultConfig()
		switch shape % 4 {
		case 0:
			cfg.TreeEntries, cfg.TreeWays = 16, 1
		case 1:
			cfg.TreeEntries, cfg.TreeWays = 64, 2
		case 2:
			cfg.TreeEntries, cfg.TreeWays = 256, 4
		case 3:
			cfg.TreeEntries, cfg.TreeWays = 64, 4
		}
		cfg.Replication = repl
		p := trace.Benchmarks()[int(seed)%8]
		tr := trace.Generate(p, 16, 80, uint64(seed)+1)
		m, err := protocol.NewMachine(cfg, tr, 3)
		if err != nil {
			return false
		}
		New(m)
		if err := m.Run(20_000_000); err != nil {
			t.Logf("seed=%d shape=%d repl=%v: %v", seed, shape, repl, err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: the protocol is deterministic — identical configuration and
// trace produce identical latency statistics.
func TestDeterminismProperty(t *testing.T) {
	p, _ := trace.ProfileByName("bar")
	run := func() (float64, float64, int64) {
		cfg := smallConfig()
		tr := trace.Generate(p, 16, 250, 9)
		m, err := protocol.NewMachine(cfg, tr, p.Think)
		if err != nil {
			t.Fatal(err)
		}
		New(m)
		if err := m.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Lat.Read.Mean(), m.Lat.Write.Mean(), m.Kernel.Now()
	}
	r1, w1, c1 := run()
	r2, w2, c2 := run()
	if r1 != r2 || w1 != w2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%v,%v) vs (%v,%v,%v)", r1, w1, c1, r2, w2, c2)
	}
}

func TestTreeLineHelpers(t *testing.T) {
	var l TreeLine
	if l.LinkCount() != 0 {
		t.Fatal("empty line has links")
	}
	l.Links[2] = true
	if l.LinkCount() != 1 || l.OnlyLink() != 2 {
		t.Fatalf("LinkCount/OnlyLink wrong: %d/%v", l.LinkCount(), l.OnlyLink())
	}
	l.Links[0] = true
	if l.LinkCount() != 2 {
		t.Fatal("LinkCount wrong for two links")
	}
}
