package treecc

import (
	"testing"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/verify"
)

// TestSequentialConsistencyTotalOrder retains the full runtime total order
// of a sharing-heavy run and validates it end to end, the paper's runtime
// SC condition: every read returns the version of the most recent preceding
// write in the total order, and writes to a line are consecutive.
func TestSequentialConsistencyTotalOrder(t *testing.T) {
	p, _ := trace.ProfileByName("wsp")
	tr := trace.Generate(p, 16, 400, 23)
	cfg := protocol.DefaultConfig()
	cfg.TreeEntries, cfg.TreeWays = 256, 2 // pressure: evictions + recoveries
	m, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		t.Fatal(err)
	}
	m.Check = verify.New(true) // retain the order
	New(m)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if len(m.Check.Order()) == 0 {
		t.Fatal("no total order retained")
	}
	if errs := m.Check.CheckOrderSC(); len(errs) > 0 {
		t.Fatalf("%d total-order violations, first: %s", len(errs), errs[0])
	}
	t.Logf("total order validated over %d accesses", len(m.Check.Order()))
}
