package treecc

import (
	"sort"

	"innetcc/internal/protocol"
	"innetcc/internal/sim"
)

// DigestState implements protocol.StateDigester: it folds every router's
// virtual tree cache, the home-side request queues and the captured root
// data into the machine state digest. Maps are folded in sorted key order
// so the digest is independent of Go's map iteration order.
func (e *Engine) DigestState(d *sim.Digest) {
	d.I64(e.queued)
	for node, tc := range e.trees {
		d.Int(tc.Len())
		tc.ScanAll(func(addr uint64, tl *TreeLine) bool {
			d.U64(addr)
			for _, b := range tl.Links {
				d.Bool(b)
			}
			d.Int(int(tl.RootDir))
			d.Bool(tl.IsRoot)
			d.Bool(tl.Touched)
			d.Bool(tl.LocalValid)
			d.Bool(tl.OutstandingReq)
			d.U64(tl.Gen)
			return true
		})
		digestMsgQueue(d, e.homeQueue[node])
		digestMsgQueue(d, e.pending[node])
		d.U64(e.genCounters[node])
	}

	e.rootMu.Lock()
	addrs := make([]uint64, 0, len(e.rootData))
	for a := range e.rootData {
		addrs = append(addrs, a)
	}
	e.rootMu.Unlock()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	d.Int(len(addrs))
	for _, a := range addrs {
		e.rootMu.Lock()
		v := e.rootData[a]
		e.rootMu.Unlock()
		d.U64(a)
		d.U64(v)
	}
}

// digestMsgQueue folds one per-home map of address-keyed message queues in
// address order.
func digestMsgQueue(d *sim.Digest, q map[uint64][]*protocol.Msg) {
	addrs := make([]uint64, 0, len(q))
	for a := range q {
		if len(q[a]) > 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	d.Int(len(addrs))
	for _, a := range addrs {
		d.U64(a)
		d.Int(len(q[a]))
		for _, msg := range q[a] {
			protocol.DigestMsg(d, msg)
		}
	}
}
