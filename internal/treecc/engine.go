package treecc

import (
	"sync"
	"sync/atomic"

	"innetcc/internal/cache"
	"innetcc/internal/metrics"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
)

// Engine is the in-network coherence engine. It implements both
// protocol.Engine (the machine-facing side: misses, NIC ejections) and
// network.Policy (the router-facing side: the per-hop protocol kernel of
// the paper's Table 1, driven by the per-router virtual tree caches).
type Engine struct {
	m     *protocol.Machine
	trees []*cache.Cache[TreeLine]

	// topo and deg cache the fabric shape the per-hop kernel routes
	// against; deg bounds every link-bit scan so ring trees never look at
	// ports the fabric does not have.
	topo network.Topology
	deg  int

	// homeQueue holds requests that reached the home node while the
	// line's tree was being torn down; they are re-released when the
	// teardown completes (Requirement 1). The maps are per home node —
	// every access happens at an address's home, so partitioning by node
	// pins each map to one shard of the sharded tick engine.
	homeQueue []map[uint64][]*protocol.Msg

	// pending marks addresses whose home is currently producing a reply
	// (memory fetch, victim lookup or write grant in progress); requests
	// arriving meanwhile queue here and re-release just after the reply
	// is injected, keeping home-side serialization airtight. Per home
	// node, like homeQueue.
	pending []map[uint64][]*protocol.Msg

	// rootData holds the version captured from a tree's root as the
	// tree is torn down, modeling the paper's piggybacking of the
	// root's data in the acknowledgment that terminates at the home
	// node (the victim-caching optimization). One tree exists per
	// address at a time, so the map is keyed by address; it is written
	// at the root's shard and read at the home's, hence the mutex.
	rootData map[uint64]uint64
	rootMu   sync.Mutex

	// queued counts entries across homeQueue, pending and backoff waits,
	// for Quiesced. Route-phase code on different shards updates it
	// concurrently, so it is atomic; Quiesced reads it between cycles.
	queued int64

	// genCounters are the per-node tree-line generation stamps (see
	// TreeLine.Gen). Generations are only ever compared within one
	// node's tree cache, so per-node counters — which sharded ticking
	// requires — stamp equivalently to the old global counter.
	genCounters []uint64

	// Bugs is the seeded-defect mask (see Bug). Zero — the only value
	// anything outside the litmus/mutation test harnesses ever uses —
	// leaves the protocol unmodified.
	Bugs Bug
}

func init() {
	protocol.RegisterEngineBuilder(protocol.KindTree,
		func(m *protocol.Machine) protocol.Engine { return New(m) })
}

// New builds the in-network engine on machine m. The mesh runs with the
// deeper router pipeline (base + tree cache stage); the Figure 10 variant
// instead keeps the base pipeline and pays an eject/re-inject penalty at
// every hop.
func New(m *protocol.Machine) *Engine {
	cfg := m.Cfg
	e := &Engine{
		m:           m,
		homeQueue:   make([]map[uint64][]*protocol.Msg, cfg.Nodes()),
		pending:     make([]map[uint64][]*protocol.Msg, cfg.Nodes()),
		rootData:    make(map[uint64]uint64),
		genCounters: make([]uint64, cfg.Nodes()),
	}
	for i := 0; i < cfg.Nodes(); i++ {
		e.trees = append(e.trees, cache.New[TreeLine](cfg.TreeEntries, cfg.TreeWays))
		e.homeQueue[i] = make(map[uint64][]*protocol.Msg)
		e.pending[i] = make(map[uint64][]*protocol.Msg)
	}
	pipeline := cfg.BasePipeline + cfg.TreePipeline
	if cfg.AboveNetworkTree {
		pipeline = cfg.BasePipeline
	}
	e.topo = cfg.Topology.Build()
	e.deg = e.topo.Degree()
	mesh := network.Build(m.Kernel, network.Config{
		Topo:     e.topo,
		Pipeline: pipeline,
		Policy:   e,
		Clone:    protocol.CloneMsg,
	})
	if cfg.AboveNetworkTree {
		for _, r := range mesh.Routers {
			r.ExtraHopDelay = cfg.BasePipeline + cfg.DirLatency
		}
	}
	m.AttachEngine(e, mesh)
	return e
}

// Tree exposes a node's virtual tree cache for tests and invariant checks.
func (e *Engine) Tree(node int) *cache.Cache[TreeLine] { return e.trees[node] }

// nextGen stamps a freshly (re)initialized tree line at node.
func (e *Engine) nextGen(node int) uint64 {
	e.genCounters[node]++
	return e.genCounters[node]
}

// setRootData and takeRootData guard the root-data victim map: the capture
// happens at the tree root's shard mid-tick, the consumption at the home's.
func (e *Engine) setRootData(addr uint64, version uint64) {
	e.rootMu.Lock()
	e.rootData[addr] = version
	e.rootMu.Unlock()
}

func (e *Engine) takeRootData(addr uint64) (uint64, bool) {
	e.rootMu.Lock()
	v, ok := e.rootData[addr]
	if ok {
		delete(e.rootData, addr)
	}
	e.rootMu.Unlock()
	return v, ok
}

// replicate schedules an above-network install of the reply's data at an
// intermediate tree node (the paper's Section 4 replication extension).
// The install validates the line generation so a recycled line is never
// written with stale data; it runs off the critical path.
func (e *Engine) replicate(node int, addr uint64, version uint64, gen uint64) {
	e.m.NICSchedule(node, e.m.Cfg.L2Latency, func() {
		line, ok := e.trees[node].Peek(addr)
		if !ok || line.Touched || line.LocalValid || line.Gen != gen {
			return
		}
		e.m.InstallLine(node, addr, protocol.Shared, version, e.m.Kernel.Now())
		line.LocalValid = true
		e.m.Counters.Inc("tree.replicas", 1)
	})
}

func (e *Engine) home(addr uint64) int { return e.m.Cfg.Home(addr) }

// ctrlPacket wraps msg in a single-flit (or data-sized) packet originating
// at src. Dst is advisory: the tree protocol routes per hop.
func (e *Engine) packet(src int, msg *protocol.Msg) *network.Packet {
	return e.m.NewPacket(src, e.home(msg.Addr), msg)
}

// StartMiss implements protocol.Engine.
func (e *Engine) StartMiss(node int, addr uint64, write bool, now int64) {
	t := protocol.RdReq
	if write {
		t = protocol.WrReq
		e.m.Counters.Inc("tree.wr_reqs", 1)
	} else {
		e.m.Counters.Inc("tree.rd_reqs", 1)
	}
	// Note: the paper's outstanding-request bit covers the whole
	// request/reply window; this implementation sets it only when the
	// reply anchors the requester's line (see replyAtRequester), because
	// the teardown ack-hold it gates must cover only the bounded
	// above-network completion window — holding for a request that is
	// still traveling could make a teardown wait on itself.
	msg := &protocol.Msg{Type: t, Addr: addr, Requester: node, IssuedAt: now,
		Attempt: e.m.CurrentAttempt(node)}
	e.m.Mesh.Inject(node, e.packet(node, msg), now)
}

// Eject implements protocol.Engine: above-network data-cache work. Tree
// cache manipulation happens in-network (Route); only data access, memory
// access and grant processing come up through the NIC, exactly as the
// paper's Section 2.3 prescribes.
func (e *Engine) Eject(node int, p *network.Packet, now int64) {
	msg := p.Payload.(*protocol.Msg)
	cfg := e.m.Cfg
	switch msg.Type {
	case protocol.RdReq:
		e.m.NICSchedule(node, e.serviceTime(node, msg.Addr), func() { e.serveRead(node, msg) })
	case protocol.WrReq:
		e.m.NICSchedule(node, e.serviceTime(node, msg.Addr), func() { e.grantWrite(node, msg) })
	case protocol.RdReply:
		e.m.NICSchedule(node, cfg.L2Latency, func() { e.finishRead(node, msg) })
	case protocol.WrReply:
		e.m.NICSchedule(node, cfg.L2Latency, func() { e.finishWrite(node, msg) })
	default:
		panic("treecc: unexpected ejected message " + msg.Type.String())
	}
}

// serviceTime returns the NIC service occupancy for an ejected request: a
// full data-cache access when the node's L2 holds the line (a sharer serve,
// a victim hit or a victim invalidation), or just the interface processing
// time when the access is a probe miss that proceeds to memory or an
// immediate grant.
func (e *Engine) serviceTime(node int, addr uint64) int64 {
	if _, present := e.m.PeekLine(node, addr); present {
		return e.m.Cfg.L2Latency
	}
	return e.m.Cfg.DirLatency
}

// serveRead runs at a node whose router steered a read request to the local
// ejection port: either a tree node holding valid data, or the home node of
// a line with no tree.
func (e *Engine) serveRead(node int, msg *protocol.Msg) {
	now := e.m.Kernel.Now()
	addr := msg.Addr
	e.debugf(addr, "serveRead at n%d req=%d", node, msg.Requester)
	if line, ok := e.trees[node].Peek(addr); ok && !line.Touched && line.LocalValid {
		dl, present := e.m.PeekLine(node, addr)
		if !present {
			// The data raced away between steering and access;
			// LocalValid is stale only within this window. Repair
			// and retry toward home.
			line.LocalValid = false
			e.m.Mesh.Spawn(node, e.packet(node, msg), now)
			return
		}
		if dl.State == protocol.Modified {
			// MSI: a read of a dirty line writes it back (M -> S).
			if !e.hasBug(BugLostWriteback) {
				e.m.Mem.Writeback(addr, dl.Version)
			}
			dl.State = protocol.Shared
		}
		e.m.Check.SampleRead(addr, dl.Version, e.m.Mem.Peek(addr), msg.Requester, now)
		e.m.Counters.Inc("tree.sharer_serves", 1)
		if e.m.Metrics != nil {
			// Hops saved versus routing the request to the home node
			// (can be negative when the serving sharer is farther).
			saved := int64(e.topo.Dist(msg.Requester, e.home(addr)) -
				e.topo.Dist(msg.Requester, node))
			e.m.Metrics.Add(metrics.CHopsSaved, saved)
			e.m.Metrics.Event(now, metrics.EvSharerServe, int16(node), addr, saved)
		}
		reply := &protocol.Msg{Type: protocol.RdReply, Addr: addr, Requester: msg.Requester,
			Version: dl.Version, IssuedAt: msg.IssuedAt, DeadlockCycles: msg.DeadlockCycles,
			Attempt: msg.Attempt}
		e.m.Mesh.Spawn(node, e.packet(node, reply), now)
		return
	}
	if !msg.HomeServe {
		// This ejection was a tree-data serve, but the tree line
		// vanished while the request was above the network (a
		// teardown swept past): re-route. Only a request holding the
		// home-serve marker may serve from victim data or memory.
		e.m.Counters.Inc("tree.serve_races", 1)
		e.m.Mesh.Spawn(node, e.packet(node, msg), now)
		return
	}
	// Home-node serve: victim copy or main memory (pending[addr] was set
	// when the router steered us here).
	if e.m.Cfg.VictimCaching {
		if _, present := e.m.PeekLine(node, addr); present {
			// Requirement 2: serving from the victimized copy
			// invalidates it.
			line, ok := e.m.InvalidateLine(node, addr, now)
			if ok {
				e.m.Counters.Inc("tree.victim_hits", 1)
				e.m.Check.SampleRead(addr, line.Version, e.m.Mem.Peek(addr), msg.Requester, now)
				e.injectHomeReply(node, msg, protocol.RdReply, line.Version)
				return
			}
		}
	}
	e.m.Counters.Inc("tree.mem_reads", 1)
	e.m.Kernel.Schedule(e.m.Cfg.MemLatency, func() {
		now := e.m.Kernel.Now()
		v := e.m.Mem.Read(addr)
		e.m.Check.SampleRead(addr, v, v, msg.Requester, now)
		e.injectHomeReply(node, msg, protocol.RdReply, v)
	})
}

// grantWrite runs at the home node for a write to a line with no tree:
// Requirement 3 invalidates any victim copy in the home's L2, then the
// grant travels back constructing the writer's fresh tree.
func (e *Engine) grantWrite(node int, msg *protocol.Msg) {
	now := e.m.Kernel.Now()
	e.debugf(msg.Addr, "grantWrite at n%d req=%d", node, msg.Requester)
	e.m.InvalidateLine(node, msg.Addr, now)
	e.injectHomeReply(node, msg, protocol.WrReply, 0)
}

// injectHomeReply sends a home-generated reply (fresh tree: the requester
// becomes root). The pending marker stays set until the reply actually
// constructs the home node's tree line (or gives up), so no other request
// can slip into the home-serve path before the new tree is anchored.
func (e *Engine) injectHomeReply(home int, req *protocol.Msg, t protocol.MsgType, version uint64) {
	now := e.m.Kernel.Now()
	reply := &protocol.Msg{Type: t, Addr: req.Addr, Requester: req.Requester, Version: version,
		RequesterIsRoot: true, IssuedAt: req.IssuedAt, DeadlockCycles: req.DeadlockCycles,
		Attempt: req.Attempt}
	e.m.Mesh.Spawn(home, e.packet(home, reply), now)
}

// finishRead completes a read at the requesting node: install the data and
// mark the tree line valid. If the line's tree was torn down while the
// reply was in its final hop, the data is used once and not cached.
func (e *Engine) finishRead(node int, msg *protocol.Msg) {
	now := e.m.Kernel.Now()
	e.debugf(msg.Addr, "finishRead at n%d v=%d", node, msg.Version)
	if !e.hasBug(BugAcceptStaleReply) && e.m.DropStaleReply(node, msg) {
		e.dropStale(node, msg)
		return
	}
	if line, ok := e.trees[node].Peek(msg.Addr); ok && !line.Touched && line.OutstandingReq {
		e.m.InstallLine(node, msg.Addr, protocol.Shared, msg.Version, now)
		line.LocalValid = true
		line.OutstandingReq = false
	} else {
		e.m.Counters.Inc("tree.uncached_completions", 1)
		e.releaseHeldAck(node, msg.Addr)
	}
	e.m.Check.ObserveRead(msg.Addr, msg.Version, node, now, false)
	e.m.CompleteAccess(node, false, now, msg.DeadlockCycles)
}

// dropStale discards a reply from an abandoned reissue epoch without
// completing any access or installing data, while still releasing the tree
// state the reply anchored: a fresh-tree line waiting on this reply has
// its outstanding-request bit cleared, and a held teardown acknowledgment
// is let through so the collapse the reply was blocking can finish.
func (e *Engine) dropStale(node int, msg *protocol.Msg) {
	e.debugf(msg.Addr, "stale reply (attempt %d) dropped at n%d", msg.Attempt, node)
	if line, ok := e.trees[node].Peek(msg.Addr); ok && line.OutstandingReq {
		if line.Touched {
			e.releaseHeldAck(node, msg.Addr)
		} else {
			line.OutstandingReq = false
		}
	}
}

// releaseHeldAck resumes a collapse that was held at node for the local
// completion (the outstanding-request bit) now landing.
func (e *Engine) releaseHeldAck(node int, addr uint64) {
	line, ok := e.trees[node].Peek(addr)
	if !ok || !line.Touched || !line.OutstandingReq {
		return
	}
	line.OutstandingReq = false
	now := e.m.Kernel.Now()
	if line.LinkCount() == 0 {
		// A held single-node tree (or all acks already arrived).
		e.trees[node].Invalidate(addr)
		if node == e.home(addr) {
			e.teardownComplete(addr)
		}
		return
	}
	for _, pkt := range e.collapse(node, addr, line) {
		e.m.Mesh.Spawn(node, pkt, now)
	}
}

// finishWrite completes a write at the requesting node: the write
// serializes here, after the grant that followed the full teardown.
func (e *Engine) finishWrite(node int, msg *protocol.Msg) {
	now := e.m.Kernel.Now()
	e.debugf(msg.Addr, "finishWrite at n%d", node)
	if !e.hasBug(BugAcceptStaleReply) && e.m.DropStaleReply(node, msg) {
		e.dropStale(node, msg)
		return
	}
	v := e.m.Check.CommitWrite(msg.Addr, node, now)
	if line, ok := e.trees[node].Peek(msg.Addr); ok && !line.Touched && line.OutstandingReq {
		e.m.InstallLine(node, msg.Addr, protocol.Modified, v, now)
		line.LocalValid = true
		line.OutstandingReq = false
	} else {
		// The fresh tree is already being torn down (e.g. a proactive
		// eviction raced the grant): complete write-through so the
		// system never holds unanchored dirty data. The held
		// acknowledgment below guarantees this commit serialized
		// before the teardown completed at the home node.
		if !e.hasBug(BugLostWriteback) {
			e.m.Mem.Writeback(msg.Addr, v)
		}
		e.m.Counters.Inc("tree.uncached_completions", 1)
		e.releaseHeldAck(node, msg.Addr)
	}
	e.m.CompleteAccess(node, true, now, msg.DeadlockCycles)
}

// OnL2Evict implements protocol.Engine. Evicting the root's data tears the
// tree down (the root anchors the line's data); evicting an intermediate
// sharer's data just clears its LocalValid bit.
func (e *Engine) OnL2Evict(node int, addr uint64, dl protocol.DataLine, now int64) {
	line, ok := e.trees[node].Peek(addr)
	if !ok || !line.LocalValid {
		return
	}
	line.LocalValid = false
	if !line.IsRoot || line.Touched {
		return
	}
	e.setRootData(addr, dl.Version)
	for _, p := range e.processTeardown(node, addr, network.DirNone, false) {
		e.m.Mesh.Spawn(node, p, now)
	}
}

// Quiesced implements protocol.Engine.
func (e *Engine) Quiesced() bool { return atomic.LoadInt64(&e.queued) == 0 }

// MetricsGauges implements metrics.GaugeSource: total live tree-cache lines
// across all routers, and the queued-request backlog (home queue + pending
// serialization + backoff waits).
func (e *Engine) MetricsGauges() (occupancy, queueDepth int) {
	for _, t := range e.trees {
		occupancy += t.Len()
	}
	return occupancy, int(atomic.LoadInt64(&e.queued))
}

// --- pending / home-queue management -----------------------------------
//
// All of these run at an address's home node (route phase at the home's
// router, or event-phase home work), so the per-node maps are only ever
// touched by the home's own shard or the coordinator.

func (e *Engine) setPending(addr uint64) {
	p := e.pending[e.home(addr)]
	if _, ok := p[addr]; !ok {
		p[addr] = nil
	}
}

func (e *Engine) queueOnPending(addr uint64, msg *protocol.Msg) {
	p := e.pending[e.home(addr)]
	p[addr] = append(p[addr], msg)
	atomic.AddInt64(&e.queued, 1)
}

func (e *Engine) releasePending(addr uint64, home int) {
	p := e.pending[home]
	waiters, ok := p[addr]
	if !ok {
		return
	}
	delete(p, addr)
	now := e.m.Kernel.Now()
	for _, w := range waiters {
		atomic.AddInt64(&e.queued, -1)
		e.m.Mesh.Spawn(home, e.packet(home, w), now)
	}
}

func (e *Engine) queueAtHome(addr uint64, msg *protocol.Msg) {
	home := e.home(addr)
	q := e.homeQueue[home]
	q[addr] = append(q[addr], msg)
	atomic.AddInt64(&e.queued, 1)
	e.m.Metrics.Event(e.m.Kernel.Now(), metrics.EvHomeQueued, int16(home), addr, int64(msg.Requester))
}

// teardownComplete runs when the home node's last virtual link clears: the
// tree is fully gone. Victim-cache the root's data at the home L2 and
// release requests queued behind the teardown.
func (e *Engine) teardownComplete(addr uint64) {
	home := e.home(addr)
	e.debugf(addr, "teardownComplete home=n%d queued=%d", home, len(e.homeQueue[home][addr]))
	now := e.m.Kernel.Now()
	if v, ok := e.takeRootData(addr); ok {
		if e.m.Cfg.VictimCaching {
			e.m.InstallLine(home, addr, protocol.Shared, v, now)
		}
	}
	e.m.Counters.Inc("tree.teardowns_completed", 1)
	waiters := e.homeQueue[home][addr]
	delete(e.homeQueue[home], addr)
	e.m.Metrics.Event(now, metrics.EvTeardownComplete, int16(home), addr, int64(len(waiters)))
	if len(waiters) == 0 {
		return
	}
	// The first queued request proceeds at the home node immediately (it
	// has been waiting here, already routed); the rest serialize behind
	// it on the pending marker.
	first := waiters[0]
	atomic.AddInt64(&e.queued, -1)
	e.setPending(addr)
	first.HomeServe = true
	if e.m.Metrics != nil {
		for _, w := range waiters {
			e.m.Metrics.Event(now, metrics.EvHomeDrained, int16(home), addr, int64(w.Requester))
		}
	}
	e.m.Defer(home, 1, func() {
		if first.Type == protocol.WrReq {
			e.grantWrite(home, first)
		} else {
			e.serveRead(home, first)
		}
	})
	for _, w := range waiters[1:] {
		atomic.AddInt64(&e.queued, -1)
		e.queueOnPending(addr, w)
	}
}
