package treecc

import (
	"testing"

	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

func runTrace(t *testing.T, cfg protocol.Config, tr *trace.Trace, think int64) (*protocol.Machine, *Engine) {
	t.Helper()
	m, err := protocol.NewMachine(cfg, tr, think)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	checkTreeInvariants(t, m, e)
	return m, e
}

func smallConfig() protocol.Config {
	return protocol.DefaultConfig()
}

func handTrace(scripts map[int][]trace.Access) *trace.Trace {
	tr := &trace.Trace{Name: "hand", PerNode: make([][]trace.Access, 16)}
	for n, s := range scripts {
		tr.PerNode[n] = s
	}
	return tr
}

func TestReadBuildsFreshTree(t *testing.T) {
	// Figure 2(a): a first read loads from memory and constructs a
	// virtual tree from the home node to the requester, who becomes
	// root.
	tr := handTrace(map[int][]trace.Access{3: {{Addr: 0x40}}})
	m, e := runTrace(t, smallConfig(), tr, 5)
	if m.Lat.Read.Mean() < 200 {
		t.Fatalf("first read latency %.0f below memory latency", m.Lat.Read.Mean())
	}
	line, ok := e.Tree(3).Peek(0x40)
	if !ok || !line.IsRoot || !line.LocalValid {
		t.Fatalf("requester tree line wrong: %v ok=%v", line, ok)
	}
	home := m.Cfg.Home(0x40)
	if home != 3 {
		if _, ok := e.Tree(home).Peek(0x40); !ok {
			t.Fatal("home node not part of the tree")
		}
	}
	if dl, ok := m.PeekLine(3, 0x40); !ok || dl.State != protocol.Shared {
		t.Fatal("data not installed Shared at requester")
	}
}

func TestSecondReadJoinsTree(t *testing.T) {
	// Figure 2(b): a second reader grafts onto the existing tree and is
	// served without an off-chip access.
	tr := handTrace(map[int][]trace.Access{
		1: {{Addr: 0x80}},
		9: {{Addr: 0x80}, {Addr: 0x80}},
	})
	m, e := runTrace(t, smallConfig(), tr, 30)
	if got := m.Counters.Get("tree.mem_reads"); got != 1 {
		t.Fatalf("memory reads %d, want exactly 1 (second read joins tree)", got)
	}
	if m.Counters.Get("tree.sharer_serves") == 0 {
		t.Fatal("no read was served by an in-network tree hit")
	}
	for _, n := range []int{1, 9} {
		if line, ok := e.Tree(n).Peek(0x80); !ok || !line.LocalValid {
			t.Fatalf("node %d not a valid tree sharer", n)
		}
	}
}

func TestWriteTearsDownTree(t *testing.T) {
	// Figure 2(c): a write to a shared line tears the tree down
	// in-transit, then builds a fresh tree rooted at the writer.
	tr := handTrace(map[int][]trace.Access{
		2:  {{Addr: 0x100}},
		5:  {{Addr: 0x100}},
		12: {{Addr: 0x100}, {Addr: 0x200}, {Addr: 0x100, Write: true}},
	})
	m, e := runTrace(t, smallConfig(), tr, 8)
	copies := m.Check.Copies(0x100)
	if len(copies) != 1 || copies[0] != 12 {
		t.Fatalf("copies after write %v, want [12]", copies)
	}
	line, ok := e.Tree(12).Peek(0x100)
	if !ok || !line.IsRoot || !line.LocalValid {
		t.Fatal("writer is not root of the new tree")
	}
	if dl, _ := m.PeekLine(12, 0x100); dl == nil || dl.State != protocol.Modified {
		t.Fatal("writer line not Modified")
	}
	if m.Counters.Get("tree.teardowns_completed") == 0 {
		t.Fatal("no teardown completed")
	}
}

func TestReadOfDirtyLineWritesBack(t *testing.T) {
	tr := handTrace(map[int][]trace.Access{
		0: {{Addr: 0x140, Write: true}},
		7: {{Addr: 0x140}, {Addr: 0x140}, {Addr: 0x140}},
	})
	m, _ := runTrace(t, smallConfig(), tr, 3)
	if v := m.Mem.Peek(0x140); v != 1 {
		t.Fatalf("memory holds version %d after dirty read, want 1", v)
	}
}

func TestWriteUpgradeFromShared(t *testing.T) {
	// A node reads (Shared) then writes the same line: its write request
	// bumps into its own tree at its own router and tears it down.
	tr := handTrace(map[int][]trace.Access{
		6: {{Addr: 0x180}, {Addr: 0x300}, {Addr: 0x180, Write: true}},
	})
	m, _ := runTrace(t, smallConfig(), tr, 4)
	if got := m.Check.CurrentVersion(0x180); got != 1 {
		t.Fatalf("version %d, want 1", got)
	}
	if dl, ok := m.PeekLine(6, 0x180); !ok || dl.State != protocol.Modified {
		t.Fatal("upgrade did not end Modified")
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	scripts := map[int][]trace.Access{}
	for n := 0; n < 16; n++ {
		scripts[n] = []trace.Access{{Addr: 0x500, Write: true}, {Addr: 0x500, Write: true}}
	}
	m, _ := runTrace(t, smallConfig(), handTrace(scripts), 2)
	if got := m.Check.CurrentVersion(0x500); got != 32 {
		t.Fatalf("final version %d, want 32", got)
	}
}

func TestManySharersThenWrite(t *testing.T) {
	scripts := map[int][]trace.Access{}
	for n := 0; n < 16; n++ {
		scripts[n] = []trace.Access{{Addr: 0x240}}
	}
	scripts[10] = append(scripts[10], trace.Access{Addr: 0x999}, trace.Access{Addr: 0x240, Write: true})
	m, _ := runTrace(t, smallConfig(), handTrace(scripts), 5)
	copies := m.Check.Copies(0x240)
	if len(copies) != 1 || copies[0] != 10 {
		t.Fatalf("copies %v, want [10]", copies)
	}
}

func TestVictimCachingServesFromHome(t *testing.T) {
	// Build a tree, tear it down via a conflicting write's proactive
	// machinery... simplest: write then read by another node leaves a
	// tree; force teardown through a same-set conflict by shrinking the
	// tree cache, then re-read: the home's victim copy avoids memory.
	cfg := smallConfig()
	cfg.TreeEntries, cfg.TreeWays = 64, 2
	var accs []trace.Access
	for a := 0; a < 300; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a*16 + 1)})
	}
	for a := 0; a < 40; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a*16 + 1)})
	}
	tr := handTrace(map[int][]trace.Access{4: accs})
	m, _ := runTrace(t, cfg, tr, 2)
	if m.Counters.Get("tree.victim_hits") == 0 {
		t.Fatal("victim cache never hit after tree evictions")
	}
}

func TestProactiveEvictionFires(t *testing.T) {
	cfg := smallConfig()
	cfg.TreeEntries, cfg.TreeWays = 32, 1
	var accs []trace.Access
	for a := 0; a < 300; a++ {
		accs = append(accs, trace.Access{Addr: uint64(a*16 + 2), Write: a%3 == 0})
	}
	tr := handTrace(map[int][]trace.Access{8: accs, 2: accs})
	m, _ := runTrace(t, cfg, tr, 2)
	if m.Counters.Get("tree.proactive_evictions") == 0 {
		t.Fatal("proactive eviction never fired under tree-cache pressure")
	}
}

func TestTinyTreeCacheStress(t *testing.T) {
	// Heavy conflict pressure on a minuscule tree cache: conflict
	// evictions, stalls and possibly deadlock recovery must all resolve
	// and the verifier stay quiet.
	cfg := smallConfig()
	cfg.TreeEntries, cfg.TreeWays = 16, 1
	p, _ := trace.ProfileByName("fft")
	tr := trace.Generate(p, 16, 150, 3)
	m, _ := runTrace(t, cfg, tr, 4)
	if m.Counters.Get("tree.conflict_evictions") == 0 &&
		m.Counters.Get("tree.proactive_evictions") == 0 {
		t.Fatal("tiny tree cache produced no evictions at all")
	}
}

func TestSyntheticBenchmarksRunClean(t *testing.T) {
	for _, name := range []string{"fft", "wsp", "ocn"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, _ := trace.ProfileByName(name)
			tr := trace.Generate(p, 16, 250, 7)
			m, _ := runTrace(t, smallConfig(), tr, p.Think)
			if m.Lat.Read.N == 0 || m.Lat.Write.N == 0 {
				t.Fatal("missing reads or writes")
			}
		})
	}
}

func TestSmallL2TriggersRootEvictionTeardowns(t *testing.T) {
	cfg := smallConfig()
	cfg.L2Entries, cfg.L2Ways = 128, 2
	p, _ := trace.ProfileByName("rad")
	tr := trace.Generate(p, 16, 200, 9)
	m, _ := runTrace(t, cfg, tr, p.Think)
	if m.Counters.Get("l2.evictions") == 0 {
		t.Fatal("small L2 produced no evictions")
	}
}

func Test64NodeRunsClean(t *testing.T) {
	cfg := smallConfig()
	cfg.Topology = network.MeshSpec(8, 8)
	p, _ := trace.ProfileByName("bar")
	tr := trace.Generate(p, 64, 60, 21)
	m, _ := runTrace(t, cfg, tr, p.Think)
	if m.Lat.Read.N == 0 {
		t.Fatal("no reads on 64 nodes")
	}
}

func TestAboveNetworkModeIsSlower(t *testing.T) {
	p, _ := trace.ProfileByName("wns")
	tr := trace.Generate(p, 16, 200, 5)
	cfgIn := smallConfig()
	mIn, _ := runTrace(t, cfgIn, tr, p.Think)
	cfgAbove := smallConfig()
	cfgAbove.AboveNetworkTree = true
	mAbove, _ := runTrace(t, cfgAbove, tr, p.Think)
	if !(mAbove.Lat.Read.Mean() > mIn.Lat.Read.Mean()) {
		t.Fatalf("above-network reads (%.1f) not slower than in-network (%.1f)",
			mAbove.Lat.Read.Mean(), mIn.Lat.Read.Mean())
	}
}

func TestDeadlockRecoveryAccounting(t *testing.T) {
	// Brutal contention on a direct-mapped, tiny tree cache with many
	// writers should exercise the timeout/backoff path at least once;
	// when it does, deadlock cycles must be accounted.
	cfg := smallConfig()
	cfg.TreeEntries, cfg.TreeWays = 16, 1
	scripts := map[int][]trace.Access{}
	for n := 0; n < 16; n++ {
		var accs []trace.Access
		for a := 0; a < 60; a++ {
			accs = append(accs, trace.Access{Addr: uint64((a%24)*16 + n%4), Write: a%2 == 0})
		}
		scripts[n] = accs
	}
	m, _ := runTrace(t, cfg, handTrace(scripts), 2)
	aborts := m.Counters.Get("tree.deadlock_aborts")
	if aborts > 0 && m.Lat.DeadlockRead.Sum+m.Lat.DeadlockWrite.Sum == 0 {
		t.Fatal("deadlock aborts occurred but no recovery cycles were accounted")
	}
	t.Logf("deadlock aborts: %d", aborts)
}
