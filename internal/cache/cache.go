// Package cache implements the generic set-associative, LRU-replacement tag
// store shared by every cache-like structure in the system: the per-node L2
// data caches, the baseline protocol's directory caches, and the in-network
// protocol's virtual tree caches.
//
// Addresses handed to this package are line addresses (the block offset has
// already been stripped). The set index is the low bits of the line address
// and the tag the remaining high bits, exactly as the paper's
// <tag, index, offset> parse of the packet header (Section 2.3).
//
// The tree cache needs operations a plain cache does not: allocate only into
// an invalid way (tree construction must never silently evict another tree),
// find the LRU line of a set subject to a predicate (teardowns must skip
// lines that are already being torn down), and scan a set. Those primitives
// live here so all three cache users share one replacement implementation.
package cache

// Cache is a set-associative cache mapping line addresses to a payload of
// type V. It is a pure tag store: timing is modeled by its callers.
type Cache[V any] struct {
	sets    []set[V]
	ways    int
	numSets int
	clock   uint64

	// Hits and Misses count Lookup results for miss-rate reporting.
	Hits   int64
	Misses int64
}

type set[V any] struct {
	lines []line[V]
}

type line[V any] struct {
	tag   uint64
	valid bool
	lru   uint64
	val   V
}

// New returns a cache with the given total number of entries and
// associativity. It panics if entries is not a positive multiple of ways.
func New[V any](entries, ways int) *Cache[V] {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("cache: entries must be a positive multiple of ways")
	}
	numSets := entries / ways
	c := &Cache[V]{ways: ways, numSets: numSets, sets: make([]set[V], numSets)}
	for i := range c.sets {
		c.sets[i].lines = make([]line[V], ways)
	}
	return c
}

// Ways returns the associativity.
func (c *Cache[V]) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache[V]) Sets() int { return c.numSets }

// Entries returns the total capacity in lines.
func (c *Cache[V]) Entries() int { return c.numSets * c.ways }

func (c *Cache[V]) setIndex(addr uint64) int { return int(addr % uint64(c.numSets)) }
func (c *Cache[V]) tag(addr uint64) uint64   { return addr / uint64(c.numSets) }

// addrOf reconstructs the line address stored in a given set/tag pair.
func (c *Cache[V]) addrOf(setIdx int, tag uint64) uint64 {
	return tag*uint64(c.numSets) + uint64(setIdx)
}

func (c *Cache[V]) find(addr uint64) *line[V] {
	s := &c.sets[c.setIndex(addr)]
	tag := c.tag(addr)
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].tag == tag {
			return &s.lines[i]
		}
	}
	return nil
}

// Lookup returns a pointer to the payload of addr and updates LRU state on a
// hit. The pointer stays valid until the line is evicted or invalidated.
func (c *Cache[V]) Lookup(addr uint64) (*V, bool) {
	if ln := c.find(addr); ln != nil {
		c.clock++
		ln.lru = c.clock
		c.Hits++
		return &ln.val, true
	}
	c.Misses++
	return nil, false
}

// Peek is Lookup without LRU update or hit/miss accounting, for inspection
// by verifiers and tests.
func (c *Cache[V]) Peek(addr uint64) (*V, bool) {
	if ln := c.find(addr); ln != nil {
		return &ln.val, true
	}
	return nil, false
}

// Insert allocates a line for addr, evicting the LRU line of the set if the
// set is full. It returns a pointer to the (zeroed) payload, plus the
// evicted line's address and payload if an eviction occurred. If addr is
// already present its payload is returned unchanged (treated as a hit).
func (c *Cache[V]) Insert(addr uint64) (v *V, evictedAddr uint64, evictedVal V, evicted bool) {
	if ln := c.find(addr); ln != nil {
		c.clock++
		ln.lru = c.clock
		return &ln.val, 0, evictedVal, false
	}
	s := &c.sets[c.setIndex(addr)]
	victim := -1
	for i := range s.lines {
		if !s.lines[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(s.lines); i++ {
			if s.lines[i].lru < s.lines[victim].lru {
				victim = i
			}
		}
		evicted = true
		evictedAddr = c.addrOf(c.setIndex(addr), s.lines[victim].tag)
		evictedVal = s.lines[victim].val
	}
	c.clock++
	var zero V
	s.lines[victim] = line[V]{tag: c.tag(addr), valid: true, lru: c.clock, val: zero}
	return &s.lines[victim].val, evictedAddr, evictedVal, evicted
}

// InsertNoEvict allocates a line for addr only if the set has an invalid
// way (or addr is already present). It reports whether allocation happened.
// Tree construction uses this: a reply must explicitly tear down a victim
// tree rather than silently replace it.
func (c *Cache[V]) InsertNoEvict(addr uint64) (*V, bool) {
	if ln := c.find(addr); ln != nil {
		c.clock++
		ln.lru = c.clock
		return &ln.val, true
	}
	s := &c.sets[c.setIndex(addr)]
	for i := range s.lines {
		if !s.lines[i].valid {
			c.clock++
			var zero V
			s.lines[i] = line[V]{tag: c.tag(addr), valid: true, lru: c.clock, val: zero}
			return &s.lines[i].val, true
		}
	}
	return nil, false
}

// Invalidate removes addr from the cache, returning its payload and whether
// it was present.
func (c *Cache[V]) Invalidate(addr uint64) (V, bool) {
	var zero V
	if ln := c.find(addr); ln != nil {
		v := ln.val
		ln.valid = false
		ln.val = zero
		return v, true
	}
	return zero, false
}

// HasFreeWay reports whether the set addr maps to has at least one invalid
// way.
func (c *Cache[V]) HasFreeWay(addr uint64) bool {
	s := &c.sets[c.setIndex(addr)]
	for i := range s.lines {
		if !s.lines[i].valid {
			return true
		}
	}
	return false
}

// LRUVictim returns the least-recently-used valid line in addr's set for
// which keep returns true, as (lineAddress, payload pointer, ok). A nil keep
// accepts every valid line. The line addressed by addr itself is excluded.
func (c *Cache[V]) LRUVictim(addr uint64, keep func(lineAddr uint64, v *V) bool) (uint64, *V, bool) {
	setIdx := c.setIndex(addr)
	s := &c.sets[setIdx]
	tag := c.tag(addr)
	best := -1
	for i := range s.lines {
		ln := &s.lines[i]
		if !ln.valid || ln.tag == tag {
			continue
		}
		if keep != nil && !keep(c.addrOf(setIdx, ln.tag), &ln.val) {
			continue
		}
		if best < 0 || ln.lru < s.lines[best].lru {
			best = i
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	return c.addrOf(setIdx, s.lines[best].tag), &s.lines[best].val, true
}

// ScanSet calls fn for every valid line in addr's set until fn returns
// false.
func (c *Cache[V]) ScanSet(addr uint64, fn func(lineAddr uint64, v *V) bool) {
	setIdx := c.setIndex(addr)
	s := &c.sets[setIdx]
	for i := range s.lines {
		if !s.lines[i].valid {
			continue
		}
		if !fn(c.addrOf(setIdx, s.lines[i].tag), &s.lines[i].val) {
			return
		}
	}
}

// ScanAll calls fn for every valid line in the cache until fn returns
// false. It is used by structural invariant checks at quiescence.
func (c *Cache[V]) ScanAll(fn func(lineAddr uint64, v *V) bool) {
	for setIdx := range c.sets {
		s := &c.sets[setIdx]
		for i := range s.lines {
			if !s.lines[i].valid {
				continue
			}
			if !fn(c.addrOf(setIdx, s.lines[i].tag), &s.lines[i].val) {
				return
			}
		}
	}
}

// Len returns the number of valid lines currently held.
func (c *Cache[V]) Len() int {
	n := 0
	for setIdx := range c.sets {
		for i := range c.sets[setIdx].lines {
			if c.sets[setIdx].lines[i].valid {
				n++
			}
		}
	}
	return n
}

// MissRate returns Misses/(Hits+Misses), or 0 before any lookup.
func (c *Cache[V]) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}
