package cache

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct{ entries, ways int }{{0, 1}, {4, 0}, {5, 2}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", tc.entries, tc.ways)
				}
			}()
			New[int](tc.entries, tc.ways)
		}()
	}
}

func TestGeometry(t *testing.T) {
	c := New[int](4096, 4)
	if c.Ways() != 4 || c.Sets() != 1024 || c.Entries() != 4096 {
		t.Fatalf("geometry %d/%d/%d", c.Ways(), c.Sets(), c.Entries())
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	c := New[string](16, 2)
	v, _, _, ev := c.Insert(100)
	if ev {
		t.Fatal("insert into empty cache evicted")
	}
	*v = "hello"
	got, ok := c.Lookup(100)
	if !ok || *got != "hello" {
		t.Fatalf("Lookup(100) = %v %v", got, ok)
	}
	if _, ok := c.Lookup(101); ok {
		t.Fatal("Lookup of absent address hit")
	}
}

func TestInsertExistingIsHitNotReset(t *testing.T) {
	c := New[int](8, 2)
	v, _, _, _ := c.Insert(5)
	*v = 42
	v2, _, _, ev := c.Insert(5)
	if ev {
		t.Fatal("re-insert evicted")
	}
	if *v2 != 42 {
		t.Fatalf("re-insert zeroed payload: %d", *v2)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, 1 set: addresses all collide.
	c := New[int](2, 2)
	c.Insert(1)
	c.Insert(2)
	c.Lookup(1) // 1 is now MRU; 2 is LRU
	_, evAddr, _, ev := c.Insert(3)
	if !ev || evAddr != 2 {
		t.Fatalf("evicted %v (ok=%v), want 2", evAddr, ev)
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("MRU line 1 was evicted")
	}
	if _, ok := c.Peek(3); !ok {
		t.Fatal("inserted line 3 missing")
	}
}

func TestEvictionReturnsPayload(t *testing.T) {
	c := New[int](1, 1)
	v, _, _, _ := c.Insert(7)
	*v = 99
	_, evAddr, evVal, ev := c.Insert(8)
	if !ev || evAddr != 7 || evVal != 99 {
		t.Fatalf("eviction returned (%d,%d,%v), want (7,99,true)", evAddr, evVal, ev)
	}
}

func TestSetIndexingSeparatesSets(t *testing.T) {
	c := New[int](4, 1) // 4 sets, direct mapped
	c.Insert(0)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	for a := uint64(0); a < 4; a++ {
		if _, ok := c.Peek(a); !ok {
			t.Fatalf("address %d missing; sets not independent", a)
		}
	}
	// 4 aliases with the same index evict each other.
	_, evAddr, _, ev := c.Insert(4)
	if !ev || evAddr != 0 {
		t.Fatalf("alias insert evicted %d (ok=%v), want 0", evAddr, ev)
	}
}

func TestInsertNoEvict(t *testing.T) {
	c := New[int](2, 2)
	if _, ok := c.InsertNoEvict(1); !ok {
		t.Fatal("InsertNoEvict failed with free ways")
	}
	if _, ok := c.InsertNoEvict(2); !ok {
		t.Fatal("InsertNoEvict failed with one free way")
	}
	if _, ok := c.InsertNoEvict(3); ok {
		t.Fatal("InsertNoEvict succeeded on a full set")
	}
	// Existing line is fine even when full.
	v, ok := c.InsertNoEvict(1)
	if !ok || v == nil {
		t.Fatal("InsertNoEvict of resident address failed")
	}
	if _, ok := c.Peek(2); !ok {
		t.Fatal("resident line lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int](4, 2)
	v, _, _, _ := c.Insert(9)
	*v = 7
	val, ok := c.Invalidate(9)
	if !ok || val != 7 {
		t.Fatalf("Invalidate returned (%d,%v)", val, ok)
	}
	if _, ok := c.Peek(9); ok {
		t.Fatal("line still present after Invalidate")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double Invalidate reported presence")
	}
}

func TestHasFreeWay(t *testing.T) {
	c := New[int](2, 2)
	if !c.HasFreeWay(0) {
		t.Fatal("empty set reported full")
	}
	c.Insert(0)
	c.Insert(2)
	if c.HasFreeWay(4) {
		t.Fatal("full set reported free")
	}
	c.Invalidate(0)
	if !c.HasFreeWay(4) {
		t.Fatal("set with invalidated way reported full")
	}
}

func TestLRUVictim(t *testing.T) {
	c := New[int](4, 4)
	c.Insert(0)
	c.Insert(4)
	c.Insert(8)
	c.Lookup(0) // 4 is now LRU
	addr, v, ok := c.LRUVictim(12, nil)
	if !ok || addr != 4 || v == nil {
		t.Fatalf("LRUVictim = (%d,%v,%v), want 4", addr, v, ok)
	}
	// Predicate can exclude the LRU line.
	addr, _, ok = c.LRUVictim(12, func(a uint64, _ *int) bool { return a != 4 })
	if !ok || addr != 8 {
		t.Fatalf("filtered LRUVictim = (%d,%v), want 8", addr, ok)
	}
	// Excludes the probe address itself.
	addr, _, ok = c.LRUVictim(4, nil)
	if !ok || addr == 4 {
		t.Fatalf("LRUVictim returned probe address")
	}
	// No candidates.
	c2 := New[int](4, 4)
	if _, _, ok := c2.LRUVictim(0, nil); ok {
		t.Fatal("LRUVictim found a line in an empty cache")
	}
}

func TestScanSetAndScanAll(t *testing.T) {
	c := New[int](8, 2) // 4 sets
	c.Insert(1)
	c.Insert(5) // same set as 1
	c.Insert(2)
	var setAddrs []uint64
	c.ScanSet(1, func(a uint64, _ *int) bool {
		setAddrs = append(setAddrs, a)
		return true
	})
	if len(setAddrs) != 2 {
		t.Fatalf("ScanSet saw %v, want 2 lines", setAddrs)
	}
	n := 0
	c.ScanAll(func(uint64, *int) bool { n++; return true })
	if n != 3 {
		t.Fatalf("ScanAll saw %d lines, want 3", n)
	}
	// Early termination.
	n = 0
	c.ScanAll(func(uint64, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ScanAll ignored early stop, saw %d", n)
	}
}

func TestLenAndMissRate(t *testing.T) {
	c := New[int](8, 2)
	if c.Len() != 0 || c.MissRate() != 0 {
		t.Fatal("fresh cache not empty")
	}
	c.Insert(1)
	c.Insert(2)
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
	c.Lookup(1)
	c.Lookup(99)
	if c.MissRate() != 0.5 {
		t.Fatalf("MissRate=%v, want 0.5", c.MissRate())
	}
}

// Property: the reconstructed line address of every resident line equals the
// address it was inserted under, across random address streams and cache
// shapes.
func TestAddressReconstructionProperty(t *testing.T) {
	shapes := []struct{ entries, ways int }{{16, 1}, {16, 2}, {64, 4}, {32, 8}}
	err := quick.Check(func(addrs []uint16, shapeIdx uint8) bool {
		sh := shapes[int(shapeIdx)%len(shapes)]
		c := New[uint64](sh.entries, sh.ways)
		for _, a16 := range addrs {
			a := uint64(a16)
			v, _, _, _ := c.Insert(a)
			*v = a
		}
		good := true
		c.ScanAll(func(lineAddr uint64, v *uint64) bool {
			if lineAddr != *v {
				good = false
				return false
			}
			return true
		})
		return good
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity and Insert always leaves the
// inserted address resident.
func TestOccupancyProperty(t *testing.T) {
	err := quick.Check(func(addrs []uint16) bool {
		c := New[int](32, 4)
		for _, a16 := range addrs {
			a := uint64(a16)
			c.Insert(a)
			if _, ok := c.Peek(a); !ok {
				return false
			}
			if c.Len() > c.Entries() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: InsertNoEvict never removes any resident line.
func TestInsertNoEvictNeverEvictsProperty(t *testing.T) {
	err := quick.Check(func(addrs []uint16) bool {
		c := New[int](16, 2)
		resident := map[uint64]bool{}
		for _, a16 := range addrs {
			a := uint64(a16)
			if _, ok := c.InsertNoEvict(a); ok {
				resident[a] = true
			}
			for r := range resident {
				if _, ok := c.Peek(r); !ok {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
