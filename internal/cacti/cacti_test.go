package cacti

import "testing"

// paperTable3 is the published access-cycle grid, [way][size].
var paperTable3 = [][]int{
	{2, 2, 2, 2, 3, 4}, // direct mapped
	{2, 2, 2, 2, 3, 4}, // 2-way
	{2, 2, 2, 2, 3, 4}, // 4-way
	{2, 2, 2, 3, 3, 4}, // 8-way
	{2, 2, 2, 3, 3, 3}, // 16-way
}

func TestTable3CyclesMatchPaper(t *testing.T) {
	res := Table3()
	mismatches := 0
	for i := range Table3Ways {
		for j := range Table3Sizes {
			got := res[i][j].AccessCycles
			want := paperTable3[i][j]
			if got != want {
				mismatches++
				t.Logf("ways=%d size=%d: %d cycles, paper %d", Table3Ways[i], Table3Sizes[j], got, want)
				if d := got - want; d < -1 || d > 1 {
					t.Errorf("ways=%d size=%d off by more than one cycle", Table3Ways[i], Table3Sizes[j])
				}
			}
		}
	}
	// The simplified model reproduces 29 of 30 cells (the 16K/16-way
	// banking quirk is documented in the package comment).
	if mismatches > 1 {
		t.Errorf("%d grid mismatches, want <= 1", mismatches)
	}
}

func TestNominalTreeCacheIsTwoCycles(t *testing.T) {
	// The paper's chosen configuration: 4K entries, 4-way -> 2 cycles.
	r := Evaluate(TreeCacheConfig(4096, 4))
	if r.AccessCycles != 2 {
		t.Fatalf("nominal tree cache %d cycles, want 2", r.AccessCycles)
	}
}

func TestNominalAreaMagnitude(t *testing.T) {
	// Paper: 0.51 mm² for the 4K 4-way tree cache; the model must land
	// in the same magnitude (0.3-0.8 mm²), negligible next to a 4 mm²
	// RAW tile.
	r := Evaluate(TreeCacheConfig(4096, 4))
	if r.AreaMM2 < 0.3 || r.AreaMM2 > 0.8 {
		t.Fatalf("nominal area %.3f mm² outside [0.3, 0.8]", r.AreaMM2)
	}
}

func TestAreaMonotoneInSize(t *testing.T) {
	for _, w := range Table3Ways {
		prev := 0.0
		for _, s := range Table3Sizes {
			a := Evaluate(TreeCacheConfig(s, w)).AreaMM2
			if a <= prev {
				t.Fatalf("area not increasing with size at ways=%d size=%d", w, s)
			}
			prev = a
		}
	}
}

func TestAccessTimeMonotoneInSizePerWay(t *testing.T) {
	for _, w := range Table3Ways {
		prev := 0.0
		for _, s := range Table3Sizes {
			ns := Evaluate(TreeCacheConfig(s, w)).AccessTimeNs
			if ns < prev {
				t.Fatalf("access time decreasing with size at ways=%d size=%d", w, s)
			}
			prev = ns
		}
	}
}

func TestEvaluatePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	Evaluate(Config{Entries: 100, Ways: 3})
}
