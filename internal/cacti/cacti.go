// Package cacti is a simplified analytical cache access-time and area model
// in the style of Cacti / the Wilton–Jouppi enhanced access and cycle time
// model, which the paper uses to derive Table 3 (tree cache access time and
// area across sizes and associativities at 0.18 µm, 500 MHz).
//
// The model decomposes an access into decoder, wordline, bitline, sense
// amplifier, comparator and global-wire delays, and — like real Cacti —
// optimizes over subarray banking: the row array may be split into 1–8
// banks, trading shorter bitlines against bank-select multiplexing. Global
// wire delay grows with the square root of the macro size and is relieved
// slightly by associativity (wider, squarer subarrays route shorter).
// Constants are fitted at the paper's 0.18 µm / 500 MHz point so that the
// published Table 3 cycle grid is reproduced in 29 of 30 cells exactly (the
// remaining cell, 16K entries at 16-way, comes out one cycle high — a
// banking-topology quirk of real Cacti the simplified model does not
// capture). Area follows bit-cell area plus per-row and per-way periphery,
// matching Table 3's magnitudes and trends.
package cacti

import "math"

// Config describes a cache organization to evaluate.
type Config struct {
	Entries int // total entries (tag + payload pairs)
	Ways    int // associativity (1 = direct mapped)
	TagBits int
	// DataBits is the payload width per entry; the paper's virtual tree
	// cache line is 9 bits (Figure 4) next to a 19-bit tag.
	DataBits int
	// ReadPorts and WritePorts are carried for documentation; the paper
	// evaluates a maximally ported (5R/5W) tree cache, which the fitted
	// constants below already embed.
	ReadPorts, WritePorts int
}

// TreeCacheConfig returns the paper's tree cache organization for a given
// size and associativity: 19-bit tag, 9-bit line, 5 read and 5 write ports.
func TreeCacheConfig(entries, ways int) Config {
	return Config{Entries: entries, Ways: ways, TagBits: 19, DataBits: 9, ReadPorts: 5, WritePorts: 5}
}

// Result is the model's output for one configuration.
type Result struct {
	AccessTimeNs float64
	// AccessCycles is the access time quantized to whole cycles at the
	// evaluation clock (500 MHz).
	AccessCycles int
	// AreaMM2 is the estimated macro area in mm².
	AreaMM2 float64
}

// Fitted process constants for the paper's 0.18 µm, 500 MHz evaluation.
const (
	clockNs = 2.0 // 500 MHz

	tBase       = 0.177403 // sense amp + output drive overhead (ns)
	tDecodePer  = 0.030291 // per log2(rows per bank)
	tWordPer    = 0.000602 // per bit of physical row width
	tBitPer     = 0.000783 // per row of bitline height in a bank
	tMuxPer     = 0.244004 // per log2(bank count) of bank-select muxing
	tCmpPer     = 0.371617 // per log2(ways) of comparator/way mux
	tWirePer    = 2.916363 // global wire: per sqrt(entries)/100
	tWireRelief = 0.071303 // wire relief per log2(ways): squarer floorplan
)

// Area constants (µm²) embedding the 10-port bit cell.
const (
	cellUM2      = 3.8   // per bit
	rowPeriphUM2 = 18.0  // per physical row (decoder slice)
	wayPeriphUM2 = 200.0 // per way per entry-bit (sense/compare column)
)

// bankChoices is the set of subarray splits the optimizer considers.
var bankChoices = []int{1, 2, 4, 8}

// Evaluate runs the analytical model for cfg.
func Evaluate(cfg Config) Result {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("cacti: bad configuration")
	}
	rows := cfg.Entries / cfg.Ways
	bitsPerEntry := cfg.TagBits + cfg.DataBits
	rowWidth := bitsPerEntry * cfg.Ways

	logWays := math.Log2(float64(cfg.Ways) + 1)
	wire := (tWirePer - tWireRelief*logWays) * math.Sqrt(float64(cfg.Entries)) / 100.0
	best := math.Inf(1)
	for _, b := range bankChoices {
		bankRows := rows / b
		if bankRows < 1 {
			continue
		}
		t := tBase +
			tDecodePer*math.Log2(float64(bankRows)+1) +
			tWordPer*float64(rowWidth) +
			tBitPer*float64(bankRows) +
			tMuxPer*math.Log2(float64(b)+1) +
			tCmpPer*logWays +
			wire
		if t < best {
			best = t
		}
	}
	cycles := int(math.Ceil(best / clockNs))
	if cycles < 1 {
		cycles = 1
	}

	bitsTotal := float64(cfg.Entries * bitsPerEntry)
	um2 := bitsTotal*cellUM2 +
		float64(rows)*rowPeriphUM2 +
		float64(cfg.Ways*bitsPerEntry)*wayPeriphUM2
	return Result{AccessTimeNs: best, AccessCycles: cycles, AreaMM2: um2 / 1e6}
}

// Table3Sizes and Table3Ways are the size/associativity grid of the paper's
// Table 3.
var (
	Table3Sizes = []int{512, 1024, 2048, 4096, 8192, 16384}
	Table3Ways  = []int{1, 2, 4, 8, 16}
)

// Table3 evaluates the full Table 3 grid for the paper's tree cache
// organization, returning results indexed [way][size].
func Table3() [][]Result {
	out := make([][]Result, len(Table3Ways))
	for i, w := range Table3Ways {
		out[i] = make([]Result, len(Table3Sizes))
		for j, s := range Table3Sizes {
			out[i][j] = Evaluate(TreeCacheConfig(s, w))
		}
	}
	return out
}
