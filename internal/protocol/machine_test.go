package protocol

import (
	"testing"

	"innetcc/internal/network"
	"innetcc/internal/trace"
)

// echoEngine is a minimal coherence engine for machine-level tests: every
// miss is sent to the line's home node and answered with a reply after a
// fixed service delay; writes commit at the requester.
type echoEngine struct {
	m       *Machine
	service int64
	misses  int
}

func newEchoEngine(m *Machine) *echoEngine {
	e := &echoEngine{m: m, service: 4}
	mesh := network.Build(m.Kernel, network.Config{
		Topo:     m.Cfg.Topology.Build(),
		Pipeline: m.Cfg.BasePipeline,
		Policy:   network.DestPolicy{},
	})
	m.AttachEngine(e, mesh)
	return e
}

func (e *echoEngine) StartMiss(node int, addr uint64, write bool, now int64) {
	e.misses++
	t := RdReq
	if write {
		t = WrReq
	}
	msg := &Msg{Type: t, Addr: addr, Requester: node, IssuedAt: now}
	e.m.Mesh.Inject(node, e.m.NewPacket(node, e.m.Cfg.Home(addr), msg), now)
}

func (e *echoEngine) Eject(node int, p *network.Packet, now int64) {
	msg := p.Payload.(*Msg)
	switch msg.Type {
	case RdReq:
		e.m.Kernel.Schedule(e.service, func() {
			v := e.m.Mem.Read(msg.Addr)
			e.m.Check.SampleRead(msg.Addr, v, v, msg.Requester, e.m.Kernel.Now())
			reply := &Msg{Type: RdReply, Addr: msg.Addr, Requester: msg.Requester, Version: v, IssuedAt: msg.IssuedAt}
			e.m.Mesh.Inject(node, e.m.NewPacket(node, msg.Requester, reply), e.m.Kernel.Now())
		})
	case WrReq:
		e.m.Kernel.Schedule(e.service, func() {
			reply := &Msg{Type: WrReply, Addr: msg.Addr, Requester: msg.Requester, IssuedAt: msg.IssuedAt}
			e.m.Mesh.Inject(node, e.m.NewPacket(node, msg.Requester, reply), e.m.Kernel.Now())
		})
	case RdReply:
		// Complete uncached: the echo engine does not maintain
		// invalidations, so caching would defeat the verifier.
		e.m.Check.ObserveRead(msg.Addr, msg.Version, node, now, false)
		e.m.CompleteAccess(node, false, now, 0)
	case WrReply:
		v := e.m.Check.CommitWrite(msg.Addr, node, now)
		e.m.Mem.Writeback(msg.Addr, v)
		e.m.CompleteAccess(node, true, now, 0)
	}
}

func (e *echoEngine) OnL2Evict(int, uint64, DataLine, int64) {}
func (e *echoEngine) Quiesced() bool                         { return true }

func echoTrace(scripts map[int][]trace.Access) *trace.Trace {
	tr := &trace.Trace{Name: "echo", PerNode: make([][]trace.Access, 16)}
	for n, s := range scripts {
		tr.PerNode[n] = s
	}
	return tr
}

func TestMachineRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = network.TopoSpec{Kind: "mesh", W: 0, H: 4}
	if _, err := NewMachine(cfg, echoTrace(nil), 5); err == nil {
		t.Fatal("bad mesh accepted")
	}
	cfg = DefaultConfig()
	if _, err := NewMachine(cfg, &trace.Trace{PerNode: make([][]trace.Access, 3)}, 5); err == nil {
		t.Fatal("trace/node mismatch accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BasePipeline = 0 },
		func(c *Config) { c.TreeEntries = 5 },
		func(c *Config) { c.DirWays = 0 },
		func(c *Config) { c.L2Entries = -1 },
		func(c *Config) { c.BackoffMax = c.BackoffMin - 1 },
		func(c *Config) { c.CtrlFlits = 0 },
		func(c *Config) { c.Topology = network.TopoSpec{Kind: "hypercube", W: 4, H: 4} },
		func(c *Config) { c.Topology = network.TorusSpec(1, 4) },
		func(c *Config) { c.Topology = network.RingSpec(1) },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestHomeMapping(t *testing.T) {
	cfg := DefaultConfig()
	seen := map[int]bool{}
	for a := uint64(0); a < 64; a++ {
		h := cfg.Home(a)
		if h < 0 || h >= cfg.Nodes() {
			t.Fatalf("home %d out of range", h)
		}
		seen[h] = true
	}
	if len(seen) != cfg.Nodes() {
		t.Fatalf("homes cover %d of %d nodes", len(seen), cfg.Nodes())
	}
}

func TestRequirementFourSerializesPerNode(t *testing.T) {
	// A node's second access must not be issued before its first reply
	// returns: with the echo engine, misses arrive one at a time.
	cfg := DefaultConfig()
	m, err := NewMachine(cfg, echoTrace(map[int][]trace.Access{
		3: {{Addr: 1}, {Addr: 2}, {Addr: 3}},
	}), 1)
	if err != nil {
		t.Fatal(err)
	}
	e := newEchoEngine(m)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if e.misses != 3 {
		t.Fatalf("%d misses, want 3", e.misses)
	}
	if m.Lat.Read.N != 3 {
		t.Fatalf("%d completions, want 3", m.Lat.Read.N)
	}
	// Serialized round trips can never overlap: total runtime must be at
	// least 3x one round trip (which is > 2*pipeline).
	if m.Kernel.Now() < 3*2*cfg.BasePipeline {
		t.Fatalf("finished suspiciously fast at cycle %d", m.Kernel.Now())
	}
}

func TestLocalHitsBypassEngine(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewMachine(cfg, echoTrace(map[int][]trace.Access{
		2: {{Addr: 8, Write: true}, {Addr: 8, Write: true}, {Addr: 8}},
	}), 1)
	if err != nil {
		t.Fatal(err)
	}
	e := newEchoEngine(m)
	// Pre-install the line as Modified so every access is a local hit.
	m.InstallLine(2, 8, Modified, 0, 0)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if e.misses != 0 {
		t.Fatalf("local hits leaked %d misses to the engine", e.misses)
	}
	if m.LocalHits != 3 {
		t.Fatalf("LocalHits=%d, want 3", m.LocalHits)
	}
}

func TestUpgradeMissForSharedWrite(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewMachine(cfg, echoTrace(map[int][]trace.Access{
		2: {{Addr: 8, Write: true}},
	}), 1)
	if err != nil {
		t.Fatal(err)
	}
	e := newEchoEngine(m)
	m.InstallLine(2, 8, Shared, 0, 0)
	m.InvalidateLine(2, 8, 0) // drop it again so the verifier stays exact
	m.InstallLine(2, 8, Shared, 0, 0)
	if err := m.Run(1_000_000); err == nil {
		// A write to a Shared line must reach the engine as a miss.
		if e.misses != 1 {
			t.Fatalf("shared-write upgrade produced %d misses, want 1", e.misses)
		}
	} else {
		t.Fatal(err)
	}
}

func TestNICScheduleSerializes(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewMachine(cfg, echoTrace(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	newEchoEngine(m)
	var done []int64
	for i := 0; i < 3; i++ {
		m.NICSchedule(0, 10, func() { done = append(done, m.Kernel.Now()) })
	}
	m.Kernel.Run(100)
	if len(done) != 3 {
		t.Fatalf("%d NIC services ran, want 3", len(done))
	}
	// Single-ported: completions at 10, 20, 30.
	for i, at := range done {
		want := int64(10 * (i + 1))
		if at != want {
			t.Fatalf("service %d finished at %d, want %d", i, at, want)
		}
	}
	// A different node's port is independent.
	var other int64
	m.NICSchedule(1, 10, func() { other = m.Kernel.Now() })
	m.Kernel.Run(200)
	if other != 110 {
		t.Fatalf("node 1 service at %d, want 110", other)
	}
}

func TestInstallEvictionWritesBackDirty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Entries, cfg.L2Ways = 2, 1
	m, err := NewMachine(cfg, echoTrace(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	newEchoEngine(m)
	m.Check.RegisterCopy(0, 0) // make CommitWrite's registry exact
	v := m.Check.CommitWrite(0, 0, 0)
	m.InstallLine(0, 0, Modified, v, 0)
	// Alias in the same set evicts the dirty line.
	m.InstallLine(0, 2, Shared, 0, 0)
	m.Kernel.Run(5)
	if got := m.Mem.Peek(0); got != v {
		t.Fatalf("dirty eviction did not write back: mem=%d want %d", got, v)
	}
	if m.Counters.Get("l2.evictions") != 1 {
		t.Fatalf("eviction counter %d, want 1", m.Counters.Get("l2.evictions"))
	}
}

func TestStuckReportNamesBlockedAccess(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewMachine(cfg, echoTrace(map[int][]trace.Access{5: {{Addr: 0x77}}}), 1)
	if err != nil {
		t.Fatal(err)
	}
	// blackholeEngine: swallows every miss.
	mesh := network.Build(m.Kernel, network.Config{
		Topo:     cfg.Topology.Build(),
		Pipeline: cfg.BasePipeline,
		Policy:   network.DestPolicy{},
	})
	m.AttachEngine(blackhole{}, mesh)
	err = m.Run(1000)
	if err == nil {
		t.Fatal("blackhole run did not report stuck")
	}
	if got := err.Error(); !contains(got, "0x77") || !contains(got, "node 5") {
		t.Fatalf("stuck report missing context: %q", got)
	}
}

type blackhole struct{}

func (blackhole) StartMiss(int, uint64, bool, int64)     {}
func (blackhole) Eject(int, *network.Packet, int64)      {}
func (blackhole) OnL2Evict(int, uint64, DataLine, int64) {}
func (blackhole) Quiesced() bool                         { return true }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMsgTypeStrings(t *testing.T) {
	types := []MsgType{RdReq, WrReq, RdReply, WrReply, Inv, InvAck, Fwd, FwdDone, FwdMiss, WbNotice, Teardown, TdAck}
	seen := map[string]bool{}
	for _, tp := range types {
		s := tp.String()
		if s == "" || seen[s] {
			t.Fatalf("message type %d has bad/duplicate name %q", tp, s)
		}
		seen[s] = true
	}
	if !RdReply.IsData() || !Fwd.IsData() {
		t.Fatal("data-bearing types misclassified")
	}
	if WrReply.IsData() || Teardown.IsData() {
		t.Fatal("control types misclassified as data")
	}
}

func TestDStateString(t *testing.T) {
	if Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("DState strings wrong")
	}
}
