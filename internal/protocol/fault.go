package protocol

// Fault recovery: the machine-side half of internal/fault. The network
// injects drops, corruptions and stalls; this file implements what the
// protocol does about them — per-request reply timeouts with bounded
// exponential-backoff reissue, drop NACKs that short-circuit the timeout,
// stale-reply rejection across reissue epochs, a periodic runtime probe of
// the coherence invariants, and the hang dump written when a run fails to
// quiesce. Everything here is inert (zero overhead beyond a flag check)
// unless the corresponding Config knob or fault plan arms it.

import (
	"fmt"
	"math"
	"os"
	"strings"

	"innetcc/internal/fault"
	"innetcc/internal/metrics"
	"innetcc/internal/network"
)

// fail latches the first fatal fault-layer error; Run's done predicate
// polls it so the simulation stops at the failing cycle.
func (m *Machine) fail(err error) {
	if m.fatal == nil {
		m.fatal = err
	}
}

// Fatal returns the latched fatal fault error, if any (for tests that
// inspect state mid-run).
func (m *Machine) Fatal() error { return m.fatal }

// CurrentAttempt returns the reissue epoch of node's outstanding access.
// Engines stamp it into the requests they build so every message of the
// serving chain carries the epoch it belongs to.
func (m *Machine) CurrentAttempt(node int) uint16 { return m.Nodes[node].attempt }

// DropStaleReply reports whether a reply arriving at node belongs to an
// abandoned reissue epoch (or to no outstanding access at all) and must be
// discarded instead of completing the access. With retry disarmed it never
// fires — replies can then only be current, and any mismatch is a protocol
// bug better caught by the engine's own panics.
func (m *Machine) DropStaleReply(node int, msg *Msg) bool {
	if !m.retryOn {
		return false
	}
	n := m.Nodes[node]
	if acc, ok := n.Pending(); ok && acc.Addr == msg.Addr && n.attempt == msg.Attempt {
		return false
	}
	m.Counters.Inc("retry.stale_replies", 1)
	return true
}

// retryOutstanding moves node n's outstanding access to the next reissue
// epoch: bump the attempt, charge exponential backoff, schedule a fresh
// StartMiss, and push the reply deadline out past the new attempt's
// timeout. Called from the Tick scan when the deadline passes, and from
// onPacketDrop as an immediate NACK. Exhausting the budget fails the run
// with a typed, seed-carrying error.
func (m *Machine) retryOutstanding(n *Node, now int64) {
	acc, ok := n.Pending()
	if !ok {
		return
	}
	if m.fatal != nil {
		n.retryAt = math.MaxInt64
		return
	}
	if int(n.attempt) >= m.Cfg.RetryBudget {
		m.fail(&fault.RetryExhaustedError{
			Node:     n.ID,
			Addr:     acc.Addr,
			Write:    acc.Write,
			Attempts: int(n.attempt) + 1,
			Cycle:    now,
			Seed:     m.Cfg.Seed,
		})
		n.retryAt = math.MaxInt64
		return
	}
	n.attempt++
	m.Counters.Inc("retry.reissues", 1)
	if c := m.Metrics; c != nil {
		c.Event(now, metrics.EvRetry, int16(n.ID), acc.Addr, int64(n.attempt))
	}
	backoff := m.Cfg.RetryBackoff
	if backoff < 1 {
		backoff = 1
	}
	shift := uint(n.attempt - 1)
	if shift > 20 {
		shift = 20 // cap the doubling; budgets are small anyway
	}
	backoff <<= shift
	n.retryAt = now + backoff + m.Cfg.RetryTimeout
	m.noteWake(n.retryAt)
	// A NACK can arrive while the machine is parked with no wake timer;
	// wake it so the new deadline is observed (same pattern as
	// CompleteAccess).
	m.Kernel.Wake(m.tid)
	attempt := n.attempt
	addr, write := acc.Addr, acc.Write
	m.Kernel.Schedule(backoff, func() {
		// Reissue only if this epoch is still the live one: the access
		// may have completed (a straggler reply of the old epoch
		// arrived first) or been retried again meanwhile.
		if !n.outstanding || n.attempt != attempt {
			return
		}
		if cur, ok := n.Pending(); !ok || cur.Addr != addr {
			return
		}
		m.engine.StartMiss(n.ID, addr, write, m.Kernel.Now())
	})
}

// onPacketDrop is the mesh's DropFn when fault injection is armed: count
// the loss, record it, and — when the dead packet was serving some
// requester's current attempt — treat the notification as a NACK and
// reissue immediately instead of waiting out the reply timeout.
func (m *Machine) onPacketDrop(p *network.Packet, reason fault.DropReason, now int64) {
	msg, ok := p.Payload.(*Msg)
	if c := m.Metrics; c != nil {
		var addr uint64
		node := int16(-1)
		if ok {
			addr = msg.Addr
			node = int16(msg.Requester)
		}
		c.Event(now, metrics.EvFaultDrop, node, addr, int64(reason))
	}
	if !ok || !m.retryOn {
		return
	}
	switch msg.Type {
	case RdReq, WrReq, RdReply, WrReply, Fwd, FwdMiss:
		// The serial request/reply chain: exactly one of these is alive
		// per attempt, so its loss means the attempt is dead.
	default:
		// Parallel traffic (invalidations, acks, teardowns) is not
		// replayable; losing it either self-heals or wedges the run
		// into the watchdog's arms.
		return
	}
	req := msg.Requester
	if req < 0 || req >= len(m.Nodes) {
		return
	}
	n := m.Nodes[req]
	acc, pending := n.Pending()
	if !pending || acc.Addr != msg.Addr || n.attempt != msg.Attempt {
		return
	}
	m.retryOutstanding(n, now)
}

// foldFaultCounters copies the injector's occurrence counts into the named
// counter map at the end of a run, so results and caches carry them. The
// one-shot guard keeps a segmented run (RunSegment callers may observe the
// terminal state more than once) from double-counting.
func (m *Machine) foldFaultCounters() {
	i := m.faults
	if i == nil || m.faultsFolded {
		return
	}
	m.faultsFolded = true
	m.Counters.Inc("fault.drops", i.Drops)
	m.Counters.Inc("fault.checksum_drops", i.ChecksumDrops)
	m.Counters.Inc("fault.corruptions", i.Corruptions)
	m.Counters.Inc("fault.stall_cycles", i.StallCycles)
}

// startInvariantProbe arms the periodic runtime check of the coherence
// invariants (lifted from internal/mcheck's end-state checks): at most one
// Modified copy per line, a Modified copy excludes all others, every
// cached copy holds the committed-current version, and no copy is beyond
// the commit counter. The probe stops rescheduling once every node has
// drained — the end-state diff covers quiescent state, and a perpetually
// pending probe event would hold off quiescence detection forever.
func (m *Machine) startInvariantProbe() {
	every := m.Cfg.ProbeInterval
	if every <= 0 || m.probeStarted {
		return
	}
	m.probeStarted = true
	var tick func()
	tick = func() {
		m.probeInvariants(m.Kernel.Now())
		if m.fatal == nil && !m.AllDone() {
			m.Kernel.Schedule(every, tick)
		}
	}
	m.Kernel.Schedule(every, tick)
}

// probeInvariants scans every L2 against the verifier's commit counters.
// Any violation is a real coherence corruption (the protocols never leave
// a stale or duplicate-writer copy installed, even transiently: commits
// strictly follow invalidation acknowledgment), so the run fails at this
// cycle instead of at the end-state diff.
func (m *Machine) probeInvariants(now int64) {
	m.Counters.Inc("fault.probes", 1)
	const maxViolations = 16
	type lineStat struct{ copies, modified int }
	stats := make(map[uint64]lineStat)
	var violations []string
	for _, n := range m.Nodes {
		node := n.ID
		n.L2.ScanAll(func(addr uint64, dl *DataLine) bool {
			s := stats[addr]
			s.copies++
			if dl.State == Modified {
				s.modified++
			}
			stats[addr] = s
			cur := m.Check.CurrentVersion(addr)
			if len(violations) < maxViolations {
				switch {
				case dl.Version > cur:
					violations = append(violations, fmt.Sprintf(
						"node %d holds addr %#x v%d beyond committed v%d", node, addr, dl.Version, cur))
				case dl.Version != cur:
					violations = append(violations, fmt.Sprintf(
						"node %d holds stale addr %#x v%d (committed v%d)", node, addr, dl.Version, cur))
				}
			}
			return true
		})
	}
	for addr, s := range stats {
		if len(violations) >= maxViolations {
			break
		}
		if s.modified > 1 {
			violations = append(violations, fmt.Sprintf(
				"addr %#x has %d Modified copies", addr, s.modified))
		} else if s.modified == 1 && s.copies > 1 {
			violations = append(violations, fmt.Sprintf(
				"addr %#x has a Modified copy alongside %d other copies", addr, s.copies-1))
		}
	}
	if len(violations) > 0 {
		m.fail(&fault.InvariantError{Cycle: now, Seed: m.Cfg.Seed, Violations: violations})
	}
}

// writeHangDump writes the hang diagnosis — stuck report, full per-router
// queue occupancy, and the flight-recorder tail when metrics are on — to
// the spec's HangDumpPath, recording the path in the error on success.
func (m *Machine) writeHangDump(herr *fault.HangError) {
	if m.hangDump == "" {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hang dump: cycle %d seed %#x watchdog=%v\n", herr.Cycle, herr.Seed, herr.Watchdog)
	fmt.Fprintf(&b, "stuck: %s\n", herr.Report)
	fmt.Fprintf(&b, "router queue occupancy: %s\n", m.queueOccupancy(0))
	if i := m.faults; i != nil {
		fmt.Fprintf(&b, "faults: drops=%d checksum_drops=%d corruptions=%d stall_cycles=%d\n",
			i.Drops, i.ChecksumDrops, i.Corruptions, i.StallCycles)
	}
	if c := m.Metrics; c != nil {
		events := c.Flight.Events()
		fmt.Fprintf(&b, "flight recorder (%d events retained, %d total):\n", len(events), c.Flight.Total())
		for _, e := range events {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
	} else {
		b.WriteString("flight recorder: disabled (run with metrics for event history)\n")
	}
	if err := os.WriteFile(m.hangDump, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "protocol: hang dump write failed: %v\n", err)
		return
	}
	herr.DumpPath = m.hangDump
}
