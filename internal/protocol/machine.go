package protocol

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"innetcc/internal/cache"
	"innetcc/internal/fault"
	"innetcc/internal/memory"
	"innetcc/internal/metrics"
	"innetcc/internal/network"
	"innetcc/internal/sim"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
	"innetcc/internal/verify"
)

// DState is a data cache line's MSI state. Invalid lines are simply absent
// from the cache, so only Shared and Modified are represented, matching the
// paper's observation that the data-cache state machine is unchanged by the
// in-network implementation.
type DState uint8

// Data cache line states.
const (
	Shared DState = iota
	Modified
)

func (s DState) String() string {
	if s == Modified {
		return "M"
	}
	return "S"
}

// DataLine is the payload of an L2 data cache line.
type DataLine struct {
	State   DState
	Version uint64
}

// Engine is a coherence protocol implementation: the baseline directory
// protocol or the in-network tree protocol.
type Engine interface {
	// StartMiss begins coherence handling for an access that could not
	// be satisfied by the node's local L2 (a miss, or a write to a
	// Shared line).
	StartMiss(node int, addr uint64, write bool, now int64)
	// Eject receives packets leaving the network at a node's network
	// interface.
	Eject(node int, p *network.Packet, now int64)
	// OnL2Evict is notified when the machine evicts an L2 line to make
	// room, so the protocol can clean up its metadata.
	OnL2Evict(node int, addr uint64, line DataLine, now int64)
	// Quiesced reports whether the engine holds no queued or deferred
	// work.
	Quiesced() bool
}

// Node is one processor tile: a trace-driven CPU and its L2 data cache.
type Node struct {
	ID int
	L2 *cache.Cache[DataLine]

	stream      []trace.Access
	idx         int
	outstanding bool
	issueAt     int64
	nextIssue   int64
	rng         *sim.RNG

	// attempt is the fault-recovery reissue epoch of the outstanding
	// access and retryAt its current reply deadline; both are dead
	// fields unless Config.RetryTimeout arms the retry layer.
	attempt uint16
	retryAt int64
}

// Done reports whether the node has issued and completed its whole stream.
func (n *Node) Done() bool { return n.idx >= len(n.stream) && !n.outstanding }

// Pending returns the access the node is currently blocked on.
func (n *Node) Pending() (trace.Access, bool) {
	if !n.outstanding || n.idx >= len(n.stream) {
		return trace.Access{}, false
	}
	return n.stream[n.idx], true
}

// Machine is the simulated chip multiprocessor: kernel, memory, verifier,
// nodes and the statistics the evaluation reports. The coherence engine is
// attached after construction (it builds the mesh with its own routing
// policy and pipeline depth).
type Machine struct {
	Cfg    Config
	Kernel *sim.Kernel
	Mem    *memory.Memory
	Check  *verify.Checker
	Nodes  []*Node
	Mesh   *network.Mesh

	Lat        stats.LatencyStats
	Counters   stats.Counters
	HomeCounts []int64
	LocalHits  int64

	// ReadSamples/WriteSamples, when non-nil, retain every access
	// latency for percentile reporting (attach with stats.Sampler).
	ReadSamples  *stats.Sampler
	WriteSamples *stats.Sampler

	// Metrics, when non-nil, enables the cycle-level observability layer.
	// It must be set before the engine is attached (AttachEngine wires the
	// mesh-side instrumentation from it). A nil collector is the
	// statistically-free disabled path.
	Metrics *metrics.Collector

	think   int64
	engine  Engine
	nicBusy []int64
	// accNet accumulates, per node, the network time of the packets
	// serving the node's outstanding access (for the latency breakdown).
	accNet []netAcc

	// tid is the machine's kernel ticker id, for park/wake. nextWake is
	// the earliest cycle any idle node can issue its next access
	// (math.MaxInt64 when every node is outstanding or done): Tick
	// returns immediately before it, and Quiescent parks the machine
	// until then. wakeTimerAt is the target of the wake timer currently
	// scheduled (if any), so repeated park checks don't pile up
	// duplicate timers.
	tid         sim.TickerID
	nextWake    int64
	wakeTimerAt int64

	// Fault layer state: the live injector (nil when the spec's plan
	// injects nothing), whether timeout/retry is armed, the hang-dump
	// destination, the first fatal fault error (latched by fail; checked
	// by Run's done predicate so the run stops at the failing cycle),
	// and the one-shot guard for the invariant probe.
	faults       *fault.Injector
	retryOn      bool
	hangDump     string
	fatal        error
	probeStarted bool
	faultsFolded bool
}

// netAcc is the per-outstanding-access network time attribution: total
// in-network cycles, the analytic contention-free traversal minimum, and the
// measured link-serialization wait.
type netAcc struct {
	net, trav, serial int64
}

// NewMachine builds a machine for the given configuration and trace. think
// is the mean CPU idle time between accesses (from the benchmark profile).
//
// Deprecated: use Build with a Spec, which also constructs the engine and
// wires metrics in one call. This shim exists for one release so external
// drivers keep compiling.
func NewMachine(cfg Config, tr *trace.Trace, think int64) (*Machine, error) {
	return Build(Spec{Config: cfg, Trace: tr, Think: think})
}

// newMachine constructs the machine core from a validated spec; Build
// attaches the engine afterwards.
func newMachine(spec Spec) (*Machine, error) {
	cfg := spec.Config
	think := spec.Think
	if think < 1 {
		think = 1
	}
	k := sim.NewKernel(cfg.Seed)
	if spec.AlwaysTick {
		k.SetAlwaysTick(true)
	}
	s, auto := spec.Shards, spec.Shards == 0
	if auto {
		// Auto mode: shard count from GOMAXPROCS and mesh size, actual
		// parallelism width from live occupancy (the kernel's tuner).
		// Both are pure scheduling choices — output is byte-identical to
		// any explicit shard count.
		s = sim.AutoShards(cfg.Nodes())
	}
	if s > 1 {
		if s > cfg.Nodes() {
			s = cfg.Nodes()
		}
		k.SetShards(s)
		if auto {
			k.SetAutoTune(true)
		}
	}
	m := &Machine{
		Cfg:        cfg,
		Kernel:     k,
		Mem:        memory.New(cfg.MemLatency),
		Check:      verify.New(spec.KeepOrder),
		HomeCounts: make([]int64, cfg.Nodes()),
		Metrics:    spec.Metrics,
		think:      think,
		nicBusy:    make([]int64, cfg.Nodes()),
		accNet:     make([]netAcc, cfg.Nodes()),
		retryOn:    cfg.RetryTimeout > 0,
		hangDump:   spec.HangDumpPath,
	}
	if spec.Faults != nil && spec.Faults.Spec.Injecting() {
		m.faults = &fault.Injector{Plan: *spec.Faults}
	}
	for i := 0; i < cfg.Nodes(); i++ {
		m.Nodes = append(m.Nodes, &Node{
			ID:     i,
			L2:     cache.New[DataLine](cfg.L2Entries, cfg.L2Ways),
			stream: spec.Trace.PerNode[i],
			rng:    k.RNG().Split(),
		})
	}
	m.tid = k.Register(m)
	return m, nil
}

// AttachEngine wires the coherence engine and its mesh into the machine.
// Engines call this from their constructors.
func (m *Machine) AttachEngine(e Engine, mesh *network.Mesh) {
	m.engine = e
	m.Mesh = mesh
	mesh.EjectFn = e.Eject
	if c := m.Metrics; c != nil {
		c.NoC = metrics.NewNoC(mesh.Nodes(), mesh.InPorts(), mesh.OutPorts(), mesh.VCCount)
		mesh.Metrics = c.NoC
		mesh.DeliverFn = m.observeDelivery
		// Stage route-phase flight events per shard and flush them at the
		// barrier, so the recorded sequence matches serial execution at
		// every shard count.
		c.SetSharding(mesh.Shards(), meshShardHook{k: m.Kernel, mesh: mesh})
		m.Kernel.OnBarrier(c.FlushEvents)
	}
	if m.faults != nil {
		mesh.Faults = m.faults
		mesh.DropFn = m.onPacketDrop
	}
	if w := m.Cfg.WatchdogCycles; w > 0 {
		// Progress = packets delivered plus local hits: any cycle in
		// which the system moves forward advances one of these (or
		// fires a kernel event, which the kernel counts itself).
		m.Kernel.SetWatchdog(w, func() int64 { return mesh.DeliveredPackets + m.LocalHits })
	}
}

// meshShardHook adapts the kernel's tick-phase flag and the mesh's shard map
// to the metrics.ShardHook interface.
type meshShardHook struct {
	k    *sim.Kernel
	mesh *network.Mesh
}

func (h meshShardHook) InTick() bool         { return h.k.InTick() }
func (h meshShardHook) ShardOf(node int) int { return h.mesh.ShardOf(node) }

// Engine returns the attached coherence engine.
func (m *Machine) Engine() Engine { return m.engine }

// Tick implements sim.Ticker: each cycle every idle CPU considers issuing
// its next access. The scan maintains nextWake — the earliest cycle any
// idle node becomes eligible to issue — so cycles before it return without
// walking the nodes at all, and Quiescent can park the machine until then.
func (m *Machine) Tick(now int64) {
	if c := m.Metrics; c != nil && c.SampleDue(now) {
		c.InFlight.Observe(now, float64(m.Mesh.InFlight))
		if g, ok := m.engine.(metrics.GaugeSource); ok {
			occ, depth := g.MetricsGauges()
			c.Occupancy.Observe(now, float64(occ))
			c.QueueDepth.Observe(now, float64(depth))
		}
	}
	if now < m.nextWake {
		return
	}
	m.nextWake = math.MaxInt64
	for _, n := range m.Nodes {
		if n.outstanding {
			if m.retryOn {
				if now >= n.retryAt {
					m.retryOutstanding(n, now)
				} else {
					m.noteWake(n.retryAt)
				}
			}
			continue
		}
		if n.idx >= len(n.stream) {
			continue
		}
		if now < n.nextIssue {
			m.noteWake(n.nextIssue)
			continue
		}
		acc := n.stream[n.idx]
		if line, ok := n.L2.Lookup(acc.Addr); ok {
			if !acc.Write {
				// Local read hit.
				m.Check.ObserveRead(acc.Addr, line.Version, n.ID, now, true)
				m.LocalHits++
				n.idx++
				n.nextIssue = now + m.Cfg.L2Latency + m.thinkTime(n)
				if n.idx < len(n.stream) {
					m.noteWake(n.nextIssue)
				}
				continue
			}
			if line.State == Modified {
				// Local write hit: the node already owns the line.
				line.Version = m.Check.CommitWrite(acc.Addr, n.ID, now)
				m.LocalHits++
				n.idx++
				n.nextIssue = now + m.Cfg.L2Latency + m.thinkTime(n)
				if n.idx < len(n.stream) {
					m.noteWake(n.nextIssue)
				}
				continue
			}
			// Write to a Shared line: upgrade required, falls
			// through to the coherence engine.
		}
		n.outstanding = true
		n.issueAt = now
		if m.retryOn {
			n.attempt = 0
			n.retryAt = now + m.Cfg.RetryTimeout
			m.noteWake(n.retryAt)
		}
		m.HomeCounts[m.Cfg.Home(acc.Addr)]++
		if c := m.Metrics; c != nil {
			aux := int64(0)
			if acc.Write {
				aux = 1
			}
			c.Event(now, metrics.EvInject, int16(n.ID), acc.Addr, aux)
		}
		m.engine.StartMiss(n.ID, acc.Addr, acc.Write, now)
	}
}

// noteWake lowers nextWake to at if it is earlier. CompleteAccess also
// min-updates (rather than overwriting), so a completion that lands while a
// Tick scan is in progress can never be lost.
func (m *Machine) noteWake(at int64) {
	if at < m.nextWake {
		m.nextWake = at
	}
}

// Quiescent implements sim.Parker. The machine parks when no node can
// issue before nextWake, scheduling a wake timer for that cycle (or
// parking indefinitely when every node is outstanding or done — engine
// completions wake it). Metrics sampling needs a true every-cycle tick, so
// an instrumented machine never parks.
func (m *Machine) Quiescent() bool {
	if m.Metrics != nil {
		return false
	}
	if m.nextWake == math.MaxInt64 {
		return true
	}
	now := m.Kernel.Now()
	if m.nextWake > now+1 {
		if m.wakeTimerAt != m.nextWake {
			m.Kernel.WakeAt(m.nextWake-now, m.tid)
			m.wakeTimerAt = m.nextWake
		}
		return true
	}
	return false
}

func (m *Machine) thinkTime(n *Node) int64 {
	lo := m.think / 2
	if lo < 1 {
		lo = 1
	}
	return n.rng.Int64Range(lo, m.think+m.think/2)
}

// CompleteAccess is called by the engine when the reply for the node's
// outstanding access reaches it. It records latency (and any
// deadlock-recovery cycles) and lets the CPU proceed; Requirement 4 — a
// node issues its next request only after the previous reply returns — is
// enforced by this hand-off.
func (m *Machine) CompleteAccess(node int, write bool, now, deadlockCycles int64) {
	n := m.Nodes[node]
	if !n.outstanding {
		panic(fmt.Sprintf("protocol: completion for node %d with no outstanding access", node))
	}
	m.Lat.Record(write, now-n.issueAt)
	if write && m.WriteSamples != nil {
		m.WriteSamples.Add(float64(now - n.issueAt))
	} else if !write && m.ReadSamples != nil {
		m.ReadSamples.Add(float64(now - n.issueAt))
	}
	if deadlockCycles > 0 {
		m.Lat.RecordDeadlock(write, deadlockCycles)
	}
	if c := m.Metrics; c != nil {
		lat := now - n.issueAt
		a := m.accNet[node]
		c.Breakdown.Record(write, lat, a.net, a.trav, a.serial)
		var addr uint64
		if acc, ok := n.Pending(); ok {
			addr = acc.Addr
		}
		c.Event(now, metrics.EvComplete, int16(node), addr, lat)
		m.accNet[node] = netAcc{}
	}
	n.outstanding = false
	n.idx++
	n.nextIssue = now + m.thinkTime(n)
	if n.idx < len(n.stream) {
		m.noteWake(n.nextIssue)
		m.Kernel.Wake(m.tid)
	}
}

// observeDelivery is the mesh DeliverFn when metrics are enabled: it
// attributes each delivered packet's network time to the requester whose
// outstanding access it serves. Only the serial request/reply chain is
// attributed (RdReq, WrReq, Fwd, FwdMiss, RdReply, WrReply); parallel
// traffic — invalidations, acknowledgments, teardowns — overlaps the chain
// in time and its transit lands in the controller-service residual instead.
func (m *Machine) observeDelivery(p *network.Packet, consumed bool, now int64) {
	msg, ok := p.Payload.(*Msg)
	if !ok {
		return
	}
	switch msg.Type {
	case RdReq, WrReq, Fwd, FwdMiss, RdReply, WrReply:
	default:
		return
	}
	req := msg.Requester
	if req < 0 || req >= len(m.Nodes) || !m.Nodes[req].outstanding {
		return
	}
	// Contention-free minimum for the path actually taken: each of the
	// hops+1 routers costs pipeline (+ extra hop delay) cycles plus one
	// cycle on the following link or the ejection hand-off. Expedited
	// continuations skip their spawning router's pipeline; in-network
	// consumption skips the ejection cycle.
	per := m.Mesh.Pipeline + m.Mesh.Routers[0].ExtraHopDelay + 1
	trav := int64(p.Hops+1) * per
	if p.Expedited {
		trav -= per - 1
	}
	if consumed {
		trav--
	}
	a := &m.accNet[req]
	a.net += now - p.InjectedAt
	a.trav += trav
	a.serial += p.SerialWait()
}

// Defer schedules fn after delay cycles on behalf of node. From the event
// phase it is exactly Kernel.Schedule; from inside a sharded tick — where
// touching the global event heap would race and its push order would depend
// on shard interleaving — the call is queued on the shard owning node's
// router and reaches the heap at the cycle barrier, in router-id order.
// Route-phase callers always act at the node being ticked, so the shard
// derived from node is the caller's own.
func (m *Machine) Defer(node int, delay int64, fn func()) {
	if m.Kernel.InTick() {
		m.Kernel.Defer(m.Mesh.ShardOf(node), delay, fn)
		return
	}
	m.Kernel.Schedule(delay, fn)
}

// NICSchedule runs fn after a service-time occupancy of node's network
// interface: the cache controller at each NIC has one port, so directory
// and data-cache accesses made on behalf of the protocol serialize. (The
// in-network protocol's virtual tree caches are maximally ported inside the
// routers — Section 3.1 — and so never pass through here; only its true
// data-cache and memory work does.)
func (m *Machine) NICSchedule(node int, service int64, fn func()) {
	now := m.Kernel.Now()
	start := now
	if m.nicBusy[node] > start {
		start = m.nicBusy[node]
	}
	m.nicBusy[node] = start + service
	m.Defer(node, start+service-now, fn)
}

// OutstandingAddr returns the address and kind of node's in-flight access,
// if any. Protocol engines use it to detect invalidation/reply races.
func (m *Machine) OutstandingAddr(node int) (addr uint64, write bool, ok bool) {
	acc, ok := m.Nodes[node].Pending()
	return acc.Addr, acc.Write, ok
}

// InstallLine places a line into node's L2 in the given state, handling the
// eviction of a victim (writeback of dirty data, engine notification) and
// the verifier's copy registry.
// DebugAddr enables stderr tracing of L2 install/invalidate events for one
// line address, for protocol debugging in tests.
var DebugAddr uint64

func (m *Machine) InstallLine(node int, addr uint64, st DState, version uint64, now int64) {
	if DebugAddr != 0 && addr == DebugAddr {
		fmt.Fprintf(os.Stderr, "[%8d] install n%d addr %#x st=%v v=%d\n", now, node, addr, st, version)
	}
	n := m.Nodes[node]
	lp, evAddr, evLine, evicted := n.L2.Insert(addr)
	if evicted {
		m.evictCleanup(node, evAddr, evLine, now)
	}
	lp.State = st
	lp.Version = version
	m.Check.RegisterCopy(addr, node)
}

func (m *Machine) evictCleanup(node int, addr uint64, line DataLine, now int64) {
	if DebugAddr != 0 && addr == DebugAddr {
		fmt.Fprintf(os.Stderr, "[%8d] evict n%d addr %#x st=%v\n", now, node, addr, line.State)
	}
	m.Check.UnregisterCopy(addr, node)
	if line.State == Modified {
		m.Mem.Writeback(addr, line.Version)
	}
	m.Counters.Inc("l2.evictions", 1)
	// The engine callback is deferred one cycle: it can trigger protocol
	// work that installs further lines (e.g. the tree protocol's victim
	// caching after an instant teardown), and running that synchronously
	// would re-enter InstallLine and invalidate its line pointer.
	m.Defer(node, 1, func() {
		m.engine.OnL2Evict(node, addr, line, m.Kernel.Now())
	})
}

// InvalidateLine removes addr from node's L2 (if present), writing dirty
// data back, and returns the line it held.
func (m *Machine) InvalidateLine(node int, addr uint64, now int64) (DataLine, bool) {
	n := m.Nodes[node]
	line, ok := n.L2.Invalidate(addr)
	if DebugAddr != 0 && addr == DebugAddr {
		fmt.Fprintf(os.Stderr, "[%8d] invalidate n%d addr %#x ok=%v\n", now, node, addr, ok)
	}
	if !ok {
		return DataLine{}, false
	}
	m.Check.UnregisterCopy(addr, node)
	if line.State == Modified {
		m.Mem.Writeback(addr, line.Version)
	}
	return line, true
}

// PeekLine inspects node's L2 without LRU effects.
func (m *Machine) PeekLine(node int, addr uint64) (*DataLine, bool) {
	return m.Nodes[node].L2.Peek(addr)
}

// NewPacket builds a network packet for msg from src to dst, sizing it by
// whether the message carries data.
func (m *Machine) NewPacket(src, dst int, msg *Msg) *network.Packet {
	flits := m.Cfg.CtrlFlits
	if msg.Type.IsData() {
		flits = m.Cfg.DataFlits
	}
	p := m.Mesh.AllocPacketFor(src)
	p.ID = m.Mesh.NextIDFor(src)
	p.Src = src
	p.Dst = dst
	p.Flits = flits
	p.Payload = msg
	// Coherence requests can be reissued from scratch by the fault
	// layer's retry; everything else (replies, invalidations, teardowns)
	// carries protocol state that cannot be replayed.
	p.Retryable = msg.Type == RdReq || msg.Type == WrReq
	return p
}

// AllDone reports whether every CPU has drained its stream.
func (m *Machine) AllDone() bool {
	for _, n := range m.Nodes {
		if !n.Done() {
			return false
		}
	}
	return true
}

// Quiesced reports full-system quiescence: CPUs drained, network empty,
// engine queues empty, no pending events.
func (m *Machine) Quiesced() bool {
	return m.AllDone() && m.Mesh.InFlight == 0 && m.engine.Quiesced() && m.Kernel.Pending() == 0
}

// Run executes the simulation until quiescence, a fatal fault-layer error
// (retry exhaustion, invariant violation), a watchdog trip, or maxCycles.
// A run that fails to quiesce returns a typed *fault.HangError carrying
// the reproducer seed and the stuck report (and writes the hang dump when
// the spec configured a path); verification violations are reported as an
// error as before.
func (m *Machine) Run(maxCycles int64) error {
	if m.engine == nil {
		return fmt.Errorf("protocol: no engine attached")
	}
	// Shard workers are started lazily by the kernel; release them when
	// the run ends so processes that build many machines don't accumulate
	// parked goroutines.
	defer m.Kernel.ReleaseWorkers()
	_, err := m.RunSegment(math.MaxInt64, m.Kernel.Now()+maxCycles)
	return err
}

// RunSegment advances the simulation until it completes — quiescence, a
// fatal fault-layer error, a watchdog trip, or the limit cycle — or until
// the clock reaches stopAt, whichever comes first. Both bounds are absolute
// cycles; limit is the run's overall cycle budget and must be the same on
// every segment of one run. A (false, nil) return means the run paused at
// stopAt and the caller should call RunSegment again to continue; (true,
// err) carries the same terminal semantics as Run.
//
// Pausing is pure observation: the segment boundary only decides where the
// step loop stops between kernel steps, never how far an idle-stretch
// fast-forward may jump or when events fire, so a run split across any
// sequence of RunSegment calls performs exactly the step sequence of a
// single Run and is byte-identical to it. This is what checkpointing and
// cancellation hang off: internal/exec pauses every few hundred thousand
// cycles to check its context, report progress and snapshot state, without
// perturbing the simulation.
//
// Callers that segment a run are responsible for releasing the kernel's
// shard workers (Kernel.ReleaseWorkers) once the run is over; Run does it
// itself.
func (m *Machine) RunSegment(stopAt, limit int64) (done bool, err error) {
	if m.engine == nil {
		return true, fmt.Errorf("protocol: no engine attached")
	}
	m.startInvariantProbe()
	reached := m.Kernel.RunUntil(func() bool {
		return m.fatal != nil || m.Kernel.Now() >= stopAt || m.Quiesced()
	}, limit-m.Kernel.Now())
	if c := m.Metrics; c != nil && c.NoC != nil {
		c.NoC.Cycles = m.Kernel.Now()
	}
	if m.fatal == nil && reached && !m.Quiesced() &&
		m.Kernel.Now() < limit && !m.Kernel.Hung() {
		return false, nil // paused at stopAt; the run itself is not over
	}
	m.foldFaultCounters()
	if m.fatal != nil {
		return true, m.fatal
	}
	if !m.Quiesced() {
		herr := &fault.HangError{
			Cycle:    m.Kernel.Now(),
			Seed:     m.Cfg.Seed,
			Watchdog: m.Kernel.Hung(),
			Report:   m.stuckReport(),
		}
		m.writeHangDump(herr)
		return true, herr
	}
	if v := m.Check.Violations(); len(v) > 0 {
		return true, fmt.Errorf("protocol: %d verification violations, first: %s", len(v), v[0])
	}
	return true, nil
}

func (m *Machine) stuckReport() string {
	waiting := 0
	var sample string
	for _, n := range m.Nodes {
		if !n.Done() {
			waiting++
			if acc, ok := n.Pending(); ok && sample == "" {
				sample = fmt.Sprintf("node %d blocked on addr %#x write=%v", n.ID, acc.Addr, acc.Write)
			}
		}
	}
	return fmt.Sprintf("%d nodes unfinished, %d packets in flight, engine quiesced=%v, %d events pending; %s; router queues: %s",
		waiting, m.Mesh.InFlight, m.engine.Quiesced(), m.Kernel.Pending(), sample, m.queueOccupancy(8))
}

// queueOccupancy renders the non-empty router input queues, largest first,
// capped at limit entries (the hang dump passes no cap).
func (m *Machine) queueOccupancy(limit int) string {
	type occ struct{ node, queued int }
	var occs []occ
	for _, r := range m.Mesh.Routers {
		if q := r.QueuedPackets(); q > 0 {
			occs = append(occs, occ{r.NodeID, q})
		}
	}
	if len(occs) == 0 {
		return "all empty"
	}
	sort.Slice(occs, func(i, j int) bool {
		if occs[i].queued != occs[j].queued {
			return occs[i].queued > occs[j].queued
		}
		return occs[i].node < occs[j].node
	})
	var b strings.Builder
	for i, o := range occs {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, " +%d more", len(occs)-i)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "n%d=%d", o.node, o.queued)
	}
	return b.String()
}
