package protocol

import (
	"fmt"

	"innetcc/internal/fault"
	"innetcc/internal/metrics"
	"innetcc/internal/trace"
)

// EngineKind identifies a coherence engine implementation. It is the single
// source of truth for engine naming: everything that used to switch on
// "dir"/"tree" strings — job builders, experiment drivers, the CLI — now
// carries an EngineKind and parses user input once through ParseEngineKind.
type EngineKind uint8

// The engine kinds. KindNone builds a machine with no engine attached (the
// caller attaches one manually, as protocol-level tests do).
const (
	KindNone EngineKind = iota
	KindDirectory
	KindTree

	numEngineKinds
)

// String returns the kind's canonical short name, stable across releases
// because job cache identities embed it.
func (k EngineKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDirectory:
		return "dir"
	case KindTree:
		return "tree"
	}
	return fmt.Sprintf("EngineKind(%d)", uint8(k))
}

// Describe returns the one-line human description of the engine.
func (k EngineKind) Describe() string {
	switch k {
	case KindDirectory:
		return "baseline MSI directory protocol"
	case KindTree:
		return "in-network virtual-tree protocol"
	}
	return "no engine"
}

// ParseEngineKind resolves an engine name. It accepts the canonical short
// names ("dir", "tree") and common long forms ("directory", "treecc").
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "dir", "directory":
		return KindDirectory, nil
	case "tree", "treecc":
		return KindTree, nil
	case "none", "":
		return KindNone, nil
	}
	return KindNone, fmt.Errorf("protocol: unknown engine kind %q (want dir or tree)", s)
}

// EngineKinds lists the runnable engine kinds in canonical order.
func EngineKinds() []EngineKind { return []EngineKind{KindDirectory, KindTree} }

// MarshalJSON encodes the kind as its canonical name, keeping serialized
// job specs (and their content hashes) readable and stable.
func (k EngineKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a canonical or long-form engine name.
func (k *EngineKind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("protocol: engine kind must be a JSON string, got %s", b)
	}
	kind, err := ParseEngineKind(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// engineBuilders maps a kind to its constructor. Engine packages register
// themselves in init (via RegisterEngineBuilder), which inverts the import
// direction: protocol stays importable by every engine while Build can
// still construct any registered engine.
var engineBuilders [numEngineKinds]func(*Machine) Engine

// RegisterEngineBuilder installs the constructor for kind. Engine packages
// call it from init; the builder must construct the engine, build its mesh
// and attach both to the machine (engines' New functions already do).
func RegisterEngineBuilder(k EngineKind, build func(*Machine) Engine) {
	if k == KindNone || k >= numEngineKinds {
		panic("protocol: cannot register engine builder for " + k.String())
	}
	if engineBuilders[k] != nil {
		panic("protocol: duplicate engine builder for " + k.String())
	}
	engineBuilders[k] = build
}

// Spec is the declarative machine construction request: everything Build
// needs to produce a runnable simulation in one call. It replaces the
// previous positional NewMachine(cfg, tr, think) plus
// manually-constructed-engine idiom.
type Spec struct {
	// Config is the machine configuration (Config.Seed drives all
	// randomness in the run).
	Config Config

	// Trace is the per-node access stream; it must have exactly
	// Config.Nodes() streams.
	Trace *trace.Trace

	// Think is the mean CPU idle time between accesses, from the
	// benchmark profile. Values below 1 are clamped to 1.
	Think int64

	// Engine selects the coherence engine Build attaches. KindNone
	// builds a bare machine; the caller attaches an engine before Run.
	// The selected engine's package must be imported so its builder is
	// registered (internal/exec imports both).
	Engine EngineKind

	// Metrics, when non-nil, attaches the cycle-level observability
	// collector. Build wires it before engine construction, which the
	// mesh-side instrumentation requires. Purely observational.
	Metrics *metrics.Collector

	// AlwaysTick disables the kernel's active-set optimization: every
	// ticker ticks every cycle. Simulation output is byte-identical
	// either way (the dual-kernel equivalence test in internal/verify
	// asserts it); the switch exists for that differential test and for
	// debugging suspected park/wake bugs.
	AlwaysTick bool

	// Faults, when non-nil and injecting, arms the mesh's deterministic
	// fault injector with this plan. A nil plan — or a plan whose spec
	// injects nothing — leaves the network entirely untouched (no
	// checksum stamping, no per-grant sampling), so fault-free runs are
	// byte-identical to builds without the fault layer. The recovery
	// side (timeout/retry, watchdog, probe) is configured separately
	// through Config so it can run with or without injection.
	Faults *fault.Plan

	// KeepOrder retains the verifier's full total order of committed
	// accesses (verify.Checker.Order), which the litmus harness replays
	// through the linearization witness. Costs memory proportional to the
	// access count; experiment runs leave it off.
	KeepOrder bool

	// HangDumpPath, when non-empty, is the file Run writes the hang dump
	// to (stuck report, per-router queue occupancy, flight-recorder
	// tail) if the run fails to quiesce. It is diagnostic output only
	// and must never enter a job's cache identity.
	HangDumpPath string

	// Shards is the spatial-decomposition width of the sharded tick
	// engine: the mesh is split into this many contiguous router-id bands,
	// each ticked by its own worker within a cycle. Zero selects
	// automatically — sim.AutoShards picks the count from GOMAXPROCS and
	// the mesh size, and the kernel's occupancy tuner adapts the live
	// parallelism width during the run. One (and counts above the node
	// count, which the mesh clamps) runs serially. Simulation output is
	// byte-identical at every shard count, auto included — the parallel
	// differential test in internal/verify asserts it — so Shards is a
	// pure throughput knob and never part of a result's identity.
	Shards int
}

// Validate reports spec errors without building anything.
func (s Spec) Validate() error {
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if s.Trace == nil {
		return fmt.Errorf("protocol: spec has no trace")
	}
	if len(s.Trace.PerNode) != s.Config.Nodes() {
		return fmt.Errorf("protocol: trace has %d streams for %d nodes", len(s.Trace.PerNode), s.Config.Nodes())
	}
	if s.Engine >= numEngineKinds {
		return fmt.Errorf("protocol: unknown engine kind %d", s.Engine)
	}
	if s.Faults != nil {
		if err := s.Faults.Spec.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Build constructs a machine (and, unless spec.Engine is KindNone, its
// coherence engine and mesh) from the spec. The machine is ready to Run.
func Build(spec Spec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m, err := newMachine(spec)
	if err != nil {
		return nil, err
	}
	if spec.Engine != KindNone {
		build := engineBuilders[spec.Engine]
		if build == nil {
			return nil, fmt.Errorf("protocol: engine %s not registered (import its package)", spec.Engine)
		}
		build(m)
	}
	return m, nil
}
