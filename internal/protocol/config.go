package protocol

import (
	"fmt"

	"innetcc/internal/network"
)

// Config is the simulated memory-network configuration. DefaultConfig
// reproduces the paper's Table 2.
type Config struct {
	// Topology is the interconnect fabric: the paper's open mesh
	// ("mesh:WxH"), its wraparound variant ("torus:WxH") or a
	// bidirectional ring ("ring:N"). It serializes as that canonical
	// string, so job-spec hashes and server submissions stay readable.
	Topology network.TopoSpec

	// Multicast arms hardware multicast: the directory engine sends one
	// destination-set invalidation packet that the routers fork at
	// fan-out points, and the tree engine's teardown fan-out rides a
	// single masked continuation forked at the spawning router. Off by
	// default — the unicast path is the paper's model and the
	// byte-identity baseline.
	Multicast bool

	// BasePipeline is the baseline router pipeline depth in cycles
	// (5 in Table 2). The in-network implementation adds TreePipeline
	// extra cycles per hop for the virtual tree cache stage (the paper's
	// best tree cache adds 1, growing the pipeline from 5 to 6).
	BasePipeline int64
	TreePipeline int64

	// Virtual tree cache (in-network) / directory cache (baseline)
	// geometry: Table 2 uses 4K entries, 4-way, for both.
	TreeEntries, TreeWays int
	DirEntries, DirWays   int

	// L2 data cache per node: Table 2's 2 MB with 8-word (32-byte)
	// lines, 8-way: 65536 entries.
	L2Entries, L2Ways int

	// Latencies in cycles (Table 2): L2 6, directory 2, main memory 200.
	L2Latency  int64
	DirLatency int64
	MemLatency int64

	// Packet sizes in flits: control packets are a single head flit;
	// data packets carry an 8-word line.
	CtrlFlits, DataFlits int

	// Deadlock recovery (Section 2.1): reply timeout and the random
	// backoff window applied at the home node to regenerated requests.
	TimeoutCycles          int64
	BackoffMin, BackoffMax int64

	// VictimCaching enables the home-node L2 victim optimization
	// (Section 2.1); the Figure 6/7 sweeps disable it.
	VictimCaching bool

	// ProactiveEviction enables write requests tearing down the LRU tree
	// of full sets they pass (Section 2.1); an ablation switch.
	ProactiveEviction bool

	// Replication enables the paper's Section 4 extension: read replies
	// leave data copies at the intermediate tree nodes they traverse,
	// so later readers bump into valid data earlier. Off by default
	// (it is future work in the paper, not part of the evaluation).
	Replication bool

	// AboveNetworkTree models the Figure 10 variant where the tree
	// cache sits at the network interface: every per-hop tree cache
	// access costs an ejection and re-injection.
	AboveNetworkTree bool

	// Fault recovery (internal/fault). All four default to zero —
	// disabled — so configurations predating the fault layer behave
	// byte-identically.
	//
	// RetryTimeout is the per-request reply timeout in cycles: a node
	// whose outstanding access has gone unanswered past the deadline (or
	// whose serving packet the fault layer reports dropped) reissues the
	// request from scratch. 0 disables timeout/retry entirely. Note this
	// is distinct from TimeoutCycles above, which is the paper's
	// in-network deadlock recovery for stalled replies.
	RetryTimeout int64
	// RetryBudget bounds reissues per access; exceeding it fails the run
	// with fault.RetryExhaustedError.
	RetryBudget int
	// RetryBackoff is the base reissue delay in cycles, doubled on every
	// further attempt (values below 1 act as 1).
	RetryBackoff int64

	// WatchdogCycles arms the kernel hang watchdog: a run whose active
	// set is non-empty but makes no progress for this many cycles fails
	// with fault.HangError instead of spinning to the cycle bound. 0
	// disables.
	WatchdogCycles int64

	// ProbeInterval runs the runtime coherence-invariant probe (single
	// writer, no stale Shared copy, versions within the commit bound)
	// every this many cycles; a violation fails the run with
	// fault.InvariantError at the cycle it occurred. 0 disables.
	ProbeInterval int64

	// Seed drives all randomness in the run.
	Seed uint64
}

// DefaultConfig returns the paper's nominal 16-node configuration (Table 2).
func DefaultConfig() Config {
	return Config{
		Topology:     network.MeshSpec(4, 4),
		BasePipeline: 5,
		TreePipeline: 1,
		TreeEntries:  4096, TreeWays: 4,
		DirEntries: 4096, DirWays: 4,
		L2Entries: 65536, L2Ways: 8,
		L2Latency:     6,
		DirLatency:    2,
		MemLatency:    200,
		CtrlFlits:     1,
		DataFlits:     5,
		TimeoutCycles: 30,
		BackoffMin:    20, BackoffMax: 100,
		VictimCaching:     true,
		ProactiveEviction: true,
		Seed:              1,
	}
}

// Nodes returns the node count. Kept cheap: Home calls it per access.
func (c Config) Nodes() int { return c.Topology.Nodes() }

// Home returns the statically assigned home node of a line address. The
// paper distributes homes across all processors by the low bits of the
// address tag; with our synthetic line addresses the low bits of the line
// address give the same uniform static striping.
func (c Config) Home(addr uint64) int { return int(addr % uint64(c.Nodes())) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	switch {
	case c.BasePipeline < 1:
		return fmt.Errorf("protocol: pipeline depth %d < 1", c.BasePipeline)
	case c.TreeEntries <= 0 || c.TreeWays <= 0 || c.TreeEntries%c.TreeWays != 0:
		return fmt.Errorf("protocol: bad tree cache %d/%d", c.TreeEntries, c.TreeWays)
	case c.DirEntries <= 0 || c.DirWays <= 0 || c.DirEntries%c.DirWays != 0:
		return fmt.Errorf("protocol: bad directory cache %d/%d", c.DirEntries, c.DirWays)
	case c.L2Entries <= 0 || c.L2Ways <= 0 || c.L2Entries%c.L2Ways != 0:
		return fmt.Errorf("protocol: bad L2 %d/%d", c.L2Entries, c.L2Ways)
	case c.BackoffMax < c.BackoffMin:
		return fmt.Errorf("protocol: backoff window [%d,%d] inverted", c.BackoffMin, c.BackoffMax)
	case c.CtrlFlits < 1 || c.DataFlits < 1:
		return fmt.Errorf("protocol: flit counts must be positive")
	case c.RetryTimeout < 0 || c.RetryBudget < 0 || c.RetryBackoff < 0:
		return fmt.Errorf("protocol: negative retry knob (timeout=%d budget=%d backoff=%d)",
			c.RetryTimeout, c.RetryBudget, c.RetryBackoff)
	case c.WatchdogCycles < 0 || c.ProbeInterval < 0:
		return fmt.Errorf("protocol: negative watchdog/probe interval (%d/%d)",
			c.WatchdogCycles, c.ProbeInterval)
	}
	return nil
}
