// Checkpoint support: a machine can fold its complete simulation state —
// kernel, CPUs, L2 caches, memory, network and coherence engine — into a
// 64-bit digest. The digest is the verification half of the repository's
// logical checkpoints (internal/exec): the kernel's event queue holds
// closures, which Go cannot serialize, so a checkpoint records the job spec
// plus the snapshot cycle and this digest, and a restore rebuilds the state
// by deterministic replay and proves it arrived at the same state by
// recomputing the digest. See DESIGN.md's checkpoint section.
package protocol

import (
	"sort"

	"innetcc/internal/sim"
	"innetcc/internal/stats"
)

// StateDigester is optionally implemented by coherence engines that fold
// their protocol state (directory caches, virtual tree caches, queued
// requests) into a machine state digest. Both shipped engines implement it;
// an engine that does not simply contributes nothing, weakening — not
// breaking — checkpoint verification for that engine.
type StateDigester interface {
	DigestState(d *sim.Digest)
}

// StateDigest folds the machine's live state into a 64-bit digest. It is
// observation-only (no LRU movement, no counters) and deterministic: two
// machines that have performed the same step sequence from the same spec
// produce equal digests, and the parallel-tick and active-set engines'
// byte-identity guarantees extend to it. Call it between RunSegment calls,
// never mid-step.
func (m *Machine) StateDigest() uint64 {
	d := sim.NewDigest()
	m.Kernel.DigestState(d)

	// CPUs and their L2 data caches. ScanAll walks sets and ways in index
	// order without touching LRU state.
	d.Int(len(m.Nodes))
	for _, n := range m.Nodes {
		d.Int(n.idx)
		d.Bool(n.outstanding)
		d.I64(n.issueAt)
		d.I64(n.nextIssue)
		d.U64(uint64(n.attempt))
		d.I64(n.retryAt)
		d.U64(n.rng.State())
		d.Int(n.L2.Len())
		n.L2.ScanAll(func(addr uint64, dl *DataLine) bool {
			d.U64(addr)
			d.Int(int(dl.State))
			d.U64(dl.Version)
			return true
		})
	}

	// Main memory: per-line versions in address order.
	snap := m.Mem.Snapshot()
	addrs := make([]uint64, 0, len(snap))
	for a := range snap {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	d.Int(len(addrs))
	for _, a := range addrs {
		d.U64(a)
		d.U64(snap[a])
	}

	// Result-bearing statistics: these accumulate across the run, so they
	// are part of the state a restore must reproduce.
	digestAcc(d, &m.Lat.Read)
	digestAcc(d, &m.Lat.Write)
	digestAcc(d, &m.Lat.DeadlockRead)
	digestAcc(d, &m.Lat.DeadlockWrite)
	d.I64(m.LocalHits)
	for _, h := range m.HomeCounts {
		d.I64(h)
	}
	for _, name := range m.Counters.Names() {
		d.Str(name)
		d.I64(m.Counters.Get(name))
	}
	if m.ReadSamples != nil {
		d.Int(m.ReadSamples.N())
	}
	if m.WriteSamples != nil {
		d.Int(m.WriteSamples.N())
	}
	for _, b := range m.nicBusy {
		d.I64(b)
	}

	m.Mesh.DigestState(d)
	if sd, ok := m.engine.(StateDigester); ok {
		sd.DigestState(d)
	}
	return d.Sum()
}

// DigestMsg folds a protocol message into d. Engine digests use it for
// their queued and parked requests.
func DigestMsg(d *sim.Digest, msg *Msg) {
	d.Int(int(msg.Type))
	d.U64(msg.Addr)
	d.Int(msg.Requester)
	d.U64(msg.Version)
	d.Bool(msg.RequesterIsRoot)
	d.I64(msg.IssuedAt)
	d.U64(uint64(msg.Attempt))
	d.I64(msg.DeadlockCycles)
	d.Bool(msg.Backoff)
	d.Bool(msg.HomeServe)
}

func digestAcc(d *sim.Digest, a *stats.Accumulator) {
	d.I64(a.N)
	d.U64(uint64(int64(a.Sum)))
	d.U64(uint64(int64(a.MinV)))
	d.U64(uint64(int64(a.MaxV)))
}
