package protocol

import "innetcc/internal/verify"

// EndState captures the machine's post-run coherence state — committed
// versions, memory contents and every valid L2 copy — for differential
// comparison between coherence engines run over the same trace.
func (m *Machine) EndState(name string) *verify.EndState {
	es := verify.NewEndState(name)
	for addr, v := range m.Check.VersionSnapshot() {
		es.SetCommitted(addr, v)
	}
	for addr, v := range m.Mem.Snapshot() {
		es.SetMemory(addr, v)
	}
	for _, n := range m.Nodes {
		n.L2.ScanAll(func(addr uint64, dl *DataLine) bool {
			es.AddCopy(addr, verify.Copy{
				Node:     n.ID,
				Version:  dl.Version,
				Modified: dl.State == Modified,
			})
			return true
		})
	}
	return es
}
