package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"innetcc/internal/exec"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// Options configures a Server.
type Options struct {
	// DataDir is the persistence root: job records, checkpoints and the
	// result cache live under it. Required.
	DataDir string

	// Workers is the number of concurrent simulations (<= 0 means 1).
	Workers int

	// Tenants maps tenant names to their quotas; tenants not listed get
	// DefaultQuota.
	Tenants      map[string]Quota
	DefaultQuota Quota

	// SegmentCycles and CheckpointEvery are passed through to the
	// segmented runner: pause granularity and simulated cycles between
	// checkpoints. CheckpointEvery <= 0 disables periodic checkpoints
	// (the drain checkpoint is always written).
	SegmentCycles   int64
	CheckpointEvery int64
}

// ErrQuotaExceeded rejects a submission that would put a tenant over its
// MaxQueued quota.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// ErrUnknownJob is returned for operations on a job ID the server has no
// record of.
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrNoSnapshot is returned by the snapshot-export path for a job that has
// no checkpoint on disk (it never ran long enough to write one, or it
// already finished and the checkpoint was dropped).
var ErrNoSnapshot = errors.New("serve: no snapshot")

// Server is the simulation-as-a-service scheduler: it owns the job table,
// the per-tenant accounting, the worker goroutines that drive
// exec.RunJob, and the persistence store. HTTP handling lives in http.go
// over the same methods the tests call directly.
type Server struct {
	opt   Options
	store *store
	cache *exec.Cache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*jobState
	tenants  map[string]*tenantState
	running  map[string]int // content hash -> running count (dedupe guard)
	draining bool
	seq      int64

	// killed simulates a crash (Server.Kill): once set, nothing more is
	// written to the store — no final checkpoints, no record transitions —
	// so the on-disk state is exactly what a kill -9 would leave behind.
	killed atomic.Bool
}

// jobState pairs the persistent record with the in-process lifecycle:
// cancellation, the last result, the progress subscribers, and the
// retained event ring reconnecting SSE clients replay from.
type jobState struct {
	rec          JobRecord
	runCtx       context.Context    // set while running
	cancel       context.CancelFunc // non-nil while running
	userCanceled bool
	result       *exec.Result // set in terminal states (also cached on disk)
	subs         []chan Event
	done         chan struct{} // closed on terminal state

	lastEv int64   // last assigned event ID (job-local, monotonic)
	hist   []Event // retained ring for Last-Event-ID replay
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	quota     Quota
	queued    int
	running   int
	peak      int   // high-water mark of running (introspection/tests)
	lastSched int64 // scheduler sequence of the tenant's last pick
	started   int64 // total jobs started
}

// New opens the data directory, loads persisted job records, requeues
// every job that was queued or running when the previous process died, and
// starts the worker pool. Interrupted jobs resume from their last
// checkpoint when one survives.
func New(opt Options) (*Server, error) {
	if opt.DataDir == "" {
		return nil, fmt.Errorf("serve: Options.DataDir is required")
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	st, err := openStore(opt.DataDir)
	if err != nil {
		return nil, err
	}
	cache, err := exec.OpenCache(st.cacheDir())
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		store:      st,
		cache:      cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*jobState),
		tenants:    make(map[string]*tenantState),
		running:    make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)

	recs, err := st.loadJobs()
	if err != nil {
		cancel()
		return nil, err
	}
	for _, rec := range recs {
		js := &jobState{rec: *rec, done: make(chan struct{})}
		if js.rec.Terminal() {
			close(js.done)
		} else {
			// The previous process died (or drained) with this job
			// pending; requeue it. A running job's checkpoint, when one
			// was written, makes the requeue a resume.
			js.rec.State = StateQueued
			js.rec.StartedAt = 0
			if err := st.putJob(&js.rec); err != nil {
				cancel()
				return nil, err
			}
			s.tenant(js.rec.Tenant).queued++
		}
		s.jobs[js.rec.ID] = js
		if js.rec.Seq >= s.seq {
			s.seq = js.rec.Seq + 1
		}
	}

	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// tenant returns (creating if needed) the tenant's accounting. Callers
// hold s.mu.
func (s *Server) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		q, ok := s.opt.Tenants[name]
		if !ok {
			q = s.opt.DefaultQuota
		}
		t = &tenantState{quota: q}
		s.tenants[name] = t
	}
	return t
}

// SubmitRequest is the submission payload of POST /v1/jobs. It is a
// convenience surface over exec.Job: the profile is named, the engine is
// its kind string, and the machine configuration defaults to the paper's
// Table 2 setup unless overridden.
type SubmitRequest struct {
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	Key      string `json:"key,omitempty"`

	Profile  string `json:"profile"`
	Engine   string `json:"engine"`
	Accesses int    `json:"accesses"`

	SuiteSeed uint64 `json:"suiteSeed,omitempty"` // 42 when zero
	MaxCycles int64  `json:"maxCycles,omitempty"`
	Faults    string `json:"faults,omitempty"`
	Retries   int    `json:"retries,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Metrics   bool   `json:"metrics,omitempty"`

	// Topology overrides the fabric ("mesh:4x4", "torus:8x8", "ring:16");
	// empty keeps the config's (or default's) fabric. Multicast switches
	// hardware multicast on. Both are conveniences over shipping a full
	// Config for the two knobs topology sweeps actually turn.
	Topology  string `json:"topology,omitempty"`
	Multicast bool   `json:"multicast,omitempty"`

	Config *protocol.Config `json:"config,omitempty"`

	// Snapshot, when non-empty, is an encoded exec.Snapshot (the bytes the
	// snapshot-export endpoint serves) to resume the job from: checkpoint
	// hand-off. The snapshot must belong to exactly this job spec; the
	// server verifies the content hash at submission and the state digest
	// at replay, so a forged or stale snapshot degrades to a fresh run or
	// a loud rejection, never a silently different result.
	Snapshot []byte `json:"snapshot,omitempty"`
}

// BuildJob resolves the request into the exec.Job it describes.
func (r SubmitRequest) BuildJob() (exec.Job, error) {
	p, err := trace.ProfileByName(r.Profile)
	if err != nil {
		return exec.Job{}, fmt.Errorf("serve: %w", err)
	}
	kind, err := protocol.ParseEngineKind(r.Engine)
	if err != nil {
		return exec.Job{}, fmt.Errorf("serve: %w", err)
	}
	if r.Accesses <= 0 {
		return exec.Job{}, fmt.Errorf("serve: accesses must be positive")
	}
	cfg := protocol.DefaultConfig()
	if r.Config != nil {
		cfg = *r.Config
	}
	if r.Topology != "" {
		ts, err := network.ParseTopoSpec(r.Topology)
		if err != nil {
			return exec.Job{}, fmt.Errorf("serve: %w", err)
		}
		cfg.Topology = ts
	}
	if r.Multicast {
		cfg.Multicast = true
	}
	seed := r.SuiteSeed
	if seed == 0 {
		seed = 42
	}
	key := r.Key
	if key == "" {
		key = r.Profile + "/" + r.Engine
	}
	return exec.Job{
		Key:       key,
		Engine:    kind,
		Config:    cfg,
		Profile:   p,
		Accesses:  r.Accesses,
		SuiteSeed: seed,
		MaxCycles: r.MaxCycles,
		Metrics:   exec.MetricsSpec{Enabled: r.Metrics},
		Faults:    r.Faults,
		Retries:   r.Retries,
		Shards:    r.Shards,
	}, nil
}

// Submit validates the request against the tenant's quota, persists the
// job record and enqueues it. The returned record is a snapshot.
func (s *Server) Submit(req SubmitRequest) (JobRecord, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	job, err := req.BuildJob()
	if err != nil {
		return JobRecord{}, err
	}
	hash := job.Hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobRecord{}, fmt.Errorf("serve: server is draining")
	}
	t := s.tenant(req.Tenant)
	if t.quota.MaxQueued > 0 && t.queued+t.running >= t.quota.MaxQueued {
		return JobRecord{}, fmt.Errorf("%w: tenant %s has %d jobs pending (max %d)",
			ErrQuotaExceeded, req.Tenant, t.queued+t.running, t.quota.MaxQueued)
	}
	js := &jobState{
		rec: JobRecord{
			ID:          s.newIDLocked(hash),
			Tenant:      req.Tenant,
			Priority:    req.Priority,
			State:       StateQueued,
			Hash:        hash,
			SubmittedAt: time.Now().UnixMilli(),
			Seq:         s.seq,
			Job:         job,
		},
		done: make(chan struct{}),
	}
	s.seq++
	if len(req.Snapshot) > 0 {
		// Checkpoint hand-off: stage the migrated snapshot as this job's
		// own checkpoint so the normal resume path picks it up. A snapshot
		// that does not decode or belongs to a different spec is rejected
		// here — accepting it would silently run from scratch while the
		// submitter believes work was preserved.
		if _, err := exec.HandoffSnapshot(req.Snapshot, job); err != nil {
			return JobRecord{}, fmt.Errorf("serve: hand-off snapshot: %w", err)
		}
		if err := s.store.putSnapshotBytes(js.rec.ID, req.Snapshot); err != nil {
			return JobRecord{}, err
		}
	}
	if err := s.store.putJob(&js.rec); err != nil {
		return JobRecord{}, err
	}
	s.jobs[js.rec.ID] = js
	t.queued++
	s.cond.Broadcast()
	return js.rec, nil
}

// newIDLocked generates a unique job ID: random prefix plus the first
// bytes of the content hash for human correlation.
func (s *Server) newIDLocked(hash string) string {
	for {
		var b [6]byte
		rand.Read(b[:])
		id := "j-" + hex.EncodeToString(b[:]) + "-" + hash[:8]
		if _, taken := s.jobs[id]; !taken {
			return id
		}
	}
}

// Job returns a snapshot of the record.
func (s *Server) Job(id string) (JobRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := s.jobs[id]
	if js == nil {
		return JobRecord{}, ErrUnknownJob
	}
	return js.rec, nil
}

// Jobs lists record snapshots, optionally filtered by tenant, in
// submission order.
func (s *Server) Jobs(tenant string) []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.jobs))
	for _, js := range s.jobs {
		if tenant == "" || js.rec.Tenant == tenant {
			out = append(out, js.rec)
		}
	}
	sortRecords(out)
	return out
}

// Result returns the job's result. Only terminal done/failed jobs have
// one; it is served from memory when the run happened in this process,
// from the shared result cache otherwise.
func (s *Server) Result(id string) (exec.Result, error) {
	s.mu.Lock()
	js := s.jobs[id]
	if js == nil {
		s.mu.Unlock()
		return exec.Result{}, ErrUnknownJob
	}
	rec := js.rec
	res := js.result
	s.mu.Unlock()
	if !rec.Terminal() {
		return exec.Result{}, fmt.Errorf("serve: job %s is %s, no result yet", id, rec.State)
	}
	if rec.State == StateCanceled {
		return exec.Result{}, fmt.Errorf("serve: job %s was canceled", id)
	}
	if res != nil {
		return *res, nil
	}
	if r, ok := s.cache.Get(rec.Hash); ok {
		r.Key = rec.Job.Key
		r.Cached = true
		return r, nil
	}
	return exec.Result{}, fmt.Errorf("serve: job %s finished but its result left the cache", id)
}

// Cancel stops a queued or running job. Queued jobs cancel immediately;
// running jobs stop at the next segment boundary.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	js := s.jobs[id]
	if js == nil {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	if js.rec.Terminal() {
		s.mu.Unlock()
		return nil
	}
	js.userCanceled = true
	if js.rec.State == StateQueued {
		s.finishLocked(js, StateCanceled, "canceled while queued")
		s.mu.Unlock()
		return nil
	}
	cancel := js.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns the final record.
func (s *Server) Wait(ctx context.Context, id string) (JobRecord, error) {
	s.mu.Lock()
	js := s.jobs[id]
	s.mu.Unlock()
	if js == nil {
		return JobRecord{}, ErrUnknownJob
	}
	select {
	case <-js.done:
		return s.Job(id)
	case <-ctx.Done():
		return JobRecord{}, ctx.Err()
	}
}

// TenantStats is one tenant's live accounting snapshot.
type TenantStats struct {
	Quota       Quota `json:"quota"`
	Queued      int   `json:"queued"`
	Running     int   `json:"running"`
	PeakRunning int   `json:"peakRunning"`
	Started     int64 `json:"started"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`

	Tenants map[string]TenantStats `json:"tenants"`

	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
}

// Stats snapshots the server accounting.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Tenants: make(map[string]TenantStats, len(s.tenants))}
	for _, js := range s.jobs {
		switch js.rec.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	for name, t := range s.tenants {
		st.Tenants[name] = TenantStats{
			Quota: t.quota, Queued: t.queued, Running: t.running,
			PeakRunning: t.peak, Started: t.started,
		}
	}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	return st
}

// SnapshotBytes returns the raw encoded bytes of the job's latest on-disk
// checkpoint (the snapshot-export payload of GET /v1/jobs/{id}/snapshot).
// The bytes are returned exactly as the checkpoint writer stored them —
// verified decodable and belonging to the job — so a coordinator can ship
// them to another worker unmodified.
func (s *Server) SnapshotBytes(id string) ([]byte, error) {
	s.mu.Lock()
	js := s.jobs[id]
	var rec JobRecord
	if js != nil {
		rec = js.rec
	}
	s.mu.Unlock()
	if js == nil {
		return nil, ErrUnknownJob
	}
	b, err := s.store.snapshotBytes(rec.ID)
	if err != nil {
		return nil, err
	}
	if _, err := exec.HandoffSnapshot(b, rec.Job); err != nil {
		// Torn, corrupt or stale file: report "no snapshot" rather than
		// export bytes no receiver could resume from.
		return nil, ErrNoSnapshot
	}
	return b, nil
}

// Drain gracefully shuts the server down: no new submissions, running
// jobs are stopped at their next segment boundary with a final checkpoint
// written, and every interrupted job is requeued on disk so the next
// process completes it. Drain blocks until all workers have exited.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
}

// Kill hard-stops the server, simulating a crash for fault-tolerance
// tests and the chaos harness: running jobs are interrupted but — unlike
// Drain — no final checkpoints or record transitions are written, so the
// data directory is left exactly as a kill -9 would leave it (records
// still marked running, only periodic checkpoints on disk). A New over
// the same directory requeues and resumes the orphans, which is precisely
// the recovery path the simulation exercises. Kill blocks until all
// workers have exited; the Server is unusable afterwards.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
}

// worker pulls schedulable jobs until the server drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		js := s.next()
		if js == nil {
			return
		}
		s.runJob(js)
	}
}

// next blocks until a job is schedulable and claims it, or returns nil on
// drain. The pick order implements priority with tenant fairness:
// highest priority first; among equals, the tenant scheduled least
// recently; among equals again, submission order.
func (s *Server) next() *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		if js := s.pickLocked(); js != nil {
			s.startLocked(js)
			return js
		}
		s.cond.Wait()
	}
}

// pickLocked selects the best schedulable queued job, or nil. A job is
// schedulable when its tenant is under MaxRunning and no job with the
// same content hash is currently running (the second submitter waits and
// is then served straight from the result cache — exactly-once
// simulation per spec).
func (s *Server) pickLocked() *jobState {
	var best *jobState
	var bestT *tenantState
	for _, js := range s.jobs {
		if js.rec.State != StateQueued || js.userCanceled {
			continue
		}
		t := s.tenant(js.rec.Tenant)
		if t.running >= t.quota.maxRunning() || s.running[js.rec.Hash] > 0 {
			continue
		}
		if best == nil || betterPick(js, t, best, bestT) {
			best, bestT = js, t
		}
	}
	return best
}

func betterPick(a *jobState, at *tenantState, b *jobState, bt *tenantState) bool {
	if a.rec.Priority != b.rec.Priority {
		return a.rec.Priority > b.rec.Priority
	}
	if at.lastSched != bt.lastSched {
		return at.lastSched < bt.lastSched
	}
	return a.rec.Seq < b.rec.Seq
}

// startLocked transitions a picked job to running.
func (s *Server) startLocked(js *jobState) {
	t := s.tenant(js.rec.Tenant)
	t.queued--
	t.running++
	t.started++
	if t.running > t.peak {
		t.peak = t.running
	}
	t.lastSched = s.seq
	js.rec.StartSeq = s.seq
	s.seq++
	s.running[js.rec.Hash]++
	js.rec.State = StateRunning
	js.rec.StartedAt = time.Now().UnixMilli()
	js.runCtx, js.cancel = context.WithCancel(s.baseCtx)
	s.store.putJob(&js.rec)
	s.publishLocked(js, Event{Type: "state", Record: recPtr(js.rec)})
}

// runJob drives one claimed job to a terminal state (or back to queued on
// drain).
func (s *Server) runJob(js *jobState) {
	rec := func() JobRecord { s.mu.Lock(); defer s.mu.Unlock(); return js.rec }()

	// Result-cache fast path: an identical spec already simulated — by a
	// previous job, another tenant, or a direct batch run.
	if r, ok := s.cache.Get(rec.Hash); ok {
		r.Key = rec.Job.Key
		r.Cached = true
		s.finishRun(js, r)
		return
	}

	resume := s.store.loadSnapshot(&rec)
	res := exec.RunJob(rec.Job, exec.RunOptions{
		Ctx:           js.runCtx,
		SegmentCycles: s.opt.SegmentCycles,
		Progress: func(p exec.Progress) {
			s.mu.Lock()
			js.rec.Cycle = p.Cycle
			js.rec.Attempt = p.Attempt
			s.publishLocked(js, Event{Type: "progress", Progress: &p})
			s.mu.Unlock()
		},
		CheckpointEvery: s.opt.CheckpointEvery,
		Checkpoint: func(snap exec.Snapshot) {
			if s.killed.Load() {
				return // crash simulation: kill -9 writes no final checkpoint
			}
			exec.WriteSnapshot(s.store.ckptPath(rec.ID), snap)
		},
		Resume: resume,
	})

	if res.Canceled {
		if s.killed.Load() {
			// Crash simulation: die without touching memory or disk state.
			// The record stays "running" on disk, as a real crash leaves
			// it; restart requeues and resumes it.
			return
		}
		s.mu.Lock()
		if js.userCanceled {
			s.store.dropSnapshot(rec.ID)
			s.releaseRunLocked(js)
			s.finishLocked(js, StateCanceled, res.Err)
		} else {
			// Drain: the final checkpoint was just written; requeue so the
			// next process resumes from it.
			s.releaseRunLocked(js)
			js.rec.State = StateQueued
			js.rec.StartedAt = 0
			s.store.putJob(&js.rec)
			s.publishLocked(js, Event{Type: "state", Record: recPtr(js.rec)})
		}
		s.mu.Unlock()
		return
	}

	if !res.Cached {
		s.cache.Put(rec.Hash, res)
	}
	s.finishRun(js, res)
}

// finishRun completes a run that produced a result (success, failure, or
// cache hit).
func (s *Server) finishRun(js *jobState, res exec.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.dropSnapshot(js.rec.ID)
	s.releaseRunLocked(js)
	js.result = &res
	js.rec.Cycle = res.Cycles
	js.rec.Attempt = res.Attempts
	js.rec.Cached = res.Cached
	state := StateDone
	if res.Failed() {
		state = StateFailed
	}
	s.finishLocked(js, state, res.Err)
}

// releaseRunLocked returns a running job's quota and dedupe claims.
func (s *Server) releaseRunLocked(js *jobState) {
	if js.cancel != nil {
		js.cancel()
		js.cancel = nil
	}
	t := s.tenant(js.rec.Tenant)
	t.running--
	if s.running[js.rec.Hash]--; s.running[js.rec.Hash] <= 0 {
		delete(s.running, js.rec.Hash)
	}
	s.cond.Broadcast()
}

// finishLocked transitions to a terminal state, persists, publishes, and
// wakes waiters. For queued jobs it also returns the queue slot.
func (s *Server) finishLocked(js *jobState, state, errMsg string) {
	if js.rec.State == StateQueued {
		s.tenant(js.rec.Tenant).queued--
		s.cond.Broadcast()
	}
	js.rec.State = state
	js.rec.Error = errMsg
	js.rec.FinishedAt = time.Now().UnixMilli()
	s.store.putJob(&js.rec)
	s.publishLocked(js, Event{Type: "state", Record: recPtr(js.rec)})
	s.closeSubsLocked(js)
	close(js.done)
}

func recPtr(r JobRecord) *JobRecord { return &r }

func sortRecords(recs []JobRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Seq < recs[j-1].Seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
