package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"innetcc/internal/exec"
)

// APIError is a definitive answer from the server: the request arrived,
// was processed, and was refused (or failed) with an HTTP status. It is
// distinct from transport-level failures (wrapped in ErrUnreachable): a
// coordinator's circuit breaker must count "host down" against the worker
// but must not punish a worker for correctly rejecting a bad request.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // server's error message (may be empty)
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("serve: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("serve: HTTP %d", e.Status)
}

// ErrUnreachable tags transport-level failures: connection refused, reset,
// DNS, timeout — anything where no HTTP response was decoded. Test with
// Unreachable(err).
var ErrUnreachable = errors.New("serve: server unreachable")

// Unreachable reports whether err is a transport-level failure (the server
// never answered) rather than a definitive server response.
func Unreachable(err error) bool { return errors.Is(err, ErrUnreachable) }

// StatusOf returns the HTTP status of a definitive server response, or 0
// for nil and transport errors.
func StatusOf(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// retryableStatus reports whether a definitive response is worth retrying:
// the server is alive but momentarily unable (overload backpressure or a
// bad gateway in front of it). 4xx rejections other than 429 are final.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client talks to a running server's HTTP API. The zero HTTP field uses
// http.DefaultClient. The zero value of every knob preserves the original
// behavior: no per-request timeout, no retries.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8080".
	Base string
	// Tenant, when non-empty, is stamped onto submissions that omit one.
	Tenant string
	// HTTP overrides the transport.
	HTTP *http.Client

	// Timeout bounds each individual HTTP attempt (0 = none beyond the
	// caller's context). The caller's context still bounds the whole
	// operation including retries.
	Timeout time.Duration

	// Retries is how many times a failed request is reissued after
	// transport errors and retryable statuses (429/502/503/504), with
	// exponential backoff and jitter between attempts. Note that retrying
	// a submission whose response was lost can create a duplicate job
	// record; duplicates share a content hash, so the server's dedupe and
	// result cache make the second record cheap.
	Retries int

	// RetryBase is the first backoff delay (50ms when 0); each subsequent
	// attempt doubles it, capped at 2s, with ±25% jitter.
	RetryBase time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// backoff returns the pause before retry attempt (1-based): exponential
// from RetryBase, capped, with ±25% jitter so a fleet of clients retrying
// against one recovering server does not stampede in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << (attempt - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	jitter := 0.75 + 0.5*rand.Float64()
	return time.Duration(float64(d) * jitter)
}

// do issues a request and decodes the JSON response into out (skipped when
// out is nil), retrying transport failures and retryable statuses per the
// client's knobs. Non-2xx responses surface as *APIError; transport
// failures are wrapped in ErrUnreachable.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = b
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, path, payload, out)
		if err == nil || attempt >= c.Retries {
			return err
		}
		if !Unreachable(err) && !retryableStatus(StatusOf(err)) {
			return err // definitive rejection: retrying cannot change it
		}
		select {
		case <-time.After(c.backoff(attempt + 1)):
		case <-ctx.Done():
			return err
		}
	}
}

// Do issues one JSON API request under the client's timeout/retry policy:
// the exported surface for layers (like the cluster coordinator's client)
// that add endpoints on top of the same wire conventions.
func (c *Client) Do(ctx context.Context, method, path string, body, out any) error {
	return c.do(ctx, method, path, body, out)
}

// doOnce is a single HTTP attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s %s: %v", ErrUnreachable, method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		ae := &APIError{Status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			ae.Msg = fmt.Sprintf("%s %s: %s", method, path, e.Error)
		} else {
			ae.Msg = fmt.Sprintf("%s %s", method, path)
		}
		return ae
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A torn response body (connection cut mid-payload) is a transport
		// failure, not a server verdict.
		return fmt.Errorf("%w: %s %s: decoding response: %v", ErrUnreachable, method, path, err)
	}
	return nil
}

// Submit enqueues a job and returns its record.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobRecord, error) {
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	var rec JobRecord
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &rec)
	return rec, err
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &rec)
	return rec, err
}

// Jobs lists job records, optionally filtered by tenant.
func (c *Client) Jobs(ctx context.Context, tenant string) ([]JobRecord, error) {
	path := "/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var recs []JobRecord
	err := c.do(ctx, http.MethodGet, path, nil, &recs)
	return recs, err
}

// Result fetches a finished job's result payload.
func (c *Client) Result(ctx context.Context, id string) (exec.Result, error) {
	var res exec.Result
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Stats fetches the server accounting snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Health probes the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// SnapshotBytes fetches the job's latest checkpoint bytes (the hand-off
// export). ErrNoSnapshot-shaped 404s surface as *APIError with status 404.
func (c *Client) SnapshotBytes(ctx context.Context, id string) ([]byte, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/snapshot"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: GET snapshot: %v", ErrUnreachable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Msg: "GET /v1/jobs/" + id + "/snapshot"}
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: GET snapshot: %v", ErrUnreachable, err)
	}
	return b, nil
}

// Watch consumes the job's server-sent events stream, invoking fn for each
// event, until the job reaches a terminal state (returning its final
// record) or ctx is canceled. fn may be nil. A dropped stream reconnects
// with the standard Last-Event-ID header, so a momentary network blip or a
// proxy cutting the connection resumes the stream (the server replays
// missed events) instead of silently ending the watch; reconnection gives
// up only when the server definitively rejects the stream or the retry
// budget (Retries, minimum 3 for streams) is exhausted without progress.
func (c *Client) Watch(ctx context.Context, id string, fn func(Event)) (JobRecord, error) {
	lastID := int64(-1)
	budget := c.Retries
	if budget < 3 {
		budget = 3
	}
	failures := 0
	for {
		last, newLastID, err := c.watchOnce(ctx, id, lastID, fn)
		if newLastID > lastID {
			lastID = newLastID
			failures = 0 // the stream made progress: reset the budget
		}
		if last != nil && last.Terminal() {
			return *last, nil
		}
		if ctx.Err() != nil {
			return JobRecord{}, ctx.Err()
		}
		if err != nil && !Unreachable(err) {
			return JobRecord{}, err // definitive rejection (404, ...)
		}
		// Stream ended without a terminal event: either the connection was
		// cut (err != nil) or the server closed it early (drain). Check
		// the record once — the job may have finished while we were blind.
		rec, recErr := c.Job(ctx, id)
		if recErr == nil && rec.Terminal() {
			return rec, nil
		}
		failures++
		if failures > budget {
			if err == nil {
				err = fmt.Errorf("serve: watch %s: stream ended %d times without a terminal event", id, failures)
			}
			return JobRecord{}, err
		}
		select {
		case <-time.After(c.backoff(failures)):
		case <-ctx.Done():
			return JobRecord{}, ctx.Err()
		}
	}
}

// watchOnce runs one SSE connection. It returns the last state record seen
// (nil if none), the last event ID seen (-1 if none), and the transport
// error that ended the stream (nil on server-side close).
func (c *Client) watchOnce(ctx context.Context, id string, after int64, fn func(Event)) (*JobRecord, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return nil, after, err
	}
	if after >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(after, 10))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, after, fmt.Errorf("%w: events %s: %v", ErrUnreachable, id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, after, &APIError{Status: resp.StatusCode, Msg: "GET /v1/jobs/" + id + "/events"}
	}
	var last *JobRecord
	lastID := after
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if idv, ok := strings.CutPrefix(line, "id: "); ok {
			if n, err := strconv.ParseInt(idv, 10, 64); err == nil {
				lastID = n
			}
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue
		}
		if ev.ID > lastID {
			lastID = ev.ID
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Type == "state" && ev.Record != nil {
			last = ev.Record
			if last.Terminal() {
				return last, lastID, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return last, lastID, fmt.Errorf("%w: events %s: %v", ErrUnreachable, id, err)
	}
	return last, lastID, nil
}
