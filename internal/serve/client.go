package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"innetcc/internal/exec"
)

// Client talks to a running server's HTTP API. The zero HTTP field uses
// http.DefaultClient.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8080".
	Base string
	// Tenant, when non-empty, is stamped onto submissions that omit one.
	Tenant string
	// HTTP overrides the transport.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues a request and decodes the JSON response into out (skipped when
// out is nil). Non-2xx responses are surfaced as errors carrying the
// server's error message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a job and returns its record.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobRecord, error) {
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	var rec JobRecord
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &rec)
	return rec, err
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &rec)
	return rec, err
}

// Jobs lists job records, optionally filtered by tenant.
func (c *Client) Jobs(ctx context.Context, tenant string) ([]JobRecord, error) {
	path := "/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var recs []JobRecord
	err := c.do(ctx, http.MethodGet, path, nil, &recs)
	return recs, err
}

// Result fetches a finished job's result payload.
func (c *Client) Result(ctx context.Context, id string) (exec.Result, error) {
	var res exec.Result
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Stats fetches the server accounting snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Health probes the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Watch consumes the job's server-sent events stream, invoking fn for each
// event, until the job reaches a terminal state (returning its final
// record), the stream ends, or ctx is canceled. fn may be nil.
func (c *Client) Watch(ctx context.Context, id string, fn func(Event)) (JobRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return JobRecord{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobRecord{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobRecord{}, fmt.Errorf("serve: events %s: HTTP %d", id, resp.StatusCode)
	}
	var last *JobRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Type == "state" && ev.Record != nil {
			last = ev.Record
			if last.Terminal() {
				return *last, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return JobRecord{}, err
	}
	// Stream ended without a terminal state event (e.g. server drain):
	// fall back to polling the record once.
	return c.Job(ctx, id)
}
