package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"innetcc/internal/exec"
)

func testCtx(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func directResult(t *testing.T, req SubmitRequest) exec.Result {
	t.Helper()
	job, err := req.BuildJob()
	if err != nil {
		t.Fatalf("build job: %v", err)
	}
	return exec.RunJob(job, exec.RunOptions{})
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestServerTenantsEndToEnd is the serving acceptance test: three tenants
// with distinct quotas submit concurrently over HTTP; quotas bound each
// tenant's concurrency, over-quota submissions are rejected, progress
// streams deliver events, and every result is byte-identical to a direct
// internal/exec run of the same spec.
func TestServerTenantsEndToEnd(t *testing.T) {
	srv, err := New(Options{
		DataDir: t.TempDir(),
		Workers: 4,
		Tenants: map[string]Quota{
			"alice": {MaxRunning: 1, MaxQueued: 16},
			"bob":   {MaxRunning: 2, MaxQueued: 16},
			"carol": {MaxRunning: 1, MaxQueued: 2},
		},
		DefaultQuota:    Quota{MaxRunning: 1, MaxQueued: 4},
		SegmentCycles:   256,
		CheckpointEvery: 4096,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	client := &Client{Base: ts.URL}

	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	reqs := []SubmitRequest{
		{Tenant: "alice", Profile: "fft", Engine: "dir", Accesses: 40},
		{Tenant: "alice", Profile: "fft", Engine: "tree", Accesses: 40},
		{Tenant: "alice", Profile: "lu", Engine: "dir", Accesses: 40},
		{Tenant: "bob", Profile: "bar", Engine: "tree", Accesses: 40, Metrics: true},
		{Tenant: "bob", Profile: "rad", Engine: "dir", Accesses: 40},
		{Tenant: "bob", Profile: "wns", Engine: "tree", Accesses: 40},
		{Tenant: "carol", Profile: "ocn", Engine: "dir", Accesses: 40, Priority: 3},
		{Tenant: "carol", Profile: "ray", Engine: "tree", Accesses: 40},
	}
	ids := make([]string, len(reqs))
	var wg sync.WaitGroup
	var progressEvents sync.Map
	for i, req := range reqs {
		rec, err := client.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if rec.State != StateQueued || rec.ID == "" || rec.Hash == "" {
			t.Fatalf("submit %d: bad record %+v", i, rec)
		}
		ids[i] = rec.ID
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			final, err := client.Watch(ctx, id, func(ev Event) {
				if ev.Type == "progress" {
					progressEvents.Store(id, true)
				}
			})
			if err != nil {
				t.Errorf("watch %s: %v", id, err)
				return
			}
			if final.State != StateDone {
				t.Errorf("job %s finished %s: %s", id, final.State, final.Error)
			}
		}(rec.ID)
	}

	wg.Wait()

	anyProgress := false
	progressEvents.Range(func(_, _ any) bool { anyProgress = true; return false })
	if !anyProgress {
		t.Errorf("no progress events streamed")
	}

	// Every result must be byte-identical to a direct exec run.
	for i, req := range reqs {
		got, err := client.Result(ctx, ids[i])
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		want := directResult(t, req)
		if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
			t.Errorf("job %d result differs from direct run\n server: %s\n direct: %s", i, g, w)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Done != len(reqs) {
		t.Errorf("stats.Done = %d, want %d", st.Done, len(reqs))
	}
	for name, want := range map[string]int{"alice": 1, "bob": 2, "carol": 1} {
		ts := st.Tenants[name]
		if ts.PeakRunning > want {
			t.Errorf("tenant %s peak running %d exceeds quota %d", name, ts.PeakRunning, want)
		}
		if ts.Queued != 0 || ts.Running != 0 {
			t.Errorf("tenant %s accounting not drained: %+v", name, ts)
		}
	}
}

// TestQuotaMaxQueuedRejects: with the only worker occupied by another
// tenant, a tenant's submissions beyond MaxQueued are rejected over HTTP
// with 429.
func TestQuotaMaxQueuedRejects(t *testing.T) {
	srv, err := New(Options{
		DataDir:      t.TempDir(),
		Workers:      1,
		Tenants:      map[string]Quota{"carol": {MaxRunning: 1, MaxQueued: 2}},
		DefaultQuota: Quota{MaxRunning: 1, MaxQueued: 16},
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	client := &Client{Base: ts.URL}

	blocker, err := client.Submit(ctx, SubmitRequest{Tenant: "x", Profile: "fft", Engine: "dir", Accesses: 4000})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	for { // occupy the only worker so carol's jobs stay queued
		rec, err := client.Job(ctx, blocker.ID)
		if err != nil {
			t.Fatalf("job: %v", err)
		}
		if rec.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := client.Submit(ctx, SubmitRequest{Tenant: "carol", Profile: "lu", Engine: "tree", Accesses: 40 + i}); err != nil {
			t.Fatalf("in-quota submit %d: %v", i, err)
		}
	}
	_, err = client.Submit(ctx, SubmitRequest{Tenant: "carol", Profile: "wsp", Engine: "dir", Accesses: 40})
	if err == nil {
		t.Fatalf("over-quota submission accepted")
	}
	if !strings.Contains(err.Error(), "quota") || !strings.Contains(err.Error(), "429") {
		t.Fatalf("over-quota submission failed with wrong error: %v", err)
	}
}

// TestPriorityScheduling: with one worker and a long-running blocker, jobs
// queued behind it must start in priority order, not submission order.
func TestPriorityScheduling(t *testing.T) {
	srv, err := New(Options{
		DataDir:       t.TempDir(),
		Workers:       1,
		DefaultQuota:  Quota{MaxRunning: 4},
		SegmentCycles: 256,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer srv.Drain()
	ctx := testCtx(t)

	blocker, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "fft", Engine: "dir", Accesses: 2000})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	for { // wait until the blocker occupies the only worker
		rec, err := srv.Job(blocker.ID)
		if err != nil {
			t.Fatalf("job: %v", err)
		}
		if rec.State != StateQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Submitted in ascending priority; must start in descending priority.
	var ids []string
	for _, pri := range []int{1, 5, 9} {
		rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "lu", Engine: "tree",
			Accesses: 40 + pri, Priority: pri})
		if err != nil {
			t.Fatalf("submit p%d: %v", pri, err)
		}
		ids = append(ids, rec.ID)
	}
	var starts []int64
	for _, id := range append([]string{blocker.ID}, ids...) {
		rec, err := srv.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if rec.State != StateDone {
			t.Fatalf("job %s finished %s: %s", id, rec.State, rec.Error)
		}
		starts = append(starts, rec.StartSeq)
	}
	// starts = [blocker, p1, p5, p9]; dispatch order must be
	// blocker < p9 < p5 < p1.
	if !(starts[0] < starts[3] && starts[3] < starts[2] && starts[2] < starts[1]) {
		t.Fatalf("priority order violated: blocker=%d p1=%d p5=%d p9=%d",
			starts[0], starts[1], starts[2], starts[3])
	}
}

// TestDuplicateSpecSimulatesOnce: two tenants submitting the identical
// spec get one simulation; the second result comes from the shared cache
// and both are byte-identical.
func TestDuplicateSpecSimulatesOnce(t *testing.T) {
	srv, err := New(Options{
		DataDir:      t.TempDir(),
		Workers:      2,
		DefaultQuota: Quota{MaxRunning: 2},
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer srv.Drain()
	ctx := testCtx(t)

	req := SubmitRequest{Profile: "bar", Engine: "dir", Accesses: 60}
	a, err := srv.Submit(SubmitRequest{Tenant: "a", Profile: req.Profile, Engine: req.Engine, Accesses: req.Accesses})
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := srv.Submit(SubmitRequest{Tenant: "b", Profile: req.Profile, Engine: req.Engine, Accesses: req.Accesses})
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("identical specs hash differently: %s vs %s", a.Hash, b.Hash)
	}
	for _, id := range []string{a.ID, b.ID} {
		if rec, err := srv.Wait(ctx, id); err != nil || rec.State != StateDone {
			t.Fatalf("wait %s: %v %+v", id, err, rec)
		}
	}
	ra, err := srv.Result(a.ID)
	if err != nil {
		t.Fatalf("result a: %v", err)
	}
	rb, err := srv.Result(b.ID)
	if err != nil {
		t.Fatalf("result b: %v", err)
	}
	if mustJSON(t, ra) != mustJSON(t, rb) {
		t.Fatalf("duplicate-spec results differ")
	}
	if hits, _ := srv.cache.Stats(); hits < 1 {
		t.Fatalf("second submission did not hit the shared cache (hits=%d)", hits)
	}
}

// TestServerRestartResumesInterruptedJobs is the kill/restart acceptance
// test: a server stopped mid-run (graceful drain, plus a record
// hand-edited back to "running" to simulate a hard crash) must, on
// restart over the same data directory, complete every queued and
// in-flight job — resuming from checkpoints where they exist — with
// results byte-identical to direct runs.
func TestServerRestartResumesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)
	reqs := []SubmitRequest{
		{Tenant: "t", Profile: "fft", Engine: "dir", Accesses: 800},
		{Tenant: "t", Profile: "bar", Engine: "tree", Accesses: 800},
		{Tenant: "t", Profile: "ocn", Engine: "dir", Accesses: 800},
	}

	srv1, err := New(Options{
		DataDir:         dir,
		Workers:         2,
		DefaultQuota:    Quota{MaxRunning: 2},
		SegmentCycles:   256,
		CheckpointEvery: 1024,
	})
	if err != nil {
		t.Fatalf("new server 1: %v", err)
	}
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		rec, err := srv1.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = rec.ID
	}
	// Let the runs get going and write at least one checkpoint, then pull
	// the plug mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt", "*.ckpt"))
		if len(ckpts) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared before drain")
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Drain()

	// Drain must have requeued everything non-terminal on disk.
	interrupted := 0
	st := srv1.Stats()
	if st.Queued == 0 && st.Done == len(reqs) {
		t.Skipf("all jobs finished before drain; nothing to resume")
	}
	for _, id := range ids {
		b, err := os.ReadFile(filepath.Join(dir, "jobs", id+".json"))
		if err != nil {
			t.Fatalf("read record %s: %v", id, err)
		}
		var rec JobRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("decode record %s: %v", id, err)
		}
		if rec.State == StateRunning {
			t.Fatalf("drained server left %s marked running", id)
		}
		if rec.State == StateQueued {
			interrupted++
		}
	}
	if interrupted == 0 {
		t.Skipf("all jobs finished before drain; nothing to resume")
	}

	// Simulate a hard crash for one record: rewrite it as "running", as a
	// kill -9 would have left it.
	var crashRec JobRecord
	b, _ := os.ReadFile(filepath.Join(dir, "jobs", ids[0]+".json"))
	json.Unmarshal(b, &crashRec)
	if crashRec.State == StateQueued {
		crashRec.State = StateRunning
		nb, _ := json.Marshal(crashRec)
		os.WriteFile(filepath.Join(dir, "jobs", ids[0]+".json"), nb, 0o644)
	}

	srv2, err := New(Options{
		DataDir:         dir,
		Workers:         2,
		DefaultQuota:    Quota{MaxRunning: 2},
		SegmentCycles:   256,
		CheckpointEvery: 1024,
	})
	if err != nil {
		t.Fatalf("new server 2: %v", err)
	}
	defer srv2.Drain()
	for i, id := range ids {
		rec, err := srv2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s after restart: %v", id, err)
		}
		if rec.State != StateDone {
			t.Fatalf("job %s finished %s after restart: %s", id, rec.State, rec.Error)
		}
		got, err := srv2.Result(id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		want := directResult(t, reqs[i])
		if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
			t.Errorf("job %s result differs from direct run after restart\n server: %s\n direct: %s", id, g, w)
		}
	}
}

// TestCancelRunningJob: canceling a running job stops it promptly and
// marks it canceled without caching a partial result.
func TestCancelRunningJob(t *testing.T) {
	srv, err := New(Options{
		DataDir:       t.TempDir(),
		Workers:       1,
		DefaultQuota:  Quota{MaxRunning: 1},
		SegmentCycles: 256,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer srv.Drain()
	ctx := testCtx(t)

	rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "wsp", Engine: "tree", Accesses: 4000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		r, _ := srv.Job(rec.ID)
		if r.State == StateRunning {
			break
		}
		if r.Terminal() {
			t.Fatalf("job finished before it could be canceled: %+v", r)
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Cancel(rec.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := srv.Wait(ctx, rec.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateCanceled {
		t.Fatalf("canceled job finished %s", final.State)
	}
	if _, err := srv.Result(rec.ID); err == nil {
		t.Fatalf("canceled job served a result")
	}
	if _, ok := srv.cache.Get(rec.Hash); ok {
		t.Fatalf("partial result of a canceled job was cached")
	}
}

func TestParseTenants(t *testing.T) {
	q, err := ParseTenants("alice=2:8, bob=1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(q, map[string]Quota{
		"alice": {MaxRunning: 2, MaxQueued: 8},
		"bob":   {MaxRunning: 1},
	}) {
		t.Fatalf("parsed %+v", q)
	}
	for _, bad := range []string{"noequals", "x=", "x=a", "x=1:b"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}
