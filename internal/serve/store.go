package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"innetcc/internal/exec"
)

// Job lifecycle states. A job is terminal in StateDone, StateFailed or
// StateCanceled; queued and running jobs survive a server restart (running
// ones are requeued and, when a checkpoint exists, resumed from it).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobRecord is the persistent lifecycle record of one submitted job. It is
// what the status endpoints return and what the store writes to disk; the
// result payload itself lives in the content-hash result cache under
// Hash.
type JobRecord struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    string `json:"state"`

	// Hash is the job's content hash: the result-cache key, shared with
	// direct internal/exec runs of the same spec.
	Hash string `json:"hash"`

	SubmittedAt int64 `json:"submittedAt"` // unix milliseconds
	StartedAt   int64 `json:"startedAt,omitempty"`
	FinishedAt  int64 `json:"finishedAt,omitempty"`

	// Seq is the submission sequence number scheduling ties break on;
	// StartSeq is the scheduler sequence at which the job last started
	// running (0 while never started), making the actual dispatch order
	// observable.
	Seq      int64 `json:"seq"`
	StartSeq int64 `json:"startSeq,omitempty"`

	// Cycle and Attempt mirror the latest streamed progress.
	Cycle   int64 `json:"cycle,omitempty"`
	Attempt int   `json:"attempt,omitempty"`

	// Error is set in StateFailed (and carries the cancellation cause in
	// StateCanceled). Cached reports the result came from the cache
	// without simulating.
	Error  string `json:"error,omitempty"`
	Cached bool   `json:"cached,omitempty"`

	Job exec.Job `json:"job"`
}

// Terminal reports whether the record's state is final.
func (r *JobRecord) Terminal() bool {
	return r.State == StateDone || r.State == StateFailed || r.State == StateCanceled
}

// store persists job records and checkpoints under the server's data
// directory:
//
//	<dir>/jobs/<id>.json   one JobRecord per job, written atomically
//	<dir>/ckpt/<id>.ckpt   latest checkpoint of a running job
//	<dir>/cache/           the exec result cache (opened by the server)
type store struct {
	dir string
}

func openStore(dir string) (*store, error) {
	for _, sub := range []string{"jobs", "ckpt", "cache"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: store: %w", err)
		}
	}
	return &store{dir: dir}, nil
}

func (s *store) cacheDir() string { return filepath.Join(s.dir, "cache") }

func (s *store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

func (s *store) ckptPath(id string) string {
	return filepath.Join(s.dir, "ckpt", id+".ckpt")
}

// putJob writes the record atomically (temp file + rename), so a crash
// leaves the previous version, never a torn one.
func (s *store) putJob(rec *JobRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	path := s.jobPath(rec.ID)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".job*")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}

// loadJobs reads every decodable job record. Undecodable files (torn by a
// crash predating the atomic writer, or hand-damaged) are skipped, not
// fatal: losing one record must not take the whole server down.
func (s *store) loadJobs() ([]*JobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var out []*JobRecord
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, "jobs", e.Name()))
		if err != nil {
			continue
		}
		var rec JobRecord
		if json.Unmarshal(b, &rec) != nil || rec.ID == "" {
			continue
		}
		out = append(out, &rec)
	}
	return out, nil
}

// loadSnapshot returns the job's checkpoint if one exists, decodes, and
// actually belongs to the job's spec. Any failure reads as "no
// checkpoint": a checkpoint is an optimization, never a correctness
// dependency.
func (s *store) loadSnapshot(rec *JobRecord) *exec.Snapshot {
	snap, err := exec.ReadSnapshot(s.ckptPath(rec.ID))
	if err != nil || snap.Job.Hash() != rec.Hash {
		return nil
	}
	return &snap
}

func (s *store) dropSnapshot(id string) { os.Remove(s.ckptPath(id)) }

// snapshotBytes reads the job's raw checkpoint file for snapshot export.
func (s *store) snapshotBytes(id string) ([]byte, error) {
	b, err := os.ReadFile(s.ckptPath(id))
	if err != nil {
		return nil, ErrNoSnapshot
	}
	return b, nil
}

// putSnapshotBytes stages externally supplied checkpoint bytes (a hand-off
// snapshot from another host) as the job's own checkpoint, atomically.
func (s *store) putSnapshotBytes(id string, b []byte) error {
	path := s.ckptPath(id)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt*")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: snapshot write failed")
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}
