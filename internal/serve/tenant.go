// Package serve is the persistent simulation-as-a-service layer: an
// HTTP/JSON job API in front of internal/exec with a priority queue,
// per-tenant quotas and fair scheduling, streaming progress, and
// checkpoint/restore so a killed server resumes interrupted jobs on
// restart. Results are stored in the same content-hash cache the batch
// pool uses, so server runs and direct runs share one result store.
package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// Quota bounds one tenant's use of the server.
type Quota struct {
	// MaxRunning is the tenant's concurrent-simulation cap (values <= 0
	// mean 1).
	MaxRunning int `json:"maxRunning"`

	// MaxQueued caps the tenant's non-terminal jobs (queued + running);
	// submissions beyond it are rejected with 429. Values <= 0 mean
	// unlimited.
	MaxQueued int `json:"maxQueued"`
}

func (q Quota) maxRunning() int {
	if q.MaxRunning <= 0 {
		return 1
	}
	return q.MaxRunning
}

// ParseTenants parses the CLI tenant-quota syntax:
// "name=maxRunning[:maxQueued],name2=...". Example: "alice=2:8,bob=1".
func ParseTenants(s string) (map[string]Quota, error) {
	out := make(map[string]Quota)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("serve: bad tenant %q (want name=maxRunning[:maxQueued])", part)
		}
		runS, quS, hasQ := strings.Cut(spec, ":")
		var q Quota
		var err error
		if q.MaxRunning, err = strconv.Atoi(runS); err != nil {
			return nil, fmt.Errorf("serve: tenant %s: bad maxRunning %q", name, runS)
		}
		if hasQ {
			if q.MaxQueued, err = strconv.Atoi(quS); err != nil {
				return nil, fmt.Errorf("serve: tenant %s: bad maxQueued %q", name, quS)
			}
		}
		out[name] = q
	}
	return out, nil
}
