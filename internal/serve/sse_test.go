package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sseServer builds a one-worker server with fine-grained segments (so
// cancellation and progress ticks land quickly) behind an httptest server.
func sseServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{
		DataDir:       t.TempDir(),
		Workers:       1,
		DefaultQuota:  Quota{MaxRunning: 1, MaxQueued: 8},
		SegmentCycles: 128,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	t.Cleanup(srv.Drain)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// subCount reads the job's live subscriber count through the server lock.
func subCount(srv *Server, id string) int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if js := srv.jobs[id]; js != nil {
		return len(js.subs)
	}
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sseEvents decodes one server-sent-events stream, invoking fn per event,
// until the stream ends.
func sseEvents(t *testing.T, body *bufio.Scanner, fn func(Event) bool) {
	t.Helper()
	for body.Scan() {
		line := body.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if !fn(ev) {
			return
		}
	}
}

// TestSSEClientDisconnectUnsubscribes pins the disconnect path of the
// events handler: a client that walks away mid-stream must be removed from
// the job's subscriber list (and its handler goroutine must exit) while
// the job keeps running to completion undisturbed.
func TestSSEClientDisconnectUnsubscribes(t *testing.T) {
	srv, ts := sseServer(t)
	ctx := testCtx(t)

	rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "fft", Engine: "tree", Accesses: 2000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	streamCtx, cancelStream := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(streamCtx, "GET", ts.URL+"/v1/jobs/"+rec.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	defer resp.Body.Close()
	// The synthetic first state event proves the subscription is live.
	sc := bufio.NewScanner(resp.Body)
	got := false
	sseEvents(t, sc, func(ev Event) bool {
		if ev.Type != "state" || ev.Record == nil || ev.Record.ID != rec.ID {
			t.Errorf("first event = %+v, want state event for %s", ev, rec.ID)
		}
		got = true
		return false
	})
	if !got {
		t.Fatal("no first state event")
	}
	waitFor(t, "subscriber registered", func() bool { return subCount(srv, rec.ID) == 1 })

	// Disconnect mid-stream: the handler must unsubscribe.
	cancelStream()
	waitFor(t, "subscriber removed after disconnect", func() bool { return subCount(srv, rec.ID) == 0 })

	// The job is unaffected by the vanished watcher.
	waitFor(t, "job completion", func() bool {
		r, err := srv.Job(rec.ID)
		return err == nil && r.State == StateDone
	})
}

// TestSSECancelMidStreamDeliversTerminalEvent pins the cancel path: a
// watcher attached to a running job that gets canceled receives a terminal
// state event carrying the canceled record, then a clean stream end, and
// the server drops the subscription.
func TestSSECancelMidStreamDeliversTerminalEvent(t *testing.T) {
	srv, ts := sseServer(t)
	ctx := testCtx(t)

	// Large enough that the job cannot finish before the cancel below lands
	// (the run never completes — it is canceled — so size costs nothing).
	rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "lu", Engine: "tree", Accesses: 200000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "job running", func() bool {
		r, err := srv.Job(rec.ID)
		return err == nil && r.State == StateRunning
	})

	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+rec.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	defer resp.Body.Close()

	if err := srv.Cancel(rec.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	// Drain the stream to its end: the last event must be the terminal
	// canceled record (progress/state events may precede it).
	var last Event
	sseEvents(t, bufio.NewScanner(resp.Body), func(ev Event) bool {
		last = ev
		return true
	})
	if last.Type != "state" || last.Record == nil {
		t.Fatalf("final event = %+v, want terminal state event", last)
	}
	if last.Record.State != StateCanceled || !last.Record.Terminal() {
		t.Fatalf("final record state = %s, want %s", last.Record.State, StateCanceled)
	}
	waitFor(t, "subscriber removed after close", func() bool { return subCount(srv, rec.ID) == 0 })
}

// TestSSENoGoroutineLeak runs a watch-disconnect / watch-cancel cycle and
// requires the goroutine count to settle back to its baseline: neither the
// events handler nor the subscription machinery may strand goroutines.
func TestSSENoGoroutineLeak(t *testing.T) {
	srv, ts := sseServer(t)
	ctx := testCtx(t)
	base := runtime.NumGoroutine()

	for i := 0; i < 4; i++ {
		rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "fft", Engine: "dir", Accesses: 300})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		streamCtx, cancelStream := context.WithCancel(ctx)
		req, _ := http.NewRequestWithContext(streamCtx, "GET", ts.URL+"/v1/jobs/"+rec.ID+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("open stream: %v", err)
		}
		if i%2 == 0 {
			// Half the cycles abandon the stream mid-run...
			cancelStream()
		} else {
			// ...the other half cancel the job and read to stream end.
			if err := srv.Cancel(rec.ID); err != nil {
				t.Fatalf("cancel: %v", err)
			}
			sseEvents(t, bufio.NewScanner(resp.Body), func(Event) bool { return true })
			cancelStream()
		}
		resp.Body.Close()
		waitFor(t, "job terminal", func() bool {
			r, err := srv.Job(rec.ID)
			return err == nil && r.Terminal()
		})
	}

	// Goroutine accounting: allow scheduler noise to drain, then require
	// the count back at (or below) baseline plus idle-connection slack.
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		http.DefaultClient.CloseIdleConnections()
		return runtime.NumGoroutine() <= base+2
	})
}
