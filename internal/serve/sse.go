package serve

import (
	"innetcc/internal/exec"
)

// Event is one entry of a job's progress stream (GET /v1/jobs/{id}/events,
// server-sent events). State transitions carry the full record; progress
// ticks carry the runner's Progress observation.
type Event struct {
	Type     string         `json:"type"` // "state" | "progress"
	Record   *JobRecord     `json:"record,omitempty"`
	Progress *exec.Progress `json:"progress,omitempty"`
}

// Subscribe attaches a progress listener to the job. The returned channel
// first delivers a synthetic state event with the current record, then
// every subsequent event, and is closed when the job reaches a terminal
// state (the closing state event is delivered first). The unsubscribe
// function is idempotent and safe after close.
func (s *Server) Subscribe(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := s.jobs[id]
	if js == nil {
		return nil, nil, ErrUnknownJob
	}
	// Buffered so a stalled consumer drops events instead of blocking the
	// simulation worker; 64 comfortably covers state transitions plus a
	// burst of progress ticks.
	ch := make(chan Event, 64)
	ch <- Event{Type: "state", Record: recPtr(js.rec)}
	if js.rec.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	js.subs = append(js.subs, ch)
	unsub := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range js.subs {
			if c == ch {
				js.subs = append(js.subs[:i], js.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, unsub, nil
}

// publishLocked fans an event out to the job's subscribers. Callers hold
// s.mu. Slow subscribers lose events (non-blocking send): progress is a
// telemetry stream, not a transactional log. The exception is a terminal
// state event — Subscribe promises it precedes the channel close — so a
// full buffer has its oldest queued telemetry evicted to make room.
// Eviction is safe: senders serialize on s.mu, so after freeing a slot
// the send cannot find the buffer full again.
func (s *Server) publishLocked(js *jobState, ev Event) {
	terminal := ev.Type == "state" && ev.Record != nil && ev.Record.Terminal()
	for _, ch := range js.subs {
		select {
		case ch <- ev:
		default:
			if terminal {
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- ev:
				default:
				}
			}
		}
	}
}

// closeSubsLocked ends every subscriber stream. Callers hold s.mu.
func (s *Server) closeSubsLocked(js *jobState) {
	for _, ch := range js.subs {
		close(ch)
	}
	js.subs = nil
}
