package serve

import (
	"innetcc/internal/exec"
)

// Event is one entry of a job's progress stream (GET /v1/jobs/{id}/events,
// server-sent events). State transitions carry the full record; progress
// ticks carry the runner's Progress observation. ID is the job-local event
// sequence number (1-based, monotonic): SSE clients echo the last ID they
// saw in the Last-Event-ID header on reconnect and the server replays what
// they missed from its retained ring.
type Event struct {
	ID       int64          `json:"id,omitempty"`
	Type     string         `json:"type"` // "state" | "progress"
	Record   *JobRecord     `json:"record,omitempty"`
	Progress *exec.Progress `json:"progress,omitempty"`
}

// maxEventHistory bounds the per-job retained event ring Last-Event-ID
// reconnects replay from. A reconnect that fell further behind than the
// ring (or predates it) gets a synthetic state event with the current
// record instead — progress ticks are telemetry, but the current state
// subsumes everything a stream exists to deliver, including the terminal
// transition.
const maxEventHistory = 256

// Subscribe attaches a progress listener to the job. The returned channel
// first delivers a synthetic state event with the current record, then
// every subsequent event, and is closed when the job reaches a terminal
// state (the closing state event is delivered first). The unsubscribe
// function is idempotent and safe after close.
func (s *Server) Subscribe(id string) (<-chan Event, func(), error) {
	return s.SubscribeAfter(id, -1)
}

// SubscribeAfter attaches a listener that resumes a dropped stream: events
// with IDs greater than after are replayed from the retained ring before
// live delivery begins. after < 0 requests a fresh subscription (synthetic
// current-state event first); an after older than the ring's tail falls
// back to the same synthetic snapshot, so a lagging client always
// converges on the current record.
func (s *Server) SubscribeAfter(id string, after int64) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := s.jobs[id]
	if js == nil {
		return nil, nil, ErrUnknownJob
	}
	replay := js.replayLocked(after)
	// Buffered so a stalled consumer drops events instead of blocking the
	// simulation worker; 64 comfortably covers state transitions plus a
	// burst of progress ticks, and the replay backlog rides on top.
	ch := make(chan Event, len(replay)+64)
	for _, ev := range replay {
		ch <- ev
	}
	if js.rec.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	js.subs = append(js.subs, ch)
	unsub := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range js.subs {
			if c == ch {
				js.subs = append(js.subs[:i], js.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, unsub, nil
}

// replayLocked computes the catch-up backlog for a subscriber that last saw
// event ID after. Callers hold s.mu.
func (js *jobState) replayLocked(after int64) []Event {
	if after >= js.lastEv {
		// Fully caught up (or claiming to be from the future): nothing to
		// replay; a fresh terminal job still needs its closing event, which
		// the synthetic snapshot below covers only when after < lastEv.
		if after > js.lastEv {
			after = -1 // bogus ID from another job's stream: resync
		} else {
			return nil
		}
	}
	if after >= 0 && len(js.hist) > 0 && js.hist[0].ID <= after+1 {
		// The ring still holds everything after the cursor: exact replay.
		out := make([]Event, 0, len(js.hist))
		for _, ev := range js.hist {
			if ev.ID > after {
				out = append(out, ev)
			}
		}
		return out
	}
	// Fresh subscription, or the cursor fell off the ring: one synthetic
	// state event carrying the current record (stamped with the latest ID
	// so a further reconnect resumes exactly).
	return []Event{{ID: js.lastEv, Type: "state", Record: recPtr(js.rec)}}
}

// publishLocked assigns the event its job-local sequence ID, retains it in
// the replay ring and fans it out to the job's subscribers. Callers hold
// s.mu. Slow subscribers lose events (non-blocking send): progress is a
// telemetry stream, not a transactional log. The exception is a terminal
// state event — Subscribe promises it precedes the channel close — so a
// full buffer has its oldest queued telemetry evicted to make room.
// Eviction is safe: senders serialize on s.mu, so after freeing a slot
// the send cannot find the buffer full again.
func (s *Server) publishLocked(js *jobState, ev Event) {
	js.lastEv++
	ev.ID = js.lastEv
	js.hist = append(js.hist, ev)
	if len(js.hist) > maxEventHistory {
		js.hist = js.hist[len(js.hist)-maxEventHistory:]
	}
	terminal := ev.Type == "state" && ev.Record != nil && ev.Record.Terminal()
	for _, ch := range js.subs {
		select {
		case ch <- ev:
		default:
			if terminal {
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- ev:
				default:
				}
			}
		}
	}
}

// closeSubsLocked ends every subscriber stream. Callers hold s.mu.
func (s *Server) closeSubsLocked(js *jobState) {
	for _, ch := range js.subs {
		close(ch)
	}
	js.subs = nil
}
