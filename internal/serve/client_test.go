package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"innetcc/internal/exec"
)

// TestClientErrorSplit pins the typed-error contract the coordinator's
// circuit breaker depends on: a server that answers with an error yields
// *APIError (not unreachable); a server that cannot be reached yields an
// ErrUnreachable-wrapped error (not an API error).
func TestClientErrorSplit(t *testing.T) {
	_, ts := sseServer(t)
	ctx := testCtx(t)

	c := &Client{Base: ts.URL}
	_, err := c.Job(ctx, "no-such-job")
	if err == nil {
		t.Fatalf("unknown job fetch succeeded")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown job error = %v, want *APIError 404", err)
	}
	if Unreachable(err) {
		t.Fatalf("definitive 404 classified as unreachable: %v", err)
	}
	if StatusOf(err) != http.StatusNotFound {
		t.Fatalf("StatusOf = %d, want 404", StatusOf(err))
	}

	dead := &Client{Base: "http://127.0.0.1:1", Timeout: 2 * time.Second}
	err = dead.Health(ctx)
	if err == nil {
		t.Fatalf("health against a dead address succeeded")
	}
	if !Unreachable(err) {
		t.Fatalf("dead-address error = %v, want ErrUnreachable", err)
	}
	if StatusOf(err) != 0 {
		t.Fatalf("transport error carries HTTP status %d", StatusOf(err))
	}
}

// TestClientRetriesTransient: transport failures and 503s are retried with
// backoff until the server recovers; a definitive 404 is never retried.
func TestClientRetriesTransient(t *testing.T) {
	ctx := testCtx(t)
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer flaky.Close()

	c := &Client{Base: flaky.URL, Retries: 3, RetryBase: time.Millisecond}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health did not recover over retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}

	var notFound atomic.Int64
	strict := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		notFound.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer strict.Close()
	c2 := &Client{Base: strict.URL, Retries: 5, RetryBase: time.Millisecond}
	if err := c2.Health(ctx); StatusOf(err) != http.StatusNotFound {
		t.Fatalf("err = %v, want 404", err)
	}
	if got := notFound.Load(); got != 1 {
		t.Fatalf("definitive 404 was retried (%d calls)", got)
	}
}

// TestWatchReconnectsMidStream is the dropped-stream regression test: the
// connection carrying a job's SSE stream is killed mid-run; the watch must
// reconnect with Last-Event-ID and still deliver the terminal state
// instead of silently ending.
func TestWatchReconnectsMidStream(t *testing.T) {
	srv, ts := sseServer(t)
	ctx := testCtx(t)
	c := &Client{Base: ts.URL, RetryBase: 5 * time.Millisecond}

	rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "lu", Engine: "tree", Accesses: 4000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var events atomic.Int64
	killed := make(chan struct{})
	watchDone := make(chan error, 1)
	var final JobRecord
	go func() {
		f, err := c.Watch(ctx, rec.ID, func(Event) { events.Add(1) })
		final = f
		watchDone <- err
	}()

	// Once the stream is demonstrably live, cut every client connection.
	waitFor(t, "first events", func() bool { return events.Load() >= 1 })
	ts.CloseClientConnections()
	close(killed)

	if err := <-watchDone; err != nil {
		t.Fatalf("watch after connection kill: %v", err)
	}
	select {
	case <-killed:
	default:
		t.Fatalf("test bug: watch finished before the connection was killed")
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
}

// TestSubscribeAfterReplaysMissedEvents pins the server half of stream
// resumption: a subscriber reconnecting with the ID it last saw receives
// every retained event after it — including the terminal state of a job
// that finished while the subscriber was away.
func TestSubscribeAfterReplaysMissedEvents(t *testing.T) {
	srv, _ := sseServer(t)
	ctx := testCtx(t)

	rec, err := srv.Submit(SubmitRequest{Tenant: "t", Profile: "fft", Engine: "dir", Accesses: 200})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := srv.Wait(ctx, rec.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}

	// Reconnect claiming to have seen nothing after event 0: the replay
	// must end in the terminal record.
	ch, unsub, err := srv.SubscribeAfter(rec.ID, 0)
	if err != nil {
		t.Fatalf("subscribe after: %v", err)
	}
	defer unsub()
	var last Event
	for ev := range ch {
		if ev.ID <= 0 {
			t.Errorf("replayed event without a positive ID: %+v", ev)
		}
		last = ev
	}
	if last.Type != "state" || last.Record == nil || !last.Record.Terminal() {
		t.Fatalf("replay ended with %+v, want terminal state event", last)
	}
}

// TestSnapshotHandoff covers the export/import pair: a checkpoint exported
// from one server resumes the same spec on a second server with a result
// byte-identical to a direct run, and a snapshot for a different spec is
// rejected at submission.
func TestSnapshotHandoff(t *testing.T) {
	ctx := testCtx(t)
	req := SubmitRequest{Tenant: "t", Profile: "ocn", Engine: "tree", Accesses: 1500}

	srvA, err := New(Options{
		DataDir:         t.TempDir(),
		Workers:         1,
		DefaultQuota:    Quota{MaxRunning: 1},
		SegmentCycles:   256,
		CheckpointEvery: 1024,
	})
	if err != nil {
		t.Fatalf("new server A: %v", err)
	}
	recA, err := srvA.Submit(req)
	if err != nil {
		t.Fatalf("submit on A: %v", err)
	}
	var snap []byte
	waitFor(t, "exportable snapshot on A", func() bool {
		b, err := srvA.SnapshotBytes(recA.ID)
		if err != nil {
			return false
		}
		snap = b
		return true
	})
	// Murder A mid-run: no drain, no final checkpoint.
	srvA.Kill()

	decoded, err := exec.DecodeSnapshot(snap)
	if err != nil {
		t.Fatalf("exported snapshot does not decode: %v", err)
	}
	if decoded.Cycle <= 0 {
		t.Fatalf("exported snapshot at cycle %d, want mid-run", decoded.Cycle)
	}

	srvB, err := New(Options{
		DataDir:       t.TempDir(),
		Workers:       1,
		DefaultQuota:  Quota{MaxRunning: 1},
		SegmentCycles: 256,
	})
	if err != nil {
		t.Fatalf("new server B: %v", err)
	}
	defer srvB.Drain()

	// A snapshot belonging to a different spec must be rejected loudly.
	bad := req
	bad.Accesses++
	bad.Snapshot = snap
	if _, err := srvB.Submit(bad); err == nil {
		t.Fatalf("mismatched hand-off snapshot accepted")
	}

	move := req
	move.Snapshot = snap
	recB, err := srvB.Submit(move)
	if err != nil {
		t.Fatalf("hand-off submit on B: %v", err)
	}
	if _, err := srvB.Wait(ctx, recB.ID); err != nil {
		t.Fatalf("wait on B: %v", err)
	}
	got, err := srvB.Result(recB.ID)
	if err != nil {
		t.Fatalf("result on B: %v", err)
	}
	want := directResult(t, req)
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Errorf("migrated result differs from direct run\n migrated: %s\n direct:   %s", g, w)
	}
}

// TestKillLeavesCrashState: Kill must leave the store as a crash would —
// record still "running", no terminal transition — and a restart over the
// same directory completes the job from its periodic checkpoints.
func TestKillLeavesCrashState(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)
	req := SubmitRequest{Tenant: "t", Profile: "bar", Engine: "dir", Accesses: 1200}

	srv1, err := New(Options{
		DataDir:         dir,
		Workers:         1,
		DefaultQuota:    Quota{MaxRunning: 1},
		SegmentCycles:   256,
		CheckpointEvery: 1024,
	})
	if err != nil {
		t.Fatalf("new server 1: %v", err)
	}
	rec, err := srv1.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "job running with a checkpoint", func() bool {
		r, err := srv1.Job(rec.ID)
		if err != nil || r.State != StateRunning {
			return false
		}
		_, err = srv1.SnapshotBytes(rec.ID)
		return err == nil
	})
	srv1.Kill()

	recs, err := (&store{dir: dir}).loadJobs()
	if err != nil {
		t.Fatalf("load records: %v", err)
	}
	found := false
	for _, r := range recs {
		if r.ID == rec.ID {
			found = true
			if r.State != StateRunning {
				t.Fatalf("killed server left record %q, want running (crash state)", r.State)
			}
		}
	}
	if !found {
		t.Fatalf("record vanished after kill")
	}

	srv2, err := New(Options{
		DataDir:       dir,
		Workers:       1,
		DefaultQuota:  Quota{MaxRunning: 1},
		SegmentCycles: 256,
	})
	if err != nil {
		t.Fatalf("new server 2: %v", err)
	}
	defer srv2.Drain()
	final, err := srv2.Wait(ctx, rec.ID)
	if err != nil {
		t.Fatalf("wait after restart: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("restarted job finished %s: %s", final.State, final.Error)
	}
	got, err := srv2.Result(rec.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	want := directResult(t, req)
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Errorf("post-crash result differs from direct run")
	}
}
