package serve

import (
	"testing"

	"innetcc/internal/trace"
)

// sweep pushes one job per profile x engine through the server, waits for
// all of them, and returns the job count.
func sweep(tb testing.TB, srv *Server, accesses int) int {
	tb.Helper()
	ctx := testCtx(tb)
	var ids []string
	for _, p := range trace.Benchmarks() {
		for _, engine := range []string{"dir", "tree"} {
			rec, err := srv.Submit(SubmitRequest{
				Tenant: "bench", Profile: p.Name, Engine: engine, Accesses: accesses,
			})
			if err != nil {
				tb.Fatalf("submit: %v", err)
			}
			ids = append(ids, rec.ID)
		}
	}
	for _, id := range ids {
		rec, err := srv.Wait(ctx, id)
		if err != nil || rec.State != StateDone {
			tb.Fatalf("wait %s: %v %+v", id, err, rec)
		}
	}
	return len(ids)
}

func benchOptions(dir string) Options {
	return Options{DataDir: dir, Workers: 4, DefaultQuota: Quota{MaxRunning: 4}}
}

// BenchmarkServeSweepCold measures full-sweep throughput through the
// serving layer — 8 profiles x 2 engines — with an empty result cache:
// every job simulates. Each iteration gets a fresh data directory so every
// sweep is genuinely cold.
func BenchmarkServeSweepCold(b *testing.B) {
	jobs := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := New(benchOptions(b.TempDir()))
		if err != nil {
			b.Fatalf("new server: %v", err)
		}
		b.StartTimer()
		jobs += sweep(b, srv, 60)
		b.StopTimer()
		srv.Drain()
		b.StartTimer()
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/sec")
}

// BenchmarkServeSweepWarm is the same sweep against a primed result cache:
// the scheduling, HTTP-free submission path and cache serving, with zero
// simulation work.
func BenchmarkServeSweepWarm(b *testing.B) {
	srv, err := New(benchOptions(b.TempDir()))
	if err != nil {
		b.Fatalf("new server: %v", err)
	}
	defer srv.Drain()
	sweep(b, srv, 60) // prime
	b.ResetTimer()
	jobs := 0
	for i := 0; i < b.N; i++ {
		jobs += sweep(b, srv, 60)
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/sec")
}
