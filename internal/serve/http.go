package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs                 submit (SubmitRequest -> JobRecord)
//	GET  /v1/jobs                 list records (?tenant= filters)
//	GET  /v1/jobs/{id}            one record
//	GET  /v1/jobs/{id}/result     terminal result payload
//	POST /v1/jobs/{id}/cancel     cancel queued/running job
//	GET  /v1/jobs/{id}/events     server-sent events progress stream
//	GET  /v1/jobs/{id}/snapshot   latest checkpoint bytes (hand-off export)
//	GET  /v1/stats                queue/tenant/cache accounting
//	GET  /healthz                 liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrNoSnapshot):
		code = http.StatusNotFound
	case errors.Is(err, ErrQuotaExceeded):
		code = http.StatusTooManyRequests
		// Quota pressure is transient: tell well-behaved clients when to
		// come back instead of letting them hammer the endpoint.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	rec, err := s.Submit(req)
	if err != nil {
		if errors.Is(err, ErrQuotaExceeded) {
			writeErr(w, err)
		} else {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs(r.URL.Query().Get("tenant")))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.Result(id)
	if err != nil {
		if errors.Is(err, ErrUnknownJob) {
			writeErr(w, err)
			return
		}
		// Known job without a servable result: not ready or canceled.
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

// handleEvents streams the job's Event feed as server-sent events until the
// job reaches a terminal state or the client disconnects. A reconnecting
// client sends the standard Last-Event-ID header and the stream resumes
// after that event (replayed from the server's retained ring) instead of
// restarting or silently missing the terminal transition.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	after := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			after = n
		}
	}
	ch, unsub, err := s.SubscribeAfter(r.PathValue("id"), after)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer unsub()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, b); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleSnapshot exports the job's latest checkpoint bytes for hand-off to
// another worker. 404 when the job is unknown or has no usable snapshot.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	b, err := s.SnapshotBytes(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}
