package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"innetcc/internal/serve"
)

// Harness is the in-process chaos rig: one coordinator and N workers,
// all real HTTP servers on loopback ports, with a seeded ChaosPlan
// deciding — purely as a function of (seed, tick, worker) — when workers
// are hard-killed, restarted over their own data directories, and
// partitioned from the cluster. It is the engine behind the chaos e2e
// tests and the CLI's -chaos mode.
//
// Kills are honest: the worker's serve.Server is stopped via Kill (no
// final checkpoint, records left "running" on disk, exactly kill -9
// state) and its HTTP listener is torn down mid-connection. Restarts
// are honest too: a fresh serve.New over the same directory, on a new
// port, re-registering through a fresh agent — the same code path a
// supervisor restarting a crashed innetcc -serve process would take.
// Partitions cut both planes at once: the worker's API aborts every
// connection and the agent's heartbeats fail at the transport, so the
// lease expires exactly as it would in a real network split.
type Harness struct {
	Coord *Coordinator
	// URL is the coordinator's base URL; point any serve.Client (or
	// cluster.Client) at it.
	URL string

	opt  HarnessOptions
	plan ChaosPlan

	ctx    context.Context
	cancel context.CancelFunc

	coordLn  net.Listener
	coordSrv *http.Server

	workers []*chaosWorker

	mu     sync.Mutex
	tick   int64
	events []ChaosEvent
}

// HarnessOptions configures a Harness.
type HarnessOptions struct {
	// Dir is the root directory: the coordinator persists under
	// <Dir>/coord and worker i under <Dir>/w<i>. Required.
	Dir string

	// Workers is the fleet size (default 3); Slots the per-worker
	// concurrency (default 1).
	Workers int
	Slots   int

	// Plan is the seeded chaos schedule; a zero plan injects nothing.
	Plan ChaosPlan

	// TickEvery is the wall-clock length of one chaos tick (default
	// 100ms).
	TickEvery time.Duration

	// Coordinator overrides coordinator options. Zero fields get
	// chaos-appropriate defaults: 500ms leases, 25ms polling, DataDir
	// under Dir.
	Coordinator Options

	// Worker is the per-worker serve.Options template; DataDir is
	// assigned per worker, and zero Workers/quota/segment/checkpoint
	// fields get defaults sized so mid-run kills always have periodic
	// checkpoints to migrate.
	Worker serve.Options

	// Logf, when non-nil, receives chaos events as they happen.
	Logf func(format string, args ...any)
}

// ChaosEvent records one harness action, in tick time.
type ChaosEvent struct {
	Tick   int64  `json:"tick"`
	Worker string `json:"worker"`
	Kind   string `json:"kind"` // "kill", "restart", "partition", "heal"
}

// chaosWorker is one worker process-equivalent: its serve.Server, HTTP
// front door, membership agent, and chaos state. The partitioned flag
// lives outside the restart cycle so a partition can span a restart.
type chaosWorker struct {
	idx  int
	id   string
	dir  string
	sopt serve.Options

	partitioned atomic.Bool

	mu          sync.Mutex
	srv         *serve.Server
	hsrv        *http.Server
	ln          net.Listener
	agentCancel context.CancelFunc
	agentDone   chan struct{}
	down        bool
	downAt      int64
	kills       int
}

// NewHarness builds and starts the rig: coordinator listening, workers
// up and registered. Call Step or Run to advance chaos, Close to tear
// everything down.
func NewHarness(opt HarnessOptions) (*Harness, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("cluster: harness needs a directory")
	}
	if opt.Workers <= 0 {
		opt.Workers = 3
	}
	if opt.Slots <= 0 {
		opt.Slots = 1
	}
	if opt.TickEvery <= 0 {
		opt.TickEvery = 100 * time.Millisecond
	}
	copt := opt.Coordinator
	if copt.DataDir == "" {
		copt.DataDir = filepath.Join(opt.Dir, "coord")
	}
	if copt.Lease == 0 {
		copt.Lease = 500 * time.Millisecond
	}
	if copt.PollEvery == 0 {
		copt.PollEvery = 25 * time.Millisecond
	}
	if copt.CallTimeout == 0 {
		copt.CallTimeout = time.Second
	}

	ctx, cancel := context.WithCancel(context.Background())
	h := &Harness{opt: opt, plan: opt.Plan, ctx: ctx, cancel: cancel}

	coord, err := New(copt)
	if err != nil {
		cancel()
		return nil, err
	}
	h.Coord = coord
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.Close()
		return nil, fmt.Errorf("cluster: harness: %w", err)
	}
	h.coordLn = ln
	h.coordSrv = &http.Server{Handler: coord.Handler()}
	go h.coordSrv.Serve(ln)
	h.URL = "http://" + ln.Addr().String()

	for i := 0; i < opt.Workers; i++ {
		sopt := opt.Worker
		sopt.DataDir = filepath.Join(opt.Dir, fmt.Sprintf("w%d", i))
		if sopt.Workers <= 0 {
			sopt.Workers = opt.Slots
		}
		if sopt.DefaultQuota.MaxRunning <= 0 {
			sopt.DefaultQuota.MaxRunning = opt.Slots
		}
		if sopt.SegmentCycles == 0 {
			sopt.SegmentCycles = 256
		}
		if sopt.CheckpointEvery == 0 {
			sopt.CheckpointEvery = 1024
		}
		w := &chaosWorker{idx: i, id: fmt.Sprintf("w%d", i), dir: sopt.DataDir, sopt: sopt}
		if err := h.startWorker(w); err != nil {
			h.Close()
			return nil, err
		}
		h.workers = append(h.workers, w)
	}
	return h, nil
}

// startWorker boots (or reboots) one worker: server over its data
// directory, partition-gated listener, fresh membership agent.
func (h *Harness) startWorker(w *chaosWorker) error {
	srv, err := serve.New(w.sopt)
	if err != nil {
		return fmt.Errorf("cluster: harness: worker %s: %w", w.id, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Drain()
		return fmt.Errorf("cluster: harness: worker %s: %w", w.id, err)
	}
	hsrv := &http.Server{Handler: &partitionGate{flag: &w.partitioned, next: srv.Handler()}}
	go hsrv.Serve(ln)

	agentCtx, agentCancel := context.WithCancel(h.ctx)
	agent := &Agent{
		Coordinator: h.URL,
		ID:          w.id,
		Advertise:   "http://" + ln.Addr().String(),
		Slots:       h.opt.Slots,
		HTTP: &http.Client{
			Transport: &partitionTransport{flag: &w.partitioned},
			Timeout:   2 * time.Second,
		},
		Logf: h.opt.Logf,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		agent.Run(agentCtx)
	}()

	w.mu.Lock()
	w.srv = srv
	w.hsrv = hsrv
	w.ln = ln
	w.agentCancel = agentCancel
	w.agentDone = done
	w.down = false
	w.mu.Unlock()
	return nil
}

// killWorker hard-stops one worker: front door torn down mid-connection,
// server killed without any final persistence, agent silenced.
func (h *Harness) killWorker(w *chaosWorker, tick int64) {
	w.mu.Lock()
	srv, hsrv, cancel, done := w.srv, w.hsrv, w.agentCancel, w.agentDone
	w.down = true
	w.downAt = tick
	w.kills++
	w.mu.Unlock()

	cancel()
	hsrv.Close() // severs the listener and every active connection
	srv.Kill()   // kill -9 semantics: no final checkpoint, records stay "running"
	<-done
	w.partitioned.Store(false)
}

// Step advances chaos by one tick, applying the plan's kills, restarts
// and partitions. It is safe to call while jobs are in flight — that is
// the point.
func (h *Harness) Step() {
	h.mu.Lock()
	tick := h.tick
	h.tick++
	h.mu.Unlock()

	for _, w := range h.workers {
		w.mu.Lock()
		down, downAt := w.down, w.downAt
		w.mu.Unlock()
		if down {
			if tick-downAt >= h.plan.Spec.RestartTicks {
				if err := h.startWorker(w); err == nil {
					h.event(tick, w.id, "restart")
				}
			}
			continue
		}
		if h.plan.KillAt(tick, w.idx) {
			h.killWorker(w, tick)
			h.event(tick, w.id, "kill")
			continue
		}
		want := h.plan.PartitionedAt(tick, w.idx)
		if want != w.partitioned.Load() {
			w.partitioned.Store(want)
			if want {
				h.event(tick, w.id, "partition")
			} else {
				h.event(tick, w.id, "heal")
			}
		}
	}
}

// Run advances up to ticks chaos ticks at the configured cadence,
// stopping early when ctx ends. It returns the number of ticks stepped.
func (h *Harness) Run(ctx context.Context, ticks int64) int64 {
	for i := int64(0); i < ticks; i++ {
		select {
		case <-ctx.Done():
			return i
		case <-time.After(h.opt.TickEvery):
		}
		h.Step()
	}
	return ticks
}

func (h *Harness) event(tick int64, worker, kind string) {
	if h.opt.Logf != nil {
		h.opt.Logf("chaos tick %d: %s %s", tick, kind, worker)
	}
	h.mu.Lock()
	h.events = append(h.events, ChaosEvent{Tick: tick, Worker: worker, Kind: kind})
	h.mu.Unlock()
}

// Events returns a copy of everything the harness has done so far.
func (h *Harness) Events() []ChaosEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ChaosEvent, len(h.events))
	copy(out, h.events)
	return out
}

// KillCounts reports how many times each worker was killed.
func (h *Harness) KillCounts() map[string]int {
	out := make(map[string]int, len(h.workers))
	for _, w := range h.workers {
		w.mu.Lock()
		out[w.id] = w.kills
		w.mu.Unlock()
	}
	return out
}

// Tick returns the current chaos tick.
func (h *Harness) Tick() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tick
}

// Close tears the rig down: agents stopped, live workers drained
// gracefully, coordinator drained, listeners closed.
func (h *Harness) Close() {
	h.cancel()
	for _, w := range h.workers {
		w.mu.Lock()
		srv, hsrv, done, down := w.srv, w.hsrv, w.agentDone, w.down
		w.mu.Unlock()
		if down {
			continue
		}
		if done != nil {
			<-done
		}
		if hsrv != nil {
			hsrv.Close()
		}
		if srv != nil {
			srv.Drain()
		}
	}
	if h.Coord != nil {
		h.Coord.Drain()
	}
	if h.coordSrv != nil {
		h.coordSrv.Close()
	}
}

// partitionGate fronts a worker's HTTP API: while the flag is up every
// request aborts its connection without a response — the coordinator
// sees a transport failure, indistinguishable from a network split.
type partitionGate struct {
	flag *atomic.Bool
	next http.Handler
}

func (g *partitionGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.flag.Load() {
		panic(http.ErrAbortHandler)
	}
	g.next.ServeHTTP(w, r)
}

// partitionTransport is the agent-side half of a partition: heartbeats
// and registrations fail at the transport while the flag is up, so the
// worker's lease expires exactly as in a real split.
type partitionTransport struct {
	flag *atomic.Bool
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.flag.Load() {
		return nil, fmt.Errorf("cluster harness: partitioned")
	}
	return http.DefaultTransport.RoundTrip(req)
}
