package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"innetcc/internal/exec"
	"innetcc/internal/serve"
)

func testCtx(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), scaledDur(120*time.Second, 420*time.Second))
	t.Cleanup(cancel)
	return ctx
}

// scaled and scaledDur pick the race-build value when the race detector
// is on: instrumented simulation is ~10x slower, so the e2e tests shrink
// their workloads and widen their leases to keep asserting the same
// fault-tolerance properties in similar wall time.
func scaled(plain, race int) int {
	if raceEnabled {
		return race
	}
	return plain
}

func scaledDur(plain, race time.Duration) time.Duration {
	if raceEnabled {
		return race
	}
	return plain
}

func directResult(t *testing.T, req serve.SubmitRequest) exec.Result {
	t.Helper()
	job, err := req.BuildJob()
	if err != nil {
		t.Fatalf("build job: %v", err)
	}
	return exec.RunJob(job, exec.RunOptions{})
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// counters reads the coordinator's fault-tolerance counters.
func counters(c *Coordinator) (reassigns, resumes, local int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nReassigns, c.nResumes, c.nLocal
}

// snapshotRunningOn reports whether some job is currently dispatched to
// the worker with a migration snapshot already pulled.
func snapshotRunningOn(c *Coordinator, workerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.jobs {
		if j.workerID == workerID && j.rec.State == serve.StateRunning && len(j.snapshot) > 0 {
			return true
		}
	}
	return false
}

// findChaosSeed scans seeds (pure hash arithmetic, no harness) for one
// whose plan kills every one of n workers at least once inside
// [spec.Start, maxTick). Because the schedule is a pure function of the
// seed, the returned seed makes the chaos e2e test deterministic: the
// same kills happen in tick time on every run.
func findChaosSeed(t *testing.T, spec ChaosSpec, n int, maxTick int64) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		p := spec.Plan(seed)
		ok := true
		for w := 0; w < n && ok; w++ {
			hit := false
			for tick := spec.Start; tick < maxTick; tick++ {
				if p.KillAt(tick, w) {
					hit = true
					break
				}
			}
			ok = hit
		}
		if ok {
			return seed
		}
	}
	t.Fatalf("no seed under 10000 kills all %d workers before tick %d", n, maxTick)
	return 0
}

// TestChaosBatchCompletes is the cluster acceptance test: a batch of
// distinct jobs is submitted over HTTP to a 3-worker cluster while a
// seeded chaos schedule repeatedly hard-kills workers (restarting them
// over their own data directories after a downtime longer than the
// lease, so work migrates) and partitions them. Every worker dies at
// least once, yet every job completes with a result byte-identical to a
// direct single-process run of the same spec.
func TestChaosBatchCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is several seconds long")
	}
	ctx := testCtx(t)
	spec, err := ParseChaosSpec(fmt.Sprintf("kill=%d,part=60000,restart=12,plen=2,window=2:0",
		scaled(100_000, 50_000)))
	if err != nil {
		t.Fatalf("chaos spec: %v", err)
	}
	const nWorkers = 3
	maxKillTick := int64(scaled(40, 80))
	seed := findChaosSeed(t, spec, nWorkers, maxKillTick)
	t.Logf("chaos seed %d (every worker killed before tick %d)", seed, maxKillTick)

	h, err := NewHarness(HarnessOptions{
		Dir:       t.TempDir(),
		Workers:   nWorkers,
		Slots:     1,
		Plan:      spec.Plan(seed),
		TickEvery: scaledDur(40*time.Millisecond, 80*time.Millisecond),
		Coordinator: Options{
			Lease:         scaledDur(400*time.Millisecond, 1000*time.Millisecond),
			PollEvery:     20 * time.Millisecond,
			MaxRedispatch: 200,
		},
		Worker: serve.Options{SegmentCycles: 256, CheckpointEvery: 2048},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	defer h.Close()

	cl := &Client{serve.Client{Base: h.URL, Timeout: 2 * time.Second, Retries: 5, RetryBase: 20 * time.Millisecond}}
	profiles := []string{"bar", "fft", "lu", "ocn", "rad", "ray", "wns", "wsp", "lu"}
	var reqs []serve.SubmitRequest
	var ids []string
	for i, p := range profiles {
		engine := "dir"
		if i%2 == 1 {
			engine = "tree"
		}
		req := serve.SubmitRequest{
			Tenant:   "chaos",
			Profile:  p,
			Engine:   engine,
			Accesses: scaled(2200, 700) + 25*i, // distinct specs: no cross-job cache shortcuts
		}
		rec, err := cl.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %s/%s: %v", p, engine, err)
		}
		reqs = append(reqs, req)
		ids = append(ids, rec.ID)
	}

	allDone := func() bool {
		for _, id := range ids {
			rec, err := h.Coord.Job(id)
			if err != nil || !rec.Terminal() {
				return false
			}
		}
		return true
	}
	// Drive chaos until the batch completes AND the deterministic kill
	// window has fully played out, within a generous tick budget.
	for tick := int64(0); tick < 1500 && !(allDone() && h.Tick() > maxKillTick); tick++ {
		time.Sleep(h.opt.TickEvery)
		h.Step()
	}
	waitFor(t, "all chaos jobs terminal", allDone)

	for id, n := range h.KillCounts() {
		if n < 1 {
			t.Errorf("worker %s was never killed (kills: %v)", id, h.KillCounts())
		}
	}
	for i, id := range ids {
		rec, err := h.Coord.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if rec.State != serve.StateDone {
			t.Fatalf("job %s (%s/%s) finished %s: %s", id, reqs[i].Profile, reqs[i].Engine, rec.State, rec.Error)
		}
		got, err := cl.Result(ctx, id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		want := directResult(t, reqs[i])
		if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
			t.Errorf("job %s (%s/%s): chaos result differs from direct run\n chaos:  %s\n direct: %s",
				id, reqs[i].Profile, reqs[i].Engine, g, w)
		}
	}
	re, rs, _ := counters(h.Coord)
	t.Logf("chaos stats: ticks=%d kills=%v reassigns=%d resumes=%d events=%d",
		h.Tick(), h.KillCounts(), re, rs, len(h.Events()))
}

// TestMigrationByteIdentity pins checkpoint migration end to end: a
// 16-job suite (8 profiles x both engines, one job with an active fault
// plan) runs on a 2-worker cluster; worker w0 is hard-killed while jobs
// with pulled checkpoints run on it, so its work is reassigned to w1 and
// resumed from the migrated snapshots. Every result must be
// byte-identical to a direct run, and at least one dispatch must have
// actually resumed from a snapshot.
func TestMigrationByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("migration suite is several seconds long")
	}
	ctx := testCtx(t)
	h, err := NewHarness(HarnessOptions{
		Dir:     t.TempDir(),
		Workers: 2,
		Slots:   4,
		Coordinator: Options{
			// Wide enough that a loaded worker's heartbeats never miss it:
			// the only lease expiry in this test should be the real kill.
			Lease:         scaledDur(1500*time.Millisecond, 4*time.Second),
			PollEvery:     15 * time.Millisecond,
			MaxRedispatch: 50,
		},
		// ~2600-access jobs run ~100k+ cycles: checkpointing every 2048
		// still leaves dozens of migration points per job without the
		// write cost dominating the runtime.
		Worker: serve.Options{SegmentCycles: 256, CheckpointEvery: 2048},
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	defer h.Close()

	profiles := []string{"bar", "fft", "lu", "ocn", "rad", "ray", "wns", "wsp"}
	var reqs []serve.SubmitRequest
	var ids []string
	for _, p := range profiles {
		for _, engine := range []string{"dir", "tree"} {
			req := serve.SubmitRequest{
				Tenant:   "mig",
				Profile:  p,
				Engine:   engine,
				Accesses: scaled(2600, 900),
			}
			if p == "lu" && engine == "tree" {
				// One job under an active fault plan: snapshots carry the
				// attempt epoch, so migration must survive fault recovery too.
				req.Faults = "drop=300,retries=5"
			}
			rec, err := h.Coord.Submit(req)
			if err != nil {
				t.Fatalf("submit %s/%s: %v", p, engine, err)
			}
			reqs = append(reqs, req)
			ids = append(ids, rec.ID)
		}
	}

	// Kill w0 the moment a job is demonstrably mid-run on it with a
	// migration snapshot already pulled.
	waitFor(t, "a snapshot pulled from w0", func() bool {
		return snapshotRunningOn(h.Coord, "w0")
	})
	h.killWorker(h.workers[0], 0)
	t.Log("killed w0 mid-batch")

	for i, id := range ids {
		rec, err := h.Coord.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if rec.State != serve.StateDone {
			t.Fatalf("job %s (%s/%s) finished %s: %s", id, reqs[i].Profile, reqs[i].Engine, rec.State, rec.Error)
		}
		got, err := h.Coord.Result(id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		want := directResult(t, reqs[i])
		if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
			t.Errorf("job %s (%s/%s): migrated result differs from direct run",
				id, reqs[i].Profile, reqs[i].Engine)
		}
	}
	re, rs, _ := counters(h.Coord)
	if re < 1 {
		t.Errorf("killing w0 mid-batch caused no reassignments")
	}
	if rs < 1 {
		t.Errorf("no dispatch resumed from a migrated snapshot (reassigns=%d)", re)
	}
	t.Logf("migration stats: reassigns=%d resumes=%d", re, rs)
}

// TestBackpressure pins graceful degradation with zero workers: the
// queue bound rejects further submissions with ErrBacklogFull, and the
// HTTP surface turns that into 429 with a Retry-After header.
func TestBackpressure(t *testing.T) {
	c, err := New(Options{MaxQueued: 2})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Drain()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	ctx := testCtx(t)

	cl := &Client{serve.Client{Base: ts.URL}}
	req := serve.SubmitRequest{Tenant: "t", Profile: "lu", Engine: "dir", Accesses: 100}
	for i := 0; i < 2; i++ {
		req.SuiteSeed = uint64(i + 1)
		if _, err := cl.Submit(ctx, req); err != nil {
			t.Fatalf("submit %d within bound: %v", i, err)
		}
	}
	req.SuiteSeed = 3
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submission got HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without a Retry-After header")
	}
	if _, err := cl.Submit(ctx, req); serve.StatusOf(err) != http.StatusTooManyRequests {
		t.Errorf("client error = %v, want status 429", err)
	}
}

// TestLocalFallback: a worker registers healthy and then dies silently;
// the breaker stops the hammering, the lease declares it dead, and local
// fallback completes the queue with correct results. Also pins the
// register-time health probe: a worker advertising an address nobody
// answers at is rejected outright.
func TestLocalFallback(t *testing.T) {
	ctx := testCtx(t)
	// A health-only stub: alive for registration, gone immediately after.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	stubURL := stub.URL

	c, err := New(Options{
		Lease:         250 * time.Millisecond,
		PollEvery:     15 * time.Millisecond,
		MaxRedispatch: 100,
		LocalFallback: true,
		LocalSlots:    2,
		SegmentCycles: 128,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Drain()
	if _, err := c.Register(RegisterRequest{ID: "dead", URL: stubURL, Slots: 2}); err != nil {
		t.Fatalf("register: %v", err)
	}
	stub.Close() // the worker is now unreachable, but its lease is fresh
	if _, err := c.Register(RegisterRequest{ID: "bogus", URL: stubURL, Slots: 1}); err == nil {
		t.Fatalf("registering an unreachable advertised URL was accepted")
	}

	reqs := []serve.SubmitRequest{
		{Tenant: "t", Profile: "fft", Engine: "dir", Accesses: 600},
		{Tenant: "t", Profile: "ocn", Engine: "tree", Accesses: 600},
	}
	var ids []string
	for _, req := range reqs {
		rec, err := c.Submit(req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, rec.ID)
	}

	for i, id := range ids {
		rec, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if rec.State != serve.StateDone {
			t.Fatalf("job %s finished %s: %s", id, rec.State, rec.Error)
		}
		got, err := c.Result(id)
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		if g, w := mustJSON(t, got), mustJSON(t, directResult(t, reqs[i])); g != w {
			t.Errorf("fallback result %d differs from direct run", i)
		}
	}
	st := c.Stats()
	if st.LiveWorkers != 0 {
		t.Errorf("dead worker still counted live: %+v", st.Workers)
	}
	if st.LocalRuns < 1 {
		t.Errorf("no local fallback runs recorded: %+v", st)
	}
	if st.DispatchFails < 1 {
		t.Errorf("dispatches to the dead worker left no dispatchFails trace: %+v", st)
	}
}

// TestCoordinatorWatch pins the coordinator's SSE surface: a stock
// serve.Client watches a cluster job (here completed by local fallback)
// through the coordinator exactly as it would a single server, seeing
// progress ticks and the terminal state.
func TestCoordinatorWatch(t *testing.T) {
	ctx := testCtx(t)
	c, err := New(Options{LocalFallback: true, SegmentCycles: 64})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Drain()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	cl := &serve.Client{Base: ts.URL}
	req := serve.SubmitRequest{Tenant: "t", Profile: "bar", Engine: "dir", Accesses: 1200}
	rec, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var progress, states int
	final, err := cl.Watch(ctx, rec.ID, func(ev serve.Event) {
		switch ev.Type {
		case "progress":
			progress++
		case "state":
			states++
		}
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("watched job finished %s: %s", final.State, final.Error)
	}
	if progress < 1 {
		t.Errorf("stream delivered no progress events (states: %d)", states)
	}
	got, err := cl.Result(ctx, rec.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, directResult(t, req)); g != w {
		t.Errorf("watched result differs from direct run")
	}
}

// TestCoordinatorDrainResume: a durable coordinator drains mid-run with
// a checkpoint in hand; a new coordinator over the same directory
// resumes the job from that snapshot and produces the byte-identical
// result.
func TestCoordinatorDrainResume(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	req := serve.SubmitRequest{Tenant: "t", Profile: "rad", Engine: "tree", Accesses: 4000}

	c1, err := New(Options{
		DataDir:         dir,
		LocalFallback:   true,
		SegmentCycles:   128,
		CheckpointEvery: 512,
	})
	if err != nil {
		t.Fatalf("new coordinator 1: %v", err)
	}
	rec, err := c1.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "a local checkpoint stashed", func() bool {
		c1.mu.Lock()
		defer c1.mu.Unlock()
		j := c1.jobs[rec.ID]
		return j != nil && len(j.snapshot) > 0
	})
	c1.Drain()

	c2, err := New(Options{
		DataDir:       dir,
		LocalFallback: true,
		SegmentCycles: 128,
	})
	if err != nil {
		t.Fatalf("new coordinator 2: %v", err)
	}
	defer c2.Drain()
	final, err := c2.Wait(ctx, rec.ID)
	if err != nil {
		t.Fatalf("wait after restart: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("restarted job finished %s: %s", final.State, final.Error)
	}
	got, err := c2.Result(rec.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, directResult(t, req)); g != w {
		t.Errorf("post-drain result differs from direct run")
	}
	if _, rs, _ := counters(c2); rs < 1 {
		t.Errorf("restart did not resume from the parked snapshot")
	}
}

// TestChaosSpecRoundTrip pins the chaos spec grammar and the plan's
// determinism.
func TestChaosSpecRoundTrip(t *testing.T) {
	s, err := ParseChaosSpec("kill=80000,part=5000,restart=6,plen=3,window=2:50")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	back, err := ParseChaosSpec(s.String())
	if err != nil || back != s {
		t.Fatalf("round trip: %v / %+v != %+v", err, back, s)
	}
	if _, err := ParseChaosSpec("kill=2000000"); err == nil {
		t.Errorf("over-scale rate accepted")
	}
	if _, err := ParseChaosSpec("bogus=1"); err == nil {
		t.Errorf("unknown key accepted")
	}
	if _, err := ParseChaosSpec("restart=0"); err == nil {
		t.Errorf("zero restart accepted")
	}

	p1 := s.Plan(7)
	p2 := s.Plan(7)
	p3 := s.Plan(8)
	same, diff := true, false
	for tick := int64(0); tick < 64; tick++ {
		for w := 0; w < 4; w++ {
			if p1.KillAt(tick, w) != p2.KillAt(tick, w) || p1.PartitionedAt(tick, w) != p2.PartitionedAt(tick, w) {
				same = false
			}
			if p1.KillAt(tick, w) != p3.KillAt(tick, w) {
				diff = true
			}
		}
	}
	if !same {
		t.Errorf("identical plans disagree")
	}
	if !diff {
		t.Errorf("different seeds produced identical kill schedules")
	}
	if p1.KillAt(1, 0) {
		t.Errorf("kill fired before the window opens")
	}
	if p1.KillAt(50, 0) || p1.PartitionedAt(50, 0) {
		t.Errorf("chaos fired after the window closed")
	}
}

// TestAgentReRegisters: an agent whose coordinator restarts (losing the
// registry) recovers its registration off the 404 heartbeat.
func TestAgentReRegisters(t *testing.T) {
	ctx := testCtx(t)
	c1, err := New(Options{Lease: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	var handler atomic.Value
	handler.Store(c1.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()

	// A health-only stub to advertise: registration probes the URL.
	wstub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer wstub.Close()

	agentCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	ag := &Agent{Coordinator: ts.URL, ID: "w0", Advertise: wstub.URL, Slots: 1}
	go func() { defer close(done); ag.Run(agentCtx) }()

	waitFor(t, "agent registered", func() bool { return c1.Stats().LiveWorkers == 1 })

	// "Restart" the coordinator: swap a fresh one behind the same URL.
	c2, err := New(Options{Lease: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("new coordinator 2: %v", err)
	}
	defer c2.Drain()
	handler.Store(c2.Handler())
	c1.Drain()

	waitFor(t, "agent re-registered with the new coordinator", func() bool {
		return c2.Stats().LiveWorkers == 1
	})
	st := c2.Stats()
	if len(st.Workers) != 1 || st.Workers[0].ID != "w0" {
		t.Fatalf("unexpected registry after re-register: %+v", st.Workers)
	}
	cancel()
	<-done
}

// BenchmarkClusterThroughput measures batch jobs/sec through the full
// coordinator + HTTP + worker stack, with 1 and 3 workers. Specs vary
// per iteration so the result cache never shortcuts the measurement.
func BenchmarkClusterThroughput(b *testing.B) {
	for _, workers := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			h, err := NewHarness(HarnessOptions{
				Dir:     b.TempDir(),
				Workers: workers,
				Slots:   1,
				Coordinator: Options{
					Lease:     time.Second,
					PollEvery: 10 * time.Millisecond,
				},
				Worker: serve.Options{SegmentCycles: 512},
			})
			if err != nil {
				b.Fatalf("harness: %v", err)
			}
			defer h.Close()
			ctx := testCtx(b)
			profiles := []string{"bar", "fft", "lu", "ocn", "rad", "ray"}
			b.ResetTimer()
			start := time.Now()
			jobs := 0
			for i := 0; i < b.N; i++ {
				var ids []string
				for k, p := range profiles {
					rec, err := h.Coord.Submit(serve.SubmitRequest{
						Tenant: "bench", Profile: p, Engine: "dir",
						Accesses:  800,
						SuiteSeed: uint64(i*100 + k + 1),
					})
					if err != nil {
						b.Fatalf("submit: %v", err)
					}
					ids = append(ids, rec.ID)
				}
				for _, id := range ids {
					if rec, err := h.Coord.Wait(ctx, id); err != nil || rec.State != serve.StateDone {
						b.Fatalf("job %s: %v %s", id, err, rec.Error)
					}
				}
				jobs += len(profiles)
			}
			b.ReportMetric(float64(jobs)/time.Since(start).Seconds(), "jobs/sec")
		})
	}
}
