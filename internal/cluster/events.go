package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"innetcc/internal/serve"
)

// The coordinator exposes the same per-job event stream a single
// serve.Server does (GET /v1/jobs/{id}/events, server-sent events with
// Last-Event-ID resume), so serve.Client.Watch works against a cluster
// unmodified. Events are synthesized coordinator-side: state transitions
// as jobs are claimed, reassigned and finished, and progress ticks
// mirrored from worker polls (or the local runner). A watcher therefore
// sees the job's whole cluster life — including a mid-run migration as
// running -> queued -> running — through one stream.

// maxEventHistory bounds the per-job retained ring Last-Event-ID
// reconnects replay from; older cursors resync via a synthetic state
// event (same semantics as the serve layer).
const maxEventHistory = 256

// publishLocked assigns the event its job-local sequence ID, retains it
// for replay and fans it out without blocking (a stalled subscriber
// loses telemetry, never stalls a dispatch loop; terminal events evict
// one queued entry so they always land). Callers hold c.mu.
func (c *Coordinator) publishLocked(j *cjob, ev serve.Event) {
	j.lastEv++
	ev.ID = j.lastEv
	j.hist = append(j.hist, ev)
	if len(j.hist) > maxEventHistory {
		j.hist = j.hist[len(j.hist)-maxEventHistory:]
	}
	terminal := ev.Type == "state" && ev.Record != nil && ev.Record.Terminal()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			if terminal {
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- ev:
				default:
				}
			}
		}
	}
}

// publishStateLocked emits a state event carrying the current record.
// Callers hold c.mu.
func (c *Coordinator) publishStateLocked(j *cjob) {
	rec := j.rec
	c.publishLocked(j, serve.Event{Type: "state", Record: &rec})
}

// closeSubsLocked ends every subscriber stream. Callers hold c.mu.
func (c *Coordinator) closeSubsLocked(j *cjob) {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// SubscribeAfter attaches an event listener to a job, replaying retained
// events with IDs greater than after first (after < 0, or a cursor that
// fell off the ring or belongs to another stream, gets one synthetic
// state event with the current record). The channel closes after the
// terminal state event; the returned unsubscribe is idempotent.
func (c *Coordinator) SubscribeAfter(id string, after int64) (<-chan serve.Event, func(), error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return nil, nil, serve.ErrUnknownJob
	}
	replay := j.replayLocked(after)
	ch := make(chan serve.Event, len(replay)+64)
	for _, ev := range replay {
		ch <- ev
	}
	if j.rec.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.subs = append(j.subs, ch)
	unsub := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, s := range j.subs {
			if s == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, unsub, nil
}

// replayLocked computes the catch-up backlog for a subscriber that last
// saw event ID after. Callers hold c.mu.
func (j *cjob) replayLocked(after int64) []serve.Event {
	if after >= j.lastEv {
		if after > j.lastEv {
			after = -1 // cursor from another stream (coordinator restart): resync
		} else {
			return nil
		}
	}
	if after >= 0 && len(j.hist) > 0 && j.hist[0].ID <= after+1 {
		out := make([]serve.Event, 0, len(j.hist))
		for _, ev := range j.hist {
			if ev.ID > after {
				out = append(out, ev)
			}
		}
		return out
	}
	rec := j.rec
	return []serve.Event{{ID: j.lastEv, Type: "state", Record: &rec}}
}

// handleEvents streams a job's events as SSE until it reaches a terminal
// state or the client disconnects, honoring Last-Event-ID on reconnect —
// the same wire contract as the serve layer, so serve.Client.Watch (with
// its reconnect loop) works against a coordinator as-is.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	after := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			after = n
		}
	}
	ch, unsub, err := c.SubscribeAfter(r.PathValue("id"), after)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer unsub()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, b); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
