package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"innetcc/internal/exec"
	"innetcc/internal/serve"
)

// scheduler matches queued jobs to dispatch targets until the
// coordinator drains. One dispatch loop (runOn / runLocal) is spawned
// per claimed job; the scheduler itself never blocks on the network.
func (c *Coordinator) scheduler() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		var j *cjob
		var w *worker
		local := false
		for !c.closed {
			j, w, local = c.pickLocked()
			if j != nil {
				break
			}
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		j.rec.State = serve.StateRunning
		j.rec.StartedAt = time.Now().UnixMilli()
		j.rec.StartSeq = c.seq
		c.seq++
		var runCtx context.Context
		if local {
			j.workerID = localWorker
			c.localActive++
			runCtx, j.cancelLocal = context.WithCancel(c.baseCtx)
		} else {
			j.workerID = w.id
			w.inflight++
			w.dispatched++
		}
		c.persistLocked(j)
		c.publishStateLocked(j)
		c.wg.Add(1)
		c.mu.Unlock()
		if local {
			go c.runLocal(j, runCtx)
		} else {
			go c.runOn(j, w)
		}
	}
}

// pickLocked selects the best queued job and a target for it: the
// least-loaded live worker with a free slot and a closed breaker, or
// local execution when no live worker exists at all and fallback is on.
// Callers hold c.mu.
func (c *Coordinator) pickLocked() (*cjob, *worker, bool) {
	var best *cjob
	for _, j := range c.jobs {
		if j.rec.State != serve.StateQueued || j.userCanceled {
			continue
		}
		if best == nil || betterPick(j, best) {
			best = j
		}
	}
	if best == nil {
		return nil, nil, false
	}
	now := time.Now()
	anyAlive := false
	var pick *worker
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		anyAlive = true
		if w.inflight >= w.slots || w.breakerOpenLocked(c.opt.breakerThreshold(), now) {
			continue
		}
		if pick == nil || w.inflight < pick.inflight ||
			(w.inflight == pick.inflight && w.id < pick.id) {
			pick = w
		}
	}
	if pick != nil {
		return best, pick, false
	}
	if !anyAlive && c.opt.LocalFallback && c.localActive < c.opt.localSlots() {
		return best, nil, true
	}
	return nil, nil, false
}

func betterPick(a, b *cjob) bool {
	if a.rec.Priority != b.rec.Priority {
		return a.rec.Priority > b.rec.Priority
	}
	return a.rec.Seq < b.rec.Seq
}

// runOn drives one job on one worker: submit (with the latest snapshot
// riding along), then poll status, forward cancellation, pull fresh
// checkpoints, and converge on a terminal result — or requeue the job
// the moment the worker's lease expires or it demonstrably lost the
// work.
func (c *Coordinator) runOn(j *cjob, w *worker) {
	defer c.wg.Done()
	ctx := c.baseCtx

	c.mu.Lock()
	req := j.req
	req.Snapshot = j.snapshot
	resumed := len(req.Snapshot) > 0
	cl := w.client
	c.mu.Unlock()

	rec, err := cl.Submit(ctx, req)
	c.callResult(w, err)
	if err != nil {
		if ctx.Err() != nil {
			c.parkForShutdown(j, w)
			return
		}
		if st := serve.StatusOf(err); st >= 400 && st < 500 && st != http.StatusTooManyRequests {
			// The worker understood the submission and rejected it: the
			// job spec itself is bad, and no other worker will disagree.
			c.mu.Lock()
			c.releaseLocked(j, w)
			c.finishLocked(j, serve.StateFailed, "worker rejected job: "+err.Error(), nil)
			c.mu.Unlock()
			return
		}
		if serve.Unreachable(err) {
			// The submission never reached the worker: nothing ran, nothing
			// was lost, so the redispatch budget — a guard against jobs that
			// repeatedly take workers down — is not charged. A worker that
			// heartbeats but cannot be dispatched to (bad advertised URL,
			// asymmetric partition) leaves the job queued behind its breaker
			// instead of failing it, visible as a climbing dispatchFails.
			c.requeueUncharged(j, w)
			return
		}
		c.requeue(j, w, "dispatch failed: "+err.Error())
		return
	}
	c.mu.Lock()
	j.remoteID = rec.ID
	if resumed {
		j.resumes++
		c.nResumes++
	}
	c.mu.Unlock()

	tick := time.NewTicker(c.opt.pollEvery())
	defer tick.Stop()
	cancelSent := false
	resultFailures := 0
	for {
		select {
		case <-ctx.Done():
			c.parkForShutdown(j, w)
			return
		case <-tick.C:
		}
		c.mu.Lock()
		alive := w.alive
		cl = w.client
		wantCancel := j.userCanceled
		remoteID := j.remoteID
		c.mu.Unlock()
		if !alive {
			c.requeue(j, w, "worker lease expired")
			return
		}
		if wantCancel && !cancelSent {
			if err := cl.Cancel(ctx, remoteID); err == nil {
				cancelSent = true
			}
		}

		r, err := cl.Job(ctx, remoteID)
		c.callResult(w, err)
		if err != nil {
			if ctx.Err() != nil {
				c.parkForShutdown(j, w)
				return
			}
			if serve.StatusOf(err) == http.StatusNotFound {
				// The worker is reachable but has no record of the job: it
				// restarted with amnesia (lost its data directory). Move on.
				c.requeue(j, w, "worker lost the job")
				return
			}
			// Transport failure or transient server error: the lease, not
			// this call, decides whether the worker is dead. Keep polling.
			continue
		}

		c.mu.Lock()
		if r.Cycle != j.rec.Cycle || r.Attempt != j.rec.Attempt {
			j.rec.Cycle = r.Cycle
			j.rec.Attempt = r.Attempt
			c.publishLocked(j, serve.Event{Type: "progress",
				Progress: &exec.Progress{Cycle: r.Cycle, Attempt: r.Attempt}})
		}
		c.mu.Unlock()

		if r.Terminal() {
			if r.State == serve.StateCanceled {
				if wantCancel {
					c.mu.Lock()
					c.releaseLocked(j, w)
					c.finishLocked(j, serve.StateCanceled, r.Error, nil)
					c.mu.Unlock()
					return
				}
				// Canceled on the worker without us asking (operator action
				// on the worker directly): the job is still owed a result.
				c.requeue(j, w, "job canceled on worker")
				return
			}
			res, err := cl.Result(ctx, remoteID)
			c.callResult(w, err)
			if err != nil {
				if resultFailures++; resultFailures <= 5 {
					continue // transient: retry on the next tick
				}
				c.requeue(j, w, "result fetch failed: "+err.Error())
				return
			}
			c.finishRun(j, w, res)
			return
		}
		if r.State == serve.StateRunning {
			// Pull the latest checkpoint so a reassignment after worker
			// death resumes instead of restarting. Errors are fine: no
			// checkpoint yet, or a blip the lease machinery owns.
			if b, err := cl.SnapshotBytes(ctx, remoteID); err == nil {
				c.stashSnapshot(j, b)
			}
		}
	}
}

// runLocal executes one job in-process (local fallback, with checkpoint
// resume when a migrated snapshot exists).
func (c *Coordinator) runLocal(j *cjob, runCtx context.Context) {
	defer c.wg.Done()
	c.mu.Lock()
	job := j.rec.Job
	hash := j.rec.Hash
	var resume *exec.Snapshot
	if len(j.snapshot) > 0 {
		if snap, err := exec.HandoffSnapshot(j.snapshot, job); err == nil {
			resume = snap
		}
	}
	c.mu.Unlock()

	if c.cache != nil {
		if r, ok := c.cache.Get(hash); ok {
			r.Key = job.Key
			r.Cached = true
			c.mu.Lock()
			c.nLocal++
			c.mu.Unlock()
			c.finishRun(j, nil, r)
			return
		}
	}
	if resume != nil {
		c.mu.Lock()
		j.resumes++
		c.nResumes++
		c.mu.Unlock()
	}
	res := exec.RunJob(job, exec.RunOptions{
		Ctx:           runCtx,
		SegmentCycles: c.opt.SegmentCycles,
		Progress: func(p exec.Progress) {
			c.mu.Lock()
			j.rec.Cycle = p.Cycle
			j.rec.Attempt = p.Attempt
			c.publishLocked(j, serve.Event{Type: "progress", Progress: &p})
			c.mu.Unlock()
		},
		CheckpointEvery: c.opt.CheckpointEvery,
		Checkpoint: func(snap exec.Snapshot) {
			if b, err := snap.Encode(); err == nil {
				c.stashSnapshot(j, b)
			}
		},
		Resume: resume,
	})
	if res.Canceled {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.releaseLocked(j, nil)
		if j.userCanceled {
			c.finishLocked(j, serve.StateCanceled, res.Err, nil)
			return
		}
		// Coordinator drain: the runner just checkpointed (stashed above);
		// park the job queued on disk for the next process.
		j.rec.State = serve.StateQueued
		j.rec.StartedAt = 0
		j.workerID = ""
		c.persistLocked(j)
		c.publishStateLocked(j)
		return
	}
	c.mu.Lock()
	c.nLocal++
	c.mu.Unlock()
	c.finishRun(j, nil, res)
}

// finishRun completes a dispatched job that produced a result, feeding
// the coordinator's own result cache so restarts keep results servable.
func (c *Coordinator) finishRun(j *cjob, w *worker, res exec.Result) {
	if c.cache != nil {
		if _, ok := c.cache.Get(j.rec.Hash); !ok {
			put := res
			put.Cached = false
			c.cache.Put(j.rec.Hash, put)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(j, w)
	state := serve.StateDone
	if res.Failed() {
		state = serve.StateFailed
	}
	c.finishLocked(j, state, res.Err, &res)
}

// releaseLocked returns a dispatched job's slot (worker or local).
// Callers hold c.mu.
func (c *Coordinator) releaseLocked(j *cjob, w *worker) {
	if w != nil {
		w.inflight--
	} else if j.workerID == localWorker {
		c.localActive--
		j.cancelLocal = nil
	}
	c.cond.Broadcast()
}

// requeue returns a job to the queue after a failed dispatch or a dead
// worker, counting the reassignment against the job's redispatch budget
// so a poisoned job cannot ping-pong forever.
func (c *Coordinator) requeue(j *cjob, w *worker, why string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(j, w)
	if j.userCanceled {
		c.finishLocked(j, serve.StateCanceled, "canceled", nil)
		return
	}
	j.redispatches++
	c.nReassigns++
	if j.redispatches > c.opt.maxRedispatch() {
		c.finishLocked(j, serve.StateFailed,
			fmt.Sprintf("gave up after %d dispatch attempts (last: %s)", j.redispatches, why), nil)
		return
	}
	j.rec.State = serve.StateQueued
	j.rec.StartedAt = 0
	j.workerID = ""
	j.remoteID = ""
	c.persistLocked(j)
	c.publishStateLocked(j)
	c.cond.Broadcast()
}

// requeueUncharged returns a job whose dispatch never reached its worker:
// the transport failed before the submission landed, so the job goes back
// to the queue with the failure counted only in the dispatch-failure
// statistic, not against its redispatch budget.
func (c *Coordinator) requeueUncharged(j *cjob, w *worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(j, w)
	c.nDispatchFails++
	if j.userCanceled {
		c.finishLocked(j, serve.StateCanceled, "canceled", nil)
		return
	}
	j.rec.State = serve.StateQueued
	j.rec.StartedAt = 0
	j.workerID = ""
	j.remoteID = ""
	c.persistLocked(j)
	c.publishStateLocked(j)
	c.cond.Broadcast()
}

// parkForShutdown is the drain path for a dispatched job: pull one final
// checkpoint (best effort, on a fresh short-lived context — the base
// context is already canceled) and park the job queued on disk without
// charging its redispatch budget. The remote run is left alone: the
// worker will finish it and cache the result, so a restarted
// coordinator's re-dispatch is a cache hit.
func (c *Coordinator) parkForShutdown(j *cjob, w *worker) {
	c.mu.Lock()
	cl := w.client
	alive := w.alive
	remoteID := j.remoteID
	c.mu.Unlock()
	if alive && remoteID != "" {
		ctx, cancel := context.WithTimeout(context.Background(), c.opt.callTimeout())
		if b, err := cl.SnapshotBytes(ctx, remoteID); err == nil {
			c.stashSnapshot(j, b)
		}
		cancel()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(j, w)
	j.rec.State = serve.StateQueued
	j.rec.StartedAt = 0
	j.workerID = ""
	j.remoteID = ""
	c.persistLocked(j)
	c.publishStateLocked(j)
}

// stashSnapshot verifies and retains checkpoint bytes as the job's
// latest migration point, persisting them when the coordinator is
// durable.
func (c *Coordinator) stashSnapshot(j *cjob, b []byte) {
	c.mu.Lock()
	job := j.rec.Job
	c.mu.Unlock()
	if _, err := exec.HandoffSnapshot(b, job); err != nil {
		return
	}
	c.mu.Lock()
	j.snapshot = b
	c.mu.Unlock()
	if c.store != nil {
		c.store.putSnap(j.rec.ID, b)
	}
}
