package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"innetcc/internal/serve"
)

// persistedJob is the durable form of one coordinator job: the
// client-visible record, the original submission (needed to re-dispatch
// after a restart), and the redispatch count so the give-up bound
// survives restarts too.
type persistedJob struct {
	Rec          serve.JobRecord     `json:"rec"`
	Req          serve.SubmitRequest `json:"req"`
	Redispatches int                 `json:"redispatches,omitempty"`
}

// cstore persists coordinator state under the data directory:
//
//	<dir>/jobs/<id>.json   one persistedJob per job, written atomically
//	<dir>/snap/<id>.snap   latest migrated checkpoint of a dispatched job
//	<dir>/cache/           the exec result cache (opened by the coordinator)
type cstore struct {
	dir string
}

func openCStore(dir string) (*cstore, error) {
	for _, sub := range []string{"jobs", "snap", "cache"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cluster: store: %w", err)
		}
	}
	return &cstore{dir: dir}, nil
}

func (s *cstore) cacheDir() string { return filepath.Join(s.dir, "cache") }

func (s *cstore) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

func (s *cstore) snapPath(id string) string {
	return filepath.Join(s.dir, "snap", id+".snap")
}

// putJob writes the job atomically (temp file + rename): a crash leaves
// the previous version, never a torn one.
func (s *cstore) putJob(pj *persistedJob) error {
	b, err := json.Marshal(pj)
	if err != nil {
		return fmt.Errorf("cluster: store: %w", err)
	}
	return atomicWrite(s.jobPath(pj.Rec.ID), b)
}

// loadJobs reads every decodable persisted job; torn or damaged files
// are skipped, not fatal.
func (s *cstore) loadJobs() ([]*persistedJob, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("cluster: store: %w", err)
	}
	var out []*persistedJob
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, "jobs", e.Name()))
		if err != nil {
			continue
		}
		var pj persistedJob
		if json.Unmarshal(b, &pj) != nil || pj.Rec.ID == "" {
			continue
		}
		out = append(out, &pj)
	}
	return out, nil
}

func (s *cstore) putSnap(id string, b []byte) error {
	return atomicWrite(s.snapPath(id), b)
}

func (s *cstore) snapBytes(id string) ([]byte, error) {
	return os.ReadFile(s.snapPath(id))
}

func (s *cstore) dropSnap(id string) { os.Remove(s.snapPath(id)) }

func atomicWrite(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: store: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cluster: store: write failed")
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cluster: store: %w", err)
	}
	return nil
}
