//go:build race

package cluster

// raceEnabled flags race-detector builds so the heavyweight e2e tests can
// scale their workloads down: instrumented simulation is roughly an order
// of magnitude slower, and the tests assert fault-tolerance properties,
// not throughput.
const raceEnabled = true
