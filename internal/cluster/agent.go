package cluster

import (
	"context"
	"net/http"
	"time"

	"innetcc/internal/serve"
)

// Agent is the worker-side membership loop: it registers the worker with
// the coordinator, heartbeats at the interval the coordinator dictates,
// and re-registers whenever the coordinator loses the registration (a
// coordinator restart answers heartbeats with 404). The agent carries no
// job logic — work arrives through the worker's own serve API — so its
// only responsibility is keeping the lease fresh and the advertised URL
// current.
type Agent struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID is the stable worker identity; a restarted worker re-registers
	// under the same ID (possibly with a new Advertise URL) and inherits
	// its place in the registry.
	ID string
	// Advertise is the worker's own serve API base URL.
	Advertise string
	// Slots is the worker's concurrent-job capacity (<= 0 means 1).
	Slots int
	// HTTP overrides the transport (the chaos harness injects a
	// partitionable one). Nil uses http.DefaultClient.
	HTTP *http.Client
	// Logf, when non-nil, receives membership transitions.
	Logf func(format string, args ...any)
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// Run drives the membership loop until ctx ends. Registration failures
// retry with backoff; heartbeat transport failures keep trying at the
// heartbeat cadence (the lease expiring server-side is exactly the
// intended outcome of a real partition, and resumed heartbeats revive
// it); a 404 heartbeat falls back to registration.
func (a *Agent) Run(ctx context.Context) error {
	cl := &Client{serve.Client{Base: a.Coordinator, HTTP: a.HTTP, Timeout: 2 * time.Second}}
	regBackoff := 100 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := cl.RegisterWorker(ctx, RegisterRequest{ID: a.ID, URL: a.Advertise, Slots: a.Slots})
		if err != nil {
			a.logf("cluster agent %s: register: %v", a.ID, err)
			select {
			case <-time.After(regBackoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			if regBackoff *= 2; regBackoff > 2*time.Second {
				regBackoff = 2 * time.Second
			}
			continue
		}
		regBackoff = 100 * time.Millisecond
		hb := time.Duration(resp.HeartbeatMillis) * time.Millisecond
		if hb <= 0 {
			hb = time.Second
		}
		a.logf("cluster agent %s: registered at %s (heartbeat %v)", a.ID, a.Advertise, hb)

		t := time.NewTicker(hb)
		for {
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			err := cl.HeartbeatWorker(ctx, a.ID)
			if err == nil {
				continue
			}
			if serve.StatusOf(err) == http.StatusNotFound {
				// The coordinator forgot us (restart): re-register.
				a.logf("cluster agent %s: lease lost, re-registering", a.ID)
				t.Stop()
				break
			}
			// Transport failure: keep heartbeating. If this is a real
			// partition the lease expires server-side; when the partition
			// heals the next heartbeat revives it.
			a.logf("cluster agent %s: heartbeat: %v", a.ID, err)
		}
	}
}
