// Package cluster is the fault-tolerant multi-host fan-out layer: a
// coordinator that dispatches simulation jobs to a fleet of serve.Server
// workers over the existing HTTP/JSON API and keeps every accepted job
// moving to a correct terminal result while workers crash, restart and
// partition underneath it.
//
// The design leans entirely on the repository's determinism guarantees.
// A simulation result is a pure function of its job spec, so the
// coordinator never needs distributed consensus about partial state: any
// worker (or the coordinator itself, in local-fallback mode) can run or
// re-run a job and arrive at the byte-identical result, and the
// content-hash result cache makes duplicated work cheap. Fault tolerance
// therefore reduces to three mechanisms:
//
//   - Leases. Workers register and heartbeat; a worker whose lease
//     expires is presumed dead and its in-flight jobs are requeued. The
//     lease — not any individual failed call — is the authoritative
//     death signal, so a slow or momentarily partitioned worker is given
//     its full lease to recover before work is moved.
//
//   - Checkpoint migration. While a job runs remotely the coordinator
//     periodically pulls its latest checkpoint (an exec.Snapshot: spec,
//     replay-target cycle, state digest — host-independent by
//     construction). When the job is reassigned, the snapshot rides
//     along in the new submission and the receiving worker resumes by
//     digest-verified replay instead of starting over.
//
//   - Spurious-reassignment safety. A lease can expire for a worker
//     that is merely slow; the old worker may finish the job anyway.
//     That is harmless: both executions compute the same bytes, and the
//     per-worker result caches absorb the duplicate.
//
// Dispatch calls are wrapped in retry-with-backoff (serve.Client's
// transport retries) plus a per-worker circuit breaker, so a dead host
// is not hammered while its lease runs out. With zero live workers the
// coordinator applies bounded backpressure (429 + Retry-After once the
// queue bound is hit) and, when enabled, falls back to running jobs
// locally so the service degrades to a single-host serve instead of
// stalling.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"innetcc/internal/exec"
	"innetcc/internal/serve"
)

// Options configures a Coordinator. The zero value is usable: memory-only
// (no persistence), defaults tuned for LAN-scale heartbeats.
type Options struct {
	// DataDir, when non-empty, is the persistence root: job records,
	// migrated checkpoints and the result cache live under it, and a
	// drained coordinator resumes its queue on restart. Empty keeps all
	// state in memory.
	DataDir string

	// Lease is how long a worker stays live without a heartbeat
	// (default 3s). Agents are told to heartbeat every Lease/3.
	Lease time.Duration

	// PollEvery is the status/checkpoint polling interval for dispatched
	// jobs (default 100ms).
	PollEvery time.Duration

	// MaxQueued bounds jobs in the queued state; submissions beyond it
	// are rejected with ErrBacklogFull (HTTP 429 + Retry-After). <= 0
	// means 256.
	MaxQueued int

	// MaxRedispatch bounds how many times one job may be reassigned
	// after worker failures before the coordinator gives up and fails it
	// (default 10). Redispatches caused by coordinator drain do not
	// count.
	MaxRedispatch int

	// LocalFallback lets the coordinator run jobs in-process when no
	// live worker exists, so a cluster degrades to a single host instead
	// of stalling. LocalSlots bounds concurrent local runs (default 1).
	LocalFallback bool
	LocalSlots    int

	// SegmentCycles and CheckpointEvery configure local-fallback runs
	// (same meaning as serve.Options).
	SegmentCycles   int64
	CheckpointEvery int64

	// BreakerThreshold consecutive call failures open a worker's circuit
	// breaker for BreakerCooldown; while open the worker receives no new
	// dispatches (defaults 3 and 2s). The breaker half-opens after the
	// cooldown: one dispatch probes the worker and its outcome closes or
	// re-opens the circuit.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// CallTimeout bounds each individual HTTP attempt against a worker
	// (default 2s); CallRetries is the per-call transport retry budget
	// (default 1 — the lease mechanism, not call retries, owns liveness).
	CallTimeout time.Duration
	CallRetries int
}

func (o *Options) lease() time.Duration {
	if o.Lease <= 0 {
		return 3 * time.Second
	}
	return o.Lease
}

func (o *Options) pollEvery() time.Duration {
	if o.PollEvery <= 0 {
		return 100 * time.Millisecond
	}
	return o.PollEvery
}

func (o *Options) maxQueued() int {
	if o.MaxQueued <= 0 {
		return 256
	}
	return o.MaxQueued
}

func (o *Options) maxRedispatch() int {
	if o.MaxRedispatch <= 0 {
		return 10
	}
	return o.MaxRedispatch
}

func (o *Options) localSlots() int {
	if o.LocalSlots <= 0 {
		return 1
	}
	return o.LocalSlots
}

func (o *Options) breakerThreshold() int {
	if o.BreakerThreshold <= 0 {
		return 3
	}
	return o.BreakerThreshold
}

func (o *Options) breakerCooldown() time.Duration {
	if o.BreakerCooldown <= 0 {
		return 2 * time.Second
	}
	return o.BreakerCooldown
}

func (o *Options) callTimeout() time.Duration {
	if o.CallTimeout <= 0 {
		return 2 * time.Second
	}
	return o.CallTimeout
}

func (o *Options) callRetries() int {
	if o.CallRetries < 0 {
		return 0
	}
	if o.CallRetries == 0 {
		return 1
	}
	return o.CallRetries
}

// ErrBacklogFull rejects a submission once the queue bound is reached;
// the HTTP layer maps it to 429 with a Retry-After header.
var ErrBacklogFull = errors.New("cluster: backlog full")

// ErrUnknownWorker is returned for a heartbeat from a worker the
// coordinator has no registration for (it answers HTTP 404, which tells
// the agent to re-register — the coordinator may have restarted).
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// localWorker is the worker-ID jobs carry while running in-process under
// local fallback (or during coordinator drain hand-off).
const localWorker = "(local)"

// cjob is one job's coordinator-side state: the client-visible record,
// the original submission (re-shipped on every dispatch), the latest
// pulled checkpoint, and dispatch bookkeeping.
type cjob struct {
	rec serve.JobRecord
	req serve.SubmitRequest

	// snapshot is the latest checkpoint known for the job — pulled from
	// the running worker, written by a local run, or carried in by the
	// submitter. It rides along on the next dispatch.
	snapshot []byte

	workerID string // current worker ("" while queued, localWorker for in-process)
	remoteID string // job ID on the current worker

	redispatches int // failure-driven reassignments so far
	resumes      int // dispatches that carried a snapshot

	userCanceled bool
	cancelLocal  context.CancelFunc // set while running locally

	// Event stream state (see events.go): job-local event IDs, the
	// retained replay ring, and live subscriber channels.
	lastEv int64
	hist   []serve.Event
	subs   []chan serve.Event

	result *exec.Result
	done   chan struct{}
}

// Coordinator owns the cluster job table, the worker registry with its
// leases and breakers, and the dispatch loops. HTTP handling lives in
// http.go over the same methods the tests call directly.
type Coordinator struct {
	opt   Options
	store *cstore     // nil when memory-only
	cache *exec.Cache // nil when memory-only

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*cjob
	workers map[string]*worker
	seq     int64
	closed  bool

	localActive int

	// Counters for Stats: failure-driven reassignments, dispatches that
	// resumed from a migrated snapshot, local-fallback runs, and
	// submissions that never reached their worker.
	nReassigns     int64
	nResumes       int64
	nLocal         int64
	nDispatchFails int64
}

// New starts a coordinator. With Options.DataDir set, previously
// persisted jobs are reloaded: terminal ones stay queryable, interrupted
// ones are requeued together with their last migrated checkpoint.
func New(opt Options) (*Coordinator, error) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opt:        opt,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*cjob),
		workers:    make(map[string]*worker),
	}
	c.cond = sync.NewCond(&c.mu)

	if opt.DataDir != "" {
		st, err := openCStore(opt.DataDir)
		if err != nil {
			cancel()
			return nil, err
		}
		c.store = st
		cache, err := exec.OpenCache(st.cacheDir())
		if err != nil {
			cancel()
			return nil, err
		}
		c.cache = cache
		pjs, err := st.loadJobs()
		if err != nil {
			cancel()
			return nil, err
		}
		for _, pj := range pjs {
			j := &cjob{
				rec:          pj.Rec,
				req:          pj.Req,
				redispatches: pj.Redispatches,
				done:         make(chan struct{}),
			}
			if j.rec.Terminal() {
				close(j.done)
			} else {
				j.rec.State = serve.StateQueued
				j.rec.StartedAt = 0
				j.workerID = ""
				if b, err := st.snapBytes(j.rec.ID); err == nil {
					if _, err := exec.HandoffSnapshot(b, j.rec.Job); err == nil {
						j.snapshot = b
					}
				}
				c.persistLocked(j)
			}
			c.jobs[j.rec.ID] = j
			if j.rec.Seq >= c.seq {
				c.seq = j.rec.Seq + 1
			}
		}
	}

	c.wg.Add(2)
	go c.scheduler()
	go c.leaseMonitor()
	return c, nil
}

// Submit validates the request, applies the backlog bound, persists and
// enqueues the job. A submission carrying a hand-off snapshot has it
// verified against the spec and staged for the first dispatch.
func (c *Coordinator) Submit(req serve.SubmitRequest) (serve.JobRecord, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	job, err := req.BuildJob()
	if err != nil {
		return serve.JobRecord{}, err
	}
	if len(req.Snapshot) > 0 {
		if _, err := exec.HandoffSnapshot(req.Snapshot, job); err != nil {
			return serve.JobRecord{}, fmt.Errorf("cluster: hand-off snapshot: %w", err)
		}
	}
	hash := job.Hash()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return serve.JobRecord{}, fmt.Errorf("cluster: coordinator is draining")
	}
	queued := 0
	for _, j := range c.jobs {
		if j.rec.State == serve.StateQueued {
			queued++
		}
	}
	if queued >= c.opt.maxQueued() {
		return serve.JobRecord{}, fmt.Errorf("%w: %d jobs queued (max %d)",
			ErrBacklogFull, queued, c.opt.maxQueued())
	}
	j := &cjob{
		rec: serve.JobRecord{
			ID:          c.newIDLocked(hash),
			Tenant:      req.Tenant,
			Priority:    req.Priority,
			State:       serve.StateQueued,
			Hash:        hash,
			SubmittedAt: time.Now().UnixMilli(),
			Seq:         c.seq,
			Job:         job,
		},
		req:      req,
		snapshot: req.Snapshot,
		done:     make(chan struct{}),
	}
	j.req.Snapshot = nil // the live snapshot field is authoritative from here
	c.seq++
	c.jobs[j.rec.ID] = j
	c.persistLocked(j)
	if len(j.snapshot) > 0 && c.store != nil {
		c.store.putSnap(j.rec.ID, j.snapshot)
	}
	c.publishStateLocked(j)
	c.cond.Broadcast()
	return j.rec, nil
}

// newIDLocked generates a unique cluster job ID ("c-" prefix so cluster
// and worker job IDs are distinguishable in logs).
func (c *Coordinator) newIDLocked(hash string) string {
	for {
		var b [6]byte
		rand.Read(b[:])
		id := "c-" + hex.EncodeToString(b[:]) + "-" + hash[:8]
		if _, taken := c.jobs[id]; !taken {
			return id
		}
	}
}

// Job returns a snapshot of the record.
func (c *Coordinator) Job(id string) (serve.JobRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return serve.JobRecord{}, serve.ErrUnknownJob
	}
	return j.rec, nil
}

// Jobs lists record snapshots, optionally filtered by tenant, in
// submission order.
func (c *Coordinator) Jobs(tenant string) []serve.JobRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]serve.JobRecord, 0, len(c.jobs))
	for _, j := range c.jobs {
		if tenant == "" || j.rec.Tenant == tenant {
			out = append(out, j.rec)
		}
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []serve.JobRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Seq < recs[j-1].Seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// Result returns a terminal job's result: from memory when this process
// saw it finish, from the persistent result cache otherwise.
func (c *Coordinator) Result(id string) (exec.Result, error) {
	c.mu.Lock()
	j := c.jobs[id]
	var rec serve.JobRecord
	var res *exec.Result
	if j != nil {
		rec = j.rec
		res = j.result
	}
	c.mu.Unlock()
	if j == nil {
		return exec.Result{}, serve.ErrUnknownJob
	}
	if !rec.Terminal() {
		return exec.Result{}, fmt.Errorf("cluster: job %s is %s, no result yet", id, rec.State)
	}
	if rec.State == serve.StateCanceled {
		return exec.Result{}, fmt.Errorf("cluster: job %s was canceled", id)
	}
	if res != nil {
		return *res, nil
	}
	if c.cache != nil {
		if r, ok := c.cache.Get(rec.Hash); ok {
			r.Key = rec.Job.Key
			r.Cached = true
			return r, nil
		}
	}
	return exec.Result{}, fmt.Errorf("cluster: job %s finished but its result left the cache", id)
}

// Cancel stops a queued or dispatched job. Queued jobs cancel
// immediately; dispatched ones have the cancellation forwarded to their
// worker and reach canceled when the worker confirms (or the worker
// dies, whichever comes first).
func (c *Coordinator) Cancel(id string) error {
	c.mu.Lock()
	j := c.jobs[id]
	if j == nil {
		c.mu.Unlock()
		return serve.ErrUnknownJob
	}
	if j.rec.Terminal() {
		c.mu.Unlock()
		return nil
	}
	j.userCanceled = true
	if j.rec.State == serve.StateQueued {
		c.finishLocked(j, serve.StateCanceled, "canceled while queued", nil)
		c.mu.Unlock()
		return nil
	}
	cancel := j.cancelLocal
	c.mu.Unlock()
	if cancel != nil {
		cancel() // local run: stop at the next segment boundary
	}
	// Remote runs: the dispatch loop forwards the cancel on its next poll.
	return nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns the final record.
func (c *Coordinator) Wait(ctx context.Context, id string) (serve.JobRecord, error) {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	if j == nil {
		return serve.JobRecord{}, serve.ErrUnknownJob
	}
	select {
	case <-j.done:
		return c.Job(id)
	case <-ctx.Done():
		return serve.JobRecord{}, ctx.Err()
	}
}

// persistLocked writes the job's durable state when persistence is on.
// Callers hold c.mu.
func (c *Coordinator) persistLocked(j *cjob) {
	if c.store == nil {
		return
	}
	c.store.putJob(&persistedJob{Rec: j.rec, Req: j.req, Redispatches: j.redispatches})
}

// finishLocked transitions a job to a terminal state. res may be nil
// (canceled / gave-up paths). Callers hold c.mu.
func (c *Coordinator) finishLocked(j *cjob, state, errMsg string, res *exec.Result) {
	j.rec.State = state
	j.rec.Error = errMsg
	j.rec.FinishedAt = time.Now().UnixMilli()
	j.workerID = ""
	j.remoteID = ""
	if res != nil {
		j.result = res
		j.rec.Cycle = res.Cycles
		j.rec.Attempt = res.Attempts
		j.rec.Cached = res.Cached
	}
	j.snapshot = nil
	c.persistLocked(j)
	if c.store != nil {
		c.store.dropSnap(j.rec.ID)
	}
	c.publishStateLocked(j)
	c.closeSubsLocked(j)
	close(j.done)
	c.cond.Broadcast()
}

// Drain gracefully shuts the coordinator down: no new submissions, every
// dispatch loop pulls a final checkpoint from its worker (or checkpoints
// its local run) and parks the job as queued on disk, so a restarted
// coordinator resumes the batch. Drain blocks until all loops exit.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.baseCancel()
	c.wg.Wait()
}
