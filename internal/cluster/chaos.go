package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// chaosPPMScale is the rate denominator: chaos rates are parts per
// million per opportunity, mirroring internal/fault.
const chaosPPMScale = 1_000_000

// ChaosSpec describes one cluster chaos campaign: how often workers are
// killed and partitioned, how long they stay down or cut off, and the
// tick window the campaign is active in. Time is measured in harness
// ticks (the harness advances one tick every TickEvery of wall clock),
// so a spec is wall-clock independent and a (spec, seed) pair names one
// exact schedule. The zero value injects nothing; DefaultChaosSpec fills
// the duration defaults ParseChaosSpec starts from.
type ChaosSpec struct {
	// KillPPM is the per-(tick, worker) probability, in parts per
	// million, that a live worker is hard-killed (kill -9 semantics:
	// serve.Server.Kill plus its listener dropped).
	KillPPM uint32

	// PartPPM is the per-(window, worker) probability that a live worker
	// is partitioned from the cluster — its API unreachable and its
	// heartbeats blocked — for a whole PartLen-tick window.
	PartPPM uint32

	// RestartTicks is how many ticks a killed worker stays down before
	// the harness restarts it over the same data directory (default 4).
	RestartTicks int64

	// PartLen is the partition window length in ticks (default 2):
	// partition sampling is per window, so a sampled window cuts the
	// worker off for PartLen consecutive ticks, then heals.
	PartLen int64

	// Start and End bound the campaign in ticks; End == 0 leaves it
	// open-ended. Chaos fires only at ticks in [Start, End).
	Start, End int64
}

// DefaultChaosSpec returns the spec ParseChaosSpec starts from: nothing
// injected, restart after 4 ticks down, 2-tick partitions.
func DefaultChaosSpec() ChaosSpec {
	return ChaosSpec{RestartTicks: 4, PartLen: 2}
}

// Injecting reports whether the spec schedules any chaos at all.
func (s ChaosSpec) Injecting() bool { return s.KillPPM != 0 || s.PartPPM != 0 }

// String renders the spec in the canonical full form ParseChaosSpec
// accepts, so ParseChaosSpec(s.String()) == s for any valid spec.
func (s ChaosSpec) String() string {
	return fmt.Sprintf("kill=%d,part=%d,restart=%d,plen=%d,window=%d:%d",
		s.KillPPM, s.PartPPM, s.RestartTicks, s.PartLen, s.Start, s.End)
}

// Validate reports spec field combinations no campaign can honor.
func (s ChaosSpec) Validate() error {
	switch {
	case s.KillPPM > chaosPPMScale || s.PartPPM > chaosPPMScale:
		return fmt.Errorf("cluster: chaos rates are parts per million, max %d (got kill=%d part=%d)",
			chaosPPMScale, s.KillPPM, s.PartPPM)
	case s.RestartTicks < 1:
		return fmt.Errorf("cluster: restart %d < 1 tick", s.RestartTicks)
	case s.PartLen < 1:
		return fmt.Errorf("cluster: plen %d < 1 tick", s.PartLen)
	case s.Start < 0 || s.End < 0:
		return fmt.Errorf("cluster: negative chaos window [%d,%d)", s.Start, s.End)
	case s.End != 0 && s.End <= s.Start:
		return fmt.Errorf("cluster: empty chaos window [%d,%d)", s.Start, s.End)
	}
	return nil
}

// ParseChaosSpec parses the compact key=value,... chaos spec the CLI's
// -chaos mode takes, e.g. "kill=80000,restart=3". Unset keys keep their
// DefaultChaosSpec values; an empty string is the default spec (nothing
// injected). Keys:
//
//	kill     per-tick worker kill rate in parts per million (0..1000000)
//	part     per-window worker partition rate in parts per million
//	restart  ticks a killed worker stays down (default 4)
//	plen     partition window length in ticks (default 2)
//	window   campaign window "start:end" in ticks (end empty or 0 = open)
func ParseChaosSpec(text string) (ChaosSpec, error) {
	s := DefaultChaosSpec()
	if strings.TrimSpace(text) == "" {
		return s, nil
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return ChaosSpec{}, fmt.Errorf("cluster: chaos %q is not key=value", field)
		}
		var err error
		switch key {
		case "kill":
			s.KillPPM, err = parseChaosPPM(val)
		case "part":
			s.PartPPM, err = parseChaosPPM(val)
		case "restart":
			s.RestartTicks, err = strconv.ParseInt(val, 10, 64)
		case "plen":
			s.PartLen, err = strconv.ParseInt(val, 10, 64)
		case "window":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want start:end, got %q", val)
				break
			}
			if s.Start, err = strconv.ParseInt(lo, 10, 64); err != nil {
				break
			}
			if hi == "" {
				s.End = 0
				break
			}
			s.End, err = strconv.ParseInt(hi, 10, 64)
		default:
			return ChaosSpec{}, fmt.Errorf("cluster: unknown chaos key %q", key)
		}
		if err != nil {
			return ChaosSpec{}, fmt.Errorf("cluster: bad chaos %s: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return ChaosSpec{}, err
	}
	return s, nil
}

func parseChaosPPM(val string) (uint32, error) {
	n, err := strconv.ParseUint(val, 10, 32)
	if err != nil {
		return 0, err
	}
	if n > chaosPPMScale {
		return 0, fmt.Errorf("rate %d exceeds %d ppm", n, chaosPPMScale)
	}
	return uint32(n), nil
}

// ChaosPlan binds a ChaosSpec to a seed: a complete, self-contained
// chaos schedule. Every query is a pure hash of (seed, kind, tick,
// worker) — same discipline as internal/fault.Plan — so identical plans
// always agree regardless of wall clock, goroutine interleaving or how
// often a site is queried, and the e2e chaos test is exactly as
// reproducible as the simulations it runs.
type ChaosPlan struct {
	Spec ChaosSpec
	Seed uint64
}

// Plan binds the spec to a seed.
func (s ChaosSpec) Plan(seed uint64) ChaosPlan { return ChaosPlan{Spec: s, Seed: seed} }

// Domain separators for the two sampling streams.
const (
	chaosKindKill uint64 = iota + 1
	chaosKindPart
)

func (p ChaosPlan) active(tick int64) bool {
	return tick >= p.Spec.Start && (p.Spec.End == 0 || tick < p.Spec.End)
}

// sample hashes one (stream, tick, worker) site into [0, chaosPPMScale).
func (p ChaosPlan) sample(kind uint64, tick int64, worker int) uint64 {
	x := p.Seed ^ uint64(tick)*0x9E3779B97F4A7C15
	x ^= kind<<56 ^ uint64(worker)<<8
	x = chaosMix(x + 0x9E3779B97F4A7C15)
	x = chaosMix(x + 0x9E3779B97F4A7C15)
	return x % chaosPPMScale
}

// KillAt reports whether the plan kills worker at tick (given the worker
// is live then — the harness never kills what is already down).
func (p ChaosPlan) KillAt(tick int64, worker int) bool {
	return p.Spec.KillPPM != 0 && p.active(tick) &&
		p.sample(chaosKindKill, tick, worker) < uint64(p.Spec.KillPPM)
}

// PartitionedAt reports whether worker is inside a sampled partition
// window at tick. Windows are PartLen ticks long and sampled as a unit,
// so partitions last a contiguous stretch and heal on their own.
func (p ChaosPlan) PartitionedAt(tick int64, worker int) bool {
	if p.Spec.PartPPM == 0 || !p.active(tick) {
		return false
	}
	return p.sample(chaosKindPart, tick/p.Spec.PartLen, worker) < uint64(p.Spec.PartPPM)
}

// chaosMix is splitmix64's output function, the same mixer the fault and
// experiment layers use for their schedule hashing.
func chaosMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}
