package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"innetcc/internal/serve"
)

// worker is one registered worker's coordinator-side state: the lease
// that decides liveness, the serve client used to talk to it, slot
// accounting, and the circuit breaker that gates new dispatches.
type worker struct {
	id    string
	url   string
	slots int

	// client is replaced on (re)registration — a restarted worker comes
	// back on a new port — so dispatch loops must re-read it under c.mu
	// (Coordinator.clientOf) instead of caching it across calls.
	client *serve.Client

	leaseUntil time.Time
	alive      bool
	inflight   int

	// Circuit breaker: fails counts consecutive failed calls; reaching
	// the threshold opens the breaker until openUntil. After the
	// cooldown the breaker is naturally half-open — the next dispatch
	// probes the worker, and its outcome resets or re-opens the circuit.
	fails     int
	openUntil time.Time

	registrations int64 // times this ID (re)registered
	dispatched    int64 // jobs ever dispatched here
}

// breakerOpenLocked reports whether the breaker currently blocks new
// dispatches to the worker. Callers hold c.mu.
func (w *worker) breakerOpenLocked(threshold int, now time.Time) bool {
	return w.fails >= threshold && now.Before(w.openUntil)
}

// callResult feeds one call outcome into the worker's breaker. Definitive
// server answers — even errors — prove the host is reachable and reset
// the streak; only transport-level failures count against it.
func (c *Coordinator) callResult(w *worker, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil || !serve.Unreachable(err) {
		w.fails = 0
		return
	}
	w.fails++
	if w.fails >= c.opt.breakerThreshold() {
		w.openUntil = time.Now().Add(c.opt.breakerCooldown())
	}
}

// RegisterRequest is the payload of POST /v1/cluster/register: a worker
// announcing itself (or re-announcing after a restart — same ID, possibly
// a new URL).
type RegisterRequest struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Slots int    `json:"slots,omitempty"`
}

// RegisterResponse tells the agent its lease terms.
type RegisterResponse struct {
	LeaseMillis     int64 `json:"leaseMillis"`
	HeartbeatMillis int64 `json:"heartbeatMillis"`
}

// Register adds or refreshes a worker registration. Re-registering an
// existing ID updates its URL in place (restarted workers come back on a
// new port) and revives the lease, so dispatch loops polling the old
// address recover as soon as they re-read the client. The advertised URL
// is health-probed before the registration is accepted: a worker whose
// heartbeats flow but whose advertised address is wrong would otherwise
// look alive forever while every dispatch to it fails.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.ID == "" || strings.TrimSpace(req.URL) == "" {
		return RegisterResponse{}, fmt.Errorf("cluster: register needs id and url")
	}
	if !strings.HasPrefix(req.URL, "http://") && !strings.HasPrefix(req.URL, "https://") {
		return RegisterResponse{}, fmt.Errorf("cluster: register url %q is not http(s)", req.URL)
	}
	probeCtx, cancel := context.WithTimeout(c.baseCtx, c.opt.callTimeout())
	defer cancel()
	probe := &serve.Client{Base: req.URL, Timeout: c.opt.callTimeout()}
	if err := probe.Health(probeCtx); err != nil {
		return RegisterResponse{}, fmt.Errorf("cluster: register %s: advertised url %s failed its health probe: %w",
			req.ID, req.URL, err)
	}
	slots := req.Slots
	if slots <= 0 {
		slots = 1
	}
	lease := c.opt.lease()

	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.ID]
	if w == nil {
		w = &worker{id: req.ID}
		c.workers[req.ID] = w
	}
	w.url = req.URL
	w.slots = slots
	w.client = &serve.Client{
		Base:      req.URL,
		Timeout:   c.opt.callTimeout(),
		Retries:   c.opt.callRetries(),
		RetryBase: 25 * time.Millisecond,
	}
	w.alive = true
	w.leaseUntil = time.Now().Add(lease)
	w.fails = 0
	w.openUntil = time.Time{}
	w.registrations++
	c.cond.Broadcast()
	return RegisterResponse{
		LeaseMillis:     lease.Milliseconds(),
		HeartbeatMillis: (lease / 3).Milliseconds(),
	}, nil
}

// Heartbeat renews a worker's lease. An unknown ID gets ErrUnknownWorker
// (HTTP 404), which the agent answers by re-registering — the normal
// recovery after a coordinator restart. A heartbeat from a worker whose
// lease already expired revives it: the partition healed.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	w.leaseUntil = time.Now().Add(c.opt.lease())
	if !w.alive {
		w.alive = true
		c.cond.Broadcast()
	}
	return nil
}

// clientOf returns the worker's current client (re-read under the lock
// because registration replaces it when a worker restarts elsewhere).
func (c *Coordinator) clientOf(w *worker) *serve.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return w.client
}

// workerAlive reports the worker's lease-derived liveness.
func (c *Coordinator) workerAlive(w *worker) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return w.alive
}

// leaseMonitor expires worker leases. Expiry only flips the liveness
// bit; the dispatch loops observe it on their next poll and requeue
// their jobs, so death handling is centralized in one code path.
func (c *Coordinator) leaseMonitor() {
	defer c.wg.Done()
	interval := c.opt.lease() / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, w := range c.workers {
			if w.alive && now.After(w.leaseUntil) {
				w.alive = false
			}
		}
		// Unconditional wake: lease expiry may enable local fallback, and a
		// breaker cooldown elapsing makes a worker schedulable again without
		// any event the scheduler would otherwise hear about.
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// WorkerInfo is one worker's public accounting snapshot.
type WorkerInfo struct {
	ID            string `json:"id"`
	URL           string `json:"url"`
	Alive         bool   `json:"alive"`
	Slots         int    `json:"slots"`
	Inflight      int    `json:"inflight"`
	BreakerOpen   bool   `json:"breakerOpen"`
	LeaseMillis   int64  `json:"leaseMillis"` // remaining lease (<= 0 once expired)
	Registrations int64  `json:"registrations"`
	Dispatched    int64  `json:"dispatched"`
}

// Stats is the GET /v1/stats payload of the coordinator.
type Stats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`

	Workers     []WorkerInfo `json:"workers"`
	LiveWorkers int          `json:"liveWorkers"`

	Reassigns     int64 `json:"reassigns"`     // failure-driven job reassignments
	Resumes       int64 `json:"resumes"`       // dispatches resumed from a migrated snapshot
	LocalRuns     int64 `json:"localRuns"`     // jobs completed by local fallback
	DispatchFails int64 `json:"dispatchFails"` // submissions that never reached their worker
}

// Stats snapshots the coordinator accounting.
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Reassigns: c.nReassigns, Resumes: c.nResumes, LocalRuns: c.nLocal, DispatchFails: c.nDispatchFails}
	for _, j := range c.jobs {
		switch j.rec.State {
		case serve.StateQueued:
			st.Queued++
		case serve.StateRunning:
			st.Running++
		case serve.StateDone:
			st.Done++
		case serve.StateFailed:
			st.Failed++
		case serve.StateCanceled:
			st.Canceled++
		}
	}
	for _, w := range c.workers {
		if w.alive {
			st.LiveWorkers++
		}
		st.Workers = append(st.Workers, WorkerInfo{
			ID:            w.id,
			URL:           w.url,
			Alive:         w.alive,
			Slots:         w.slots,
			Inflight:      w.inflight,
			BreakerOpen:   w.breakerOpenLocked(c.opt.breakerThreshold(), now),
			LeaseMillis:   time.Until(w.leaseUntil).Milliseconds(),
			Registrations: w.registrations,
			Dispatched:    w.dispatched,
		})
	}
	// Stable order for humans and tests.
	for i := 1; i < len(st.Workers); i++ {
		for j := i; j > 0 && st.Workers[j].ID < st.Workers[j-1].ID; j-- {
			st.Workers[j], st.Workers[j-1] = st.Workers[j-1], st.Workers[j]
		}
	}
	return st
}
