package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"innetcc/internal/serve"
)

// Handler returns the coordinator's HTTP API. The job surface mirrors a
// single serve.Server's, so serve.Client (and every existing tool built
// on it) works unmodified against a coordinator; the /v1/cluster/*
// endpoints are the worker-facing registration plane.
//
//	POST /v1/jobs                   submit (serve.SubmitRequest -> JobRecord)
//	GET  /v1/jobs                   list records (?tenant= filters)
//	GET  /v1/jobs/{id}              one record
//	GET  /v1/jobs/{id}/result       terminal result payload
//	GET  /v1/jobs/{id}/events       SSE progress/state stream (Last-Event-ID resume)
//	POST /v1/jobs/{id}/cancel       cancel queued/dispatched job
//	GET  /v1/stats                  cluster accounting (Stats)
//	GET  /healthz                   liveness
//	POST /v1/cluster/register       worker registration / re-registration
//	POST /v1/cluster/heartbeat      lease renewal ({"id": ...})
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Jobs(r.URL.Query().Get("tenant")))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, err := c.Job(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Cancel(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		resp, err := c.Register(req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		if err := c.Heartbeat(req.ID); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrUnknownJob), errors.Is(err, ErrUnknownWorker):
		code = http.StatusNotFound
	case errors.Is(err, ErrBacklogFull):
		code = http.StatusTooManyRequests
		// Backpressure is transient by design: the queue drains as workers
		// return (or local fallback chews through it). Well-behaved clients
		// back off instead of hammering.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	rec, err := c.Submit(req)
	if err != nil {
		if errors.Is(err, ErrBacklogFull) {
			writeErr(w, err)
		} else {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := c.Result(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, serve.ErrUnknownJob) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// Client talks to a coordinator. The embedded serve.Client covers the
// whole job surface (submit/job/result/cancel/wait-by-poll); the
// additions are the cluster-only endpoints.
type Client struct {
	serve.Client
}

// ClusterStats fetches the coordinator accounting snapshot.
func (c *Client) ClusterStats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.Do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// RegisterWorker announces a worker to the coordinator.
func (c *Client) RegisterWorker(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.Do(ctx, http.MethodPost, "/v1/cluster/register", req, &resp)
	return resp, err
}

// HeartbeatWorker renews a worker lease.
func (c *Client) HeartbeatWorker(ctx context.Context, id string) error {
	return c.Do(ctx, http.MethodPost, "/v1/cluster/heartbeat", map[string]string{"id": id}, nil)
}
