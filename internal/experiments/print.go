package experiments

import (
	"fmt"
	"io"

	"innetcc/internal/cacti"
)

// failRow renders one failed experiment row: the label keeps its column so
// the table stays scannable, the error replaces the numbers.
func failRow(w io.Writer, label, err string) {
	fmt.Fprintf(w, "%-6s FAILED: %s\n", label, err)
}

// PrintHopStudy renders the Section 1 characterization.
func PrintHopStudy(w io.Writer, rs []HopResult) {
	fmt.Fprintln(w, "Section 1 — ideal hop count reduction (oracle), %")
	fmt.Fprintf(w, "%-6s %10s %10s\n", "bench", "reads", "writes")
	var r, wr, n float64
	for _, h := range rs {
		if h.Err != "" {
			failRow(w, h.Bench, h.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s %9.1f%% %9.1f%%\n", h.Bench, h.ReadPct, h.WritePct)
		r += h.ReadPct
		wr += h.WritePct
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "%-6s %9.1f%% %9.1f%%   (paper avg: 19.7%% / 17.3%%)\n", "avg", r/n, wr/n)
	}
}

// PrintPairs renders a per-benchmark protocol comparison (Figures 5, 9, 10).
func PrintPairs(w io.Writer, title string, rs []PairResult, paperNote string) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %8s %8s\n",
		"bench", "base-rd", "base-wr", "tree-rd", "tree-wr", "rd-red", "wr-red")
	for _, r := range rs {
		if r.Err != "" {
			failRow(w, r.Bench, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s %10.1f %10.1f %10.1f %10.1f %7.1f%% %7.1f%%\n",
			r.Bench, r.BaseRead, r.BaseWrite, r.TreeRead, r.TreeWrite,
			r.ReadReduction(), r.WriteReduction())
	}
	if paperNote != "" {
		fmt.Fprintln(w, paperNote)
	}
}

// PrintSweep renders Figure 6/7-style normalized sweeps grouped by
// benchmark.
func PrintSweep(w io.Writer, title string, pts []SweepPoint, valueLabel string) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %10s %12s %12s\n", "bench", valueLabel, "norm-read", "norm-write")
	for _, p := range pts {
		if p.Err != "" {
			fmt.Fprintf(w, "%-6s %10d FAILED: %s\n", p.Bench, p.Value, p.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s %10d %12.3f %12.3f\n", p.Bench, p.Value, p.Read, p.Write)
	}
}

// PrintFigure8 renders the L2 sweep.
func PrintFigure8(w io.Writer, pts []Figure8Point) {
	fmt.Fprintln(w, "Figure 8 — latency reduction vs baseline at shrinking L2 (%)")
	fmt.Fprintf(w, "%-6s %10s %10s %10s\n", "bench", "L2-entries", "rd-red", "wr-red")
	for _, p := range pts {
		if p.Err != "" {
			fmt.Fprintf(w, "%-6s %10d FAILED: %s\n", p.Bench, p.L2, p.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s %10d %9.1f%% %9.1f%%\n", p.Bench, p.L2, p.ReadRed, p.WriteRed)
	}
}

// PrintTable3 renders the tree cache access-time/area grid.
func PrintTable3(w io.Writer) {
	res := cacti.Table3()
	fmt.Fprintln(w, "Table 3 — tree cache access time (cycles @500 MHz, 0.18 µm)")
	fmt.Fprintf(w, "%-8s", "ways\\sz")
	for _, s := range cacti.Table3Sizes {
		fmt.Fprintf(w, "%8d", s)
	}
	fmt.Fprintln(w)
	for i, ways := range cacti.Table3Ways {
		fmt.Fprintf(w, "%-8d", ways)
		for j := range cacti.Table3Sizes {
			fmt.Fprintf(w, "%8d", res[i][j].AccessCycles)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Table 3 — tree cache area (mm²)")
	for i, ways := range cacti.Table3Ways {
		fmt.Fprintf(w, "%-8d", ways)
		for j := range cacti.Table3Sizes {
			fmt.Fprintf(w, "%8.2f", res[i][j].AreaMM2)
		}
		fmt.Fprintln(w)
	}
}

// PrintTable4 renders the deadlock-recovery shares.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4 — share of latency spent in deadlock recovery (DM tree cache)")
	fmt.Fprintf(w, "%-6s %10s %10s %8s\n", "bench", "read%", "write%", "aborts")
	var r, wr, n float64
	for _, t := range rows {
		if t.Err != "" {
			failRow(w, t.Bench, t.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s %9.2f%% %9.2f%% %8d\n", t.Bench, t.ReadPct, t.WritePct, t.Aborts)
		r += t.ReadPct
		wr += t.WritePct
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "%-6s %9.2f%% %9.2f%%   (paper avg: 0.21%% / 0.20%%)\n", "avg", r/n, wr/n)
	}
}

// PrintFigure11 renders the pipeline sweep.
func PrintFigure11(w io.Writer, pts []Figure11Point) {
	fmt.Fprintln(w, "Figure 11 — overall latency reduction vs baseline pipeline depth (%)")
	fmt.Fprintf(w, "%-6s", "bench")
	for _, d := range Figure11Depths {
		fmt.Fprintf(w, "%9s", fmt.Sprintf("%dv%d cyc", d+1, d))
	}
	fmt.Fprintln(w)
	cur := ""
	var row []string
	flush := func() {
		if cur == "" {
			return
		}
		fmt.Fprintf(w, "%-6s", cur)
		for _, v := range row {
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
	for _, p := range pts {
		if p.Bench != cur {
			flush()
			cur = p.Bench
			row = row[:0]
		}
		if p.Err != "" {
			row = append(row, fmt.Sprintf("%9s", "FAILED"))
		} else {
			row = append(row, fmt.Sprintf("%8.1f%%", p.Red))
		}
	}
	flush()
}

// PrintAblations renders the design-decision ablation table.
func PrintAblations(w io.Writer, rows []AblationResult) {
	fmt.Fprintln(w, "Ablations — in-network design decisions (average over all benchmarks)")
	for _, r := range rows {
		if r.Err == "" {
			fmt.Fprintf(w, "nominal: read %.1f cy, write %.1f cy\n", r.BaseRead, r.BaseWrite)
			break
		}
	}
	fmt.Fprintf(w, "%-30s %10s %10s %10s %10s\n", "variant", "read", "write", "Δread", "Δwrite")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-30s FAILED: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-30s %10.1f %10.1f %+9.1f%% %+9.1f%%\n", r.Name, r.Read, r.Write, r.ReadDelta, r.WriteDelta)
	}
}

// PrintStorage renders the Section 3.6 analysis.
func PrintStorage(w io.Writer, rows []StorageRow) {
	fmt.Fprintln(w, "Section 3.6 — per-node coherence storage (4K entries)")
	fmt.Fprintf(w, "%-6s %12s %12s %12s\n", "nodes", "tree-bits", "dir-bits", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %12d %12d %11.0f%%\n", r.Nodes, r.TreeBits, r.DirBits, r.TreeOverhead)
	}
	fmt.Fprintln(w, "(paper: +56% at 16 nodes, -58% at 64 nodes)")
}
