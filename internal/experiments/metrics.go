package experiments

import (
	"fmt"
	"io"

	"innetcc/internal/exec"
	"innetcc/internal/metrics"
)

// MetricsEntry pairs a job's display key with its full result, so the
// observability payload can be reported and exported after the experiment's
// own tables are printed.
type MetricsEntry struct {
	Key    string
	Result exec.Result
}

// MetricsLog accumulates the metrics-carrying results of every job an
// experiment ran, in submission order (so the log, like the result tables,
// is identical at any parallelism level).
type MetricsLog struct {
	Entries []MetricsEntry
}

// add records the metrics-carrying results of one batch.
func (l *MetricsLog) add(results []exec.Result) {
	if l == nil {
		return
	}
	for _, r := range results {
		if r.Metrics != nil {
			l.Entries = append(l.Entries, MetricsEntry{Key: r.Key, Result: r})
		}
	}
}

// PrintMetrics renders the per-job observability tables: the latency
// breakdown (queueing / serialization / traversal / controller, whose means
// sum to the reported average latency), and the protocol instrumentation
// counters. Per-router NoC detail goes to -metrics-out rather than the
// terminal.
func PrintMetrics(w io.Writer, log *MetricsLog) {
	if log == nil || len(log.Entries) == 0 {
		return
	}
	fmt.Fprintln(w, "metrics — latency breakdown (mean cycles per access)")
	fmt.Fprintf(w, "  %-24s %-5s %7s %9s %9s %9s %9s %9s\n",
		"job", "class", "n", "total", "queue", "serial", "travers", "ctrl")
	for _, e := range log.Entries {
		m := e.Result.Metrics
		printBreakdownRow(w, e.Key, "read", m.Read)
		printBreakdownRow(w, e.Key, "write", m.Write)
	}
	printed := false
	for _, e := range log.Entries {
		m := e.Result.Metrics
		if len(m.Counters) == 0 {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "metrics — protocol instrumentation counters")
			printed = true
		}
		fmt.Fprintf(w, "  %-24s", e.Key)
		for _, name := range counterOrder {
			if v, ok := m.Counters[name]; ok {
				fmt.Fprintf(w, " %s=%d", name, v)
			}
		}
		if h, ok := m.Counters["tree_hit"]; ok {
			if miss := m.Counters["tree_miss"]; h+miss > 0 {
				fmt.Fprintf(w, " hit%%=%.1f", 100*float64(h)/float64(h+miss))
			}
		}
		fmt.Fprintln(w)
	}
}

func printBreakdownRow(w io.Writer, key, class string, c metrics.BreakdownClass) {
	if c.N == 0 {
		return
	}
	n := float64(c.N)
	fmt.Fprintf(w, "  %-24s %-5s %7d %9.1f %9.1f %9.1f %9.1f %9.1f\n",
		key, class, c.N,
		float64(c.Total)/n, float64(c.Queue)/n, float64(c.Serial)/n,
		float64(c.Traversal)/n, float64(c.Controller)/n)
}

// counterOrder fixes the printed counter order (map iteration is random).
var counterOrder = []string{
	"tree_hit", "tree_miss", "tree_bump", "hops_saved", "dir_fwd", "dir_inval",
}

// PrintFlight renders each job's flight-recorder tail, capped at maxEvents
// per job (0 means everything the ring retained). Jobs without a recorded
// ring (flight dumping off and the job succeeded) are skipped.
func PrintFlight(w io.Writer, log *MetricsLog, maxEvents int) {
	if log == nil {
		return
	}
	for _, e := range log.Entries {
		m := e.Result.Metrics
		if len(m.Flight) == 0 {
			continue
		}
		evs := m.Flight
		if maxEvents > 0 && len(evs) > maxEvents {
			evs = evs[len(evs)-maxEvents:]
		}
		fmt.Fprintf(w, "flight recorder — %s (last %d of %d events", e.Key, len(evs), m.FlightTotal)
		if e.Result.Failed() {
			fmt.Fprintf(w, "; job failed: %s", e.Result.Err)
		}
		fmt.Fprintln(w, ")")
		for _, ev := range evs {
			fmt.Fprintf(w, "  %s\n", ev.String())
		}
	}
}
