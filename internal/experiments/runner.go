// Package experiments contains one driver per table and figure of the
// paper's evaluation section (Section 3), plus the Section 1 hop-count
// characterization and the Section 3.6 storage-scalability analysis. Each
// driver regenerates the corresponding result rows/series; DESIGN.md maps
// every experiment to the modules it exercises and EXPERIMENTS.md records
// paper-versus-measured values.
package experiments

import (
	"fmt"

	"innetcc/internal/directory"
	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
	"innetcc/internal/treecc"
)

// Options scales the experiments: AccessesPerNode trades fidelity for run
// time; Seed drives all randomness.
type Options struct {
	AccessesPerNode   int
	AccessesPerNode64 int
	Seed              uint64
}

// DefaultOptions is sized so the full suite completes in a couple of
// minutes while keeping per-benchmark orderings stable.
func DefaultOptions() Options {
	return Options{AccessesPerNode: 400, AccessesPerNode64: 120, Seed: 42}
}

// maxCycles bounds every simulation; a run hitting it indicates a protocol
// bug and is surfaced as an error.
const maxCycles = 200_000_000

// runDir runs the baseline directory protocol for one benchmark.
func runDir(cfg protocol.Config, p trace.Profile, accesses int, seed uint64) (*protocol.Machine, *directory.Engine, error) {
	tr := trace.Generate(p, cfg.Nodes(), accesses, seed)
	m, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		return nil, nil, err
	}
	e := directory.New(m)
	if err := m.Run(maxCycles); err != nil {
		return nil, nil, fmt.Errorf("%s baseline: %w", p.Name, err)
	}
	return m, e, nil
}

// runTree runs the in-network protocol for one benchmark.
func runTree(cfg protocol.Config, p trace.Profile, accesses int, seed uint64) (*protocol.Machine, *treecc.Engine, error) {
	tr := trace.Generate(p, cfg.Nodes(), accesses, seed)
	m, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		return nil, nil, err
	}
	e := treecc.New(m)
	if err := m.Run(maxCycles); err != nil {
		return nil, nil, fmt.Errorf("%s tree: %w", p.Name, err)
	}
	return m, e, nil
}

// PairResult compares the two protocols on one benchmark.
type PairResult struct {
	Bench     string
	BaseRead  float64
	BaseWrite float64
	TreeRead  float64
	TreeWrite float64
}

// ReadReduction returns the in-network read-latency reduction in percent.
func (r PairResult) ReadReduction() float64 { return stats.Reduction(r.BaseRead, r.TreeRead) }

// WriteReduction returns the in-network write-latency reduction in percent.
func (r PairResult) WriteReduction() float64 { return stats.Reduction(r.BaseWrite, r.TreeWrite) }

// runPair runs both protocols on the same trace and returns the comparison.
func runPair(cfg protocol.Config, p trace.Profile, accesses int, seed uint64) (PairResult, error) {
	mb, _, err := runDir(cfg, p, accesses, seed)
	if err != nil {
		return PairResult{}, err
	}
	mt, _, err := runTree(cfg, p, accesses, seed)
	if err != nil {
		return PairResult{}, err
	}
	return PairResult{
		Bench:     p.Name,
		BaseRead:  mb.Lat.Read.Mean(),
		BaseWrite: mb.Lat.Write.Mean(),
		TreeRead:  mt.Lat.Read.Mean(),
		TreeWrite: mt.Lat.Write.Mean(),
	}, nil
}

// averagePair folds a slice of pair results into an "avg" row.
func averagePair(rs []PairResult) PairResult {
	var a PairResult
	a.Bench = "avg"
	for _, r := range rs {
		a.BaseRead += r.BaseRead
		a.BaseWrite += r.BaseWrite
		a.TreeRead += r.TreeRead
		a.TreeWrite += r.TreeWrite
	}
	n := float64(len(rs))
	if n > 0 {
		a.BaseRead /= n
		a.BaseWrite /= n
		a.TreeRead /= n
		a.TreeWrite /= n
	}
	return a
}
