// Package experiments contains one driver per table and figure of the
// paper's evaluation section (Section 3), plus the Section 1 hop-count
// characterization and the Section 3.6 storage-scalability analysis. Each
// driver regenerates the corresponding result rows/series; DESIGN.md maps
// every experiment to the modules it exercises and EXPERIMENTS.md records
// paper-versus-measured values.
//
// Drivers build declarative job batches and run them on the internal/exec
// orchestration pool: simulations execute across worker goroutines with
// per-job seeds derived from the suite seed (never from worker order), so
// every driver's output is byte-identical at any parallelism level. A
// failing simulation — error, exceeded cycle bound, or panic — fails only
// its own row (the row's Err field), and the rest of the experiment still
// completes.
package experiments

import (
	"fmt"

	"innetcc/internal/exec"
	"innetcc/internal/fault"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
)

// Options scales the experiments: AccessesPerNode trades fidelity for run
// time; Seed drives all randomness (per-job seeds are derived from it).
type Options struct {
	AccessesPerNode   int
	AccessesPerNode64 int
	Seed              uint64

	// Jobs is the simulation worker parallelism; <= 0 uses all cores
	// (divided by Shards so the two knobs together fill the machine).
	// Results are identical at every setting.
	Jobs int

	// Shards splits each individual simulation across this many worker
	// shards: 0 picks automatically per job (sim.AutoShards + the
	// kernel's occupancy tuner), 1 forces serial. The sharded engine is
	// byte-identical to serial execution, so this — like Jobs — never
	// changes results, only wall-clock time. Prefer Jobs for batches with
	// many jobs and explicit Shards for a few large simulations.
	Shards int

	// CacheDir, when non-empty, enables the on-disk result cache there:
	// re-running an experiment whose job specs are unchanged replays
	// results from disk instead of simulating.
	CacheDir string

	// Metrics enables the cycle-level observability collector on every
	// job the experiment runs; FlightDump additionally keeps each job's
	// flight-recorder ring in its result. Both are purely observational —
	// the experiment tables are byte-identical either way.
	Metrics    bool
	FlightDump bool

	// MetricsLog, when non-nil, accumulates each metrics-carrying result
	// for reporting and export after the experiment's own tables.
	MetricsLog *MetricsLog

	// Faults, when non-empty, is a fault.ParseSpec string applied to every
	// job the experiment runs: deterministic link-fault injection plus the
	// protocol's timeout/retry knobs. Empty (the default) injects nothing
	// and leaves runs byte-identical to a fault-free build.
	Faults string

	// Watchdog arms the kernel hang watchdog on every job: a run making no
	// progress for this many cycles while work is outstanding fails loudly
	// with a reproducer seed instead of burning its full cycle bound.
	// Zero disables it.
	Watchdog int64

	// Retries is the per-job transient-failure retry budget (see
	// exec.Job.Retries). Zero means transient failures fail the row on
	// first occurrence.
	Retries int

	// Topology, when non-empty, overrides the fabric of every job the
	// experiment runs ("mesh:4x4", "torus:8x8", "ring:16", ...). Empty
	// keeps each experiment's own default (the paper's meshes). The
	// override changes the node count too, so per-node access counts
	// apply to the new fabric's nodes.
	Topology string

	// Multicast enables hardware multicast on every job: directory
	// invalidation rounds and tree teardown fan-outs ride single packets
	// the routers fork in the fabric.
	Multicast bool
}

// WithDefaults returns a copy of o with unset (zero) scaling fields filled
// in: 400/120 accesses per node (16/64-node meshes) and seed 42. It is the
// one place experiment option defaults live — drivers, benchmarks and
// examples that only want to override one knob start from a partial literal
// and call this instead of hand-rolling the rest. Negative values are left
// alone so Validate rejects them rather than silently running at defaults.
func (o Options) WithDefaults() Options {
	if o.AccessesPerNode == 0 {
		o.AccessesPerNode = 400
	}
	if o.AccessesPerNode64 == 0 {
		o.AccessesPerNode64 = 120
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Validate reports option combinations no driver can honor.
func (o Options) Validate() error {
	if o.AccessesPerNode <= 0 {
		return fmt.Errorf("experiments: AccessesPerNode must be positive, got %d (use WithDefaults)", o.AccessesPerNode)
	}
	if o.AccessesPerNode64 <= 0 {
		return fmt.Errorf("experiments: AccessesPerNode64 must be positive, got %d (use WithDefaults)", o.AccessesPerNode64)
	}
	if o.Seed == 0 {
		return fmt.Errorf("experiments: Seed must be non-zero (use WithDefaults)")
	}
	if o.FlightDump && !o.Metrics {
		return fmt.Errorf("experiments: FlightDump requires Metrics")
	}
	if o.Faults != "" {
		if _, err := fault.ParseSpec(o.Faults); err != nil {
			return fmt.Errorf("experiments: %v", err)
		}
	}
	if o.Watchdog < 0 {
		return fmt.Errorf("experiments: Watchdog must be non-negative, got %d", o.Watchdog)
	}
	if o.Retries < 0 {
		return fmt.Errorf("experiments: Retries must be non-negative, got %d", o.Retries)
	}
	if o.Shards < 0 {
		return fmt.Errorf("experiments: Shards must be non-negative, got %d", o.Shards)
	}
	if o.Topology != "" {
		if _, err := network.ParseTopoSpec(o.Topology); err != nil {
			return fmt.Errorf("experiments: %v", err)
		}
	}
	return nil
}

// DefaultOptions is sized so the full suite completes in a couple of
// minutes on one core while keeping per-benchmark orderings stable; the
// pool spreads it across all cores by default.
func DefaultOptions() Options {
	return Options{}.WithDefaults()
}

// runJobs executes a driver's batch on the configured pool. The returned
// error covers option misuse and infrastructure (an unusable cache
// directory); per-job failures are carried in the results.
func runJobs(opt Options, jobs []exec.Job) ([]exec.Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Metrics {
		for i := range jobs {
			jobs[i].Metrics = exec.MetricsSpec{Enabled: true, FlightDump: opt.FlightDump}
		}
	}
	if opt.Faults != "" || opt.Watchdog > 0 || opt.Retries > 0 {
		for i := range jobs {
			jobs[i].Faults = opt.Faults
			jobs[i].Retries = opt.Retries
			// Config is part of the cache identity, so arming the
			// watchdog through it invalidates stale cached rows for free.
			jobs[i].Config.WatchdogCycles = opt.Watchdog
		}
	}
	if opt.Topology != "" {
		ts, err := network.ParseTopoSpec(opt.Topology)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v", err)
		}
		for i := range jobs {
			jobs[i].Config.Topology = ts
		}
	}
	if opt.Multicast {
		for i := range jobs {
			jobs[i].Config.Multicast = true
		}
	}
	if opt.Shards >= 1 {
		for i := range jobs {
			jobs[i].Shards = opt.Shards
		}
	}
	p := &exec.Pool{Workers: opt.Jobs}
	if opt.CacheDir != "" {
		c, err := exec.OpenCache(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		p.Cache = c
	}
	results := p.Run(jobs)
	opt.MetricsLog.add(results)
	return results, nil
}

// dirJob and treeJob build one-simulation specs for the two protocols.
func dirJob(key string, cfg protocol.Config, p trace.Profile, accesses int, opt Options) exec.Job {
	return exec.Job{Key: key, Engine: protocol.KindDirectory, Config: cfg,
		Profile: p, Accesses: accesses, SuiteSeed: opt.Seed}
}

func treeJob(key string, cfg protocol.Config, p trace.Profile, accesses int, opt Options) exec.Job {
	return exec.Job{Key: key, Engine: protocol.KindTree, Config: cfg,
		Profile: p, Accesses: accesses, SuiteSeed: opt.Seed}
}

// PairResult compares the two protocols on one benchmark.
type PairResult struct {
	Bench     string
	BaseRead  float64
	BaseWrite float64
	TreeRead  float64
	TreeWrite float64

	// Err marks a failed row (one of the pair's simulations failed); the
	// latency fields are then zero.
	Err string
}

// ReadReduction returns the in-network read-latency reduction in percent.
func (r PairResult) ReadReduction() float64 { return stats.Reduction(r.BaseRead, r.TreeRead) }

// WriteReduction returns the in-network write-latency reduction in percent.
func (r PairResult) WriteReduction() float64 { return stats.Reduction(r.BaseWrite, r.TreeWrite) }

// pairFrom folds a (baseline, tree) result pair into one comparison row,
// propagating the first failure.
func pairFrom(bench string, base, tree exec.Result) PairResult {
	if base.Failed() {
		return PairResult{Bench: bench, Err: base.Err}
	}
	if tree.Failed() {
		return PairResult{Bench: bench, Err: tree.Err}
	}
	return PairResult{
		Bench:     bench,
		BaseRead:  base.Read.Mean(),
		BaseWrite: base.Write.Mean(),
		TreeRead:  tree.Read.Mean(),
		TreeWrite: tree.Write.Mean(),
	}
}

// averagePair folds a slice of pair results into an "avg" row over the
// rows that succeeded.
func averagePair(rs []PairResult) PairResult {
	var a PairResult
	a.Bench = "avg"
	n := 0.0
	for _, r := range rs {
		if r.Err != "" {
			continue
		}
		a.BaseRead += r.BaseRead
		a.BaseWrite += r.BaseWrite
		a.TreeRead += r.TreeRead
		a.TreeWrite += r.TreeWrite
		n++
	}
	if n > 0 {
		a.BaseRead /= n
		a.BaseWrite /= n
		a.TreeRead /= n
		a.TreeWrite /= n
	}
	return a
}
