package experiments

import (
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// AblationResult compares the nominal in-network protocol against one
// design variant, averaged over all benchmarks.
type AblationResult struct {
	Name string
	// Read/Write are the variant's mean latencies; BaseRead/BaseWrite
	// the nominal protocol's.
	BaseRead, BaseWrite float64
	Read, Write         float64
	// ReadDelta/WriteDelta are the percentage change of the variant
	// versus nominal (positive = variant slower).
	ReadDelta, WriteDelta float64
}

// Ablations quantifies the design decisions DESIGN.md calls out by
// toggling each off (or, for the Section 4 replication extension, on).
// The runs use a pressured tree cache (512 entries, 2-way) because the
// victim-caching and proactive-eviction optimizations only have work to do
// when trees are being evicted — at the nominal 4K capacity our synthetic
// footprints never stress them (see EXPERIMENTS.md, D1):
//
//   - victim caching off (Section 2.1's optimization);
//   - proactive eviction off (Section 2.1's write-side optimization);
//   - replication on (the paper's Section 4 future-work extension:
//     replies leave copies at intermediate tree nodes).
func Ablations(opt Options) ([]AblationResult, error) {
	variants := []struct {
		name string
		mod  func(*protocol.Config)
	}{
		{"victim caching off", func(c *protocol.Config) { c.VictimCaching = false }},
		{"proactive eviction off", func(c *protocol.Config) { c.ProactiveEviction = false }},
		{"replication on (Sec. 4 ext.)", func(c *protocol.Config) { c.Replication = true }},
	}
	pressured := func() protocol.Config {
		cfg := protocol.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.TreeEntries, cfg.TreeWays = 512, 2
		return cfg
	}
	// Nominal reference, averaged over all benchmarks.
	var nomR, nomW float64
	for _, p := range trace.Benchmarks() {
		cfg := pressured()
		m, _, err := runTree(cfg, p, opt.AccessesPerNode, opt.Seed)
		if err != nil {
			return nil, err
		}
		nomR += m.Lat.Read.Mean()
		nomW += m.Lat.Write.Mean()
	}
	n := float64(len(trace.Benchmarks()))
	nomR /= n
	nomW /= n

	var out []AblationResult
	for _, v := range variants {
		var r, w float64
		for _, p := range trace.Benchmarks() {
			cfg := pressured()
			v.mod(&cfg)
			m, _, err := runTree(cfg, p, opt.AccessesPerNode, opt.Seed)
			if err != nil {
				return nil, err
			}
			r += m.Lat.Read.Mean()
			w += m.Lat.Write.Mean()
		}
		r /= n
		w /= n
		out = append(out, AblationResult{
			Name:     v.name,
			BaseRead: nomR, BaseWrite: nomW,
			Read: r, Write: w,
			ReadDelta:  100 * (r - nomR) / nomR,
			WriteDelta: 100 * (w - nomW) / nomW,
		})
	}
	return out, nil
}
