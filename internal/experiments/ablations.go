package experiments

import (
	"innetcc/internal/exec"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

// AblationResult compares the nominal in-network protocol against one
// design variant, averaged over all benchmarks.
type AblationResult struct {
	Name string
	// Read/Write are the variant's mean latencies; BaseRead/BaseWrite
	// the nominal protocol's, averaged over the benchmarks where both
	// runs succeeded.
	BaseRead, BaseWrite float64
	Read, Write         float64
	// ReadDelta/WriteDelta are the percentage change of the variant
	// versus nominal (positive = variant slower).
	ReadDelta, WriteDelta float64
	// Err marks a variant with no comparable benchmark pair (first
	// failure reported).
	Err string
}

// Ablations quantifies the design decisions DESIGN.md calls out by
// toggling each off (or, for the Section 4 replication extension, on).
// The runs use a pressured tree cache (512 entries, 2-way) because the
// victim-caching and proactive-eviction optimizations only have work to do
// when trees are being evicted — at the nominal 4K capacity our synthetic
// footprints never stress them (see EXPERIMENTS.md, D1):
//
//   - victim caching off (Section 2.1's optimization);
//   - proactive eviction off (Section 2.1's write-side optimization);
//   - replication on (the paper's Section 4 future-work extension:
//     replies leave copies at intermediate tree nodes).
func Ablations(opt Options) ([]AblationResult, error) {
	variants := []struct {
		name string
		mod  func(*protocol.Config)
	}{
		{"victim caching off", func(c *protocol.Config) { c.VictimCaching = false }},
		{"proactive eviction off", func(c *protocol.Config) { c.ProactiveEviction = false }},
		{"replication on (Sec. 4 ext.)", func(c *protocol.Config) { c.Replication = true }},
	}
	pressured := func() protocol.Config {
		cfg := protocol.DefaultConfig()
		cfg.TreeEntries, cfg.TreeWays = 512, 2
		return cfg
	}
	benches := trace.Benchmarks()

	// One batch: the nominal reference runs first, then each variant.
	var jobs []exec.Job
	for _, p := range benches {
		jobs = append(jobs, treeJob("ablation/nominal/"+p.Name, pressured(), p, opt.AccessesPerNode, opt))
	}
	for _, v := range variants {
		for _, p := range benches {
			cfg := pressured()
			v.mod(&cfg)
			jobs = append(jobs, treeJob("ablation/"+v.name+"/"+p.Name, cfg, p, opt.AccessesPerNode, opt))
		}
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	nominal := rs[:len(benches)]

	var out []AblationResult
	for vi, v := range variants {
		varRes := rs[(vi+1)*len(benches) : (vi+2)*len(benches)]
		// Average over the benchmarks where both the nominal and the
		// variant run succeeded, so the comparison stays paired.
		var nomR, nomW, r, w float64
		n := 0.0
		firstErr := ""
		for bi := range benches {
			switch {
			case nominal[bi].Failed():
				if firstErr == "" {
					firstErr = nominal[bi].Err
				}
				continue
			case varRes[bi].Failed():
				if firstErr == "" {
					firstErr = varRes[bi].Err
				}
				continue
			}
			nomR += nominal[bi].Read.Mean()
			nomW += nominal[bi].Write.Mean()
			r += varRes[bi].Read.Mean()
			w += varRes[bi].Write.Mean()
			n++
		}
		if n == 0 {
			out = append(out, AblationResult{Name: v.name, Err: firstErr})
			continue
		}
		nomR /= n
		nomW /= n
		r /= n
		w /= n
		out = append(out, AblationResult{
			Name:     v.name,
			BaseRead: nomR, BaseWrite: nomW,
			Read: r, Write: w,
			ReadDelta:  100 * (r - nomR) / nomR,
			WriteDelta: 100 * (w - nomW) / nomW,
		})
	}
	return out, nil
}
