package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"innetcc/internal/metrics"
)

// WriteMetricsJSON exports the metrics log as indented JSON: one object per
// job with its key and full result (including the observability payload).
func WriteMetricsJSON(w io.Writer, entries []MetricsEntry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// WriteMetricsCSV exports the metrics log as sectioned CSV. Each section
// opens with a "# name" comment line and its own header row:
//
//	# breakdown  — per job and access class: cycle-mean latency components
//	# counters   — per job: named protocol instrumentation totals
//	# routers    — per job, router and output port: link utilization,
//	               busy cycles, grants, serialization waits, policy stalls
//	# queues     — per job, router and input port: mean queue depth
//	# series     — per job: cycle-bucketed in-flight / occupancy / queue
//	               depth time series
func WriteMetricsCSV(w io.Writer, entries []MetricsEntry) error {
	cw := csv.NewWriter(w)
	section := func(name string, header ...string) error {
		cw.Flush()
		if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
			return err
		}
		return cw.Write(header)
	}

	if err := section("breakdown", "key", "class", "n",
		"total_mean", "queue_mean", "serial_mean", "traversal_mean", "controller_mean"); err != nil {
		return err
	}
	for _, e := range entries {
		m := e.Result.Metrics
		for _, cl := range []struct {
			name                               string
			n, total, queue, serial, trav, ctl int64
		}{
			{"read", m.Read.N, m.Read.Total, m.Read.Queue, m.Read.Serial, m.Read.Traversal, m.Read.Controller},
			{"write", m.Write.N, m.Write.Total, m.Write.Queue, m.Write.Serial, m.Write.Traversal, m.Write.Controller},
		} {
			if cl.n == 0 {
				continue
			}
			n := float64(cl.n)
			cw.Write([]string{e.Key, cl.name, itoa(cl.n),
				ftoa(float64(cl.total) / n), ftoa(float64(cl.queue) / n),
				ftoa(float64(cl.serial) / n), ftoa(float64(cl.trav) / n),
				ftoa(float64(cl.ctl) / n)})
		}
	}

	if err := section("counters", "key", "counter", "value"); err != nil {
		return err
	}
	for _, e := range entries {
		names := make([]string, 0, len(e.Result.Metrics.Counters))
		for n := range e.Result.Metrics.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cw.Write([]string{e.Key, n, itoa(e.Result.Metrics.Counters[n])})
		}
	}

	if err := section("routers", "key", "node", "port",
		"util", "busy_cycles", "grants", "serial_wait", "policy_stalls"); err != nil {
		return err
	}
	for _, e := range entries {
		m := e.Result.Metrics
		for _, r := range m.Routers {
			for _, l := range r.Links {
				cw.Write([]string{e.Key, itoa(int64(r.Node)), l.Dir,
					ftoa(l.Util(m.Cycles)), itoa(l.BusyCycles),
					itoa(l.Grants), itoa(l.SerialWait), itoa(r.PolicyStalls)})
			}
		}
	}

	if err := section("queues", "key", "node", "in_port", "mean_depth"); err != nil {
		return err
	}
	for _, e := range entries {
		m := e.Result.Metrics
		for _, r := range m.Routers {
			for p, sum := range r.QueueSum {
				if m.Cycles <= 0 {
					continue
				}
				cw.Write([]string{e.Key, itoa(int64(r.Node)), itoa(int64(p)),
					ftoa(float64(sum) / float64(m.Cycles))})
			}
		}
	}

	if err := section("series", "key", "series", "cycle", "mean", "samples"); err != nil {
		return err
	}
	for _, e := range entries {
		m := e.Result.Metrics
		for _, s := range []struct {
			name string
			pts  []metrics.SeriesPoint
		}{
			{"in_flight", m.InFlight},
			{"occupancy", m.Occupancy},
			{"queue_depth", m.QueueDepth},
		} {
			for _, p := range s.pts {
				cw.Write([]string{e.Key, s.name, itoa(p.Cycle), ftoa(p.Mean), itoa(p.N)})
			}
		}
	}

	cw.Flush()
	return cw.Error()
}

func itoa(v int64) string   { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.3f", v) }
