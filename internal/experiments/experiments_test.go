package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// smallOpts keeps unit-test runtime modest; bench targets use the default
// sizes.
func smallOpts() Options {
	return Options{AccessesPerNode: 200, AccessesPerNode64: 60, Seed: 42}
}

func TestHopCountStudyShape(t *testing.T) {
	rs, err := HopCountStudy(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("%d benchmarks, want 8", len(rs))
	}
	var avgR, avgW float64
	for _, r := range rs {
		if r.ReadPct < 0 || r.ReadPct > 60 || r.WritePct < 0 || r.WritePct > 60 {
			t.Errorf("%s: hop reductions out of range: %.1f/%.1f", r.Bench, r.ReadPct, r.WritePct)
		}
		avgR += r.ReadPct
		avgW += r.WritePct
	}
	avgR /= 8
	avgW /= 8
	// Paper averages: 19.7% reads, 17.3% writes. Same regime expected.
	if avgR < 5 || avgW < 5 {
		t.Errorf("average hop reductions too small: %.1f/%.1f", avgR, avgW)
	}
	t.Logf("hop study: reads %.1f%%, writes %.1f%% (paper 19.7/17.3)", avgR, avgW)
}

func TestFigure5Shape(t *testing.T) {
	rs, err := Figure5(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 9 || rs[8].Bench != "avg" {
		t.Fatalf("want 8 benchmarks + avg, got %d", len(rs))
	}
	avg := rs[8]
	// Core claims: the in-network protocol wins on average for both
	// classes, and writes win by more than reads.
	if avg.ReadReduction() <= 0 {
		t.Errorf("average read reduction %.1f%% not positive", avg.ReadReduction())
	}
	if avg.WriteReduction() <= 5 {
		t.Errorf("average write reduction %.1f%% too small", avg.WriteReduction())
	}
	if avg.WriteReduction() <= avg.ReadReduction() {
		t.Errorf("write reduction (%.1f%%) should exceed read reduction (%.1f%%)",
			avg.WriteReduction(), avg.ReadReduction())
	}
	t.Logf("Figure 5 avg: reads %.1f%%, writes %.1f%% (paper 27.1/41.2)",
		avg.ReadReduction(), avg.WriteReduction())
}

func TestFigure6Shape(t *testing.T) {
	pts, err := Figure6(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Average normalized read latency at the smallest cache must exceed
	// the unbounded reference; writes must stay comparatively flat.
	var smallR, smallW float64
	n := 0
	for _, p := range pts {
		if p.Value == Figure6Sizes[len(Figure6Sizes)-1] {
			smallR += p.Read
			smallW += p.Write
			n++
		}
	}
	smallR /= float64(n)
	smallW /= float64(n)
	if smallR <= 1.02 {
		t.Errorf("smallest tree cache read latency %.3f not above reference", smallR)
	}
	if smallW > smallR {
		t.Errorf("write latency (%.3f) more size-sensitive than reads (%.3f)", smallW, smallR)
	}
	t.Logf("Figure 6: 512-entry normalized read %.2f, write %.2f", smallR, smallW)
}

func TestFigure7Shape(t *testing.T) {
	pts, err := Figure7(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Direct-mapped must be worse than 4-way on average for reads.
	avg := map[int]float64{}
	cnt := map[int]int{}
	for _, p := range pts {
		avg[p.Value] += p.Read
		cnt[p.Value]++
	}
	for k := range avg {
		avg[k] /= float64(cnt[k])
	}
	if avg[1] <= avg[4] {
		t.Errorf("direct-mapped (%.3f) should be worse than 4-way (%.3f)", avg[1], avg[4])
	}
	t.Logf("Figure 7 normalized reads: 1-way %.3f, 2-way %.3f, 4-way %.3f, 8-way 1.0-ref %.3f",
		avg[1], avg[2], avg[4], avg[8])
}

func TestFigure8Shape(t *testing.T) {
	pts, err := Figure8(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Gains at 128 KB must be smaller than at 2 MB on average (victim
	// room shrinks).
	var big, small float64
	var nb, ns int
	for _, p := range pts {
		switch p.L2 {
		case Figure8L2[0]:
			big += p.ReadRed
			nb++
		case Figure8L2[len(Figure8L2)-1]:
			small += p.ReadRed
			ns++
		}
	}
	big /= float64(nb)
	small /= float64(ns)
	if small >= big+2 {
		t.Errorf("read gains at small L2 (%.1f%%) should not exceed large L2 (%.1f%%)", small, big)
	}
	t.Logf("Figure 8 avg read reduction: 2MB %.1f%%, 128KB %.1f%%", big, small)
}

func TestFigure9Shape(t *testing.T) {
	rs, err := Figure9(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	avg := rs[len(rs)-1]
	if avg.WriteReduction() <= 0 {
		t.Errorf("64-node write reduction %.1f%% not positive", avg.WriteReduction())
	}
	t.Logf("Figure 9 avg: reads %.1f%%, writes %.1f%% (paper 35/48)",
		avg.ReadReduction(), avg.WriteReduction())
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Deadlock recovery must stay a small share of latency (the
		// paper reports ~0.2%; our direct-mapped caches conflict more
		// at synthetic-trace occupancy, so allow up to 10%).
		if r.ReadPct > 10 || r.WritePct > 10 {
			t.Errorf("%s: deadlock share too large: %.2f%%/%.2f%%", r.Bench, r.ReadPct, r.WritePct)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	rs, err := Figure10(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	avg := rs[len(rs)-1]
	if avg.ReadReduction() <= 0 || avg.WriteReduction() <= 0 {
		t.Errorf("in-network must beat above-network: %.1f%%/%.1f%%",
			avg.ReadReduction(), avg.WriteReduction())
	}
	t.Logf("Figure 10 avg: reads %.1f%%, writes %.1f%% (paper 31/49.1)",
		avg.ReadReduction(), avg.WriteReduction())
}

func TestFigure11Shape(t *testing.T) {
	pts, err := Figure11(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Average reduction at depth 5 must exceed depth 1 (shallower
	// pipelines shrink the advantage).
	avg := map[int]float64{}
	cnt := map[int]int{}
	for _, p := range pts {
		avg[p.Pipeline] += p.Red
		cnt[p.Pipeline]++
	}
	for k := range avg {
		avg[k] /= float64(cnt[k])
	}
	if avg[5] <= avg[1] {
		t.Errorf("deep-pipeline advantage (%.1f%%) should exceed shallow (%.1f%%)", avg[5], avg[1])
	}
	t.Logf("Figure 11 avg reduction: depth5 %.1f%%, depth3 %.1f%%, depth1 %.1f%%",
		avg[5], avg[3], avg[1])
}

func TestStorageStudyMatchesPaper(t *testing.T) {
	rows := StorageStudy()
	if len(rows) != 2 {
		t.Fatal("want 16- and 64-node rows")
	}
	if rows[0].TreeOverhead < 50 || rows[0].TreeOverhead > 60 {
		t.Errorf("16-node overhead %.0f%%, paper says +56%%", rows[0].TreeOverhead)
	}
	if rows[1].TreeOverhead > -50 || rows[1].TreeOverhead < -65 {
		t.Errorf("64-node overhead %.0f%%, paper says -58%%", rows[1].TreeOverhead)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var b strings.Builder
	PrintTable3(&b)
	PrintStorage(&b, StorageStudy())
	if !strings.Contains(b.String(), "Table 3") || !strings.Contains(b.String(), "3.6") {
		t.Fatal("printers missing headings")
	}
}

// Figure 5 must produce identical rows at every pool parallelism: seeds
// derive from the suite seed and results collect in submission order.
func TestFigure5ParallelMatchesSerial(t *testing.T) {
	opt := Options{AccessesPerNode: 100, AccessesPerNode64: 40, Seed: 42}
	opt.Jobs = 1
	serial, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 4
	parallel, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Figure 5 diverged from serial:\n serial: %+v\n parallel: %+v", serial, parallel)
	}
}

// A cached re-run must reproduce the uncached rows exactly.
func TestHopCountStudyCacheRoundTrip(t *testing.T) {
	opt := Options{AccessesPerNode: 100, AccessesPerNode64: 40, Seed: 42, CacheDir: t.TempDir()}
	cold, err := HopCountStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := HopCountStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached rows diverged:\n cold: %+v\n warm: %+v", cold, warm)
	}
}

func TestUnusableCacheDirIsAnError(t *testing.T) {
	opt := smallOpts()
	opt.CacheDir = "/dev/null/not-a-dir"
	if _, err := HopCountStudy(opt); err == nil {
		t.Fatal("unusable cache dir accepted")
	}
}

// A failed simulation fails only its row: the average skips it and the
// printers render the error in place of numbers.
func TestFailedRowsAreIsolatedInAveragesAndPrinters(t *testing.T) {
	rows := []PairResult{
		{Bench: "fft", BaseRead: 100, BaseWrite: 100, TreeRead: 50, TreeWrite: 50},
		{Bench: "bar", Err: "tree: stuck after 10 cycles"},
		{Bench: "wsp", BaseRead: 200, BaseWrite: 200, TreeRead: 100, TreeWrite: 100},
	}
	avg := averagePair(rows)
	if avg.BaseRead != 150 || avg.TreeRead != 75 {
		t.Errorf("average did not skip the failed row: %+v", avg)
	}
	var b strings.Builder
	PrintPairs(&b, "t", append(rows, avg), "")
	out := b.String()
	if !strings.Contains(out, "bar    FAILED: tree: stuck after 10 cycles") {
		t.Errorf("failed row not rendered:\n%s", out)
	}
	if !strings.Contains(out, "avg") || strings.Count(out, "FAILED") != 1 {
		t.Errorf("healthy rows disturbed:\n%s", out)
	}

	b.Reset()
	PrintSweep(&b, "t", []SweepPoint{{Bench: "fft", Value: 512, Err: "boom"}}, "entries")
	if !strings.Contains(b.String(), "FAILED: boom") {
		t.Errorf("sweep failure not rendered: %s", b.String())
	}
	b.Reset()
	PrintTable4(&b, []Table4Row{{Bench: "fft", Err: "boom"}, {Bench: "lu", ReadPct: 1, WritePct: 1}})
	if !strings.Contains(b.String(), "FAILED: boom") || !strings.Contains(b.String(), "avg") {
		t.Errorf("table4 failure handling wrong: %s", b.String())
	}
}

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d ablation rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Name == "victim caching off" && r.ReadDelta < 2 {
			t.Errorf("victim caching off should cost reads under pressure, got %+.1f%%", r.ReadDelta)
		}
	}
	t.Logf("ablations: %+v", rows)
}
