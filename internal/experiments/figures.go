package experiments

import (
	"innetcc/internal/directory"
	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
)

// ---------------------------------------------------------------------------
// Section 1 — ideal hop-count characterization.

// HopResult is the per-benchmark outcome of the oracle hop study: the mean
// percentage hop reduction an ideal in-transit protocol could achieve.
type HopResult struct {
	Bench     string
	ReadPct   float64 // mean (base-ideal)/base over reads
	WritePct  float64
	ReadBase  float64 // mean baseline hops, for reference
	WriteBase float64
}

// HopCountStudy reproduces the Section 1 characterization: for every
// coherence access, the baseline directory hop count versus the oracle
// ideal (closest valid copy for reads; earliest-possible invalidation for
// writes). Paper: reads up to 35.8% (19.7% average), writes up to 32.4%
// (17.3% average).
func HopCountStudy(opt Options) ([]HopResult, error) {
	var out []HopResult
	for _, p := range trace.Benchmarks() {
		cfg := protocol.DefaultConfig()
		cfg.Seed = opt.Seed
		tr := trace.Generate(p, cfg.Nodes(), opt.AccessesPerNode, opt.Seed)
		m, err := protocol.NewMachine(cfg, tr, p.Think)
		if err != nil {
			return nil, err
		}
		e := directory.New(m)
		var rBase, rIdeal, wBase, wIdeal float64
		var rN, wN int
		e.HopRecorder = func(write bool, base, ideal int) {
			if base == 0 {
				return
			}
			if write {
				wBase += float64(base)
				wIdeal += float64(ideal)
				wN++
			} else {
				rBase += float64(base)
				rIdeal += float64(ideal)
				rN++
			}
		}
		if err := m.Run(maxCycles); err != nil {
			return nil, err
		}
		hr := HopResult{Bench: p.Name}
		if rN > 0 {
			hr.ReadPct = 100 * (rBase - rIdeal) / rBase
			hr.ReadBase = rBase / float64(rN)
		}
		if wN > 0 {
			hr.WritePct = 100 * (wBase - wIdeal) / wBase
			hr.WriteBase = wBase / float64(wN)
		}
		out = append(out, hr)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 5 — read/write latency reduction, 16 nodes, nominal config.

// Figure5 runs all eight benchmarks on the Table 2 configuration and
// returns per-benchmark latency reductions plus the average row. Paper:
// reads -27.1% average (up to 35.5%), writes -41.2% average (up to 53.6%);
// write reduction exceeds read reduction for all but one benchmark; lu and
// rad show the least read savings.
func Figure5(opt Options) ([]PairResult, error) {
	var out []PairResult
	for _, p := range trace.Benchmarks() {
		cfg := protocol.DefaultConfig()
		cfg.Seed = opt.Seed
		r, err := runPair(cfg, p, opt.AccessesPerNode, opt.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	out = append(out, averagePair(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — tree cache size sweep (victim caching disabled).

// SweepPoint is one benchmark's normalized latencies at one configuration.
type SweepPoint struct {
	Bench string
	Value int // swept parameter (entries, ways, L2 entries, pipeline)
	Read  float64
	Write float64
}

// Figure6Sizes is the swept tree-cache capacity grid; 512K entries is the
// paper's effectively-unbounded normalization point.
var Figure6Sizes = []int{512 * 1024, 8192, 4096, 2048, 512}

// Figure6 sweeps the tree cache size with victim caching disabled and
// returns read/write latencies normalized to the largest configuration.
// Paper: read latency rises steadily as the cache shrinks (more trees
// evicted, more off-chip refetches); write latency is insensitive.
func Figure6(opt Options) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, p := range trace.Benchmarks() {
		var ref SweepPoint
		for i, size := range Figure6Sizes {
			cfg := protocol.DefaultConfig()
			cfg.Seed = opt.Seed
			cfg.VictimCaching = false
			cfg.TreeEntries = size
			m, _, err := runTree(cfg, p, opt.AccessesPerNode, opt.Seed)
			if err != nil {
				return nil, err
			}
			pt := SweepPoint{Bench: p.Name, Value: size, Read: m.Lat.Read.Mean(), Write: m.Lat.Write.Mean()}
			if i == 0 {
				ref = pt
			}
			pt.Read /= ref.Read
			pt.Write /= ref.Write
			out = append(out, pt)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — tree cache associativity sweep (victim caching disabled).

// Figure7Ways is the swept associativity grid; latencies are normalized to
// the 8-way point as in the paper.
var Figure7Ways = []int{8, 4, 2, 1}

// Figure7 sweeps tree cache associativity at 4K entries. Paper: latency is
// best at 4-way — direct-mapped suffers conflict misses, while 8-way
// suffers proactive-eviction misses (larger sets give passing writes more
// victims to tear down).
func Figure7(opt Options) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, p := range trace.Benchmarks() {
		var ref SweepPoint
		for i, ways := range Figure7Ways {
			cfg := protocol.DefaultConfig()
			cfg.Seed = opt.Seed
			cfg.VictimCaching = false
			cfg.TreeWays = ways
			m, _, err := runTree(cfg, p, opt.AccessesPerNode, opt.Seed)
			if err != nil {
				return nil, err
			}
			pt := SweepPoint{Bench: p.Name, Value: ways, Read: m.Lat.Read.Mean(), Write: m.Lat.Write.Mean()}
			if i == 0 {
				ref = pt
			}
			pt.Read /= ref.Read
			pt.Write /= ref.Write
			out = append(out, pt)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8 — L2 data cache size sweep (both protocols).

// Figure8L2 is the swept L2 capacity grid in entries (2 MB, 512 KB, 128 KB
// at 32-byte lines).
var Figure8L2 = []int{65536, 16384, 4096}

// Figure8Point carries the reduction of in-network versus baseline at one
// L2 size.
type Figure8Point struct {
	Bench    string
	L2       int
	ReadRed  float64
	WriteRed float64
}

// Figure8 compares the protocols at shrinking L2 sizes. Paper: gains shrink
// with smaller L2 (less room for victimized data at the home node); rad and
// ray — the large-footprint benchmarks — go negative at 128 KB; writes stay
// insensitive.
func Figure8(opt Options) ([]Figure8Point, error) {
	var out []Figure8Point
	for _, p := range trace.Benchmarks() {
		for _, l2 := range Figure8L2 {
			cfg := protocol.DefaultConfig()
			cfg.Seed = opt.Seed
			cfg.L2Entries = l2
			r, err := runPair(cfg, p, opt.AccessesPerNode, opt.Seed)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure8Point{Bench: p.Name, L2: l2,
				ReadRed: r.ReadReduction(), WriteRed: r.WriteReduction()})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — 64-node scalability.

// Figure9 runs the full comparison on an 8-by-8 mesh. Paper: savings grow
// to 35% (reads) and 48% (writes) on average — in-transit optimization
// scales with the network.
func Figure9(opt Options) ([]PairResult, error) {
	var out []PairResult
	for _, p := range trace.Benchmarks() {
		cfg := protocol.DefaultConfig()
		cfg.MeshW, cfg.MeshH = 8, 8
		cfg.Seed = opt.Seed
		r, err := runPair(cfg, p, opt.AccessesPerNode64, opt.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	out = append(out, averagePair(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 4 — deadlock recovery cost (direct-mapped tree caches).

// Table4Row is the share of read/write latency spent in deadlock detection
// and recovery for one benchmark.
type Table4Row struct {
	Bench    string
	ReadPct  float64
	WritePct float64
	Aborts   int64
}

// Table4 measures the timeout/backoff recovery cost with the direct-mapped
// 4K tree cache the paper uses for this experiment. Paper: about 0.2% of
// overall latency on average.
func Table4(opt Options) ([]Table4Row, error) {
	var out []Table4Row
	for _, p := range trace.Benchmarks() {
		cfg := protocol.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.TreeWays = 1
		m, _, err := runTree(cfg, p, opt.AccessesPerNode, opt.Seed)
		if err != nil {
			return nil, err
		}
		r, w := m.Lat.DeadlockShare()
		out = append(out, Table4Row{Bench: p.Name, ReadPct: r, WritePct: w,
			Aborts: m.Counters.Get("tree.deadlock_aborts")})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — in-network versus above-network implementation.

// Figure10 compares the in-network tree protocol against the GLOW-like
// variant whose tree caches sit at the network interfaces (every per-hop
// tree access pays an ejection and re-injection). Paper: the in-network
// implementation saves 31% (reads) and 49.1% (writes) on average, roughly
// flat across benchmarks.
func Figure10(opt Options) ([]PairResult, error) {
	var out []PairResult
	for _, p := range trace.Benchmarks() {
		cfgIn := protocol.DefaultConfig()
		cfgIn.Seed = opt.Seed
		mIn, _, err := runTree(cfgIn, p, opt.AccessesPerNode, opt.Seed)
		if err != nil {
			return nil, err
		}
		cfgAb := protocol.DefaultConfig()
		cfgAb.Seed = opt.Seed
		cfgAb.AboveNetworkTree = true
		mAb, _, err := runTree(cfgAb, p, opt.AccessesPerNode, opt.Seed)
		if err != nil {
			return nil, err
		}
		// "Baseline" here is the above-network variant.
		out = append(out, PairResult{
			Bench:     p.Name,
			BaseRead:  mAb.Lat.Read.Mean(),
			BaseWrite: mAb.Lat.Write.Mean(),
			TreeRead:  mIn.Lat.Read.Mean(),
			TreeWrite: mIn.Lat.Write.Mean(),
		})
	}
	out = append(out, averagePair(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 11 — router pipeline depth sweep.

// Figure11Point is the overall memory-latency reduction at one baseline
// pipeline depth (the in-network router is one cycle deeper).
type Figure11Point struct {
	Bench    string
	Pipeline int
	Red      float64 // overall (read+write) mean latency reduction, percent
}

// Figure11Depths sweeps the baseline pipeline from 5 down to 1 cycle.
var Figure11Depths = []int{5, 4, 3, 2, 1}

// Figure11 shows the in-network advantage shrinking as router pipelines
// shorten (the +1 tree-cache stage weighs relatively more). Paper: savings
// decrease monotonically toward the 2-versus-1-cycle point.
func Figure11(opt Options) ([]Figure11Point, error) {
	var out []Figure11Point
	for _, p := range trace.Benchmarks() {
		for _, depth := range Figure11Depths {
			cfg := protocol.DefaultConfig()
			cfg.Seed = opt.Seed
			cfg.BasePipeline = int64(depth)
			mb, _, err := runDir(cfg, p, opt.AccessesPerNode, opt.Seed)
			if err != nil {
				return nil, err
			}
			mt, _, err := runTree(cfg, p, opt.AccessesPerNode, opt.Seed)
			if err != nil {
				return nil, err
			}
			base := overallMean(mb)
			tree := overallMean(mt)
			out = append(out, Figure11Point{Bench: p.Name, Pipeline: depth,
				Red: stats.Reduction(base, tree)})
		}
	}
	return out, nil
}

func overallMean(m *protocol.Machine) float64 {
	n := m.Lat.Read.N + m.Lat.Write.N
	if n == 0 {
		return 0
	}
	return (m.Lat.Read.Sum + m.Lat.Write.Sum) / float64(n)
}

// ---------------------------------------------------------------------------
// Section 3.6 — storage scalability.

// StorageRow compares per-node coherence storage for one system size.
type StorageRow struct {
	Nodes        int
	TreeBits     int64   // per node, in-network implementation
	DirBits      int64   // per node, full-map directory
	TreeOverhead float64 // (tree-dir)/dir in percent
}

// StorageStudy reproduces the Section 3.6 bit counting: the tree cache
// entry is tag (19) plus the 9-bit line regardless of system size, while a
// full-map directory entry grows with the node count. Paper: +56% overhead
// at 16 nodes, -58% at 64 nodes.
func StorageStudy() []StorageRow {
	entries := int64(4096)
	var out []StorageRow
	for _, n := range []int{16, 64} {
		// In-network: 19-bit tag + 9-bit tree line = 28 bits.
		treeBits := entries * 28
		// Directory: tag + full-map sharer vector (N bits) + owner
		// (log2 N) + busy/request bits, per the paper's 18-bit (16
		// nodes) and 66-bit (64 nodes) entries.
		var dirEntry int64
		if n == 16 {
			dirEntry = 18
		} else {
			dirEntry = 66
		}
		dirBits := entries * dirEntry
		out = append(out, StorageRow{
			Nodes:        n,
			TreeBits:     treeBits,
			DirBits:      dirBits,
			TreeOverhead: 100 * float64(treeBits-dirBits) / float64(dirBits),
		})
	}
	return out
}
