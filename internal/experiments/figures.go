package experiments

import (
	"fmt"

	"innetcc/internal/exec"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"
)

// ---------------------------------------------------------------------------
// Section 1 — ideal hop-count characterization.

// HopResult is the per-benchmark outcome of the oracle hop study: the mean
// percentage hop reduction an ideal in-transit protocol could achieve.
type HopResult struct {
	Bench     string
	ReadPct   float64 // mean (base-ideal)/base over reads
	WritePct  float64
	ReadBase  float64 // mean baseline hops, for reference
	WriteBase float64
	Err       string
}

// HopCountStudy reproduces the Section 1 characterization: for every
// coherence access, the baseline directory hop count versus the oracle
// ideal (closest valid copy for reads; earliest-possible invalidation for
// writes). Paper: reads up to 35.8% (19.7% average), writes up to 32.4%
// (17.3% average).
func HopCountStudy(opt Options) ([]HopResult, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		j := dirJob("hopcount/"+p.Name, protocol.DefaultConfig(), p, opt.AccessesPerNode, opt)
		j.CollectHops = true
		jobs = append(jobs, j)
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []HopResult
	for i, p := range benches {
		hr := HopResult{Bench: p.Name}
		r := rs[i]
		if r.Failed() || r.Hops == nil {
			hr.Err = r.Err
			out = append(out, hr)
			continue
		}
		h := r.Hops
		if h.Reads > 0 {
			hr.ReadPct = 100 * (h.ReadBase - h.ReadIdeal) / h.ReadBase
			hr.ReadBase = h.ReadBase / float64(h.Reads)
		}
		if h.Writes > 0 {
			hr.WritePct = 100 * (h.WriteBase - h.WriteIdeal) / h.WriteBase
			hr.WriteBase = h.WriteBase / float64(h.Writes)
		}
		out = append(out, hr)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 5 — read/write latency reduction, 16 nodes, nominal config.

// Figure5 runs all eight benchmarks on the Table 2 configuration and
// returns per-benchmark latency reductions plus the average row. Paper:
// reads -27.1% average (up to 35.5%), writes -41.2% average (up to 53.6%);
// write reduction exceeds read reduction for all but one benchmark; lu and
// rad show the least read savings.
func Figure5(opt Options) ([]PairResult, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		cfg := protocol.DefaultConfig()
		jobs = append(jobs,
			dirJob("fig5/"+p.Name+"/dir", cfg, p, opt.AccessesPerNode, opt),
			treeJob("fig5/"+p.Name+"/tree", cfg, p, opt.AccessesPerNode, opt))
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []PairResult
	for i, p := range benches {
		out = append(out, pairFrom(p.Name, rs[2*i], rs[2*i+1]))
	}
	out = append(out, averagePair(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — tree cache size sweep (victim caching disabled).

// SweepPoint is one benchmark's normalized latencies at one configuration.
type SweepPoint struct {
	Bench string
	Value int // swept parameter (entries, ways, L2 entries, pipeline)
	Read  float64
	Write float64
	Err   string
}

// Figure6Sizes is the swept tree-cache capacity grid; 512K entries is the
// paper's effectively-unbounded normalization point.
var Figure6Sizes = []int{512 * 1024, 8192, 4096, 2048, 512}

// Figure6 sweeps the tree cache size with victim caching disabled and
// returns read/write latencies normalized to the largest configuration.
// Paper: read latency rises steadily as the cache shrinks (more trees
// evicted, more off-chip refetches); write latency is insensitive.
func Figure6(opt Options) ([]SweepPoint, error) {
	return sweepTree(opt, Figure6Sizes, func(cfg *protocol.Config, size int) {
		cfg.VictimCaching = false
		cfg.TreeEntries = size
	}, "fig6")
}

// ---------------------------------------------------------------------------
// Figure 7 — tree cache associativity sweep (victim caching disabled).

// Figure7Ways is the swept associativity grid; latencies are normalized to
// the 8-way point as in the paper.
var Figure7Ways = []int{8, 4, 2, 1}

// Figure7 sweeps tree cache associativity at 4K entries. Paper: latency is
// best at 4-way — direct-mapped suffers conflict misses, while 8-way
// suffers proactive-eviction misses (larger sets give passing writes more
// victims to tear down).
func Figure7(opt Options) ([]SweepPoint, error) {
	return sweepTree(opt, Figure7Ways, func(cfg *protocol.Config, ways int) {
		cfg.VictimCaching = false
		cfg.TreeWays = ways
	}, "fig7")
}

// sweepTree runs the in-network protocol over a parameter grid for every
// benchmark and normalizes each benchmark's latencies to its first grid
// point. A failed reference point fails that benchmark's whole series.
func sweepTree(opt Options, values []int, apply func(*protocol.Config, int), tag string) ([]SweepPoint, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		for _, v := range values {
			cfg := protocol.DefaultConfig()
			apply(&cfg, v)
			jobs = append(jobs, treeJob(fmt.Sprintf("%s/%s/%d", tag, p.Name, v), cfg, p, opt.AccessesPerNode, opt))
		}
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for bi, p := range benches {
		ref := rs[bi*len(values)]
		for vi, v := range values {
			r := rs[bi*len(values)+vi]
			pt := SweepPoint{Bench: p.Name, Value: v}
			switch {
			case r.Failed():
				pt.Err = r.Err
			case ref.Failed():
				pt.Err = fmt.Sprintf("reference point %d failed: %s", values[0], ref.Err)
			default:
				pt.Read = r.Read.Mean() / ref.Read.Mean()
				pt.Write = r.Write.Mean() / ref.Write.Mean()
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8 — L2 data cache size sweep (both protocols).

// Figure8L2 is the swept L2 capacity grid in entries (2 MB, 512 KB, 128 KB
// at 32-byte lines).
var Figure8L2 = []int{65536, 16384, 4096}

// Figure8Point carries the reduction of in-network versus baseline at one
// L2 size.
type Figure8Point struct {
	Bench    string
	L2       int
	ReadRed  float64
	WriteRed float64
	Err      string
}

// Figure8 compares the protocols at shrinking L2 sizes. Paper: gains shrink
// with smaller L2 (less room for victimized data at the home node); rad and
// ray — the large-footprint benchmarks — go negative at 128 KB; writes stay
// insensitive.
func Figure8(opt Options) ([]Figure8Point, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		for _, l2 := range Figure8L2 {
			cfg := protocol.DefaultConfig()
			cfg.L2Entries = l2
			key := fmt.Sprintf("fig8/%s/%d", p.Name, l2)
			jobs = append(jobs,
				dirJob(key+"/dir", cfg, p, opt.AccessesPerNode, opt),
				treeJob(key+"/tree", cfg, p, opt.AccessesPerNode, opt))
		}
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []Figure8Point
	i := 0
	for _, p := range benches {
		for _, l2 := range Figure8L2 {
			pair := pairFrom(p.Name, rs[i], rs[i+1])
			i += 2
			out = append(out, Figure8Point{Bench: p.Name, L2: l2,
				ReadRed: pair.ReadReduction(), WriteRed: pair.WriteReduction(),
				Err: pair.Err})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — 64-node scalability.

// Figure9 runs the full comparison on an 8-by-8 mesh. Paper: savings grow
// to 35% (reads) and 48% (writes) on average — in-transit optimization
// scales with the network.
func Figure9(opt Options) ([]PairResult, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		cfg := protocol.DefaultConfig()
		cfg.Topology = network.MeshSpec(8, 8)
		jobs = append(jobs,
			dirJob("fig9/"+p.Name+"/dir", cfg, p, opt.AccessesPerNode64, opt),
			treeJob("fig9/"+p.Name+"/tree", cfg, p, opt.AccessesPerNode64, opt))
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []PairResult
	for i, p := range benches {
		out = append(out, pairFrom(p.Name, rs[2*i], rs[2*i+1]))
	}
	out = append(out, averagePair(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 4 — deadlock recovery cost (direct-mapped tree caches).

// Table4Row is the share of read/write latency spent in deadlock detection
// and recovery for one benchmark.
type Table4Row struct {
	Bench    string
	ReadPct  float64
	WritePct float64
	Aborts   int64
	Err      string
}

// Table4 measures the timeout/backoff recovery cost with the direct-mapped
// 4K tree cache the paper uses for this experiment. Paper: about 0.2% of
// overall latency on average.
func Table4(opt Options) ([]Table4Row, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		cfg := protocol.DefaultConfig()
		cfg.TreeWays = 1
		jobs = append(jobs, treeJob("table4/"+p.Name, cfg, p, opt.AccessesPerNode, opt))
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []Table4Row
	for i, p := range benches {
		r := rs[i]
		if r.Failed() {
			out = append(out, Table4Row{Bench: p.Name, Err: r.Err})
			continue
		}
		rd, wr := r.DeadlockShare()
		out = append(out, Table4Row{Bench: p.Name, ReadPct: rd, WritePct: wr,
			Aborts: r.Counter("tree.deadlock_aborts")})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — in-network versus above-network implementation.

// Figure10 compares the in-network tree protocol against the GLOW-like
// variant whose tree caches sit at the network interfaces (every per-hop
// tree access pays an ejection and re-injection). Paper: the in-network
// implementation saves 31% (reads) and 49.1% (writes) on average, roughly
// flat across benchmarks.
func Figure10(opt Options) ([]PairResult, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		cfgAb := protocol.DefaultConfig()
		cfgAb.AboveNetworkTree = true
		// "Baseline" here is the above-network variant.
		jobs = append(jobs,
			treeJob("fig10/"+p.Name+"/above", cfgAb, p, opt.AccessesPerNode, opt),
			treeJob("fig10/"+p.Name+"/in", protocol.DefaultConfig(), p, opt.AccessesPerNode, opt))
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []PairResult
	for i, p := range benches {
		out = append(out, pairFrom(p.Name, rs[2*i], rs[2*i+1]))
	}
	out = append(out, averagePair(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 11 — router pipeline depth sweep.

// Figure11Point is the overall memory-latency reduction at one baseline
// pipeline depth (the in-network router is one cycle deeper).
type Figure11Point struct {
	Bench    string
	Pipeline int
	Red      float64 // overall (read+write) mean latency reduction, percent
	Err      string
}

// Figure11Depths sweeps the baseline pipeline from 5 down to 1 cycle.
var Figure11Depths = []int{5, 4, 3, 2, 1}

// Figure11 shows the in-network advantage shrinking as router pipelines
// shorten (the +1 tree-cache stage weighs relatively more). Paper: savings
// decrease monotonically toward the 2-versus-1-cycle point.
func Figure11(opt Options) ([]Figure11Point, error) {
	benches := trace.Benchmarks()
	var jobs []exec.Job
	for _, p := range benches {
		for _, depth := range Figure11Depths {
			cfg := protocol.DefaultConfig()
			cfg.BasePipeline = int64(depth)
			key := fmt.Sprintf("fig11/%s/%d", p.Name, depth)
			jobs = append(jobs,
				dirJob(key+"/dir", cfg, p, opt.AccessesPerNode, opt),
				treeJob(key+"/tree", cfg, p, opt.AccessesPerNode, opt))
		}
	}
	rs, err := runJobs(opt, jobs)
	if err != nil {
		return nil, err
	}
	var out []Figure11Point
	i := 0
	for _, p := range benches {
		for _, depth := range Figure11Depths {
			base, tree := rs[i], rs[i+1]
			i += 2
			pt := Figure11Point{Bench: p.Name, Pipeline: depth}
			if base.Failed() {
				pt.Err = base.Err
			} else if tree.Failed() {
				pt.Err = tree.Err
			} else {
				pt.Red = stats.Reduction(overallMean(base), overallMean(tree))
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// overallMean pools read and write latencies into one mean.
func overallMean(r exec.Result) float64 {
	n := r.Read.N + r.Write.N
	if n == 0 {
		return 0
	}
	return (r.Read.Sum + r.Write.Sum) / float64(n)
}

// ---------------------------------------------------------------------------
// Section 3.6 — storage scalability.

// StorageRow compares per-node coherence storage for one system size.
type StorageRow struct {
	Nodes        int
	TreeBits     int64   // per node, in-network implementation
	DirBits      int64   // per node, full-map directory
	TreeOverhead float64 // (tree-dir)/dir in percent
}

// StorageStudy reproduces the Section 3.6 bit counting: the tree cache
// entry is tag (19) plus the 9-bit line regardless of system size, while a
// full-map directory entry grows with the node count. Paper: +56% overhead
// at 16 nodes, -58% at 64 nodes.
func StorageStudy() []StorageRow {
	entries := int64(4096)
	var out []StorageRow
	for _, n := range []int{16, 64} {
		// In-network: 19-bit tag + 9-bit tree line = 28 bits.
		treeBits := entries * 28
		// Directory: tag + full-map sharer vector (N bits) + owner
		// (log2 N) + busy/request bits, per the paper's 18-bit (16
		// nodes) and 66-bit (64 nodes) entries.
		var dirEntry int64
		if n == 16 {
			dirEntry = 18
		} else {
			dirEntry = 66
		}
		dirBits := entries * dirEntry
		out = append(out, StorageRow{
			Nodes:        n,
			TreeBits:     treeBits,
			DirBits:      dirBits,
			TreeOverhead: 100 * float64(treeBits-dirBits) / float64(dirBits),
		})
	}
	return out
}
